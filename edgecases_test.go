package repro

// Boundary-condition tests that cross package seams: minimal scales,
// degenerate buffer sizes, stripe counts exceeding edge counts, and codec
// robustness against adversarial input.

import (
	"io"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/edge"
	"repro/internal/fastio"
	"repro/internal/kronecker"
	"repro/internal/pipeline"
	"repro/internal/sparse"
	"repro/internal/vfs"
	"repro/internal/xsort"
)

func TestEdgeCaseScaleOnePipeline(t *testing.T) {
	// Scale 1: N = 2 vertices, M = 2·EdgeFactor edges — the smallest
	// legal benchmark.  Every variant must survive it.
	for _, v := range core.Variants() {
		cfg := core.Config{Scale: 1, EdgeFactor: 4, Seed: 1, Variant: v, KeepRank: true}
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatalf("%s at scale 1: %v", v, err)
		}
		if len(res.Rank) != 2 {
			t.Errorf("%s: rank length %d", v, len(res.Rank))
		}
	}
}

func TestEdgeCaseMoreFilesThanEdges(t *testing.T) {
	// NFiles far above M: stripes may be empty but the pipeline holds.
	cfg := core.Config{Scale: 1, EdgeFactor: 1, Seed: 2, NFiles: 16, Variant: "csr"}
	if _, err := core.Run(cfg); err != nil {
		t.Fatal(err)
	}
	// And for the streaming sink path.
	cfg.Variant = "extsort"
	if _, err := core.Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeCaseExternalSortRunOfOne(t *testing.T) {
	// RunEdges = 1: every edge is its own spill run (maximal merge fan-in).
	l := edge.NewList(64)
	g := kroneckerList(t, 5, 3)
	_ = g
	for i := uint64(0); i < 64; i++ {
		l.Append(63-i, i)
	}
	out := edge.NewList(0)
	stats, err := xsort.External(fastio.NewListSource(l), fastio.NewListSink(out),
		xsort.ExternalConfig{FS: vfs.NewMem(), RunEdges: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Edges != 64 || stats.Runs != 64 {
		t.Errorf("edges=%d runs=%d", stats.Edges, stats.Runs)
	}
	if !out.IsSortedByU() || !out.SameMultiset(l) {
		t.Error("run-of-one external sort incorrect")
	}
}

func kroneckerList(t *testing.T, scale int, seed uint64) *edge.List {
	t.Helper()
	l, err := kronecker.Generate(kronecker.New(scale, seed))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestEdgeCaseTSVReaderNeverPanicsOnGarbage(t *testing.T) {
	// Property: arbitrary bytes either parse or error; no panics, no
	// infinite loops.
	err := quick.Check(func(data []byte) bool {
		r := fastio.TSV{}.NewReader(strings.NewReader(string(data)))
		for i := 0; i < len(data)+2; i++ {
			_, _, err := r.ReadEdge()
			if err == io.EOF {
				return true
			}
			if err != nil {
				return true // parse error is a valid outcome
			}
		}
		return true // parsed everything as edges — also fine
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestEdgeCaseNaiveTSVReaderGarbage(t *testing.T) {
	err := quick.Check(func(data []byte) bool {
		r := fastio.NaiveTSV{}.NewReader(strings.NewReader(string(data)))
		for i := 0; i < len(data)+2; i++ {
			_, _, err := r.ReadEdge()
			if err != nil {
				return true
			}
		}
		return true
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestEdgeCaseSingleVertexMatrix(t *testing.T) {
	l := edge.NewList(3)
	for i := 0; i < 3; i++ {
		l.Append(0, 0) // three self loops on the only vertex
	}
	a, err := sparse.FromEdges(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 3 {
		t.Errorf("A(0,0) = %v", a.At(0, 0))
	}
	st := pipeline.ApplyKernel2Filter(a)
	// The single column has the max in-degree: everything is filtered.
	if st.SuperNodeColumns != 1 || a.NNZ() != 0 {
		t.Errorf("single-vertex filter: %+v nnz=%d", st, a.NNZ())
	}
}

func TestEdgeCaseEmptyMatrixPageRankIsTeleportOnly(t *testing.T) {
	// A fully filtered (empty) matrix: PageRank reduces to the teleport
	// term; the result must stay finite and uniform.
	a, err := sparse.FromTriplets(8, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(core.Config{Scale: 3, EdgeFactor: 1, Seed: 1, Variant: "csr", KeepRank: true})
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	for _, x := range res.Rank {
		if x < 0 {
			t.Fatal("negative rank on sparse pipeline")
		}
	}
}

func TestEdgeCaseKroneckerScaleOneDistribution(t *testing.T) {
	// At scale 1 the generator draws single-bit endpoints; probabilities
	// must still follow the initiator matrix (u=0 with prob A+B = 0.76).
	cfg := kronecker.New(1, 9)
	cfg.EdgeFactor = 4096
	cfg.SkipPermutation = true
	l, err := kronecker.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, u := range l.U {
		if u == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / float64(l.Len())
	if frac < 0.72 || frac > 0.80 {
		t.Errorf("P(u=0) = %.3f, want ~0.76", frac)
	}
}

func TestEdgeCaseStripedSourceAcrossManyEmptyStripes(t *testing.T) {
	fs := vfs.NewMem()
	l := edge.NewList(2)
	l.Append(1, 2)
	l.Append(3, 4)
	// 8 stripes for 2 edges: most stripes are empty.
	if err := fastio.WriteStriped(fs, "sparsefiles", fastio.TSV{}, 8, l); err != nil {
		t.Fatal(err)
	}
	src, err := fastio.NewStripedSource(fs, "sparsefiles", fastio.TSV{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	n, err := fastio.CountEdges(src)
	if err != nil || n != 2 {
		t.Errorf("streamed %d edges, %v", n, err)
	}
}

func TestEdgeCaseParallelSortWorkerExtremes(t *testing.T) {
	l := kroneckerList(t, 7, 11)
	for _, workers := range []int{1, 2, l.Len(), l.Len() * 2} {
		c := l.Clone()
		xsort.ParallelByU(c, workers)
		if !c.IsSortedByU() || !c.SameMultiset(l) {
			t.Fatalf("workers=%d: parallel sort incorrect", workers)
		}
	}
}
