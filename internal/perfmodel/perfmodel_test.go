package perfmodel

import (
	"math"
	"testing"
)

func wl() Workload { return Workload{Scale: 20} }

func TestHardwareValidate(t *testing.T) {
	if err := PaperNode().Validate(); err != nil {
		t.Fatalf("PaperNode invalid: %v", err)
	}
	bad := PaperNode()
	bad.MemBandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MemBandwidth accepted")
	}
	bad2 := PaperNode()
	bad2.Cores = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero cores accepted")
	}
	bad3 := PaperNode()
	bad3.NetLatency = -1
	if err := bad3.Validate(); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestWorkloadDerived(t *testing.T) {
	w := Workload{Scale: 16}
	if w.N() != 65536 {
		t.Errorf("N = %v", w.N())
	}
	if w.M() != 16*65536 {
		t.Errorf("M = %v (default edge factor)", w.M())
	}
}

func TestAllPredictionsPositive(t *testing.T) {
	for _, p := range All(PaperNode(), wl()) {
		if p.Seconds <= 0 || p.EdgesPerSecond <= 0 || p.Bound == "" {
			t.Errorf("degenerate prediction %+v", p)
		}
	}
}

func TestPaperFigureShape(t *testing.T) {
	// The paper's central shape: Figures 4-6 sit around 1e5-1e7 edges/s
	// while Figure 7 (K3) sits around 1e7-1e9 — K3 must be predicted 1-2
	// orders of magnitude faster than K0-K2.
	ps := All(PaperNode(), wl())
	k3 := ps[3].EdgesPerSecond
	for i, p := range ps[:3] {
		if k3 < 10*p.EdgesPerSecond {
			t.Errorf("K3 rate %.3g not >> K%d rate %.3g", k3, i, p.EdgesPerSecond)
		}
	}
	// And the predicted absolute ranges should bracket the paper's axes.
	for i, p := range ps[:3] {
		if p.EdgesPerSecond < 1e5 || p.EdgesPerSecond > 1e8 {
			t.Errorf("K%d predicted %.3g edges/s, outside the paper's 1e5-1e7 decade ballpark", i, p.EdgesPerSecond)
		}
	}
	if k3 < 1e7 || k3 > 2e9 {
		t.Errorf("K3 predicted %.3g edges/s, outside the paper's 1e7-1e9 decade", k3)
	}
}

func TestKernelBounds(t *testing.T) {
	// On the paper node, generating an edge costs ~40 PRNG draws while
	// writing it costs 14 bytes at Lustre speed, so K0 is compute bound;
	// K3 is always memory bound in the serial model.
	if b := Kernel0(PaperNode(), wl()).Bound; b != "compute" {
		t.Errorf("K0 bound = %s, want compute on the paper node", b)
	}
	if b := Kernel3(PaperNode(), wl()).Bound; b != "memory" {
		t.Errorf("K3 bound = %s, want memory", b)
	}
	// With USB-stick-class storage, K0 flips to storage bound.
	slow := PaperNode()
	slow.StorageWriteBW = 10e6
	if b := Kernel0(slow, wl()).Bound; b != "storage" {
		t.Errorf("K0 bound with 10 MB/s disk = %s, want storage", b)
	}
}

func TestMonotoneInBandwidth(t *testing.T) {
	slow := PaperNode()
	fastMem := PaperNode()
	fastMem.MemBandwidth *= 4
	if Kernel3(fastMem, wl()).EdgesPerSecond <= Kernel3(slow, wl()).EdgesPerSecond {
		t.Error("K3 rate not increasing in memory bandwidth")
	}
	fastDisk := PaperNode()
	fastDisk.StorageWriteBW *= 4
	if Kernel0(fastDisk, wl()).EdgesPerSecond <= Kernel0(slow, wl()).EdgesPerSecond {
		t.Error("K0 rate not increasing in write bandwidth")
	}
}

func TestRatesRoughlyScaleInvariant(t *testing.T) {
	// Edges/second is a per-edge rate; it should vary only mildly with
	// scale (via digit width and radix passes), staying within 2x across
	// the paper's sweep.
	lo := Kernel1(PaperNode(), Workload{Scale: 16})
	hi := Kernel1(PaperNode(), Workload{Scale: 22})
	ratio := lo.EdgesPerSecond / hi.EdgesPerSecond
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("K1 rate ratio scale16/scale22 = %.2f, want within 2x", ratio)
	}
}

func TestParallelSpeedupShape(t *testing.T) {
	h, w := PaperNode(), wl()
	if s := Speedup(h, w, 1); s != 1 {
		t.Errorf("Speedup(1) = %v", s)
	}
	s2, s4 := Speedup(h, w, 2), Speedup(h, w, 4)
	if s2 <= 1 || s4 <= s2 {
		t.Errorf("speedup not initially increasing: s2=%v s4=%v", s2, s4)
	}
	if s2 > 2.01 || s4 > 4.01 {
		t.Errorf("superlinear speedup predicted: s2=%v s4=%v", s2, s4)
	}
	// Scaling must roll off: at absurd p the efficiency collapses.
	s4096 := Speedup(h, w, 4096)
	if s4096/4096 > 0.5 {
		t.Errorf("efficiency at p=4096 = %v, expected communication rolloff", s4096/4096)
	}
}

func TestCommBoundAppears(t *testing.T) {
	h, w := PaperNode(), wl()
	p := CommBoundProcessorCount(h, w, 1<<20)
	if p == 0 {
		t.Fatal("model never becomes communication bound")
	}
	// Once communication bound, the Bound label must say so.
	pred := ParallelKernel3(h, w, p)
	if pred.Bound != "network" {
		t.Errorf("at p=%d bound = %s, want network", p, pred.Bound)
	}
	// Infinite network: never bound.
	inf := h
	inf.NetBandwidth = 1e18
	inf.NetLatency = 0
	if got := CommBoundProcessorCount(inf, w, 1<<12); got != 0 {
		t.Errorf("infinitely fast network reported comm bound at p=%d", got)
	}
}

func TestParallelP1MatchesSerial(t *testing.T) {
	h, w := PaperNode(), wl()
	serial := Kernel3(h, w)
	par := ParallelKernel3(h, w, 1)
	if par.EdgesPerSecond < serial.EdgesPerSecond*0.99 || par.EdgesPerSecond > serial.EdgesPerSecond*1.01 {
		t.Errorf("parallel p=1 %.3g != serial %.3g", par.EdgesPerSecond, serial.EdgesPerSecond)
	}
}

func TestParallelPBelowOne(t *testing.T) {
	pred := ParallelKernel3(PaperNode(), wl(), 0)
	if pred.EdgesPerSecond <= 0 {
		t.Error("p=0 should clamp to 1")
	}
	if p1 := ParallelKernel1(PaperNode(), wl(), 0); p1.EdgesPerSecond <= 0 {
		t.Error("K1 p=0 should clamp to 1")
	}
}

func TestParallelKernel1Shape(t *testing.T) {
	h, w := PaperNode(), wl()
	serial := Kernel1(h, w)
	p1 := ParallelKernel1(h, w, 1)
	// p=1 has no network term and should approximate the serial model.
	ratio := p1.EdgesPerSecond / serial.EdgesPerSecond
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("K1 parallel p=1 ratio %.2f", ratio)
	}
	// Initial scaling, then the all-to-all keeps efficiency bounded.
	r2 := ParallelKernel1(h, w, 2).EdgesPerSecond
	r8 := ParallelKernel1(h, w, 8).EdgesPerSecond
	if r2 <= p1.EdgesPerSecond || r8 <= r2 {
		t.Errorf("K1 not scaling: p1=%.3g p2=%.3g p8=%.3g", p1.EdgesPerSecond, r2, r8)
	}
	if r8/p1.EdgesPerSecond > 8 {
		t.Errorf("K1 superlinear speedup: %.2f at p=8", r8/p1.EdgesPerSecond)
	}
}

func TestParallelKernel1OutOfCoreSpillTerm(t *testing.T) {
	h, w := PaperNode(), wl()
	for _, p := range []int{1, 2, 8} {
		inMem := ParallelKernel1(h, w, p)
		ooc := w
		ooc.RunEdges = 1 << 20
		ext := ParallelKernel1(h, ooc, p)
		// The out-of-core regime adds exactly one 16 B/edge chunk write
		// and one read-back per node on top of the in-memory model.
		spill := w.M() / float64(p) * 16
		want := inMem.Seconds + spill/h.StorageWriteBW + spill/h.StorageReadBW
		if math.Abs(ext.Seconds-want) > 1e-12*want {
			t.Errorf("p=%d: out-of-core %.6g s, want %.6g", p, ext.Seconds, want)
		}
		if ext.EdgesPerSecond >= inMem.EdgesPerSecond {
			t.Errorf("p=%d: spilling did not cost anything", p)
		}
	}
}

func TestCompareRankElapsed(t *testing.T) {
	h, w := PaperNode(), wl()
	cmp, err := CompareRankElapsed(h, w, []float64{0.9, 1.2, 1.0, 1.1})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Procs != 4 {
		t.Errorf("procs = %d", cmp.Procs)
	}
	if cmp.MeasuredSeconds != 1.2 || cmp.MeanSeconds != 1.05 {
		t.Errorf("max/mean = %v/%v", cmp.MeasuredSeconds, cmp.MeanSeconds)
	}
	if cmp.Imbalance < 1 {
		t.Errorf("imbalance %v below 1", cmp.Imbalance)
	}
	// prediction() sums its times map, whose iteration order varies run
	// to run, so compare with a relative tolerance.
	want := ParallelKernel3(h, w, 4).Seconds
	if d := cmp.PredictedSeconds - want; d > 1e-9*want || d < -1e-9*want {
		t.Errorf("prediction %v, parallel kernel-3 model %v", cmp.PredictedSeconds, want)
	}
	if cmp.Ratio <= 0 {
		t.Errorf("ratio %v", cmp.Ratio)
	}
	if _, err := CompareRankElapsed(h, w, nil); err == nil {
		t.Error("empty rank times accepted (simulated runs must be rejected)")
	}
	if _, err := CompareRankElapsed(Hardware{}, w, []float64{1}); err == nil {
		t.Error("invalid hardware accepted")
	}
}
