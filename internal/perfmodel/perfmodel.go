package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/fastio"
)

// Hardware is the parameter set of the machine model.
type Hardware struct {
	// Name labels the model in reports.
	Name string
	// ScalarRate is sustained simple operations per second per core.
	ScalarRate float64
	// MemBandwidth is sustained memory bandwidth in bytes/second.
	MemBandwidth float64
	// StorageReadBW and StorageWriteBW are storage bandwidths in bytes/s.
	StorageReadBW  float64
	StorageWriteBW float64
	// NetLatency is the per-collective-hop latency in seconds.
	NetLatency float64
	// NetBandwidth is the per-link network bandwidth in bytes/second.
	NetBandwidth float64
	// Cores is the per-node core count.
	Cores int
}

// Validate reports parameter errors.
func (h Hardware) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"ScalarRate", h.ScalarRate},
		{"MemBandwidth", h.MemBandwidth},
		{"StorageReadBW", h.StorageReadBW},
		{"StorageWriteBW", h.StorageWriteBW},
		{"NetBandwidth", h.NetBandwidth},
	} {
		if f.v <= 0 {
			return fmt.Errorf("perfmodel: %s = %v, want > 0", f.name, f.v)
		}
	}
	if h.NetLatency < 0 {
		return fmt.Errorf("perfmodel: negative NetLatency")
	}
	if h.Cores < 1 {
		return fmt.Errorf("perfmodel: Cores = %d", h.Cores)
	}
	return nil
}

// PaperNode models the paper's test platform: an Intel Xeon E5-2650
// (2 GHz, 16 cores) with 64 GB of RAM and a Lustre filesystem.
func PaperNode() Hardware {
	return Hardware{
		Name:           "xeon-e5-2650-lustre",
		ScalarRate:     2e9,   // 2 GHz, ~1 simple op/cycle/core
		MemBandwidth:   40e9,  // DDR3-1600 4-channel class
		StorageReadBW:  800e6, // shared Lustre, single-client
		StorageWriteBW: 500e6,
		NetLatency:     2e-6, // InfiniBand class
		NetBandwidth:   5e9,  // 40 Gb/s class
		Cores:          16,
	}
}

// Workload carries the benchmark parameters the predictions depend on.
type Workload struct {
	// Scale is the Graph500 scale factor.
	Scale int
	// EdgeFactor is edges per vertex (16 in the benchmark).
	EdgeFactor int
	// Iterations is the kernel-3 iteration count (20 in the benchmark).
	Iterations int
	// Format names the edge-file codec the pipeline reads and writes
	// ("tsv", "naivetsv", "bin", "packed").  When BytesPerEdgeText is
	// zero, the model prices file traffic and codec compute from the
	// named codec's BytesPerEdge estimate at this workload's vertex
	// count.  Empty models the benchmark's tab-separated text default.
	Format string
	// BytesPerEdgeText is the average encoded file size of one edge.
	// Zero resolves it from Format (or the TSV default when Format is
	// also empty); set it explicitly to override the codec estimate.
	BytesPerEdgeText float64
	// RunEdges, when positive, selects the out-of-core kernel-1 regime
	// (dist.SortExternal): each node's run buffer holds RunEdges edges and
	// the sort round-trips its chunk through storage as sorted binary
	// runs.  Zero models the in-memory kernel 1.
	RunEdges int
	// SpillBytesPerEdge is the encoded size of one spilled edge in the
	// out-of-core regime.  Zero models the 16-byte fixed-width binary
	// spill record the sorters use by default; a packed-spill run
	// (pipeline.Config.Format "packed") prices in below 16.
	SpillBytesPerEdge float64
	// RankWorkers is the hybrid intra-rank worker count
	// (dist.Config.Workers): each rank's local compute runs on this many
	// cores of its node, capped at Hardware.Cores.  0/1 model serial
	// ranks.  Only compute terms divide by it — per-node memory and
	// storage bandwidth are shared by a node's workers, which is why the
	// memory-bound kernels stop speeding up once bandwidth binds (the
	// paper's central claim, now visible inside a single rank too).
	RankWorkers int
}

func (w Workload) withDefaults() Workload {
	if w.EdgeFactor == 0 {
		w.EdgeFactor = 16
	}
	if w.Iterations == 0 {
		w.Iterations = 20
	}
	if w.BytesPerEdgeText == 0 {
		if c, err := fastio.CodecByName(w.Format); w.Format != "" && err == nil {
			w.BytesPerEdgeText = c.BytesPerEdge(uint64(w.N()) - 1)
		} else {
			// Two ~6-digit labels, tab, newline at the paper's scales.
			w.BytesPerEdgeText = 14
		}
	}
	if w.SpillBytesPerEdge == 0 {
		w.SpillBytesPerEdge = 16 // fixed-width binary spill records
	}
	if w.RankWorkers < 1 {
		w.RankWorkers = 1
	}
	return w
}

// rankWorkers returns the effective intra-rank parallelism on h: the
// configured worker count, capped at the node's cores.
func (w Workload) rankWorkers(h Hardware) float64 {
	e := w.RankWorkers
	if e < 1 {
		e = 1
	}
	if h.Cores >= 1 && e > h.Cores {
		e = h.Cores
	}
	return float64(e)
}

// N returns the vertex count.
func (w Workload) N() float64 { return math.Exp2(float64(w.Scale)) }

// M returns the edge count.
func (w Workload) M() float64 { return float64(w.withDefaults().EdgeFactor) * w.N() }

// Model tuning constants: operation and traffic charges per edge.  These
// are the "simple hardware model" knobs; they are deliberately coarse.
const (
	// genOpsPerBit is the work to draw and place one Kronecker bit level
	// (two PRNG draws, two compares, two shifts).
	genOpsPerBit = 12.0
	// formatOpsPerByte / parseOpsPerByte are text codec costs.
	formatOpsPerByte = 2.0
	parseOpsPerByte  = 3.0
	// radixBytesPerEdgePass is memory traffic per edge per radix pass:
	// read 16 B + write 16 B.
	radixBytesPerEdgePass = 32.0
	// buildBytesPerEdge charges kernel 2's scatter: one cache line read
	// plus write amortized per edge placed out of order.
	buildBytesPerEdge = 96.0
	// spmvBytesPerNNZ is kernel 3's streaming traffic per stored entry:
	// 4 B column index + 8 B value + one amortized random access into the
	// rank vector (charged a half cache line) + output accumulation.
	spmvBytesPerNNZ = 52.0
	// partitionOpsPerEdge charges kernel 1's bucket partitioning: one
	// splitter binary search plus an append per routed edge — the only
	// kernel-1 work the hybrid intra-rank workers parallelize.
	partitionOpsPerEdge = 8.0
	// collisionFactor approximates NNZ/M after duplicate accumulation in
	// Kronecker graphs at paper scales.
	collisionFactor = 0.8
)

// Prediction is one kernel's predicted performance.
type Prediction struct {
	// Seconds is the predicted kernel duration.
	Seconds float64
	// EdgesPerSecond is the paper's metric for the kernel.
	EdgesPerSecond float64
	// Bound names the binding resource ("compute", "memory", "storage",
	// "network").
	Bound string
}

func prediction(edges float64, times map[string]float64) Prediction {
	var total float64
	bound, worst := "", 0.0
	for k, t := range times {
		total += t
		if t > worst {
			worst, bound = t, k
		}
	}
	return Prediction{Seconds: total, EdgesPerSecond: edges / total, Bound: bound}
}

// Kernel0 predicts graph generation and write-out.
func Kernel0(h Hardware, w Workload) Prediction {
	w = w.withDefaults()
	m := w.M()
	compute := m * (genOpsPerBit*float64(w.Scale) + formatOpsPerByte*w.BytesPerEdgeText) / h.ScalarRate
	storage := m * w.BytesPerEdgeText / h.StorageWriteBW
	return prediction(m, map[string]float64{"compute": compute, "storage": storage})
}

// Kernel1 predicts read, radix sort, write.
func Kernel1(h Hardware, w Workload) Prediction {
	w = w.withDefaults()
	m := w.M()
	passes := math.Ceil(float64(w.Scale) / 8)
	compute := m * (parseOpsPerByte + formatOpsPerByte) * w.BytesPerEdgeText / h.ScalarRate
	memory := m * radixBytesPerEdgePass * passes / h.MemBandwidth
	storage := m*w.BytesPerEdgeText/h.StorageReadBW + m*w.BytesPerEdgeText/h.StorageWriteBW
	return prediction(m, map[string]float64{"compute": compute, "memory": memory, "storage": storage})
}

// Kernel2 predicts read plus matrix construction and filtering.
func Kernel2(h Hardware, w Workload) Prediction {
	w = w.withDefaults()
	m := w.M()
	compute := m * parseOpsPerByte * w.BytesPerEdgeText / h.ScalarRate
	memory := m * buildBytesPerEdge / h.MemBandwidth
	storage := m * w.BytesPerEdgeText / h.StorageReadBW
	return prediction(m, map[string]float64{"compute": compute, "memory": memory, "storage": storage})
}

// Kernel3 predicts the fixed-iteration PageRank sweep.  Its reported rate
// uses Iterations·M edges, following the paper.
func Kernel3(h Hardware, w Workload) Prediction {
	w = w.withDefaults()
	m := w.M()
	nnz := m * collisionFactor
	iters := float64(w.Iterations)
	memory := iters * nnz * spmvBytesPerNNZ / h.MemBandwidth
	compute := iters * nnz * 2 / h.ScalarRate // multiply-add per entry
	return prediction(iters*m, map[string]float64{"memory": memory, "compute": compute})
}

// All returns predictions for the four kernels in order.
func All(h Hardware, w Workload) [4]Prediction {
	return [4]Prediction{Kernel0(h, w), Kernel1(h, w), Kernel2(h, w), Kernel3(h, w)}
}

// ---------------------------------------------------------------------------
// Parallel kernel-3 model (the paper's communication analysis)

// ParallelKernel3 predicts the distributed PageRank of package dist on p
// nodes of hardware h: compute time divides by p, while each iteration adds
// an all-reduce of the N-element rank vector whose cost grows with p.  The
// returned prediction's Bound turns "network" once the collective
// dominates — the paper's predicted behavior.
//
// Workload.RankWorkers adds the hybrid intra-rank term of dist.Config:
// the per-node compute time further divides by min(RankWorkers, Cores),
// while the per-node memory time does not (a node's workers share its
// bandwidth) — so intra-rank workers help exactly until the SpMV goes
// bandwidth-bound, which is what the prbench p×w scaling table measures.
func ParallelKernel3(h Hardware, w Workload, p int) Prediction {
	w = w.withDefaults()
	if p < 1 {
		p = 1
	}
	m := w.M()
	n := w.N()
	iters := float64(w.Iterations)
	nnz := m * collisionFactor
	memory := iters * nnz * spmvBytesPerNNZ / h.MemBandwidth / float64(p)
	compute := iters * nnz * 2 / h.ScalarRate / float64(p) / w.rankWorkers(h)
	network := 0.0
	if p > 1 {
		perIter := 2*n*8*float64(p-1)/float64(p)/h.NetBandwidth + math.Log2(float64(p))*h.NetLatency
		network = iters * perIter
	}
	times := map[string]float64{"memory": memory, "compute": compute}
	if p > 1 {
		times["network"] = network
	}
	return prediction(iters*m, times)
}

// ParallelKernel1 models the distributed sample sort of dist.Sort on p
// nodes, mirroring its metered communication schedule phase for phase:
// per-node storage and radix work divide by p; the all-to-all exchange
// routes each node's M/p edges, of which an expected (p-1)/p fraction are
// off-node at 16 bytes (two uint64 endpoints) each, injected at
// NetBandwidth; and the splitter exchange — a gather of
// dist.SamplesPerRank keys per node followed by a broadcast of p-1
// splitters — adds its 8-bytes-per-key volume plus two log2(p)-depth
// collective latencies.  dist.Sort's SortResult.Comm measures the same
// quantities, so model and measurement share their terms.
//
// A positive Workload.RunEdges switches the model to the out-of-core sort
// (dist.SortExternal): run formation spills each node's M/p-edge chunk to
// storage as SpillBytesPerEdge-byte records (16-byte fixed-width binary
// by default) and the pre-exchange partition streams it back, adding one
// storage write and one storage read of the chunk —
// the spill/merge I/O term dist's ExtSortResult.Spill measures (the k-way
// merge itself reads the already-exchanged segments from memory, so it
// adds no further storage traffic).
//
// Workload.RankWorkers adds the hybrid intra-rank term as a separate
// per-node partition charge (partitionOpsPerEdge per routed edge divided
// by min(RankWorkers, Cores)) — only the bucket partitioning is
// parallelized by dist.Config.Workers, so the text parse/format compute,
// the radix memory term and the storage terms do not divide by it.
func ParallelKernel1(h Hardware, w Workload, p int) Prediction {
	w = w.withDefaults()
	if p < 1 {
		p = 1
	}
	m := w.M()
	passes := math.Ceil(float64(w.Scale) / 8)
	compute := m*(parseOpsPerByte+formatOpsPerByte)*w.BytesPerEdgeText/h.ScalarRate/float64(p) +
		m*partitionOpsPerEdge/h.ScalarRate/float64(p)/w.rankWorkers(h)
	memory := m * radixBytesPerEdgePass * passes / h.MemBandwidth / float64(p)
	storage := (m*w.BytesPerEdgeText/h.StorageReadBW + m*w.BytesPerEdgeText/h.StorageWriteBW) / float64(p)
	if w.RunEdges > 0 {
		spill := m / float64(p) * w.SpillBytesPerEdge
		storage += spill/h.StorageWriteBW + spill/h.StorageReadBW
	}
	times := map[string]float64{"compute": compute, "memory": memory, "storage": storage}
	if p > 1 {
		perNode := m / float64(p) * 16 * float64(p-1) / float64(p)
		splitterExchange := 8 * float64(dist.SamplesPerRank+p-1)
		times["network"] = (perNode+splitterExchange)/h.NetBandwidth + 2*math.Log2(float64(p))*h.NetLatency
	}
	return prediction(m, times)
}

// ElapsedComparison relates the measured per-rank wall clock of a
// goroutine-mode distributed run (dist.Result.RankSeconds) to the
// parallel kernel-3 hardware model.  The model prices the iteration
// phase, so the comparison is sharpest for dist.RunMatrixMode results
// (pure kernel 3); for full dist.RunMode results the kernel-2 build adds
// a small constant the 20-iteration benchmark amortizes away.
type ElapsedComparison struct {
	// Procs is the rank count the comparison was taken at.
	Procs int
	// PredictedSeconds is ParallelKernel3's duration on the model hardware.
	PredictedSeconds float64
	// MeasuredSeconds is the slowest rank — the run's critical path.
	MeasuredSeconds float64
	// MeanSeconds is the average rank duration.
	MeanSeconds float64
	// Imbalance is MeasuredSeconds / MeanSeconds: 1.0 is a perfectly
	// balanced SPMD run; Kronecker hub rows push it above 1.
	Imbalance float64
	// Ratio is MeasuredSeconds / PredictedSeconds — how far the real host
	// sits from the modeled platform (it is not the modeled hardware, so
	// expect a stable constant across p rather than 1.0).
	Ratio float64
}

// CompareRankElapsed builds the predicted-vs-measured comparison for a
// goroutine-mode run's per-rank wall-clock times.
func CompareRankElapsed(h Hardware, w Workload, rankSeconds []float64) (ElapsedComparison, error) {
	if err := h.Validate(); err != nil {
		return ElapsedComparison{}, err
	}
	p := len(rankSeconds)
	if p == 0 {
		return ElapsedComparison{}, fmt.Errorf("perfmodel: no per-rank times (simulated runs have none)")
	}
	var sum, max float64
	for _, s := range rankSeconds {
		sum += s
		if s > max {
			max = s
		}
	}
	mean := sum / float64(p)
	cmp := ElapsedComparison{
		Procs:            p,
		PredictedSeconds: ParallelKernel3(h, w, p).Seconds,
		MeasuredSeconds:  max,
		MeanSeconds:      mean,
	}
	if mean > 0 {
		cmp.Imbalance = max / mean
	}
	if cmp.PredictedSeconds > 0 {
		cmp.Ratio = max / cmp.PredictedSeconds
	}
	return cmp, nil
}

// Speedup returns ParallelKernel3(p).EdgesPerSecond relative to p = 1.
func Speedup(h Hardware, w Workload, p int) float64 {
	base := ParallelKernel3(h, w, 1).EdgesPerSecond
	return ParallelKernel3(h, w, p).EdgesPerSecond / base
}

// CommBoundProcessorCount returns the smallest p at which the network time
// of the parallel kernel-3 model exceeds its memory time — the scale where
// the paper's "likely to be limited by network communication" kicks in.
// It returns 0 if no p up to maxP is communication bound.
func CommBoundProcessorCount(h Hardware, w Workload, maxP int) int {
	w = w.withDefaults()
	for p := 2; p <= maxP; p *= 2 {
		m := w.M() * collisionFactor * spmvBytesPerNNZ / h.MemBandwidth / float64(p)
		net := 2*w.N()*8*float64(p-1)/float64(p)/h.NetBandwidth + math.Log2(float64(p))*h.NetLatency
		if net > m {
			return p
		}
	}
	return 0
}
