// Package perfmodel implements the simple hardware performance models the
// paper calls for: "the computations are simple enough that performance
// predictions can be made based on simple computing hardware models."
//
// Each kernel's cost is modeled as the larger of its compute demand and its
// bandwidth demand on the relevant channel (a roofline-style bound):
//
//	K0  generate:  random-bit compute vs. storage-write bandwidth
//	K1  sort:      storage read+write plus radix passes over memory
//	K2  filter:    storage read plus scatter traffic to build the matrix
//	K3  pagerank:  pure memory streaming over the CSR per iteration,
//	               plus — in the parallel model — an all-reduce of the
//	               rank vector per iteration (the paper's predicted
//	               communication bottleneck)
//
// The models intentionally have few parameters; they predict orders of
// magnitude and shapes (which kernel is slowest, where parallel scaling
// rolls off), not exact numbers.
package perfmodel
