package xsort

import (
	"testing"

	"repro/internal/edge"
	"repro/internal/fastio"
)

func TestMergeSourcesByU(t *testing.T) {
	mk := func(pairs ...[2]uint64) *edge.List {
		l := edge.NewList(len(pairs))
		for _, p := range pairs {
			l.Append(p[0], p[1])
		}
		return l
	}
	a := mk([2]uint64{1, 0}, [2]uint64{5, 0}, [2]uint64{9, 0})
	b := mk([2]uint64{2, 0}, [2]uint64{3, 0})
	c := mk() // empty source participates harmlessly
	out := edge.NewList(0)
	err := MergeSources([]fastio.EdgeSource{
		fastio.NewListSource(a), fastio.NewListSource(b), fastio.NewListSource(c),
	}, fastio.NewListSink(out), false)
	if err != nil {
		t.Fatal(err)
	}
	wantU := []uint64{1, 2, 3, 5, 9}
	if out.Len() != len(wantU) {
		t.Fatalf("merged %d edges", out.Len())
	}
	for i, w := range wantU {
		if out.U[i] != w {
			t.Fatalf("merged[%d].U = %d, want %d", i, out.U[i], w)
		}
	}
}

func TestMergeSourcesStableTieBreak(t *testing.T) {
	// Equal keys: source 0's edges must precede source 1's.
	a := edge.NewList(2)
	a.Append(7, 100)
	a.Append(7, 101)
	b := edge.NewList(1)
	b.Append(7, 200)
	out := edge.NewList(0)
	err := MergeSources([]fastio.EdgeSource{fastio.NewListSource(a), fastio.NewListSource(b)},
		fastio.NewListSink(out), false)
	if err != nil {
		t.Fatal(err)
	}
	if out.V[0] != 100 || out.V[1] != 101 || out.V[2] != 200 {
		t.Errorf("tie-break order: %v", out.V)
	}
}

func TestMergeSourcesByUV(t *testing.T) {
	a := edge.NewList(2)
	a.Append(1, 9)
	a.Append(2, 1)
	b := edge.NewList(1)
	b.Append(1, 3)
	out := edge.NewList(0)
	err := MergeSources([]fastio.EdgeSource{fastio.NewListSource(a), fastio.NewListSource(b)},
		fastio.NewListSink(out), true)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsSortedByUV() {
		t.Errorf("byUV merge produced %v %v", out.U, out.V)
	}
}

func TestMergeSourcesManyRandom(t *testing.T) {
	full := randomList(31, 3000, 1<<20)
	// Split into 7 chunks, sort each, merge, compare with direct sort.
	const k = 7
	var sources []fastio.EdgeSource
	for i := 0; i < k; i++ {
		chunk := full.Slice(i*full.Len()/k, (i+1)*full.Len()/k).Clone()
		RadixByU(chunk)
		sources = append(sources, fastio.NewListSource(chunk))
	}
	out := edge.NewList(0)
	if err := MergeSources(sources, fastio.NewListSink(out), false); err != nil {
		t.Fatal(err)
	}
	if !out.IsSortedByU() || !out.SameMultiset(full) {
		t.Error("k-way merge incorrect")
	}
}

func TestMergeSourcesNoSources(t *testing.T) {
	out := edge.NewList(0)
	if err := MergeSources(nil, fastio.NewListSink(out), false); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Error("empty merge produced edges")
	}
}
