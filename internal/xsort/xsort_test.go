package xsort

import (
	"maps"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/edge"
	"repro/internal/fastio"
	"repro/internal/vfs"
	"repro/internal/xrand"
)

func randomList(seed uint64, n int, maxV uint64) *edge.List {
	g := xrand.New(seed)
	l := edge.NewList(n)
	for i := 0; i < n; i++ {
		l.Append(g.Uint64n(maxV), g.Uint64n(maxV))
	}
	return l
}

// sorters under test, all sorting by U.
var byUSorters = map[string]func(*edge.List){
	"ByU":       ByU,
	"ByUStable": ByUStable,
	"RadixByU":  RadixByU,
	"Parallel1": func(l *edge.List) { ParallelByU(l, 1) },
	"Parallel4": func(l *edge.List) { ParallelByU(l, 4) },
	"Parallel7": func(l *edge.List) { ParallelByU(l, 7) },
}

func TestSortersByU(t *testing.T) {
	for _, name := range slices.Sorted(maps.Keys(byUSorters)) {
		sortFn := byUSorters[name]
		t.Run(name, func(t *testing.T) {
			l := randomList(1, 2000, 1<<16)
			orig := l.Clone()
			sortFn(l)
			if !l.IsSortedByU() {
				t.Fatal("output not sorted by U")
			}
			if !l.SameMultiset(orig) {
				t.Fatal("sort changed the edge multiset")
			}
		})
	}
}

func TestSortersEdgeCases(t *testing.T) {
	for _, name := range slices.Sorted(maps.Keys(byUSorters)) {
		sortFn := byUSorters[name]
		t.Run(name, func(t *testing.T) {
			empty := edge.NewList(0)
			sortFn(empty)
			if empty.Len() != 0 {
				t.Error("empty list mangled")
			}
			single := edge.NewList(1)
			single.Append(5, 6)
			sortFn(single)
			if u, v := single.At(0); u != 5 || v != 6 {
				t.Error("single-element list mangled")
			}
			same := edge.NewList(4)
			for i := 0; i < 4; i++ {
				same.Append(7, uint64(i))
			}
			sortFn(same)
			if !same.IsSortedByU() || same.Len() != 4 {
				t.Error("all-equal-keys list mangled")
			}
		})
	}
}

func TestSortPropertyQuick(t *testing.T) {
	err := quick.Check(func(seed uint64, size uint16) bool {
		n := int(size%512) + 1
		l := randomList(seed, n, 1<<30)
		orig := l.Clone()
		RadixByU(l)
		return l.IsSortedByU() && l.SameMultiset(orig)
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestRadixMatchesStdSort(t *testing.T) {
	// Differential: radix (stable) must equal stable std sort exactly.
	a := randomList(3, 3000, 1<<20)
	b := a.Clone()
	RadixByU(a)
	ByUStable(b)
	if !a.Equal(b) {
		t.Error("RadixByU differs from stable comparison sort")
	}
}

func TestRadixStability(t *testing.T) {
	// Tag V with original index; equal-U edges must keep relative order.
	l := edge.NewList(100)
	g := xrand.New(4)
	for i := 0; i < 100; i++ {
		l.Append(g.Uint64n(5), uint64(i))
	}
	RadixByU(l)
	for i := 1; i < l.Len(); i++ {
		if l.U[i] == l.U[i-1] && l.V[i] < l.V[i-1] {
			t.Fatalf("stability violated at %d: U=%d V=%d after V=%d", i, l.U[i], l.V[i], l.V[i-1])
		}
	}
}

func TestByUVOrders(t *testing.T) {
	byUVSorters := map[string]func(*edge.List){"ByUV": ByUV, "RadixByUV": RadixByUV}
	for _, name := range slices.Sorted(maps.Keys(byUVSorters)) {
		s := byUVSorters[name]
		t.Run(name, func(t *testing.T) {
			l := randomList(5, 1500, 64) // small range forces many U ties
			orig := l.Clone()
			s(l)
			if !l.IsSortedByUV() {
				t.Fatal("not sorted by (U,V)")
			}
			if !l.SameMultiset(orig) {
				t.Fatal("multiset changed")
			}
		})
	}
}

func TestRadixLargeKeys(t *testing.T) {
	// Keys needing all 8 bytes.
	l := edge.NewList(3)
	l.Append(1<<63, 1)
	l.Append(1, 2)
	l.Append(1<<40, 3)
	RadixByU(l)
	if !l.IsSortedByU() {
		t.Errorf("large-key sort failed: %v", l.U)
	}
}

func TestSignificantBytes(t *testing.T) {
	cases := map[uint64]int{0: 1, 1: 1, 255: 1, 256: 2, 65535: 2, 65536: 3, 1 << 62: 8}
	for in, want := range cases {
		if got := significantBytes(in); got != want {
			t.Errorf("significantBytes(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestExternalSingleRun(t *testing.T) {
	l := randomList(6, 500, 1<<20)
	out := edge.NewList(0)
	stats, err := External(fastio.NewListSource(l), fastio.NewListSink(out), ExternalConfig{
		FS:       vfs.NewMem(),
		RunEdges: 10000, // everything fits in one run
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Edges != 500 || stats.Runs != 1 {
		t.Errorf("edges=%d runs=%d, want 500, 1", stats.Edges, stats.Runs)
	}
	if stats.Spill != (vfs.IOStats{}) {
		t.Errorf("single-run fast path recorded spill traffic: %+v", stats.Spill)
	}
	if !out.IsSortedByU() || !out.SameMultiset(l) {
		t.Error("single-run external sort incorrect")
	}
}

func TestExternalMultiRun(t *testing.T) {
	l := randomList(7, 5000, 1<<20)
	fs := vfs.NewMem()
	out := edge.NewList(0)
	stats, err := External(fastio.NewListSource(l), fastio.NewListSink(out), ExternalConfig{
		FS:        fs,
		RunEdges:  512, // force ~10 spill runs
		TmpPrefix: "tmp/run",
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Edges != 5000 {
		t.Errorf("edges = %d", stats.Edges)
	}
	if stats.Runs < 9 {
		t.Errorf("runs = %d, want ~10", stats.Runs)
	}
	if stats.Codec != "bin" {
		t.Errorf("default spill codec = %q, want bin", stats.Codec)
	}
	// Fixed-width spill accounting: every edge is written once and read
	// back once at exactly 16 bytes.
	if stats.Spill.BytesWritten != 16*5000 || stats.Spill.BytesRead != 16*5000 {
		t.Errorf("spill bytes = %+v, want 80000 both ways", stats.Spill)
	}
	if !out.IsSortedByU() {
		t.Error("multi-run output not sorted")
	}
	if !out.SameMultiset(l) {
		t.Error("multi-run output lost edges")
	}
	// Temp files must be cleaned up.
	names, _ := fs.List()
	if len(names) != 0 {
		t.Errorf("leftover temp files: %v", names)
	}
}

// failingSink errors after accepting budget edges — a downstream
// destination failure during the merge phase.
type failingSink struct {
	budget int
}

func (s *failingSink) WriteEdge(u, v uint64) error {
	if s.budget <= 0 {
		return vfs.ErrInjected
	}
	s.budget--
	return nil
}

func (s *failingSink) Flush() error { return nil }

func TestExternalFailureLeavesNoRunFiles(t *testing.T) {
	const edges = 5000
	l := randomList(11, edges, 1<<20)
	// All spilled runs together are 16 bytes per edge.
	writeBytes := int64(16 * edges)
	cases := map[string]struct {
		budget int64 // Faulty I/O budget
		sink   fastio.EdgeSink
	}{
		"spill-fails":      {budget: writeBytes / 2, sink: fastio.NewListSink(edge.NewList(0))},
		"merge-read-fails": {budget: writeBytes + 8, sink: fastio.NewListSink(edge.NewList(0))},
		"merge-sink-fails": {budget: 1 << 40, sink: &failingSink{budget: edges / 2}},
	}
	for _, name := range slices.Sorted(maps.Keys(cases)) {
		tc := cases[name]
		t.Run(name, func(t *testing.T) {
			mem := vfs.NewMem()
			_, err := External(fastio.NewListSource(l), tc.sink, ExternalConfig{
				FS:        vfs.NewFaulty(mem, tc.budget),
				RunEdges:  512,
				TmpPrefix: "tmp/extsort",
			})
			if err == nil {
				t.Fatal("injected failure not surfaced")
			}
			// The documented contract: run files are deleted on completion,
			// success and failure alike.
			names, lerr := mem.List()
			if lerr != nil {
				t.Fatal(lerr)
			}
			if len(names) != 0 {
				t.Errorf("failed sort left run files behind: %v", names)
			}
		})
	}
}

func TestSpillRunAndOpenRunsRoundTrip(t *testing.T) {
	fs := vfs.NewMem()
	a := randomList(12, 300, 1<<10)
	b := randomList(13, 200, 1<<10)
	for i, l := range []*edge.List{a, b} {
		if err := SpillRun(fs, fastio.StripeName("runs", fastio.Binary{}, i), fastio.Binary{}, l, false); err != nil {
			t.Fatal(err)
		}
		if !l.IsSortedByU() {
			t.Fatal("SpillRun did not sort its buffer")
		}
	}
	names := []string{
		fastio.StripeName("runs", fastio.Binary{}, 0),
		fastio.StripeName("runs", fastio.Binary{}, 1),
	}
	sources, closeAll, err := OpenRuns(fs, fastio.Binary{}, names)
	if err != nil {
		t.Fatal(err)
	}
	defer closeAll()
	merged := edge.NewList(0)
	if err := MergeSources(sources, fastio.NewListSink(merged), false); err != nil {
		t.Fatal(err)
	}
	want := edge.NewList(0)
	want.AppendList(a)
	want.AppendList(b)
	RadixByU(want)
	if !merged.IsSortedByU() || merged.Len() != want.Len() {
		t.Fatal("merged round trip incorrect")
	}
	if err := RemoveRuns(fs, names); err != nil {
		t.Fatal(err)
	}
	if left, _ := fs.List(); len(left) != 0 {
		t.Fatalf("RemoveRuns left %v", left)
	}
	// Removing already-removed runs is not an error.
	if err := RemoveRuns(fs, names); err != nil {
		t.Fatalf("second RemoveRuns: %v", err)
	}
}

func TestMergeListsStable(t *testing.T) {
	// Three sorted lists with heavy key collisions: ties must resolve by
	// list index, making the merge of stably-sorted slices stable.
	lists := make([]*edge.List, 3)
	for i := range lists {
		lists[i] = edge.NewList(10)
		for j := 0; j < 10; j++ {
			lists[i].Append(uint64(j/2), uint64(i*100+j))
		}
	}
	out := edge.NewList(0)
	MergeLists(lists, out, false)
	if !out.IsSortedByU() {
		t.Fatal("merged output not sorted")
	}
	if out.Len() != 30 {
		t.Fatalf("merged %d edges, want 30", out.Len())
	}
	// Within one key, list 0's edges precede list 1's precede list 2's,
	// and within one list input order survives (V strictly increasing).
	lastV := map[uint64]uint64{} // per source list (V/100), last V seen
	lastList := uint64(0)
	prevU := uint64(0)
	for i := 0; i < out.Len(); i++ {
		u, v := out.At(i)
		src := v / 100
		if u != prevU {
			prevU, lastList = u, 0
			lastV = map[uint64]uint64{}
		}
		if src < lastList {
			t.Fatalf("tie at key %d broken out of list order", u)
		}
		lastList = src
		if prev, ok := lastV[src]; ok && v <= prev {
			t.Fatalf("list %d order not preserved at key %d", src, u)
		}
		lastV[src] = v
	}
	// Degenerate shapes.
	empty := edge.NewList(0)
	MergeLists(nil, empty, false)
	MergeLists([]*edge.List{edge.NewList(0)}, empty, false)
	if empty.Len() != 0 {
		t.Fatal("merging empties produced edges")
	}
}

func TestExternalByUV(t *testing.T) {
	l := randomList(8, 3000, 32)
	out := edge.NewList(0)
	_, err := External(fastio.NewListSource(l), fastio.NewListSink(out), ExternalConfig{
		FS:       vfs.NewMem(),
		RunEdges: 256,
		ByUV:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsSortedByUV() {
		t.Error("ByUV external sort not lexicographically sorted")
	}
	if !out.SameMultiset(l) {
		t.Error("ByUV external sort lost edges")
	}
}

func TestExternalEmptyInput(t *testing.T) {
	out := edge.NewList(0)
	stats, err := External(fastio.NewListSource(edge.NewList(0)), fastio.NewListSink(out), ExternalConfig{FS: vfs.NewMem()})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Edges != 0 || out.Len() != 0 {
		t.Errorf("empty input: edges=%d out=%d runs=%d", stats.Edges, out.Len(), stats.Runs)
	}
}

func TestExternalNilFS(t *testing.T) {
	_, err := External(fastio.NewListSource(edge.NewList(0)), fastio.NewListSink(edge.NewList(0)), ExternalConfig{})
	if err == nil {
		t.Error("nil FS accepted")
	}
}

func TestExternalMatchesInMemory(t *testing.T) {
	// Differential: external (stable across runs by construction: run index
	// tiebreak) must equal stable in-memory sort.
	l := randomList(9, 4000, 256)
	mem := l.Clone()
	ByUStable(mem)
	out := edge.NewList(0)
	_, err := External(fastio.NewListSource(l), fastio.NewListSink(out), ExternalConfig{
		FS:       vfs.NewMem(),
		RunEdges: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(mem) {
		t.Error("external sort is not stable-equivalent to in-memory stable sort")
	}
}

func BenchmarkRadixByU10k(b *testing.B) {
	src := randomList(1, 10000, 1<<22)
	l := src.Clone()
	b.SetBytes(int64(src.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(l.U, src.U)
		copy(l.V, src.V)
		RadixByU(l)
	}
}

func BenchmarkStdByU10k(b *testing.B) {
	src := randomList(1, 10000, 1<<22)
	l := src.Clone()
	b.SetBytes(int64(src.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(l.U, src.U)
		copy(l.V, src.V)
		ByU(l)
	}
}
