// Package xsort implements the sorting machinery for kernel 1 of the
// PageRank pipeline benchmark.
//
// Kernel 1 reads the edge files written by kernel 0, sorts the edges by
// start vertex, and writes them back in the same format.  The paper notes
// the kernel "has many similarities to the Sort benchmark" and that the
// algorithm choice depends on scale: an in-memory algorithm when the edge
// vectors fit in RAM, an out-of-core algorithm otherwise.  This package
// provides both regimes:
//
//   - ByU / ByUV: comparison sorts via the standard library (the
//     straightforward implementation, used by the coo variant);
//   - RadixByU / RadixByUV: LSD radix sorts specialized for uint64 vertex
//     labels (the optimized implementation, used by the csr variant);
//   - Merge-based parallel sort (the parallel variant);
//   - External: an out-of-core external merge sort that spills fixed-size
//     sorted runs to a vfs.FS and k-way merges them (the extsort variant).
package xsort

import (
	"container/heap"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"

	"repro/internal/edge"
	"repro/internal/fastio"
	"repro/internal/vfs"
)

// ---------------------------------------------------------------------------
// In-memory comparison sorts

type byU struct{ *edge.List }

func (s byU) Less(i, j int) bool { return s.U[i] < s.U[j] }

type byUV struct{ *edge.List }

func (s byUV) Less(i, j int) bool {
	return s.U[i] < s.U[j] || (s.U[i] == s.U[j] && s.V[i] < s.V[j])
}

// ByU sorts the edges in place by start vertex using the standard library's
// comparison sort (pattern-defeating quicksort).
func ByU(l *edge.List) { sort.Sort(byU{l}) }

// ByUStable sorts by start vertex preserving the relative order of edges
// with equal start vertices.
func ByUStable(l *edge.List) { sort.Stable(byU{l}) }

// ByUV sorts the edges in place by (start, end) vertex lexicographically —
// the paper's "should the end vertices also be sorted?" option.
func ByUV(l *edge.List) { sort.Sort(byUV{l}) }

// ---------------------------------------------------------------------------
// Radix sort

// significantBytes returns how many low-order bytes of key are needed to
// cover values <= max.
func significantBytes(max uint64) int {
	b := 1
	for max > 0xFF {
		max >>= 8
		b++
	}
	return b
}

// RadixByU sorts the edges by start vertex with an LSD byte-radix sort.
// It is stable and runs in O(passes · M) time with one auxiliary edge list;
// passes is the number of significant bytes in the largest start vertex.
func RadixByU(l *edge.List) {
	radix(l, l.U, nil)
}

// RadixByUV sorts the edges lexicographically by (U, V): a stable LSD pass
// over V's bytes followed by stable passes over U's bytes.
func RadixByUV(l *edge.List) {
	radix(l, l.V, nil)
	radix(l, l.U, nil)
}

// radix performs a stable LSD radix sort of l ordered by the given key
// slice (which must alias l.U or l.V).  scratch, if non-nil, supplies a
// reusable buffer of the same length.
func radix(l *edge.List, keys []uint64, scratch *edge.List) {
	m := l.Len()
	if m < 2 {
		return
	}
	var max uint64
	for _, k := range keys {
		if k > max {
			max = k
		}
	}
	passes := significantBytes(max)
	if scratch == nil || scratch.Len() < m {
		scratch = edge.Make(m)
	}
	src, dst := l, scratch
	srcKeys := keys
	keyIsU := &keys[0] == &l.U[0]
	var count [256]int
	for p := 0; p < passes; p++ {
		shift := uint(8 * p)
		for i := range count {
			count[i] = 0
		}
		for _, k := range srcKeys {
			count[(k>>shift)&0xFF]++
		}
		sum := 0
		for i := range count {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for i := 0; i < m; i++ {
			b := (srcKeys[i] >> shift) & 0xFF
			j := count[b]
			count[b]++
			dst.U[j] = src.U[i]
			dst.V[j] = src.V[i]
		}
		src, dst = dst, src
		if keyIsU {
			srcKeys = src.U
		} else {
			srcKeys = src.V
		}
	}
	if src != l {
		copy(l.U, src.U)
		copy(l.V, src.V)
	}
}

// ---------------------------------------------------------------------------
// Parallel merge sort

// ParallelByU sorts the edges by start vertex using workers goroutines:
// each worker radix-sorts a contiguous chunk, then chunks are merged
// pairwise.  workers <= 0 selects GOMAXPROCS.  The sort is stable.
func ParallelByU(l *edge.List, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := l.Len()
	if workers > m {
		workers = m
	}
	if m < 2 {
		return
	}
	if workers < 2 {
		RadixByU(l)
		return
	}
	// Sort chunks concurrently.
	bounds := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		bounds[w] = w * m / workers
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo == hi {
			continue
		}
		wg.Add(1)
		//prlint:allow determinism -- workers radix-sort disjoint slices and join on wg; the merge below fixes the final order
		go func(sub *edge.List) {
			defer wg.Done()
			RadixByU(sub)
		}(l.Slice(lo, hi))
	}
	wg.Wait()
	// Merge pairwise until one run remains.
	runs := make([][2]int, 0, workers)
	for w := 0; w < workers; w++ {
		if bounds[w] != bounds[w+1] {
			runs = append(runs, [2]int{bounds[w], bounds[w+1]})
		}
	}
	buf := edge.Make(m)
	for len(runs) > 1 {
		var next [][2]int
		var mwg sync.WaitGroup
		for i := 0; i+1 < len(runs); i += 2 {
			a, b := runs[i], runs[i+1]
			next = append(next, [2]int{a[0], b[1]})
			mwg.Add(1)
			//prlint:allow determinism -- pairwise merges touch disjoint [a,b) ranges and join on mwg each round
			go func(a, b [2]int) {
				defer mwg.Done()
				mergeRuns(l, buf, a[0], a[1], b[1])
			}(a, b)
		}
		if len(runs)%2 == 1 {
			next = append(next, runs[len(runs)-1])
		}
		mwg.Wait()
		runs = next
	}
}

// mergeRuns merges the sorted ranges [lo, mid) and [mid, hi) of l through
// buf, stably by U.
func mergeRuns(l, buf *edge.List, lo, mid, hi int) {
	i, j, k := lo, mid, lo
	for i < mid && j < hi {
		if l.U[j] < l.U[i] {
			buf.U[k], buf.V[k] = l.U[j], l.V[j]
			j++
		} else {
			buf.U[k], buf.V[k] = l.U[i], l.V[i]
			i++
		}
		k++
	}
	for i < mid {
		buf.U[k], buf.V[k] = l.U[i], l.V[i]
		i++
		k++
	}
	for j < hi {
		buf.U[k], buf.V[k] = l.U[j], l.V[j]
		j++
		k++
	}
	copy(l.U[lo:hi], buf.U[lo:hi])
	copy(l.V[lo:hi], buf.V[lo:hi])
}

// ---------------------------------------------------------------------------
// External merge sort

// ExternalConfig parameterizes the out-of-core sort.
type ExternalConfig struct {
	// FS receives the intermediate run files.
	FS vfs.FS
	// TmpPrefix names the run files; they are deleted on completion,
	// whether the sort succeeds or fails part-way.
	TmpPrefix string
	// RunEdges is the number of edges sorted in memory per run.  It models
	// the available RAM: RunEdges·16 bytes is the sorter's working set.
	RunEdges int
	// ByUV additionally orders equal-U edges by V.
	ByUV bool
	// Codec encodes the spilled run files; nil means fastio.Binary, the
	// fixed-width record with exact 16 B/edge accounting.
	Codec fastio.Codec
}

// DefaultRunEdges sorts 1 Mi edges (16 MiB) per run when unset.
const DefaultRunEdges = 1 << 20

// SpillRun stably sorts buf in place (by U, or by (U, V) when byUV) and
// writes it to fs under name in the given codec.  It is the run-formation
// step of the external sorters, exported because the distributed
// out-of-core kernel 1 forms per-rank runs the same way.  Sorted runs are
// the Packed codec's best case; the fixed-width Binary codec gives exact
// 16 B/edge spill accounting.
func SpillRun(fs vfs.FS, name string, codec fastio.Codec, buf *edge.List, byUV bool) error {
	if byUV {
		RadixByUV(buf)
	} else {
		RadixByU(buf)
	}
	w, err := fs.Create(name)
	if err != nil {
		return err
	}
	sink := codec.NewWriter(w)
	if err := fastio.WriteEdges(sink, buf, 0, buf.Len()); err != nil {
		w.Close()
		return err
	}
	if err := sink.Flush(); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// OpenRuns opens the named run files on fs for merging, returning one
// streaming source per name (in the given order, decoding with the given
// codec) and a close-all function.  On error the already-opened files are
// closed before return.
func OpenRuns(fs vfs.FS, codec fastio.Codec, names []string) ([]fastio.EdgeSource, func(), error) {
	sources := make([]fastio.EdgeSource, len(names))
	closers := make([]io.Closer, 0, len(names))
	closeAll := func() {
		for _, c := range closers {
			c.Close()
		}
	}
	for i, name := range names {
		r, err := fs.Open(name)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		closers = append(closers, r)
		sources[i] = codec.NewReader(r)
	}
	return sources, closeAll, nil
}

// RemoveRuns deletes the named run files, keeping the first failure; files
// that are already gone are not an error (a partially failed spill may not
// have created every name the caller tracked).
func RemoveRuns(fs vfs.FS, names []string) error {
	var first error
	for _, name := range names {
		if err := fs.Remove(name); err != nil && first == nil && !errors.Is(err, os.ErrNotExist) {
			first = err
		}
	}
	return first
}

// ExternalStats reports what an External sort did: how many edges moved,
// how many runs spilled, which codec encoded them, and the encoded byte
// traffic of the spill files — so a cheaper spill codec shows up as
// measured bytes, not an asserted constant.
type ExternalStats struct {
	// Edges is the number of edges sorted.
	Edges int
	// Runs is the number of sorted runs formed (1 for the in-memory fast
	// path, which spills nothing).
	Runs int
	// Codec names the spill codec.
	Codec string
	// Spill counts the run files' encoded bytes: BytesWritten during run
	// formation, BytesRead during the merge.  Both are zero on the
	// single-run fast path.
	Spill vfs.IOStats
}

// External sorts the edge stream src into dst using at most
// cfg.RunEdges·16 bytes of in-memory edge storage, spilling sorted runs to
// cfg.FS in cfg.Codec (Binary by default) and k-way merging them with a
// heap.  Run files are removed before return on success and failure alike,
// so an aborted sort leaves no stripes behind.
func External(src fastio.EdgeSource, dst fastio.EdgeSink, cfg ExternalConfig) (stats ExternalStats, err error) {
	if cfg.FS == nil {
		return stats, fmt.Errorf("xsort: ExternalConfig.FS is nil")
	}
	if cfg.RunEdges <= 0 {
		cfg.RunEdges = DefaultRunEdges
	}
	if cfg.TmpPrefix == "" {
		cfg.TmpPrefix = "xsort-run"
	}
	if cfg.Codec == nil {
		cfg.Codec = fastio.Binary{}
	}
	stats.Codec = cfg.Codec.Name()
	// Meter the spill traffic.  Only the run files flow through the
	// wrapped FS — src and dst belong to the caller — so the stats are
	// exactly the spill bytes.
	meter := vfs.NewMetered(cfg.FS)
	cfg.FS = meter
	defer func() { stats.Spill = meter.Stats() }()

	// Phase 1: produce sorted runs.  Whatever happens below, the spilled
	// stripes are gone when External returns.
	buf := edge.NewList(cfg.RunEdges)
	var runNames []string
	defer func() {
		if rmErr := RemoveRuns(cfg.FS, runNames); rmErr != nil && err == nil {
			err = rmErr
		}
	}()
	flushRun := func() error {
		if buf.Len() == 0 {
			return nil
		}
		name := fastio.StripeName(cfg.TmpPrefix, cfg.Codec, len(runNames))
		// Track the name before writing: a failed spill may still have
		// created the file, and the deferred cleanup must catch it.
		runNames = append(runNames, name)
		if err := SpillRun(cfg.FS, name, cfg.Codec, buf, cfg.ByUV); err != nil {
			return err
		}
		buf.Reset()
		return nil
	}
	for {
		n, rerr := fastio.ReadEdges(src, buf, cfg.RunEdges-buf.Len())
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			stats.Runs = len(runNames)
			return stats, rerr
		}
		stats.Edges += n
		if buf.Len() >= cfg.RunEdges {
			if err := flushRun(); err != nil {
				stats.Runs = len(runNames)
				return stats, err
			}
		}
	}

	// Single-run fast path: no spill needed.
	if len(runNames) == 0 {
		if cfg.ByUV {
			RadixByUV(buf)
		} else {
			RadixByU(buf)
		}
		stats.Runs = 1
		if err := fastio.WriteEdges(dst, buf, 0, buf.Len()); err != nil {
			return stats, err
		}
		return stats, dst.Flush()
	}
	if err := flushRun(); err != nil {
		stats.Runs = len(runNames)
		return stats, err
	}
	stats.Runs = len(runNames)

	// Phase 2: k-way merge.
	if err := mergeSpilledRuns(cfg, runNames, dst); err != nil {
		return stats, err
	}
	return stats, nil
}

// mergeEntry is one head-of-run element in the merge heap.
type mergeEntry struct {
	u, v uint64
	run  int // index of the source run, used as a stable tiebreaker
}

type mergeHeap struct {
	items []mergeEntry
	byUV  bool
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.u != b.u {
		return a.u < b.u
	}
	if h.byUV && a.v != b.v {
		return a.v < b.v
	}
	return a.run < b.run
}
func (h *mergeHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x interface{}) { h.items = append(h.items, x.(mergeEntry)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

func mergeSpilledRuns(cfg ExternalConfig, runNames []string, dst fastio.EdgeSink) error {
	sources, closeAll, err := OpenRuns(cfg.FS, cfg.Codec, runNames)
	if err != nil {
		return err
	}
	defer closeAll()
	return MergeSources(sources, dst, cfg.ByUV)
}

// MergeLists k-way merges already-sorted edge lists, appending the merged
// stream to dst.  Ties break by list index, so merging stably-sorted lists
// in a deterministic order is stable — the per-bucket merge step of the
// distributed out-of-core sort, where each list is one spilled-run segment
// and list order is (source rank, run) order.  It is MergeSources over
// list-backed streams, so the two merges share one heap and one tie rule.
func MergeLists(lists []*edge.List, dst *edge.List, byUV bool) {
	switch len(lists) {
	case 0:
		return
	case 1:
		dst.AppendList(lists[0])
		return
	}
	sources := make([]fastio.EdgeSource, len(lists))
	for i, l := range lists {
		sources[i] = fastio.NewListSource(l)
	}
	if err := MergeSources(sources, fastio.NewListSink(dst), byUV); err != nil {
		// Unreachable: list sources and sinks never fail.
		panic(err)
	}
}

// MergeSources k-way merges already-sorted edge streams into dst,
// preserving the sort order (by U, or by (U, V) when byUV is set).  Ties
// break by source index, so merging stably-sorted sources is stable.
// It is the merge phase of the external sorter, exported because the same
// operation combines per-processor sorted files in distributed kernel-1
// settings.  Sources that are not actually sorted produce merged output
// that is not sorted either; callers own that precondition.  MergeLists is
// the in-memory counterpart for segments already resident as edge lists.
func MergeSources(sources []fastio.EdgeSource, dst fastio.EdgeSink, byUV bool) error {
	h := &mergeHeap{byUV: byUV}
	for i, src := range sources {
		u, v, err := src.ReadEdge()
		if err == io.EOF {
			continue
		}
		if err != nil {
			return err
		}
		h.items = append(h.items, mergeEntry{u, v, i})
	}
	heap.Init(h)
	for h.Len() > 0 {
		top := h.items[0]
		if err := dst.WriteEdge(top.u, top.v); err != nil {
			return err
		}
		u, v, err := sources[top.run].ReadEdge()
		if err == io.EOF {
			heap.Pop(h)
			continue
		}
		if err != nil {
			return err
		}
		h.items[0] = mergeEntry{u, v, top.run}
		heap.Fix(h, 0)
	}
	return dst.Flush()
}
