// Package workteam provides a persistent signal/join worker team: n
// goroutines spawned once and driven round by round over pre-made
// channels.  Spawning goroutines per operation allocates; a team costs
// its allocations at construction and nothing per round, which is the
// allocation budget the kernel-3 engines are pinned to (DESIGN.md §7).
// Both the shared-memory parallel PageRank engine (internal/pagerank)
// and the hybrid per-rank SpMV teams (internal/dist) are built on it.
package workteam

import "sync"

// Team is a fixed set of worker goroutines executing one shared work
// function per round.  A Team must be Closed when no longer needed or
// its goroutines leak; it must not be used after Close, and rounds must
// not overlap (Run is not reentrant).
type Team struct {
	start []chan struct{}
	wg    sync.WaitGroup
}

// New spawns n worker goroutines, each executing work(worker) once per
// Run round.  Per-round inputs are typically fields of the owning struct
// that the caller writes before Run: the signalling channel send
// happens-after those writes and the join happens-after every worker's
// work returns, so the worker never races the caller on them.
func New(n int, work func(worker int)) *Team {
	t := &Team{start: make([]chan struct{}, n)}
	for i := 0; i < n; i++ {
		ch := make(chan struct{}, 1)
		t.start[i] = ch
		go func(worker int) {
			for range ch {
				work(worker)
				t.wg.Done()
			}
		}(i)
	}
	return t
}

// Run executes one round — signal every worker, wait for all — with zero
// heap allocations.
func (t *Team) Run() {
	t.wg.Add(len(t.start))
	for _, ch := range t.start {
		ch <- struct{}{}
	}
	t.wg.Wait()
}

// Close terminates the worker goroutines.  The team must not be used
// afterwards.
func (t *Team) Close() {
	for _, ch := range t.start {
		close(ch)
	}
}
