package workteam

import (
	"sync/atomic"
	"testing"
)

func TestTeamRunsEveryWorkerPerRound(t *testing.T) {
	var hits [5]int64
	tm := New(5, func(w int) { atomic.AddInt64(&hits[w], 1) })
	defer tm.Close()
	const rounds = 7
	for i := 0; i < rounds; i++ {
		tm.Run()
	}
	for w, h := range hits {
		if h != rounds {
			t.Errorf("worker %d ran %d times, want %d", w, h, rounds)
		}
	}
}

func TestTeamRunZeroAllocs(t *testing.T) {
	var sink int64
	tm := New(4, func(w int) { atomic.AddInt64(&sink, int64(w)) })
	defer tm.Close()
	tm.Run() // warm
	if allocs := testing.AllocsPerRun(50, tm.Run); allocs != 0 {
		t.Errorf("Run allocates %.1f/op, want 0", allocs)
	}
}
