package core

import (
	"testing"

	"repro/internal/kronecker"
	"repro/internal/pagerank"
)

func TestRunFacade(t *testing.T) {
	res, err := Run(Config{Scale: 7, EdgeFactor: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kernels) != 4 {
		t.Fatalf("kernels = %d", len(res.Kernels))
	}
	if res.KernelResultFor(K3PageRank) == nil {
		t.Error("no K3 record")
	}
}

func TestRunKernelsFacade(t *testing.T) {
	fs := NewMemFS()
	cfg := Config{Scale: 6, Seed: 2, FS: fs}
	if _, err := RunKernels(cfg, []Kernel{K0Generate, K1Sort}); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List()
	if len(names) != 2 { // one k0 stripe, one k1 stripe
		t.Errorf("files after K0+K1: %v", names)
	}
}

func TestVariantsNonEmpty(t *testing.T) {
	vs := Variants()
	if len(vs) < 6 {
		t.Errorf("variants = %v", vs)
	}
}

func TestSizeTableFacade(t *testing.T) {
	rows := SizeTable(PaperScales, 0, 0)
	if len(rows) != 7 || rows[0].Scale != 16 {
		t.Errorf("size table = %+v", rows)
	}
}

func TestDistributedRunFacade(t *testing.T) {
	l, err := kronecker.Generate(kronecker.New(7, 3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := DistributedRun(l, 1<<7, 2, pagerank.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rank) != 1<<7 || res.Comm.AllReduceCalls == 0 {
		t.Error("distributed facade incomplete result")
	}
}

func TestPredictKernelsFacade(t *testing.T) {
	preds := PredictKernels(20)
	for i, p := range preds {
		if p.EdgesPerSecond <= 0 {
			t.Errorf("kernel %d prediction %v", i, p)
		}
	}
}

func TestNewDirFSFacade(t *testing.T) {
	d, err := NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Scale: 5, FS: d}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDistributedRunModeFacade(t *testing.T) {
	l, err := kronecker.Generate(kronecker.New(7, 3))
	if err != nil {
		t.Fatal(err)
	}
	opt := pagerank.Options{Seed: 1, Iterations: 4}
	sim, err := DistributedRunMode(ExecSim, l, 1<<7, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	real, err := DistributedRunMode(ExecGoroutine, l, 1<<7, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sim.Rank {
		if real.Rank[i] != sim.Rank[i] {
			t.Fatalf("mode results differ at %d", i)
		}
	}
	if real.Comm != sim.Comm {
		t.Errorf("mode comm records differ: %+v vs %+v", real.Comm, sim.Comm)
	}
	if len(real.RankSeconds) != 3 {
		t.Errorf("goroutine mode reported %d rank times", len(real.RankSeconds))
	}
}

func TestConfigDistModeValidated(t *testing.T) {
	if err := (Config{Scale: 6, DistMode: "mpi"}).Validate(); err == nil {
		t.Error("unknown DistMode accepted")
	}
	if err := (Config{Scale: 6, Variant: "distgo", DistMode: "sim"}).Validate(); err != nil {
		t.Errorf("valid DistMode rejected: %v", err)
	}
}
