package core_test

import (
	"fmt"

	"repro/internal/core"
)

// ExampleRun executes the full four-kernel benchmark at a tiny scale and
// prints the structural invariants (timings vary run to run, so the
// example prints only deterministic quantities).
func ExampleRun() {
	res, err := core.Run(core.Config{Scale: 6, EdgeFactor: 4, Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("kernels run:", len(res.Kernels))
	fmt.Println("edges:", res.Kernels[0].Edges)
	fmt.Println("matrix mass:", res.MatrixMass)
	fmt.Println("pagerank iterations:", res.RankIterations)
	// Output:
	// kernels run: 4
	// edges: 256
	// matrix mass: 256
	// pagerank iterations: 20
}

// ExampleSizeTable reproduces the first row of the paper's Table II.
func ExampleSizeTable() {
	rows := core.SizeTable([]int{16}, 0, 0)
	r := rows[0]
	fmt.Println(r.Scale, r.MaxVertices, r.MaxEdges, r.MemoryBytes)
	// Output:
	// 16 65536 1048576 25165824
}

// ExampleVariants lists the implementation variants: the six serial
// analogues of the paper's language implementations plus the three
// distributed regimes (simulated, goroutine ranks, out-of-core).
func ExampleVariants() {
	for _, v := range core.Variants() {
		fmt.Println(v)
	}
	// Output:
	// columnar
	// coo
	// csr
	// dist
	// distext
	// distgo
	// extsort
	// graphblas
	// parallel
}
