package core_test

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// ExampleNewService runs the benchmark through the session API: a
// long-lived Service whose staged artifact cache makes the second
// same-graph run skip kernels 0–2 entirely — it is served the cached
// kernel-2 matrix (bit-identical across variants) and only runs
// PageRank.
func ExampleNewService() {
	svc := core.NewService(core.WithMaxConcurrent(2))
	defer svc.Close()
	ctx := context.Background()
	cfg := core.Config{Scale: 6, EdgeFactor: 4, Seed: 1}
	if _, err := svc.Run(ctx, cfg); err != nil {
		fmt.Println("error:", err)
		return
	}
	cfg.Variant = "dist" // same graph, different implementation
	res, err := svc.Run(ctx, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	st := svc.Stats()
	fmt.Println("second run matrix hits:", res.Cache.Matrix.Hits)
	fmt.Println("second run kernels executed:", len(res.Kernels))
	fmt.Println("service misses:", st.CacheMatrix.Misses)
	fmt.Println("pagerank iterations:", res.RankIterations)
	// Output:
	// second run matrix hits: 1
	// second run kernels executed: 1
	// service misses: 1
	// pagerank iterations: 20
}

// ExampleRun executes the full four-kernel benchmark at a tiny scale and
// prints the structural invariants (timings vary run to run, so the
// example prints only deterministic quantities).
func ExampleRun() {
	res, err := core.Run(core.Config{Scale: 6, EdgeFactor: 4, Seed: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("kernels run:", len(res.Kernels))
	fmt.Println("edges:", res.Kernels[0].Edges)
	fmt.Println("matrix mass:", res.MatrixMass)
	fmt.Println("pagerank iterations:", res.RankIterations)
	// Output:
	// kernels run: 4
	// edges: 256
	// matrix mass: 256
	// pagerank iterations: 20
}

// ExampleSizeTable reproduces the first row of the paper's Table II.
func ExampleSizeTable() {
	rows := core.SizeTable([]int{16}, 0, 0)
	r := rows[0]
	fmt.Println(r.Scale, r.MaxVertices, r.MaxEdges, r.MemoryBytes)
	// Output:
	// 16 65536 1048576 25165824
}

// ExampleVariants lists the implementation variants: the six serial
// analogues of the paper's language implementations plus the three
// distributed regimes (simulated, goroutine ranks, out-of-core).
func ExampleVariants() {
	for _, v := range core.Variants() {
		fmt.Println(v)
	}
	// Output:
	// columnar
	// coo
	// csr
	// dist
	// distext
	// distgo
	// extsort
	// graphblas
	// parallel
}
