// Package core is the top-level public API of the PageRank pipeline
// benchmark: a thin facade over the serve, pipeline, pagerank, dist and
// perfmodel packages that exposes everything a benchmark user needs from
// one import.
//
// Quick start — construct one long-lived Service and run pipelines
// through it:
//
//	svc := core.NewService()
//	defer svc.Close()
//	res, err := svc.Run(ctx, core.Config{Scale: 16, Seed: 1})
//	if err != nil { ... }
//	for _, k := range res.Kernels {
//		fmt.Printf("%v: %.3g edges/s\n", k.Kernel, k.EdgesPerSecond)
//	}
//
// The Service is the context-aware session API (DESIGN.md §8, §12): it
// bounds concurrent runs and memoizes each distinct (generator, scale,
// edgeFactor, seed) graph's staged artifacts — the raw edge list, the
// kernel-1 sorted list and the kernel-2 filtered, normalized matrix —
// computing each exactly once however many concurrent runs ask for it,
// so a warm svc.Run executes kernel 3 only.  It streams per-kernel,
// per-iteration and cache-hit/miss progress (svc.RunStream) and aborts
// mid-kernel on context cancellation.  The one-shot core.Run remains
// for throwaway calls; prefer the Service anywhere more than one run
// happens.
//
// The benchmark follows the IPDPS 2016 proposal "PageRank Pipeline
// Benchmark" (Dreher, Byun, Hill, Gadepally, Kuszmaul, Kepner): kernel 0
// generates a Graph500 Kronecker graph and writes it to tab-separated
// files; kernel 1 sorts the edges by start vertex; kernel 2 builds,
// filters and normalizes the sparse adjacency matrix; kernel 3 runs 20
// iterations of PageRank.  Kernels 1–3 report edges per second (20·M for
// kernel 3).
package core

import (
	"context"

	"repro/internal/dist"
	"repro/internal/edge"
	"repro/internal/fastio"
	"repro/internal/pagerank"
	"repro/internal/perfmodel"
	"repro/internal/pipeline"
	"repro/internal/serve"
	"repro/internal/vfs"
)

// Config parameterizes a benchmark run.  See pipeline.Config.
type Config = pipeline.Config

// Result is the outcome of a benchmark run.  See pipeline.Result.
type Result = pipeline.Result

// KernelResult is one kernel's timing record.
type KernelResult = pipeline.KernelResult

// Kernel identifies a pipeline stage (K0Generate … K3PageRank).
type Kernel = pipeline.Kernel

// The four kernels.
const (
	K0Generate = pipeline.K0Generate
	K1Sort     = pipeline.K1Sort
	K2Filter   = pipeline.K2Filter
	K3PageRank = pipeline.K3PageRank
)

// Generator kinds for Config.Generator.
const (
	GenKronecker = pipeline.GenKronecker
	GenPPL       = pipeline.GenPPL
	GenER        = pipeline.GenER
)

// PageRankOptions configures kernel 3.  See pagerank.Options.
type PageRankOptions = pagerank.Options

// ---------------------------------------------------------------------------
// The Service session API (internal/serve; DESIGN.md §8)

// Service is the long-lived run coordinator: bounded concurrent runs, a
// shared singleflight generator cache, context cancellation and
// streaming progress.  See serve.Service.
type Service = serve.Service

// ServiceOption configures NewService.
type ServiceOption = serve.Option

// RunOption configures one Service.Run or Service.RunStream call.
type RunOption = serve.RunOption

// GraphKey is the staged artifact cache's graph identity: two runs
// agreeing on its fields draw from the same cached artifacts.
type GraphKey = serve.GraphKey

// ServiceStats is a snapshot of a Service's run and cache counters.
type ServiceStats = serve.Stats

// StageStats is one staged-cache level's counters within ServiceStats.
type StageStats = serve.StageStats

// CacheStats is a run's per-stage cache record (Result.Cache).
type CacheStats = pipeline.CacheStats

// StageCacheStats is one stage's hit/miss record within CacheStats.
type StageCacheStats = pipeline.StageCacheStats

// Event is one observation of a streaming run (Service.RunStream).
type Event = serve.Event

// The streaming event kinds.
const (
	EventRunStarted         = serve.EventRunStarted
	EventKernelStart        = serve.EventKernelStart
	EventKernelEnd          = serve.EventKernelEnd
	EventIteration          = serve.EventIteration
	EventRunEnd             = serve.EventRunEnd
	EventCheckpointSaved    = serve.EventCheckpointSaved
	EventCheckpointRestored = serve.EventCheckpointRestored
	EventCacheHit           = serve.EventCacheHit
	EventCacheMiss          = serve.EventCacheMiss
)

// NewService constructs the long-lived Service.  The default admits
// GOMAXPROCS concurrent runs and caches up to 8 generated graphs.
func NewService(opts ...ServiceOption) *Service { return serve.New(opts...) }

// WithMaxConcurrent bounds the Service's concurrently executing runs.
func WithMaxConcurrent(n int) ServiceOption { return serve.WithMaxConcurrent(n) }

// WithCacheCapacity bounds the Service's staged artifact cache to n
// resident entries per stage (0 disables it).
//
// Deprecated: use WithCacheBudget.
func WithCacheCapacity(n int) ServiceOption { return serve.WithCacheCapacity(n) }

// WithCacheBudget bounds the Service's staged artifact cache to the
// given number of resident bytes across all stages, LRU-evicted with
// artifacts charged at their real footprint (<= 0 disables it).
func WithCacheBudget(bytes int64) ServiceOption { return serve.WithCacheBudget(bytes) }

// WithKernels restricts a Service run to the listed kernels.
func WithKernels(ks ...Kernel) RunOption { return serve.WithKernels(ks...) }

// WithResumeKey checkpoints the run's distributed kernel 3 under key in
// the Service's checkpoint storage and resumes from the newest complete
// epoch there — rerun an interrupted configuration under the same key
// to continue it.  See serve.WithResumeKey.
func WithResumeKey(key string) RunOption { return serve.WithResumeKey(key) }

// WithCheckpointStorage sets the storage resume-keyed runs checkpoint
// to (default: an in-memory store living as long as the Service).
func WithCheckpointStorage(fs vfs.FS) ServiceOption { return serve.WithCheckpointStorage(fs) }

// PipelineEvent is the synchronous in-run progress observation delivered
// to WithProgress callbacks (RunStream is its channel-shaped form).
type PipelineEvent = pipeline.Event

// The pipeline-level event kinds.
const (
	EventPipelineKernelStart        = pipeline.EventKernelStart
	EventPipelineKernelEnd          = pipeline.EventKernelEnd
	EventPipelineIteration          = pipeline.EventIteration
	EventPipelineCheckpointSaved    = pipeline.EventCheckpointSaved
	EventPipelineCheckpointRestored = pipeline.EventCheckpointRestored
	EventPipelineCacheHit           = pipeline.EventCacheHit
	EventPipelineCacheMiss          = pipeline.EventCacheMiss
)

// CheckpointSpec configures epoch checkpoint/restart of the distributed
// kernel 3 (Config.Checkpoint).  See dist.CheckpointSpec.
type CheckpointSpec = dist.CheckpointSpec

// CheckpointStats is a run's checkpoint/restart record
// (Result.Checkpoint).  See dist.CheckpointStats.
type CheckpointStats = dist.CheckpointStats

// FaultPlan injects a rank failure into the distributed kernel 3
// (Config.Fault) — the chaos suites' instrument.  See dist.FaultPlan.
type FaultPlan = dist.FaultPlan

// ErrFaultInjected is the failure a FaultPlan's killed rank reports.
var ErrFaultInjected = dist.ErrFaultInjected

// WithProgress attaches a synchronous observer to a Service run.
func WithProgress(fn func(PipelineEvent)) RunOption { return serve.WithProgress(fn) }

// RunOnce executes one pipeline through a throwaway Service — the
// context-aware one-shot for CLIs and scripts that run a single
// pipeline and exit (cache off: there is nothing to share).  An empty
// kernel list means all four.
func RunOnce(ctx context.Context, cfg Config, ks ...Kernel) (*Result, error) {
	svc := NewService(WithCacheCapacity(0))
	defer svc.Close()
	var opts []RunOption
	if len(ks) > 0 {
		opts = append(opts, WithKernels(ks...))
	}
	return svc.Run(ctx, cfg, opts...)
}

// ---------------------------------------------------------------------------
// One-shot entrypoints (prefer the Service for anything long-lived)

// Run executes the full four-kernel pipeline once.
//
// Deprecated: construct a Service with NewService and use Service.Run —
// it adds cancellation, admission control, the shared generator cache
// and streaming progress.  Results are bit-for-bit identical.
func Run(cfg Config) (*Result, error) { return pipeline.Execute(cfg) }

// RunKernels executes a subset of kernels in order; earlier kernels'
// artifacts must already exist in cfg.FS.
//
// Deprecated: use Service.Run with the WithKernels option.
func RunKernels(cfg Config, kernels []Kernel) (*Result, error) {
	return pipeline.ExecuteKernels(cfg, kernels)
}

// Variants lists the registered implementation variants.
func Variants() []string { return pipeline.VariantNames() }

// Formats lists the registered edge-file codec names accepted by
// Config.Format ("tsv", "naivetsv", "bin", "packed").
func Formats() []string { return fastio.CodecNames() }

// DefaultFormat reports the edge-file format a variant uses when
// Config.Format is empty (the paper-faithful text default).
func DefaultFormat(variant string) string { return pipeline.DefaultFormat(variant) }

// NewMemFS returns an in-memory storage backend for Config.FS.
func NewMemFS() *vfs.Mem { return vfs.NewMem() }

// NewDirFS returns a directory-rooted storage backend for Config.FS.
func NewDirFS(root string) (*vfs.Dir, error) { return vfs.NewDir(root) }

// SizeTable computes the paper's Table II rows.
func SizeTable(scales []int, edgeFactor, bytesPerEdge int) []pipeline.SizeRow {
	return pipeline.SizeTable(scales, edgeFactor, bytesPerEdge)
}

// PaperScales are the scales of the paper's evaluation (16–22).
var PaperScales = pipeline.PaperScales

// ExecMode selects the distributed runtime's execution: the
// single-threaded simulation, the concurrent goroutine ranks, or worker
// processes over real sockets.
type ExecMode = dist.ExecMode

// The distributed execution modes.
const (
	ExecSim       = dist.ExecSim
	ExecGoroutine = dist.ExecGoroutine
	ExecSocket    = dist.ExecSocket
)

// DistributedRun executes the simulated distributed kernel-2/kernel-3
// pipeline over p processors.
//
// Deprecated: use dist.Execute with dist.OpRun.
func DistributedRun(l *edge.List, n, p int, opt PageRankOptions) (*dist.Result, error) {
	return DistributedRunCfg(DistConfig{}, l, n, p, opt)
}

// DistributedRunMode executes the distributed kernel-2/kernel-3 pipeline
// in the given execution mode; ExecGoroutine runs p concurrent goroutine
// ranks with real channel message passing and fills Result.RankSeconds.
//
// Deprecated: use dist.Execute with dist.OpRun.
func DistributedRunMode(mode ExecMode, l *edge.List, n, p int, opt PageRankOptions) (*dist.Result, error) {
	return DistributedRunCfg(DistConfig{Mode: mode}, l, n, p, opt)
}

// DistConfig is the distributed runtime's full configuration: execution
// mode plus the hybrid intra-rank worker count.  See dist.Config.
type DistConfig = dist.Config

// DistributedRunCfg executes the distributed kernel-2/kernel-3 pipeline
// under the full runtime configuration; DistConfig.Workers spins that
// many worker goroutines inside every rank (hybrid MPI+OpenMP-style
// execution) without changing a bit of the result.
//
// Deprecated: use dist.Execute with dist.OpRun.
func DistributedRunCfg(cfg DistConfig, l *edge.List, n, p int, opt PageRankOptions) (*dist.Result, error) {
	out, err := dist.Execute(context.Background(), dist.Spec{
		Config: cfg, Op: dist.OpRun, Edges: l, N: n, Procs: p, PageRank: opt,
	})
	if err != nil {
		return nil, err
	}
	return out.Run, nil
}

// PredictKernels returns the hardware-model predictions for all four
// kernels on the paper's test platform.
func PredictKernels(scale int) [4]perfmodel.Prediction {
	return perfmodel.All(perfmodel.PaperNode(), perfmodel.Workload{Scale: scale})
}
