// Package core is the top-level public API of the PageRank pipeline
// benchmark: a thin facade over the pipeline, pagerank, dist and perfmodel
// packages that exposes everything a benchmark user needs from one import.
//
// Quick start:
//
//	cfg := core.Config{Scale: 16, Seed: 1}
//	res, err := core.Run(cfg)
//	if err != nil { ... }
//	for _, k := range res.Kernels {
//		fmt.Printf("%v: %.3g edges/s\n", k.Kernel, k.EdgesPerSecond)
//	}
//
// The benchmark follows the IPDPS 2016 proposal "PageRank Pipeline
// Benchmark" (Dreher, Byun, Hill, Gadepally, Kuszmaul, Kepner): kernel 0
// generates a Graph500 Kronecker graph and writes it to tab-separated
// files; kernel 1 sorts the edges by start vertex; kernel 2 builds,
// filters and normalizes the sparse adjacency matrix; kernel 3 runs 20
// iterations of PageRank.  Kernels 1–3 report edges per second (20·M for
// kernel 3).
package core

import (
	"repro/internal/dist"
	"repro/internal/edge"
	"repro/internal/pagerank"
	"repro/internal/perfmodel"
	"repro/internal/pipeline"
	"repro/internal/vfs"
)

// Config parameterizes a benchmark run.  See pipeline.Config.
type Config = pipeline.Config

// Result is the outcome of a benchmark run.  See pipeline.Result.
type Result = pipeline.Result

// KernelResult is one kernel's timing record.
type KernelResult = pipeline.KernelResult

// Kernel identifies a pipeline stage (K0Generate … K3PageRank).
type Kernel = pipeline.Kernel

// The four kernels.
const (
	K0Generate = pipeline.K0Generate
	K1Sort     = pipeline.K1Sort
	K2Filter   = pipeline.K2Filter
	K3PageRank = pipeline.K3PageRank
)

// Generator kinds for Config.Generator.
const (
	GenKronecker = pipeline.GenKronecker
	GenPPL       = pipeline.GenPPL
	GenER        = pipeline.GenER
)

// PageRankOptions configures kernel 3.  See pagerank.Options.
type PageRankOptions = pagerank.Options

// Run executes the full four-kernel pipeline.
func Run(cfg Config) (*Result, error) { return pipeline.Execute(cfg) }

// RunKernels executes a subset of kernels in order; earlier kernels'
// artifacts must already exist in cfg.FS.
func RunKernels(cfg Config, kernels []Kernel) (*Result, error) {
	return pipeline.ExecuteKernels(cfg, kernels)
}

// Variants lists the registered implementation variants.
func Variants() []string { return pipeline.VariantNames() }

// NewMemFS returns an in-memory storage backend for Config.FS.
func NewMemFS() *vfs.Mem { return vfs.NewMem() }

// NewDirFS returns a directory-rooted storage backend for Config.FS.
func NewDirFS(root string) (*vfs.Dir, error) { return vfs.NewDir(root) }

// SizeTable computes the paper's Table II rows.
func SizeTable(scales []int, edgeFactor, bytesPerEdge int) []pipeline.SizeRow {
	return pipeline.SizeTable(scales, edgeFactor, bytesPerEdge)
}

// PaperScales are the scales of the paper's evaluation (16–22).
var PaperScales = pipeline.PaperScales

// ExecMode selects the distributed runtime's execution: the
// single-threaded simulation or the concurrent goroutine ranks.
type ExecMode = dist.ExecMode

// The distributed execution modes.
const (
	ExecSim       = dist.ExecSim
	ExecGoroutine = dist.ExecGoroutine
)

// DistributedRun executes the simulated distributed kernel-2/kernel-3
// pipeline over p processors.  See dist.Run.
func DistributedRun(l *edge.List, n, p int, opt PageRankOptions) (*dist.Result, error) {
	return dist.Run(l, n, p, opt)
}

// DistributedRunMode executes the distributed kernel-2/kernel-3 pipeline
// in the given execution mode; ExecGoroutine runs p concurrent goroutine
// ranks with real channel message passing and fills Result.RankSeconds.
// See dist.RunMode.
func DistributedRunMode(mode ExecMode, l *edge.List, n, p int, opt PageRankOptions) (*dist.Result, error) {
	return dist.RunMode(mode, l, n, p, opt)
}

// DistConfig is the distributed runtime's full configuration: execution
// mode plus the hybrid intra-rank worker count.  See dist.Config.
type DistConfig = dist.Config

// DistributedRunCfg executes the distributed kernel-2/kernel-3 pipeline
// under the full runtime configuration; DistConfig.Workers spins that
// many worker goroutines inside every rank (hybrid MPI+OpenMP-style
// execution) without changing a bit of the result.  See dist.RunCfg.
func DistributedRunCfg(cfg DistConfig, l *edge.List, n, p int, opt PageRankOptions) (*dist.Result, error) {
	return dist.RunCfg(cfg, l, n, p, opt)
}

// PredictKernels returns the hardware-model predictions for all four
// kernels on the paper's test platform.
func PredictKernels(scale int) [4]perfmodel.Prediction {
	return perfmodel.All(perfmodel.PaperNode(), perfmodel.Workload{Scale: scale})
}
