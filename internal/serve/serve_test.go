package serve_test

// The service layer's contract tests: the singleflight property (N
// concurrent same-graph runs generate kernel 0 exactly once and agree
// bit for bit), prompt cancellation mid-kernel-3 in both distributed
// execution modes with no goroutine leaks, the bounded admission queue,
// and the streaming event protocol.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/pagerank"
	"repro/internal/pipeline"
	"repro/internal/serve"
	"repro/internal/vfs"
)

func runCfg(variant string) pipeline.Config {
	return pipeline.Config{Scale: 8, EdgeFactor: 8, Seed: 11, Variant: variant, KeepRank: true}
}

// TestSingleflightConcurrentRuns is the cache property test: N
// concurrent runs of the same (generator, scale, edgeFactor, seed)
// share every staged artifact — the deepest stage, the kernel-2
// matrix, is computed exactly once (one miss, N-1 hits), the shallower
// stages are only ever touched by the one cold run — and all N return
// bit-identical results.
func TestSingleflightConcurrentRuns(t *testing.T) {
	const n = 8
	svc := serve.New(serve.WithMaxConcurrent(n))
	defer svc.Close()
	results := make([]*pipeline.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc.Run(context.Background(), runCfg("csr"))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	st := svc.Stats()
	if st.CacheMatrix.Misses != 1 || st.CacheMatrix.Hits != n-1 {
		t.Fatalf("want exactly 1 matrix build (%d hits), got %d misses / %d hits",
			n-1, st.CacheMatrix.Misses, st.CacheMatrix.Hits)
	}
	if st.CacheSorted.Misses != 1 || st.CacheSorted.Hits != 0 {
		t.Fatalf("sorted stage: want 1 miss / 0 hits (only the cold run descends), got %+v", st.CacheSorted)
	}
	if st.CacheEdges.Misses != 1 || st.CacheEdges.Hits != 0 {
		t.Fatalf("edges stage: want 1 miss / 0 hits (only the cold run descends), got %+v", st.CacheEdges)
	}
	ref := results[0]
	warm := 0
	for i, res := range results {
		if res.NNZ != ref.NNZ {
			t.Fatalf("run %d: NNZ %d != %d", i, res.NNZ, ref.NNZ)
		}
		if len(res.Rank) != len(ref.Rank) {
			t.Fatalf("run %d: rank length differs", i)
		}
		for j := range res.Rank {
			if res.Rank[j] != ref.Rank[j] {
				t.Fatalf("run %d: rank differs at %d", i, j)
			}
		}
		if res.Cache == nil || res.Cache.Matrix.Hits+res.Cache.Matrix.Misses != 1 {
			t.Fatalf("run %d: matrix stage not metered: %+v", i, res.Cache)
		}
		if res.Cache.Matrix.Hits == 1 {
			warm++
		} else if res.GenCache == nil || res.GenCache.Misses != 1 {
			// The one cold run descended all the way to generation and
			// must still populate the deprecated edges-stage alias.
			t.Fatalf("cold run %d: GenCache alias = %+v, want 1 miss", i, res.GenCache)
		}
	}
	if warm != n-1 {
		t.Fatalf("want %d matrix-warm runs, got %d", n-1, warm)
	}
}

// TestRunMatchesOneShot pins that a service run is bit-for-bit the
// one-shot pipeline: caching changes who generates, never what.
func TestRunMatchesOneShot(t *testing.T) {
	svc := serve.New()
	defer svc.Close()
	for _, variant := range []string{"csr", "dist", "distgo"} {
		got, err := svc.Run(context.Background(), runCfg(variant))
		if err != nil {
			t.Fatal(err)
		}
		want, err := pipeline.Execute(runCfg(variant))
		if err != nil {
			t.Fatal(err)
		}
		if got.NNZ != want.NNZ || len(got.Rank) != len(want.Rank) {
			t.Fatalf("%s: shape diverges from one-shot", variant)
		}
		for i := range got.Rank {
			if got.Rank[i] != want.Rank[i] {
				t.Fatalf("%s: rank differs at %d", variant, i)
			}
		}
	}
}

// TestAdmissionBound pins the bounded run queue: with MaxConcurrent 1,
// two overlapping runs must never execute simultaneously.
func TestAdmissionBound(t *testing.T) {
	svc := serve.New(serve.WithMaxConcurrent(1))
	defer svc.Close()
	var active, maxActive int32
	observe := serve.WithProgress(func(ev pipeline.Event) {
		if ev.Kind != pipeline.EventKernelStart {
			return
		}
		cur := atomic.AddInt32(&active, 1)
		for {
			m := atomic.LoadInt32(&maxActive)
			if cur <= m || atomic.CompareAndSwapInt32(&maxActive, m, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond) // widen the overlap window
		atomic.AddInt32(&active, -1)
	})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := svc.Run(context.Background(), runCfg("csr"), observe); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if m := atomic.LoadInt32(&maxActive); m != 1 {
		t.Fatalf("admission bound violated: %d concurrent kernels observed", m)
	}
}

// TestRunStreamEvents pins the streaming protocol: run-started first,
// balanced kernel start/end pairs in kernel order, exactly one iteration
// event per PageRank iteration, and a final run-end with the Result.
func TestRunStreamEvents(t *testing.T) {
	svc := serve.New()
	defer svc.Close()
	var kinds []serve.EventKind
	var kernels []pipeline.Kernel
	iters := 0
	var final serve.Event
	for ev := range svc.RunStream(context.Background(), runCfg("csr")) {
		kinds = append(kinds, ev.Kind)
		switch ev.Kind {
		case serve.EventKernelEnd:
			kernels = append(kernels, ev.Kernel)
			if ev.KernelResult == nil {
				t.Fatal("kernel-end without KernelResult")
			}
		case serve.EventIteration:
			iters++
		case serve.EventRunEnd:
			final = ev
		}
	}
	if len(kinds) == 0 || kinds[0] != serve.EventRunStarted {
		t.Fatalf("want run-started first, got %v", kinds)
	}
	if kinds[len(kinds)-1] != serve.EventRunEnd {
		t.Fatal("want run-end last")
	}
	wantKernels := []pipeline.Kernel{pipeline.K0Generate, pipeline.K1Sort, pipeline.K2Filter, pipeline.K3PageRank}
	if len(kernels) != len(wantKernels) {
		t.Fatalf("want %d kernel-end events, got %d", len(wantKernels), len(kernels))
	}
	for i, k := range wantKernels {
		if kernels[i] != k {
			t.Fatalf("kernel-end %d: want %v, got %v", i, k, kernels[i])
		}
	}
	if iters != pagerank.DefaultIterations {
		t.Fatalf("want %d iteration events, got %d", pagerank.DefaultIterations, iters)
	}
	if final.Err != nil || final.Result == nil || final.Result.NNZ == 0 {
		t.Fatalf("bad final event: %+v", final)
	}
}

// waitForGoroutines polls until the live goroutine count returns to at
// most want.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > want {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: have %d, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelMidKernel3 is the redesign's cancellation acceptance test:
// a context cancelled three iterations into a huge kernel 3 returns
// context.Canceled promptly in the serial engines and in both
// distributed execution modes, leaking nothing.
func TestCancelMidKernel3(t *testing.T) {
	base := runtime.NumGoroutine()
	for _, variant := range []string{"csr", "dist", "distgo"} {
		svc := serve.New()
		ctx, cancel := context.WithCancel(context.Background())
		cfg := runCfg(variant)
		cfg.PageRank = pagerank.Options{Iterations: 100000}
		start := time.Now()
		_, err := svc.Run(ctx, cfg, serve.WithProgress(func(ev pipeline.Event) {
			if ev.Kind == pipeline.EventIteration && ev.Iteration == 3 {
				cancel()
			}
		}))
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: want context.Canceled, got %v", variant, err)
		}
		if d := time.Since(start); d > 30*time.Second {
			t.Fatalf("%s: cancellation took %v — not prompt", variant, d)
		}
		svc.Close()
	}
	waitForGoroutines(t, base+2)
}

// TestCancelWhileQueued pins that admission waiting respects ctx.
func TestCancelWhileQueued(t *testing.T) {
	svc := serve.New(serve.WithMaxConcurrent(1))
	defer svc.Close()
	block := make(chan struct{})
	release := sync.OnceFunc(func() { close(block) })
	defer release()
	started := make(chan struct{})
	go func() {
		_, _ = svc.Run(context.Background(), runCfg("csr"), serve.WithProgress(func(ev pipeline.Event) {
			if ev.Kind == pipeline.EventKernelStart && ev.Kernel == pipeline.K0Generate {
				close(started)
				<-block
			}
		}))
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := svc.Run(ctx, runCfg("csr")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued run: want DeadlineExceeded, got %v", err)
	}
	release()
}

// TestClosedService pins that Close stops admission.
func TestClosedService(t *testing.T) {
	svc := serve.New()
	svc.Close()
	if _, err := svc.Run(context.Background(), runCfg("csr")); err == nil {
		t.Fatal("closed service: want error")
	}
}

// TestEdgesSingleflight pins the direct cache API: concurrent Edges of
// one key share one generation and one backing list.
func TestEdgesSingleflight(t *testing.T) {
	svc := serve.New()
	defer svc.Close()
	key := serve.GraphKey{Scale: 8, Seed: 3}
	const n = 6
	lists := make([]any, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l, err := svc.Edges(context.Background(), key)
			if err != nil {
				t.Error(err)
				return
			}
			lists[i] = l
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if lists[i] != lists[0] {
			t.Fatal("concurrent Edges returned distinct lists — generation was not shared")
		}
	}
	st := svc.Stats()
	if st.CacheMisses != 1 || st.CacheHits != n-1 {
		t.Fatalf("want 1 miss / %d hits, got %d / %d", n-1, st.CacheMisses, st.CacheHits)
	}
	// Normalized spellings share the entry.
	if _, err := svc.Edges(context.Background(), serve.GraphKey{Generator: pipeline.GenKronecker, Scale: 8, EdgeFactor: 16, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.CacheMisses != 1 {
		t.Fatalf("normalized key missed the cache: %+v", st)
	}
}

// TestCacheEviction pins the LRU bound.
func TestCacheEviction(t *testing.T) {
	svc := serve.New(serve.WithCacheCapacity(1))
	defer svc.Close()
	ctx := context.Background()
	for _, seed := range []uint64{1, 2, 1} { // the third fetch re-generates: seed 1 was evicted
		if _, err := svc.Edges(ctx, serve.GraphKey{Scale: 7, Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.CacheMisses != 3 || st.CacheEntries != 1 {
		t.Fatalf("want 3 misses with 1 resident entry, got %+v", st)
	}
}

// TestCacheDisabled pins WithCacheCapacity(0): every run generates.
func TestCacheDisabled(t *testing.T) {
	svc := serve.New(serve.WithCacheCapacity(0))
	defer svc.Close()
	res, err := svc.Run(context.Background(), runCfg("csr"))
	if err != nil {
		t.Fatal(err)
	}
	if res.GenCache != nil {
		t.Fatalf("cache disabled: GenCache should be nil, got %+v", res.GenCache)
	}
	if st := svc.Stats(); st.CacheHits != 0 || st.CacheMisses != 0 || st.CacheEntries != 0 {
		t.Fatalf("cache disabled: counters moved: %+v", st)
	}
}

// TestRunResumeByKey pins the resume-by-key contract: a run killed
// mid-kernel-3 by an injected rank failure is continued by rerunning
// the same configuration under the same key, landing bit-for-bit on the
// uninterrupted result; a different key starts fresh.
func TestRunResumeByKey(t *testing.T) {
	svc := serve.New()
	defer svc.Close()
	ctx := context.Background()
	cfg := runCfg("distgo")
	cfg.PageRank = pagerank.Options{Seed: 11, Iterations: 10}
	uninterrupted, err := svc.Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	kill := cfg
	kill.Checkpoint.Every = 3
	kill.Fault = &dist.FaultPlan{KillRank: 1, AtIteration: 8}
	if _, err := svc.Run(ctx, kill, serve.WithResumeKey("job-1")); !errors.Is(err, dist.ErrFaultInjected) {
		t.Fatalf("killed run: err = %v, want ErrFaultInjected", err)
	}

	resume := cfg
	resume.Checkpoint.Every = 3
	res, err := svc.Run(ctx, resume, serve.WithResumeKey("job-1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoint == nil || !res.Checkpoint.Resumed || res.Checkpoint.ResumedFrom != 6 {
		t.Fatalf("resume record %+v, want resumed from 6", res.Checkpoint)
	}
	for i := range uninterrupted.Rank {
		if uninterrupted.Rank[i] != res.Rank[i] {
			t.Fatalf("resumed run diverges at component %d", i)
		}
	}

	// A fresh key shares no state: same config, fresh start.
	other, err := svc.Run(ctx, resume, serve.WithResumeKey("job-2"))
	if err != nil {
		t.Fatal(err)
	}
	if other.Checkpoint != nil && other.Checkpoint.Resumed {
		t.Fatalf("fresh key resumed: %+v", other.Checkpoint)
	}
}

// TestRunStreamCheckpointEvents pins the streaming protocol's two new
// event kinds: saves during the killed run, a restore during the
// resumed one, in execution order.
func TestRunStreamCheckpointEvents(t *testing.T) {
	svc := serve.New()
	defer svc.Close()
	ctx := context.Background()
	cfg := runCfg("distgo")
	cfg.PageRank = pagerank.Options{Seed: 11, Iterations: 10}
	cfg.Checkpoint.Every = 3
	kill := cfg
	kill.Fault = &dist.FaultPlan{KillRank: 0, AtIteration: 7}

	var saves []int
	var runErr error
	for ev := range svc.RunStream(ctx, kill, serve.WithResumeKey("stream-job")) {
		switch ev.Kind {
		case serve.EventCheckpointSaved:
			saves = append(saves, ev.Iteration)
		case serve.EventRunEnd:
			runErr = ev.Err
		}
	}
	if !errors.Is(runErr, dist.ErrFaultInjected) {
		t.Fatalf("killed stream: err = %v", runErr)
	}
	if len(saves) != 2 || saves[0] != 3 || saves[1] != 6 {
		t.Fatalf("saves %v, want [3 6]", saves)
	}

	var restores, iters []int
	for ev := range svc.RunStream(ctx, cfg, serve.WithResumeKey("stream-job")) {
		switch ev.Kind {
		case serve.EventCheckpointRestored:
			restores = append(restores, ev.Iteration)
		case serve.EventIteration:
			iters = append(iters, ev.Iteration)
		case serve.EventRunEnd:
			if ev.Err != nil {
				t.Fatalf("resumed stream: %v", ev.Err)
			}
		}
	}
	if len(restores) != 1 || restores[0] != 6 {
		t.Fatalf("restores %v, want [6]", restores)
	}
	if len(iters) != 4 || iters[0] != 7 || iters[3] != 10 {
		t.Fatalf("resumed iteration events %v, want global [7 8 9 10]", iters)
	}
}

// TestWithCheckpointStorage pins the durable-storage option: epochs land
// in the supplied FS under the key-derived prefix, so a second Service
// (a "new process") resumes from them.
func TestWithCheckpointStorage(t *testing.T) {
	store := vfs.NewMem()
	ctx := context.Background()
	cfg := runCfg("dist")
	cfg.PageRank = pagerank.Options{Seed: 11, Iterations: 10}
	cfg.Checkpoint.Every = 5
	kill := cfg
	kill.Fault = &dist.FaultPlan{KillRank: 0, AtIteration: 10}

	svc1 := serve.New(serve.WithCheckpointStorage(store))
	if _, err := svc1.Run(ctx, kill, serve.WithResumeKey("k")); !errors.Is(err, dist.ErrFaultInjected) {
		t.Fatalf("killed run: %v", err)
	}
	svc1.Close()

	svc2 := serve.New(serve.WithCheckpointStorage(store))
	defer svc2.Close()
	res, err := svc2.Run(ctx, cfg, serve.WithResumeKey("k"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoint == nil || res.Checkpoint.ResumedFrom != 10 {
		t.Fatalf("cross-service resume record %+v, want resumed from 10", res.Checkpoint)
	}
}
