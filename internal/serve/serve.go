// Package serve is the pipeline's service layer: a long-lived Service
// that runs many benchmark pipelines concurrently under one roof — a
// bounded run-admission queue, a shared singleflight staged artifact
// cache keyed by graph identity, context cancellation end to end, and
// a streaming progress API.  It is the batch/streaming ingestion path
// of the roadmap's production-scale goal: where the one-shot
// entrypoints recompute everything for every run, a Service computes
// each distinct artifact — the kernel-0 edge list, the kernel-1 sorted
// list, the kernel-2 filtered matrix — exactly once and shares it
// read-only across every run that needs it, so warm runs are K3-bound.
//
// core.NewService is the public constructor; DESIGN.md §8 specifies
// the lifecycle and §12 the staged cache contract.
package serve

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/edge"
	"repro/internal/pipeline"
	"repro/internal/vfs"
)

// GraphKey is the identity of a generated graph — the generator cache's
// key.  Two runs whose configurations agree on these four fields draw
// from the same kernel-0 edge list.
type GraphKey struct {
	// Generator is the kernel-0 generator kind (empty means Kronecker).
	Generator pipeline.GeneratorKind
	// Scale is the Graph500 scale factor S.
	Scale int
	// EdgeFactor is the average edges per vertex (0 means 16).
	EdgeFactor int
	// Seed selects all random streams.
	Seed uint64
}

// normalize applies the pipeline's defaulting so spellings of the same
// graph ("" vs GenKronecker, 0 vs 16) share one cache entry.
func (k GraphKey) normalize() GraphKey {
	if k.Generator == "" {
		k.Generator = pipeline.GenKronecker
	}
	if k.EdgeFactor == 0 {
		k.EdgeFactor = 16
	}
	return k
}

// keyOf derives the cache key from a defaulted pipeline configuration.
func keyOf(cfg pipeline.Config) GraphKey {
	return GraphKey{
		Generator:  cfg.Generator,
		Scale:      cfg.Scale,
		EdgeFactor: cfg.EdgeFactor,
		Seed:       cfg.Seed,
	}.normalize()
}

// sortedKeyOf derives the sorted stage's key.  The runner presents the
// effective kernel-1 order in SortEndVertices (the columnar variant
// always sorts by (u, v)), so runs that produce the same list order
// share one entry regardless of variant.
func sortedKeyOf(cfg pipeline.Config) cacheKey {
	return cacheKey{stage: stageSorted, graph: keyOf(cfg), byUV: cfg.SortEndVertices}
}

// matrixKeyOf derives the matrix stage's key: graph identity × filter
// rule.  The kernel-2 matrix is canonical across variants, sort order
// and edge-file format, so nothing else participates.
func matrixKeyOf(cfg pipeline.Config) cacheKey {
	return cacheKey{stage: stageMatrix, graph: keyOf(cfg), filter: defaultFilterRule}
}

// Service is the long-lived run coordinator.  Construct it once with
// New, share it between goroutines freely — all methods are safe for
// concurrent use — and Close it when done accepting work.
type Service struct {
	sem    chan struct{}  // admission: one slot per concurrently executing run
	cache  *artifactCache // nil when caching is disabled
	closed chan struct{}  // closed by Close; admit selects on it, so queued callers unblock

	closeOnce sync.Once
	mu        sync.Mutex
	started   uint64
	active    int

	ckptOnce sync.Once
	ckptFS   vfs.FS // storage for resume-keyed checkpoints; lazily an in-memory store
}

// Option configures a Service at construction.
type Option func(*Service)

// WithMaxConcurrent bounds the number of runs executing at once; callers
// beyond the bound queue inside Run until a slot frees (or their context
// is cancelled).  Values below 1 mean 1.  The default is GOMAXPROCS.
func WithMaxConcurrent(n int) Option {
	if n < 1 {
		n = 1
	}
	return func(s *Service) { s.sem = make(chan struct{}, n) }
}

// WithCacheCapacity bounds the staged artifact cache to n resident
// entries per stage (LRU-evicted beyond that); 0 disables the cache
// entirely, making every run compute all of its own artifacts.  The
// default is 8 per stage.
//
// Deprecated: use WithCacheBudget, which bounds the cache by what
// actually matters — resident bytes — instead of entry counts.
func WithCacheCapacity(n int) Option {
	return func(s *Service) {
		if n <= 0 {
			s.cache = nil
		} else {
			s.cache = newArtifactCache(n, 0)
		}
	}
}

// WithCacheBudget bounds the staged artifact cache to the given number
// of resident bytes across all stages, with edge lists and matrices
// charged at their real in-memory footprint and the least-recently-used
// artifact evicted first.  The most recently deposited artifact is
// never evicted, so a single artifact larger than the budget stays
// resident until the next deposit displaces it.  A budget <= 0 disables
// the cache entirely.
func WithCacheBudget(bytes int64) Option {
	return func(s *Service) {
		if bytes <= 0 {
			s.cache = nil
		} else {
			s.cache = newArtifactCache(0, bytes)
		}
	}
}

// WithCheckpointStorage sets the storage resume-keyed runs (see
// WithResumeKey) write their kernel-3 epochs to — a vfs.Dir makes
// interrupted runs resumable across processes.  The default is an
// in-memory store created on first use, which survives for the
// Service's lifetime: a run killed mid-kernel-3 in this process resumes
// under the same key.
func WithCheckpointStorage(fs vfs.FS) Option {
	return func(s *Service) { s.ckptFS = fs }
}

// checkpointFS returns the service's resume-key storage, creating the
// in-memory default on first use.
func (s *Service) checkpointFS() vfs.FS {
	s.ckptOnce.Do(func() {
		if s.ckptFS == nil {
			s.ckptFS = vfs.NewMem()
		}
	})
	return s.ckptFS
}

// New constructs a Service.  The zero-option Service admits GOMAXPROCS
// concurrent runs and caches up to 8 generated graphs.
func New(opts ...Option) *Service {
	s := &Service{
		sem:    make(chan struct{}, runtime.GOMAXPROCS(0)),
		cache:  newArtifactCache(8, 0),
		closed: make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Close stops admitting new runs: callers queued in admission unblock
// with an error, and later Runs are rejected.  Runs already admitted
// complete normally; closing is idempotent.
func (s *Service) Close() error {
	s.closeOnce.Do(func() { close(s.closed) })
	return nil
}

// isClosed reports whether Close has been called.
func (s *Service) isClosed() bool {
	select {
	case <-s.closed:
		return true
	default:
		return false
	}
}

// StageStats is one staged-cache level's cumulative counters: a miss
// computed an artifact, a hit shared one (resident or joined in
// flight), Entries/Bytes are the currently resident footprint.
type StageStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
	Bytes   int64
}

// Stats is a point-in-time snapshot of the service's counters.
type Stats struct {
	// RunsStarted counts runs admitted since construction.
	RunsStarted uint64
	// RunsActive is the number of runs executing right now.
	RunsActive int
	// CacheHits and CacheMisses mirror CacheEdges' counters — the
	// original generator-cache meters.  All cache counters stay zero
	// with the cache disabled.
	//
	// Deprecated: read CacheEdges.
	CacheHits   uint64
	CacheMisses uint64
	// CacheEntries is the number of artifacts currently resident across
	// all stages, and CacheBytes their summed footprint — the quantity
	// WithCacheBudget bounds.
	CacheEntries int
	CacheBytes   int64
	// CacheEdges, CacheSorted and CacheMatrix are the per-stage
	// counters of the staged artifact cache: the raw kernel-0 edge
	// list, the kernel-1 sorted list, and the kernel-2 filtered,
	// normalized matrix.
	CacheEdges  StageStats
	CacheSorted StageStats
	CacheMatrix StageStats
}

// Stats returns a snapshot of the service's counters.
func (s *Service) Stats() Stats {
	var st Stats
	if s.cache != nil {
		st.CacheEdges = s.cache.stageStats(stageEdges)
		st.CacheSorted = s.cache.stageStats(stageSorted)
		st.CacheMatrix = s.cache.stageStats(stageMatrix)
		st.CacheHits, st.CacheMisses = st.CacheEdges.Hits, st.CacheEdges.Misses
		st.CacheEntries = st.CacheEdges.Entries + st.CacheSorted.Entries + st.CacheMatrix.Entries
		st.CacheBytes = st.CacheEdges.Bytes + st.CacheSorted.Bytes + st.CacheMatrix.Bytes
	}
	s.mu.Lock()
	st.RunsStarted = s.started
	st.RunsActive = s.active
	s.mu.Unlock()
	return st
}

// Edges returns the generated edge list for key, serving it from the
// shared cache (generating at most once per key, however many callers
// arrive concurrently).  The returned list is shared and MUST be treated
// as read-only; every dist.Execute op and every kernel honors that.
func (s *Service) Edges(ctx context.Context, key GraphKey) (*edge.List, error) {
	key = key.normalize()
	cfg := pipeline.Config{
		Generator:  key.Generator,
		Scale:      key.Scale,
		EdgeFactor: key.EdgeFactor,
		Seed:       key.Seed,
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.cache == nil {
		return pipeline.GenerateEdges(cfg)
	}
	l, _, err := s.cache.edges(ctx, key, func() (*edge.List, error) {
		return pipeline.GenerateEdges(cfg)
	})
	return l, err
}

// runSettings collects the per-run options.
type runSettings struct {
	kernels   []pipeline.Kernel
	progress  func(pipeline.Event)
	onStarted func() // fires after admission, before the first kernel (RunStream)
	resumeKey string
}

// withStarted is RunStream's internal hook for the moment a queued run
// clears admission.
func withStarted(fn func()) RunOption {
	return func(rs *runSettings) { rs.onStarted = fn }
}

// RunOption configures one Run (or RunStream) call.
type RunOption func(*runSettings)

// WithKernels restricts the run to the listed kernels, in order, like
// the paper's independently runnable stages.  The default is all four.
func WithKernels(ks ...pipeline.Kernel) RunOption {
	return func(rs *runSettings) { rs.kernels = ks }
}

// WithProgress attaches a synchronous observer for the run's pipeline
// events (kernel start/end, kernel-3 iterations, checkpoint saves and
// restores).  RunStream is the channel-shaped form of the same hook.
func WithProgress(fn func(pipeline.Event)) RunOption {
	return func(rs *runSettings) { rs.progress = fn }
}

// WithResumeKey makes the run's distributed kernel 3 checkpoint under
// the given key in the service's checkpoint storage and resume from the
// newest complete epoch found there.  A run interrupted mid-kernel-3 —
// cancelled, crashed on an injected fault, or killed with the process
// when the storage is durable — is continued by running the same
// configuration under the same key; a first run under a key is an
// ordinary fresh start.  The key must only be shared by runs with
// identical configurations (the dist layer rejects mismatched n or
// damping).  Config.Checkpoint's FS/Prefix, when set, take precedence
// over the derived ones; Every and the other knobs pass through.
func WithResumeKey(key string) RunOption {
	return func(rs *runSettings) { rs.resumeKey = key }
}

// Run executes one pipeline under the service: the call is admitted
// through the bounded run queue (waiting respects ctx), the kernels
// draw from the shared staged artifact cache at the deepest resident
// stage — a warm run skips K0–K2 outright and is K3-bound — and ctx
// cancellation aborts the run mid-kernel (through the kernel-3
// engines' per-iteration checks and the distributed runtime's teardown
// plane) with ctx's error.  The Result's Cache field records the
// per-stage hit/miss interaction.  Results are bit-for-bit those of
// the one-shot core.Run for the same Config: caching changes who
// computes an artifact, never what is computed.
func (s *Service) Run(ctx context.Context, cfg pipeline.Config, opts ...RunOption) (*pipeline.Result, error) {
	rs := runSettings{kernels: []pipeline.Kernel{
		pipeline.K0Generate, pipeline.K1Sort, pipeline.K2Filter, pipeline.K3PageRank,
	}}
	for _, o := range opts {
		o(&rs)
	}
	if err := s.admit(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	if rs.onStarted != nil {
		rs.onStarted()
	}
	if rs.resumeKey != "" {
		if cfg.Checkpoint.FS == nil {
			cfg.Checkpoint.FS = s.checkpointFS()
		}
		if cfg.Checkpoint.Prefix == "" {
			cfg.Checkpoint.Prefix = "ckpt/" + rs.resumeKey
		}
		cfg.Checkpoint.Resume = true
	}
	if s.cache != nil {
		// The three staged-cache seams, deepest stage checked first by
		// the runner: a matrix hit makes the run K3-bound, a sorted hit
		// skips K0–K1, an edges hit skips generation.  Each closure
		// captures ctx so waiting to join an in-flight fill respects
		// this run's cancellation.
		if cfg.Source == nil {
			cfg.Source = func(dcfg pipeline.Config) (*edge.List, bool, error) {
				return s.cache.edges(ctx, keyOf(dcfg), func() (*edge.List, error) {
					return pipeline.GenerateEdges(dcfg)
				})
			}
		}
		if cfg.SortedSource == nil {
			cfg.SortedSource = func(dcfg pipeline.Config) (pipeline.SortedLease, error) {
				return s.cache.sortedLease(ctx, sortedKeyOf(dcfg))
			}
		}
		if cfg.MatrixSource == nil {
			cfg.MatrixSource = func(dcfg pipeline.Config) (pipeline.MatrixLease, error) {
				return s.cache.matrixLease(ctx, matrixKeyOf(dcfg))
			}
		}
	}
	if rs.progress != nil {
		cfg.Progress = rs.progress
	}
	return pipeline.ExecuteKernelsContext(ctx, cfg, rs.kernels)
}

// admit takes an admission slot, queueing until one frees, the context
// is cancelled, or the service is closed (which also unblocks queued
// callers).  The post-acquire re-check hands back a slot won in a race
// with Close; rejection is best-effort by nature — a Run whose re-check
// ran just before Close completed counts as already admitted and
// completes normally, per Close's contract.
func (s *Service) admit(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	case <-s.closed:
		return fmt.Errorf("serve: service is closed")
	}
	if s.isClosed() {
		<-s.sem
		return fmt.Errorf("serve: service is closed")
	}
	s.mu.Lock()
	s.started++
	s.active++
	s.mu.Unlock()
	return nil
}

func (s *Service) release() {
	s.mu.Lock()
	s.active--
	s.mu.Unlock()
	<-s.sem
}
