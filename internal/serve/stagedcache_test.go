package serve_test

// The staged artifact cache's service-level contract tests: the
// mixed-stage singleflight property (a pre-warmed shallow stage under a
// cold deep stage), the warm-vs-cold bit-for-bit sweep across every
// variant, processor count and execution mode, and the cancellation-
// mid-fill no-poisoning guarantee.

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/serve"
)

// assertBitEqualRanks fails unless the two rank vectors are identical
// bit for bit.
func assertBitEqualRanks(t *testing.T, what string, want, got []float64) {
	t.Helper()
	if len(want) == 0 || len(want) != len(got) {
		t.Fatalf("%s: rank lengths %d vs %d", what, len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: rank[%d] = %v != %v (not bit-identical)", what, i, got[i], want[i])
		}
	}
}

// TestMixedStageSingleflightWarmEdges pins the mixed-depth property:
// with the edges stage pre-warmed (via Edges) but the sorted and matrix
// stages cold, N concurrent runs elect exactly one filler — it scores
// the lone sorted and matrix misses plus an edges hit, the other N-1
// join the in-flight matrix fill, and everyone agrees bit for bit.
func TestMixedStageSingleflightWarmEdges(t *testing.T) {
	const n = 6
	svc := serve.New(serve.WithMaxConcurrent(n))
	defer svc.Close()
	ctx := context.Background()
	cfg := runCfg("csr")
	if _, err := svc.Edges(ctx, serve.GraphKey{Scale: cfg.Scale, EdgeFactor: cfg.EdgeFactor, Seed: cfg.Seed}); err != nil {
		t.Fatal(err)
	}
	results := make([]*pipeline.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc.Run(ctx, cfg)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	st := svc.Stats()
	if st.CacheMatrix.Misses != 1 || st.CacheMatrix.Hits != n-1 {
		t.Fatalf("matrix stage = %+v, want 1 miss / %d hits", st.CacheMatrix, n-1)
	}
	if st.CacheSorted.Misses != 1 || st.CacheSorted.Hits != 0 {
		t.Fatalf("sorted stage = %+v, want exactly 1 miss", st.CacheSorted)
	}
	// Edges: the Edges() pre-warm missed; the lone filler run hit.
	if st.CacheEdges.Misses != 1 || st.CacheEdges.Hits != 1 {
		t.Fatalf("edges stage = %+v, want 1 miss / 1 hit", st.CacheEdges)
	}
	for i := 1; i < n; i++ {
		assertBitEqualRanks(t, "mixed-stage run", results[0].Rank, results[i].Rank)
	}
}

// TestWarmVsColdBitForBitSerialVariants pins the headline correctness
// property for the serial variants: a warm run reproduces the cold
// run's ranks bit for bit, and — for cache participants — performs
// zero kernel-0/1/2 work.
func TestWarmVsColdBitForBitSerialVariants(t *testing.T) {
	for _, variant := range []string{"csr", "coo", "columnar", "graphblas", "extsort", "parallel"} {
		svc := serve.New()
		cfg := runCfg(variant)
		ctx := context.Background()
		cold, err := svc.Run(ctx, cfg)
		if err != nil {
			t.Fatalf("%s cold: %v", variant, err)
		}
		warm, err := svc.Run(ctx, cfg)
		if err != nil {
			t.Fatalf("%s warm: %v", variant, err)
		}
		if variant == "parallel" {
			// The one non-participant recomputes everything, warm or not.
			if warm.Cache != nil {
				t.Fatalf("parallel warm run consulted the cache: %+v", warm.Cache)
			}
			if len(warm.Kernels) != 4 {
				t.Fatalf("parallel warm run executed %d kernels, want 4", len(warm.Kernels))
			}
		} else {
			if warm.Cache == nil || warm.Cache.Matrix.Hits != 1 {
				t.Fatalf("%s warm run: Cache = %+v, want a matrix hit", variant, warm.Cache)
			}
			if len(warm.Kernels) != 1 || warm.Kernels[0].Kernel != pipeline.K3PageRank {
				t.Fatalf("%s warm run executed %v, want [K3]", variant, warm.Kernels)
			}
		}
		if warm.NNZ != cold.NNZ || warm.MatrixMass != cold.MatrixMass {
			t.Fatalf("%s: warm NNZ/mass %d/%v != cold %d/%v", variant, warm.NNZ, warm.MatrixMass, cold.NNZ, cold.MatrixMass)
		}
		assertBitEqualRanks(t, variant+" warm-vs-cold", cold.Rank, warm.Rank)
		svc.Close()
	}
}

// TestWarmVsColdBitForBitDistSweep extends the warm-vs-cold pin across
// the distributed variants' whole parameter grid: processor counts
// p ∈ {1, 2, 3, 5, 8} in both execution modes.  The warm run consumes
// the cached canonical matrix, row-blocks it across its ranks, and
// must still agree with its own cold run bit for bit.
func TestWarmVsColdBitForBitDistSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full dist grid in -short mode")
	}
	for _, variant := range []string{"dist", "distgo", "distext"} {
		for _, p := range []int{1, 2, 3, 5, 8} {
			for _, mode := range []string{"sim", "goroutine"} {
				svc := serve.New()
				cfg := runCfg(variant)
				cfg.Workers = p
				cfg.DistMode = mode
				ctx := context.Background()
				cold, err := svc.Run(ctx, cfg)
				if err != nil {
					t.Fatalf("%s p=%d %s cold: %v", variant, p, mode, err)
				}
				warm, err := svc.Run(ctx, cfg)
				if err != nil {
					t.Fatalf("%s p=%d %s warm: %v", variant, p, mode, err)
				}
				if warm.Cache == nil || warm.Cache.Matrix.Hits != 1 {
					t.Fatalf("%s p=%d %s warm: Cache = %+v, want a matrix hit", variant, p, mode, warm.Cache)
				}
				if len(warm.Kernels) != 1 || warm.Kernels[0].Kernel != pipeline.K3PageRank {
					t.Fatalf("%s p=%d %s warm executed %v, want [K3]", variant, p, mode, warm.Kernels)
				}
				assertBitEqualRanks(t, variant+" dist-grid warm-vs-cold", cold.Rank, warm.Rank)
				svc.Close()
			}
		}
	}
}

// TestWarmVsColdBitForBitSocketMode extends the warm-vs-cold pin to the
// socket execution mode: the warm run hands the cached canonical matrix
// to worker *processes* over the wire and must still agree with its own
// cold run bit for bit.  Kept to two processor counts — each run spawns
// p OS processes — the full p grid for sockets lives in
// internal/dist/socket_test.go.
func TestWarmVsColdBitForBitSocketMode(t *testing.T) {
	if testing.Short() {
		t.Skip("socket warm-vs-cold spawns worker processes; skipped in -short mode")
	}
	for _, p := range []int{1, 3} {
		svc := serve.New()
		cfg := runCfg("distgo")
		cfg.Workers = p
		cfg.DistMode = "socket"
		ctx := context.Background()
		cold, err := svc.Run(ctx, cfg)
		if err != nil {
			t.Fatalf("p=%d cold: %v", p, err)
		}
		warm, err := svc.Run(ctx, cfg)
		if err != nil {
			t.Fatalf("p=%d warm: %v", p, err)
		}
		if warm.Cache == nil || warm.Cache.Matrix.Hits != 1 {
			t.Fatalf("p=%d warm: Cache = %+v, want a matrix hit", p, warm.Cache)
		}
		if len(warm.Kernels) != 1 || warm.Kernels[0].Kernel != pipeline.K3PageRank {
			t.Fatalf("p=%d warm executed %v, want [K3]", p, warm.Kernels)
		}
		assertBitEqualRanks(t, "socket warm-vs-cold", cold.Rank, warm.Rank)
		svc.Close()
	}
}

// TestWarmRunEmitsNoKernel012Events pins the "zero K0-K2 work" claim at
// the event level: a warm streaming run emits a matrix cache-hit and
// kernel events for kernel 3 only.
func TestWarmRunEmitsNoKernel012Events(t *testing.T) {
	svc := serve.New()
	defer svc.Close()
	ctx := context.Background()
	if _, err := svc.Run(ctx, runCfg("csr")); err != nil {
		t.Fatal(err)
	}
	sawHit := false
	for ev := range svc.RunStream(ctx, runCfg("csr")) {
		switch ev.Kind {
		case serve.EventCacheHit:
			if ev.Kernel != pipeline.K2Filter {
				t.Fatalf("cache hit at stage %v, want K2Filter", ev.Kernel)
			}
			sawHit = true
		case serve.EventCacheMiss:
			t.Fatalf("warm run emitted a cache miss at %v", ev.Kernel)
		case serve.EventKernelStart, serve.EventKernelEnd:
			if ev.Kernel != pipeline.K3PageRank {
				t.Fatalf("warm run emitted a kernel event for %v", ev.Kernel)
			}
		case serve.EventRunEnd:
			if ev.Err != nil {
				t.Fatal(ev.Err)
			}
		}
	}
	if !sawHit {
		t.Fatal("warm run emitted no cache-hit event")
	}
}

// TestCancelMidFillDoesNotPoisonSingleflight pins the no-poisoning
// guarantee end to end: run A wins the matrix fill and is cancelled
// while the fill is in flight; run B, already waiting on that fill,
// must recover — retry, compute the artifact itself, and finish with
// the exact ranks an undisturbed service produces.
func TestCancelMidFillDoesNotPoisonSingleflight(t *testing.T) {
	svc := serve.New(serve.WithMaxConcurrent(2))
	defer svc.Close()
	cfg := runCfg("csr")

	actx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reachedMiss := make(chan struct{})
	release := make(chan struct{})
	aDone := make(chan error, 1)
	go func() {
		_, err := svc.Run(actx, cfg, serve.WithProgress(func(ev pipeline.Event) {
			if ev.Kind == pipeline.EventCacheMiss && ev.Kernel == pipeline.K2Filter {
				close(reachedMiss)
				<-release
			}
		}))
		aDone <- err
	}()
	<-reachedMiss // A holds the in-flight matrix (and soon sorted) fill

	bDone := make(chan struct{})
	var bRes *pipeline.Result
	var bErr error
	go func() {
		defer close(bDone)
		bRes, bErr = svc.Run(context.Background(), cfg)
	}()

	cancel()       // A's ctx dies while its fills are in flight
	close(release) // let A's progress hook return; A aborts at the next check
	if err := <-aDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("run A: want context.Canceled, got %v", err)
	}
	<-bDone
	if bErr != nil {
		t.Fatalf("run B after cancelled fill: %v", bErr)
	}

	ref := serve.New()
	defer ref.Close()
	want, err := ref.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertBitEqualRanks(t, "post-cancel recovery", want.Rank, bRes.Rank)

	// The key is clean: a third run either hits the artifact B deposited
	// or recomputes it, but never sees a poisoned entry.
	again, err := svc.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertBitEqualRanks(t, "post-recovery warm run", want.Rank, again.Rank)
	if again.Cache == nil || again.Cache.Matrix.Hits != 1 {
		t.Fatalf("post-recovery run should hit the recovered matrix: %+v", again.Cache)
	}
}
