package serve

import (
	"context"
	"time"

	"repro/internal/pipeline"
)

// streamGrace bounds how long a RunStream send waits on a stalled
// consumer before treating the stream as abandoned and dropping the
// event — the guarantee that an unread channel can never strand a run
// (or its admission slot), cancellable context or not.
const streamGrace = 5 * time.Second

// EventKind classifies a RunStream event.
type EventKind int

const (
	// EventRunStarted fires once when the run clears admission and
	// begins executing.
	EventRunStarted EventKind = iota
	// EventKernelStart fires before each kernel.
	EventKernelStart
	// EventKernelEnd fires after each kernel, with its KernelResult.
	EventKernelEnd
	// EventIteration fires after each kernel-3 PageRank iteration.
	EventIteration
	// EventRunEnd fires exactly once, last, with the run's Result or
	// error; the channel closes after it.
	EventRunEnd
	// EventCheckpointSaved fires after the distributed kernel 3 commits
	// a checkpoint epoch; Iteration carries the epoch's completed-
	// iteration count.
	EventCheckpointSaved
	// EventCheckpointRestored fires when a resuming kernel 3 loads a
	// complete epoch before iterating; Iteration carries the epoch's
	// completed-iteration count.
	EventCheckpointRestored
	// EventCacheHit fires when the staged artifact cache serves an
	// artifact; Kernel identifies the producing stage (K0Generate =
	// edges, K1Sort = sorted list, K2Filter = matrix), whose kernels
	// are skipped.
	EventCacheHit
	// EventCacheMiss fires when a consulted cache stage held no
	// artifact; this run computes and deposits it.
	EventCacheMiss
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventRunStarted:
		return "run-started"
	case EventKernelStart:
		return "kernel-start"
	case EventKernelEnd:
		return "kernel-end"
	case EventIteration:
		return "iteration"
	case EventRunEnd:
		return "run-end"
	case EventCheckpointSaved:
		return "checkpoint-saved"
	case EventCheckpointRestored:
		return "checkpoint-restored"
	case EventCacheHit:
		return "cache-hit"
	case EventCacheMiss:
		return "cache-miss"
	default:
		return "event?"
	}
}

// Event is one observation of a streaming run.
type Event struct {
	// Kind classifies the event.
	Kind EventKind
	// Kernel is the stage (kernel and iteration events).
	Kernel pipeline.Kernel
	// Iteration is the 1-based kernel-3 iteration (EventIteration only).
	Iteration int
	// KernelResult is the completed stage's record (EventKernelEnd only).
	KernelResult *pipeline.KernelResult
	// Result is the completed run's result (EventRunEnd, on success).
	Result *pipeline.Result
	// Err is the run's failure (EventRunEnd, on error) — including
	// ctx's error when the run was cancelled.
	Err error
}

// RunStream executes one pipeline like Run but returns immediately with
// a channel of progress events: EventRunStarted when the run clears
// admission, per-kernel boundaries, per-iteration kernel-3 ticks, and a
// final EventRunEnd carrying the Result or error, after which the
// channel closes.  This replaces the "wait for the whole Result" model
// for callers that render progress or multiplex runs.
//
// Events are delivered in execution order on a buffered channel and the
// consumer should drain it: a send that cannot complete within the
// grace period (or after ctx is cancelled, which also aborts the run)
// is dropped, so an abandoned stream never strands the run's goroutine
// or its admission slot — under any context.  The terminal EventRunEnd
// is always delivered to a draining consumer (only a consumer that
// stopped reading forfeits it) and the channel always closes.  Passing
// WithProgress here is not meaningful (the stream is the progress hook
// and overrides it).
func (s *Service) RunStream(ctx context.Context, cfg pipeline.Config, opts ...RunOption) <-chan Event {
	ch := make(chan Event, 16)
	// emit delivers one mid-run event: buffered fast path, then a
	// bounded wait.  The grace timer is what keeps an abandoned stream
	// from stranding the run and its admission slot even under a
	// non-cancellable context — a consumer stalled past the grace
	// period is treated as gone and forfeits events.
	emit := func(ev Event) {
		select {
		case ch <- ev: // a draining consumer never loses events
			return
		default:
		}
		t := time.NewTimer(streamGrace)
		defer t.Stop()
		select {
		case ch <- ev:
		case <-ctx.Done():
		case <-t.C:
		}
	}
	// emitFinal delivers EventRunEnd.  The run is already over, so ctx
	// (likely cancelled, if the run was) must not race the delivery: a
	// consumer still draining gets the event within its next receive;
	// only an abandoned stream drops it, after the grace period, so the
	// goroutine never leaks.
	emitFinal := func(ev Event) {
		select {
		case ch <- ev:
			return
		default:
		}
		t := time.NewTimer(streamGrace)
		defer t.Stop()
		select {
		case ch <- ev:
		case <-t.C:
		}
	}
	//prlint:allow determinism -- stream pump, not kernel work: it relays events and the terminal Result; delivery timing never influences what the run computes
	go func() {
		defer close(ch)
		all := make([]RunOption, 0, len(opts)+2)
		all = append(all, opts...)
		all = append(all,
			withStarted(func() { emit(Event{Kind: EventRunStarted}) }),
			WithProgress(func(pe pipeline.Event) {
				ev := Event{Kernel: pe.Kernel, Iteration: pe.Iteration, KernelResult: pe.KernelResult}
				switch pe.Kind {
				case pipeline.EventKernelStart:
					ev.Kind = EventKernelStart
				case pipeline.EventKernelEnd:
					ev.Kind = EventKernelEnd
				case pipeline.EventIteration:
					ev.Kind = EventIteration
				case pipeline.EventCheckpointSaved:
					ev.Kind = EventCheckpointSaved
				case pipeline.EventCheckpointRestored:
					ev.Kind = EventCheckpointRestored
				case pipeline.EventCacheHit:
					ev.Kind = EventCacheHit
				case pipeline.EventCacheMiss:
					ev.Kind = EventCacheMiss
				default:
					return
				}
				emit(ev)
			}))
		res, err := s.Run(ctx, cfg, all...)
		emitFinal(Event{Kind: EventRunEnd, Result: res, Err: err})
	}()
	return ch
}
