package serve

// White-box tests of the staged artifact cache's bookkeeping: byte-cost
// LRU eviction order, the per-stage entry cap, the never-evict-the-
// just-filled rule, in-flight entries' immunity, and the singleflight
// retry protocol after a failed fill.

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// key builds a distinct cache key in the given stage.
func key(st stage, i int) cacheKey {
	return cacheKey{stage: st, graph: GraphKey{Generator: "kronecker", Scale: i, EdgeFactor: 16, Seed: 1}}
}

// mustFill acquires key as a miss and fills it with the given cost.
func mustFill(t *testing.T, c *artifactCache, k cacheKey, cost int64) {
	t.Helper()
	val, hit, fill, err := c.acquire(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatalf("key %+v: want miss, got hit %v", k, val)
	}
	fill(fmt.Sprintf("artifact-%d", k.graph.Scale), cost, nil)
}

// resident reports whether key is resident (served without blocking).
func resident(c *artifactCache, k cacheKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	return ok && e.elem != nil
}

func TestCacheBudgetEvictsLRUOrder(t *testing.T) {
	c := newArtifactCache(0, 100)
	a, b, d := key(stageEdges, 1), key(stageEdges, 2), key(stageEdges, 3)
	mustFill(t, c, a, 40)
	mustFill(t, c, b, 40)
	// Touch a so b becomes the least recently used.
	if _, hit, _, _ := c.acquire(context.Background(), a); !hit {
		t.Fatal("a should be resident")
	}
	mustFill(t, c, d, 40) // 120 > 100: evict exactly one, the LRU (b)
	if resident(c, b) {
		t.Fatal("b (LRU) should have been evicted")
	}
	if !resident(c, a) || !resident(c, d) {
		t.Fatal("a (touched) and d (just filled) must stay resident")
	}
	st := c.stageStats(stageEdges)
	if st.Entries != 2 || st.Bytes != 80 {
		t.Fatalf("stage stats = %+v, want 2 entries / 80 bytes", st)
	}
}

func TestCacheBudgetSpansStages(t *testing.T) {
	// The byte budget is a single pool across stages: a matrix deposit
	// evicts a stale edges artifact.
	c := newArtifactCache(0, 100)
	e, m := key(stageEdges, 1), key(stageMatrix, 1)
	mustFill(t, c, e, 60)
	mustFill(t, c, m, 60)
	if resident(c, e) {
		t.Fatal("edges entry should have been evicted by the matrix deposit")
	}
	if !resident(c, m) {
		t.Fatal("matrix entry must be resident")
	}
}

func TestCacheStageCapIsPerStage(t *testing.T) {
	c := newArtifactCache(2, 0)
	mustFill(t, c, key(stageEdges, 1), 10)
	mustFill(t, c, key(stageSorted, 1), 10)
	mustFill(t, c, key(stageEdges, 2), 10)
	mustFill(t, c, key(stageEdges, 3), 10) // third edges entry: evict edges LRU only
	if resident(c, key(stageEdges, 1)) {
		t.Fatal("oldest edges entry should have been evicted")
	}
	if !resident(c, key(stageEdges, 2)) || !resident(c, key(stageEdges, 3)) {
		t.Fatal("newer edges entries must survive")
	}
	if !resident(c, key(stageSorted, 1)) {
		t.Fatal("the cap is per stage; the sorted entry must survive")
	}
}

func TestCacheOversizedArtifactStaysResident(t *testing.T) {
	c := newArtifactCache(0, 10)
	big := key(stageMatrix, 1)
	mustFill(t, c, big, 50) // larger than the whole budget
	if !resident(c, big) {
		t.Fatal("the just-filled artifact must never be evicted")
	}
	// The next deposit displaces it.
	next := key(stageMatrix, 2)
	mustFill(t, c, next, 8)
	if resident(c, big) {
		t.Fatal("the oversized artifact should be displaced by the next fill")
	}
	if !resident(c, next) {
		t.Fatal("the fitting artifact must be resident")
	}
}

func TestCacheInFlightEntryNotEvictable(t *testing.T) {
	c := newArtifactCache(0, 50)
	pending := key(stageSorted, 1)
	_, hit, fillPending, err := c.acquire(context.Background(), pending)
	if err != nil || hit {
		t.Fatalf("want miss, got hit=%v err=%v", hit, err)
	}
	// Budget pressure while the fill is in flight must not touch it.
	mustFill(t, c, key(stageEdges, 1), 60)
	c.mu.Lock()
	_, stillThere := c.entries[pending]
	c.mu.Unlock()
	if !stillThere {
		t.Fatal("in-flight entry was evicted")
	}
	fillPending("v", 10, nil)
	val, hit, _, err := c.acquire(context.Background(), pending)
	if err != nil || !hit || val != "v" {
		t.Fatalf("in-flight entry lost its fill: hit=%v val=%v err=%v", hit, val, err)
	}
}

func TestCacheFailedFillRetriesNextCaller(t *testing.T) {
	c := newArtifactCache(0, 100)
	k := key(stageMatrix, 1)
	_, _, fill, err := c.acquire(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	// A waiter joins the in-flight fill, then the filler fails.
	got := make(chan error, 1)
	joined := make(chan struct{})
	go func() {
		c.mu.Lock()
		_, ok := c.entries[k]
		c.mu.Unlock()
		if !ok {
			got <- errors.New("entry gone before join")
			return
		}
		close(joined)
		val, hit, fill2, err := c.acquire(context.Background(), k)
		if err != nil {
			got <- err
			return
		}
		if hit {
			got <- fmt.Errorf("served a poisoned value %v", val)
			return
		}
		fill2("recovered", 10, nil)
		got <- nil
	}()
	<-joined
	fill(nil, 0, errors.New("cancelled mid-fill"))
	if err := <-got; err != nil {
		t.Fatalf("waiter after failed fill: %v", err)
	}
	val, hit, _, err := c.acquire(context.Background(), k)
	if err != nil || !hit || val != "recovered" {
		t.Fatalf("retry fill not served: hit=%v val=%v err=%v", hit, val, err)
	}
	st := c.stageStats(stageMatrix)
	// Misses: original filler, the retrying waiter.  Hits: the final
	// read.  The failed fill is never counted as a hit.
	if st.Misses != 2 || st.Hits != 1 {
		t.Fatalf("stage stats = %+v, want 2 misses / 1 hit", st)
	}
}

func TestCacheAcquireRespectsContext(t *testing.T) {
	c := newArtifactCache(0, 100)
	k := key(stageSorted, 1)
	_, _, fill, err := c.acquire(context.Background(), k)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := c.acquire(ctx, k); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiting on an in-flight fill with a cancelled ctx: %v", err)
	}
	fill("v", 1, nil) // the filler is unaffected
	if val, hit, _, err := c.acquire(context.Background(), k); err != nil || !hit || val != "v" {
		t.Fatalf("fill lost after a cancelled waiter: hit=%v val=%v err=%v", hit, val, err)
	}
}
