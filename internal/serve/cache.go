package serve

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"repro/internal/edge"
	"repro/internal/pipeline"
	"repro/internal/sparse"
)

// artifactCache is the service's shared staged artifact cache: one
// singleflight map from artifact identity to cached value, spanning
// three levels of the pipeline —
//
//	edges  (stage 0): the raw kernel-0 edge list, keyed GraphKey
//	sorted (stage 1): the kernel-1 sorted list, keyed GraphKey × order
//	matrix (stage 2): the kernel-2 filtered, normalized matrix, keyed
//	                  GraphKey × filter rule
//
// The contract that makes sharing safe is read-only artifacts: kernels
// only write a sourced list to storage, dist.Execute never mutates its
// Edges, the kernel-3 engines never mutate A, and the one destructive
// consumer (the columnar kernel 2) deep-copies first.  The kernel-2
// matrix is canonical — column-sorted rows, duplicates accumulated —
// so one deposit serves every variant bit-for-bit.
//
// Singleflight: the first caller of a key becomes the filler (a miss)
// and receives a fill obligation; every caller that arrives while the
// fill is in flight joins the same entry and blocks on its ready
// channel (a hit — the work was shared, not repeated).  A fill that
// delivers an error — including a cancelled run's — deletes the entry
// and wakes the waiters, who retry the key: the next one in becomes
// the new filler, so a failed or cancelled fill never poisons the key.
//
// Eviction is LRU over ready entries across all stages, governed by
// two optional bounds: a byte budget (artifacts charged at their real
// Footprint) and a per-stage resident-entry cap (the deprecated
// count-based configuration).  In-flight entries are not on the LRU
// list and cannot be evicted; evicting a ready entry only drops cache
// residency — runs already holding the artifact keep it alive.
type artifactCache struct {
	mu       sync.Mutex
	stageCap int   // per-stage resident-entry cap; 0 = uncapped
	budget   int64 // total resident-byte budget; 0 = uncapped
	entries  map[cacheKey]*cacheEntry
	order    *list.List // LRU: front = most recently used; ready entries only
	stats    [numStages]cacheStageStats
}

// stage identifies one cached artifact level.
type stage int

const (
	stageEdges stage = iota
	stageSorted
	stageMatrix
	numStages
)

// defaultFilterRule names the kernel-2 filter the matrix stage caches
// under.  The filter currently has no configuration knobs; the key
// component future-proofs the identity for when it grows some.
const defaultFilterRule = "supernode-leaf-v1"

// cacheKey is an artifact's identity.
type cacheKey struct {
	stage stage
	graph GraphKey
	// byUV is the sorted stage's order dimension: true for fully
	// (u, v)-sorted lists (SortEndVertices runs and the columnar
	// variant), false for the default by-start-vertex order.
	byUV bool
	// filter is the matrix stage's filter-rule identity.
	filter string
}

// matrixArtifact is the matrix stage's cached value: the filtered,
// normalized matrix plus the pre-filter mass a warm Result reports.
type matrixArtifact struct {
	m    *sparse.CSR
	mass float64
}

type cacheEntry struct {
	key   cacheKey
	ready chan struct{} // closed when val/err are final
	val   any
	cost  int64
	err   error
	elem  *list.Element // nil until the entry is ready and resident
}

// cacheStageStats is one stage's cumulative counters.
type cacheStageStats struct {
	hits    uint64
	misses  uint64
	entries int
	bytes   int64
}

// newArtifactCache constructs a cache with the given bounds; either
// bound may be zero (uncapped), but the Service never constructs a
// cache with both zero.
func newArtifactCache(stageCap int, budget int64) *artifactCache {
	return &artifactCache{
		stageCap: stageCap,
		budget:   budget,
		entries:  make(map[cacheKey]*cacheEntry),
		order:    list.New(),
	}
}

// acquire resolves key: (val, true, nil, nil) on a hit — resident, or
// joined in flight and filled successfully — or (nil, false, fill,
// nil) on a miss, in which case the caller MUST invoke fill exactly
// once, with the artifact or with an error.  Waiting on an in-flight
// fill respects ctx.  A hit is counted only when a value is actually
// served and a miss only when the caller becomes the filler, so the
// metered hits are exactly the computations the cache saved.
func (c *artifactCache) acquire(ctx context.Context, key cacheKey) (any, bool, func(any, int64, error), error) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			if e.elem != nil {
				c.order.MoveToFront(e.elem)
			}
			c.mu.Unlock()
			select {
			case <-e.ready:
				if e.err != nil {
					// The filler failed or was cancelled; the entry is
					// already gone.  Retry: this caller becomes the
					// next filler unless someone beat it to the key.
					if cerr := ctx.Err(); cerr != nil {
						return nil, false, nil, cerr
					}
					continue
				}
				c.mu.Lock()
				c.stats[key.stage].hits++
				c.mu.Unlock()
				return e.val, true, nil, nil
			case <-ctx.Done():
				return nil, false, nil, ctx.Err()
			}
		}
		c.stats[key.stage].misses++
		e := &cacheEntry{key: key, ready: make(chan struct{})}
		c.entries[key] = e
		c.mu.Unlock()
		return nil, false, func(val any, cost int64, err error) {
			c.fill(e, val, cost, err)
		}, nil
	}
}

// fill completes an acquire miss: it publishes the value (or the
// error) to every waiter and, on success, makes the entry resident and
// runs eviction.  Failures are delivered, never cached.
func (c *artifactCache) fill(e *cacheEntry, val any, cost int64, err error) {
	c.mu.Lock()
	e.val, e.cost, e.err = val, cost, err
	if err != nil {
		delete(c.entries, e.key)
	} else {
		e.elem = c.order.PushFront(e)
		c.stats[e.key.stage].entries++
		c.stats[e.key.stage].bytes += cost
		c.evictLocked(e)
	}
	c.mu.Unlock()
	close(e.ready)
}

// evictLocked enforces the per-stage cap and the byte budget, oldest
// entries first.  The just-filled entry is never evicted: an artifact
// larger than the whole budget stays resident (and alone) until the
// next fill displaces it — evicting it immediately would make its key
// thrash on every run.
func (c *artifactCache) evictLocked(keep *cacheEntry) {
	if c.stageCap > 0 {
		st := keep.key.stage
		for c.stats[st].entries > c.stageCap {
			if !c.evictOldestLocked(keep, &st) {
				break
			}
		}
	}
	if c.budget > 0 {
		for c.totalBytesLocked() > c.budget {
			if !c.evictOldestLocked(keep, nil) {
				break
			}
		}
	}
}

// evictOldestLocked removes the least-recently-used resident entry,
// skipping keep; when st is non-nil only that stage's entries are
// candidates.  It reports whether an entry was evicted.
func (c *artifactCache) evictOldestLocked(keep *cacheEntry, st *stage) bool {
	for el := c.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		if e == keep || (st != nil && e.key.stage != *st) {
			continue
		}
		c.order.Remove(el)
		delete(c.entries, e.key)
		c.stats[e.key.stage].entries--
		c.stats[e.key.stage].bytes -= e.cost
		return true
	}
	return false
}

func (c *artifactCache) totalBytesLocked() int64 {
	var b int64
	for st := stage(0); st < numStages; st++ {
		b += c.stats[st].bytes
	}
	return b
}

// edges resolves the raw-edge-list stage for key, generating with gen
// on a miss.  The bool reports a cache hit (resident or joined).
func (c *artifactCache) edges(ctx context.Context, key GraphKey, gen func() (*edge.List, error)) (*edge.List, bool, error) {
	val, hit, fill, err := c.acquire(ctx, cacheKey{stage: stageEdges, graph: key})
	if err != nil {
		return nil, false, err
	}
	if hit {
		return val.(*edge.List), true, nil
	}
	l, err := gen()
	if err != nil {
		fill(nil, 0, err)
		return nil, false, err
	}
	fill(l, l.Footprint(), nil)
	return l, false, nil
}

// sortedLease resolves the sorted stage as a pipeline.SortedLease.
func (c *artifactCache) sortedLease(ctx context.Context, key cacheKey) (pipeline.SortedLease, error) {
	val, hit, fill, err := c.acquire(ctx, key)
	if err != nil {
		return pipeline.SortedLease{}, err
	}
	if hit {
		return pipeline.SortedLease{List: val.(*edge.List), Hit: true}, nil
	}
	return pipeline.SortedLease{Fill: func(l *edge.List, err error) {
		if err == nil && l == nil {
			err = fmt.Errorf("serve: sorted fill delivered no list")
		}
		if err != nil {
			fill(nil, 0, err)
			return
		}
		fill(l, l.Footprint(), nil)
	}}, nil
}

// matrixLease resolves the matrix stage as a pipeline.MatrixLease.
func (c *artifactCache) matrixLease(ctx context.Context, key cacheKey) (pipeline.MatrixLease, error) {
	val, hit, fill, err := c.acquire(ctx, key)
	if err != nil {
		return pipeline.MatrixLease{}, err
	}
	if hit {
		art := val.(*matrixArtifact)
		return pipeline.MatrixLease{Matrix: art.m, Mass: art.mass, Hit: true}, nil
	}
	return pipeline.MatrixLease{Fill: func(m *sparse.CSR, mass float64, err error) {
		if err == nil && m == nil {
			err = fmt.Errorf("serve: matrix fill delivered no matrix")
		}
		if err != nil {
			fill(nil, 0, err)
			return
		}
		fill(&matrixArtifact{m: m, mass: mass}, m.Footprint(), nil)
	}}, nil
}

// stageStats snapshots one stage's counters.
func (c *artifactCache) stageStats(st stage) StageStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats[st]
	return StageStats{Hits: s.hits, Misses: s.misses, Entries: s.entries, Bytes: s.bytes}
}
