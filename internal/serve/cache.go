package serve

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/edge"
)

// genCache is the service's shared generator cache: a singleflight map
// from graph identity to generated edge list with LRU eviction.  The
// contract that makes sharing safe is read-only edge lists — kernel 0
// only writes a sourced list to storage (pipeline.Config.Source), and
// dist.Execute never mutates its input — so one generation can feed any
// number of concurrent runs.
//
// Singleflight: the first caller of a key becomes the generator (a
// miss); every caller that arrives while generation is in flight joins
// the same entry and blocks on its ready channel (a hit — the work was
// shared, not repeated).  Errors are delivered to all joined waiters and
// never cached.
type genCache struct {
	mu      sync.Mutex
	cap     int
	entries map[GraphKey]*genEntry
	order   *list.List // LRU: front = most recently used; ready entries only
	hits    uint64
	misses  uint64
}

type genEntry struct {
	key   GraphKey
	ready chan struct{} // closed when list/err are final
	list  *edge.List
	err   error
	elem  *list.Element // nil until the entry is ready and resident
}

func newGenCache(capacity int) *genCache {
	return &genCache{
		cap:     capacity,
		entries: make(map[GraphKey]*genEntry),
		order:   list.New(),
	}
}

// get returns the edge list for key, generating it with gen on a miss.
// The second result reports whether the list came from the cache (either
// resident or joined in flight).  Waiting on an in-flight generation
// respects ctx; the generation itself runs to completion on the missing
// caller's goroutine regardless, so late joiners can still be served.
// A hit is counted only when a list is actually served: a cancelled wait
// or a joined generation that failed moves no counter, so the metered
// hits are exactly the generations the cache saved.
func (c *genCache) get(ctx context.Context, key GraphKey, gen func() (*edge.List, error)) (*edge.List, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.elem != nil {
			c.order.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		select {
		case <-e.ready:
			if e.err != nil {
				return nil, false, e.err
			}
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
			return e.list, true, nil
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	c.misses++
	e := &genEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	e.list, e.err = gen()
	close(e.ready)

	c.mu.Lock()
	if e.err != nil {
		// Failures are delivered, not cached: the next caller retries.
		delete(c.entries, key)
	} else {
		e.elem = c.order.PushFront(e)
		for c.order.Len() > c.cap {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*genEntry).key)
		}
	}
	c.mu.Unlock()
	return e.list, false, e.err
}

// stats returns the cumulative hit/miss counters and the resident entry
// count.
func (c *genCache) stats() (hits, misses uint64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}
