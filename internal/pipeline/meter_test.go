package pipeline

import "testing"

func TestMeterIORecordsPerKernelTraffic(t *testing.T) {
	cfg := smallCfg("csr")
	cfg.MeterIO = true
	res, err := Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k0 := res.KernelResultFor(K0Generate)
	k1 := res.KernelResultFor(K1Sort)
	k2 := res.KernelResultFor(K2Filter)
	k3 := res.KernelResultFor(K3PageRank)
	for name, k := range map[string]*KernelResult{"k0": k0, "k1": k1, "k2": k2, "k3": k3} {
		if k.IO == nil {
			t.Fatalf("%s: no IO stats recorded", name)
		}
	}
	// K0 only writes, K1 reads and writes about the same volume, K2 only
	// reads, K3 touches no storage.
	if k0.IO.BytesRead != 0 || k0.IO.BytesWritten == 0 {
		t.Errorf("K0 IO = %+v", *k0.IO)
	}
	if k1.IO.BytesRead == 0 || k1.IO.BytesWritten == 0 {
		t.Errorf("K1 IO = %+v", *k1.IO)
	}
	if k1.IO.BytesRead != k0.IO.BytesWritten {
		t.Errorf("K1 read %d bytes, K0 wrote %d — must match", k1.IO.BytesRead, k0.IO.BytesWritten)
	}
	if k1.IO.BytesWritten != k1.IO.BytesRead {
		t.Errorf("K1 sorted rewrite size %d != read size %d (same text format)", k1.IO.BytesWritten, k1.IO.BytesRead)
	}
	if k2.IO.BytesRead != k1.IO.BytesWritten || k2.IO.BytesWritten != 0 {
		t.Errorf("K2 IO = %+v", *k2.IO)
	}
	if k3.IO.BytesRead != 0 || k3.IO.BytesWritten != 0 {
		t.Errorf("K3 IO = %+v, kernel 3 is storage-free", *k3.IO)
	}
}

func TestMeterIOOffByDefault(t *testing.T) {
	res, err := Execute(smallCfg("csr"))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range res.Kernels {
		if k.IO != nil {
			t.Fatal("IO stats present without MeterIO")
		}
	}
}

func TestMeterIOExtsortSeesSpillTraffic(t *testing.T) {
	cfg := smallCfg("extsort")
	cfg.MeterIO = true
	cfg.RunEdges = 64 // force heavy spilling
	res, err := Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k1 := res.KernelResultFor(K1Sort)
	// External sort reads input + spilled runs; its total read volume must
	// exceed the plain input size (csr's K1 read volume).
	ref := smallCfg("csr")
	ref.MeterIO = true
	refRes, err := Execute(ref)
	if err != nil {
		t.Fatal(err)
	}
	refK1 := refRes.KernelResultFor(K1Sort)
	if k1.IO.BytesRead <= refK1.IO.BytesRead {
		t.Errorf("extsort K1 read %d bytes, expected more than in-memory K1's %d (spill traffic)",
			k1.IO.BytesRead, refK1.IO.BytesRead)
	}
}
