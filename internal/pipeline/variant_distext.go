package pipeline

// The distext variant is the out-of-core distributed regime: kernel 1 runs
// dist.SortExternal — per-rank bounded run formation spilled to the
// pipeline's storage, the in-memory sample sort's splitter schedule, a
// spilled-run all-to-all and per-bucket k-way merges — while kernels 0, 2
// and 3 are shared with the dist variants.  It is the composition the
// paper's §IV out-of-core requirement and §V parallel analysis jointly
// demand for graphs whose edge vectors exceed a single node's RAM.
// Config.RunEdges bounds the per-rank run buffer (the modeled RAM) and
// Config.DistMode selects simulated or goroutine-rank execution, exactly
// as for dist/distgo.

import (
	"repro/internal/dist"
	"repro/internal/fastio"
	"repro/internal/xsort"
)

func init() { Register(distextVariant{}) }

type distextVariant struct {
	distVariant
}

// Name implements Variant.
func (distextVariant) Name() string { return "distext" }

// Description implements Variant.
func (distextVariant) Description() string {
	return "out-of-core distributed memory: per-rank external run formation, spilled-run all-to-all, k-way bucket merge (§IV out-of-core × §V sample sort)"
}

// Kernel1 implements Variant.
func (v distextVariant) Kernel1(r *Run) error {
	if r.Cfg.SortEndVertices {
		// The distributed sort keys on the start vertex only; the (u,v)
		// ablation falls back to the serial out-of-core external sort,
		// which honors the same RunEdges memory bound.
		src, err := fastio.NewStripedSource(r.FS, "k0", r.Codec())
		if err != nil {
			return err
		}
		defer src.Close()
		sink, err := fastio.NewStripedSink(r.FS, "k1", r.Codec(), r.Cfg.NFiles, int64(r.Cfg.M()))
		if err != nil {
			return err
		}
		stats, err := xsort.External(src, sink, xsort.ExternalConfig{
			FS:        r.FS,
			TmpPrefix: "tmp/distsort",
			RunEdges:  r.Cfg.RunEdges,
			ByUV:      true,
			Codec:     r.SpillCodec(),
		})
		if err != nil {
			sink.Close()
			return err
		}
		r.Spill = &SpillStats{
			Codec:        stats.Codec,
			Runs:         stats.Runs,
			BytesWritten: stats.Spill.BytesWritten,
			BytesRead:    stats.Spill.BytesRead,
		}
		return sink.Close()
	}
	l, err := fastio.ReadStriped(r.FS, "k0", r.Codec())
	if err != nil {
		return err
	}
	out, err := dist.Execute(r.Context(), dist.Spec{
		Config: dist.Config{Mode: v.execMode(r)}, Op: dist.OpSortExternal,
		Edges: l, Procs: v.procs(r),
		Ext: dist.ExtSortConfig{
			FS:        r.FS,
			RunEdges:  r.Cfg.RunEdges,
			TmpPrefix: "tmp/distsort",
			Codec:     r.SpillCodec(),
		},
	})
	if err != nil {
		return err
	}
	r.AddComm(out.ExtSort.Comm)
	runs := 0
	for _, n := range out.ExtSort.RunsPerRank {
		runs += n
	}
	r.Spill = &SpillStats{
		Codec:        out.ExtSort.SpillCodec,
		Runs:         runs,
		BytesWritten: out.ExtSort.Spill.BytesWritten,
		BytesRead:    out.ExtSort.Spill.BytesRead,
	}
	r.SortedOut = out.ExtSort.Sorted
	return fastio.WriteStriped(r.FS, "k1", r.Codec(), r.Cfg.NFiles, out.ExtSort.Sorted)
}

// CacheTraits implements the optional staged-cache interface.  The
// distributed external sort materializes its merged output (unlike
// extsort's fully streaming kernel 1), so the sorted artifact is
// exchangeable on the default by-u path.  The SortEndVertices fallback
// above streams through the serial external sort and records no sorted
// artifact — a sorted-stage miss under that ablation deposits a
// delivered-not-cached failure, which concurrent waiters simply retry
// past; the matrix stage still serves warm runs.
func (distextVariant) CacheTraits() CacheTraits {
	return CacheTraits{SortedArtifact: true, MatrixArtifact: true}
}
