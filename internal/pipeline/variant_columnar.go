package pipeline

// The columnar variant works a whole column at a time over the parallel
// (U, V) arrays — the analogue of the paper's Python-with-Pandas code,
// where every step is a vectorized dataframe operation.  Kernel 1 fully
// sorts by (u, v) so that kernel 2 becomes a single run-length-encoding
// scan, and kernel 2's degree computations are array-counting passes that
// never touch a per-row data structure.

import (
	"fmt"

	"repro/internal/fastio"
	"repro/internal/pagerank"
	"repro/internal/sparse"
	"repro/internal/xsort"
)

func init() { Register(columnarVariant{}) }

type columnarVariant struct{}

// Name implements Variant.
func (columnarVariant) Name() string { return "columnar" }

// Description implements Variant.
func (columnarVariant) Description() string {
	return "vectorized column-at-a-time array operations (analogue of the paper's Python with Pandas)"
}

// Kernel0 implements Variant.
func (columnarVariant) Kernel0(r *Run) error {
	l, err := sourceEdges(r)
	if err != nil {
		return err
	}
	return fastio.WriteStriped(r.FS, "k0", r.Codec(), r.Cfg.NFiles, l)
}

// Kernel1 implements Variant.  The columnar pipeline always sorts fully by
// (u, v) — a (u, v)-sorted list is in particular sorted by u, so the
// kernel-1 contract holds, and the full order is what lets kernel 2 be one
// linear scan.
func (columnarVariant) Kernel1(r *Run) error {
	l, err := fastio.ReadStriped(r.FS, "k0", r.Codec())
	if err != nil {
		return err
	}
	xsort.RadixByUV(l)
	r.SortedOut = l
	return fastio.WriteStriped(r.FS, "k1", r.Codec(), r.Cfg.NFiles, l)
}

// CacheTraits implements the optional staged-cache interface: this
// variant's kernel 1 always sorts by (u, v), so its sorted artifact is
// keyed as a (u, v)-ordered list and is exchangeable with the other
// variants' SortEndVertices runs.
func (columnarVariant) CacheTraits() CacheTraits {
	return CacheTraits{SortedArtifact: true, SortsByUV: true, MatrixArtifact: true}
}

// Kernel2 implements Variant.  The column filter below rewrites the
// list in place, so a cache-shared sorted artifact is deep-copied
// first (sortedEdgesMutable) to keep the resident copy pristine.
func (columnarVariant) Kernel2(r *Run) error {
	l, err := sortedEdgesMutable(r)
	if err != nil {
		return err
	}
	n := int(r.Cfg.N())
	m := l.Len()
	r.MatrixMass = float64(m)
	// din over the V column: din[v] = number of edges ending at v, which
	// equals the column sum of the counting matrix.
	din := make([]float64, n)
	for _, v := range l.V {
		if v >= uint64(n) {
			return errOutOfRange(v, n)
		}
		din[v]++
	}
	maxDin := sparse.MaxValue(din)
	// Vectorized selection: keep edges whose target column survives.
	keepU := l.U[:0]
	keepV := l.V[:0]
	for i := 0; i < m; i++ {
		u, v := l.U[i], l.V[i]
		if u >= uint64(n) {
			return errOutOfRange(u, n)
		}
		d := din[v]
		if d == maxDin || d == 1 {
			continue
		}
		keepU = append(keepU, u)
		keepV = append(keepV, v)
	}
	l.U, l.V = keepU, keepV
	// dout over the retained U column.
	dout := make([]float64, n)
	for _, u := range l.U {
		dout[u]++
	}
	// The retained list is still (u, v)-sorted, so a single RLE scan
	// builds the matrix; normalize with the array-derived out-degrees.
	b, err := sparse.NewSortedBuilder(n)
	if err != nil {
		return err
	}
	for i := 0; i < l.Len(); i++ {
		if err := b.Add(l.U[i], l.V[i]); err != nil {
			return err
		}
	}
	a := b.Finish()
	a.ScaleRows(dout)
	r.Matrix = a
	return nil
}

// Kernel3 implements Variant.
func (columnarVariant) Kernel3(r *Run) error {
	eng, err := pagerank.NewScatterEngine(r.Matrix, r.Cfg.PageRank)
	if err != nil {
		return err
	}
	res, err := eng.RunContext(r.Context())
	if err != nil {
		return err
	}
	r.Rank = res
	return nil
}

func errOutOfRange(v uint64, n int) error {
	return fmt.Errorf("pipeline: vertex %d out of range N=%d", v, n)
}
