package pipeline

import (
	"strings"
	"testing"
)

func TestValidateAllVariantsPass(t *testing.T) {
	for _, name := range VariantNames() {
		t.Run(name, func(t *testing.T) {
			cfg := smallCfg(name)
			rep, err := Validate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Passed {
				for _, c := range rep.Checks {
					if !c.Passed {
						t.Errorf("%s (%s) failed: %s", c.ID, c.Name, c.Detail)
					}
				}
			}
			// Small scale: all six checks including the eigen check.
			if len(rep.Checks) != 6 {
				t.Errorf("ran %d checks, want 6 (incl. eigen at small N)", len(rep.Checks))
			}
		})
	}
}

func TestValidateAlternativeGenerators(t *testing.T) {
	for _, gen := range []GeneratorKind{GenPPL, GenER} {
		cfg := smallCfg("csr")
		cfg.Generator = gen
		rep, err := Validate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range rep.Checks {
			// V3's collision expectation may not hold for ER/PPL at tiny
			// scales, but mass conservation must.
			if !c.Passed && c.ID != "V3" {
				t.Errorf("%s/%s: %s failed: %s", gen, c.ID, c.Name, c.Detail)
			}
			if c.ID == "V3" && !c.Passed && !strings.Contains(c.Detail, "nnz") {
				t.Errorf("%s: V3 failed for a non-collision reason: %s", gen, c.Detail)
			}
		}
	}
}

func TestValidateCheckIDsOrdered(t *testing.T) {
	rep, err := Validate(smallCfg("csr"))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"V1", "V2", "V3", "V4", "V5", "V6"}
	for i, c := range rep.Checks {
		if c.ID != want[i] {
			t.Errorf("check %d = %s, want %s", i, c.ID, want[i])
		}
		if c.Detail == "" || c.Name == "" {
			t.Errorf("%s missing name/detail", c.ID)
		}
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	if _, err := Validate(Config{Scale: -1}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestValidateSkipsEigenAtLargeN(t *testing.T) {
	cfg := Config{Scale: 12, EdgeFactor: 4, Seed: 3, Variant: "csr"} // N = 4096 > 2048
	rep, err := Validate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Checks {
		if c.ID == "V6" {
			t.Error("eigen check ran at N=4096")
		}
	}
	if len(rep.Checks) != 5 {
		t.Errorf("expected 5 checks, got %d", len(rep.Checks))
	}
	if !rep.Passed {
		t.Error("large-N validation failed")
	}
}
