package pipeline

// The paper's §V asks: "What outputs should be recorded to validate
// correctness?"  This file is the repository's answer: a validation suite
// that replays the pipeline while checking every invariant the paper
// states or implies, producing a machine-readable report.
//
//	V1  kernel-0 files contain exactly M well-formed edges within [0, N)
//	V2  kernel-1 output is sorted by start vertex and is a permutation of
//	    kernel 0's edge multiset
//	V3  the kernel-2 counting matrix has mass M ("all the entries in A
//	    should sum to M") and fewer than M stored entries (collisions)
//	V4  after filtering, no column has in-degree equal to the old maximum
//	    or exactly 1, and every non-empty row sums to 1
//	V5  the kernel-3 rank vector is finite, non-negative and matches the
//	    variant-independent reference (csr) bitwise up to 1e-9
//	V6  (small N only) the normalized rank vector matches the dominant
//	    eigenvector of c·Aᵀ + (1-c)/N, the paper's §IV.D check

import (
	"fmt"
	"math"

	"repro/internal/fastio"
	"repro/internal/pagerank"
	"repro/internal/sparse"
)

// Check is one validation outcome.
type Check struct {
	// ID is the check identifier (V1..V6).
	ID string
	// Name describes the invariant.
	Name string
	// Passed reports the outcome.
	Passed bool
	// Detail carries the measured quantity or failure description.
	Detail string
}

// Validation is the full report.
type Validation struct {
	// Checks lists every executed check in order.
	Checks []Check
	// Passed is true when every check passed.
	Passed bool
}

func (v *Validation) add(id, name string, passed bool, detail string) {
	v.Checks = append(v.Checks, Check{ID: id, Name: name, Passed: passed, Detail: detail})
}

// eigenCheckMaxN bounds the dense eigenvector check.
const eigenCheckMaxN = 2048

// Validate runs the full pipeline under cfg and audits every recorded
// output.  It is deliberately slower than a benchmark run: it reads the
// intermediate files back and rebuilds reference results.
func Validate(cfg Config) (*Validation, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	v := registry[cfg.Variant]
	run := &Run{Cfg: cfg, FS: cfg.FS}
	rep := &Validation{}

	// Run kernel 0 and audit the files.  The codec is resolved by
	// detection, not assumption: the stripes on disk name their own
	// format, and a mismatch with the configured format is itself a
	// validation failure (not a misread).
	if err := v.Kernel0(run); err != nil {
		return nil, fmt.Errorf("validate: kernel 0: %w", err)
	}
	codec, err := fastio.DetectStriped(cfg.FS, "k0")
	if err != nil {
		return nil, fmt.Errorf("validate: detecting k0 format: %w", err)
	}
	if want := FormatName(cfg); codec.Name() != want {
		return nil, fmt.Errorf("validate: k0 files are %q but the configuration says %q", codec.Name(), want)
	}
	k0, err := fastio.ReadStriped(cfg.FS, "k0", codec)
	if err != nil {
		return nil, fmt.Errorf("validate: reading k0 files: %w", err)
	}
	m := cfg.M()
	n := cfg.N()
	inRange := true
	for i := 0; i < k0.Len(); i++ {
		if k0.U[i] >= n || k0.V[i] >= n {
			inRange = false
			break
		}
	}
	rep.add("V1", "kernel-0 files hold exactly M in-range edges",
		uint64(k0.Len()) == m && inRange,
		fmt.Sprintf("edges=%d M=%d inRange=%v", k0.Len(), m, inRange))

	// Kernel 1 and its postconditions.
	if err := v.Kernel1(run); err != nil {
		return nil, fmt.Errorf("validate: kernel 1: %w", err)
	}
	k1, err := fastio.ReadStriped(cfg.FS, "k1", codec)
	if err != nil {
		return nil, fmt.Errorf("validate: reading k1 files: %w", err)
	}
	rep.add("V2", "kernel-1 output sorted by start vertex and multiset-equal to kernel 0",
		k1.IsSortedByU() && k1.SameMultiset(k0),
		fmt.Sprintf("sorted=%v multisetEqual=%v", k1.IsSortedByU(), k1.SameMultiset(k0)))

	// Kernel 2: rebuild the unfiltered matrix independently for the mass
	// check, then run the variant's kernel 2.
	ref, err := sparse.FromEdges(k1, int(n))
	if err != nil {
		return nil, fmt.Errorf("validate: reference build: %w", err)
	}
	massOK := ref.SumValues() == float64(m)
	collisionsOK := ref.NNZ() < int(m)
	dinBefore := ref.InDegrees()
	maxDin := sparse.MaxValue(dinBefore)
	rep.add("V3", "counting matrix mass equals M with fewer than M stored entries",
		massOK && collisionsOK,
		fmt.Sprintf("mass=%.0f nnz=%d M=%d", ref.SumValues(), ref.NNZ(), m))

	if err := v.Kernel2(run); err != nil {
		return nil, fmt.Errorf("validate: kernel 2: %w", err)
	}
	a := run.Matrix
	dinAfter := a.InDegrees()
	filterOK := true
	detail := ""
	for j := range dinAfter {
		// After filtering, formerly max-in-degree and in-degree-1 columns
		// must be empty.
		if (dinBefore[j] == maxDin || dinBefore[j] == 1) && dinAfter[j] != 0 {
			filterOK = false
			detail = fmt.Sprintf("column %d survived (din before %.0f)", j, dinBefore[j])
			break
		}
	}
	rowsOK := true
	for i, d := range a.OutDegrees() {
		if d != 0 && math.Abs(d-1) > 1e-9 {
			rowsOK = false
			detail = fmt.Sprintf("row %d sums to %v", i, d)
			break
		}
	}
	if detail == "" {
		detail = fmt.Sprintf("nnz=%d maxDinBefore=%.0f", a.NNZ(), maxDin)
	}
	rep.add("V4", "filtered columns eliminated and non-empty rows normalized to 1",
		filterOK && rowsOK, detail)

	// Kernel 3 against the reference engine.
	if err := v.Kernel3(run); err != nil {
		return nil, fmt.Errorf("validate: kernel 3: %w", err)
	}
	rank := run.Rank.Rank
	finite := true
	for _, x := range rank {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			finite = false
			break
		}
	}
	refRank, err := pagerank.Scatter(a, cfg.PageRank)
	if err != nil {
		return nil, fmt.Errorf("validate: reference pagerank: %w", err)
	}
	var maxDev float64
	for i := range rank {
		if d := math.Abs(rank[i] - refRank.Rank[i]); d > maxDev {
			maxDev = d
		}
	}
	rep.add("V5", "rank vector finite, non-negative, and engine-independent",
		finite && maxDev < 1e-9,
		fmt.Sprintf("finite=%v maxEngineDeviation=%.2g", finite, maxDev))

	// Dense eigenvector check at small N (paper §IV.D).
	if n <= eigenCheckMaxN {
		long, err := pagerank.Scatter(a, pagerank.Options{
			Seed: cfg.PageRank.Seed, Damping: cfg.PageRank.Damping, Iterations: 300,
		})
		if err != nil {
			return nil, err
		}
		diff, err := pagerank.CompareWithEigen(long.Rank, a, pagerank.EigenOptions{Damping: cfg.PageRank.Damping})
		if err != nil {
			return nil, err
		}
		rep.add("V6", "normalized rank matches the dominant eigenvector of c·Aᵀ+(1-c)/N",
			diff < 1e-8, fmt.Sprintf("maxComponentDiff=%.2g", diff))
	}

	rep.Passed = true
	for _, c := range rep.Checks {
		if !c.Passed {
			rep.Passed = false
			break
		}
	}
	return rep, nil
}
