package pipeline

import "repro/internal/sparse"

// FilterStats reports what kernel 2's filtering removed.
type FilterStats struct {
	// MaxInDegree is max(din) before filtering.
	MaxInDegree float64
	// SuperNodeColumns is the number of columns with din == max(din).
	SuperNodeColumns int
	// LeafColumns is the number of columns with din == 1.
	LeafColumns int
	// EntriesZeroed is the number of stored entries removed.
	EntriesZeroed int
}

// ApplyKernel2Filter performs the filtering and normalization steps of
// kernel 2 on a freshly built counting adjacency matrix, in place:
//
//	din = sum(A,1)
//	A(:, din == max(din)) = 0   // eliminate super-nodes
//	A(:, din == 1)        = 0   // eliminate leaves
//	dout = sum(A,2)
//	A(i,:) = A(i,:) / dout(i) for dout(i) > 0
//
// Explicit zeros are compacted away before normalization.  It returns the
// filtering statistics.
func ApplyKernel2Filter(a *sparse.CSR) FilterStats {
	din := a.InDegrees()
	var st FilterStats
	mask, maxDin, superNodes, leaves := sparse.Kernel2Mask(din)
	st.MaxInDegree = maxDin
	st.SuperNodeColumns = superNodes
	st.LeafColumns = leaves
	st.EntriesZeroed = a.ZeroColumns(mask)
	a.Compact()
	a.ScaleRows(a.OutDegrees())
	return st
}
