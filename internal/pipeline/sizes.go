package pipeline

import "fmt"

// BytesPerEdgeStated is the paper's stated Table II assumption, "16 bytes
// per edge" (two 8-byte vertex labels).
const BytesPerEdgeStated = 16

// BytesPerEdgePublished is the bytes-per-edge that actually reproduces the
// published Table II numbers.  The paper's text says 16 bytes per edge, but
// every printed memory figure (25MB at scale 16 through 1.6GB at scale 22)
// equals M · 24 bytes in decimal units — consistent with two labels plus a
// value or index word.  We reproduce the published numbers by default and
// record the discrepancy in EXPERIMENTS.md.
const BytesPerEdgePublished = 24

// SizeRow is one row of the paper's Table II ("Benchmark run sizes").
type SizeRow struct {
	// Scale is the Graph500 scale factor.
	Scale int
	// MaxVertices is N = 2^Scale.
	MaxVertices uint64
	// MaxEdges is M = EdgeFactor · N.
	MaxEdges uint64
	// MemoryBytes is the approximate edge-data footprint.
	MemoryBytes uint64
}

// SizeTable computes Table II rows for the given scales.  Zero edgeFactor
// selects the paper's k = 16; zero bytesPerEdge selects
// BytesPerEdgePublished.
func SizeTable(scales []int, edgeFactor, bytesPerEdge int) []SizeRow {
	if edgeFactor == 0 {
		edgeFactor = 16
	}
	if bytesPerEdge == 0 {
		bytesPerEdge = BytesPerEdgePublished
	}
	rows := make([]SizeRow, len(scales))
	for i, s := range scales {
		n := uint64(1) << uint(s)
		m := uint64(edgeFactor) * n
		rows[i] = SizeRow{Scale: s, MaxVertices: n, MaxEdges: m, MemoryBytes: m * uint64(bytesPerEdge)}
	}
	return rows
}

// PaperScales are the scale factors evaluated in the paper (Table II,
// Figures 4–7).
var PaperScales = []int{16, 17, 18, 19, 20, 21, 22}

// HumanBytes renders a byte count in the paper's Table II style: decimal
// units, truncated (25MB, 402MB, 1.6GB).
func HumanBytes(b uint64) string {
	switch {
	case b >= 1e9:
		return fmt.Sprintf("%.1fGB", float64(b/1e8)/10) // truncate to 0.1GB
	case b >= 1e6:
		return fmt.Sprintf("%dMB", b/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%dKB", b/1e3)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// HumanCount renders a count in the paper's Table II style: decimal units,
// truncated (65K, 131K, 1M, 67M).
func HumanCount(c uint64) string {
	switch {
	case c >= 1e9:
		return fmt.Sprintf("%dG", c/1e9)
	case c >= 1e6:
		return fmt.Sprintf("%dM", c/1e6)
	case c >= 1e3:
		return fmt.Sprintf("%dK", c/1e3)
	default:
		return fmt.Sprintf("%d", c)
	}
}
