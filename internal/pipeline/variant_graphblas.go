package pipeline

// The graphblas variant expresses kernels 2 and 3 entirely in GraphBLAS
// operations — build, reduce, select, apply, and a semiring vector-matrix
// product — the standards-oriented implementation the paper proposes so
// that "implementations using the GraphBLAS standard would enable
// comparison of the GraphBLAS capabilities with other technologies".

import (
	"fmt"

	"repro/internal/fastio"
	"repro/internal/graphblas"
	"repro/internal/pagerank"
	"repro/internal/sparse"
	"repro/internal/xsort"
)

func init() { Register(graphblasVariant{}) }

type graphblasVariant struct{}

// Name implements Variant.
func (graphblasVariant) Name() string { return "graphblas" }

// Description implements Variant.
func (graphblasVariant) Description() string {
	return "kernels 2-3 expressed over generic GraphBLAS semiring operations (the paper's standards-oriented path)"
}

// Kernel0 implements Variant.
func (graphblasVariant) Kernel0(r *Run) error {
	l, err := sourceEdges(r)
	if err != nil {
		return err
	}
	return fastio.WriteStriped(r.FS, "k0", r.Codec(), r.Cfg.NFiles, l)
}

// Kernel1 implements Variant.
func (graphblasVariant) Kernel1(r *Run) error {
	l, err := fastio.ReadStriped(r.FS, "k0", r.Codec())
	if err != nil {
		return err
	}
	if r.Cfg.SortEndVertices {
		xsort.RadixByUV(l)
	} else {
		xsort.RadixByU(l)
	}
	r.SortedOut = l
	return fastio.WriteStriped(r.FS, "k1", r.Codec(), r.Cfg.NFiles, l)
}

// Kernel2 implements Variant.  Every step is a GraphBLAS primitive:
//
//	A    = GrB_Matrix_build(u, v, 1, +)      // counting matrix
//	din  = GrB_reduce(A, +, columns)         // in-degree
//	A    = GrB_select(A, din[j] not in {max, 1})
//	dout = GrB_reduce(A, +, rows)            // out-degree
//	A    = GrB_apply(A, v / dout[i])         // row normalization
func (graphblasVariant) Kernel2(r *Run) error {
	l, err := sortedEdges(r)
	if err != nil {
		return err
	}
	n := int(r.Cfg.N())
	m, err := graphblas.BuildFromEdges(n, l.U, l.V)
	if err != nil {
		return err
	}
	r.MatrixMass = m.ReduceAll(graphblas.PlusFloat64)
	din := m.ReduceCols(graphblas.PlusFloat64)
	maxDin := graphblas.ReduceVec(din, graphblas.MaxFloat64)
	filtered := m.Select(func(i, j int, v float64) bool {
		d := din[j]
		return d != maxDin && d != 1
	})
	dout := filtered.ReduceRows(graphblas.PlusFloat64)
	// Normalize by multiplying with the reciprocal, exactly like
	// sparse.ScaleRows: v/dout and v*(1/dout) round differently in the
	// last ulp, and the kernel-2 matrix must be bit-identical across
	// variants — it is the staged cache's exchange currency.
	filtered.Apply(func(i, j int, v float64) float64 {
		if dout[i] == 0 {
			return v
		}
		return v * (1 / dout[i])
	})
	r.GB = filtered
	// Convert to CSR as well so cross-variant checks and mixed-kernel
	// ablations can consume this variant's K2 output uniformly.
	rows, cols, vals := filtered.ExtractTuples()
	csr, err := sparse.FromTriplets(n, rows, cols, vals)
	if err != nil {
		return err
	}
	r.Matrix = csr
	return nil
}

// Kernel3 implements Variant.
func (graphblasVariant) Kernel3(r *Run) error {
	if r.GB == nil {
		if r.Matrix == nil {
			return fmt.Errorf("graphblas variant: kernel 3 requires kernel 2 output")
		}
		// A foreign variant produced K2's matrix; lift it to the generic
		// representation.
		gb, err := liftCSR(r.Matrix)
		if err != nil {
			return err
		}
		r.GB = gb
	}
	eng, err := pagerank.NewGraphBLASEngine(r.GB, r.Cfg.PageRank)
	if err != nil {
		return err
	}
	res, err := eng.RunContext(r.Context())
	if err != nil {
		return err
	}
	r.Rank = res
	return nil
}

func liftCSR(a *sparse.CSR) (*graphblas.Matrix[float64], error) {
	rows := make([]int, 0, a.NNZ())
	cols := make([]int, 0, a.NNZ())
	vals := make([]float64, 0, a.NNZ())
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			rows = append(rows, i)
			cols = append(cols, int(a.Col[k]))
			vals = append(vals, a.Val[k])
		}
	}
	return graphblas.Build(a.N, rows, cols, vals, graphblas.PlusFloat64.Op)
}
