package pipeline

import (
	"fmt"
	"testing"

	"repro/internal/vfs"
)

// The edge-file codecs are transport, never semantics: every result a run
// reports — the rank vector, the communication record, the spill run
// count — must be bit-for-bit invariant in Config.Format.  These are the
// acceptance properties of the format plumbing.

func TestDefaultFormat(t *testing.T) {
	if got := DefaultFormat("coo"); got != "naivetsv" {
		t.Errorf("DefaultFormat(coo) = %q", got)
	}
	for _, v := range []string{"csr", "extsort", "dist", "parallel"} {
		if got := DefaultFormat(v); got != "tsv" {
			t.Errorf("DefaultFormat(%s) = %q", v, got)
		}
	}
}

func TestFormatNameResolution(t *testing.T) {
	if got := FormatName(Config{Variant: "csr"}); got != "tsv" {
		t.Errorf("FormatName(csr) = %q", got)
	}
	if got := FormatName(Config{Variant: "coo", Format: "packed"}); got != "packed" {
		t.Errorf("FormatName(coo, packed) = %q", got)
	}
}

func TestConfigValidateRejectsUnknownFormat(t *testing.T) {
	cfg := Config{Scale: 5, Variant: "csr", Format: "zstd"}
	if err := cfg.Validate(); err == nil {
		t.Error("unknown Format accepted")
	}
}

// TestSerialVariantsFormatInvariant runs each single-process variant under
// every codec and requires identical ranks and matrix statistics.
func TestSerialVariantsFormatInvariant(t *testing.T) {
	for _, variant := range []string{"csr", "coo", "columnar", "parallel", "extsort"} {
		t.Run(variant, func(t *testing.T) {
			var base *Result
			var baseFormat string
			for _, format := range []string{"tsv", "bin", "packed"} {
				cfg := Config{
					Scale: 7, EdgeFactor: 8, Seed: 3, NFiles: 3,
					Variant: variant, Format: format, KeepRank: true,
					FS: vfs.NewMem(), RunEdges: 200,
				}
				res, err := Execute(cfg)
				if err != nil {
					t.Fatalf("format %s: %v", format, err)
				}
				if base == nil {
					base, baseFormat = res, format
					continue
				}
				if res.NNZ != base.NNZ || res.MatrixMass != base.MatrixMass {
					t.Fatalf("format %s: matrix diverges from %s", format, baseFormat)
				}
				for i := range base.Rank {
					if res.Rank[i] != base.Rank[i] {
						t.Fatalf("format %s: rank[%d] diverges from %s", format, i, baseFormat)
					}
				}
			}
		})
	}
}

// TestDistFormatInvariant is the acceptance property: ranks and the
// communication record bit-for-bit identical across tsv/bin/packed for
// p ∈ {1,2,3,5,8} in both distributed exec modes, on both the in-memory
// and the out-of-core distributed variants.
func TestDistFormatInvariant(t *testing.T) {
	for _, variant := range []string{"dist", "distext"} {
		for _, mode := range []string{"sim", "goroutine"} {
			for _, p := range []int{1, 2, 3, 5, 8} {
				t.Run(fmt.Sprintf("%s/%s/p%d", variant, mode, p), func(t *testing.T) {
					var base *Result
					var baseFormat string
					for _, format := range []string{"tsv", "bin", "packed"} {
						cfg := Config{
							Scale: 7, EdgeFactor: 8, Seed: 3, NFiles: 2,
							Variant: variant, Format: format, KeepRank: true,
							DistMode: mode, Workers: p, RunEdges: 150,
							FS: vfs.NewMem(),
						}
						res, err := Execute(cfg)
						if err != nil {
							t.Fatalf("format %s: %v", format, err)
						}
						if base == nil {
							base, baseFormat = res, format
							continue
						}
						for i := range base.Rank {
							if res.Rank[i] != base.Rank[i] {
								t.Fatalf("format %s: rank[%d] diverges from %s", format, i, baseFormat)
							}
						}
						if (res.Comm == nil) != (base.Comm == nil) {
							t.Fatalf("format %s: comm presence diverges from %s", format, baseFormat)
						}
						if res.Comm != nil && *res.Comm != *base.Comm {
							t.Fatalf("format %s: comm %+v diverges from %s %+v", format, *res.Comm, baseFormat, *base.Comm)
						}
						if variant == "distext" {
							if res.Spill == nil || base.Spill == nil {
								t.Fatal("distext run reported no spill record")
							}
							if res.Spill.Runs != base.Spill.Runs {
								t.Fatalf("format %s: %d spill runs, %s had %d", format, res.Spill.Runs, baseFormat, base.Spill.Runs)
							}
						}
					}
				})
			}
		}
	}
}

// TestSpillAccountingByFormat pins the spill codec rule: tsv and bin
// runs spill identical fixed-width binary bytes (16 per edge written and
// read), while a packed run spills measurably less.
func TestSpillAccountingByFormat(t *testing.T) {
	spill := map[string]*SpillStats{}
	for _, format := range []string{"tsv", "bin", "packed"} {
		cfg := Config{
			Scale: 8, EdgeFactor: 8, Seed: 3, Variant: "extsort",
			Format: format, RunEdges: 300, FS: vfs.NewMem(),
		}
		res, err := Execute(cfg)
		if err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
		if res.Spill == nil {
			t.Fatalf("format %s: no spill record", format)
		}
		spill[format] = res.Spill
	}
	m := int64(8 << 8)
	for _, f := range []string{"tsv", "bin"} {
		s := spill[f]
		if s.Codec != "bin" {
			t.Errorf("%s run spilled with codec %q, want bin", f, s.Codec)
		}
		if s.BytesWritten != 16*m || s.BytesRead != 16*m {
			t.Errorf("%s run spill bytes = %d/%d, want %d both ways", f, s.BytesWritten, s.BytesRead, 16*m)
		}
	}
	p := spill["packed"]
	if p.Codec != "packed" {
		t.Errorf("packed run spilled with codec %q", p.Codec)
	}
	if p.BytesWritten >= spill["bin"].BytesWritten {
		t.Errorf("packed spill %d B >= bin spill %d B", p.BytesWritten, spill["bin"].BytesWritten)
	}
	if p.Runs != spill["bin"].Runs {
		t.Errorf("packed run count %d != bin run count %d", p.Runs, spill["bin"].Runs)
	}
}

// TestValidateFormats: the validation suite passes under every codec, and
// its detection step refuses a directory whose stale stripes name a
// different format than the configuration — the misread it exists to stop.
func TestValidateFormats(t *testing.T) {
	for _, format := range []string{"tsv", "bin", "packed"} {
		rep, err := Validate(Config{Scale: 6, EdgeFactor: 4, Seed: 1, Variant: "csr", Format: format, FS: vfs.NewMem()})
		if err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
		if !rep.Passed {
			t.Fatalf("format %s: validation failed: %+v", format, rep)
		}
	}
	// Reuse one FS across formats: the tsv run's stale k0 stripes survive
	// the bin run's kernel 0 (different extensions, nothing overwrites),
	// so detection sees tsv stripes while the config says bin — an error,
	// not a misparse.
	fs := vfs.NewMem()
	if _, err := Validate(Config{Scale: 6, EdgeFactor: 4, Seed: 1, Variant: "csr", Format: "tsv", FS: fs}); err != nil {
		t.Fatalf("baseline tsv validation: %v", err)
	}
	_, err := Validate(Config{Scale: 6, EdgeFactor: 4, Seed: 1, Variant: "csr", Format: "bin", FS: fs})
	if err == nil {
		t.Fatal("validation accepted a directory holding stripes in a conflicting format")
	}
}
