package pipeline

// Tests for the staged-cache seams (Config.SortedSource and
// Config.MatrixSource): the lease/fill protocol, the kernel-skipping on
// hits, the per-stage metering, cross-variant artifact exchange, and
// the abort-fill guarantee on failed runs.

import (
	"context"
	"errors"
	"testing"

	"repro/internal/edge"
	"repro/internal/sparse"
	"repro/internal/vfs"
)

// captureSorted runs variant cold with a miss-only SortedSource and
// returns the deposited kernel-1 artifact.
func captureSorted(t *testing.T, variant string) *edge.List {
	t.Helper()
	var got *edge.List
	cfg := smallCfg(variant)
	cfg.SortedSource = func(Config) (SortedLease, error) {
		return SortedLease{Fill: func(l *edge.List, err error) {
			if err != nil {
				t.Fatalf("sorted fill delivered error: %v", err)
			}
			got = l
		}}, nil
	}
	if _, err := Execute(cfg); err != nil {
		t.Fatalf("%s cold: %v", variant, err)
	}
	if got == nil {
		t.Fatalf("%s: sorted fill never discharged", variant)
	}
	return got
}

// captureMatrix runs variant cold with a miss-only MatrixSource and
// returns the deposited kernel-2 artifact and pre-filter mass.
func captureMatrix(t *testing.T, variant string) (*sparse.CSR, float64) {
	t.Helper()
	var gotM *sparse.CSR
	var gotMass float64
	cfg := smallCfg(variant)
	cfg.MatrixSource = func(Config) (MatrixLease, error) {
		return MatrixLease{Fill: func(m *sparse.CSR, mass float64, err error) {
			if err != nil {
				t.Fatalf("matrix fill delivered error: %v", err)
			}
			gotM, gotMass = m, mass
		}}, nil
	}
	if _, err := Execute(cfg); err != nil {
		t.Fatalf("%s cold: %v", variant, err)
	}
	if gotM == nil {
		t.Fatalf("%s: matrix fill never discharged", variant)
	}
	return gotM, gotMass
}

// TestSortedSourceHitSkipsK0K1 pins the sorted stage's warm path: a hit
// runs only kernels 2 and 3, meters one sorted hit, and reproduces the
// cold run bit for bit.
func TestSortedSourceHitSkipsK0K1(t *testing.T) {
	cold, err := Execute(smallCfg("csr"))
	if err != nil {
		t.Fatal(err)
	}
	shared := captureSorted(t, "csr")
	cfg := smallCfg("csr")
	cfg.SortedSource = func(Config) (SortedLease, error) {
		return SortedLease{List: shared, Hit: true}, nil
	}
	res, err := Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kernels) != 2 || res.Kernels[0].Kernel != K2Filter || res.Kernels[1].Kernel != K3PageRank {
		t.Fatalf("warm sorted run executed %v, want [K2 K3]", res.Kernels)
	}
	if res.Cache == nil || res.Cache.Sorted.Hits != 1 || res.Cache.Sorted.Misses != 0 {
		t.Fatalf("Cache = %+v, want 1 sorted hit", res.Cache)
	}
	if res.Cache.Edges != (StageCacheStats{}) {
		t.Fatalf("edges stage consulted on a sorted hit: %+v", res.Cache.Edges)
	}
	if res.NNZ != cold.NNZ || res.MatrixMass != cold.MatrixMass {
		t.Fatalf("warm matrix diverged: NNZ %d/%d mass %v/%v", res.NNZ, cold.NNZ, res.MatrixMass, cold.MatrixMass)
	}
	assertRanksEqual(t, "csr sorted-warm", cold.Rank, res.Rank)
}

// TestMatrixSourceHitIsK3Bound pins the deepest warm path: a matrix hit
// runs kernel 3 only, writes nothing to storage, and reproduces the
// cold ranks bit for bit.
func TestMatrixSourceHitIsK3Bound(t *testing.T) {
	cold, err := Execute(smallCfg("csr"))
	if err != nil {
		t.Fatal(err)
	}
	m, mass := captureMatrix(t, "csr")
	cfg := smallCfg("csr")
	cfg.FS = vfs.NewMem()
	cfg.MatrixSource = func(Config) (MatrixLease, error) {
		return MatrixLease{Matrix: m, Mass: mass, Hit: true}, nil
	}
	sortedConsulted := false
	cfg.SortedSource = func(Config) (SortedLease, error) {
		sortedConsulted = true
		return SortedLease{}, nil
	}
	res, err := Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sortedConsulted {
		t.Fatal("sorted stage consulted after a matrix hit")
	}
	if len(res.Kernels) != 1 || res.Kernels[0].Kernel != K3PageRank {
		t.Fatalf("warm matrix run executed %v, want [K3]", res.Kernels)
	}
	if res.Cache == nil || res.Cache.Matrix.Hits != 1 {
		t.Fatalf("Cache = %+v, want 1 matrix hit", res.Cache)
	}
	if res.MatrixMass != cold.MatrixMass || res.NNZ != cold.NNZ {
		t.Fatalf("warm Result incomplete: NNZ %d/%d mass %v/%v", res.NNZ, cold.NNZ, res.MatrixMass, cold.MatrixMass)
	}
	// A K3-bound run must leave no kernel-0/1 artifacts (or anything
	// else) in storage.
	if names, err := cfg.FS.List(); err != nil || len(names) > 0 {
		t.Fatalf("warm run wrote files: %v (err %v)", names, err)
	}
	assertRanksEqual(t, "csr matrix-warm", cold.Rank, res.Rank)
}

// TestMatrixArtifactCanonicalAcrossVariants pins the contract the
// matrix stage's key relies on: every participating variant deposits a
// bit-identical kernel-2 matrix, and any variant warm-started from it
// reproduces its own cold ranks bit for bit.
func TestMatrixArtifactCanonicalAcrossVariants(t *testing.T) {
	ref, refMass := captureMatrix(t, "csr")
	producers := []string{"coo", "columnar", "graphblas", "extsort", "dist", "distgo", "distext"}
	for _, variant := range producers {
		m, mass := captureMatrix(t, variant)
		if mass != refMass {
			t.Fatalf("%s: mass %v != csr %v", variant, mass, refMass)
		}
		if !csrEqual(m, ref) {
			t.Fatalf("%s: kernel-2 matrix not bit-identical to csr's", variant)
		}
	}
	consumers := []string{"coo", "columnar", "graphblas", "extsort", "dist", "distgo", "distext"}
	for _, variant := range consumers {
		cold, err := Execute(smallCfg(variant))
		if err != nil {
			t.Fatalf("%s cold: %v", variant, err)
		}
		cfg := smallCfg(variant)
		cfg.MatrixSource = func(Config) (MatrixLease, error) {
			return MatrixLease{Matrix: ref, Mass: refMass, Hit: true}, nil
		}
		warm, err := Execute(cfg)
		if err != nil {
			t.Fatalf("%s warm: %v", variant, err)
		}
		assertRanksEqual(t, variant+" cross-variant warm", cold.Rank, warm.Rank)
	}
}

// TestSortedArtifactCrossVariant pins the sorted stage's exchange rule:
// the by-u artifact one variant deposits warm-starts another, with the
// consumer's ranks bit-identical to its own cold run.
func TestSortedArtifactCrossVariant(t *testing.T) {
	shared := captureSorted(t, "csr")
	for _, variant := range []string{"coo", "graphblas", "dist", "distgo"} {
		cold, err := Execute(smallCfg(variant))
		if err != nil {
			t.Fatalf("%s cold: %v", variant, err)
		}
		cfg := smallCfg(variant)
		cfg.SortedSource = func(Config) (SortedLease, error) {
			return SortedLease{List: shared, Hit: true}, nil
		}
		warm, err := Execute(cfg)
		if err != nil {
			t.Fatalf("%s warm: %v", variant, err)
		}
		assertRanksEqual(t, variant+" sorted cross-variant", cold.Rank, warm.Rank)
	}
}

// TestSortedSourceSeesEffectiveOrder pins the key-correctness rule for
// the order dimension: the columnar variant always sorts by (u, v), so
// its SortedSource hook must observe SortEndVertices == true even when
// the run's Config left it false.
func TestSortedSourceSeesEffectiveOrder(t *testing.T) {
	for _, tc := range []struct {
		variant string
		set     bool
		want    bool
	}{
		{"csr", false, false},
		{"csr", true, true},
		{"columnar", false, true},
		{"columnar", true, true},
	} {
		var saw *bool
		cfg := smallCfg(tc.variant)
		cfg.SortEndVertices = tc.set
		cfg.SortedSource = func(scfg Config) (SortedLease, error) {
			saw = &scfg.SortEndVertices
			return SortedLease{Fill: func(*edge.List, error) {}}, nil
		}
		if _, err := Execute(cfg); err != nil {
			t.Fatalf("%s: %v", tc.variant, err)
		}
		if saw == nil || *saw != tc.want {
			t.Fatalf("%s (SortEndVertices=%v): hook saw %v, want %v", tc.variant, tc.set, saw, tc.want)
		}
	}
}

// TestStageSourceBypassVariants pins the participation matrix: the
// extsort variant never consults the sorted stage (no exchangeable
// kernel-1 list) but exchanges the canonical matrix, and the parallel
// variant consults no stage at all — its jump-stream generation has a
// per-worker-count identity GraphKey does not capture.
func TestStageSourceBypassVariants(t *testing.T) {
	for _, tc := range []struct {
		variant    string
		wantMatrix bool
	}{
		{"extsort", true},
		{"parallel", false},
	} {
		matrixSeen := false
		cfg := smallCfg(tc.variant)
		cfg.SortedSource = func(Config) (SortedLease, error) {
			t.Fatalf("%s: SortedSource must not be consulted", tc.variant)
			return SortedLease{}, nil
		}
		cfg.MatrixSource = func(Config) (MatrixLease, error) {
			matrixSeen = true
			return MatrixLease{Fill: func(*sparse.CSR, float64, error) {}}, nil
		}
		if _, err := Execute(cfg); err != nil {
			t.Fatalf("%s: %v", tc.variant, err)
		}
		if matrixSeen != tc.wantMatrix {
			t.Fatalf("%s: MatrixSource consulted = %v, want %v", tc.variant, matrixSeen, tc.wantMatrix)
		}
	}
}

// TestCancelDischargesFillObligations pins the no-poisoning guarantee's
// pipeline half: a cancelled run discharges every fill obligation
// exactly once — with the completed artifact for a kernel that finished
// before the cancellation point (work already done is shared), and with
// the run's error for a kernel that never ran, never with a fabricated
// artifact.  Cancelling at kernel 1's start lets kernel 1 complete (the
// boundary check runs before kernel 2), so the sorted fill succeeds and
// the matrix fill aborts.
func TestCancelDischargesFillObligations(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sortedLists []*edge.List
	var sortedErrs, matrixErrs []error
	cfg := smallCfg("csr")
	cfg.SortedSource = func(Config) (SortedLease, error) {
		return SortedLease{Fill: func(l *edge.List, err error) {
			sortedLists = append(sortedLists, l)
			sortedErrs = append(sortedErrs, err)
		}}, nil
	}
	cfg.MatrixSource = func(Config) (MatrixLease, error) {
		return MatrixLease{Fill: func(m *sparse.CSR, _ float64, err error) {
			if m != nil {
				t.Error("cancelled run deposited a matrix artifact")
			}
			matrixErrs = append(matrixErrs, err)
		}}, nil
	}
	cfg.Progress = func(ev Event) {
		if ev.Kind == EventKernelStart && ev.Kernel == K1Sort {
			cancel()
		}
	}
	if _, err := ExecuteKernelsContext(ctx, cfg, []Kernel{K0Generate, K1Sort, K2Filter, K3PageRank}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(matrixErrs) != 1 || !errors.Is(matrixErrs[0], context.Canceled) {
		t.Fatalf("matrix fill discharged %v, want one context.Canceled", matrixErrs)
	}
	if len(sortedErrs) != 1 || sortedErrs[0] != nil || sortedLists[0] == nil {
		t.Fatalf("sorted fill: lists %v errs %v, want one completed artifact", sortedLists, sortedErrs)
	}
}

// TestStageSourcesDroppedFromResultConfig extends the closure-stripping
// contract to the staged-cache seams.
func TestStageSourcesDroppedFromResultConfig(t *testing.T) {
	cfg := smallCfg("csr")
	cfg.SortedSource = func(Config) (SortedLease, error) {
		return SortedLease{Fill: func(*edge.List, error) {}}, nil
	}
	cfg.MatrixSource = func(Config) (MatrixLease, error) {
		return MatrixLease{Fill: func(*sparse.CSR, float64, error) {}}, nil
	}
	res, err := Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.SortedSource != nil || res.Config.MatrixSource != nil {
		t.Fatal("Result.Config retains the staged-cache closures")
	}
}

// TestStageSourceErrorsSurface pins the failure path of both new seams.
func TestStageSourceErrorsSurface(t *testing.T) {
	boom := errors.New("cache down")
	cfg := smallCfg("csr")
	cfg.MatrixSource = func(Config) (MatrixLease, error) { return MatrixLease{}, boom }
	if _, err := Execute(cfg); !errors.Is(err, boom) {
		t.Fatalf("matrix source error lost: %v", err)
	}
	cfg = smallCfg("csr")
	cfg.SortedSource = func(Config) (SortedLease, error) { return SortedLease{}, boom }
	if _, err := Execute(cfg); !errors.Is(err, boom) {
		t.Fatalf("sorted source error lost: %v", err)
	}
}

// assertRanksEqual fails unless the two rank vectors are bit-for-bit
// identical.
func assertRanksEqual(t *testing.T, what string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: rank length %d != %d", what, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: rank[%d] = %v != %v (not bit-identical)", what, i, got[i], want[i])
		}
	}
}

// csrEqual reports bit-for-bit equality of two CSR matrices.
func csrEqual(a, b *sparse.CSR) bool {
	if a.N != b.N || len(a.RowPtr) != len(b.RowPtr) ||
		len(a.Col) != len(b.Col) || len(a.Val) != len(b.Val) {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range a.Col {
		if a.Col[i] != b.Col[i] {
			return false
		}
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}
