package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/dist"
	"repro/internal/edge"
	"repro/internal/fastio"
	"repro/internal/gensuite"
	"repro/internal/graphblas"
	"repro/internal/kronecker"
	"repro/internal/pagerank"
	"repro/internal/sparse"
	"repro/internal/vfs"
)

// Kernel identifies one pipeline stage.
type Kernel int

// The four kernels of the benchmark.
const (
	K0Generate Kernel = iota
	K1Sort
	K2Filter
	K3PageRank
	numKernels
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case K0Generate:
		return "kernel0-generate"
	case K1Sort:
		return "kernel1-sort"
	case K2Filter:
		return "kernel2-filter"
	case K3PageRank:
		return "kernel3-pagerank"
	default:
		return fmt.Sprintf("kernel?(%d)", int(k))
	}
}

// GeneratorKind selects the kernel-0 graph generator.
type GeneratorKind string

// Supported generators.
const (
	GenKronecker GeneratorKind = "kronecker" // Graph500 (the benchmark default)
	GenPPL       GeneratorKind = "ppl"       // deterministic perfect power law
	GenER        GeneratorKind = "er"        // Erdős–Rényi control
)

// Config parameterizes a benchmark run.
type Config struct {
	// Scale is the Graph500 scale factor S (N = 2^S vertices).
	Scale int
	// EdgeFactor is the average edges per vertex; zero selects 16.
	EdgeFactor int
	// Seed selects all random streams.
	Seed uint64
	// NFiles is the paper's free parameter, the number of edge files
	// written by K0 and K1; zero selects 1.
	NFiles int
	// FS is the non-volatile storage the kernels write to; nil selects an
	// in-memory store.
	FS vfs.FS
	// Variant names the implementation variant; empty selects "csr".
	Variant string
	// Format names the kernel-0/1 edge-file codec: "tsv" (the paper's
	// text format), "naivetsv", "bin", or "packed".  Empty keeps the
	// variant's paper-faithful default (tsv; the naive coo variant uses
	// naivetsv).  Results are bit-for-bit invariant in it — only encoded
	// bytes and kernel-0/1 throughput change.  The out-of-core sorters'
	// spill runs follow it too: "packed" spills packed runs, every other
	// format spills the fixed-width binary record.
	Format string
	// Generator selects the K0 generator; empty selects Kronecker.
	Generator GeneratorKind
	// Workers bounds goroutines in parallel variants; <= 0 means default.
	Workers int
	// RunEdges is the out-of-core variants' in-memory run size in edges —
	// extsort's external-merge buffer and distext's per-rank run buffer.
	// Zero selects each variant's default.
	RunEdges int
	// SortEndVertices makes K1 sort by (u, v) instead of u only — the
	// paper's "should the end vertices also be sorted?" open question.
	SortEndVertices bool
	// DistMode overrides the execution mode of the dist/distgo variants'
	// runtime: "sim" (single-threaded simulation), "goroutine"
	// (concurrent ranks with real message passing) or "socket" (worker
	// processes over unix-domain sockets).  Empty keeps the selected
	// variant's default.
	DistMode string
	// RankWorkers is the hybrid intra-rank worker count of the dist
	// variants' runtime (dist.Config.Workers): each rank's local kernel-3
	// product and kernel-1 partitioning run on this many goroutines.
	// Results are bit-for-bit invariant in it; <= 1 keeps ranks serial.
	RankWorkers int
	// Checkpoint configures epoch checkpoint/restart of the distributed
	// kernel 3 (dist.CheckpointSpec semantics: FS enables it, Resume
	// restarts from the newest complete epoch).  Only the variants with a
	// distributed kernel 3 — dist, distgo, distext — accept it.  The
	// spec's OnCommit/OnResume hooks compose with Progress: the runner
	// also emits EventCheckpointSaved/EventCheckpointRestored.
	Checkpoint dist.CheckpointSpec
	// Fault, when non-nil, injects a rank failure into the distributed
	// kernel 3 (dist.FaultPlan) — the chaos suites' instrument.  Like the
	// dist layer's, it describes one injection: clear it on the restarted
	// run.
	Fault *dist.FaultPlan
	// PageRank carries K3 options (damping, iterations, dangling).
	PageRank pagerank.Options
	// KeepRank retains the final rank vector in the Result.
	KeepRank bool
	// MeterIO wraps the storage in a byte-counting layer and records each
	// kernel's read/write volume in its KernelResult.
	MeterIO bool
	// Source, when non-nil, replaces the kernel-0 generator invocation:
	// variants obtain the edge list from it instead of generating.  It
	// reports whether the list came from a cache (metered in the
	// Result's GenCache) and MUST return a list the caller treats as
	// read-only — kernel 0 only writes it to storage, never mutates it,
	// which is what lets the service layer share one list across
	// concurrent runs.  The hook sees the defaulted Config.
	Source func(Config) (*edge.List, bool, error)
	// SortedSource, when non-nil, lets the run exchange the kernel-1
	// sorted edge list with an external staged cache.  The runner
	// consults it once before the kernels start (when both K1 and K2
	// are scheduled and the variant participates — see CacheTraits): a
	// hit skips kernels 0 and 1 entirely and kernel 2 consumes the
	// shared read-only list; a miss obligates the run to deposit its
	// own kernel-1 output through the lease's Fill.  The hook sees the
	// defaulted Config with SortEndVertices reflecting the variant's
	// effective kernel-1 order (the columnar variant always sorts by
	// (u, v)).  Interactions are metered in the Result's Cache record.
	SortedSource func(Config) (SortedLease, error)
	// MatrixSource is SortedSource's kernel-2 analogue: the deepest
	// cache level, holding the filtered, normalized matrix.  A hit
	// skips kernels 0–2 — a warm full-pipeline run performs only
	// kernel 3 (the dist variants row-block the cached matrix across
	// their ranks instead of recomputing it).  The kernel-2 matrix is
	// canonical — column-sorted rows, duplicate edges accumulated —
	// so it is bit-identical across all variants and safe to exchange
	// between them.
	MatrixSource func(Config) (MatrixLease, error)
	// Progress, when non-nil, receives execution events: kernel start
	// and end, and one event per kernel-3 iteration.  Callbacks run
	// synchronously on the executing goroutine (rank 0's, for the dist
	// variants) and must be fast; the service layer's RunStream is built
	// on this hook.
	Progress func(Event)
}

func (c Config) withDefaults() Config {
	if c.EdgeFactor == 0 {
		c.EdgeFactor = kronecker.DefaultEdgeFactor
	}
	if c.NFiles == 0 {
		c.NFiles = 1
	}
	if c.FS == nil {
		c.FS = vfs.NewMem()
	}
	if c.Variant == "" {
		c.Variant = "csr"
	}
	if c.Generator == "" {
		c.Generator = GenKronecker
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	cc := c.withDefaults()
	if cc.Scale < 1 || cc.Scale > kronecker.MaxScale {
		return fmt.Errorf("pipeline: scale %d out of range [1, %d]", cc.Scale, kronecker.MaxScale)
	}
	if cc.NFiles < 1 {
		return fmt.Errorf("pipeline: NFiles %d, want >= 1", cc.NFiles)
	}
	if _, ok := registry[cc.Variant]; !ok {
		return fmt.Errorf("pipeline: unknown variant %q (have %v)", cc.Variant, VariantNames())
	}
	if cc.Format != "" {
		if _, err := fastio.CodecByName(cc.Format); err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
	}
	switch cc.Generator {
	case GenKronecker, GenPPL, GenER:
	default:
		return fmt.Errorf("pipeline: unknown generator %q", cc.Generator)
	}
	if _, err := dist.ParseExecMode(cc.DistMode); err != nil {
		return err
	}
	if cc.Checkpoint.FS != nil || cc.Fault != nil {
		if _, ok := registry[cc.Variant].(interface{ distCfg(*Run) dist.Config }); !ok {
			return fmt.Errorf("pipeline: checkpoint/fault configured, but variant %q has no distributed kernel 3", cc.Variant)
		}
	}
	return cc.PageRank.Validate()
}

// N returns the vertex count 2^Scale.
func (c Config) N() uint64 { return 1 << uint(c.Scale) }

// M returns the edge count EdgeFactor·2^Scale.
func (c Config) M() uint64 { return uint64(c.withDefaults().EdgeFactor) << uint(c.Scale) }

// EventKind classifies a Progress event.
type EventKind int

const (
	// EventKernelStart fires immediately before a kernel executes.
	EventKernelStart EventKind = iota
	// EventKernelEnd fires after a kernel completes, carrying its
	// KernelResult.
	EventKernelEnd
	// EventIteration fires after each completed kernel-3 PageRank
	// iteration, carrying the 1-based iteration count.
	EventIteration
	// EventCheckpointSaved fires after the distributed kernel 3 commits
	// an epoch, carrying the epoch's completed-iteration count in
	// Iteration.
	EventCheckpointSaved
	// EventCheckpointRestored fires when a resuming kernel 3 loads a
	// complete epoch before iterating, carrying the epoch's completed-
	// iteration count in Iteration.
	EventCheckpointRestored
	// EventCacheHit fires when an external staged-cache source
	// (Config.Source / SortedSource / MatrixSource) serves an artifact.
	// Kernel identifies the artifact's producing stage (K0Generate for
	// the raw edge list, K1Sort for the sorted list, K2Filter for the
	// filtered matrix); the producing kernels are skipped, so they emit
	// no start/end events of their own.
	EventCacheHit
	// EventCacheMiss fires when a staged-cache source was consulted but
	// held no resident artifact: this run computes the artifact and
	// deposits it.  Kernel identifies the artifact's producing stage.
	EventCacheMiss
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventKernelStart:
		return "kernel-start"
	case EventKernelEnd:
		return "kernel-end"
	case EventIteration:
		return "iteration"
	case EventCheckpointSaved:
		return "checkpoint-saved"
	case EventCheckpointRestored:
		return "checkpoint-restored"
	case EventCacheHit:
		return "cache-hit"
	case EventCacheMiss:
		return "cache-miss"
	default:
		return fmt.Sprintf("event?(%d)", int(k))
	}
}

// Event is one Progress observation of a running pipeline.
type Event struct {
	// Kind classifies the event.
	Kind EventKind
	// Kernel is the stage the event belongs to.
	Kernel Kernel
	// Iteration is the 1-based kernel-3 iteration (EventIteration only).
	Iteration int
	// KernelResult is the completed stage's record (EventKernelEnd only).
	KernelResult *KernelResult
}

// GenCacheStats records a run's interaction with an external generator
// cache (Config.Source): how many kernel-0 edge lists were served from
// cache versus generated.  A single full-pipeline run scores exactly one
// hit or one miss.
//
// Deprecated: the staged cache generalizes this to CacheStats; GenCache
// remains as an alias of the edges stage.
type GenCacheStats struct {
	// Hits counts edge lists served from the cache.
	Hits uint64
	// Misses counts edge lists that had to be generated.
	Misses uint64
}

// StageCacheStats records one staged-cache level's interaction for a
// single run.  A run scores at most one hit or one miss per consulted
// stage.
type StageCacheStats struct {
	// Hits counts artifacts served from the cache.
	Hits uint64
	// Misses counts artifacts this run had to compute (and deposited).
	Misses uint64
}

// CacheStats records a run's per-stage interaction with an external
// staged artifact cache (Config.Source, SortedSource, MatrixSource).
// A hit at a deeper stage short-circuits the shallower ones: a run that
// hit the matrix stage never consulted the sorted or edges stages, so
// their counters stay zero.
type CacheStats struct {
	// Edges is the raw kernel-0 edge-list stage (Config.Source).
	Edges StageCacheStats
	// Sorted is the kernel-1 sorted edge-list stage (SortedSource).
	Sorted StageCacheStats
	// Matrix is the kernel-2 filtered-matrix stage (MatrixSource).
	Matrix StageCacheStats
}

// SortedLease is one SortedSource transaction.  On a hit, List carries
// the shared kernel-1 artifact — read-only, like a sourced kernel-0
// list; mutating consumers must copy.  On a miss, Fill is non-nil and
// the runner MUST invoke it exactly once: with the run's own kernel-1
// output on success, or with the failure (a cancelled or failed fill
// is delivered to concurrent waiters and never cached, so the key is
// not poisoned).
type SortedLease struct {
	// List is the cached sorted edge list (hits only).
	List *edge.List
	// Hit reports whether List was served from the cache.
	Hit bool
	// Fill deposits the artifact or the failure (misses only).
	Fill func(l *edge.List, err error)
}

// MatrixLease is one MatrixSource transaction, with the same hit/fill
// contract as SortedLease.  Mass carries the pre-filter matrix mass
// (Result.MatrixMass) alongside the matrix so a warm run's Result is
// complete without re-deriving it.
type MatrixLease struct {
	// Matrix is the cached filtered, normalized matrix (hits only).
	Matrix *sparse.CSR
	// Mass is sum(A) before filtering, recorded at fill time.
	Mass float64
	// Hit reports whether Matrix was served from the cache.
	Hit bool
	// Fill deposits the artifact or the failure (misses only).
	Fill func(m *sparse.CSR, mass float64, err error)
}

// CacheTraits declares a variant's staged-cache participation.  A
// variant that does not implement the optional interface
//
//	interface{ CacheTraits() CacheTraits }
//
// participates fully with the default kernel-1 order.  The extsort
// variant opts out of the list stages (its kernel 0 streams in bounded
// memory; no resident list exists to exchange) but shares the
// canonical kernel-2 matrix; the parallel variant opts out of every
// stage — its jump-stream generation draws a different edge multiset
// per worker count, so its artifacts do not have GraphKey's identity.
type CacheTraits struct {
	// SortedArtifact reports kernels 1 and 2 exchange the sorted edge
	// list with Config.SortedSource.
	SortedArtifact bool
	// SortsByUV reports kernel 1 always produces the full (u, v) order
	// regardless of Config.SortEndVertices (the columnar variant), so
	// its sorted artifact is keyed accordingly.
	SortsByUV bool
	// MatrixArtifact reports kernel 2's output can be exchanged with
	// Config.MatrixSource.
	MatrixArtifact bool
}

// cacheTraitser is the optional Variant interface declaring traits.
type cacheTraitser interface{ CacheTraits() CacheTraits }

// traitsOf resolves a variant's cache traits, defaulting to full
// participation.
func traitsOf(v Variant) CacheTraits {
	if t, ok := v.(cacheTraitser); ok {
		return t.CacheTraits()
	}
	return CacheTraits{SortedArtifact: true, MatrixArtifact: true}
}

// KernelResult is the timing record for one kernel.
type KernelResult struct {
	// Kernel identifies the stage.
	Kernel Kernel
	// Seconds is the wall-clock duration of the stage.
	Seconds float64
	// Edges is the edge count the rate is defined over (M, or 20·M for K3).
	Edges uint64
	// EdgesPerSecond is Edges / Seconds, the paper's reported metric.
	EdgesPerSecond float64
	// Allocs is the number of heap allocations performed during the
	// stage (runtime mallocs, whole process) — the perf-trajectory
	// counter prbench -json records so allocation regressions in any
	// kernel are visible between PRs.
	Allocs uint64
	// IO holds the kernel's storage traffic when Config.MeterIO is set.
	IO *vfs.IOStats
}

// Result is the outcome of a pipeline run.
type Result struct {
	// Config echoes the (defaulted) configuration that ran.
	Config Config
	// Kernels holds one entry per executed kernel, in order.
	Kernels []KernelResult
	// NNZ is the filtered matrix's stored-entry count after K2.
	NNZ int
	// MatrixMass is sum(A) after construction, before filtering (== M).
	MatrixMass float64
	// Rank is the final rank vector (only when Config.KeepRank).
	Rank []float64
	// RankIterations is the number of PageRank iterations performed.
	RankIterations int
	// Comm is the total communication record of the run's distributed
	// collectives (dist variants only; nil otherwise).
	Comm *dist.CommStats
	// Checkpoint is the distributed kernel 3's checkpoint/restart record
	// (checkpointed or resumed dist-variant runs only; nil otherwise).
	Checkpoint *dist.CheckpointStats
	// Spill is the out-of-core kernel 1's run-file record (extsort and
	// distext variants only; nil otherwise).
	Spill *SpillStats
	// Cache is the run's per-stage staged-cache record — non-nil only
	// when a cache seam (Config.Source, SortedSource, MatrixSource)
	// was actually consulted.
	Cache *CacheStats
	// GenCache mirrors Cache.Edges for callers of the original
	// generator-cache seam; nil when the edges stage was not consulted.
	//
	// Deprecated: read Cache.Edges.
	GenCache *GenCacheStats
}

// KernelResultFor returns the result for kernel k, or nil.
func (r *Result) KernelResultFor(k Kernel) *KernelResult {
	for i := range r.Kernels {
		if r.Kernels[i].Kernel == k {
			return &r.Kernels[i]
		}
	}
	return nil
}

// Run carries the mutable state a variant threads through the kernels.
type Run struct {
	// Cfg is the defaulted configuration.
	Cfg Config
	// FS is the storage kernels read and write.
	FS vfs.FS
	// Matrix receives the filtered, normalized adjacency matrix at the
	// end of K2 (all variants converge to CSR for cross-validation; the
	// graphblas variant also keeps its generic form internally).
	Matrix *sparse.CSR
	// GB optionally holds the graphblas variant's generic matrix between
	// K2 and K3.
	GB *graphblas.Matrix[float64]
	// Rank receives the K3 result.
	Rank *pagerank.Result
	// MatrixMass is sum(A) recorded during K2 before filtering.
	MatrixMass float64
	// Comm accumulates the distributed collectives' communication record
	// across kernels (dist variants call AddComm; nil for serial variants).
	Comm *dist.CommStats
	// Checkpoint receives the distributed kernel 3's checkpoint/restart
	// record when Cfg.Checkpoint or Cfg.Fault is in play.
	Checkpoint *dist.CheckpointStats
	// Spill records the out-of-core kernel 1's run-file traffic (extsort
	// and distext variants; nil for in-memory sorts).
	Spill *SpillStats
	// Cache records the staged-cache interaction when any of the cache
	// seams is set (filled by the runner and sourceEdges).
	Cache *CacheStats
	// SortedIn is the cache-shared kernel-1 artifact serving as kernel
	// 2's input when the sorted stage hit.  It is read-only; kernel-2
	// implementations route through sortedEdges/sortedEdgesMutable.
	SortedIn *edge.List
	// SortedOut is the kernel-1 output a participating variant records
	// so the runner can deposit it into the cache on a sorted-stage
	// miss.  The recorded list must not be mutated by later kernels.
	SortedOut *edge.List
	// ctx is the run's cancellation context; nil means background.
	// Variants read it through Context().
	ctx context.Context
}

// stageStats returns the run's cache record, allocating it on first use.
func (r *Run) stageStats() *CacheStats {
	if r.Cache == nil {
		r.Cache = &CacheStats{}
	}
	return r.Cache
}

// Context returns the run's cancellation context.  Variants thread it
// into the distributed runtime and the kernel-3 engines; a Run built
// without one (the legacy composition path, e.g. the checkpoint example)
// gets context.Background.
func (r *Run) Context() context.Context {
	if r.ctx == nil {
		return context.Background()
	}
	return r.ctx
}

// AddComm folds a kernel's communication record into the run's total.
func (r *Run) AddComm(st dist.CommStats) {
	if r.Comm == nil {
		r.Comm = &dist.CommStats{}
	}
	r.Comm.Add(st)
}

// DefaultFormat returns a variant's paper-faithful default codec name
// for its kernel-0/1 edge files: naivetsv for the naive coo variant
// (whose string handling is the point), tsv everywhere else.
func DefaultFormat(variant string) string {
	if variant == "coo" {
		return "naivetsv"
	}
	return "tsv"
}

// FormatName resolves the codec name cfg's run uses for its kernel-0/1
// edge files: Config.Format when set, else the variant's default.
func FormatName(cfg Config) string {
	if cfg.Format != "" {
		return cfg.Format
	}
	return DefaultFormat(cfg.withDefaults().Variant)
}

// Codec resolves the run's edge-file codec — FormatName of the run's
// configuration.  Every variant kernel that touches the k0/k1 files
// routes through it, which is what makes Config.Format a single switch.
func (r *Run) Codec() fastio.Codec {
	c, err := fastio.CodecByName(FormatName(r.Cfg))
	if err != nil {
		// Unreachable: Validate checked Format before the run began.
		panic(err)
	}
	return c
}

// SpillCodec resolves the out-of-core sorters' run-file codec: Packed
// when the run's format is packed (sorted runs are its best case), else
// the fixed-width Binary record, whose 16 B/edge keeps spill accounting
// exact and bit-for-bit invariant across the other formats.
func (r *Run) SpillCodec() fastio.Codec {
	if r.Cfg.Format == "packed" {
		return fastio.Packed{}
	}
	return fastio.Binary{}
}

// SpillStats records an out-of-core kernel 1's run-file traffic: which
// codec encoded the spilled runs and how many encoded bytes moved, so a
// cheaper spill codec is a measured reduction, not an assertion.
type SpillStats struct {
	// Codec names the spill-run codec ("bin" or "packed").
	Codec string
	// Runs is the number of sorted runs formed (summed over ranks for
	// the distributed sorter).
	Runs int
	// BytesWritten and BytesRead are the run files' encoded bytes: the
	// spill during run formation and the read-back during the merge.
	BytesWritten int64
	BytesRead    int64
}

// Variant implements the four kernels.  Kernels communicate only through
// r.FS (K0→K1→K2) and r.Matrix (K2→K3), so kernels of different variants
// compose — the pipeline runner exploits this in mix-and-match ablations.
type Variant interface {
	// Name is the registry key.
	Name() string
	// Description is a one-line summary for reports.
	Description() string
	// Kernel0 generates the graph and writes edge files under prefix "k0".
	Kernel0(r *Run) error
	// Kernel1 reads "k0" files, sorts by start vertex, writes "k1" files.
	Kernel1(r *Run) error
	// Kernel2 reads "k1" files and produces the filtered normalized matrix.
	Kernel2(r *Run) error
	// Kernel3 runs PageRank on r.Matrix, filling r.Rank.
	Kernel3(r *Run) error
}

// ---------------------------------------------------------------------------
// Registry

var registry = map[string]Variant{}

// Register adds a variant; it panics on duplicates (registration happens in
// package init functions).
func Register(v Variant) {
	if _, dup := registry[v.Name()]; dup {
		panic(fmt.Sprintf("pipeline: duplicate variant %q", v.Name()))
	}
	registry[v.Name()] = v
}

// Lookup returns the named variant.
func Lookup(name string) (Variant, error) {
	v, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("pipeline: unknown variant %q (have %v)", name, VariantNames())
	}
	return v, nil
}

// VariantNames returns all registered variant names, sorted.
func VariantNames() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ---------------------------------------------------------------------------
// Execution

// Execute runs the full four-kernel pipeline under cfg and returns timing
// results for every kernel.
//
// Deprecated: use ExecuteContext so callers control cancellation (§8).
func Execute(cfg Config) (*Result, error) {
	return ExecuteContext(context.Background(), cfg)
}

// ExecuteContext runs the full four-kernel pipeline under cfg and ctx.
func ExecuteContext(ctx context.Context, cfg Config) (*Result, error) {
	return ExecuteKernelsContext(ctx, cfg, []Kernel{K0Generate, K1Sort, K2Filter, K3PageRank})
}

// ExecuteKernels runs the listed kernels in order.  Kernels may be run
// independently as the paper allows, but each depends on its predecessor's
// artifacts: running K2 without K1 in the same FS fails with a missing-file
// error.
//
// Deprecated: use ExecuteKernelsContext so callers control cancellation (§8).
func ExecuteKernels(cfg Config, kernels []Kernel) (*Result, error) {
	return ExecuteKernelsContext(context.Background(), cfg, kernels)
}

// ExecuteKernelsContext runs the listed kernels in order under ctx:
// cancellation aborts before the next kernel starts, and mid-kernel at
// the kernels' own cancellation points — the K3 engines check between
// iterations and the distributed runtime between its phases — returning
// ctx's error.  A background context changes nothing: results are
// bit-for-bit those of ExecuteKernels.
func ExecuteKernelsContext(ctx context.Context, cfg Config, kernels []Kernel) (res *Result, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	v := registry[cfg.Variant]
	var meter *vfs.Metered
	if cfg.MeterIO {
		meter = vfs.NewMetered(cfg.FS)
		cfg.FS = meter
	}
	run := &Run{Cfg: cfg, FS: cfg.FS, ctx: ctx}
	scheduled := func(k Kernel) bool {
		for _, kk := range kernels {
			if kk == k {
				return true
			}
		}
		return false
	}
	// Staged-cache negotiation happens up front, deepest stage first
	// (matrix, then sorted; the edges stage is consulted inside kernel 0
	// by sourceEdges).  A hit marks the artifact's producing kernels
	// skipped; a miss leaves this run a fill obligation it discharges
	// when the producing kernel completes — or with the run's error,
	// which concurrent waiters receive and retry past, so a cancelled
	// fill never poisons the key.  The uniform matrix→sorted→edges
	// acquisition order is what keeps concurrent same-key runs free of
	// wait cycles: a run waiting to join stage s holds obligations only
	// for stages consulted before s, and the filler it waits on can
	// itself only be waiting at a stage consulted after s.
	traits := traitsOf(v)
	var skip [numKernels]bool
	var sortedFill func(*edge.List, error)
	var matrixFill func(*sparse.CSR, float64, error)
	defer func() {
		// Discharge unfulfilled obligations on every exit path so
		// waiters are never stranded.
		if matrixFill != nil {
			matrixFill(nil, 0, fillAbortErr(err))
		}
		if sortedFill != nil {
			sortedFill(nil, fillAbortErr(err))
		}
	}()
	emitCache := func(k Kernel, hit bool) {
		if cfg.Progress == nil {
			return
		}
		kind := EventCacheMiss
		if hit {
			kind = EventCacheHit
		}
		cfg.Progress(Event{Kind: kind, Kernel: k})
	}
	if cfg.MatrixSource != nil && traits.MatrixArtifact && scheduled(K2Filter) {
		lease, lerr := cfg.MatrixSource(cfg)
		if lerr != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("pipeline: matrix source: %w", lerr)
		}
		if lease.Hit {
			run.stageStats().Matrix.Hits++
			run.Matrix = lease.Matrix
			run.MatrixMass = lease.Mass
			skip[K0Generate], skip[K1Sort], skip[K2Filter] = true, true, true
		} else {
			run.stageStats().Matrix.Misses++
			matrixFill = lease.Fill
		}
		emitCache(K2Filter, lease.Hit)
	}
	if !skip[K1Sort] && cfg.SortedSource != nil && traits.SortedArtifact &&
		scheduled(K1Sort) && scheduled(K2Filter) {
		scfg := cfg
		scfg.SortEndVertices = cfg.SortEndVertices || traits.SortsByUV
		lease, lerr := cfg.SortedSource(scfg)
		if lerr != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("pipeline: sorted source: %w", lerr)
		}
		if lease.Hit {
			run.stageStats().Sorted.Hits++
			run.SortedIn = lease.List
			skip[K0Generate], skip[K1Sort] = true, true
		} else {
			run.stageStats().Sorted.Misses++
			sortedFill = lease.Fill
		}
		emitCache(K1Sort, lease.Hit)
	}
	if cfg.Progress != nil {
		// The kernel-3 engines' per-iteration hook feeds the same
		// Progress stream as the kernel events below, composed with —
		// not replacing — any per-iteration hook the caller already put
		// in PageRank.Progress.  Only run.Cfg is amended; the caller's
		// options value is untouched.
		inner := cfg.PageRank.Progress
		run.Cfg.PageRank.Progress = func(it int) {
			if inner != nil {
				inner(it)
			}
			cfg.Progress(Event{Kind: EventIteration, Kernel: K3PageRank, Iteration: it})
		}
	}
	// The Result echoes the defaulted configuration minus the run's
	// closures: Source and Progress are plumbing inputs that capture the
	// caller's context and cache — retaining them in every Result would
	// keep those alive for the Result's lifetime.
	resCfg := cfg
	resCfg.Source = nil
	resCfg.SortedSource = nil
	resCfg.MatrixSource = nil
	resCfg.Progress = nil
	resCfg.Checkpoint.OnCommit = nil
	resCfg.Checkpoint.OnResume = nil
	res = &Result{Config: resCfg}
	m := cfg.M()
	for _, k := range kernels {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if k >= 0 && k < numKernels && skip[k] {
			// Served by a deeper cache stage: the artifact this kernel
			// would produce (and its storage writes) already exist.
			continue
		}
		var fn func(*Run) error
		edges := m
		switch k {
		case K0Generate:
			fn = v.Kernel0
		case K1Sort:
			fn = v.Kernel1
		case K2Filter:
			fn = v.Kernel2
		case K3PageRank:
			fn = v.Kernel3
			iters := cfg.PageRank.Iterations
			if iters == 0 {
				iters = pagerank.DefaultIterations
			}
			edges = m * uint64(iters)
		default:
			return nil, fmt.Errorf("pipeline: unknown kernel %v", k)
		}
		if cfg.Progress != nil {
			cfg.Progress(Event{Kind: EventKernelStart, Kernel: k})
		}
		var memBefore runtime.MemStats
		runtime.ReadMemStats(&memBefore)
		start := time.Now()
		if err := fn(run); err != nil {
			if cerr := ctx.Err(); cerr != nil {
				// Cancellation surfaces undecorated so callers can match
				// errors.Is(err, context.Canceled) without unwrapping the
				// kernel framing.
				return nil, cerr
			}
			return nil, fmt.Errorf("pipeline: %v (%s): %w", k, cfg.Variant, err)
		}
		// Discharge cache fill obligations as soon as the producing
		// kernel completes, so concurrent same-key waiters unblock
		// before this run's remaining kernels.
		if k == K1Sort && sortedFill != nil {
			if run.SortedOut != nil {
				sortedFill(run.SortedOut, nil)
			} else {
				sortedFill(nil, fmt.Errorf("pipeline: variant %q produced no sorted artifact", cfg.Variant))
			}
			sortedFill = nil
		}
		if k == K2Filter && matrixFill != nil {
			if run.Matrix != nil {
				matrixFill(run.Matrix, run.MatrixMass, nil)
			} else {
				matrixFill(nil, 0, fmt.Errorf("pipeline: variant %q produced no matrix artifact", cfg.Variant))
			}
			matrixFill = nil
		}
		secs := time.Since(start).Seconds()
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		kr := KernelResult{Kernel: k, Seconds: secs, Edges: edges, Allocs: memAfter.Mallocs - memBefore.Mallocs}
		if secs > 0 {
			kr.EdgesPerSecond = float64(edges) / secs
		}
		if meter != nil {
			io := meter.Reset()
			kr.IO = &io
		}
		res.Kernels = append(res.Kernels, kr)
		if cfg.Progress != nil {
			cfg.Progress(Event{Kind: EventKernelEnd, Kernel: k, KernelResult: &kr})
		}
	}
	if run.Matrix != nil {
		res.NNZ = run.Matrix.NNZ()
		res.MatrixMass = run.MatrixMass
	}
	if run.Rank != nil {
		res.RankIterations = run.Rank.Iterations
		if cfg.KeepRank {
			res.Rank = run.Rank.Rank
		}
	}
	res.Comm = run.Comm
	res.Checkpoint = run.Checkpoint
	res.Spill = run.Spill
	res.Cache = run.Cache
	if run.Cache != nil && run.Cache.Edges != (StageCacheStats{}) {
		// Deprecated alias: the edges stage under its original name.
		res.GenCache = &GenCacheStats{Hits: run.Cache.Edges.Hits, Misses: run.Cache.Edges.Misses}
	}
	return res, nil
}

// sourceEdges obtains kernel 0's edge list: from Cfg.Source when set —
// metering the hit/miss in the run's GenCache record — else by invoking
// the configured generator.  Every variant's Kernel0 routes through it,
// which is the single seam the service layer's shared generator cache
// plugs into.  A sourced list is shared and read-only; callers only
// write it to storage.
func sourceEdges(r *Run) (*edge.List, error) {
	if r.Cfg.Source != nil {
		l, hit, err := r.Cfg.Source(r.Cfg)
		if err != nil {
			return nil, err
		}
		if hit {
			r.stageStats().Edges.Hits++
		} else {
			r.stageStats().Edges.Misses++
		}
		if r.Cfg.Progress != nil {
			kind := EventCacheMiss
			if hit {
				kind = EventCacheHit
			}
			r.Cfg.Progress(Event{Kind: kind, Kernel: K0Generate})
		}
		return l, nil
	}
	gen, err := generate(r.Cfg)
	if err != nil {
		return nil, err
	}
	return gen.Generate()
}

// fillAbortErr is the error an unfulfilled cache fill obligation is
// discharged with when the run exits before the producing kernel
// completed — the run's own error when it has one.
func fillAbortErr(err error) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("pipeline: run ended before the cached artifact was produced")
}

// sortedEdges obtains kernel 2's input: the cache-shared kernel-1
// artifact when the sorted stage hit (Run.SortedIn), else the k1 edge
// files.  A shared list is read-only; kernel-2 implementations that
// mutate their input route through sortedEdgesMutable instead.
func sortedEdges(r *Run) (*edge.List, error) {
	if r.SortedIn != nil {
		return r.SortedIn, nil
	}
	return fastio.ReadStriped(r.FS, "k1", r.Codec())
}

// sortedEdgesMutable is sortedEdges for consumers that modify the list
// in place (the columnar kernel 2 filters its columns destructively):
// a cache-shared artifact is deep-copied so the resident copy stays
// pristine for other runs.
func sortedEdgesMutable(r *Run) (*edge.List, error) {
	if r.SortedIn != nil {
		return r.SortedIn.Clone(), nil
	}
	return fastio.ReadStriped(r.FS, "k1", r.Codec())
}

// GenerateEdges invokes cfg's kernel-0 generator and returns the edge
// list without touching storage — the pure generation step the service
// layer's shared cache wraps.  Only Generator, Scale, EdgeFactor and Seed
// matter; the output is deterministic in them.
func GenerateEdges(cfg Config) (*edge.List, error) {
	gen, err := generate(cfg.withDefaults())
	if err != nil {
		return nil, err
	}
	return gen.Generate()
}

// generate dispatches to the configured K0 generator, shared by variants.
func generate(cfg Config) (gen gensuite.Generator, err error) {
	switch cfg.Generator {
	case GenKronecker:
		return kroneckerGen{cfg: kronecker.New(cfg.Scale, cfg.Seed).Defaults(), ef: cfg.EdgeFactor}, nil
	case GenPPL:
		return gensuite.PPL{Scale: cfg.Scale, EdgeFactor: cfg.EdgeFactor, Seed: cfg.Seed}, nil
	case GenER:
		return gensuite.ER{Scale: cfg.Scale, EdgeFactor: cfg.EdgeFactor, Seed: cfg.Seed}, nil
	default:
		return nil, fmt.Errorf("pipeline: unknown generator %q", cfg.Generator)
	}
}

// kroneckerGen adapts the kronecker package to the gensuite.Generator
// interface.
type kroneckerGen struct {
	cfg kronecker.Config
	ef  int
}

func (g kroneckerGen) Name() string        { return "kronecker" }
func (g kroneckerGen) NumVertices() uint64 { return g.cfg.N() }
func (g kroneckerGen) NumEdges() uint64 {
	c := g.cfg
	c.EdgeFactor = g.ef
	return c.Defaults().M()
}
func (g kroneckerGen) Generate() (*edge.List, error) {
	c := g.cfg
	c.EdgeFactor = g.ef
	return kronecker.Generate(c.Defaults())
}
