package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/dist"
	"repro/internal/edge"
	"repro/internal/fastio"
	"repro/internal/gensuite"
	"repro/internal/graphblas"
	"repro/internal/kronecker"
	"repro/internal/pagerank"
	"repro/internal/sparse"
	"repro/internal/vfs"
)

// Kernel identifies one pipeline stage.
type Kernel int

// The four kernels of the benchmark.
const (
	K0Generate Kernel = iota
	K1Sort
	K2Filter
	K3PageRank
	numKernels
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case K0Generate:
		return "kernel0-generate"
	case K1Sort:
		return "kernel1-sort"
	case K2Filter:
		return "kernel2-filter"
	case K3PageRank:
		return "kernel3-pagerank"
	default:
		return fmt.Sprintf("kernel?(%d)", int(k))
	}
}

// GeneratorKind selects the kernel-0 graph generator.
type GeneratorKind string

// Supported generators.
const (
	GenKronecker GeneratorKind = "kronecker" // Graph500 (the benchmark default)
	GenPPL       GeneratorKind = "ppl"       // deterministic perfect power law
	GenER        GeneratorKind = "er"        // Erdős–Rényi control
)

// Config parameterizes a benchmark run.
type Config struct {
	// Scale is the Graph500 scale factor S (N = 2^S vertices).
	Scale int
	// EdgeFactor is the average edges per vertex; zero selects 16.
	EdgeFactor int
	// Seed selects all random streams.
	Seed uint64
	// NFiles is the paper's free parameter, the number of edge files
	// written by K0 and K1; zero selects 1.
	NFiles int
	// FS is the non-volatile storage the kernels write to; nil selects an
	// in-memory store.
	FS vfs.FS
	// Variant names the implementation variant; empty selects "csr".
	Variant string
	// Format names the kernel-0/1 edge-file codec: "tsv" (the paper's
	// text format), "naivetsv", "bin", or "packed".  Empty keeps the
	// variant's paper-faithful default (tsv; the naive coo variant uses
	// naivetsv).  Results are bit-for-bit invariant in it — only encoded
	// bytes and kernel-0/1 throughput change.  The out-of-core sorters'
	// spill runs follow it too: "packed" spills packed runs, every other
	// format spills the fixed-width binary record.
	Format string
	// Generator selects the K0 generator; empty selects Kronecker.
	Generator GeneratorKind
	// Workers bounds goroutines in parallel variants; <= 0 means default.
	Workers int
	// RunEdges is the out-of-core variants' in-memory run size in edges —
	// extsort's external-merge buffer and distext's per-rank run buffer.
	// Zero selects each variant's default.
	RunEdges int
	// SortEndVertices makes K1 sort by (u, v) instead of u only — the
	// paper's "should the end vertices also be sorted?" open question.
	SortEndVertices bool
	// DistMode overrides the execution mode of the dist/distgo variants'
	// runtime: "sim" (single-threaded simulation) or "goroutine"
	// (concurrent ranks with real message passing).  Empty keeps the
	// selected variant's default.
	DistMode string
	// RankWorkers is the hybrid intra-rank worker count of the dist
	// variants' runtime (dist.Config.Workers): each rank's local kernel-3
	// product and kernel-1 partitioning run on this many goroutines.
	// Results are bit-for-bit invariant in it; <= 1 keeps ranks serial.
	RankWorkers int
	// Checkpoint configures epoch checkpoint/restart of the distributed
	// kernel 3 (dist.CheckpointSpec semantics: FS enables it, Resume
	// restarts from the newest complete epoch).  Only the variants with a
	// distributed kernel 3 — dist, distgo, distext — accept it.  The
	// spec's OnCommit/OnResume hooks compose with Progress: the runner
	// also emits EventCheckpointSaved/EventCheckpointRestored.
	Checkpoint dist.CheckpointSpec
	// Fault, when non-nil, injects a rank failure into the distributed
	// kernel 3 (dist.FaultPlan) — the chaos suites' instrument.  Like the
	// dist layer's, it describes one injection: clear it on the restarted
	// run.
	Fault *dist.FaultPlan
	// PageRank carries K3 options (damping, iterations, dangling).
	PageRank pagerank.Options
	// KeepRank retains the final rank vector in the Result.
	KeepRank bool
	// MeterIO wraps the storage in a byte-counting layer and records each
	// kernel's read/write volume in its KernelResult.
	MeterIO bool
	// Source, when non-nil, replaces the kernel-0 generator invocation:
	// variants obtain the edge list from it instead of generating.  It
	// reports whether the list came from a cache (metered in the
	// Result's GenCache) and MUST return a list the caller treats as
	// read-only — kernel 0 only writes it to storage, never mutates it,
	// which is what lets the service layer share one list across
	// concurrent runs.  The hook sees the defaulted Config.
	Source func(Config) (*edge.List, bool, error)
	// Progress, when non-nil, receives execution events: kernel start
	// and end, and one event per kernel-3 iteration.  Callbacks run
	// synchronously on the executing goroutine (rank 0's, for the dist
	// variants) and must be fast; the service layer's RunStream is built
	// on this hook.
	Progress func(Event)
}

func (c Config) withDefaults() Config {
	if c.EdgeFactor == 0 {
		c.EdgeFactor = kronecker.DefaultEdgeFactor
	}
	if c.NFiles == 0 {
		c.NFiles = 1
	}
	if c.FS == nil {
		c.FS = vfs.NewMem()
	}
	if c.Variant == "" {
		c.Variant = "csr"
	}
	if c.Generator == "" {
		c.Generator = GenKronecker
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	cc := c.withDefaults()
	if cc.Scale < 1 || cc.Scale > kronecker.MaxScale {
		return fmt.Errorf("pipeline: scale %d out of range [1, %d]", cc.Scale, kronecker.MaxScale)
	}
	if cc.NFiles < 1 {
		return fmt.Errorf("pipeline: NFiles %d, want >= 1", cc.NFiles)
	}
	if _, ok := registry[cc.Variant]; !ok {
		return fmt.Errorf("pipeline: unknown variant %q (have %v)", cc.Variant, VariantNames())
	}
	if cc.Format != "" {
		if _, err := fastio.CodecByName(cc.Format); err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
	}
	switch cc.Generator {
	case GenKronecker, GenPPL, GenER:
	default:
		return fmt.Errorf("pipeline: unknown generator %q", cc.Generator)
	}
	if _, err := dist.ParseExecMode(cc.DistMode); err != nil {
		return err
	}
	if cc.Checkpoint.FS != nil || cc.Fault != nil {
		if _, ok := registry[cc.Variant].(interface{ distCfg(*Run) dist.Config }); !ok {
			return fmt.Errorf("pipeline: checkpoint/fault configured, but variant %q has no distributed kernel 3", cc.Variant)
		}
	}
	return cc.PageRank.Validate()
}

// N returns the vertex count 2^Scale.
func (c Config) N() uint64 { return 1 << uint(c.Scale) }

// M returns the edge count EdgeFactor·2^Scale.
func (c Config) M() uint64 { return uint64(c.withDefaults().EdgeFactor) << uint(c.Scale) }

// EventKind classifies a Progress event.
type EventKind int

const (
	// EventKernelStart fires immediately before a kernel executes.
	EventKernelStart EventKind = iota
	// EventKernelEnd fires after a kernel completes, carrying its
	// KernelResult.
	EventKernelEnd
	// EventIteration fires after each completed kernel-3 PageRank
	// iteration, carrying the 1-based iteration count.
	EventIteration
	// EventCheckpointSaved fires after the distributed kernel 3 commits
	// an epoch, carrying the epoch's completed-iteration count in
	// Iteration.
	EventCheckpointSaved
	// EventCheckpointRestored fires when a resuming kernel 3 loads a
	// complete epoch before iterating, carrying the epoch's completed-
	// iteration count in Iteration.
	EventCheckpointRestored
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventKernelStart:
		return "kernel-start"
	case EventKernelEnd:
		return "kernel-end"
	case EventIteration:
		return "iteration"
	case EventCheckpointSaved:
		return "checkpoint-saved"
	case EventCheckpointRestored:
		return "checkpoint-restored"
	default:
		return fmt.Sprintf("event?(%d)", int(k))
	}
}

// Event is one Progress observation of a running pipeline.
type Event struct {
	// Kind classifies the event.
	Kind EventKind
	// Kernel is the stage the event belongs to.
	Kernel Kernel
	// Iteration is the 1-based kernel-3 iteration (EventIteration only).
	Iteration int
	// KernelResult is the completed stage's record (EventKernelEnd only).
	KernelResult *KernelResult
}

// GenCacheStats records a run's interaction with an external generator
// cache (Config.Source): how many kernel-0 edge lists were served from
// cache versus generated.  A single full-pipeline run scores exactly one
// hit or one miss.
type GenCacheStats struct {
	// Hits counts edge lists served from the cache.
	Hits uint64
	// Misses counts edge lists that had to be generated.
	Misses uint64
}

// KernelResult is the timing record for one kernel.
type KernelResult struct {
	// Kernel identifies the stage.
	Kernel Kernel
	// Seconds is the wall-clock duration of the stage.
	Seconds float64
	// Edges is the edge count the rate is defined over (M, or 20·M for K3).
	Edges uint64
	// EdgesPerSecond is Edges / Seconds, the paper's reported metric.
	EdgesPerSecond float64
	// Allocs is the number of heap allocations performed during the
	// stage (runtime mallocs, whole process) — the perf-trajectory
	// counter prbench -json records so allocation regressions in any
	// kernel are visible between PRs.
	Allocs uint64
	// IO holds the kernel's storage traffic when Config.MeterIO is set.
	IO *vfs.IOStats
}

// Result is the outcome of a pipeline run.
type Result struct {
	// Config echoes the (defaulted) configuration that ran.
	Config Config
	// Kernels holds one entry per executed kernel, in order.
	Kernels []KernelResult
	// NNZ is the filtered matrix's stored-entry count after K2.
	NNZ int
	// MatrixMass is sum(A) after construction, before filtering (== M).
	MatrixMass float64
	// Rank is the final rank vector (only when Config.KeepRank).
	Rank []float64
	// RankIterations is the number of PageRank iterations performed.
	RankIterations int
	// Comm is the total communication record of the run's distributed
	// collectives (dist variants only; nil otherwise).
	Comm *dist.CommStats
	// Checkpoint is the distributed kernel 3's checkpoint/restart record
	// (checkpointed or resumed dist-variant runs only; nil otherwise).
	Checkpoint *dist.CheckpointStats
	// Spill is the out-of-core kernel 1's run-file record (extsort and
	// distext variants only; nil otherwise).
	Spill *SpillStats
	// GenCache is the run's generator-cache record (runs with a
	// Config.Source only; nil when kernel 0 generated directly).
	GenCache *GenCacheStats
}

// KernelResultFor returns the result for kernel k, or nil.
func (r *Result) KernelResultFor(k Kernel) *KernelResult {
	for i := range r.Kernels {
		if r.Kernels[i].Kernel == k {
			return &r.Kernels[i]
		}
	}
	return nil
}

// Run carries the mutable state a variant threads through the kernels.
type Run struct {
	// Cfg is the defaulted configuration.
	Cfg Config
	// FS is the storage kernels read and write.
	FS vfs.FS
	// Matrix receives the filtered, normalized adjacency matrix at the
	// end of K2 (all variants converge to CSR for cross-validation; the
	// graphblas variant also keeps its generic form internally).
	Matrix *sparse.CSR
	// GB optionally holds the graphblas variant's generic matrix between
	// K2 and K3.
	GB *graphblas.Matrix[float64]
	// Rank receives the K3 result.
	Rank *pagerank.Result
	// MatrixMass is sum(A) recorded during K2 before filtering.
	MatrixMass float64
	// Comm accumulates the distributed collectives' communication record
	// across kernels (dist variants call AddComm; nil for serial variants).
	Comm *dist.CommStats
	// Checkpoint receives the distributed kernel 3's checkpoint/restart
	// record when Cfg.Checkpoint or Cfg.Fault is in play.
	Checkpoint *dist.CheckpointStats
	// Spill records the out-of-core kernel 1's run-file traffic (extsort
	// and distext variants; nil for in-memory sorts).
	Spill *SpillStats
	// GenCache records the generator-cache interaction when Cfg.Source
	// is set (filled by sourceEdges).
	GenCache *GenCacheStats
	// ctx is the run's cancellation context; nil means background.
	// Variants read it through Context().
	ctx context.Context
}

// Context returns the run's cancellation context.  Variants thread it
// into the distributed runtime and the kernel-3 engines; a Run built
// without one (the legacy composition path, e.g. the checkpoint example)
// gets context.Background.
func (r *Run) Context() context.Context {
	if r.ctx == nil {
		return context.Background()
	}
	return r.ctx
}

// AddComm folds a kernel's communication record into the run's total.
func (r *Run) AddComm(st dist.CommStats) {
	if r.Comm == nil {
		r.Comm = &dist.CommStats{}
	}
	r.Comm.Add(st)
}

// DefaultFormat returns a variant's paper-faithful default codec name
// for its kernel-0/1 edge files: naivetsv for the naive coo variant
// (whose string handling is the point), tsv everywhere else.
func DefaultFormat(variant string) string {
	if variant == "coo" {
		return "naivetsv"
	}
	return "tsv"
}

// FormatName resolves the codec name cfg's run uses for its kernel-0/1
// edge files: Config.Format when set, else the variant's default.
func FormatName(cfg Config) string {
	if cfg.Format != "" {
		return cfg.Format
	}
	return DefaultFormat(cfg.withDefaults().Variant)
}

// Codec resolves the run's edge-file codec — FormatName of the run's
// configuration.  Every variant kernel that touches the k0/k1 files
// routes through it, which is what makes Config.Format a single switch.
func (r *Run) Codec() fastio.Codec {
	c, err := fastio.CodecByName(FormatName(r.Cfg))
	if err != nil {
		// Unreachable: Validate checked Format before the run began.
		panic(err)
	}
	return c
}

// SpillCodec resolves the out-of-core sorters' run-file codec: Packed
// when the run's format is packed (sorted runs are its best case), else
// the fixed-width Binary record, whose 16 B/edge keeps spill accounting
// exact and bit-for-bit invariant across the other formats.
func (r *Run) SpillCodec() fastio.Codec {
	if r.Cfg.Format == "packed" {
		return fastio.Packed{}
	}
	return fastio.Binary{}
}

// SpillStats records an out-of-core kernel 1's run-file traffic: which
// codec encoded the spilled runs and how many encoded bytes moved, so a
// cheaper spill codec is a measured reduction, not an assertion.
type SpillStats struct {
	// Codec names the spill-run codec ("bin" or "packed").
	Codec string
	// Runs is the number of sorted runs formed (summed over ranks for
	// the distributed sorter).
	Runs int
	// BytesWritten and BytesRead are the run files' encoded bytes: the
	// spill during run formation and the read-back during the merge.
	BytesWritten int64
	BytesRead    int64
}

// Variant implements the four kernels.  Kernels communicate only through
// r.FS (K0→K1→K2) and r.Matrix (K2→K3), so kernels of different variants
// compose — the pipeline runner exploits this in mix-and-match ablations.
type Variant interface {
	// Name is the registry key.
	Name() string
	// Description is a one-line summary for reports.
	Description() string
	// Kernel0 generates the graph and writes edge files under prefix "k0".
	Kernel0(r *Run) error
	// Kernel1 reads "k0" files, sorts by start vertex, writes "k1" files.
	Kernel1(r *Run) error
	// Kernel2 reads "k1" files and produces the filtered normalized matrix.
	Kernel2(r *Run) error
	// Kernel3 runs PageRank on r.Matrix, filling r.Rank.
	Kernel3(r *Run) error
}

// ---------------------------------------------------------------------------
// Registry

var registry = map[string]Variant{}

// Register adds a variant; it panics on duplicates (registration happens in
// package init functions).
func Register(v Variant) {
	if _, dup := registry[v.Name()]; dup {
		panic(fmt.Sprintf("pipeline: duplicate variant %q", v.Name()))
	}
	registry[v.Name()] = v
}

// Lookup returns the named variant.
func Lookup(name string) (Variant, error) {
	v, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("pipeline: unknown variant %q (have %v)", name, VariantNames())
	}
	return v, nil
}

// VariantNames returns all registered variant names, sorted.
func VariantNames() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ---------------------------------------------------------------------------
// Execution

// Execute runs the full four-kernel pipeline under cfg and returns timing
// results for every kernel.
//
// Deprecated: use ExecuteContext so callers control cancellation (§8).
func Execute(cfg Config) (*Result, error) {
	return ExecuteContext(context.Background(), cfg)
}

// ExecuteContext runs the full four-kernel pipeline under cfg and ctx.
func ExecuteContext(ctx context.Context, cfg Config) (*Result, error) {
	return ExecuteKernelsContext(ctx, cfg, []Kernel{K0Generate, K1Sort, K2Filter, K3PageRank})
}

// ExecuteKernels runs the listed kernels in order.  Kernels may be run
// independently as the paper allows, but each depends on its predecessor's
// artifacts: running K2 without K1 in the same FS fails with a missing-file
// error.
//
// Deprecated: use ExecuteKernelsContext so callers control cancellation (§8).
func ExecuteKernels(cfg Config, kernels []Kernel) (*Result, error) {
	return ExecuteKernelsContext(context.Background(), cfg, kernels)
}

// ExecuteKernelsContext runs the listed kernels in order under ctx:
// cancellation aborts before the next kernel starts, and mid-kernel at
// the kernels' own cancellation points — the K3 engines check between
// iterations and the distributed runtime between its phases — returning
// ctx's error.  A background context changes nothing: results are
// bit-for-bit those of ExecuteKernels.
func ExecuteKernelsContext(ctx context.Context, cfg Config, kernels []Kernel) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	v := registry[cfg.Variant]
	var meter *vfs.Metered
	if cfg.MeterIO {
		meter = vfs.NewMetered(cfg.FS)
		cfg.FS = meter
	}
	run := &Run{Cfg: cfg, FS: cfg.FS, ctx: ctx}
	if cfg.Progress != nil {
		// The kernel-3 engines' per-iteration hook feeds the same
		// Progress stream as the kernel events below, composed with —
		// not replacing — any per-iteration hook the caller already put
		// in PageRank.Progress.  Only run.Cfg is amended; the caller's
		// options value is untouched.
		inner := cfg.PageRank.Progress
		run.Cfg.PageRank.Progress = func(it int) {
			if inner != nil {
				inner(it)
			}
			cfg.Progress(Event{Kind: EventIteration, Kernel: K3PageRank, Iteration: it})
		}
	}
	// The Result echoes the defaulted configuration minus the run's
	// closures: Source and Progress are plumbing inputs that capture the
	// caller's context and cache — retaining them in every Result would
	// keep those alive for the Result's lifetime.
	resCfg := cfg
	resCfg.Source = nil
	resCfg.Progress = nil
	resCfg.Checkpoint.OnCommit = nil
	resCfg.Checkpoint.OnResume = nil
	res := &Result{Config: resCfg}
	m := cfg.M()
	for _, k := range kernels {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var fn func(*Run) error
		edges := m
		switch k {
		case K0Generate:
			fn = v.Kernel0
		case K1Sort:
			fn = v.Kernel1
		case K2Filter:
			fn = v.Kernel2
		case K3PageRank:
			fn = v.Kernel3
			iters := cfg.PageRank.Iterations
			if iters == 0 {
				iters = pagerank.DefaultIterations
			}
			edges = m * uint64(iters)
		default:
			return nil, fmt.Errorf("pipeline: unknown kernel %v", k)
		}
		if cfg.Progress != nil {
			cfg.Progress(Event{Kind: EventKernelStart, Kernel: k})
		}
		var memBefore runtime.MemStats
		runtime.ReadMemStats(&memBefore)
		start := time.Now()
		if err := fn(run); err != nil {
			if cerr := ctx.Err(); cerr != nil {
				// Cancellation surfaces undecorated so callers can match
				// errors.Is(err, context.Canceled) without unwrapping the
				// kernel framing.
				return nil, cerr
			}
			return nil, fmt.Errorf("pipeline: %v (%s): %w", k, cfg.Variant, err)
		}
		secs := time.Since(start).Seconds()
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		kr := KernelResult{Kernel: k, Seconds: secs, Edges: edges, Allocs: memAfter.Mallocs - memBefore.Mallocs}
		if secs > 0 {
			kr.EdgesPerSecond = float64(edges) / secs
		}
		if meter != nil {
			io := meter.Reset()
			kr.IO = &io
		}
		res.Kernels = append(res.Kernels, kr)
		if cfg.Progress != nil {
			cfg.Progress(Event{Kind: EventKernelEnd, Kernel: k, KernelResult: &kr})
		}
	}
	if run.Matrix != nil {
		res.NNZ = run.Matrix.NNZ()
		res.MatrixMass = run.MatrixMass
	}
	if run.Rank != nil {
		res.RankIterations = run.Rank.Iterations
		if cfg.KeepRank {
			res.Rank = run.Rank.Rank
		}
	}
	res.Comm = run.Comm
	res.Checkpoint = run.Checkpoint
	res.Spill = run.Spill
	res.GenCache = run.GenCache
	return res, nil
}

// sourceEdges obtains kernel 0's edge list: from Cfg.Source when set —
// metering the hit/miss in the run's GenCache record — else by invoking
// the configured generator.  Every variant's Kernel0 routes through it,
// which is the single seam the service layer's shared generator cache
// plugs into.  A sourced list is shared and read-only; callers only
// write it to storage.
func sourceEdges(r *Run) (*edge.List, error) {
	if r.Cfg.Source != nil {
		l, hit, err := r.Cfg.Source(r.Cfg)
		if err != nil {
			return nil, err
		}
		if r.GenCache == nil {
			r.GenCache = &GenCacheStats{}
		}
		if hit {
			r.GenCache.Hits++
		} else {
			r.GenCache.Misses++
		}
		return l, nil
	}
	gen, err := generate(r.Cfg)
	if err != nil {
		return nil, err
	}
	return gen.Generate()
}

// GenerateEdges invokes cfg's kernel-0 generator and returns the edge
// list without touching storage — the pure generation step the service
// layer's shared cache wraps.  Only Generator, Scale, EdgeFactor and Seed
// matter; the output is deterministic in them.
func GenerateEdges(cfg Config) (*edge.List, error) {
	gen, err := generate(cfg.withDefaults())
	if err != nil {
		return nil, err
	}
	return gen.Generate()
}

// generate dispatches to the configured K0 generator, shared by variants.
func generate(cfg Config) (gen gensuite.Generator, err error) {
	switch cfg.Generator {
	case GenKronecker:
		return kroneckerGen{cfg: kronecker.New(cfg.Scale, cfg.Seed).Defaults(), ef: cfg.EdgeFactor}, nil
	case GenPPL:
		return gensuite.PPL{Scale: cfg.Scale, EdgeFactor: cfg.EdgeFactor, Seed: cfg.Seed}, nil
	case GenER:
		return gensuite.ER{Scale: cfg.Scale, EdgeFactor: cfg.EdgeFactor, Seed: cfg.Seed}, nil
	default:
		return nil, fmt.Errorf("pipeline: unknown generator %q", cfg.Generator)
	}
}

// kroneckerGen adapts the kronecker package to the gensuite.Generator
// interface.
type kroneckerGen struct {
	cfg kronecker.Config
	ef  int
}

func (g kroneckerGen) Name() string        { return "kronecker" }
func (g kroneckerGen) NumVertices() uint64 { return g.cfg.N() }
func (g kroneckerGen) NumEdges() uint64 {
	c := g.cfg
	c.EdgeFactor = g.ef
	return c.Defaults().M()
}
func (g kroneckerGen) Generate() (*edge.List, error) {
	c := g.cfg
	c.EdgeFactor = g.ef
	return kronecker.Generate(c.Defaults())
}
