// Package pipeline orchestrates the four kernels of the PageRank pipeline
// benchmark: generate (K0), sort (K1), filter (K2) and PageRank (K3).
//
// Each kernel is a mathematically defined contract — files of tab-separated
// edges between K0/K1/K2, a normalized sparse matrix between K2/K3 — and
// "each kernel in the pipeline must be fully completed before the next
// kernel can begin".  The package times every kernel and reports the
// paper's metrics: edges/second with M edges for K0–K2 and 20·M edges for
// K3.
//
// Multiple implementation variants register themselves in a registry; six
// stand in for the paper's language implementations (C++, Python,
// Python/Pandas, Matlab, Octave, Julia), and two more run the distributed-
// memory pipeline of the paper's §V analysis — "dist" through the
// single-threaded simulation and "distgo" through the concurrent
// goroutine-rank runtime — each exercising the same kernel contracts
// through a different code path (see DESIGN.md §1 and §5).
package pipeline
