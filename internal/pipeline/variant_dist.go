package pipeline

// The dist variants run the pipeline through the distributed-memory
// runtime of internal/dist: kernel 1 is the splitter-based sample sort,
// kernels 2 and 3 use the 1D row-block decomposition with metered
// collectives.  "dist" executes the single-threaded simulation, "distgo"
// the concurrent goroutine-rank runtime (Config.DistMode overrides
// either).  Results are identical to the serial variants — the sort
// bit-for-bit, the matrix bit-for-bit, the rank vector to ~1e-12 — and
// identical between the two modes bit-for-bit, which is exactly the
// property the paper's §V analysis assumes when it prices the parallel
// pipeline by communication volume alone (DESIGN.md §5).

import (
	"repro/internal/dist"
	"repro/internal/fastio"
	"repro/internal/pagerank"
	"repro/internal/xsort"
)

func init() {
	Register(distVariant{})
	Register(distVariant{mode: dist.ExecGoroutine})
}

type distVariant struct {
	// mode is the registered default; Config.DistMode overrides it.
	mode dist.ExecMode
}

// Name implements Variant.
func (v distVariant) Name() string {
	if v.mode == dist.ExecGoroutine {
		return "distgo"
	}
	return "dist"
}

// Description implements Variant.
func (v distVariant) Description() string {
	if v.mode == dist.ExecGoroutine {
		return "goroutine distributed memory: p concurrent ranks exchanging real channel messages, byte counts equal to the simulation and the §V closed form"
	}
	return "simulated distributed memory: sample sort, row-block matrix, all-reduce PageRank with exact communication accounting (the paper's §V parallel analysis)"
}

// procs is the processor (rank) count: Config.Workers when set, else a
// fixed default so results do not depend on the host's CPU count (they
// would not anyway — both modes are p-invariant — but determinism of the
// communication record matters for reports).
func (distVariant) procs(r *Run) int {
	if r.Cfg.Workers > 0 {
		return r.Cfg.Workers
	}
	return 4
}

// execMode resolves the effective execution mode: Config.DistMode when
// set (validated by Config.Validate), else the variant's registered
// default.
func (v distVariant) execMode(r *Run) dist.ExecMode {
	if r.Cfg.DistMode != "" {
		m, err := dist.ParseExecMode(r.Cfg.DistMode)
		if err == nil {
			return m
		}
	}
	return v.mode
}

// distCfg assembles the full runtime configuration: the resolved
// execution mode plus the hybrid intra-rank worker count.
func (v distVariant) distCfg(r *Run) dist.Config {
	return dist.Config{Mode: v.execMode(r), Workers: r.Cfg.RankWorkers}
}

// Kernel0 implements Variant.
func (distVariant) Kernel0(r *Run) error {
	l, err := sourceEdges(r)
	if err != nil {
		return err
	}
	return fastio.WriteStriped(r.FS, "k0", r.Codec(), r.Cfg.NFiles, l)
}

// Kernel1 implements Variant.
func (v distVariant) Kernel1(r *Run) error {
	l, err := fastio.ReadStriped(r.FS, "k0", r.Codec())
	if err != nil {
		return err
	}
	if r.Cfg.SortEndVertices {
		// The distributed sort keys on the start vertex only; the (u,v)
		// ablation falls back to the serial radix path, as the parallel
		// variant does.
		xsort.RadixByUV(l)
	} else {
		out, err := dist.Execute(r.Context(), dist.Spec{
			Config: v.distCfg(r), Op: dist.OpSort, Edges: l, Procs: v.procs(r),
		})
		if err != nil {
			return err
		}
		r.AddComm(out.Sort.Comm)
		l = out.Sort.Sorted
	}
	r.SortedOut = l
	return fastio.WriteStriped(r.FS, "k1", r.Codec(), r.Cfg.NFiles, l)
}

// Kernel2 implements Variant.  On a sorted-stage cache hit the shared
// list feeds OpBuildFiltered directly — dist.Spec.Edges is documented
// never-modified, so sharing is safe; the runtime scatters (broadcasts)
// the list's row blocks to the ranks exactly as for a cold run.
func (v distVariant) Kernel2(r *Run) error {
	l, err := sortedEdges(r)
	if err != nil {
		return err
	}
	out, err := dist.Execute(r.Context(), dist.Spec{
		Config: dist.Config{Mode: v.execMode(r)}, Op: dist.OpBuildFiltered,
		Edges: l, N: int(r.Cfg.N()), Procs: v.procs(r),
	})
	if err != nil {
		return err
	}
	b := out.Build
	r.AddComm(b.Comm)
	r.MatrixMass = b.Mass
	r.Matrix = b.Matrix
	return nil
}

// Kernel3 implements Variant.
func (v distVariant) Kernel3(r *Run) error {
	spec := dist.Spec{
		Config: v.distCfg(r), Op: dist.OpRunMatrix,
		Matrix: r.Matrix, Procs: v.procs(r), PageRank: r.Cfg.PageRank,
		Checkpoint: r.Cfg.Checkpoint, Fault: r.Cfg.Fault,
	}
	if progress := r.Cfg.Progress; progress != nil && spec.Checkpoint.FS != nil {
		// Compose the caller's checkpoint hooks with the Progress stream,
		// mirroring how the runner composes PageRank.Progress.
		innerCommit, innerResume := spec.Checkpoint.OnCommit, spec.Checkpoint.OnResume
		spec.Checkpoint.OnCommit = func(epoch int64) {
			if innerCommit != nil {
				innerCommit(epoch)
			}
			progress(Event{Kind: EventCheckpointSaved, Kernel: K3PageRank, Iteration: int(epoch)})
		}
		spec.Checkpoint.OnResume = func(epoch int64, torn int) {
			if innerResume != nil {
				innerResume(epoch, torn)
			}
			progress(Event{Kind: EventCheckpointRestored, Kernel: K3PageRank, Iteration: int(epoch)})
		}
	}
	out, err := dist.Execute(r.Context(), spec)
	if err != nil {
		return err
	}
	res := out.Run
	r.AddComm(res.Comm)
	r.Checkpoint = res.Checkpoint
	r.Rank = &pagerank.Result{Rank: res.Rank, Iterations: res.Iterations}
	return nil
}
