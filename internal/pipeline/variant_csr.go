package pipeline

// The csr variant is the hand-optimized implementation, the analogue of the
// paper's C++ code: custom TSV formatting/parsing, LSD radix sort, direct
// CSR construction from sorted edges, and the gather (transpose) PageRank
// engine.

import (
	"repro/internal/fastio"
	"repro/internal/pagerank"
	"repro/internal/sparse"
	"repro/internal/xsort"
)

func init() { Register(csrVariant{}) }

type csrVariant struct{}

// Name implements Variant.
func (csrVariant) Name() string { return "csr" }

// Description implements Variant.
func (csrVariant) Description() string {
	return "optimized: custom TSV codec, radix sort, CSR build, gather PageRank (analogue of the paper's C++)"
}

// Kernel0 implements Variant.
func (csrVariant) Kernel0(r *Run) error {
	l, err := sourceEdges(r)
	if err != nil {
		return err
	}
	return fastio.WriteStriped(r.FS, "k0", r.Codec(), r.Cfg.NFiles, l)
}

// Kernel1 implements Variant.
func (csrVariant) Kernel1(r *Run) error {
	l, err := fastio.ReadStriped(r.FS, "k0", r.Codec())
	if err != nil {
		return err
	}
	if r.Cfg.SortEndVertices {
		xsort.RadixByUV(l)
	} else {
		xsort.RadixByU(l)
	}
	r.SortedOut = l
	return fastio.WriteStriped(r.FS, "k1", r.Codec(), r.Cfg.NFiles, l)
}

// Kernel2 implements Variant.
func (csrVariant) Kernel2(r *Run) error {
	l, err := sortedEdges(r)
	if err != nil {
		return err
	}
	a, err := sparse.FromSortedEdges(l, int(r.Cfg.N()))
	if err != nil {
		return err
	}
	r.MatrixMass = a.SumValues()
	ApplyKernel2Filter(a)
	r.Matrix = a
	return nil
}

// Kernel3 implements Variant.
func (csrVariant) Kernel3(r *Run) error {
	eng, err := pagerank.NewGatherEngine(r.Matrix, r.Cfg.PageRank)
	if err != nil {
		return err
	}
	res, err := eng.RunContext(r.Context())
	if err != nil {
		return err
	}
	r.Rank = res
	return nil
}
