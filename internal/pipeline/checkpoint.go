package pipeline

// Checkpoint/restart — the paper's Figure 2 lists checkpointing and
// restarting among the administrative operations big-data systems must
// support.  A checkpoint captures everything kernel 3 needs to continue: the
// filtered normalized matrix (kernel 2's output) and the rank vector with
// its completed iteration count.  A pipeline can therefore be stopped after
// any K3 iteration boundary and resumed on another process or machine,
// producing exactly the result an uninterrupted run would have produced.
//
// Layout: two files under the checkpoint name — "<name>.matrix" in the
// binary CSR format and "<name>.state" holding the rank vector, iteration
// count and damping, both checksummed.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/pagerank"
	"repro/internal/sparse"
	"repro/internal/vfs"
)

// Checkpoint is a resumable kernel-3 state.
type Checkpoint struct {
	// Matrix is the filtered, normalized adjacency matrix.
	Matrix *sparse.CSR
	// Rank is the rank vector after CompletedIterations updates.
	Rank []float64
	// CompletedIterations counts the K3 iterations already performed.
	CompletedIterations int
	// Damping is the c the completed iterations used; resuming with a
	// different damping is rejected.
	Damping float64
}

var stateMagic = [4]byte{'P', 'R', 'S', '1'}

// Save writes the checkpoint under name in fs.  Each file is written to
// a temporary name and renamed into place only when complete, so a crash
// mid-save can leave stray ".tmp" files but never a truncated
// checkpoint under the final names; an existing checkpoint is replaced
// only by a complete new one.
func Save(fs vfs.FS, name string, cp *Checkpoint) error {
	if cp.Matrix == nil || len(cp.Rank) != cp.Matrix.N {
		return fmt.Errorf("pipeline: malformed checkpoint (matrix %v, rank %d)", cp.Matrix != nil, len(cp.Rank))
	}
	if err := saveFile(fs, name+".matrix", func(w io.Writer) error {
		_, err := cp.Matrix.WriteTo(w)
		return err
	}); err != nil {
		return err
	}
	return saveFile(fs, name+".state", func(w io.Writer) error {
		return writeState(w, cp)
	})
}

// saveFile writes one checkpoint file atomically: temp name, full write,
// close, rename.
func saveFile(fs vfs.FS, name string, write func(io.Writer) error) error {
	tmp := name + ".tmp"
	w, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(w); err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, name)
}

func writeState(w io.Writer, cp *Checkpoint) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 64<<10)
	bits := make([]uint64, len(cp.Rank))
	for i, v := range cp.Rank {
		bits[i] = math.Float64bits(v)
	}
	for _, part := range []any{
		stateMagic,
		int64(len(cp.Rank)),
		int64(cp.CompletedIterations),
		math.Float64bits(cp.Damping),
		bits,
	} {
		if err := binary.Write(bw, binary.LittleEndian, part); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// Load reads a checkpoint previously written by Save.
func Load(fs vfs.FS, name string) (*Checkpoint, error) {
	mr, err := fs.Open(name + ".matrix")
	if err != nil {
		return nil, err
	}
	defer mr.Close()
	matrix, err := sparse.ReadCSR(mr)
	if err != nil {
		return nil, fmt.Errorf("pipeline: checkpoint matrix: %w", err)
	}
	sr, err := fs.Open(name + ".state")
	if err != nil {
		return nil, err
	}
	defer sr.Close()
	cp, err := readState(sr)
	if err != nil {
		return nil, fmt.Errorf("pipeline: checkpoint state: %w", err)
	}
	cp.Matrix = matrix
	if len(cp.Rank) != matrix.N {
		return nil, fmt.Errorf("pipeline: checkpoint rank length %d != matrix N %d", len(cp.Rank), matrix.N)
	}
	return cp, nil
}

func readState(r io.Reader) (*Checkpoint, error) {
	crc := crc32.NewIEEE()
	br := bufio.NewReaderSize(r, 64<<10)
	// Every short read names the section it truncated — a cut-off state
	// file must produce a diagnosis, not a bare unexpected-EOF.
	read := func(n int, what string) ([]byte, error) {
		buf := make([]byte, n)
		if m, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("truncated %s: got %d of %d bytes: %w", what, m, n, err)
		}
		crc.Write(buf)
		return buf, nil
	}
	head, err := read(4+8+8+8, "header")
	if err != nil {
		return nil, err
	}
	if [4]byte(head[:4]) != stateMagic {
		return nil, fmt.Errorf("bad magic %q", head[:4])
	}
	n := int64(binary.LittleEndian.Uint64(head[4:12]))
	iters := int64(binary.LittleEndian.Uint64(head[12:20]))
	damping := math.Float64frombits(binary.LittleEndian.Uint64(head[20:28]))
	if n <= 0 || n > sparse.MaxDim || iters < 0 {
		return nil, fmt.Errorf("implausible state header n=%d iters=%d", n, iters)
	}
	payload, err := read(int(n)*8, fmt.Sprintf("rank vector (n=%d)", n))
	if err != nil {
		return nil, err
	}
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	want := crc.Sum32()
	var tail [4]byte
	if m, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, fmt.Errorf("truncated checksum: got %d of 4 bytes: %w", m, err)
	}
	if stored := binary.LittleEndian.Uint32(tail[:]); stored != want {
		return nil, fmt.Errorf("checksum mismatch: stored %#x, computed %#x", stored, want)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("trailing bytes after checksum")
	}
	return &Checkpoint{
		Rank:                rank,
		CompletedIterations: int(iters),
		Damping:             damping,
	}, nil
}

// Resume continues a checkpointed kernel-3 run until totalIterations
// updates have been performed in all (across the original run and this
// one).  The damping must match the checkpoint's.  The final result is
// identical to an uninterrupted run of totalIterations.
func Resume(cp *Checkpoint, totalIterations int, opt pagerank.Options) (*pagerank.Result, error) {
	if totalIterations <= cp.CompletedIterations {
		return &pagerank.Result{Rank: cp.Rank, Iterations: cp.CompletedIterations}, nil
	}
	effDamping := opt.Damping
	if effDamping == 0 {
		effDamping = pagerank.DefaultDamping
	}
	if cp.Damping != 0 && math.Abs(effDamping-cp.Damping) > 1e-15 {
		return nil, fmt.Errorf("pipeline: resume damping %v != checkpoint damping %v", effDamping, cp.Damping)
	}
	opt.Damping = effDamping
	opt.Iterations = totalIterations - cp.CompletedIterations
	opt.InitialRank = cp.Rank
	res, err := pagerank.Gather(cp.Matrix, opt)
	if err != nil {
		return nil, err
	}
	res.Iterations += cp.CompletedIterations
	return res, nil
}
