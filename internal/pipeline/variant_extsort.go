package pipeline

// The extsort variant is the out-of-core regime the paper requires "if u
// and v are too large to fit in memory": kernel 0 streams edges straight to
// striped files without materializing the edge list, kernel 1 is an
// external merge sort with a bounded in-memory run buffer, and kernel 2
// builds the matrix from the sorted stream one row at a time.  The run
// buffer size (Config.RunEdges) models the available RAM.

import (
	"fmt"
	"io"

	"repro/internal/edge"
	"repro/internal/fastio"
	"repro/internal/kronecker"
	"repro/internal/pagerank"
	"repro/internal/sparse"
	"repro/internal/xsort"
)

func init() { Register(extsortVariant{}) }

type extsortVariant struct{}

// Name implements Variant.
func (extsortVariant) Name() string { return "extsort" }

// Description implements Variant.
func (extsortVariant) Description() string {
	return "out-of-core: streamed generation, external merge sort with bounded memory, streaming matrix build (the paper's out-of-memory regime)"
}

// CacheTraits implements the optional staged-cache interface: the list
// stages are bypassed for the same reason Kernel0 bypasses Cfg.Source —
// kernels 0–2 stream in bounded memory and never materialize an edge
// list, so there is no sorted artifact to deposit and consuming one
// would un-out-of-core the variant.  The kernel-2 matrix is resident
// for kernel 3 regardless, so the matrix stage is shared.
func (extsortVariant) CacheTraits() CacheTraits {
	return CacheTraits{MatrixArtifact: true}
}

func (extsortVariant) runEdges(r *Run) int {
	if r.Cfg.RunEdges > 0 {
		return r.Cfg.RunEdges
	}
	// Default model: a quarter of the edge list fits in memory, echoing
	// the paper's "~25% of available RAM" sizing guidance.  M() is uint64;
	// clamp through int64 before converting so 32-bit builds (int is 32
	// bits) saturate at the largest representable run instead of wrapping
	// negative at large scales.
	quarter := r.Cfg.M() / 4
	const maxInt = int64(^uint(0) >> 1)
	if int64(quarter) < 0 || int64(quarter) > maxInt {
		return int(maxInt)
	}
	if quarter < 1 {
		return 1
	}
	return int(quarter)
}

// Kernel0 implements Variant.  This kernel does NOT consume Cfg.Source:
// the variant exists for graphs whose edge vectors exceed RAM, so its
// Kronecker path streams edges straight to the sink in bounded memory —
// drawing from the service's cache would materialize (and then pin) the
// full edge list, silently un-out-of-coring the out-of-core variant.
func (extsortVariant) Kernel0(r *Run) error {
	sink, err := fastio.NewStripedSink(r.FS, "k0", r.Codec(), r.Cfg.NFiles, int64(r.Cfg.M()))
	if err != nil {
		return err
	}
	switch {
	case r.Cfg.Generator == GenKronecker:
		kcfg := kronecker.New(r.Cfg.Scale, r.Cfg.Seed)
		kcfg.EdgeFactor = r.Cfg.EdgeFactor
		if err := kronecker.GenerateTo(kcfg, sink); err != nil {
			sink.Close()
			return err
		}
	default:
		// The alternative generators are in-memory; stream their output.
		gen, err := generate(r.Cfg)
		if err != nil {
			sink.Close()
			return err
		}
		l, err := gen.Generate()
		if err != nil {
			sink.Close()
			return err
		}
		if err := fastio.WriteEdges(sink, l, 0, l.Len()); err != nil {
			sink.Close()
			return err
		}
	}
	return sink.Close()
}

// Kernel1 implements Variant.
func (v extsortVariant) Kernel1(r *Run) error {
	src, err := fastio.NewStripedSource(r.FS, "k0", r.Codec())
	if err != nil {
		return err
	}
	defer src.Close()
	sink, err := fastio.NewStripedSink(r.FS, "k1", r.Codec(), r.Cfg.NFiles, int64(r.Cfg.M()))
	if err != nil {
		return err
	}
	stats, err := xsort.External(src, sink, xsort.ExternalConfig{
		FS:        r.FS,
		TmpPrefix: "tmp/extsort",
		RunEdges:  v.runEdges(r),
		ByUV:      r.Cfg.SortEndVertices,
		Codec:     r.SpillCodec(),
	})
	if err != nil {
		sink.Close()
		return err
	}
	r.Spill = &SpillStats{
		Codec:        stats.Codec,
		Runs:         stats.Runs,
		BytesWritten: stats.Spill.BytesWritten,
		BytesRead:    stats.Spill.BytesRead,
	}
	return sink.Close()
}

// Kernel2 implements Variant.
func (extsortVariant) Kernel2(r *Run) error {
	src, err := fastio.NewStripedSource(r.FS, "k1", r.Codec())
	if err != nil {
		return err
	}
	defer src.Close()
	n := int(r.Cfg.N())
	b, err := sparse.NewSortedBuilder(n)
	if err != nil {
		return err
	}
	// Stream in bounded batches through the bulk read path; the builder
	// consumes each batch and the buffer resets, so memory stays O(batch).
	edges := 0
	buf := edge.NewList(0)
	for {
		buf.Reset()
		if _, err := fastio.ReadEdges(src, buf, 8192); err != nil {
			if err == io.EOF {
				break
			}
			return err
		}
		for i := 0; i < buf.Len(); i++ {
			if err := b.Add(buf.U[i], buf.V[i]); err != nil {
				return fmt.Errorf("kernel 2 stream: %w", err)
			}
		}
		edges += buf.Len()
	}
	a := b.Finish()
	r.MatrixMass = a.SumValues()
	if r.MatrixMass != float64(edges) {
		return fmt.Errorf("kernel 2: matrix mass %v != streamed edges %d", r.MatrixMass, edges)
	}
	ApplyKernel2Filter(a)
	r.Matrix = a
	return nil
}

// Kernel3 implements Variant.
func (extsortVariant) Kernel3(r *Run) error {
	eng, err := pagerank.NewGatherEngine(r.Matrix, r.Cfg.PageRank)
	if err != nil {
		return err
	}
	res, err := eng.RunContext(r.Context())
	if err != nil {
		return err
	}
	r.Rank = res
	return nil
}
