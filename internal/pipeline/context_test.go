package pipeline

// Tests for the context/session plumbing the API redesign added to the
// pipeline: cancellation via ExecuteKernelsContext, the Progress event
// stream (including the rank-0-only iteration reporting of the
// goroutine-rank variants), and the kernel-0 Source hook's metering.

import (
	"context"
	"errors"
	"testing"

	"repro/internal/edge"
	"repro/internal/pagerank"
)

func TestExecuteContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExecuteContext(ctx, smallCfg("csr")); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestProgressIterationEventsOncePerIteration pins the single-observer
// contract: the distgo variant runs p rank replicas in lockstep, but the
// iteration stream must tick once per iteration (rank 0 reports), not
// once per rank per iteration.
func TestProgressIterationEventsOncePerIteration(t *testing.T) {
	for _, variant := range []string{"csr", "dist", "distgo"} {
		iters := 0
		var kernelEvents []Event
		cfg := smallCfg(variant)
		cfg.Progress = func(ev Event) {
			switch ev.Kind {
			case EventIteration:
				iters++
			default:
				kernelEvents = append(kernelEvents, ev)
			}
		}
		res, err := Execute(cfg)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if iters != res.RankIterations {
			t.Fatalf("%s: %d iteration events for %d iterations", variant, iters, res.RankIterations)
		}
		if len(kernelEvents) != 8 { // 4 kernels × (start + end)
			t.Fatalf("%s: want 8 kernel events, got %d", variant, len(kernelEvents))
		}
	}
}

// TestProgressComposesWithPageRankHook pins that Config.Progress wraps —
// rather than replaces — a caller-supplied pagerank per-iteration hook.
func TestProgressComposesWithPageRankHook(t *testing.T) {
	inner, events := 0, 0
	cfg := smallCfg("csr")
	cfg.PageRank.Progress = func(int) { inner++ }
	cfg.Progress = func(ev Event) {
		if ev.Kind == EventIteration {
			events++
		}
	}
	res, err := Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if inner != res.RankIterations || events != res.RankIterations {
		t.Fatalf("hooks fired %d/%d times, want %d each", inner, events, res.RankIterations)
	}
}

// TestSourceHookFeedsKernel0 pins the cache seam: a Source-supplied list
// must flow through the whole pipeline unchanged and be metered in
// GenCache, for serial and distributed variants alike.
func TestSourceHookFeedsKernel0(t *testing.T) {
	baseline, err := Execute(smallCfg("csr"))
	if err != nil {
		t.Fatal(err)
	}
	shared, err := GenerateEdges(smallCfg("csr"))
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []string{"csr", "coo", "columnar", "graphblas", "dist", "distgo", "distext"} {
		calls := 0
		cfg := smallCfg(variant)
		cfg.Source = func(Config) (*edge.List, bool, error) {
			calls++
			return shared, true, nil
		}
		res, err := Execute(cfg)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if calls != 1 {
			t.Fatalf("%s: Source called %d times", variant, calls)
		}
		if res.GenCache == nil || res.GenCache.Hits != 1 || res.GenCache.Misses != 0 {
			t.Fatalf("%s: GenCache = %+v, want 1 hit", variant, res.GenCache)
		}
		if res.NNZ != baseline.NNZ {
			t.Fatalf("%s: NNZ %d != baseline %d — sourced list diverged", variant, res.NNZ, baseline.NNZ)
		}
	}
}

// TestSourceBypassVariants pins the two deliberate cache bypasses: the
// parallel variant's jump-stream generator and the extsort variant's
// streaming (bounded-memory) kernel 0 must ignore Cfg.Source.
func TestSourceBypassVariants(t *testing.T) {
	for _, variant := range []string{"parallel", "extsort"} {
		cfg := smallCfg(variant)
		cfg.Source = func(Config) (*edge.List, bool, error) {
			t.Fatalf("%s: Source must not be consulted", variant)
			return nil, false, nil
		}
		res, err := Execute(cfg)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if res.GenCache != nil {
			t.Fatalf("%s: GenCache should stay nil on bypass, got %+v", variant, res.GenCache)
		}
	}
}

// TestResultConfigDropsClosures pins that the echoed Config does not
// retain the run's Source/Progress closures.
func TestResultConfigDropsClosures(t *testing.T) {
	cfg := smallCfg("csr")
	cfg.Progress = func(Event) {}
	shared, err := GenerateEdges(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Source = func(Config) (*edge.List, bool, error) { return shared, true, nil }
	res, err := Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config.Source != nil || res.Config.Progress != nil {
		t.Fatal("Result.Config retains the run's closures")
	}
}

// TestSourceErrorSurfaces pins the failure path.
func TestSourceErrorSurfaces(t *testing.T) {
	cfg := smallCfg("csr")
	boom := errors.New("generator down")
	cfg.Source = func(Config) (*edge.List, bool, error) { return nil, false, boom }
	if _, err := Execute(cfg); !errors.Is(err, boom) {
		t.Fatalf("want the source error, got %v", err)
	}
}

// TestCancelBetweenKernels pins the kernel-boundary cancellation point:
// a context cancelled during kernel 1 stops the run before kernel 2.
func TestCancelBetweenKernels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ran := map[Kernel]bool{}
	cfg := smallCfg("csr")
	cfg.Progress = func(ev Event) {
		if ev.Kind == EventKernelEnd {
			ran[ev.Kernel] = true
			if ev.Kernel == K1Sort {
				cancel()
			}
		}
	}
	_, err := ExecuteContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if !ran[K1Sort] || ran[K2Filter] {
		t.Fatalf("cancellation boundary wrong: ran = %v", ran)
	}
}

// TestCancelMidK3ReportsPartialIterations pins that the serial engines'
// per-iteration check aborts between iterations, not at the end.
func TestCancelMidK3ReportsPartialIterations(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	iters := 0
	cfg := smallCfg("csr")
	cfg.PageRank = pagerank.Options{Iterations: 100000}
	cfg.Progress = func(ev Event) {
		if ev.Kind == EventIteration {
			iters = ev.Iteration
			if ev.Iteration == 5 {
				cancel()
			}
		}
	}
	_, err := ExecuteContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if iters < 5 || iters > 100 {
		t.Fatalf("cancellation was not prompt: saw %d iterations", iters)
	}
}
