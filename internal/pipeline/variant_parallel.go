package pipeline

// The parallel variant is the paper's "future parallel implementation":
// kernel 0 generates with independent per-worker random streams and writes
// stripes concurrently, kernel 1 reads stripes concurrently and runs the
// parallel merge sort, and kernel 3 uses the row-partitioned parallel
// PageRank engine.  On a single-CPU host it degenerates gracefully to the
// serial code paths.

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/edge"
	"repro/internal/fastio"
	"repro/internal/kronecker"
	"repro/internal/pagerank"
	"repro/internal/sparse"
	"repro/internal/vfs"
	"repro/internal/xsort"
)

func init() { Register(parallelVariant{}) }

type parallelVariant struct{}

// Name implements Variant.
func (parallelVariant) Name() string { return "parallel" }

// Description implements Variant.
func (parallelVariant) Description() string {
	return "goroutine-parallel generation, striped I/O, merge sort and row-partitioned PageRank on a persistent worker team (the paper's parallel decomposition, allocation-free in steady state)"
}

// CacheTraits implements the optional staged-cache interface: this
// variant participates in no stage.  Its per-worker jump streams draw
// a different edge multiset than the serial generator — and a
// different one per worker count (kronecker.GenerateParallel is
// deterministic only for a fixed (cfg, workers)) — so none of its
// artifacts, the kernel-2 matrix included, have the identity GraphKey
// captures.  Serving a serial artifact here (or depositing this
// variant's) would silently change documented output.
func (parallelVariant) CacheTraits() CacheTraits {
	return CacheTraits{}
}

func (parallelVariant) workers(r *Run) int {
	if r.Cfg.Workers > 0 {
		return r.Cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Kernel0 implements Variant.  For the Kronecker generator, workers draw
// from independent jump-derived streams without communication, exactly the
// scalability property the paper highlights in the Graph500 generator.
// Because those streams produce a (deliberately) different edge order
// than the serial generator, this kernel does NOT consume Cfg.Source:
// the service's shared cache holds the serial generation, and serving it
// here would silently change this variant's documented output.
func (v parallelVariant) Kernel0(r *Run) error {
	var l *edge.List
	var err error
	if r.Cfg.Generator == GenKronecker {
		kcfg := kronecker.New(r.Cfg.Scale, r.Cfg.Seed)
		kcfg.EdgeFactor = r.Cfg.EdgeFactor
		l, err = kronecker.GenerateParallel(kcfg, v.workers(r))
	} else {
		var gen interface {
			Generate() (*edge.List, error)
		}
		gen, err = generate(r.Cfg)
		if err != nil {
			return err
		}
		l, err = gen.Generate()
	}
	if err != nil {
		return err
	}
	return parallelWriteStriped(r.FS, "k0", r.Codec(), r.Cfg.NFiles, l)
}

// Kernel1 implements Variant.
func (v parallelVariant) Kernel1(r *Run) error {
	l, err := parallelReadStriped(r.FS, "k0", r.Codec())
	if err != nil {
		return err
	}
	if r.Cfg.SortEndVertices {
		xsort.RadixByUV(l) // parallel (u,v) sort not implemented; radix is already the fast path
	} else {
		xsort.ParallelByU(l, v.workers(r))
	}
	return parallelWriteStriped(r.FS, "k1", r.Codec(), r.Cfg.NFiles, l)
}

// Kernel2 implements Variant.
func (parallelVariant) Kernel2(r *Run) error {
	l, err := parallelReadStriped(r.FS, "k1", r.Codec())
	if err != nil {
		return err
	}
	a, err := sparse.FromSortedEdges(l, int(r.Cfg.N()))
	if err != nil {
		return err
	}
	r.MatrixMass = a.SumValues()
	ApplyKernel2Filter(a)
	r.Matrix = a
	return nil
}

// Kernel3 implements Variant.
func (v parallelVariant) Kernel3(r *Run) error {
	opt := r.Cfg.PageRank
	opt.Workers = v.workers(r)
	pe, err := pagerank.NewParallelEngine(r.Matrix, opt)
	if err != nil {
		return err
	}
	defer pe.Close()
	res, err := pe.RunContext(r.Context())
	if err != nil {
		return err
	}
	r.Rank = res
	return nil
}

// parallelWriteStriped writes each stripe in its own goroutine, the
// file-per-processor output pattern of parallel Graph500 generators.
func parallelWriteStriped(fs vfs.FS, prefix string, codec fastio.Codec, nfiles int, l *edge.List) error {
	if nfiles < 1 {
		return fmt.Errorf("pipeline: nfiles = %d, want >= 1", nfiles)
	}
	m := l.Len()
	errs := make([]error, nfiles)
	var wg sync.WaitGroup
	for i := 0; i < nfiles; i++ {
		lo := i * m / nfiles
		hi := (i + 1) * m / nfiles
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			errs[i] = writeStripeRange(fs, fastio.StripeName(prefix, codec, i), codec, l, lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func writeStripeRange(fs vfs.FS, name string, codec fastio.Codec, l *edge.List, lo, hi int) error {
	w, err := fs.Create(name)
	if err != nil {
		return err
	}
	sink := codec.NewWriter(w)
	if err := fastio.WriteEdges(sink, l, lo, hi); err != nil {
		w.Close()
		return err
	}
	if err := sink.Flush(); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// parallelReadStriped reads every stripe concurrently into per-stripe lists
// and concatenates them in stripe order.
func parallelReadStriped(fs vfs.FS, prefix string, codec fastio.Codec) (*edge.List, error) {
	names, err := fastio.StripeNames(fs, prefix, codec)
	if err != nil {
		return nil, err
	}
	parts := make([]*edge.List, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			parts[i], errs[i] = readOneStripeList(fs, name, codec)
		}(i, name)
	}
	wg.Wait()
	total := 0
	for i := range parts {
		if errs[i] != nil {
			return nil, errs[i]
		}
		total += parts[i].Len()
	}
	out := edge.NewList(total)
	for _, p := range parts {
		out.AppendList(p)
	}
	return out, nil
}

func readOneStripeList(fs vfs.FS, name string, codec fastio.Codec) (*edge.List, error) {
	r, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	src := codec.NewReader(r)
	l := edge.NewList(0)
	for {
		if _, err := fastio.ReadEdges(src, l, readStripeChunk); err != nil {
			if err == io.EOF {
				return l, nil
			}
			return nil, err
		}
	}
}

// readStripeChunk is the bulk-read batch size of the parallel stripe reader.
const readStripeChunk = 16 << 10
