package pipeline

import (
	"math"
	"strings"
	"testing"

	"repro/internal/pagerank"
	"repro/internal/sparse"
	"repro/internal/vfs"
)

// smallCfg returns a quick configuration for variant v.
func smallCfg(v string) Config {
	return Config{Scale: 7, EdgeFactor: 8, Seed: 42, NFiles: 3, Variant: v, KeepRank: true}
}

func TestVariantRegistryComplete(t *testing.T) {
	want := []string{"columnar", "coo", "csr", "dist", "distext", "distgo", "extsort", "graphblas", "parallel"}
	got := VariantNames()
	if len(got) != len(want) {
		t.Fatalf("variants = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("variants = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		v, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if v.Name() != name || v.Description() == "" {
			t.Errorf("variant %q: bad Name/Description", name)
		}
	}
	if _, err := Lookup("fortran"); err == nil {
		t.Error("Lookup of unknown variant succeeded")
	}
}

func TestKernelString(t *testing.T) {
	if K0Generate.String() != "kernel0-generate" || K3PageRank.String() != "kernel3-pagerank" {
		t.Error("kernel names wrong")
	}
	if !strings.Contains(Kernel(9).String(), "?") {
		t.Error("unknown kernel should stringify defensively")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Scale: 0},
		{Scale: 99},
		{Scale: 8, Variant: "nope"},
		{Scale: 8, Generator: "mystery"},
		{Scale: 8, PageRank: pagerank.Options{Damping: 7}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := (Config{Scale: 8}).Validate(); err != nil {
		t.Errorf("minimal config rejected: %v", err)
	}
}

func TestConfigDerived(t *testing.T) {
	c := Config{Scale: 10}
	if c.N() != 1024 {
		t.Errorf("N = %d", c.N())
	}
	if c.M() != 16384 {
		t.Errorf("M = %d (default edge factor must be 16)", c.M())
	}
}

func TestFullPipelineEveryVariant(t *testing.T) {
	for _, name := range VariantNames() {
		t.Run(name, func(t *testing.T) {
			res, err := Execute(smallCfg(name))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Kernels) != 4 {
				t.Fatalf("ran %d kernels", len(res.Kernels))
			}
			cfg := res.Config
			m := cfg.M()
			for _, kr := range res.Kernels {
				wantEdges := m
				if kr.Kernel == K3PageRank {
					wantEdges = 20 * m
				}
				if kr.Edges != wantEdges {
					t.Errorf("%v: edges = %d, want %d", kr.Kernel, kr.Edges, wantEdges)
				}
				if kr.EdgesPerSecond <= 0 {
					t.Errorf("%v: rate = %v", kr.Kernel, kr.EdgesPerSecond)
				}
			}
			// Paper invariant: matrix mass before filtering equals M.
			if res.MatrixMass != float64(m) {
				t.Errorf("matrix mass %v, want %d", res.MatrixMass, m)
			}
			if res.NNZ <= 0 || uint64(res.NNZ) >= m {
				t.Errorf("NNZ = %d, want (0, M)", res.NNZ)
			}
			if res.RankIterations != 20 {
				t.Errorf("rank iterations = %d", res.RankIterations)
			}
			if len(res.Rank) != int(cfg.N()) {
				t.Fatalf("rank length %d", len(res.Rank))
			}
			for i, x := range res.Rank {
				if x < 0 || math.IsNaN(x) {
					t.Fatalf("rank[%d] = %v", i, x)
				}
			}
		})
	}
}

// serialVariants share the serial Kronecker generation and therefore must
// produce the exact same filtered matrix and (up to FP reassociation) the
// same rank vector.
var serialVariants = []string{"csr", "coo", "columnar", "graphblas", "extsort"}

func TestSerialVariantsAgreeExactly(t *testing.T) {
	ranks := map[string][]float64{}
	nnz := map[string]int{}
	for _, name := range serialVariants {
		res, err := Execute(smallCfg(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ranks[name] = res.Rank
		nnz[name] = res.NNZ
	}
	ref := ranks["csr"]
	for _, name := range serialVariants[1:] {
		if nnz[name] != nnz["csr"] {
			t.Errorf("%s NNZ %d != csr %d", name, nnz[name], nnz["csr"])
		}
		for i := range ref {
			if math.Abs(ranks[name][i]-ref[i]) > 1e-9 {
				t.Fatalf("%s rank[%d] = %v, csr = %v", name, i, ranks[name][i], ref[i])
			}
		}
	}
}

func TestKernelsRunIndependently(t *testing.T) {
	// The paper: kernels "can be run together or independently".  Run each
	// kernel in its own ExecuteKernels call against a shared FS.
	fs := vfs.NewMem()
	cfg := smallCfg("csr")
	cfg.FS = fs
	for _, k := range []Kernel{K0Generate, K1Sort, K2Filter} {
		if _, err := ExecuteKernels(cfg, []Kernel{k}); err != nil {
			t.Fatalf("kernel %v standalone: %v", k, err)
		}
	}
	// K3 alone needs K2's in-memory matrix, so run K2+K3 together.
	res, err := ExecuteKernels(cfg, []Kernel{K2Filter, K3PageRank})
	if err != nil {
		t.Fatal(err)
	}
	if res.KernelResultFor(K3PageRank) == nil {
		t.Error("missing K3 result")
	}
}

func TestKernel1WithoutKernel0Fails(t *testing.T) {
	cfg := smallCfg("csr")
	cfg.FS = vfs.NewMem()
	if _, err := ExecuteKernels(cfg, []Kernel{K1Sort}); err == nil {
		t.Error("K1 without K0 artifacts should fail")
	}
}

func TestSortedEndVerticesAblation(t *testing.T) {
	for _, name := range []string{"csr", "coo", "extsort"} {
		cfg := smallCfg(name)
		cfg.SortEndVertices = true
		res, err := Execute(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Same matrix regardless of secondary sort order.
		base, err := Execute(smallCfg(name))
		if err != nil {
			t.Fatal(err)
		}
		if res.NNZ != base.NNZ {
			t.Errorf("%s: NNZ changed with SortEndVertices: %d vs %d", name, res.NNZ, base.NNZ)
		}
	}
}

func TestAlternativeGenerators(t *testing.T) {
	for _, gen := range []GeneratorKind{GenPPL, GenER} {
		for _, name := range []string{"csr", "extsort", "parallel"} {
			cfg := smallCfg(name)
			cfg.Generator = gen
			res, err := Execute(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", gen, name, err)
			}
			if res.MatrixMass != float64(cfg.M()) {
				t.Errorf("%s/%s: mass %v != M %d", gen, name, res.MatrixMass, cfg.M())
			}
		}
	}
}

func TestRankMatchesEigenEndToEnd(t *testing.T) {
	// Full pipeline then the paper's dense validation at small scale.
	cfg := Config{Scale: 6, EdgeFactor: 8, Seed: 7, Variant: "csr", KeepRank: true,
		PageRank: pagerank.Options{Iterations: 150}}
	fs := vfs.NewMem()
	cfg.FS = fs
	res, err := Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the matrix exactly as K2 left it for the eigen check.
	runRes, err := ExecuteKernels(cfg, []Kernel{K2Filter})
	if err != nil {
		t.Fatal(err)
	}
	_ = runRes
	// Reconstruct via a fresh run to get the matrix handle.
	v, _ := Lookup("csr")
	run := &Run{Cfg: cfg.withDefaults(), FS: fs}
	if err := v.Kernel2(run); err != nil {
		t.Fatal(err)
	}
	diff, err := pagerank.CompareWithEigen(res.Rank, run.Matrix, pagerank.EigenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if diff > 1e-6 {
		t.Errorf("end-to-end rank differs from dominant eigenvector by %v", diff)
	}
}

func TestGraphBLASKernel3AcceptsForeignMatrix(t *testing.T) {
	// Mixed-kernel ablation: csr does K0-K2, graphblas does K3.
	fs := vfs.NewMem()
	cfg := smallCfg("csr")
	cfg.FS = fs
	csr, _ := Lookup("csr")
	gb, _ := Lookup("graphblas")
	run := &Run{Cfg: cfg.withDefaults(), FS: fs}
	for _, step := range []func(*Run) error{csr.Kernel0, csr.Kernel1, csr.Kernel2, gb.Kernel3} {
		if err := step(run); err != nil {
			t.Fatal(err)
		}
	}
	if run.Rank == nil || len(run.Rank.Rank) != int(cfg.N()) {
		t.Fatal("mixed-variant pipeline produced no rank")
	}
}

func TestApplyKernel2FilterSemantics(t *testing.T) {
	// Hand graph: vertex 3 is the super-node (din 3), vertex 4 is a leaf
	// target (din 1).
	rows := []int{0, 1, 2, 0, 1}
	cols := []int{3, 3, 3, 4, 2}
	vals := []float64{1, 1, 1, 1, 1}
	a, err := sparse.FromTriplets(5, rows, cols, vals)
	if err != nil {
		t.Fatal(err)
	}
	st := ApplyKernel2Filter(a)
	if st.MaxInDegree != 3 {
		t.Errorf("MaxInDegree = %v", st.MaxInDegree)
	}
	if st.SuperNodeColumns != 1 {
		t.Errorf("SuperNodeColumns = %d", st.SuperNodeColumns)
	}
	// Columns with din == 1: vertex 4 (din 1) and vertex 2 (din 1).
	if st.LeafColumns != 2 {
		t.Errorf("LeafColumns = %d", st.LeafColumns)
	}
	if st.EntriesZeroed != 5 {
		t.Errorf("EntriesZeroed = %d", st.EntriesZeroed)
	}
	if a.NNZ() != 0 {
		t.Errorf("this graph should be fully filtered; NNZ = %d", a.NNZ())
	}
}

func TestFilterNormalizesRows(t *testing.T) {
	// Graph with survivors: two parallel targets so din == 2 columns stay.
	rows := []int{0, 1, 0, 1, 2}
	cols := []int{2, 2, 3, 3, 3}
	a, _ := sparse.FromTriplets(4, rows, cols, []float64{1, 1, 1, 1, 1})
	ApplyKernel2Filter(a)
	// din: col2=2, col3=3(max→zeroed). Survivors: column 2.
	dout := a.OutDegrees()
	for i, d := range dout {
		if d != 0 && math.Abs(d-1) > 1e-12 {
			t.Errorf("row %d sum %v after normalize", i, d)
		}
	}
}

func TestSizeTablePaperValues(t *testing.T) {
	rows := SizeTable(PaperScales, 0, 0)
	want := []struct {
		vertices, edges, mem string
	}{
		{"65K", "1M", "25MB"},
		{"131K", "2M", "50MB"},
		{"262K", "4M", "100MB"},
		{"524K", "8M", "201MB"},
		{"1M", "16M", "402MB"},
		{"2M", "33M", "805MB"},
		{"4M", "67M", "1.6GB"},
	}
	for i, w := range want {
		r := rows[i]
		if HumanCount(r.MaxVertices) != w.vertices {
			t.Errorf("scale %d vertices = %s, want %s", r.Scale, HumanCount(r.MaxVertices), w.vertices)
		}
		if HumanCount(r.MaxEdges) != w.edges {
			t.Errorf("scale %d edges = %s, want %s", r.Scale, HumanCount(r.MaxEdges), w.edges)
		}
		if HumanBytes(r.MemoryBytes) != w.mem {
			t.Errorf("scale %d memory = %s, want %s", r.Scale, HumanBytes(r.MemoryBytes), w.mem)
		}
	}
}

func TestSizeTableStatedBytes(t *testing.T) {
	rows := SizeTable([]int{22}, 16, BytesPerEdgeStated)
	if rows[0].MemoryBytes != 67108864*16 {
		t.Errorf("stated-bytes memory = %d", rows[0].MemoryBytes)
	}
}

func TestHumanFormatsSmall(t *testing.T) {
	if HumanBytes(512) != "512B" || HumanBytes(2048) != "2KB" {
		t.Error("HumanBytes small values")
	}
	if HumanCount(999) != "999" || HumanCount(2e9) != "2G" {
		t.Error("HumanCount extremes")
	}
}

func TestExtsortSmallRunBuffer(t *testing.T) {
	// Force many external runs; results must match the in-memory variant.
	cfg := smallCfg("extsort")
	cfg.RunEdges = 100 // 1024 edges → ~10 runs
	res, err := Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Execute(smallCfg("csr"))
	if err != nil {
		t.Fatal(err)
	}
	if res.NNZ != ref.NNZ {
		t.Errorf("extsort NNZ %d != csr %d", res.NNZ, ref.NNZ)
	}
	for i := range ref.Rank {
		if math.Abs(res.Rank[i]-ref.Rank[i]) > 1e-9 {
			t.Fatalf("extsort rank diverges at %d", i)
		}
	}
}

func TestParallelVariantInvariants(t *testing.T) {
	cfg := smallCfg("parallel")
	cfg.Workers = 3
	res, err := Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MatrixMass != float64(cfg.M()) {
		t.Errorf("parallel mass %v != M", res.MatrixMass)
	}
	// Deterministic for fixed worker count.
	res2, err := Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rank {
		if res.Rank[i] != res2.Rank[i] {
			t.Fatal("parallel variant not reproducible for fixed worker count")
		}
	}
}

func TestDiskBackedPipeline(t *testing.T) {
	// The realistic storage path: everything through an OS temp dir.
	dir, err := vfs.NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg("csr")
	cfg.FS = dir
	res, err := Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MatrixMass != float64(cfg.M()) {
		t.Errorf("disk-backed mass %v", res.MatrixMass)
	}
	names, err := dir.List()
	if err != nil {
		t.Fatal(err)
	}
	// k0 and k1 stripes must exist on disk.
	var k0, k1 int
	for _, n := range names {
		if strings.HasPrefix(n, "k0-") {
			k0++
		}
		if strings.HasPrefix(n, "k1-") {
			k1++
		}
	}
	if k0 != 3 || k1 != 3 {
		t.Errorf("disk files: k0=%d k1=%d, want 3 each (%v)", k0, k1, names)
	}
}

func TestKeepRankFalseDropsVector(t *testing.T) {
	cfg := smallCfg("csr")
	cfg.KeepRank = false
	res, err := Execute(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rank != nil {
		t.Error("rank retained despite KeepRank=false")
	}
	if res.RankIterations != 20 {
		t.Error("iterations not recorded")
	}
}
