package pipeline

// The coo variant is the deliberately straightforward implementation, the
// analogue of the paper's plain-Python code: standard-library text handling
// (fmt/strconv/bufio), the generic comparison sort, a hash-map triplet
// build, and the scatter PageRank engine.  It is the readability baseline
// the optimized variants are differential-tested against.

import (
	"repro/internal/fastio"
	"repro/internal/pagerank"
	"repro/internal/sparse"
	"repro/internal/xsort"
)

func init() { Register(cooVariant{}) }

type cooVariant struct{}

// Name implements Variant.
func (cooVariant) Name() string { return "coo" }

// Description implements Variant.
func (cooVariant) Description() string {
	return "straightforward: strconv/bufio text I/O, comparison sort, map-based triplet build, scatter PageRank (analogue of the paper's Python)"
}

// Kernel0 implements Variant.
func (cooVariant) Kernel0(r *Run) error {
	l, err := sourceEdges(r)
	if err != nil {
		return err
	}
	return fastio.WriteStriped(r.FS, "k0", r.Codec(), r.Cfg.NFiles, l)
}

// Kernel1 implements Variant.
func (cooVariant) Kernel1(r *Run) error {
	l, err := fastio.ReadStriped(r.FS, "k0", r.Codec())
	if err != nil {
		return err
	}
	if r.Cfg.SortEndVertices {
		xsort.ByUV(l)
	} else {
		xsort.ByUStable(l)
	}
	r.SortedOut = l
	return fastio.WriteStriped(r.FS, "k1", r.Codec(), r.Cfg.NFiles, l)
}

// Kernel2 implements Variant.
func (cooVariant) Kernel2(r *Run) error {
	l, err := sortedEdges(r)
	if err != nil {
		return err
	}
	// Hash-map accumulation, dictionary-of-counts style.
	counts := make(map[[2]uint64]float64, l.Len())
	for i := 0; i < l.Len(); i++ {
		counts[[2]uint64{l.U[i], l.V[i]}]++
	}
	rows := make([]int, 0, len(counts))
	cols := make([]int, 0, len(counts))
	vals := make([]float64, 0, len(counts))
	for k, c := range counts {
		rows = append(rows, int(k[0]))
		cols = append(cols, int(k[1]))
		vals = append(vals, c)
	}
	a, err := sparse.FromTriplets(int(r.Cfg.N()), rows, cols, vals)
	if err != nil {
		return err
	}
	r.MatrixMass = a.SumValues()
	ApplyKernel2Filter(a)
	r.Matrix = a
	return nil
}

// Kernel3 implements Variant.
func (cooVariant) Kernel3(r *Run) error {
	eng, err := pagerank.NewScatterEngine(r.Matrix, r.Cfg.PageRank)
	if err != nil {
		return err
	}
	res, err := eng.RunContext(r.Context())
	if err != nil {
		return err
	}
	r.Rank = res
	return nil
}
