package pipeline

import (
	"errors"
	"io"
	"maps"
	"math"
	"slices"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/pagerank"
	"repro/internal/sparse"
	"repro/internal/vfs"
	"repro/internal/xrand"
)

// k2Matrix builds a filtered matrix through the csr variant for the tests.
func k2Matrix(t *testing.T, cfg Config) *sparse.CSR {
	t.Helper()
	cfg = cfg.withDefaults()
	v, err := Lookup("csr")
	if err != nil {
		t.Fatal(err)
	}
	run := &Run{Cfg: cfg, FS: cfg.FS}
	for _, step := range []func(*Run) error{v.Kernel0, v.Kernel1, v.Kernel2} {
		if err := step(run); err != nil {
			t.Fatal(err)
		}
	}
	return run.Matrix
}

func TestCheckpointRoundTrip(t *testing.T) {
	a := k2Matrix(t, Config{Scale: 7, EdgeFactor: 8, Seed: 6})
	partial, err := pagerank.Gather(a, pagerank.Options{Seed: 6, Iterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	fs := vfs.NewMem()
	cp := &Checkpoint{Matrix: a, Rank: partial.Rank, CompletedIterations: 8, Damping: 0.85}
	if err := Save(fs, "ck/run1", cp); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(fs, "ck/run1")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.CompletedIterations != 8 || loaded.Damping != 0.85 {
		t.Errorf("metadata: %+v", loaded)
	}
	if loaded.Matrix.NNZ() != a.NNZ() {
		t.Error("matrix changed")
	}
	for i := range partial.Rank {
		if loaded.Rank[i] != partial.Rank[i] {
			t.Fatal("rank vector changed")
		}
	}
}

func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	a := k2Matrix(t, Config{Scale: 7, EdgeFactor: 8, Seed: 9})
	// Uninterrupted 20 iterations.
	full, err := pagerank.Gather(a, pagerank.Options{Seed: 9, Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	// 8 iterations, checkpoint through storage, resume to 20.
	partial, err := pagerank.Gather(a, pagerank.Options{Seed: 9, Iterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	fs := vfs.NewMem()
	if err := Save(fs, "ck", &Checkpoint{Matrix: a, Rank: partial.Rank, CompletedIterations: 8, Damping: 0.85}); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(fs, "ck")
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(loaded, 20, pagerank.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Iterations != 20 {
		t.Errorf("resumed total iterations %d", resumed.Iterations)
	}
	for i := range full.Rank {
		if full.Rank[i] != resumed.Rank[i] {
			t.Fatalf("resume diverges at %d: %v vs %v", i, resumed.Rank[i], full.Rank[i])
		}
	}
}

func TestCheckpointResumeAlreadyComplete(t *testing.T) {
	a := k2Matrix(t, Config{Scale: 6, EdgeFactor: 4, Seed: 1})
	r := pagerank.InitVector(a.N, 1)
	cp := &Checkpoint{Matrix: a, Rank: r, CompletedIterations: 20, Damping: 0.85}
	res, err := Resume(cp, 20, pagerank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 20 || &res.Rank[0] != &r[0] {
		t.Error("already-complete resume should return the checkpoint state")
	}
}

func TestCheckpointResumeDampingMismatch(t *testing.T) {
	a := k2Matrix(t, Config{Scale: 6, EdgeFactor: 4, Seed: 2})
	cp := &Checkpoint{Matrix: a, Rank: pagerank.InitVector(a.N, 1), CompletedIterations: 5, Damping: 0.85}
	if _, err := Resume(cp, 20, pagerank.Options{Damping: 0.9}); err == nil {
		t.Error("damping mismatch accepted")
	}
}

func TestCheckpointSaveRejectsMalformed(t *testing.T) {
	fs := vfs.NewMem()
	if err := Save(fs, "bad", &Checkpoint{}); err == nil {
		t.Error("nil matrix accepted")
	}
	a := k2Matrix(t, Config{Scale: 6, EdgeFactor: 4, Seed: 3})
	if err := Save(fs, "bad", &Checkpoint{Matrix: a, Rank: []float64{1}}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestCheckpointLoadDetectsCorruption(t *testing.T) {
	a := k2Matrix(t, Config{Scale: 6, EdgeFactor: 4, Seed: 4})
	fs := vfs.NewMem()
	cp := &Checkpoint{Matrix: a, Rank: pagerank.InitVector(a.N, 1), CompletedIterations: 3, Damping: 0.85}
	if err := Save(fs, "c", cp); err != nil {
		t.Fatal(err)
	}
	// Corrupt the state file.
	r, _ := fs.Open("c.state")
	data := make([]byte, 0)
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		data = append(data, buf[:n]...)
		if err != nil {
			break
		}
	}
	r.Close()
	data[len(data)/2] ^= 0xFF
	w, _ := fs.Create("c.state")
	w.Write(data)
	w.Close()
	if _, err := Load(fs, "c"); err == nil {
		t.Error("corrupted state accepted")
	}
	// Missing files.
	if _, err := Load(fs, "absent"); err == nil {
		t.Error("missing checkpoint accepted")
	}
}

func TestCheckpointResumeFromRandomMidpoints(t *testing.T) {
	// Property: for any split k, run(k) + resume(20-k) == run(20).
	a := k2Matrix(t, Config{Scale: 6, EdgeFactor: 8, Seed: 12})
	full, err := pagerank.Gather(a, pagerank.Options{Seed: 12, Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	g := xrand.New(5)
	for trial := 0; trial < 5; trial++ {
		k := 1 + g.Intn(19)
		partial, err := pagerank.Gather(a, pagerank.Options{Seed: 12, Iterations: k})
		if err != nil {
			t.Fatal(err)
		}
		cp := &Checkpoint{Matrix: a, Rank: partial.Rank, CompletedIterations: k, Damping: 0.85}
		resumed, err := Resume(cp, 20, pagerank.Options{Seed: 12})
		if err != nil {
			t.Fatal(err)
		}
		for i := range full.Rank {
			if math.Abs(full.Rank[i]-resumed.Rank[i]) > 1e-15 {
				t.Fatalf("split at %d diverges at component %d", k, i)
			}
		}
	}
}

// TestCheckpointLoadRejectsTruncation cuts the state file at every
// region boundary and inside each region: Load must fail with an error
// naming the truncated section, never a bare unexpected-EOF and never a
// zero-filled vector silently accepted.
func TestCheckpointLoadRejectsTruncation(t *testing.T) {
	a := k2Matrix(t, Config{Scale: 6, EdgeFactor: 4, Seed: 4})
	fs := vfs.NewMem()
	cp := &Checkpoint{Matrix: a, Rank: pagerank.InitVector(a.N, 1), CompletedIterations: 3, Damping: 0.85}
	if err := Save(fs, "c", cp); err != nil {
		t.Fatal(err)
	}
	full := readAll(t, fs, "c.state")
	const header = 4 + 8 + 8 + 8
	cuts := map[string]int{
		"empty":            0,
		"mid-magic":        2,
		"mid-header":       header - 3,
		"header-only":      header,
		"mid-rank-vector":  header + len(cp.Rank)*4,
		"missing-checksum": len(full) - 4,
		"mid-checksum":     len(full) - 2,
	}
	for _, name := range slices.Sorted(maps.Keys(cuts)) {
		cut := cuts[name]
		t.Run(name, func(t *testing.T) {
			w, _ := fs.Create("c.state")
			w.Write(full[:cut])
			w.Close()
			_, err := Load(fs, "c")
			if err == nil {
				t.Fatal("truncated state accepted")
			}
			if !strings.Contains(err.Error(), "truncated") && !strings.Contains(err.Error(), "magic") {
				t.Fatalf("undiagnostic error for cut at %d: %v", cut, err)
			}
		})
	}
	// Trailing garbage is torn in the other direction; reject it too.
	w, _ := fs.Create("c.state")
	w.Write(append(append([]byte{}, full...), 0))
	w.Close()
	if _, err := Load(fs, "c"); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing garbage: %v", err)
	}
}

func readAll(t *testing.T, fs vfs.FS, name string) []byte {
	t.Helper()
	r, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCheckpointSaveAtomic pins the two-phase save: no temp files
// survive a successful Save, and a Save that dies mid-write — injected
// storage failure — leaves the previous checkpoint fully loadable.
func TestCheckpointSaveAtomic(t *testing.T) {
	a := k2Matrix(t, Config{Scale: 6, EdgeFactor: 4, Seed: 4})
	mem := vfs.NewMem()
	cp := &Checkpoint{Matrix: a, Rank: pagerank.InitVector(a.N, 1), CompletedIterations: 3, Damping: 0.85}
	if err := Save(mem, "c", cp); err != nil {
		t.Fatal(err)
	}
	names, err := mem.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			t.Fatalf("temp file %q survived Save", name)
		}
	}
	before := readAll(t, mem, "c.state")

	// A second Save with different content dies mid-write: budget covers
	// the matrix but runs out inside the state payload.
	cp2 := &Checkpoint{Matrix: a, Rank: pagerank.InitVector(a.N, 2), CompletedIterations: 7, Damping: 0.85}
	msize, _ := mem.Size("c.matrix")
	faulty := vfs.NewFaulty(mem, msize+64).PartialWrites()
	if err := Save(faulty, "c", cp2); err == nil {
		t.Fatal("failed save reported success")
	}
	if got := readAll(t, mem, "c.state"); string(got) != string(before) {
		t.Fatal("failed save clobbered the previous state file")
	}
	loaded, err := Load(mem, "c")
	if err != nil {
		t.Fatalf("previous checkpoint unloadable after failed save: %v", err)
	}
	if loaded.CompletedIterations != 3 {
		t.Fatalf("loaded iterations %d, want the previous save's 3", loaded.CompletedIterations)
	}
}

// TestPipelineCheckpointKillAndResume drives the full pipeline with the
// distributed goroutine variant, kills a rank mid-kernel-3, and reruns
// with Resume: the second run restarts from the last committed epoch,
// emits checkpoint events on the Progress stream, and lands bit-for-bit
// on the uninterrupted pipeline's rank vector.
func TestPipelineCheckpointKillAndResume(t *testing.T) {
	base := Config{Scale: 7, EdgeFactor: 8, Seed: 3, Variant: "distgo", KeepRank: true,
		PageRank: pagerank.Options{Seed: 3, Iterations: 10}}
	uninterrupted, err := Execute(base)
	if err != nil {
		t.Fatal(err)
	}

	ckfs := vfs.NewMem()
	kill := base
	kill.Checkpoint = dist.CheckpointSpec{FS: ckfs, Every: 3, Resume: true}
	kill.Fault = &dist.FaultPlan{KillRank: 2, AtIteration: 8}
	var killSaves []int
	kill.Progress = func(ev Event) {
		if ev.Kind == EventCheckpointSaved {
			killSaves = append(killSaves, ev.Iteration)
		}
	}
	if _, err := Execute(kill); !errors.Is(err, dist.ErrFaultInjected) {
		t.Fatalf("killed run: err = %v, want ErrFaultInjected", err)
	}
	if len(killSaves) != 2 || killSaves[0] != 3 || killSaves[1] != 6 {
		t.Fatalf("killed run committed epochs %v, want [3 6]", killSaves)
	}

	resume := base
	resume.Checkpoint = dist.CheckpointSpec{FS: ckfs, Every: 3, Resume: true}
	var restoredFrom, iterEvents []int
	resume.Progress = func(ev Event) {
		switch ev.Kind {
		case EventCheckpointRestored:
			restoredFrom = append(restoredFrom, ev.Iteration)
		case EventIteration:
			iterEvents = append(iterEvents, ev.Iteration)
		}
	}
	res, err := Execute(resume)
	if err != nil {
		t.Fatal(err)
	}
	if len(restoredFrom) != 1 || restoredFrom[0] != 6 {
		t.Fatalf("restore events %v, want [6]", restoredFrom)
	}
	// The resumed segment's iteration events carry global counts.
	if len(iterEvents) != 4 || iterEvents[0] != 7 || iterEvents[3] != 10 {
		t.Fatalf("resumed iteration events %v, want [7 8 9 10]", iterEvents)
	}
	if res.Checkpoint == nil || !res.Checkpoint.Resumed || res.Checkpoint.ResumedFrom != 6 {
		t.Fatalf("result checkpoint record %+v", res.Checkpoint)
	}
	if res.RankIterations != 10 {
		t.Fatalf("resumed pipeline reports %d iterations", res.RankIterations)
	}
	for i := range uninterrupted.Rank {
		if uninterrupted.Rank[i] != res.Rank[i] {
			t.Fatalf("resumed pipeline diverges at component %d", i)
		}
	}
}

// TestPipelineCheckpointRejectsSerialVariant pins validation: the
// checkpoint/fault knobs belong to the variants with a distributed
// kernel 3.
func TestPipelineCheckpointRejectsSerialVariant(t *testing.T) {
	cfg := Config{Scale: 6, Variant: "csr", Checkpoint: dist.CheckpointSpec{FS: vfs.NewMem()}}
	if err := cfg.Validate(); err == nil {
		t.Fatal("serial variant accepted a checkpoint spec")
	}
	cfg = Config{Scale: 6, Variant: "csr", Fault: &dist.FaultPlan{AtIteration: 1}}
	if err := cfg.Validate(); err == nil {
		t.Fatal("serial variant accepted a fault plan")
	}
	for _, v := range []string{"dist", "distgo", "distext"} {
		cfg = Config{Scale: 6, Variant: v, Checkpoint: dist.CheckpointSpec{FS: vfs.NewMem()}}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("variant %s rejected a checkpoint spec: %v", v, err)
		}
	}
}
