package pipeline

import (
	"math"
	"testing"

	"repro/internal/pagerank"
	"repro/internal/sparse"
	"repro/internal/vfs"
	"repro/internal/xrand"
)

// k2Matrix builds a filtered matrix through the csr variant for the tests.
func k2Matrix(t *testing.T, cfg Config) *sparse.CSR {
	t.Helper()
	cfg = cfg.withDefaults()
	v, err := Lookup("csr")
	if err != nil {
		t.Fatal(err)
	}
	run := &Run{Cfg: cfg, FS: cfg.FS}
	for _, step := range []func(*Run) error{v.Kernel0, v.Kernel1, v.Kernel2} {
		if err := step(run); err != nil {
			t.Fatal(err)
		}
	}
	return run.Matrix
}

func TestCheckpointRoundTrip(t *testing.T) {
	a := k2Matrix(t, Config{Scale: 7, EdgeFactor: 8, Seed: 6})
	partial, err := pagerank.Gather(a, pagerank.Options{Seed: 6, Iterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	fs := vfs.NewMem()
	cp := &Checkpoint{Matrix: a, Rank: partial.Rank, CompletedIterations: 8, Damping: 0.85}
	if err := Save(fs, "ck/run1", cp); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(fs, "ck/run1")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.CompletedIterations != 8 || loaded.Damping != 0.85 {
		t.Errorf("metadata: %+v", loaded)
	}
	if loaded.Matrix.NNZ() != a.NNZ() {
		t.Error("matrix changed")
	}
	for i := range partial.Rank {
		if loaded.Rank[i] != partial.Rank[i] {
			t.Fatal("rank vector changed")
		}
	}
}

func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	a := k2Matrix(t, Config{Scale: 7, EdgeFactor: 8, Seed: 9})
	// Uninterrupted 20 iterations.
	full, err := pagerank.Gather(a, pagerank.Options{Seed: 9, Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	// 8 iterations, checkpoint through storage, resume to 20.
	partial, err := pagerank.Gather(a, pagerank.Options{Seed: 9, Iterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	fs := vfs.NewMem()
	if err := Save(fs, "ck", &Checkpoint{Matrix: a, Rank: partial.Rank, CompletedIterations: 8, Damping: 0.85}); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(fs, "ck")
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(loaded, 20, pagerank.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Iterations != 20 {
		t.Errorf("resumed total iterations %d", resumed.Iterations)
	}
	for i := range full.Rank {
		if full.Rank[i] != resumed.Rank[i] {
			t.Fatalf("resume diverges at %d: %v vs %v", i, resumed.Rank[i], full.Rank[i])
		}
	}
}

func TestCheckpointResumeAlreadyComplete(t *testing.T) {
	a := k2Matrix(t, Config{Scale: 6, EdgeFactor: 4, Seed: 1})
	r := pagerank.InitVector(a.N, 1)
	cp := &Checkpoint{Matrix: a, Rank: r, CompletedIterations: 20, Damping: 0.85}
	res, err := Resume(cp, 20, pagerank.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 20 || &res.Rank[0] != &r[0] {
		t.Error("already-complete resume should return the checkpoint state")
	}
}

func TestCheckpointResumeDampingMismatch(t *testing.T) {
	a := k2Matrix(t, Config{Scale: 6, EdgeFactor: 4, Seed: 2})
	cp := &Checkpoint{Matrix: a, Rank: pagerank.InitVector(a.N, 1), CompletedIterations: 5, Damping: 0.85}
	if _, err := Resume(cp, 20, pagerank.Options{Damping: 0.9}); err == nil {
		t.Error("damping mismatch accepted")
	}
}

func TestCheckpointSaveRejectsMalformed(t *testing.T) {
	fs := vfs.NewMem()
	if err := Save(fs, "bad", &Checkpoint{}); err == nil {
		t.Error("nil matrix accepted")
	}
	a := k2Matrix(t, Config{Scale: 6, EdgeFactor: 4, Seed: 3})
	if err := Save(fs, "bad", &Checkpoint{Matrix: a, Rank: []float64{1}}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestCheckpointLoadDetectsCorruption(t *testing.T) {
	a := k2Matrix(t, Config{Scale: 6, EdgeFactor: 4, Seed: 4})
	fs := vfs.NewMem()
	cp := &Checkpoint{Matrix: a, Rank: pagerank.InitVector(a.N, 1), CompletedIterations: 3, Damping: 0.85}
	if err := Save(fs, "c", cp); err != nil {
		t.Fatal(err)
	}
	// Corrupt the state file.
	r, _ := fs.Open("c.state")
	data := make([]byte, 0)
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		data = append(data, buf[:n]...)
		if err != nil {
			break
		}
	}
	r.Close()
	data[len(data)/2] ^= 0xFF
	w, _ := fs.Create("c.state")
	w.Write(data)
	w.Close()
	if _, err := Load(fs, "c"); err == nil {
		t.Error("corrupted state accepted")
	}
	// Missing files.
	if _, err := Load(fs, "absent"); err == nil {
		t.Error("missing checkpoint accepted")
	}
}

func TestCheckpointResumeFromRandomMidpoints(t *testing.T) {
	// Property: for any split k, run(k) + resume(20-k) == run(20).
	a := k2Matrix(t, Config{Scale: 6, EdgeFactor: 8, Seed: 12})
	full, err := pagerank.Gather(a, pagerank.Options{Seed: 12, Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	g := xrand.New(5)
	for trial := 0; trial < 5; trial++ {
		k := 1 + g.Intn(19)
		partial, err := pagerank.Gather(a, pagerank.Options{Seed: 12, Iterations: k})
		if err != nil {
			t.Fatal(err)
		}
		cp := &Checkpoint{Matrix: a, Rank: partial.Rank, CompletedIterations: k, Damping: 0.85}
		resumed, err := Resume(cp, 20, pagerank.Options{Seed: 12})
		if err != nil {
			t.Fatal(err)
		}
		for i := range full.Rank {
			if math.Abs(full.Rank[i]-resumed.Rank[i]) > 1e-15 {
				t.Fatalf("split at %d diverges at component %d", k, i)
			}
		}
	}
}
