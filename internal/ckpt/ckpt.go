// Package ckpt defines the on-storage checkpoint format shared by the
// serial pipeline and the distributed K3 runtime (DESIGN.md §10).
//
// A checkpoint is a sequence of *epochs*.  An epoch captures the global
// rank vector after a fixed number of completed K3 iterations as p
// block-local chunk files — one per rank, covering [lo, hi) of the
// global index space — plus a commit marker.  Every file is a single
// self-describing little-endian record with a trailing CRC32-IEEE
// checksum, written with a two-phase protocol: the payload goes to
// "<name>.tmp", is closed, and is then renamed into place, so a crash at
// any point leaves either no file or a complete checksummed one under
// the final name.  The commit marker is written last, after every chunk
// of the epoch has been renamed; an epoch without a valid commit, or
// whose chunks fail validation, is *torn* and is skipped by the loader
// in favor of the previous complete epoch — it is never silently loaded.
//
// The format is p-independent on the read side: the loader reassembles
// the global vector from whatever chunk decomposition the writing run
// used, so a run may resume with a different processor count.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/vfs"
)

// Record kinds.
const (
	// KindChunk is one rank's block-local slice of the rank vector.
	KindChunk = 1
	// KindCommit is the epoch commit marker (empty payload).
	KindCommit = 2
)

// Magic identifies an epoch checkpoint record.
var Magic = [4]byte{'P', 'R', 'C', '1'}

// Version is the current record version.
const Version = 1

// headerSize is the fixed-size record prefix: magic, version, kind,
// reserved byte, then six int64 fields, the damping bits and the payload
// count.
const headerSize = 4 + 2 + 1 + 1 + 6*8 + 8 + 8

// maxN bounds plausible vector lengths, matching sparse.MaxDim.
const maxN = 1 << 32

// ErrNoCheckpoint is returned by Latest when the prefix holds no
// complete epoch.
var ErrNoCheckpoint = errors.New("ckpt: no complete checkpoint epoch")

// Chunk is one record of the epoch format: a rank's slice Data of the
// global rank vector covering indices [Lo, Hi) after Epoch completed
// iterations.  A commit marker is a Chunk with empty Data and Lo==Hi==0.
type Chunk struct {
	Kind    int     // KindChunk or KindCommit
	Epoch   int64   // completed K3 iterations at this boundary
	N       int64   // global vector length
	Procs   int64   // ranks participating in the writing run
	Rank    int64   // owner rank in [0, Procs)
	Lo, Hi  int64   // half-open global index range
	Damping float64 // damping factor the iterations used
	Data    []float64
}

// Encode writes c as one framed record.
func Encode(w io.Writer, c *Chunk) error {
	if c.Kind == KindChunk && int64(len(c.Data)) != c.Hi-c.Lo {
		return fmt.Errorf("ckpt: chunk payload %d values, range [%d,%d)", len(c.Data), c.Lo, c.Hi)
	}
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	head := make([]byte, headerSize)
	copy(head, Magic[:])
	binary.LittleEndian.PutUint16(head[4:], Version)
	head[6] = byte(c.Kind)
	for i, v := range []int64{c.Epoch, c.N, c.Procs, c.Rank, c.Lo, c.Hi} {
		binary.LittleEndian.PutUint64(head[8+8*i:], uint64(v))
	}
	binary.LittleEndian.PutUint64(head[56:], math.Float64bits(c.Damping))
	binary.LittleEndian.PutUint64(head[64:], uint64(len(c.Data)))
	if _, err := mw.Write(head); err != nil {
		return err
	}
	buf := make([]byte, 8<<10)
	for off := 0; off < len(c.Data); {
		k := 0
		for k+8 <= len(buf) && off < len(c.Data) {
			binary.LittleEndian.PutUint64(buf[k:], math.Float64bits(c.Data[off]))
			k += 8
			off++
		}
		if _, err := mw.Write(buf[:k]); err != nil {
			return err
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	_, err := w.Write(tail[:])
	return err
}

// Decode reads one record written by Encode, validating the header
// fields and the trailing checksum.  Errors are descriptive: a short
// read is reported as a truncation at a named boundary, never as a raw
// io.ErrUnexpectedEOF.
func Decode(r io.Reader) (*Chunk, error) {
	crc := crc32.NewIEEE()
	head := make([]byte, headerSize)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("ckpt: truncated record header: %w", err)
	}
	crc.Write(head)
	if [4]byte(head[:4]) != Magic {
		return nil, fmt.Errorf("ckpt: bad magic %q", head[:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:]); v != Version {
		return nil, fmt.Errorf("ckpt: unsupported version %d", v)
	}
	c := &Chunk{Kind: int(head[6])}
	if c.Kind != KindChunk && c.Kind != KindCommit {
		return nil, fmt.Errorf("ckpt: unknown record kind %d", c.Kind)
	}
	if head[7] != 0 {
		return nil, fmt.Errorf("ckpt: nonzero reserved byte %d", head[7])
	}
	for i, p := range []*int64{&c.Epoch, &c.N, &c.Procs, &c.Rank, &c.Lo, &c.Hi} {
		*p = int64(binary.LittleEndian.Uint64(head[8+8*i:]))
	}
	c.Damping = math.Float64frombits(binary.LittleEndian.Uint64(head[56:]))
	count := binary.LittleEndian.Uint64(head[64:])
	if c.Epoch < 0 || c.N <= 0 || c.N > maxN || c.Procs <= 0 || c.Procs > c.N {
		return nil, fmt.Errorf("ckpt: implausible header epoch=%d n=%d p=%d", c.Epoch, c.N, c.Procs)
	}
	switch c.Kind {
	case KindChunk:
		if c.Rank < 0 || c.Rank >= c.Procs || c.Lo < 0 || c.Lo > c.Hi || c.Hi > c.N {
			return nil, fmt.Errorf("ckpt: implausible chunk rank=%d range=[%d,%d) n=%d", c.Rank, c.Lo, c.Hi, c.N)
		}
		if int64(count) != c.Hi-c.Lo {
			return nil, fmt.Errorf("ckpt: chunk count %d != range width %d", count, c.Hi-c.Lo)
		}
	case KindCommit:
		if count != 0 || c.Lo != 0 || c.Hi != 0 {
			return nil, fmt.Errorf("ckpt: commit marker with payload (count=%d range=[%d,%d))", count, c.Lo, c.Hi)
		}
	}
	// The payload is read incrementally so a fuzzed count cannot force a
	// huge up-front allocation: memory grows only with bytes actually
	// present in the stream.
	c.Data = make([]float64, 0, min(count, 8<<10))
	buf := make([]byte, 8<<10)
	for remaining := count; remaining > 0; {
		want := min(remaining*8, uint64(len(buf)))
		if _, err := io.ReadFull(r, buf[:want]); err != nil {
			return nil, fmt.Errorf("ckpt: truncated payload after %d of %d values: %w", len(c.Data), count, err)
		}
		crc.Write(buf[:want])
		for k := uint64(0); k < want; k += 8 {
			c.Data = append(c.Data, math.Float64frombits(binary.LittleEndian.Uint64(buf[k:])))
		}
		remaining -= want / 8
	}
	want := crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, fmt.Errorf("ckpt: truncated checksum: %w", err)
	}
	if stored := binary.LittleEndian.Uint32(tail[:]); stored != want {
		return nil, fmt.Errorf("ckpt: checksum mismatch: stored %#x, computed %#x", stored, want)
	}
	return c, nil
}

// ---------------------------------------------------------------------------
// File layout

// EpochDir is the directory-style name prefix of one epoch.
func EpochDir(prefix string, epoch int64) string {
	return fmt.Sprintf("%s/ep%08d", prefix, epoch)
}

// ChunkName is the file name of rank's chunk within an epoch.
func ChunkName(prefix string, epoch int64, rank int) string {
	return fmt.Sprintf("%s/chunk-r%03d", EpochDir(prefix, epoch), rank)
}

// CommitName is the file name of an epoch's commit marker.
func CommitName(prefix string, epoch int64) string {
	return EpochDir(prefix, epoch) + "/commit"
}

// writeRecord runs the two-phase write: encode to name+".tmp", close,
// rename into place.  The record is visible under name only if every
// byte (including the checksum) landed.
func writeRecord(fs vfs.FS, name string, c *Chunk) error {
	tmp := name + ".tmp"
	w, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if err := Encode(w, c); err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, name)
}

// WriteChunk writes rank c.Rank's chunk of epoch c.Epoch atomically.
func WriteChunk(fs vfs.FS, prefix string, c *Chunk) error {
	if c.Kind == 0 {
		c.Kind = KindChunk
	}
	return writeRecord(fs, ChunkName(prefix, c.Epoch, int(c.Rank)), c)
}

// WriteCommit marks an epoch complete.  It must be called only after
// every chunk of the epoch has been written and renamed into place.
func WriteCommit(fs vfs.FS, prefix string, epoch, n, procs int64, damping float64) error {
	c := &Chunk{Kind: KindCommit, Epoch: epoch, N: n, Procs: procs, Damping: damping}
	return writeRecord(fs, CommitName(prefix, epoch), c)
}

// RemoveEpoch deletes every file of an epoch, commit marker first so a
// crash mid-removal cannot leave a committed-but-incomplete epoch.
func RemoveEpoch(fs vfs.FS, prefix string, epoch int64) error {
	dir := EpochDir(prefix, epoch) + "/"
	names, err := fs.List()
	if err != nil {
		return err
	}
	// Commit first: once it is gone the epoch is formally torn and the
	// loader will never pick it, whatever happens to the chunks.
	commit := CommitName(prefix, epoch)
	for _, pass := range []func(string) bool{
		func(n string) bool { return n == commit },
		func(n string) bool { return strings.HasPrefix(n, dir) },
	} {
		for _, name := range names {
			if !pass(name) {
				continue
			}
			if err := fs.Remove(name); err != nil && !errors.Is(err, vfs.ErrNotExist) {
				return err
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Discovery and load

// Loaded is a reassembled checkpoint epoch.
type Loaded struct {
	// Epoch is the number of completed K3 iterations the vector reflects.
	Epoch int64
	// N is the global vector length; Rank has N values.
	N int64
	// Procs is the processor count of the run that wrote the epoch
	// (informational — resume does not require the same p).
	Procs int64
	// Damping is the damping factor the completed iterations used.
	Damping float64
	// Rank is the assembled global rank vector.
	Rank []float64
	// Torn counts newer epochs that were skipped because their commit or
	// chunks failed validation.
	Torn int
}

// Epochs lists the epoch numbers with a commit marker under prefix,
// ascending.  Commit presence does not imply validity; Latest performs
// the full validation.
func Epochs(fs vfs.FS, prefix string) ([]int64, error) {
	names, err := fs.List()
	if err != nil {
		return nil, err
	}
	var eps []int64
	for _, name := range names {
		rest, ok := strings.CutPrefix(name, prefix+"/ep")
		if !ok {
			continue
		}
		num, ok := strings.CutSuffix(rest, "/commit")
		if !ok {
			continue
		}
		e, err := strconv.ParseInt(num, 10, 64)
		if err != nil || e < 0 {
			continue
		}
		eps = append(eps, e)
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i] < eps[j] })
	return eps, nil
}

// Latest loads the newest complete epoch under prefix: the highest
// committed epoch whose commit marker and all chunks decode, checksum
// and tile [0, N) exactly.  Torn epochs are counted and skipped, never
// loaded.  Returns ErrNoCheckpoint when nothing valid exists.
func Latest(fs vfs.FS, prefix string) (*Loaded, error) {
	eps, err := Epochs(fs, prefix)
	if err != nil {
		return nil, err
	}
	torn := 0
	for i := len(eps) - 1; i >= 0; i-- {
		l, err := loadEpoch(fs, prefix, eps[i])
		if err != nil {
			torn++
			continue
		}
		l.Torn = torn
		return l, nil
	}
	return nil, ErrNoCheckpoint
}

// Load loads one specific committed epoch, validating every chunk.
func Load(fs vfs.FS, prefix string, epoch int64) (*Loaded, error) {
	return loadEpoch(fs, prefix, epoch)
}

func loadEpoch(fs vfs.FS, prefix string, epoch int64) (*Loaded, error) {
	commit, err := readRecord(fs, CommitName(prefix, epoch))
	if err != nil {
		return nil, fmt.Errorf("ckpt: epoch %d commit: %w", epoch, err)
	}
	if commit.Kind != KindCommit || commit.Epoch != epoch {
		return nil, fmt.Errorf("ckpt: epoch %d commit marker is inconsistent (kind=%d epoch=%d)", epoch, commit.Kind, commit.Epoch)
	}
	l := &Loaded{Epoch: epoch, N: commit.N, Procs: commit.Procs, Damping: commit.Damping}
	l.Rank = make([]float64, l.N)
	var covered int64
	for r := int64(0); r < commit.Procs; r++ {
		c, err := readRecord(fs, ChunkName(prefix, epoch, int(r)))
		if err != nil {
			return nil, fmt.Errorf("ckpt: epoch %d rank %d: %w", epoch, r, err)
		}
		if c.Kind != KindChunk || c.Epoch != epoch || c.N != commit.N ||
			c.Procs != commit.Procs || c.Rank != r ||
			math.Float64bits(c.Damping) != math.Float64bits(commit.Damping) {
			return nil, fmt.Errorf("ckpt: epoch %d rank %d chunk disagrees with commit", epoch, r)
		}
		if c.Lo != covered {
			return nil, fmt.Errorf("ckpt: epoch %d rank %d covers [%d,%d), expected start %d", epoch, r, c.Lo, c.Hi, covered)
		}
		copy(l.Rank[c.Lo:c.Hi], c.Data)
		covered = c.Hi
	}
	if covered != l.N {
		return nil, fmt.Errorf("ckpt: epoch %d chunks cover [0,%d) of %d", epoch, covered, l.N)
	}
	return l, nil
}

func readRecord(fs vfs.FS, name string) (*Chunk, error) {
	r, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	c, err := Decode(r)
	if err != nil {
		return nil, err
	}
	// Trailing garbage after the checksum means the file is not a clean
	// record of this format.
	var one [1]byte
	if _, err := r.Read(one[:]); err != io.EOF {
		return nil, fmt.Errorf("ckpt: %s: trailing bytes after record", name)
	}
	return c, nil
}
