package ckpt

import (
	"bytes"
	"math"
	"testing"
)

// FuzzCheckpointDecode drives Decode with arbitrary bytes.  The decoder
// must never panic, never allocate proportionally to a fabricated count
// field, and must round-trip anything it accepts bit-for-bit.
func FuzzCheckpointDecode(f *testing.F) {
	seed := func(c *Chunk) {
		var buf bytes.Buffer
		if err := Encode(&buf, c); err == nil {
			f.Add(buf.Bytes())
		}
	}
	seed(&Chunk{Kind: KindChunk, Epoch: 3, N: 8, Procs: 2, Rank: 0, Lo: 0, Hi: 4,
		Damping: 0.85, Data: []float64{0.1, 0.2, 0.3, 0.4}})
	seed(&Chunk{Kind: KindCommit, Epoch: 3, N: 8, Procs: 2, Damping: 0.85})
	f.Add([]byte("PRC1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input must re-encode to a decodable record with
		// identical content (the checksum pins the bytes; re-encoding
		// pins the field interpretation).
		var buf bytes.Buffer
		if err := Encode(&buf, c); err != nil {
			t.Fatalf("re-encode of accepted record: %v", err)
		}
		c2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if c2.Kind != c.Kind || c2.Epoch != c.Epoch || c2.N != c.N ||
			c2.Procs != c.Procs || c2.Rank != c.Rank || c2.Lo != c.Lo ||
			c2.Hi != c.Hi || math.Float64bits(c2.Damping) != math.Float64bits(c.Damping) ||
			len(c2.Data) != len(c.Data) {
			t.Fatal("round trip drifted")
		}
		for i := range c.Data {
			if math.Float64bits(c2.Data[i]) != math.Float64bits(c.Data[i]) {
				t.Fatalf("payload[%d] drifted", i)
			}
		}
	})
}
