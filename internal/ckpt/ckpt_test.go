package ckpt

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"maps"
	"math"
	"slices"
	"strings"
	"testing"

	"repro/internal/vfs"
)

func testChunk(epoch int64, n, p, rank int) *Chunk {
	lo, hi := int64(rank)*int64(n)/int64(p), int64(rank+1)*int64(n)/int64(p)
	data := make([]float64, hi-lo)
	for i := range data {
		data[i] = float64(lo+int64(i)) * 0.25
	}
	return &Chunk{
		Kind: KindChunk, Epoch: epoch, N: int64(n), Procs: int64(p),
		Rank: int64(rank), Lo: lo, Hi: hi, Damping: 0.85, Data: data,
	}
}

func writeEpoch(t *testing.T, fs vfs.FS, prefix string, epoch int64, n, p int) {
	t.Helper()
	for r := 0; r < p; r++ {
		if err := WriteChunk(fs, prefix, testChunk(epoch, n, p, r)); err != nil {
			t.Fatalf("epoch %d rank %d: %v", epoch, r, err)
		}
	}
	if err := WriteCommit(fs, prefix, epoch, int64(n), int64(p), 0.85); err != nil {
		t.Fatalf("commit epoch %d: %v", epoch, err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, c := range []*Chunk{
		testChunk(5, 17, 3, 0),
		testChunk(5, 17, 3, 2),
		testChunk(0, 1, 1, 0),
		{Kind: KindCommit, Epoch: 10, N: 100, Procs: 4, Damping: 0.9},
	} {
		var buf bytes.Buffer
		if err := Encode(&buf, c); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Kind != c.Kind || got.Epoch != c.Epoch || got.N != c.N ||
			got.Procs != c.Procs || got.Rank != c.Rank || got.Lo != c.Lo ||
			got.Hi != c.Hi || got.Damping != c.Damping {
			t.Fatalf("header round trip: %+v -> %+v", c, got)
		}
		if len(got.Data) != len(c.Data) {
			t.Fatalf("payload length %d -> %d", len(c.Data), len(got.Data))
		}
		for i := range c.Data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(c.Data[i]) {
				t.Fatalf("payload[%d] not bit-identical", i)
			}
		}
	}
}

func TestDecodeTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, testChunk(3, 64, 2, 1)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		_, err := Decode(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(full))
		}
		if msg := err.Error(); !strings.Contains(msg, "ckpt:") {
			t.Fatalf("cut %d: undescriptive error %q", cut, msg)
		}
	}
}

func TestDecodeCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, testChunk(3, 32, 1, 0)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, pos := range []int{0, 5, 6, 7, 9, 20, headerSize + 3, len(full) - 2} {
		mut := append([]byte(nil), full...)
		mut[pos] ^= 0x41
		if _, err := Decode(bytes.NewReader(mut)); err == nil {
			t.Errorf("flip at byte %d not detected", pos)
		}
	}
}

func TestDecodeRejectsHugeCountWithoutAllocating(t *testing.T) {
	// A header claiming 2^40 values backed by 8 bytes of payload must
	// fail on truncation, not attempt a 8 TiB allocation.
	c := testChunk(0, 16, 1, 0)
	var buf bytes.Buffer
	if err := Encode(&buf, c); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:headerSize+8]
	if _, err := Decode(bytes.NewReader(b)); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

func TestWriteIsAtomic(t *testing.T) {
	fs := vfs.NewMem()
	if err := WriteChunk(fs, "ck", testChunk(2, 8, 1, 0)); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List()
	for _, n := range names {
		if strings.HasSuffix(n, ".tmp") {
			t.Errorf("temp file %q left behind", n)
		}
	}
	if _, err := fs.Open(ChunkName("ck", 2, 0)); err != nil {
		t.Fatalf("final name missing: %v", err)
	}
}

func TestLatestPicksNewestCompleteEpoch(t *testing.T) {
	fs := vfs.NewMem()
	if _, err := Latest(fs, "ck"); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty store: %v", err)
	}
	writeEpoch(t, fs, "ck", 4, 40, 3)
	writeEpoch(t, fs, "ck", 8, 40, 3)
	l, err := Latest(fs, "ck")
	if err != nil {
		t.Fatal(err)
	}
	if l.Epoch != 8 || l.N != 40 || l.Procs != 3 || l.Torn != 0 {
		t.Fatalf("loaded %+v", l)
	}
	for i, v := range l.Rank {
		if v != float64(i)*0.25 {
			t.Fatalf("rank[%d] = %v", i, v)
		}
	}
}

func TestLatestSkipsTornEpoch(t *testing.T) {
	tears := map[string]func(fs vfs.FS){
		"missing-chunk": func(fs vfs.FS) {
			if err := fs.Remove(ChunkName("ck", 8, 1)); err != nil {
				panic(err)
			}
		},
		"corrupt-chunk": func(fs vfs.FS) {
			name := ChunkName("ck", 8, 2)
			r, _ := fs.Open(name)
			b, _ := io.ReadAll(r)
			r.Close()
			b[len(b)-1] ^= 0xFF
			w, _ := fs.Create(name)
			w.Write(b)
			w.Close()
		},
		"truncated-chunk": func(fs vfs.FS) {
			name := ChunkName("ck", 8, 0)
			r, _ := fs.Open(name)
			b, _ := io.ReadAll(r)
			r.Close()
			w, _ := fs.Create(name)
			w.Write(b[:len(b)/2])
			w.Close()
		},
	}
	for _, name := range slices.Sorted(maps.Keys(tears)) {
		tear := tears[name]
		t.Run(name, func(t *testing.T) {
			fs := vfs.NewMem()
			writeEpoch(t, fs, "ck", 4, 40, 3)
			writeEpoch(t, fs, "ck", 8, 40, 3)
			tear(fs)
			l, err := Latest(fs, "ck")
			if err != nil {
				t.Fatal(err)
			}
			if l.Epoch != 4 {
				t.Fatalf("loaded epoch %d, want fallback to 4", l.Epoch)
			}
			if l.Torn != 1 {
				t.Fatalf("torn count %d, want 1", l.Torn)
			}
		})
	}
}

func TestUncommittedEpochInvisible(t *testing.T) {
	fs := vfs.NewMem()
	writeEpoch(t, fs, "ck", 4, 40, 3)
	// Epoch 8: all chunks present but no commit — must not be loaded.
	for r := 0; r < 3; r++ {
		if err := WriteChunk(fs, "ck", testChunk(8, 40, 3, r)); err != nil {
			t.Fatal(err)
		}
	}
	l, err := Latest(fs, "ck")
	if err != nil {
		t.Fatal(err)
	}
	if l.Epoch != 4 {
		t.Fatalf("uncommitted epoch loaded (got epoch %d)", l.Epoch)
	}
}

func TestTornWriteViaFaultyFS(t *testing.T) {
	// A partial write that dies mid-chunk never produces a visible chunk
	// file: the temp file holds the torn bytes and the rename never runs.
	mem := vfs.NewMem()
	writeEpoch(t, mem, "ck", 4, 40, 2)
	// Budget covers rank 0's chunk plus a fragment of rank 1's, so the
	// fault fires mid-write of the second chunk.
	chunkBytes, err := mem.Size(ChunkName("ck", 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	fs := vfs.NewFaulty(mem, chunkBytes+chunkBytes/2).PartialWrites()
	var wrote int
	for r := 0; r < 2; r++ {
		if err := WriteChunk(fs, "ck", testChunk(8, 40, 2, r)); err != nil {
			break
		}
		wrote++
	}
	if wrote == 2 {
		t.Fatal("fault did not fire; budget too large")
	}
	l, err := Latest(mem, "ck")
	if err != nil {
		t.Fatal(err)
	}
	if l.Epoch != 4 {
		t.Fatalf("torn epoch 8 became visible (loaded %d)", l.Epoch)
	}
}

func TestRenameFailureLeavesPreviousEpoch(t *testing.T) {
	mem := vfs.NewMem()
	writeEpoch(t, mem, "ck", 4, 40, 2)
	fs := vfs.NewFaulty(mem, 1<<30).FailRenamesAfter(1)
	// First rename (chunk 0) succeeds, second (chunk 1) fails.
	if err := WriteChunk(fs, "ck", testChunk(8, 40, 2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := WriteChunk(fs, "ck", testChunk(8, 40, 2, 1)); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("rename fault not surfaced: %v", err)
	}
	l, err := Latest(mem, "ck")
	if err != nil {
		t.Fatal(err)
	}
	if l.Epoch != 4 {
		t.Fatalf("incomplete epoch became visible (loaded %d)", l.Epoch)
	}
}

func TestDifferentProcsOnLoad(t *testing.T) {
	// An epoch written with p=5 reassembles into the same global vector
	// regardless of the reader's own processor count.
	fs := vfs.NewMem()
	writeEpoch(t, fs, "ck", 6, 43, 5)
	l, err := Latest(fs, "ck")
	if err != nil {
		t.Fatal(err)
	}
	if l.Procs != 5 || l.N != 43 {
		t.Fatalf("loaded %+v", l)
	}
	for i, v := range l.Rank {
		if v != float64(i)*0.25 {
			t.Fatalf("rank[%d] = %v", i, v)
		}
	}
}

func TestRemoveEpoch(t *testing.T) {
	fs := vfs.NewMem()
	writeEpoch(t, fs, "ck", 4, 20, 2)
	writeEpoch(t, fs, "ck", 8, 20, 2)
	if err := RemoveEpoch(fs, "ck", 4); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List()
	for _, n := range names {
		if strings.Contains(n, "ep00000004") {
			t.Errorf("epoch 4 file %q survived removal", n)
		}
	}
	if l, err := Latest(fs, "ck"); err != nil || l.Epoch != 8 {
		t.Fatalf("epoch 8 lost: %v %v", l, err)
	}
}

func TestEpochsListing(t *testing.T) {
	fs := vfs.NewMem()
	for _, e := range []int64{12, 4, 8} {
		writeEpoch(t, fs, "ck", e, 10, 1)
	}
	// A foreign file and an uncommitted epoch must not appear.
	w, _ := fs.Create("ck/ep00000099/chunk-r000")
	w.Close()
	w, _ = fs.Create("other/ep00000001/commit")
	w.Close()
	eps, err := Epochs(fs, "ck")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(eps) != "[4 8 12]" {
		t.Fatalf("epochs = %v", eps)
	}
}

func TestChunkDisagreeingWithCommitRejected(t *testing.T) {
	fs := vfs.NewMem()
	for r := 0; r < 2; r++ {
		if err := WriteChunk(fs, "ck", testChunk(8, 40, 2, r)); err != nil {
			t.Fatal(err)
		}
	}
	// Commit claims a different damping than the chunks carry.
	if err := WriteCommit(fs, "ck", 8, 40, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(fs, "ck", 8); err == nil {
		t.Fatal("damping mismatch between commit and chunks accepted")
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	fs := vfs.NewMem()
	writeEpoch(t, fs, "ck", 4, 10, 1)
	name := ChunkName("ck", 4, 0)
	r, _ := fs.Open(name)
	b, _ := io.ReadAll(r)
	r.Close()
	w, _ := fs.Create(name)
	w.Write(append(b, 0xEE))
	w.Close()
	if _, err := Load(fs, "ck", 4); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}
