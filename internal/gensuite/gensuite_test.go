package gensuite

import (
	"sort"
	"testing"
)

func TestPPLDeterministic(t *testing.T) {
	p := PPL{Scale: 8, EdgeFactor: 8}
	a, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("PPL output is not deterministic")
	}
}

func TestPPLEdgeCountExact(t *testing.T) {
	for _, k := range []int{4, 8, 16} {
		p := PPL{Scale: 9, EdgeFactor: k}
		l, err := p.Generate()
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(k) << 9
		if uint64(l.Len()) != want {
			t.Errorf("k=%d: %d edges, want exactly %d", k, l.Len(), want)
		}
		if p.NumEdges() != want {
			t.Errorf("k=%d: NumEdges = %d, want %d", k, p.NumEdges(), want)
		}
	}
}

func TestPPLDegreeSequenceIsPowerLaw(t *testing.T) {
	p := PPL{Scale: 10, EdgeFactor: 16}
	ds := p.degreeSequence()
	// Monotone non-increasing (after the remainder-absorbing hub).
	for i := 2; i < len(ds); i++ {
		if ds[i] > ds[i-1] {
			t.Fatalf("degree sequence not monotone at %d: %d > %d", i, ds[i], ds[i-1])
		}
	}
	// Hub degree must dominate the median by a large factor.
	sorted := append([]uint64(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	if sorted[0] < 20*sorted[len(sorted)/2] {
		t.Errorf("hub degree %d vs median %d: insufficient skew", sorted[0], sorted[len(sorted)/2])
	}
	// Check the power-law ratio: d(i) / d(2i) should be about 2^(1/alpha) = 2.
	r := float64(ds[16]) / float64(ds[33])
	if r < 1.5 || r > 2.7 {
		t.Errorf("power-law ratio d(16)/d(33) = %.2f, want ~2", r)
	}
}

func TestPPLSeedChangesTargetsOnly(t *testing.T) {
	a, _ := PPL{Scale: 7, EdgeFactor: 4, Seed: 1}.Generate()
	b, _ := PPL{Scale: 7, EdgeFactor: 4, Seed: 2}.Generate()
	if a.Len() != b.Len() {
		t.Fatal("seed changed edge count")
	}
	// Sources identical, targets different.
	diffV, diffU := 0, 0
	for i := 0; i < a.Len(); i++ {
		if a.U[i] != b.U[i] {
			diffU++
		}
		if a.V[i] != b.V[i] {
			diffV++
		}
	}
	if diffU != 0 {
		t.Errorf("%d source vertices changed with seed", diffU)
	}
	if diffV == 0 {
		t.Error("targets unchanged with different seed")
	}
}

func TestPPLVerticesInRange(t *testing.T) {
	p := PPL{Scale: 6, EdgeFactor: 16, Seed: 9}
	l, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	n := p.NumVertices()
	for i := 0; i < l.Len(); i++ {
		u, v := l.At(i)
		if u >= n || v >= n {
			t.Fatalf("edge (%d,%d) out of range N=%d", u, v, n)
		}
	}
}

func TestPPLInvalidScale(t *testing.T) {
	if _, err := (PPL{Scale: 0}).Generate(); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := (PPL{Scale: 31}).Generate(); err == nil {
		t.Error("scale 31 accepted")
	}
}

func TestERBasics(t *testing.T) {
	e := ER{Scale: 8, EdgeFactor: 16, Seed: 3}
	l, err := e.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if uint64(l.Len()) != e.NumEdges() {
		t.Fatalf("ER generated %d edges, want %d", l.Len(), e.NumEdges())
	}
	n := e.NumVertices()
	for i := 0; i < l.Len(); i++ {
		u, v := l.At(i)
		if u >= n || v >= n {
			t.Fatalf("edge (%d,%d) out of range", u, v)
		}
	}
}

func TestERDeterministicPerSeed(t *testing.T) {
	a, _ := ER{Scale: 7, Seed: 1}.Generate()
	b, _ := ER{Scale: 7, Seed: 1}.Generate()
	c, _ := ER{Scale: 7, Seed: 2}.Generate()
	if !a.Equal(b) {
		t.Error("ER not deterministic")
	}
	if a.Equal(c) {
		t.Error("ER ignores seed")
	}
}

func TestERFlatDegrees(t *testing.T) {
	e := ER{Scale: 10, EdgeFactor: 16, Seed: 5}
	l, _ := e.Generate()
	deg := make([]int, e.NumVertices())
	for _, u := range l.U {
		deg[u]++
	}
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	// Poisson(16): the max over 1024 draws stays far below power-law hubs.
	if max > 60 {
		t.Errorf("ER max out-degree %d too skewed for a Poisson(16)", max)
	}
}

func TestERInvalidScale(t *testing.T) {
	if _, err := (ER{Scale: 0}).Generate(); err == nil {
		t.Error("scale 0 accepted")
	}
}

func TestGeneratorNames(t *testing.T) {
	if (PPL{}).Name() != "ppl" || (ER{}).Name() != "er" {
		t.Error("unexpected generator names")
	}
}
