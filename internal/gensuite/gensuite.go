// Package gensuite provides the alternative graph generators the paper
// proposes investigating alongside the Graph500 Kronecker generator:
// a perfect-power-law (PPL) generator whose degree sequence is exactly
// deterministic ("Should a more deterministic generator be used in kernel 0
// to facilitate validation of all kernels?"), and an Erdős–Rényi generator
// as a non-skewed control.
//
// All generators satisfy the Generator interface consumed by the pipeline,
// so kernel 0 can be swapped without touching kernels 1–3 — the paper's
// requirement that "the subsequent kernels should be able to work with
// input from any graph generator".
package gensuite

import (
	"fmt"
	"math"

	"repro/internal/edge"
	"repro/internal/xrand"
)

// Generator produces an edge list over a fixed vertex set.
type Generator interface {
	// Name identifies the generator in reports.
	Name() string
	// NumVertices returns the size of the vertex set N.
	NumVertices() uint64
	// NumEdges returns the number of edges the generator will emit.
	NumEdges() uint64
	// Generate produces the edge list.
	Generate() (*edge.List, error)
}

// ---------------------------------------------------------------------------
// Perfect power law

// PPL is a deterministic perfect-power-law generator.  Vertex i receives an
// out-degree proportional to (i+1)^(-1/alpha) — an exact Zipf-like degree
// sequence — and each of its edges gets a target computed by hashing the
// (source, edge index) pair, so two runs produce bit-identical output with
// no random state at all.  Setting Seed changes the hash stream while
// keeping the degree sequence fixed.
type PPL struct {
	// Scale sets N = 2^Scale vertices.
	Scale int
	// EdgeFactor is the average edges per vertex (k).
	EdgeFactor int
	// Alpha is the power-law exponent parameter; out-degree of rank-i
	// vertex is proportional to (i+1)^(-1/alpha).  Typical social-network
	// exponents correspond to Alpha in [0.5, 1.5].  Zero selects 1.0.
	Alpha float64
	// Seed perturbs target selection only.
	Seed uint64
}

// Name implements Generator.
func (p PPL) Name() string { return "ppl" }

// NumVertices implements Generator.
func (p PPL) NumVertices() uint64 { return 1 << uint(p.Scale) }

// NumEdges implements Generator.
func (p PPL) NumEdges() uint64 {
	ds := p.degreeSequence()
	var m uint64
	for _, d := range ds {
		m += d
	}
	return m
}

func (p PPL) alpha() float64 {
	if p.Alpha == 0 {
		return 1.0
	}
	return p.Alpha
}

// degreeSequence returns the exact out-degree of every vertex.  Degrees are
// scaled so the total is as close as possible to EdgeFactor·N while each
// vertex keeps at least one edge, then the highest-rank vertex absorbs the
// rounding remainder, keeping the total exactly EdgeFactor·N.
func (p PPL) degreeSequence() []uint64 {
	n := int(p.NumVertices())
	k := p.EdgeFactor
	if k == 0 {
		k = 16
	}
	target := uint64(k) * uint64(n)
	inv := 1 / p.alpha()
	weights := make([]float64, n)
	var wsum float64
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -inv)
		wsum += weights[i]
	}
	ds := make([]uint64, n)
	var total uint64
	for i := range ds {
		d := uint64(math.Round(weights[i] / wsum * float64(target)))
		if d < 1 {
			d = 1
		}
		ds[i] = d
		total += d
	}
	// Absorb the rounding error into vertex 0 (the hub).
	switch {
	case total < target:
		ds[0] += target - total
	case total > target:
		excess := total - target
		if ds[0] > excess {
			ds[0] -= excess
		} else {
			// Degenerate parameterization (excess concentrated in the "at
			// least 1" floors); trim from hubs in rank order.
			for i := 0; excess > 0 && i < n; i++ {
				cut := ds[i] - 1
				if cut > excess {
					cut = excess
				}
				ds[i] -= cut
				excess -= cut
			}
		}
	}
	return ds
}

// Generate implements Generator.
func (p PPL) Generate() (*edge.List, error) {
	if p.Scale < 1 || p.Scale > 30 {
		return nil, fmt.Errorf("gensuite: PPL scale %d out of range [1, 30]", p.Scale)
	}
	n := p.NumVertices()
	ds := p.degreeSequence()
	var m uint64
	for _, d := range ds {
		m += d
	}
	l := edge.NewList(int(m))
	for u := uint64(0); u < n; u++ {
		for j := uint64(0); j < ds[u]; j++ {
			v := xrand.Mix64(p.Seed^xrand.Mix64(u*0x9E3779B97F4A7C15+j)) % n
			l.Append(u, v)
		}
	}
	return l, nil
}

// ---------------------------------------------------------------------------
// Erdős–Rényi

// ER is a G(n, m) Erdős–Rényi generator: M edges with both endpoints drawn
// uniformly at random.  Its flat degree distribution makes it the control
// case for kernel 2's super-node elimination (there is no super-node).
type ER struct {
	// Scale sets N = 2^Scale vertices.
	Scale int
	// EdgeFactor is the average edges per vertex.
	EdgeFactor int
	// Seed selects the random stream.
	Seed uint64
}

// Name implements Generator.
func (e ER) Name() string { return "er" }

// NumVertices implements Generator.
func (e ER) NumVertices() uint64 { return 1 << uint(e.Scale) }

func (e ER) k() uint64 {
	if e.EdgeFactor == 0 {
		return 16
	}
	return uint64(e.EdgeFactor)
}

// NumEdges implements Generator.
func (e ER) NumEdges() uint64 { return e.k() * e.NumVertices() }

// Generate implements Generator.
func (e ER) Generate() (*edge.List, error) {
	if e.Scale < 1 || e.Scale > 30 {
		return nil, fmt.Errorf("gensuite: ER scale %d out of range [1, 30]", e.Scale)
	}
	n := e.NumVertices()
	m := e.NumEdges()
	g := xrand.NewSeeded(e.Seed, 0)
	l := edge.Make(int(m))
	for i := 0; i < int(m); i++ {
		l.Set(i, g.Uint64n(n), g.Uint64n(n))
	}
	return l, nil
}

// Interface conformance checks.
var (
	_ Generator = PPL{}
	_ Generator = ER{}
)
