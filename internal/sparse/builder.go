package sparse

import "fmt"

// SortedBuilder assembles a CSR incrementally from an edge stream sorted by
// start vertex — the out-of-core kernel-2 path, which must not materialize
// the edge list.  Duplicate (u, v) pairs accumulate into counts exactly as
// in FromEdges.  Memory use is O(N + NNZ): the matrix under construction
// plus one row's worth of staging.
type SortedBuilder struct {
	n      int
	rowPtr []int64
	cols   []uint32
	vals   []float64

	curRow  int64 // row currently being staged; -1 before the first edge
	staging []uint32
}

// NewSortedBuilder returns a builder for an n×n matrix.
func NewSortedBuilder(n int) (*SortedBuilder, error) {
	if err := checkDim(n); err != nil {
		return nil, err
	}
	return &SortedBuilder{n: n, rowPtr: make([]int64, n+1), curRow: -1}, nil
}

// Add appends the edge (u, v).  u must be non-decreasing across calls.
func (b *SortedBuilder) Add(u, v uint64) error {
	if u >= uint64(b.n) || v >= uint64(b.n) {
		return fmt.Errorf("sparse: edge (%d,%d) out of range N=%d", u, v, b.n)
	}
	if int64(u) < b.curRow {
		return fmt.Errorf("sparse: SortedBuilder received start vertex %d after %d (input not sorted)", u, b.curRow)
	}
	if int64(u) != b.curRow {
		b.flushRow()
		b.curRow = int64(u)
	}
	b.staging = append(b.staging, uint32(v))
	return nil
}

// flushRow compresses the staged row into the matrix.
func (b *SortedBuilder) flushRow() {
	if b.curRow < 0 || len(b.staging) == 0 {
		return
	}
	sortUint32(b.staging)
	for k := 0; k < len(b.staging); {
		c := b.staging[k]
		cnt := 1
		for k+cnt < len(b.staging) && b.staging[k+cnt] == c {
			cnt++
		}
		b.cols = append(b.cols, c)
		b.vals = append(b.vals, float64(cnt))
		k += cnt
	}
	b.rowPtr[b.curRow+1] = int64(len(b.cols))
	b.staging = b.staging[:0]
}

// Finish completes construction and returns the matrix.  The builder must
// not be used afterwards.
func (b *SortedBuilder) Finish() *CSR {
	b.flushRow()
	for i := 0; i < b.n; i++ {
		if b.rowPtr[i+1] < b.rowPtr[i] {
			b.rowPtr[i+1] = b.rowPtr[i]
		}
	}
	return &CSR{N: b.n, RowPtr: b.rowPtr, Col: b.cols, Val: b.vals}
}
