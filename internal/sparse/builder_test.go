package sparse

import (
	"testing"

	"repro/internal/edge"
)

func TestSortedBuilderMatchesFromEdges(t *testing.T) {
	l := randomList(11, 4000, 100)
	sortByU(l)
	want, err := FromSortedEdges(l, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSortedBuilder(100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < l.Len(); i++ {
		if err := b.Add(l.U[i], l.V[i]); err != nil {
			t.Fatal(err)
		}
	}
	got := b.Finish()
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	assertSameMatrix(t, want, got)
}

func TestSortedBuilderRejectsUnsorted(t *testing.T) {
	b, _ := NewSortedBuilder(10)
	b.Add(5, 0)
	if err := b.Add(3, 0); err == nil {
		t.Error("descending start vertex accepted")
	}
}

func TestSortedBuilderRejectsOutOfRange(t *testing.T) {
	b, _ := NewSortedBuilder(4)
	if err := b.Add(9, 0); err == nil {
		t.Error("out-of-range u accepted")
	}
	if err := b.Add(0, 9); err == nil {
		t.Error("out-of-range v accepted")
	}
}

func TestSortedBuilderEmpty(t *testing.T) {
	b, _ := NewSortedBuilder(3)
	a := b.Finish()
	if a.NNZ() != 0 {
		t.Errorf("empty builder NNZ = %d", a.NNZ())
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSortedBuilderDuplicateAccumulation(t *testing.T) {
	b, _ := NewSortedBuilder(4)
	for i := 0; i < 5; i++ {
		b.Add(2, 3)
	}
	b.Add(3, 0)
	a := b.Finish()
	if got := a.At(2, 3); got != 5 {
		t.Errorf("A(2,3) = %v, want 5", got)
	}
	if a.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2", a.NNZ())
	}
}

func TestSortedBuilderInvalidDim(t *testing.T) {
	if _, err := NewSortedBuilder(0); err == nil {
		t.Error("dimension 0 accepted")
	}
}

func TestSortedBuilderSparseRows(t *testing.T) {
	// Rows 0 and 9 only; everything between must be empty with valid ptrs.
	b, _ := NewSortedBuilder(10)
	b.Add(0, 1)
	b.Add(9, 8)
	a := b.Finish()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 1) != 1 || a.At(9, 8) != 1 {
		t.Error("entries misplaced")
	}
	for i := 1; i < 9; i++ {
		if a.RowPtr[i+1]-a.RowPtr[i] != 0 {
			t.Fatalf("row %d should be empty", i)
		}
	}
}

func TestSortedBuilderFromEdgeList(t *testing.T) {
	l := edge.NewList(3)
	l.Append(1, 1)
	l.Append(1, 1)
	l.Append(2, 0)
	b, _ := NewSortedBuilder(3)
	for i := 0; i < l.Len(); i++ {
		if err := b.Add(l.U[i], l.V[i]); err != nil {
			t.Fatal(err)
		}
	}
	a := b.Finish()
	if a.SumValues() != 3 {
		t.Errorf("mass = %v, want 3", a.SumValues())
	}
}
