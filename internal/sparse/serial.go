package sparse

// Binary serialization of CSR matrices.  The pipeline's checkpoint/restart
// support (one of the paper's Figure 2 "Admin" operations: create, stop,
// checkpoint, restart) persists kernel 2's output through this format so a
// kernel-3 run can be stopped and resumed without repeating kernels 0-2.
//
// Layout (little endian):
//
//	magic   [4]byte  "CSR1"
//	n       int64    dimension
//	nnz     int64    stored entries
//	rowPtr  (n+1) × int64
//	col     nnz × uint32
//	val     nnz × float64 (IEEE-754 bits)
//	crc     uint32   IEEE CRC-32 of everything above

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

var csrMagic = [4]byte{'C', 'S', 'R', '1'}

// maxSerializedNNZ bounds deserialization allocations.
const maxSerializedNNZ = 1 << 31

// WriteTo serializes the matrix to w in the binary CSR format, returning
// the number of bytes written.  The trailing CRC-32 covers every byte
// before it.
func (a *CSR) WriteTo(w io.Writer) (int64, error) {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 256<<10)
	var written int64
	put := func(data any) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		written += int64(binary.Size(data))
		return nil
	}
	vals := make([]uint64, len(a.Val))
	for i, v := range a.Val {
		vals[i] = math.Float64bits(v)
	}
	for _, part := range []any{csrMagic, int64(a.N), int64(a.NNZ()), a.RowPtr, a.Col, vals} {
		if err := put(part); err != nil {
			return written, err
		}
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	// The checksum itself bypasses the hashing path.
	if err := binary.Write(w, binary.LittleEndian, crc.Sum32()); err != nil {
		return written, err
	}
	return written + 4, nil
}

// hashedReader reads exact-sized payloads from an io.Reader while
// maintaining a running CRC over exactly the bytes returned — no
// read-ahead ever contaminates the hash.
type hashedReader struct {
	r   *bufio.Reader
	crc uint32
	buf []byte
}

func newHashedReader(r io.Reader) *hashedReader {
	return &hashedReader{r: bufio.NewReaderSize(r, 256<<10)}
}

// next returns an internal buffer filled with exactly n payload bytes.
// The buffer is valid until the following call.
func (h *hashedReader) next(n int) ([]byte, error) {
	if cap(h.buf) < n {
		h.buf = make([]byte, n)
	}
	buf := h.buf[:n]
	if _, err := io.ReadFull(h.r, buf); err != nil {
		return nil, err
	}
	h.crc = crc32.Update(h.crc, crc32.IEEETable, buf)
	return buf, nil
}

// ReadCSR deserializes a matrix written by WriteTo, verifying the
// checksum and structural invariants.
func ReadCSR(r io.Reader) (*CSR, error) {
	h := newHashedReader(r)
	head, err := h.next(4 + 8 + 8)
	if err != nil {
		return nil, fmt.Errorf("sparse: reading header: %w", err)
	}
	if [4]byte(head[:4]) != csrMagic {
		return nil, fmt.Errorf("sparse: bad magic %q", head[:4])
	}
	n := int64(binary.LittleEndian.Uint64(head[4:12]))
	nnz := int64(binary.LittleEndian.Uint64(head[12:20]))
	if n <= 0 || n > MaxDim || nnz < 0 || nnz > maxSerializedNNZ {
		return nil, fmt.Errorf("sparse: implausible header n=%d nnz=%d", n, nnz)
	}
	a := &CSR{
		N:      int(n),
		RowPtr: make([]int64, n+1),
		Col:    make([]uint32, nnz),
		Val:    make([]float64, nnz),
	}
	// Decode the three arrays in bounded chunks.
	if err := readInt64s(h, a.RowPtr); err != nil {
		return nil, fmt.Errorf("sparse: reading row pointers: %w", err)
	}
	if err := readUint32s(h, a.Col); err != nil {
		return nil, fmt.Errorf("sparse: reading columns: %w", err)
	}
	if err := readFloat64s(h, a.Val); err != nil {
		return nil, fmt.Errorf("sparse: reading values: %w", err)
	}
	want := h.crc
	var tail [4]byte
	if _, err := io.ReadFull(h.r, tail[:]); err != nil {
		return nil, fmt.Errorf("sparse: reading checksum: %w", err)
	}
	if stored := binary.LittleEndian.Uint32(tail[:]); stored != want {
		return nil, fmt.Errorf("sparse: checksum mismatch: stored %#x, computed %#x", stored, want)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("sparse: deserialized matrix invalid: %w", err)
	}
	return a, nil
}

// chunkElems bounds the per-read staging buffer (1 MiB of elements).
const chunkElems = 128 << 10

func readInt64s(h *hashedReader, dst []int64) error {
	for off := 0; off < len(dst); off += chunkElems {
		end := off + chunkElems
		if end > len(dst) {
			end = len(dst)
		}
		buf, err := h.next(8 * (end - off))
		if err != nil {
			return err
		}
		for i := off; i < end; i++ {
			dst[i] = int64(binary.LittleEndian.Uint64(buf[8*(i-off):]))
		}
	}
	return nil
}

func readUint32s(h *hashedReader, dst []uint32) error {
	for off := 0; off < len(dst); off += chunkElems {
		end := off + chunkElems
		if end > len(dst) {
			end = len(dst)
		}
		buf, err := h.next(4 * (end - off))
		if err != nil {
			return err
		}
		for i := off; i < end; i++ {
			dst[i] = binary.LittleEndian.Uint32(buf[4*(i-off):])
		}
	}
	return nil
}

func readFloat64s(h *hashedReader, dst []float64) error {
	for off := 0; off < len(dst); off += chunkElems {
		end := off + chunkElems
		if end > len(dst) {
			end = len(dst)
		}
		buf, err := h.next(8 * (end - off))
		if err != nil {
			return err
		}
		for i := off; i < end; i++ {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*(i-off):]))
		}
	}
	return nil
}
