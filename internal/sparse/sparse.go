package sparse

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/edge"
)

// MaxDim is the largest supported matrix dimension (uint32 column labels).
const MaxDim = 1 << 32

// CSR is a square sparse matrix in compressed sparse row form.
// Row i's entries live in Col[RowPtr[i]:RowPtr[i+1]] (column indices,
// strictly increasing within a row) and Val likewise.
type CSR struct {
	// N is the matrix dimension.
	N int
	// RowPtr has length N+1; RowPtr[0] == 0 and RowPtr[N] == NNZ.
	RowPtr []int64
	// Col holds the column index of each stored entry.
	Col []uint32
	// Val holds the value of each stored entry.
	Val []float64
}

// NNZ returns the number of stored entries (including explicit zeros).
func (a *CSR) NNZ() int { return len(a.Col) }

// Footprint returns the matrix's in-memory size in bytes — the three
// CSR arrays at their allocated capacity.  The service layer's staged
// artifact cache charges resident matrices at this cost.
func (a *CSR) Footprint() int64 {
	return int64(cap(a.RowPtr))*8 + int64(cap(a.Col))*4 + int64(cap(a.Val))*8
}

// SumValues returns the sum of all stored values.  For the kernel-2
// adjacency matrix before filtering this must equal M, the paper's
// "all the entries in A should sum to M" check.
func (a *CSR) SumValues() float64 {
	var s float64
	for _, v := range a.Val {
		s += v
	}
	return s
}

// At returns the value at (i, j), zero if no entry is stored.
// It runs a binary search within row i; intended for tests and validation,
// not inner loops.
func (a *CSR) At(i, j int) float64 {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	row := a.Col[lo:hi]
	k := sort.Search(len(row), func(k int) bool { return row[k] >= uint32(j) })
	if k < len(row) && row[k] == uint32(j) {
		return a.Val[lo+int64(k)]
	}
	return 0
}

// Clone returns a deep copy of the matrix.
func (a *CSR) Clone() *CSR {
	b := &CSR{
		N:      a.N,
		RowPtr: append([]int64(nil), a.RowPtr...),
		Col:    append([]uint32(nil), a.Col...),
		Val:    append([]float64(nil), a.Val...),
	}
	return b
}

// Validate checks structural invariants: monotone row pointers, in-range
// and strictly increasing column indices.  It is used by tests and by the
// pipeline's self-checks.
func (a *CSR) Validate() error {
	if len(a.RowPtr) != a.N+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want N+1 = %d", len(a.RowPtr), a.N+1)
	}
	if a.RowPtr[0] != 0 || a.RowPtr[a.N] != int64(len(a.Col)) || len(a.Col) != len(a.Val) {
		return fmt.Errorf("sparse: inconsistent RowPtr bounds or slice lengths")
	}
	for i := 0; i < a.N; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		if lo > hi {
			return fmt.Errorf("sparse: row %d has negative extent", i)
		}
		for k := lo; k < hi; k++ {
			if int(a.Col[k]) >= a.N {
				return fmt.Errorf("sparse: row %d entry %d: column %d out of range", i, k, a.Col[k])
			}
			if k > lo && a.Col[k] <= a.Col[k-1] {
				return fmt.Errorf("sparse: row %d columns not strictly increasing at %d", i, k)
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Builders

// FromEdges builds the N×N counting adjacency matrix from an edge list in
// arbitrary order: A(u,v) = multiplicity of edge (u,v).  It does not modify
// the input.  Cost is O(M + N) time using a counting pass over start
// vertices followed by per-row sorting and duplicate accumulation.
func FromEdges(l *edge.List, n int) (*CSR, error) {
	if err := checkDim(n); err != nil {
		return nil, err
	}
	m := l.Len()
	// Count row occupancy (with duplicates).
	rowPtr := make([]int64, n+1)
	for _, u := range l.U {
		if u >= uint64(n) {
			return nil, fmt.Errorf("sparse: start vertex %d out of range N=%d", u, n)
		}
		rowPtr[u+1]++
	}
	for i := 0; i < n; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	// Scatter columns into row buckets.
	cols := make([]uint32, m)
	next := make([]int64, n)
	copy(next, rowPtr[:n])
	for i := 0; i < m; i++ {
		v := l.V[i]
		if v >= uint64(n) {
			return nil, fmt.Errorf("sparse: end vertex %d out of range N=%d", v, n)
		}
		u := l.U[i]
		cols[next[u]] = uint32(v)
		next[u]++
	}
	return compressRows(n, rowPtr, cols), nil
}

// FromSortedEdges builds the counting adjacency matrix from an edge list
// already sorted by start vertex (kernel 1's postcondition), skipping the
// scatter pass.
func FromSortedEdges(l *edge.List, n int) (*CSR, error) {
	if err := checkDim(n); err != nil {
		return nil, err
	}
	if !l.IsSortedByU() {
		return nil, fmt.Errorf("sparse: FromSortedEdges input is not sorted by start vertex")
	}
	m := l.Len()
	rowPtr := make([]int64, n+1)
	cols := make([]uint32, m)
	for i := 0; i < m; i++ {
		u, v := l.U[i], l.V[i]
		if u >= uint64(n) || v >= uint64(n) {
			return nil, fmt.Errorf("sparse: edge (%d,%d) out of range N=%d", u, v, n)
		}
		rowPtr[u+1]++
		cols[i] = uint32(v)
	}
	for i := 0; i < n; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	return compressRows(n, rowPtr, cols), nil
}

func checkDim(n int) error {
	if n <= 0 || int64(n) > MaxDim {
		return fmt.Errorf("sparse: dimension %d out of range (0, 2^32]", n)
	}
	return nil
}

// compressRows sorts each row bucket of cols, accumulates duplicates into
// counts, and assembles the final CSR.  rowPtr delimits the uncompressed
// buckets and is consumed.
func compressRows(n int, rowPtr []int64, cols []uint32) *CSR {
	outPtr := make([]int64, n+1)
	outCols := cols[:0] // compact in place: writes never overtake reads
	vals := make([]float64, 0, len(cols))
	w := int64(0)
	for i := 0; i < n; i++ {
		lo, hi := rowPtr[i], rowPtr[i+1]
		row := cols[lo:hi]
		sortUint32(row)
		for k := 0; k < len(row); {
			c := row[k]
			cnt := 1
			for k+cnt < len(row) && row[k+cnt] == c {
				cnt++
			}
			outCols = append(outCols[:w], c)
			vals = append(vals, float64(cnt))
			w++
			k += cnt
		}
		outPtr[i+1] = w
	}
	return &CSR{N: n, RowPtr: outPtr, Col: outCols[:w], Val: vals}
}

// sortUint32 sorts small uint32 slices; insertion sort below a threshold,
// sort.Slice above it.  Row lengths in Kronecker graphs are mostly tiny
// with a few huge hub rows, so both paths matter.
func sortUint32(s []uint32) {
	if len(s) < 24 {
		for i := 1; i < len(s); i++ {
			v := s[i]
			j := i - 1
			for j >= 0 && s[j] > v {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = v
		}
		return
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// FromTriplets builds a CSR from explicit (row, col, val) triplets,
// accumulating duplicates by addition.  It is the general GraphBLAS-style
// build used in tests and by the dense converter.
func FromTriplets(n int, rows, cols []int, vals []float64) (*CSR, error) {
	if err := checkDim(n); err != nil {
		return nil, err
	}
	if len(rows) != len(cols) || len(rows) != len(vals) {
		return nil, fmt.Errorf("sparse: triplet slices have unequal lengths %d/%d/%d", len(rows), len(cols), len(vals))
	}
	type entry struct {
		r, c int
		v    float64
	}
	entries := make([]entry, len(rows))
	for i := range rows {
		if rows[i] < 0 || rows[i] >= n || cols[i] < 0 || cols[i] >= n {
			return nil, fmt.Errorf("sparse: triplet (%d,%d) out of range N=%d", rows[i], cols[i], n)
		}
		entries[i] = entry{rows[i], cols[i], vals[i]}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].r != entries[j].r {
			return entries[i].r < entries[j].r
		}
		return entries[i].c < entries[j].c
	})
	a := &CSR{N: n, RowPtr: make([]int64, n+1)}
	for i := 0; i < len(entries); {
		e := entries[i]
		sum := e.v
		j := i + 1
		for j < len(entries) && entries[j].r == e.r && entries[j].c == e.c {
			sum += entries[j].v
			j++
		}
		a.Col = append(a.Col, uint32(e.c))
		a.Val = append(a.Val, sum)
		a.RowPtr[e.r+1] = int64(len(a.Col))
		i = j
	}
	for i := 0; i < n; i++ {
		if a.RowPtr[i+1] < a.RowPtr[i] {
			a.RowPtr[i+1] = a.RowPtr[i]
		}
	}
	return a, nil
}

// ---------------------------------------------------------------------------
// Reductions and scaling (the kernel-2 steps)

// InDegrees returns the column sums din = sum(A, 1) as a dense vector.
func (a *CSR) InDegrees() []float64 {
	din := make([]float64, a.N)
	for k, c := range a.Col {
		din[c] += a.Val[k]
	}
	return din
}

// OutDegrees returns the row sums dout = sum(A, 2) as a dense vector.
func (a *CSR) OutDegrees() []float64 {
	dout := make([]float64, a.N)
	for i := 0; i < a.N; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k]
		}
		dout[i] = s
	}
	return dout
}

// ZeroColumns sets to zero every stored entry whose column index c has
// mask[c] true, leaving explicit zeros in place (use Compact to drop them).
// It returns the number of entries zeroed.
func (a *CSR) ZeroColumns(mask []bool) int {
	zeroed := 0
	for k, c := range a.Col {
		if mask[c] && a.Val[k] != 0 {
			a.Val[k] = 0
			zeroed++
		}
	}
	return zeroed
}

// Compact removes all stored entries with value zero, preserving order.
func (a *CSR) Compact() {
	w := int64(0)
	read := int64(0)
	for i := 0; i < a.N; i++ {
		hi := a.RowPtr[i+1]
		for ; read < hi; read++ {
			if a.Val[read] != 0 {
				a.Col[w] = a.Col[read]
				a.Val[w] = a.Val[read]
				w++
			}
		}
		a.RowPtr[i+1] = w
	}
	a.Col = a.Col[:w]
	a.Val = a.Val[:w]
}

// ScaleRows divides every entry of row i by scale[i] wherever scale[i] is
// non-zero: the kernel-2 normalization A(i,:) = A(i,:) / dout(i) for
// dout(i) > 0.
func (a *CSR) ScaleRows(scale []float64) {
	for i := 0; i < a.N; i++ {
		s := scale[i]
		if s == 0 {
			continue
		}
		inv := 1 / s
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			a.Val[k] *= inv
		}
	}
}

// Kernel2Mask returns the benchmark's kernel-2 column-elimination mask
// for the in-degree vector din: true for columns whose in-degree equals
// max(din) (super-nodes) or exactly 1 (leaves); empty columns are never
// marked.  It also returns max(din) and the super-node and leaf column
// counts.  Both the serial filter (pipeline.ApplyKernel2Filter) and the
// distributed filter (internal/dist) derive their masks here, which is
// what keeps the two bit-identical.
func Kernel2Mask(din []float64) (mask []bool, maxDin float64, superNodes, leaves int) {
	maxDin = MaxValue(din)
	mask = make([]bool, len(din))
	for j, d := range din {
		switch {
		case d == 0:
			// empty column: nothing to eliminate
		case d == maxDin:
			mask[j] = true
			superNodes++
		case d == 1:
			mask[j] = true
			leaves++
		}
	}
	return mask, maxDin, superNodes, leaves
}

// MaxValue returns the maximum of vec, or 0 for an empty vector.
func MaxValue(vec []float64) float64 {
	m := math.Inf(-1)
	for _, v := range vec {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// ---------------------------------------------------------------------------
// Transpose and dense conversion

// Transpose returns Aᵀ as a new CSR.  The transposed matrix doubles as the
// CSC view of A, giving the gather formulation of the kernel-3 product.
func (a *CSR) Transpose() *CSR {
	n := a.N
	t := &CSR{N: n, RowPtr: make([]int64, n+1), Col: make([]uint32, a.NNZ()), Val: make([]float64, a.NNZ())}
	for _, c := range a.Col {
		t.RowPtr[c+1]++
	}
	for i := 0; i < n; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := make([]int64, n)
	copy(next, t.RowPtr[:n])
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c := a.Col[k]
			p := next[c]
			t.Col[p] = uint32(i)
			t.Val[p] = a.Val[k]
			next[c]++
		}
	}
	return t
}

// Dense returns the matrix as a dense row-major [][]float64.  It refuses
// dimensions above 4096 to avoid accidental huge allocations; it exists for
// the paper's small-scale eigenvector validation.
func (a *CSR) Dense() ([][]float64, error) {
	if a.N > 4096 {
		return nil, fmt.Errorf("sparse: Dense refused for N = %d > 4096", a.N)
	}
	d := make([][]float64, a.N)
	for i := range d {
		d[i] = make([]float64, a.N)
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d[i][a.Col[k]] = a.Val[k]
		}
	}
	return d, nil
}

// ---------------------------------------------------------------------------
// Vector-matrix products (the kernel-3 primitive)

// VxM computes out = r·A (row vector times matrix) with the scatter
// formulation: for every stored entry A(i,j), out[j] += r[i]·A(i,j).
// out must have length N and is overwritten.
func (a *CSR) VxM(out, r []float64) {
	for i := range out {
		out[i] = 0
	}
	for i := 0; i < a.N; i++ {
		ri := r[i]
		if ri == 0 {
			continue
		}
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			out[a.Col[k]] += ri * a.Val[k]
		}
	}
}

// MxV computes out = A·x (matrix times column vector) with the gather
// formulation: out[i] = Σ_k A(i,k)·x[k].  Applied to Aᵀ this evaluates
// r·A by gathering, the cache-friendly alternative to VxM's scattering.
func (a *CSR) MxV(out, x []float64) {
	for i := 0; i < a.N; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.Col[k]]
		}
		out[i] = s
	}
}

// MxVRange computes the rows [lo, hi) of out = A·x — the gather product
// restricted to a contiguous row range.  Each output element depends only
// on its own row, so disjoint ranges may be computed concurrently with no
// coordination and no effect on the result's bits; this is the primitive
// the persistent worker teams of pagerank and dist partition over.
func (a *CSR) MxVRange(out, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.Col[k]]
		}
		out[i] = s
	}
}

// ParallelMxV computes out = A·x splitting rows across workers goroutines.
// Row partitioning makes the gather product embarrassingly parallel, which
// is why the paper's proposed decomposition stores row blocks per processor.
func (a *CSR) ParallelMxV(out, x []float64, workers int) {
	if workers < 2 || a.N < 2*workers {
		a.MxV(out, x)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * a.N / workers
		hi := (w + 1) * a.N / workers
		wg.Add(1)
		//prlint:allow determinism -- row-parallel MxV: workers write disjoint out[lo:hi] ranges and join on wg
		go func(lo, hi int) {
			defer wg.Done()
			a.MxVRange(out, x, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// VxMScratch holds the per-worker private accumulators of ParallelVxMWith,
// so repeated products reuse one workers·N float allocation instead of
// churning it every call.  A scratch may be reused across matrices and
// worker counts; Ensure grows it as needed.  The zero value is ready to
// use.  A scratch must not be shared by concurrent products.
type VxMScratch struct {
	acc [][]float64
}

// Ensure grows the scratch to hold workers accumulators of length n.
func (s *VxMScratch) Ensure(n, workers int) {
	if len(s.acc) < workers {
		acc := make([][]float64, workers)
		copy(acc, s.acc)
		s.acc = acc
	}
	for w := 0; w < workers; w++ {
		if len(s.acc[w]) < n {
			s.acc[w] = make([]float64, n)
		}
	}
}

// vxmPool recycles scratches for the one-shot ParallelVxM entry point, so
// even callers without a scratch of their own stop allocating workers·N
// floats per call in steady state.
var vxmPool = sync.Pool{New: func() any { return new(VxMScratch) }}

// ParallelVxM computes out = r·A with per-worker private accumulators that
// are reduced at the end, avoiding write conflicts on out.  The
// accumulators come from an internal pool, so repeated calls do not churn
// workers·N temporary floats; callers iterating a fixed problem should
// hold a VxMScratch and call ParallelVxMWith, and callers preferring
// memory economy can transpose once and use ParallelMxV.
func (a *CSR) ParallelVxM(out, r []float64, workers int) {
	if workers < 2 || a.N < 2*workers {
		a.VxM(out, r)
		return
	}
	s := vxmPool.Get().(*VxMScratch)
	a.ParallelVxMWith(out, r, workers, s)
	vxmPool.Put(s)
}

// ParallelVxMWith is ParallelVxM backed by a caller-owned scratch.  The
// per-worker partial accumulators are reduced into out in ascending worker
// order, so the result is deterministic for a fixed worker count (workers
// partition distinct row ranges, so the floating-point association — and
// therefore the bits — depends on workers).
func (a *CSR) ParallelVxMWith(out, r []float64, workers int, s *VxMScratch) {
	if workers < 2 || a.N < 2*workers {
		a.VxM(out, r)
		return
	}
	s.Ensure(a.N, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * a.N / workers
		hi := (w + 1) * a.N / workers
		wg.Add(1)
		//prlint:allow determinism -- per-worker accumulators are folded in fixed worker order after wg.Wait, so the FP sum is reproducible
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := s.acc[w][:a.N]
			for i := range acc {
				acc[i] = 0
			}
			for i := lo; i < hi; i++ {
				ri := r[i]
				if ri == 0 {
					continue
				}
				for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
					acc[a.Col[k]] += ri * a.Val[k]
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for i := range out {
		out[i] = 0
	}
	for w := 0; w < workers; w++ {
		acc := s.acc[w][:a.N]
		for i, v := range acc {
			out[i] += v
		}
	}
}

// ---------------------------------------------------------------------------
// Vector helpers shared by the PageRank kernels

// Sum returns the sum of the vector's elements.
func Sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Norm1 returns the 1-norm (sum of absolute values).
func Norm1(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Scale multiplies every element of v by a.
func Scale(v []float64, a float64) {
	for i := range v {
		v[i] *= a
	}
}

// AddConst adds a to every element of v.
func AddConst(v []float64, a float64) {
	for i := range v {
		v[i] += a
	}
}

// Diff1 returns the 1-norm of (a - b); the convergence measure the paper
// mentions real PageRank deployments use.
func Diff1(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}
