package sparse

// Tests for the VxMScratch reuse API: correctness against the serial
// scatter for every worker count, scratch growth across problem sizes,
// and stability of the reused accumulators (the workers·N churn the API
// exists to eliminate).

import (
	"testing"

	"repro/internal/edge"
	"repro/internal/xrand"
)

func scratchTestMatrix(t testing.TB, seed uint64, m, n int) *CSR {
	t.Helper()
	g := xrand.New(seed)
	l := edge.NewList(m)
	for i := 0; i < m; i++ {
		l.Append(g.Uint64n(uint64(n)), g.Uint64n(uint64(n)))
	}
	a, err := FromEdges(l, n)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestParallelVxMWithMatchesSerial(t *testing.T) {
	var s VxMScratch // zero value must be ready to use
	for _, n := range []int{64, 1 << 10} {
		a := scratchTestMatrix(t, 11, 8*n, n)
		r := make([]float64, n)
		for i := range r {
			r[i] = float64(i%5) / 7
		}
		want := make([]float64, n)
		a.VxM(want, r)
		for _, workers := range []int{1, 2, 3, 8} {
			got := make([]float64, n)
			a.ParallelVxMWith(got, r, workers, &s)
			for j := range want {
				// Per-worker partials re-associate the reduction, so
				// compare within floating-point slack, not bit-for-bit
				// (the bit-stable hybrid path lives in internal/dist).
				if d := got[j] - want[j]; d > 1e-12 || d < -1e-12 {
					t.Fatalf("n=%d workers=%d: out[%d] = %v, serial %v", n, workers, j, got[j], want[j])
				}
			}
		}
	}
}

func TestVxMScratchReusesAccumulators(t *testing.T) {
	a := scratchTestMatrix(t, 12, 1<<13, 1<<10)
	r := make([]float64, a.N)
	for i := range r {
		r[i] = 1 / float64(a.N)
	}
	out := make([]float64, a.N)
	var s VxMScratch
	const workers = 4
	a.ParallelVxMWith(out, r, workers, &s)
	if len(s.acc) < workers {
		t.Fatalf("scratch holds %d accumulators after use, want >= %d", len(s.acc), workers)
	}
	before := make([]*float64, workers)
	for w := 0; w < workers; w++ {
		before[w] = &s.acc[w][0]
	}
	for i := 0; i < 10; i++ {
		a.ParallelVxMWith(out, r, workers, &s)
	}
	for w := 0; w < workers; w++ {
		if &s.acc[w][0] != before[w] {
			t.Fatalf("worker %d accumulator was reallocated on reuse — the churn the scratch exists to avoid", w)
		}
	}
}

func TestVxMScratchGrowsAcrossShapes(t *testing.T) {
	small := scratchTestMatrix(t, 13, 1<<9, 1<<7)
	big := scratchTestMatrix(t, 13, 1<<12, 1<<10)
	var s VxMScratch
	for _, a := range []*CSR{small, big, small} { // grow, then shrink back
		r := make([]float64, a.N)
		for i := range r {
			r[i] = 1
		}
		got := make([]float64, a.N)
		want := make([]float64, a.N)
		a.ParallelVxMWith(got, r, 3, &s)
		a.VxM(want, r)
		for j := range want {
			if d := got[j] - want[j]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("N=%d: out[%d] = %v, serial %v", a.N, j, got[j], want[j])
			}
		}
	}
}
