package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/edge"
	"repro/internal/xrand"
)

func randomList(seed uint64, m int, n uint64) *edge.List {
	g := xrand.New(seed)
	l := edge.NewList(m)
	for i := 0; i < m; i++ {
		l.Append(g.Uint64n(n), g.Uint64n(n))
	}
	return l
}

func TestFromEdgesSmall(t *testing.T) {
	l := edge.NewList(5)
	l.Append(0, 1)
	l.Append(0, 1) // duplicate accumulates
	l.Append(1, 2)
	l.Append(2, 0)
	l.Append(2, 2) // self loop
	a, err := FromEdges(l, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := a.At(0, 1); got != 2 {
		t.Errorf("A(0,1) = %v, want 2 (duplicate accumulation)", got)
	}
	if got := a.At(1, 2); got != 1 {
		t.Errorf("A(1,2) = %v", got)
	}
	if got := a.At(2, 2); got != 1 {
		t.Errorf("A(2,2) = %v (self loop)", got)
	}
	if got := a.At(1, 0); got != 0 {
		t.Errorf("A(1,0) = %v, want 0", got)
	}
	if a.NNZ() != 4 {
		t.Errorf("NNZ = %d, want 4", a.NNZ())
	}
	if s := a.SumValues(); s != 5 {
		t.Errorf("sum of entries = %v, want M = 5", s)
	}
}

func TestFromEdgesMassConservation(t *testing.T) {
	// Paper: "all the entries in A should sum to M" and "A should have
	// fewer than M non-zero entries" (because of collisions).
	const m, n = 20000, 256
	l := randomList(1, m, n)
	a, err := FromEdges(l, n)
	if err != nil {
		t.Fatal(err)
	}
	if s := a.SumValues(); s != m {
		t.Errorf("sum = %v, want %d", s, m)
	}
	if a.NNZ() >= m {
		t.Errorf("NNZ = %d, want < M = %d given collisions", a.NNZ(), m)
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFromEdgesOutOfRange(t *testing.T) {
	l := edge.NewList(1)
	l.Append(5, 0)
	if _, err := FromEdges(l, 3); err == nil {
		t.Error("out-of-range start vertex accepted")
	}
	l2 := edge.NewList(1)
	l2.Append(0, 5)
	if _, err := FromEdges(l2, 3); err == nil {
		t.Error("out-of-range end vertex accepted")
	}
	if _, err := FromEdges(l, 0); err == nil {
		t.Error("zero dimension accepted")
	}
}

func TestFromSortedEdgesMatchesFromEdges(t *testing.T) {
	l := randomList(2, 5000, 128)
	a, err := FromEdges(l, 128)
	if err != nil {
		t.Fatal(err)
	}
	// Sort by U and rebuild via the fast path.
	sorted := l.Clone()
	sortByU(sorted)
	b, err := FromSortedEdges(sorted, 128)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatrix(t, a, b)
}

func sortByU(l *edge.List) {
	// local simple sort to avoid importing xsort (cycle-free but keep
	// the test self-contained)
	less := func(i, j int) bool { return l.U[i] < l.U[j] }
	for i := 1; i < l.Len(); i++ {
		for j := i; j > 0 && less(j, j-1); j-- {
			l.Swap(j, j-1)
		}
	}
}

func assertSameMatrix(t *testing.T, a, b *CSR) {
	t.Helper()
	if a.N != b.N || a.NNZ() != b.NNZ() {
		t.Fatalf("shape mismatch: N %d/%d NNZ %d/%d", a.N, b.N, a.NNZ(), b.NNZ())
	}
	for i := 0; i <= a.N; i++ {
		if a.RowPtr[i] != b.RowPtr[i] {
			t.Fatalf("RowPtr[%d] = %d vs %d", i, a.RowPtr[i], b.RowPtr[i])
		}
	}
	for k := range a.Col {
		if a.Col[k] != b.Col[k] || a.Val[k] != b.Val[k] {
			t.Fatalf("entry %d: (%d,%v) vs (%d,%v)", k, a.Col[k], a.Val[k], b.Col[k], b.Val[k])
		}
	}
}

func TestFromSortedEdgesRejectsUnsorted(t *testing.T) {
	l := edge.NewList(2)
	l.Append(3, 0)
	l.Append(1, 0)
	if _, err := FromSortedEdges(l, 4); err == nil {
		t.Error("unsorted input accepted")
	}
}

func TestFromTriplets(t *testing.T) {
	a, err := FromTriplets(3, []int{0, 0, 2}, []int{1, 1, 0}, []float64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.At(0, 1); got != 3 {
		t.Errorf("accumulated A(0,1) = %v, want 3", got)
	}
	if got := a.At(2, 0); got != 5 {
		t.Errorf("A(2,0) = %v", got)
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
	if _, err := FromTriplets(3, []int{0}, []int{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FromTriplets(3, []int{9}, []int{0}, []float64{1}); err == nil {
		t.Error("out-of-range triplet accepted")
	}
}

func TestInOutDegrees(t *testing.T) {
	l := edge.NewList(4)
	l.Append(0, 2)
	l.Append(1, 2)
	l.Append(1, 2)
	l.Append(2, 0)
	a, _ := FromEdges(l, 3)
	din := a.InDegrees()
	if din[0] != 1 || din[1] != 0 || din[2] != 3 {
		t.Errorf("din = %v, want [1 0 3]", din)
	}
	dout := a.OutDegrees()
	if dout[0] != 1 || dout[1] != 2 || dout[2] != 1 {
		t.Errorf("dout = %v, want [1 2 1]", dout)
	}
}

func TestDegreeIdentity(t *testing.T) {
	// sum(din) == sum(dout) == sum(A) == M for any edge list.
	err := quick.Check(func(seed uint64) bool {
		l := randomList(seed, 500, 64)
		a, err := FromEdges(l, 64)
		if err != nil {
			return false
		}
		return Sum(a.InDegrees()) == 500 && Sum(a.OutDegrees()) == 500 && a.SumValues() == 500
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestZeroColumnsAndCompact(t *testing.T) {
	l := randomList(3, 1000, 32)
	a, _ := FromEdges(l, 32)
	before := a.NNZ()
	mask := make([]bool, 32)
	mask[5] = true
	mask[17] = true
	zeroed := a.ZeroColumns(mask)
	if zeroed == 0 {
		t.Fatal("nothing zeroed; test graph should hit columns 5 and 17")
	}
	din := a.InDegrees()
	if din[5] != 0 || din[17] != 0 {
		t.Errorf("zeroed columns still have in-degree: %v %v", din[5], din[17])
	}
	if a.NNZ() != before {
		t.Error("ZeroColumns should keep explicit zeros")
	}
	a.Compact()
	if a.NNZ() != before-zeroed {
		t.Errorf("Compact left %d entries, want %d", a.NNZ(), before-zeroed)
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
	for k := range a.Val {
		if a.Val[k] == 0 {
			t.Fatal("explicit zero survived Compact")
		}
	}
}

func TestScaleRowsNormalizes(t *testing.T) {
	l := randomList(4, 2000, 64)
	a, _ := FromEdges(l, 64)
	dout := a.OutDegrees()
	a.ScaleRows(dout)
	newDout := a.OutDegrees()
	for i, d := range newDout {
		if dout[i] == 0 {
			if d != 0 {
				t.Fatalf("empty row %d gained mass %v", i, d)
			}
			continue
		}
		if math.Abs(d-1) > 1e-12 {
			t.Fatalf("row %d sums to %v after normalization", i, d)
		}
	}
}

func TestScaleRowsSkipsZeroScale(t *testing.T) {
	a, _ := FromTriplets(2, []int{0}, []int{1}, []float64{3})
	a.ScaleRows([]float64{0, 0})
	if a.At(0, 1) != 3 {
		t.Error("zero scale should leave row untouched")
	}
}

func TestTranspose(t *testing.T) {
	l := randomList(5, 3000, 128)
	a, _ := FromEdges(l, 128)
	at := a.Transpose()
	if err := at.Validate(); err != nil {
		t.Fatal(err)
	}
	if at.NNZ() != a.NNZ() {
		t.Fatalf("transpose NNZ %d != %d", at.NNZ(), a.NNZ())
	}
	// Spot-check entries.
	g := xrand.New(6)
	for k := 0; k < 200; k++ {
		i, j := g.Intn(128), g.Intn(128)
		if a.At(i, j) != at.At(j, i) {
			t.Fatalf("A(%d,%d) = %v but Aᵀ(%d,%d) = %v", i, j, a.At(i, j), j, i, at.At(j, i))
		}
	}
	// Double transpose is identity.
	att := at.Transpose()
	assertSameMatrix(t, a, att)
}

func TestDense(t *testing.T) {
	a, _ := FromTriplets(3, []int{0, 1}, []int{2, 1}, []float64{4, 7})
	d, err := a.Dense()
	if err != nil {
		t.Fatal(err)
	}
	if d[0][2] != 4 || d[1][1] != 7 || d[0][0] != 0 {
		t.Errorf("dense conversion wrong: %v", d)
	}
	big := &CSR{N: 5000, RowPtr: make([]int64, 5001)}
	if _, err := big.Dense(); err == nil {
		t.Error("Dense accepted N=5000")
	}
}

func TestVxMAgainstDense(t *testing.T) {
	const n = 64
	l := randomList(7, 1000, n)
	a, _ := FromEdges(l, n)
	d, _ := a.Dense()
	g := xrand.New(8)
	r := make([]float64, n)
	for i := range r {
		r[i] = g.Float64()
	}
	want := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			want[j] += r[i] * d[i][j]
		}
	}
	got := make([]float64, n)
	a.VxM(got, r)
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-9 {
			t.Fatalf("VxM[%d] = %v, want %v", j, got[j], want[j])
		}
	}
	// Gather form through the transpose must agree.
	gotT := make([]float64, n)
	a.Transpose().MxV(gotT, r)
	for j := range want {
		if math.Abs(gotT[j]-want[j]) > 1e-9 {
			t.Fatalf("Transpose+MxV[%d] = %v, want %v", j, gotT[j], want[j])
		}
	}
}

func TestParallelProductsMatchSerial(t *testing.T) {
	const n = 500
	l := randomList(9, 8000, n)
	a, _ := FromEdges(l, n)
	g := xrand.New(10)
	r := make([]float64, n)
	for i := range r {
		r[i] = g.Float64()
	}
	want := make([]float64, n)
	a.VxM(want, r)
	for _, workers := range []int{1, 2, 3, 8} {
		got := make([]float64, n)
		a.ParallelVxM(got, r, workers)
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-9 {
				t.Fatalf("ParallelVxM(workers=%d)[%d] = %v, want %v", workers, j, got[j], want[j])
			}
		}
	}
	at := a.Transpose()
	wantG := make([]float64, n)
	at.MxV(wantG, r)
	for _, workers := range []int{1, 2, 5} {
		got := make([]float64, n)
		at.ParallelMxV(got, r, workers)
		for j := range wantG {
			if got[j] != wantG[j] {
				t.Fatalf("ParallelMxV(workers=%d)[%d] = %v, want %v", workers, j, got[j], wantG[j])
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	a, _ := FromTriplets(2, []int{0}, []int{1}, []float64{1})
	b := a.Clone()
	b.Val[0] = 99
	if a.Val[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	a, _ := FromTriplets(3, []int{0, 0}, []int{1, 2}, []float64{1, 1})
	a.Col[1] = a.Col[0] // duplicate column in row
	if err := a.Validate(); err == nil {
		t.Error("Validate missed non-increasing columns")
	}
	b, _ := FromTriplets(3, []int{0}, []int{1}, []float64{1})
	b.RowPtr[3] = 99
	if err := b.Validate(); err == nil {
		t.Error("Validate missed bad RowPtr tail")
	}
}

func TestVectorHelpers(t *testing.T) {
	v := []float64{1, -2, 3}
	if Sum(v) != 2 {
		t.Errorf("Sum = %v", Sum(v))
	}
	if Norm1(v) != 6 {
		t.Errorf("Norm1 = %v", Norm1(v))
	}
	if MaxValue(v) != 3 {
		t.Errorf("MaxValue = %v", MaxValue(v))
	}
	if MaxValue(nil) != 0 {
		t.Errorf("MaxValue(nil) = %v", MaxValue(nil))
	}
	w := append([]float64(nil), v...)
	Scale(w, 2)
	if w[2] != 6 {
		t.Errorf("Scale: %v", w)
	}
	AddConst(w, 1)
	if w[0] != 3 {
		t.Errorf("AddConst: %v", w)
	}
	if Diff1([]float64{1, 2}, []float64{2, 0}) != 3 {
		t.Error("Diff1 wrong")
	}
}

func TestSortUint32Paths(t *testing.T) {
	// Exercise both the insertion-sort and sort.Slice paths.
	for _, n := range []int{0, 1, 5, 23, 24, 100} {
		g := xrand.New(uint64(n))
		s := make([]uint32, n)
		for i := range s {
			s[i] = uint32(g.Uint64n(50))
		}
		sortUint32(s)
		for i := 1; i < n; i++ {
			if s[i-1] > s[i] {
				t.Fatalf("n=%d: not sorted at %d", n, i)
			}
		}
	}
}

func BenchmarkFromEdges(b *testing.B) {
	l := randomList(1, 100000, 1<<14)
	b.SetBytes(int64(l.Len()))
	for i := 0; i < b.N; i++ {
		if _, err := FromEdges(l, 1<<14); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVxM(b *testing.B) {
	l := randomList(1, 100000, 1<<14)
	a, _ := FromEdges(l, 1<<14)
	r := make([]float64, a.N)
	out := make([]float64, a.N)
	for i := range r {
		r[i] = 1.0 / float64(a.N)
	}
	b.SetBytes(int64(a.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.VxM(out, r)
	}
}
