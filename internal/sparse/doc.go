// Package sparse implements the sparse matrix machinery underlying kernels
// 2 and 3 of the PageRank pipeline benchmark.
//
// Kernel 2 constructs the N×N adjacency matrix A = sparse(u, v, 1, N, N)
// where A(u,v) counts duplicate edges, computes the in-degree (column sums),
// zeroes the max-in-degree columns (super-nodes) and in-degree-1 columns
// (leaves), and divides every non-empty row by its out-degree.  Kernel 3
// repeatedly evaluates the row-vector × matrix product r·A.
//
// The package provides a CSR (compressed sparse row) matrix with float64
// values and uint32 column indices (dimension ≤ 2^32, far above feasible
// benchmark scales), builders from edge lists in several sortedness states,
// column/row reductions and scaling, transposition, dense conversion for
// validation, and serial and parallel vector-matrix products in both
// scatter (row-major) and gather (transposed) forms.
package sparse
