package sparse

import (
	"bytes"
	"strings"
	"testing"
)

func TestSerialRoundTrip(t *testing.T) {
	l := randomList(41, 5000, 300)
	a, err := FromEdges(l, 300)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := a.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != buf.Len() {
		t.Errorf("WriteTo reported %d bytes, buffer has %d", n, buf.Len())
	}
	b, err := ReadCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatrix(t, a, b)
}

func TestSerialRoundTripEmpty(t *testing.T) {
	a, _ := FromTriplets(5, nil, nil, nil)
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := ReadCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 5 || b.NNZ() != 0 {
		t.Errorf("empty round trip: N=%d NNZ=%d", b.N, b.NNZ())
	}
}

func TestSerialRoundTripNormalizedValues(t *testing.T) {
	// Fractional values (post-normalization) must survive bit exactly.
	l := randomList(42, 2000, 100)
	a, _ := FromEdges(l, 100)
	a.ScaleRows(a.OutDegrees())
	var buf bytes.Buffer
	a.WriteTo(&buf)
	b, err := ReadCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Val {
		if a.Val[k] != b.Val[k] {
			t.Fatalf("value %d changed: %v -> %v", k, a.Val[k], b.Val[k])
		}
	}
}

func TestSerialDetectsCorruption(t *testing.T) {
	l := randomList(43, 1000, 50)
	a, _ := FromEdges(l, 50)
	var buf bytes.Buffer
	a.WriteTo(&buf)
	data := buf.Bytes()
	// Flip one payload byte in the middle.
	data[len(data)/2] ^= 0x40
	if _, err := ReadCSR(bytes.NewReader(data)); err == nil {
		t.Error("corrupted payload accepted")
	} else if !strings.Contains(err.Error(), "checksum") && !strings.Contains(err.Error(), "invalid") {
		t.Logf("corruption surfaced as: %v (acceptable)", err)
	}
}

func TestSerialDetectsTruncation(t *testing.T) {
	l := randomList(44, 1000, 50)
	a, _ := FromEdges(l, 50)
	var buf bytes.Buffer
	a.WriteTo(&buf)
	data := buf.Bytes()
	for _, cut := range []int{3, 10, len(data) / 2, len(data) - 2} {
		if _, err := ReadCSR(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestSerialRejectsGarbage(t *testing.T) {
	if _, err := ReadCSR(strings.NewReader("not a matrix at all")); err == nil {
		t.Error("garbage magic accepted")
	}
	// Correct magic, hostile header.
	var buf bytes.Buffer
	buf.Write(csrMagic[:])
	buf.Write(make([]byte, 16)) // n = 0
	if _, err := ReadCSR(&buf); err == nil {
		t.Error("n=0 header accepted")
	}
}

func TestSerialLargeChunkedArrays(t *testing.T) {
	// Exceed chunkElems to exercise the chunked decode path.
	n := chunkElems + 1000
	a := &CSR{N: n, RowPtr: make([]int64, n+1), Col: make([]uint32, n), Val: make([]float64, n)}
	for i := 0; i < n; i++ {
		a.RowPtr[i+1] = int64(i + 1)
		a.Col[i] = uint32(i % n)
		a.Val[i] = float64(i)
	}
	// Fix columns to be strictly increasing within each single-entry row.
	for i := 0; i < n; i++ {
		a.Col[i] = uint32(i)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := ReadCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.NNZ() != n || b.Val[n-1] != float64(n-1) {
		t.Error("chunked round trip corrupted data")
	}
}
