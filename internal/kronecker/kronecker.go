// Package kronecker implements the Graph500 Kronecker graph generator used
// by kernel 0 of the PageRank pipeline benchmark.
//
// The generator is the stochastic Kronecker ("R-MAT style") recursive
// quadrant sampler from the Graph500 reference implementation: for each of
// the S bit levels of a scale-S graph, an edge's endpoints gain one bit
// each, chosen with initiator probabilities (A, B, C, D) = (0.57, 0.19,
// 0.19, 0.05).  The paper fixes the edge factor at k = 16, giving
// N = 2^S vertices and M = k·N edges.  Following the Graph500 kernel,
// vertex labels are scrambled with a random permutation and the edge order
// is shuffled, so the output carries no accidental structure for kernel 1's
// sort to exploit.
//
// Generation is reproducible: the same Config always produces the same edge
// list, and GenerateParallel is reproducible for a fixed worker count (each
// worker draws from an independent jump-derived stream, the Graph500
// "no communication between processors" property).
package kronecker

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/edge"
	"repro/internal/fastio"
	"repro/internal/xrand"
)

// Graph500 initiator probabilities.
const (
	DefaultA = 0.57
	DefaultB = 0.19
	DefaultC = 0.19
	DefaultD = 0.05
)

// DefaultEdgeFactor is the paper's k = 16 average edges per vertex.
const DefaultEdgeFactor = 16

// MaxScale bounds the accepted scale so that N = 2^S fits comfortably in
// int/uint64 arithmetic on all platforms.
const MaxScale = 40

// Config parameterizes the generator.  The zero value is not valid; use
// New or fill Scale and call Defaults.
type Config struct {
	// Scale is the Graph500 integer scale factor S; N = 2^S.
	Scale int
	// EdgeFactor is the average number of edges per vertex (k, default 16).
	EdgeFactor int
	// A, B, C, D are the Kronecker initiator probabilities; they must be
	// positive and sum to 1.  Zero values select the Graph500 defaults.
	A, B, C, D float64
	// Seed selects the random stream.
	Seed uint64
	// SkipPermutation disables the vertex relabeling and edge shuffle.
	// The raw Kronecker output is useful for validation because vertex
	// popularity then decreases with label value.
	SkipPermutation bool
}

// New returns a Config for the given scale and seed with all other fields
// at their Graph500 defaults.
func New(scale int, seed uint64) Config {
	return Config{Scale: scale, Seed: seed}.Defaults()
}

// Defaults returns a copy of c with zero fields replaced by the Graph500
// defaults.
func (c Config) Defaults() Config {
	if c.EdgeFactor == 0 {
		c.EdgeFactor = DefaultEdgeFactor
	}
	if c.A == 0 && c.B == 0 && c.C == 0 && c.D == 0 {
		c.A, c.B, c.C, c.D = DefaultA, DefaultB, DefaultC, DefaultD
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Scale < 1 || c.Scale > MaxScale {
		return fmt.Errorf("kronecker: scale %d out of range [1, %d]", c.Scale, MaxScale)
	}
	if c.EdgeFactor < 1 {
		return fmt.Errorf("kronecker: edge factor %d, want >= 1", c.EdgeFactor)
	}
	sum := c.A + c.B + c.C + c.D
	if c.A <= 0 || c.B <= 0 || c.C <= 0 || c.D <= 0 || sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("kronecker: initiator probabilities (%v, %v, %v, %v) must be positive and sum to 1", c.A, c.B, c.C, c.D)
	}
	return nil
}

// N returns the number of vertices, 2^Scale.
func (c Config) N() uint64 { return 1 << uint(c.Scale) }

// M returns the number of edges, EdgeFactor · N.
func (c Config) M() uint64 {
	cc := c.Defaults()
	return uint64(cc.EdgeFactor) << uint(cc.Scale)
}

// sampler holds the per-level quadrant sampling constants derived from the
// initiator matrix, matching the Graph500 Octave kernel:
//
//	ab     = A + B
//	cNorm  = C / (1 - (A+B))
//	aNorm  = A / (A+B)
//	iiBit  = rand > ab
//	jjBit  = rand > (iiBit ? cNorm : aNorm)
type sampler struct {
	ab, cNorm, aNorm float64
}

func newSampler(c Config) sampler {
	return sampler{
		ab:    c.A + c.B,
		cNorm: c.C / (1 - (c.A + c.B)),
		aNorm: c.A / (c.A + c.B),
	}
}

// edgeBits draws one scale-S edge from g.
func (s sampler) edgeBits(g *xrand.Xoshiro256, scale int) (u, v uint64) {
	for bit := 0; bit < scale; bit++ {
		var ii, jj uint64
		if g.Float64() > s.ab {
			ii = 1
		}
		threshold := s.aNorm
		if ii == 1 {
			threshold = s.cNorm
		}
		if g.Float64() > threshold {
			jj = 1
		}
		u |= ii << uint(bit)
		v |= jj << uint(bit)
	}
	return u, v
}

// Generate produces the complete edge list for cfg serially.
func Generate(cfg Config) (*edge.List, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := cfg.M()
	l := edge.Make(int(m))
	g := xrand.NewSeeded(cfg.Seed, 0)
	s := newSampler(cfg)
	for i := uint64(0); i < m; i++ {
		u, v := s.edgeBits(g, cfg.Scale)
		l.Set(int(i), u, v)
	}
	finish(cfg, l)
	return l, nil
}

// GenerateParallel produces the edge list using the given number of worker
// goroutines, each drawing from an independent random stream.  workers <= 0
// selects GOMAXPROCS.  Output is deterministic for a fixed (cfg, workers).
func GenerateParallel(cfg Config, workers int) (*edge.List, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := int(cfg.M())
	if workers > m {
		workers = m
	}
	l := edge.Make(m)
	s := newSampler(cfg)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * m / workers
		hi := (w + 1) * m / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			g := xrand.NewSeeded(cfg.Seed, uint64(w)+1)
			for i := lo; i < hi; i++ {
				u, v := s.edgeBits(g, cfg.Scale)
				l.Set(i, u, v)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	finish(cfg, l)
	return l, nil
}

// finish applies the Graph500 label permutation and edge shuffle.
func finish(cfg Config, l *edge.List) {
	if cfg.SkipPermutation {
		return
	}
	pg := xrand.NewSeeded(cfg.Seed, permStream)
	perm := pg.Perm(int(cfg.N()))
	l.RelabelVertices(perm)
	l.Shuffle(xrand.NewSeeded(cfg.Seed, shuffleStream))
}

// Reserved stream indices for the finishing steps, far from worker streams.
const (
	permStream    = 1<<63 + 1
	shuffleStream = 1<<63 + 2
)

// GenerateTo streams the edges of cfg directly into sink without
// materializing the full edge list, the entry point for the out-of-core
// variant.  The vertex permutation (N uint64 words) is still applied — it
// fits in memory whenever the benchmark itself is feasible — but the edge
// shuffle is skipped: the Kronecker stream is already unordered with respect
// to the start vertex, which is all kernel 1 needs.
func GenerateTo(cfg Config, sink fastio.EdgeSink) error {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return err
	}
	var perm []uint64
	if !cfg.SkipPermutation {
		perm = xrand.NewSeeded(cfg.Seed, permStream).Perm(int(cfg.N()))
	}
	g := xrand.NewSeeded(cfg.Seed, 0)
	s := newSampler(cfg)
	m := cfg.M()
	for i := uint64(0); i < m; i++ {
		u, v := s.edgeBits(g, cfg.Scale)
		if perm != nil {
			u, v = perm[u], perm[v]
		}
		if err := sink.WriteEdge(u, v); err != nil {
			return err
		}
	}
	return sink.Flush()
}
