package kronecker

import (
	"math"
	"testing"

	"repro/internal/edge"
	"repro/internal/fastio"
)

func TestConfigDerivedSizes(t *testing.T) {
	c := New(10, 1)
	if c.N() != 1024 {
		t.Errorf("N = %d, want 1024", c.N())
	}
	if c.M() != 16384 {
		t.Errorf("M = %d, want 16384", c.M())
	}
	// The paper's example: S = 30 gives N = 1,073,741,824 and M = 17,179,869,184.
	c30 := New(30, 0)
	if c30.N() != 1073741824 {
		t.Errorf("N(30) = %d", c30.N())
	}
	if c30.M() != 17179869184 {
		t.Errorf("M(30) = %d", c30.M())
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Scale: 0},
		{Scale: 41},
		{Scale: 10, EdgeFactor: -1, A: 0.25, B: 0.25, C: 0.25, D: 0.25},
		{Scale: 10, EdgeFactor: 16, A: 0.9, B: 0.05, C: 0.04, D: 0.02}, // sums to 1.01
		{Scale: 10, EdgeFactor: 16, A: 1, B: 0, C: 0, D: 0},            // zero entries
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
	if err := New(10, 0).Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestGenerateSizesAndRange(t *testing.T) {
	cfg := New(8, 42)
	l, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(l.Len()) != cfg.M() {
		t.Fatalf("generated %d edges, want %d", l.Len(), cfg.M())
	}
	n := cfg.N()
	for i := 0; i < l.Len(); i++ {
		u, v := l.At(i)
		if u >= n || v >= n {
			t.Fatalf("edge %d = (%d,%d) exceeds N = %d", i, u, v, n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := New(7, 99)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same config generated different graphs")
	}
	cfg2 := New(7, 100)
	c, _ := Generate(cfg2)
	if a.Equal(c) {
		t.Error("different seeds generated identical graphs")
	}
}

func TestGenerateParallelDeterministicPerWorkerCount(t *testing.T) {
	cfg := New(7, 5)
	a, err := GenerateParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("parallel generation not reproducible for fixed worker count")
	}
	if uint64(a.Len()) != cfg.M() {
		t.Errorf("parallel generated %d edges, want %d", a.Len(), cfg.M())
	}
}

func TestGenerateParallelStatisticallySimilarToSerial(t *testing.T) {
	// Parallel and serial outputs differ in randomness but must share the
	// skewed-degree character; compare max in-degree magnitudes loosely.
	cfg := New(9, 7)
	cfg.SkipPermutation = true
	ser, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := GenerateParallel(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	ms, mp := maxOutDegree(ser, cfg.N()), maxOutDegree(par, cfg.N())
	if ms < 10 || mp < 10 {
		t.Fatalf("expected skewed degrees, got max out-degree serial=%d parallel=%d", ms, mp)
	}
	ratio := float64(ms) / float64(mp)
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("serial and parallel degree skew differ wildly: %d vs %d", ms, mp)
	}
}

func maxOutDegree(l *edge.List, n uint64) int {
	deg := make([]int, n)
	for _, u := range l.U {
		deg[u]++
	}
	m := 0
	for _, d := range deg {
		if d > m {
			m = d
		}
	}
	return m
}

func TestSkewTowardLowLabelsWithoutPermutation(t *testing.T) {
	// With A = 0.57 the zero bit is favored at every level, so without the
	// scrambling permutation, vertex 0's quadrant must be the most popular.
	cfg := New(10, 3)
	cfg.SkipPermutation = true
	l, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.N()
	lowHalf := 0
	for _, u := range l.U {
		if u < n/2 {
			lowHalf++
		}
	}
	frac := float64(lowHalf) / float64(l.Len())
	// Expected fraction with start vertex in the low half is A + B = 0.76.
	if math.Abs(frac-0.76) > 0.02 {
		t.Errorf("low-half start-vertex fraction = %.3f, want ~0.76", frac)
	}
}

func TestPermutationPreservesDegreeMultiset(t *testing.T) {
	cfg := New(8, 11)
	raw := cfg
	raw.SkipPermutation = true
	a, err := Generate(raw)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Vertex relabeling is a bijection, so the multiset of out-degree
	// values must be identical between raw and permuted outputs.
	da := degreeHistogram(a, cfg.N())
	db := degreeHistogram(b, cfg.N())
	if len(da) != len(db) {
		t.Fatalf("degree histograms differ in support: %d vs %d", len(da), len(db))
	}
	for k, v := range da {
		if db[k] != v {
			t.Fatalf("degree %d count %d vs %d", k, v, db[k])
		}
	}
}

func degreeHistogram(l *edge.List, n uint64) map[int]int {
	deg := make([]int, n)
	for _, u := range l.U {
		deg[u]++
	}
	h := make(map[int]int)
	for _, d := range deg {
		h[d]++
	}
	return h
}

func TestGenerateToMatchesPermutedVertexStatistics(t *testing.T) {
	cfg := New(8, 21)
	sinkList := edge.NewList(int(cfg.M()))
	if err := GenerateTo(cfg, fastio.NewListSink(sinkList)); err != nil {
		t.Fatal(err)
	}
	if uint64(sinkList.Len()) != cfg.M() {
		t.Fatalf("streamed %d edges, want %d", sinkList.Len(), cfg.M())
	}
	n := cfg.N()
	for i := 0; i < sinkList.Len(); i++ {
		u, v := sinkList.At(i)
		if u >= n || v >= n {
			t.Fatalf("streamed edge (%d,%d) out of range", u, v)
		}
	}
	// The streamed variant uses the same edge randomness and the same
	// permutation stream as Generate; only the final shuffle differs, so
	// the edge multisets must be identical.
	full, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !full.SameMultiset(sinkList) {
		t.Error("GenerateTo and Generate disagree on the edge multiset")
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	if _, err := Generate(Config{Scale: -1}); err == nil {
		t.Error("Generate accepted invalid config")
	}
	if _, err := GenerateParallel(Config{Scale: -1}, 2); err == nil {
		t.Error("GenerateParallel accepted invalid config")
	}
	if err := GenerateTo(Config{Scale: -1}, fastio.NewListSink(edge.NewList(0))); err == nil {
		t.Error("GenerateTo accepted invalid config")
	}
}

func TestSelfLoopsAndDuplicatesExpected(t *testing.T) {
	// The paper notes the generator produces duplicate edges ("collisions")
	// and diagonal entries; verify both occur at moderate scale.
	cfg := New(10, 13)
	l, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := l.Counts()
	if len(counts) >= l.Len() {
		t.Error("expected duplicate edges in Kronecker output, found none")
	}
	selfLoops := 0
	for i := 0; i < l.Len(); i++ {
		u, v := l.At(i)
		if u == v {
			selfLoops++
		}
	}
	if selfLoops == 0 {
		t.Error("expected some self-loop edges, found none")
	}
}

func BenchmarkGenerateScale12(b *testing.B) {
	cfg := New(12, 1)
	b.SetBytes(int64(cfg.M()))
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
