package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 1234567 from the public-domain splitmix64.c.
	sm := NewSplitMix64(1234567)
	want := []uint64{
		0x599ed017fb08fc85,
		0x2c73f08458540fa5,
		0x883ebce5a3f27c77,
	}
	for i, w := range want {
		if got := sm.Next(); got != w {
			t.Errorf("SplitMix64 value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestMix64Bijective(t *testing.T) {
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		m := Mix64(i)
		if prev, dup := seen[m]; dup {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[m] = i
	}
}

func TestXoshiroDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("same-seed generators diverge at step %d: %#x vs %#x", i, x, y)
		}
	}
	c := New(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if New(42).Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different-seed generators agree on %d of 1000 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	g := New(7)
	for i := 0; i < 100000; i++ {
		f := g.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	g := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of %d uniform draws = %v, want ~0.5", n, mean)
	}
}

func TestUint64nBounds(t *testing.T) {
	g := New(3)
	for _, n := range []uint64{1, 2, 3, 7, 16, 1000, 1 << 40} {
		for i := 0; i < 2000; i++ {
			if v := g.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	g := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[g.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from expectation %.0f", i, c, want)
		}
	}
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(-1) did not panic")
		}
	}()
	New(1).Intn(-1)
}

func TestJumpStreamsDisjoint(t *testing.T) {
	// After a jump, the next million draws must not collide with the
	// pre-jump stream prefix (they are 2^128 steps apart).
	a := New(5)
	prefix := make(map[uint64]bool, 4096)
	for i := 0; i < 4096; i++ {
		prefix[a.Next()] = true
	}
	b := New(5)
	b.Jump()
	coll := 0
	for i := 0; i < 4096; i++ {
		if prefix[b.Next()] {
			coll++
		}
	}
	// Random 64-bit values essentially never collide in 4096 draws.
	if coll > 0 {
		t.Errorf("jumped stream collides with origin stream %d times", coll)
	}
}

func TestNewStreamIndependence(t *testing.T) {
	s0 := NewStream(77, 0)
	s1 := NewStream(77, 1)
	agree := 0
	for i := 0; i < 10000; i++ {
		if s0.Next() == s1.Next() {
			agree++
		}
	}
	if agree != 0 {
		t.Errorf("streams 0 and 1 agree on %d draws", agree)
	}
}

func TestNewStreamReproducible(t *testing.T) {
	a := NewStream(123, 3)
	b := NewStream(123, 3)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("NewStream is not reproducible")
		}
	}
}

func TestNewSeededDistinct(t *testing.T) {
	a := NewSeeded(1, 0)
	b := NewSeeded(1, 1)
	agree := 0
	for i := 0; i < 10000; i++ {
		if a.Next() == b.Next() {
			agree++
		}
	}
	if agree != 0 {
		t.Errorf("seeded streams agree on %d draws", agree)
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v >= uint64(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	const n, trials = 8, 80000
	counts := make([]int, n)
	g := New(21)
	for i := 0; i < trials; i++ {
		counts[g.Perm(n)[0]]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("Perm first element %d occurs %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestShuffleMatchesPermSemantics(t *testing.T) {
	g1, g2 := New(55), New(55)
	p := g1.Perm(20)
	q := make([]uint64, 20)
	for i := range q {
		q[i] = uint64(i)
	}
	g2.Shuffle(20, func(i, j int) { q[i], q[j] = q[j], q[i] })
	for i := range p {
		if p[i] != q[i] {
			t.Fatalf("Perm and Shuffle disagree at %d: %d vs %d", i, p[i], q[i])
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	g := New(99)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := g.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		x, y, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%#x,%#x) = (%#x,%#x), want (%#x,%#x)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkXoshiroNext(b *testing.B) {
	g := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += g.Next()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	g := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += g.Float64()
	}
	_ = sink
}
