// Package xrand provides deterministic, splittable pseudo-random number
// generators used throughout the benchmark pipeline.
//
// Reproducibility is a core requirement of the PageRank pipeline benchmark:
// kernel 0 must generate the same graph for the same (seed, scale) on every
// platform, and parallel generators must be able to draw from statistically
// independent streams without communicating.  The package implements
// SplitMix64 (for seeding), xoshiro256** (the workhorse generator), and
// deterministic stream derivation via the xoshiro jump functions.
package xrand

import "math"

// golden is the 64-bit golden-ratio increment used by SplitMix64.
const golden = 0x9e3779b97f4a7c15

// SplitMix64 is a tiny 64-bit generator with a single word of state.
// It is primarily used to expand a user seed into the larger state of
// Xoshiro256, and to derive per-stream seeds.  The zero value is a valid
// generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += golden
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the SplitMix64 finalizer to x.  It is a stateless bijective
// mixing function useful for hashing counters into well-distributed values.
func Mix64(x uint64) uint64 {
	x += golden
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro256 implements the xoshiro256** generator of Blackman and Vigna.
// It has 256 bits of state, passes stringent statistical tests, and supports
// jump-ahead for deriving independent parallel streams.
type Xoshiro256 struct {
	s [4]uint64
}

// New returns a Xoshiro256 generator deterministically seeded from seed.
// The 256-bit internal state is expanded from the seed with SplitMix64, as
// recommended by the xoshiro authors.
func New(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var g Xoshiro256
	for i := range g.s {
		g.s[i] = sm.Next()
	}
	// The all-zero state is invalid (the generator would be stuck); the
	// SplitMix64 expansion cannot produce it for any seed, but guard anyway.
	if g.s[0]|g.s[1]|g.s[2]|g.s[3] == 0 {
		g.s[0] = golden
	}
	return &g
}

// NewStream returns a generator for the given stream index, seeded from
// seed.  Streams with distinct indices are derived by repeated long jumps
// (each equivalent to 2^192 calls of Next) from a common origin, so they are
// non-overlapping for any realistic draw count.  Stream derivation costs
// O(stream) long jumps; callers with very large stream counts should derive
// streams from mixed seeds instead (see NewSeeded).
func NewStream(seed uint64, stream int) *Xoshiro256 {
	g := New(seed)
	for i := 0; i < stream; i++ {
		g.LongJump()
	}
	return g
}

// NewSeeded returns a generator seeded from the pair (seed, stream) using a
// mixing function.  Unlike NewStream it is O(1) in the stream index, at the
// cost of only probabilistic (but overwhelmingly likely) stream independence.
func NewSeeded(seed uint64, stream uint64) *Xoshiro256 {
	return New(Mix64(seed) ^ Mix64(stream*golden+1))
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Next returns the next 64-bit value in the sequence.
func (g *Xoshiro256) Next() uint64 {
	result := rotl(g.s[1]*5, 7) * 9
	t := g.s[1] << 17
	g.s[2] ^= g.s[0]
	g.s[3] ^= g.s[1]
	g.s[1] ^= g.s[2]
	g.s[0] ^= g.s[3]
	g.s[2] ^= t
	g.s[3] = rotl(g.s[3], 45)
	return result
}

// Uint64 returns the next value; it is an alias for Next matching the
// math/rand/v2 Source interface shape.
func (g *Xoshiro256) Uint64() uint64 { return g.Next() }

// Float64 returns a uniformly distributed float64 in [0, 1).
// It uses the top 53 bits of the next output, which yields every
// representable multiple of 2^-53 in [0,1) with equal probability.
func (g *Xoshiro256) Float64() float64 {
	return float64(g.Next()>>11) * (1.0 / (1 << 53))
}

// Uint64n returns a uniformly distributed integer in [0, n).
// It panics if n == 0.  The implementation uses Lemire's multiply-shift
// rejection method, which is unbiased and avoids division in the common case.
func (g *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return g.Next() & (n - 1)
	}
	// Lemire rejection sampling on the high 64 bits of the 128-bit product.
	for {
		x := g.Next()
		hi, lo := mul64(x, n)
		if lo >= n || lo >= uint64(-int64(n))%n {
			return hi
		}
	}
}

// Intn returns a uniformly distributed int in [0, n); it panics if n <= 0.
func (g *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(g.Uint64n(uint64(n)))
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, generated with the Marsaglia polar method.
func (g *Xoshiro256) NormFloat64() float64 {
	for {
		u := 2*g.Float64() - 1
		v := 2*g.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// jumpPoly and longJumpPoly are the polynomials from the reference
// implementation of xoshiro256**.
var jumpPoly = [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
var longJumpPoly = [4]uint64{0x76e15d3efefdcbbf, 0xc5004e441c522fb3, 0x77710069854ee241, 0x39109bb02acbe635}

func (g *Xoshiro256) jumpWith(poly [4]uint64) {
	var s0, s1, s2, s3 uint64
	for _, p := range poly {
		for b := 0; b < 64; b++ {
			if p&(1<<uint(b)) != 0 {
				s0 ^= g.s[0]
				s1 ^= g.s[1]
				s2 ^= g.s[2]
				s3 ^= g.s[3]
			}
			g.Next()
		}
	}
	g.s[0], g.s[1], g.s[2], g.s[3] = s0, s1, s2, s3
}

// Jump advances the generator by 2^128 steps.  It can be used to derive up
// to 2^128 non-overlapping subsequences for parallel computation.
func (g *Xoshiro256) Jump() { g.jumpWith(jumpPoly) }

// LongJump advances the generator by 2^192 steps, deriving up to 2^64
// starting points from each of which Jump can derive 2^64 streams.
func (g *Xoshiro256) LongJump() { g.jumpWith(longJumpPoly) }

// Perm returns a pseudo-random permutation of the integers [0, n) as a
// slice of uint64, generated by the Fisher–Yates shuffle.
func (g *Xoshiro256) Perm(n int) []uint64 {
	p := make([]uint64, n)
	for i := range p {
		p[i] = uint64(i)
	}
	for i := n - 1; i > 0; i-- {
		j := g.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, exactly like math/rand.Shuffle.
func (g *Xoshiro256) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := g.Intn(i + 1)
		swap(i, j)
	}
}
