package stats

import (
	"fmt"
	"math"
	"sort"
)

// TopK returns the indices of the k largest values in descending value
// order.  Ties break toward the lower index for determinism.
func TopK(values []float64, k int) []int {
	if k > len(values) {
		k = len(values)
	}
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if values[idx[a]] != values[idx[b]] {
			return values[idx[a]] > values[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

// ranks assigns fractional ranks (average of tied positions) to values.
func ranks(values []float64) []float64 {
	n := len(values)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && values[idx[j+1]] == values[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// Spearman returns the Spearman rank correlation coefficient of two
// samples, handling ties by fractional ranking.  The coefficient is in
// [-1, 1]; the socialnetwork example uses it to compare PageRank with raw
// in-degree popularity.
func Spearman(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: Spearman length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) < 2 {
		return 0, fmt.Errorf("stats: Spearman needs >= 2 samples")
	}
	return pearson(ranks(a), ranks(b))
}

// pearson computes the Pearson correlation of two equal-length samples.
func pearson(x, y []float64) (float64, error) {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0, fmt.Errorf("stats: zero variance sample")
	}
	return cov / math.Sqrt(vx*vy), nil
}

// Pearson returns the Pearson correlation coefficient of two samples.
func Pearson(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: Pearson length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) < 2 {
		return 0, fmt.Errorf("stats: Pearson needs >= 2 samples")
	}
	return pearson(a, b)
}
