package stats

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestTopK(t *testing.T) {
	v := []float64{0.1, 0.9, 0.5, 0.9, 0.2}
	top := TopK(v, 3)
	if len(top) != 3 {
		t.Fatalf("TopK len = %d", len(top))
	}
	if top[0] != 1 || top[1] != 3 { // ties break to lower index
		t.Errorf("TopK order = %v", top)
	}
	if top[2] != 2 {
		t.Errorf("TopK third = %d", top[2])
	}
	if got := TopK(v, 99); len(got) != 5 {
		t.Errorf("TopK overflow len = %d", len(got))
	}
}

func TestRanksWithTies(t *testing.T) {
	r := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestSpearmanPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{10, 20, 30, 40, 50}
	rho, err := Spearman(a, b)
	if err != nil || math.Abs(rho-1) > 1e-12 {
		t.Errorf("perfect monotone rho = %v, %v", rho, err)
	}
	rev := []float64{50, 40, 30, 20, 10}
	rho, _ = Spearman(a, rev)
	if math.Abs(rho+1) > 1e-12 {
		t.Errorf("reversed rho = %v, want -1", rho)
	}
}

func TestSpearmanMonotoneTransformInvariant(t *testing.T) {
	g := xrand.New(1)
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = g.Float64()
		b[i] = math.Exp(3 * a[i]) // monotone transform
	}
	rho, err := Spearman(a, b)
	if err != nil || math.Abs(rho-1) > 1e-12 {
		t.Errorf("monotone transform rho = %v", rho)
	}
}

func TestSpearmanIndependent(t *testing.T) {
	g := xrand.New(2)
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i], b[i] = g.Float64(), g.Float64()
	}
	rho, err := Spearman(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho) > 0.08 {
		t.Errorf("independent samples rho = %v, want ~0", rho)
	}
}

func TestCorrelationErrors(t *testing.T) {
	if _, err := Spearman([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Spearman([]float64{1}, []float64{1}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("zero variance accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{2, 3}); err == nil {
		t.Error("Pearson length mismatch accepted")
	}
}

func TestPearsonLinear(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8}
	r, err := Pearson(a, b)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Errorf("linear Pearson = %v, %v", r, err)
	}
}
