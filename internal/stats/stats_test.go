package stats

import (
	"math"
	"testing"

	"repro/internal/edge"
	"repro/internal/gensuite"
	"repro/internal/kronecker"
)

func TestDegrees(t *testing.T) {
	l := edge.NewList(3)
	l.Append(0, 1)
	l.Append(0, 2)
	l.Append(2, 0)
	out, err := OutDegrees(l, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 || out[1] != 0 || out[2] != 1 {
		t.Errorf("out degrees = %v", out)
	}
	in, err := InDegrees(l, 3)
	if err != nil {
		t.Fatal(err)
	}
	if in[0] != 1 || in[1] != 1 || in[2] != 1 {
		t.Errorf("in degrees = %v", in)
	}
	bad := edge.NewList(1)
	bad.Append(9, 0)
	if _, err := OutDegrees(bad, 3); err == nil {
		t.Error("out-of-range accepted")
	}
	if _, err := InDegrees(bad, 10); err == nil {
		// V = 0 is fine here; check U out of range via InDegrees on
		// swapped list instead.
		t.Log("in-degree in range as expected")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]int{1, 2, 2, 3, 3, 3})
	if h[1] != 1 || h[2] != 2 || h[3] != 3 {
		t.Errorf("histogram = %v", h)
	}
	keys := h.Keys()
	if len(keys) != 3 || keys[0] != 1 || keys[2] != 3 {
		t.Errorf("keys = %v", keys)
	}
	if h.Total() != 6 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]int{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 3 || s.Median != 3 {
		t.Errorf("mean/median = %v/%v", s.Mean, s.Median)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-12 {
		t.Errorf("stddev = %v", s.StdDev)
	}
	even := Summarize([]int{1, 2, 3, 4})
	if even.Median != 2.5 {
		t.Errorf("even median = %v", even.Median)
	}
	empty := Summarize(nil)
	if empty.Count != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestFitPowerLawExact(t *testing.T) {
	// Construct an exact power law: count(d) = 1000 · d^-2.
	h := make(Histogram)
	for d := 1; d <= 64; d *= 2 {
		h[d] = 1000 * 4096 / (d * d) // scaled to stay integral
	}
	fit, err := FitPowerLaw(h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope+2) > 0.01 {
		t.Errorf("slope = %v, want -2", fit.Slope)
	}
	if fit.R2 < 0.999 {
		t.Errorf("R2 = %v for exact power law", fit.R2)
	}
}

func TestFitPowerLawErrors(t *testing.T) {
	if _, err := FitPowerLaw(Histogram{1: 5, 2: 3}); err == nil {
		t.Error("two points accepted")
	}
	if _, err := FitPowerLaw(Histogram{0: 5, -1: 3}); err == nil {
		t.Error("nonpositive degrees accepted")
	}
}

func TestKroneckerIsApproximatelyPowerLaw(t *testing.T) {
	cfg := kronecker.New(12, 3)
	l, err := kronecker.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	deg, err := OutDegrees(l, int(cfg.N()))
	if err != nil {
		t.Fatal(err)
	}
	// Drop zero-degree vertices, histogram the rest.
	var nz []int
	for _, d := range deg {
		if d > 0 {
			nz = append(nz, d)
		}
	}
	fit, err := FitPowerLaw(NewHistogram(nz))
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope >= -0.5 || fit.Slope < -4 {
		t.Errorf("Kronecker degree slope = %v, want clearly negative power-law-like", fit.Slope)
	}
	if g := GiniCoefficient(deg); g < 0.4 {
		t.Errorf("Kronecker degree Gini = %v, want strong inequality", g)
	}
}

func TestERIsNotPowerLawSkewed(t *testing.T) {
	gen := gensuite.ER{Scale: 12, EdgeFactor: 16, Seed: 5}
	l, err := gen.Generate()
	if err != nil {
		t.Fatal(err)
	}
	deg, err := OutDegrees(l, int(gen.NumVertices()))
	if err != nil {
		t.Fatal(err)
	}
	gER := GiniCoefficient(deg)
	if gER > 0.3 {
		t.Errorf("ER degree Gini = %v, want near-uniform", gER)
	}
}

func TestPPLGiniExceedsER(t *testing.T) {
	ppl := gensuite.PPL{Scale: 10, EdgeFactor: 16}
	lp, _ := ppl.Generate()
	dp, _ := OutDegrees(lp, int(ppl.NumVertices()))
	er := gensuite.ER{Scale: 10, EdgeFactor: 16, Seed: 1}
	le, _ := er.Generate()
	de, _ := OutDegrees(le, int(er.NumVertices()))
	if GiniCoefficient(dp) <= GiniCoefficient(de)+0.2 {
		t.Errorf("PPL Gini %v not clearly above ER Gini %v", GiniCoefficient(dp), GiniCoefficient(de))
	}
}

func TestCCDF(t *testing.T) {
	h := Histogram{1: 2, 2: 1, 4: 1}
	deg, frac := CCDF(h)
	if len(deg) != 3 {
		t.Fatalf("ccdf degrees = %v", deg)
	}
	if frac[0] != 1.0 {
		t.Errorf("CCDF at min degree = %v, want 1", frac[0])
	}
	if math.Abs(frac[1]-0.5) > 1e-12 {
		t.Errorf("CCDF at degree 2 = %v, want 0.5", frac[1])
	}
	if math.Abs(frac[2]-0.25) > 1e-12 {
		t.Errorf("CCDF at degree 4 = %v, want 0.25", frac[2])
	}
	d0, f0 := CCDF(Histogram{})
	if d0 != nil || f0 != nil {
		t.Error("empty CCDF should be nil")
	}
}

func TestGiniExtremes(t *testing.T) {
	if g := GiniCoefficient([]int{5, 5, 5, 5}); math.Abs(g) > 1e-12 {
		t.Errorf("uniform Gini = %v", g)
	}
	g := GiniCoefficient([]int{0, 0, 0, 100})
	if g < 0.7 {
		t.Errorf("single-hub Gini = %v, want high", g)
	}
	if GiniCoefficient(nil) != 0 || GiniCoefficient([]int{0, 0}) != 0 {
		t.Error("degenerate Gini should be 0")
	}
}
