// Package stats provides graph and distribution statistics used to validate
// the benchmark's generators: degree histograms, summary moments, and
// log-log power-law slope fitting.
//
// The Graph500 generator produces an "approximately power-law" graph; the
// PPL generator produces an exact one.  The tests and the generator
// examples use these tools to confirm the skew kernel 2's super-node
// elimination depends on, and to contrast the Erdős–Rényi control.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/edge"
)

// OutDegrees returns the out-degree of every vertex in [0, n).
func OutDegrees(l *edge.List, n int) ([]int, error) {
	return degrees(l.U, n)
}

// InDegrees returns the in-degree of every vertex in [0, n).
func InDegrees(l *edge.List, n int) ([]int, error) {
	return degrees(l.V, n)
}

func degrees(endpoints []uint64, n int) ([]int, error) {
	deg := make([]int, n)
	for _, x := range endpoints {
		if x >= uint64(n) {
			return nil, fmt.Errorf("stats: vertex %d out of range n=%d", x, n)
		}
		deg[x]++
	}
	return deg, nil
}

// Histogram maps a value to its frequency.
type Histogram map[int]int

// NewHistogram tallies the values.
func NewHistogram(values []int) Histogram {
	h := make(Histogram)
	for _, v := range values {
		h[v]++
	}
	return h
}

// Keys returns the distinct values in increasing order.
func (h Histogram) Keys() []int {
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Total returns the number of tallied observations.
func (h Histogram) Total() int {
	t := 0
	for _, c := range h {
		t += c
	}
	return t
}

// Summary holds the basic moments of a sample.
type Summary struct {
	Count  int
	Min    int
	Max    int
	Mean   float64
	Median float64
	StdDev float64
}

// Summarize computes summary statistics of the values.
func Summarize(values []int) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)
	var sum, sumSq float64
	for _, v := range sorted {
		sum += float64(v)
		sumSq += float64(v) * float64(v)
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	median := float64(sorted[len(sorted)/2])
	if len(sorted)%2 == 0 {
		median = (float64(sorted[len(sorted)/2-1]) + float64(sorted[len(sorted)/2])) / 2
	}
	return Summary{
		Count:  len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		Median: median,
		StdDev: math.Sqrt(variance),
	}
}

// PowerLawFit is the result of a log-log linear regression on a degree
// histogram: count(degree) ≈ C · degree^Slope.
type PowerLawFit struct {
	// Slope is the fitted exponent (negative for power laws).
	Slope float64
	// Intercept is log10(C).
	Intercept float64
	// R2 is the coefficient of determination of the log-log fit.
	R2 float64
	// Points is the number of (degree, count) pairs used.
	Points int
}

// FitPowerLaw performs least-squares regression of log10(count) against
// log10(degree) over the histogram's strictly positive degrees.  At least
// three distinct degrees are required.
func FitPowerLaw(h Histogram) (PowerLawFit, error) {
	var xs, ys []float64
	for _, d := range h.Keys() {
		if d < 1 || h[d] < 1 {
			continue
		}
		xs = append(xs, math.Log10(float64(d)))
		ys = append(ys, math.Log10(float64(h[d])))
	}
	if len(xs) < 3 {
		return PowerLawFit{}, fmt.Errorf("stats: need >= 3 distinct positive degrees, have %d", len(xs))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return PowerLawFit{}, fmt.Errorf("stats: degenerate x values")
	}
	slope := (n*sxy - sx*sy) / denom
	intercept := (sy - slope*sx) / n
	// R².
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := intercept + slope*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return PowerLawFit{Slope: slope, Intercept: intercept, R2: r2, Points: len(xs)}, nil
}

// CCDF returns the complementary cumulative distribution of the histogram:
// for each distinct degree d (ascending), the fraction of observations with
// value >= d.
func CCDF(h Histogram) (degrees []int, fraction []float64) {
	keys := h.Keys()
	total := h.Total()
	if total == 0 {
		return nil, nil
	}
	remaining := total
	degrees = make([]int, len(keys))
	fraction = make([]float64, len(keys))
	for i, k := range keys {
		degrees[i] = k
		fraction[i] = float64(remaining) / float64(total)
		remaining -= h[k]
	}
	return degrees, fraction
}

// GiniCoefficient measures inequality of the degree distribution in [0, 1]:
// 0 for perfectly uniform degrees, approaching 1 for extreme hub dominance.
// Power-law graphs score high, Erdős–Rényi graphs low.
func GiniCoefficient(values []int) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)
	var cum, total float64
	n := float64(len(sorted))
	for i, v := range sorted {
		cum += float64(v) * (2*float64(i+1) - n - 1)
		total += float64(v)
	}
	if total == 0 {
		return 0
	}
	return cum / (n * total)
}
