package vfs

import (
	"io"
	"sync/atomic"
)

// IOStats counts the traffic through a Metered filesystem.  The paper's
// kernels 0-2 are dominated by storage I/O; metering makes each kernel's
// byte volume a reportable quantity instead of a guess.
type IOStats struct {
	// BytesRead and BytesWritten count payload bytes.
	BytesRead    int64
	BytesWritten int64
	// Opens and Creates count file-level operations.
	Opens   int64
	Creates int64
}

// Metered wraps an FS and counts bytes and operations flowing through it.
// It is safe for concurrent use (atomic counters).
type Metered struct {
	inner FS

	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
	opens        atomic.Int64
	creates      atomic.Int64
}

// NewMetered returns a Metered wrapper around inner.
func NewMetered(inner FS) *Metered {
	return &Metered{inner: inner}
}

// Stats returns a snapshot of the counters.
func (m *Metered) Stats() IOStats {
	return IOStats{
		BytesRead:    m.bytesRead.Load(),
		BytesWritten: m.bytesWritten.Load(),
		Opens:        m.opens.Load(),
		Creates:      m.creates.Load(),
	}
}

// Reset zeroes the counters, returning the previous snapshot.  The pipeline
// resets between kernels to attribute traffic per kernel.
func (m *Metered) Reset() IOStats {
	s := IOStats{
		BytesRead:    m.bytesRead.Swap(0),
		BytesWritten: m.bytesWritten.Swap(0),
		Opens:        m.opens.Swap(0),
		Creates:      m.creates.Swap(0),
	}
	return s
}

// Create implements FS.
func (m *Metered) Create(name string) (io.WriteCloser, error) {
	w, err := m.inner.Create(name)
	if err != nil {
		return nil, err
	}
	m.creates.Add(1)
	return &meteredWriter{w: w, n: &m.bytesWritten}, nil
}

// Open implements FS.
func (m *Metered) Open(name string) (io.ReadCloser, error) {
	r, err := m.inner.Open(name)
	if err != nil {
		return nil, err
	}
	m.opens.Add(1)
	return &meteredReader{r: r, n: &m.bytesRead}, nil
}

// Remove implements FS.
func (m *Metered) Remove(name string) error { return m.inner.Remove(name) }

// Rename implements FS.  Renames move no payload bytes, so the counters
// are untouched.
func (m *Metered) Rename(oldname, newname string) error {
	return m.inner.Rename(oldname, newname)
}

// List implements FS.
func (m *Metered) List() ([]string, error) { return m.inner.List() }

// Size implements FS.
func (m *Metered) Size(name string) (int64, error) { return m.inner.Size(name) }

type meteredWriter struct {
	w io.WriteCloser
	n *atomic.Int64
}

func (w *meteredWriter) Write(p []byte) (int, error) {
	n, err := w.w.Write(p)
	w.n.Add(int64(n))
	return n, err
}

func (w *meteredWriter) Close() error { return w.w.Close() }

type meteredReader struct {
	r io.ReadCloser
	n *atomic.Int64
}

func (r *meteredReader) Read(p []byte) (int, error) {
	n, err := r.r.Read(p)
	r.n.Add(int64(n))
	return n, err
}

func (r *meteredReader) Close() error { return r.r.Close() }

var _ FS = (*Metered)(nil)
