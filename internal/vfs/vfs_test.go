package vfs

import (
	"errors"
	"fmt"
	"io"
	"maps"
	"os"
	"slices"
	"sync"
	"testing"
)

// backends returns one of each FS implementation for table-driven tests.
func backends(t *testing.T) map[string]FS {
	t.Helper()
	dir, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]FS{"mem": NewMem(), "dir": dir}
}

func writeFile(t *testing.T, fs FS, name, content string) {
	t.Helper()
	w, err := fs.Create(name)
	if err != nil {
		t.Fatalf("Create(%q): %v", name, err)
	}
	if _, err := io.WriteString(w, content); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func readFile(t *testing.T, fs FS, name string) string {
	t.Helper()
	r, err := fs.Open(name)
	if err != nil {
		t.Fatalf("Open(%q): %v", name, err)
	}
	defer r.Close()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	return string(b)
}

func TestRoundTrip(t *testing.T) {
	bks := backends(t)
	for _, name := range slices.Sorted(maps.Keys(bks)) {
		fs := bks[name]
		t.Run(name, func(t *testing.T) {
			writeFile(t, fs, "a.tsv", "1\t2\n")
			if got := readFile(t, fs, "a.tsv"); got != "1\t2\n" {
				t.Errorf("read back %q", got)
			}
		})
	}
}

func TestCreateTruncates(t *testing.T) {
	bks := backends(t)
	for _, name := range slices.Sorted(maps.Keys(bks)) {
		fs := bks[name]
		t.Run(name, func(t *testing.T) {
			writeFile(t, fs, "f", "long old contents")
			writeFile(t, fs, "f", "new")
			if got := readFile(t, fs, "f"); got != "new" {
				t.Errorf("after truncating rewrite, read %q", got)
			}
		})
	}
}

func TestOpenMissing(t *testing.T) {
	bks := backends(t)
	for _, name := range slices.Sorted(maps.Keys(bks)) {
		fs := bks[name]
		t.Run(name, func(t *testing.T) {
			if _, err := fs.Open("nope"); !errors.Is(err, os.ErrNotExist) {
				t.Errorf("Open missing: err = %v, want ErrNotExist", err)
			}
		})
	}
}

func TestRemove(t *testing.T) {
	bks := backends(t)
	for _, name := range slices.Sorted(maps.Keys(bks)) {
		fs := bks[name]
		t.Run(name, func(t *testing.T) {
			writeFile(t, fs, "x", "data")
			if err := fs.Remove("x"); err != nil {
				t.Fatalf("Remove: %v", err)
			}
			if _, err := fs.Open("x"); !errors.Is(err, os.ErrNotExist) {
				t.Error("file still readable after Remove")
			}
			if err := fs.Remove("x"); !errors.Is(err, os.ErrNotExist) {
				t.Errorf("double Remove err = %v, want ErrNotExist", err)
			}
		})
	}
}

func TestListSorted(t *testing.T) {
	bks := backends(t)
	for _, name := range slices.Sorted(maps.Keys(bks)) {
		fs := bks[name]
		t.Run(name, func(t *testing.T) {
			for _, f := range []string{"b", "a", "c"} {
				writeFile(t, fs, f, f)
			}
			names, err := fs.List()
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"a", "b", "c"}
			if len(names) != 3 {
				t.Fatalf("List = %v", names)
			}
			for i := range want {
				if names[i] != want[i] {
					t.Fatalf("List = %v, want %v", names, want)
				}
			}
		})
	}
}

func TestSize(t *testing.T) {
	bks := backends(t)
	for _, name := range slices.Sorted(maps.Keys(bks)) {
		fs := bks[name]
		t.Run(name, func(t *testing.T) {
			writeFile(t, fs, "s", "12345")
			n, err := fs.Size("s")
			if err != nil {
				t.Fatal(err)
			}
			if n != 5 {
				t.Errorf("Size = %d, want 5", n)
			}
			if _, err := fs.Size("missing"); !errors.Is(err, os.ErrNotExist) {
				t.Errorf("Size missing err = %v", err)
			}
		})
	}
}

func TestSubdirectoryNames(t *testing.T) {
	bks := backends(t)
	for _, name := range slices.Sorted(maps.Keys(bks)) {
		fs := bks[name]
		t.Run(name, func(t *testing.T) {
			writeFile(t, fs, "k0/part-0.tsv", "0\t0\n")
			if got := readFile(t, fs, "k0/part-0.tsv"); got != "0\t0\n" {
				t.Errorf("read back %q", got)
			}
			names, err := fs.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(names) != 1 || names[0] != "k0/part-0.tsv" {
				t.Errorf("List = %v", names)
			}
		})
	}
}

func TestDirRejectsEscapes(t *testing.T) {
	d, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"../evil", "/abs", "a/../../b", ""} {
		if _, err := d.Create(bad); err == nil {
			t.Errorf("Create(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestMemEmptyName(t *testing.T) {
	if _, err := NewMem().Create(""); err == nil {
		t.Error("Create(\"\") should fail")
	}
}

func TestMemVisibilityAfterClose(t *testing.T) {
	m := NewMem()
	w, err := m.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(w, "hello")
	if _, err := m.Open("f"); !errors.Is(err, os.ErrNotExist) {
		t.Error("file visible before Close")
	}
	w.Close()
	if got := readFile(t, m, "f"); got != "hello" {
		t.Errorf("after Close read %q", got)
	}
}

func TestMemDoubleCloseAndWriteAfterClose(t *testing.T) {
	m := NewMem()
	w, _ := m.Create("f")
	w.Close()
	if err := w.Close(); err == nil {
		t.Error("double Close should error")
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Error("Write after Close should error")
	}
}

func TestMemConcurrentWriters(t *testing.T) {
	m := NewMem()
	var wg sync.WaitGroup
	const workers = 8
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("part-%d", i)
			w, err := m.Create(name)
			if err != nil {
				t.Errorf("Create: %v", err)
				return
			}
			for j := 0; j < 100; j++ {
				fmt.Fprintf(w, "%d\t%d\n", i, j)
			}
			w.Close()
		}(i)
	}
	wg.Wait()
	names, _ := m.List()
	if len(names) != workers {
		t.Fatalf("got %d files, want %d", len(names), workers)
	}
	if m.TotalBytes() == 0 {
		t.Error("TotalBytes = 0")
	}
}

func TestDirRoot(t *testing.T) {
	tmp := t.TempDir()
	d, err := NewDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root() != tmp {
		t.Errorf("Root = %q, want %q", d.Root(), tmp)
	}
}

func TestRename(t *testing.T) {
	dir, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bks := map[string]FS{"mem": NewMem(), "dir": dir}
	for _, name := range slices.Sorted(maps.Keys(bks)) {
		fs := bks[name]
		t.Run(name, func(t *testing.T) {
			w, _ := fs.Create("a.tmp")
			io.WriteString(w, "payload")
			w.Close()
			if err := fs.Rename("a.tmp", "a"); err != nil {
				t.Fatal(err)
			}
			if _, err := fs.Open("a.tmp"); !errors.Is(err, ErrNotExist) {
				t.Errorf("old name still opens: %v", err)
			}
			r, err := fs.Open("a")
			if err != nil {
				t.Fatal(err)
			}
			b, _ := io.ReadAll(r)
			r.Close()
			if string(b) != "payload" {
				t.Errorf("content = %q", b)
			}
			// Rename onto an existing name replaces it.
			w, _ = fs.Create("b.tmp")
			io.WriteString(w, "new")
			w.Close()
			if err := fs.Rename("b.tmp", "a"); err != nil {
				t.Fatal(err)
			}
			r, _ = fs.Open("a")
			b, _ = io.ReadAll(r)
			r.Close()
			if string(b) != "new" {
				t.Errorf("replaced content = %q", b)
			}
			// Missing source is an error.
			if err := fs.Rename("missing", "x"); !errors.Is(err, ErrNotExist) {
				t.Errorf("rename of missing file: %v", err)
			}
		})
	}
}

func TestMeteredRenameForwards(t *testing.T) {
	mem := NewMem()
	m := NewMetered(mem)
	w, _ := m.Create("t")
	io.WriteString(w, "xy")
	w.Close()
	before := m.Stats()
	if err := m.Rename("t", "u"); err != nil {
		t.Fatal(err)
	}
	if after := m.Stats(); after != before {
		t.Errorf("rename changed counters: %+v -> %+v", before, after)
	}
	if _, err := mem.Open("u"); err != nil {
		t.Errorf("rename did not reach inner FS: %v", err)
	}
}
