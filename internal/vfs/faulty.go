package vfs

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Faulty wraps an FS and injects an I/O error after a byte budget is
// exhausted — a disk-full or network-filesystem failure model.  The
// pipeline's error-path tests use it to verify that every kernel surfaces
// storage failures instead of corrupting results.
type Faulty struct {
	inner FS
	// remaining is the byte budget across reads and writes combined.
	remaining atomic.Int64
}

// ErrInjected is the failure Faulty returns once its budget is exhausted.
var ErrInjected = fmt.Errorf("vfs: injected storage failure")

// NewFaulty returns an FS that fails all I/O after budget total bytes.
func NewFaulty(inner FS, budget int64) *Faulty {
	f := &Faulty{inner: inner}
	f.remaining.Store(budget)
	return f
}

// consume charges n bytes against the budget, reporting whether the
// operation may proceed.
func (f *Faulty) consume(n int) bool {
	return f.remaining.Add(-int64(n)) >= 0
}

// Create implements FS.
func (f *Faulty) Create(name string) (io.WriteCloser, error) {
	if f.remaining.Load() < 0 {
		return nil, ErrInjected
	}
	w, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyWriter{w: w, f: f}, nil
}

// Open implements FS.
func (f *Faulty) Open(name string) (io.ReadCloser, error) {
	if f.remaining.Load() < 0 {
		return nil, ErrInjected
	}
	r, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultyReader{r: r, f: f}, nil
}

// Remove implements FS.
func (f *Faulty) Remove(name string) error { return f.inner.Remove(name) }

// List implements FS.
func (f *Faulty) List() ([]string, error) { return f.inner.List() }

// Size implements FS.
func (f *Faulty) Size(name string) (int64, error) { return f.inner.Size(name) }

type faultyWriter struct {
	w io.WriteCloser
	f *Faulty
}

func (w *faultyWriter) Write(p []byte) (int, error) {
	if !w.f.consume(len(p)) {
		return 0, ErrInjected
	}
	return w.w.Write(p)
}

func (w *faultyWriter) Close() error { return w.w.Close() }

type faultyReader struct {
	r io.ReadCloser
	f *Faulty
}

func (r *faultyReader) Read(p []byte) (int, error) {
	n, err := r.r.Read(p)
	if n > 0 && !r.f.consume(n) {
		return 0, ErrInjected
	}
	return n, err
}

func (r *faultyReader) Close() error { return r.r.Close() }

var _ FS = (*Faulty)(nil)
