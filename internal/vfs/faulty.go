package vfs

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Faulty wraps an FS and injects an I/O error after a byte budget is
// exhausted — a disk-full or network-filesystem failure model.  The
// pipeline's error-path tests use it to verify that every kernel surfaces
// storage failures instead of corrupting results.
//
// Two optional fault points extend the model for the checkpoint tests:
// PartialWrites makes the budget-exhausting write land a prefix of its
// payload before failing (a torn write, the failure a checksummed
// two-phase commit must detect), and FailRenamesAfter kills the rename
// that would otherwise atomically commit an epoch.
type Faulty struct {
	inner FS
	// remaining is the byte budget across reads and writes combined.
	remaining atomic.Int64
	// partial, when set, makes the write that exhausts the budget first
	// deliver the bytes that still fit instead of failing all-or-nothing.
	partial bool
	// renameLimited gates renamesLeft; when false (the default) renames
	// always succeed — they never consume the byte budget.
	renameLimited bool
	// renamesLeft counts renames still allowed once renameLimited is set.
	renamesLeft atomic.Int64
}

// ErrInjected is the failure Faulty returns once its budget is exhausted.
var ErrInjected = fmt.Errorf("vfs: injected storage failure")

// NewFaulty returns an FS that fails all I/O after budget total bytes.
func NewFaulty(inner FS, budget int64) *Faulty {
	f := &Faulty{inner: inner}
	f.remaining.Store(budget)
	return f
}

// PartialWrites switches the writer fault from all-or-nothing to torn:
// the write that exhausts the budget delivers the prefix that still fits
// to the underlying FS, then fails.  Returns f for chaining.
func (f *Faulty) PartialWrites() *Faulty {
	f.partial = true
	return f
}

// FailRenamesAfter allows n further Rename calls to succeed and fails
// every one after that with ErrInjected, leaving the temp file in place —
// the "crash between write and commit" point of a two-phase protocol.
// Returns f for chaining.
func (f *Faulty) FailRenamesAfter(n int64) *Faulty {
	f.renameLimited = true
	f.renamesLeft.Store(n)
	return f
}

// consume charges n bytes against the budget, reporting whether the
// operation may proceed.
func (f *Faulty) consume(n int) bool {
	return f.remaining.Add(-int64(n)) >= 0
}

// Create implements FS.
func (f *Faulty) Create(name string) (io.WriteCloser, error) {
	if f.remaining.Load() < 0 {
		return nil, ErrInjected
	}
	w, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyWriter{w: w, f: f}, nil
}

// Open implements FS.
func (f *Faulty) Open(name string) (io.ReadCloser, error) {
	if f.remaining.Load() < 0 {
		return nil, ErrInjected
	}
	r, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultyReader{r: r, f: f}, nil
}

// Remove implements FS.
func (f *Faulty) Remove(name string) error { return f.inner.Remove(name) }

// Rename implements FS.  Renames consume no byte budget but respect the
// FailRenamesAfter counter.
func (f *Faulty) Rename(oldname, newname string) error {
	if f.renameLimited && f.renamesLeft.Add(-1) < 0 {
		return ErrInjected
	}
	return f.inner.Rename(oldname, newname)
}

// List implements FS.
func (f *Faulty) List() ([]string, error) { return f.inner.List() }

// Size implements FS.
func (f *Faulty) Size(name string) (int64, error) { return f.inner.Size(name) }

type faultyWriter struct {
	w io.WriteCloser
	f *Faulty
}

func (w *faultyWriter) Write(p []byte) (int, error) {
	if !w.f.consume(len(p)) {
		if w.f.partial {
			// Torn write: the bytes that still fit reach storage, the rest
			// are lost.  remaining went negative by the overshoot, so the
			// landed prefix is len(p) + remaining (clamped to [0, len(p))).
			fit := len(p) + int(w.f.remaining.Load())
			if fit < 0 {
				fit = 0
			}
			if fit > 0 {
				if n, err := w.w.Write(p[:fit]); err != nil {
					return n, err
				}
			}
			return fit, ErrInjected
		}
		return 0, ErrInjected
	}
	return w.w.Write(p)
}

func (w *faultyWriter) Close() error { return w.w.Close() }

type faultyReader struct {
	r io.ReadCloser
	f *Faulty
}

func (r *faultyReader) Read(p []byte) (int, error) {
	n, err := r.r.Read(p)
	if n > 0 && !r.f.consume(n) {
		return 0, ErrInjected
	}
	return n, err
}

func (r *faultyReader) Close() error { return r.r.Close() }

var _ FS = (*Faulty)(nil)
