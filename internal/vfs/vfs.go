// Package vfs provides the minimal "non-volatile storage" abstraction the
// pipeline kernels write to and read from.
//
// The paper runs on a Lustre parallel filesystem and notes that storage
// caching is unavoidable at the measured scales.  This repository substitutes
// two backends behind one interface: a directory on the local OS filesystem
// (the realistic path) and an in-memory store (deterministic, cache-free,
// used by unit tests and by benchmarks that want to isolate compute from
// disk).  Kernels address files by name only; striping across multiple files
// — the paper's "number of files is a free parameter" — is handled above
// this layer by package fastio.
package vfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FS is the storage interface used by the pipeline kernels.
type FS interface {
	// Create opens the named file for writing, truncating it if it exists.
	Create(name string) (io.WriteCloser, error)
	// Open opens the named file for reading.
	Open(name string) (io.ReadCloser, error)
	// Remove deletes the named file.  Removing a non-existent file is an
	// error, matching os.Remove.
	Remove(name string) error
	// Rename atomically replaces newname with oldname's content and
	// removes oldname, matching os.Rename: after it returns, newname is
	// either its previous content or oldname's complete content, never a
	// mixture.  It is the commit primitive of the checkpoint layer's
	// two-phase protocol (write to a temp name, then rename into place).
	Rename(oldname, newname string) error
	// List returns the names of all files, sorted lexicographically.
	List() ([]string, error)
	// Size returns the size in bytes of the named file.
	Size(name string) (int64, error)
}

// ErrNotExist is returned by Mem operations on missing files.  The OS
// backend returns the underlying *os.PathError instead; callers should use
// errors.Is(err, os.ErrNotExist), which both satisfy.
var ErrNotExist = os.ErrNotExist

// ---------------------------------------------------------------------------
// In-memory backend

// Mem is an in-memory FS.  It is safe for concurrent use by multiple
// goroutines, including concurrent writers to distinct files (the access
// pattern of the parallel kernel-0 variant).
type Mem struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMem returns an empty in-memory filesystem.
func NewMem() *Mem {
	return &Mem{files: make(map[string][]byte)}
}

type memWriter struct {
	fs     *Mem
	name   string
	buf    bytes.Buffer
	closed bool
}

func (w *memWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("vfs: write to closed file %q", w.name)
	}
	return w.buf.Write(p)
}

func (w *memWriter) Close() error {
	if w.closed {
		return fmt.Errorf("vfs: double close of %q", w.name)
	}
	w.closed = true
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	w.fs.files[w.name] = w.buf.Bytes()
	return nil
}

// Create implements FS.  The file becomes visible to Open only after the
// writer is closed, mirroring the "kernel completes before the next begins"
// pipeline rule.
func (m *Mem) Create(name string) (io.WriteCloser, error) {
	if name == "" {
		return nil, errors.New("vfs: empty file name")
	}
	return &memWriter{fs: m, name: name}, nil
}

// Open implements FS.
func (m *Mem) Open(name string) (io.ReadCloser, error) {
	m.mu.Lock()
	data, ok := m.files[name]
	m.mu.Unlock()
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: ErrNotExist}
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

// Remove implements FS.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

// Rename implements FS.  The swap happens under the store's lock, so a
// concurrent Open observes either the old content of newname or the
// complete new content — the atomicity the checkpoint commit relies on.
func (m *Mem) Rename(oldname, newname string) error {
	if newname == "" {
		return errors.New("vfs: empty file name")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[oldname]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldname, Err: ErrNotExist}
	}
	m.files[newname] = data
	delete(m.files, oldname)
	return nil
}

// List implements FS.
func (m *Mem) List() ([]string, error) {
	m.mu.Lock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	m.mu.Unlock()
	sort.Strings(names)
	return names, nil
}

// Size implements FS.
func (m *Mem) Size(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return 0, &os.PathError{Op: "stat", Path: name, Err: ErrNotExist}
	}
	return int64(len(data)), nil
}

// TotalBytes returns the sum of all file sizes, useful for asserting the
// storage footprint in tests.
func (m *Mem) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, d := range m.files {
		n += int64(len(d))
	}
	return n
}

// ---------------------------------------------------------------------------
// OS-directory backend

// Dir is an FS rooted at a directory on the operating-system filesystem.
// File names must be relative and must not escape the root.
type Dir struct {
	root string
}

// NewDir returns an FS rooted at root, creating the directory if needed.
func NewDir(root string) (*Dir, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("vfs: creating root: %w", err)
	}
	return &Dir{root: root}, nil
}

// Root returns the root directory path.
func (d *Dir) Root() string { return d.root }

func (d *Dir) resolve(name string) (string, error) {
	if name == "" {
		return "", errors.New("vfs: empty file name")
	}
	clean := filepath.Clean(name)
	if filepath.IsAbs(clean) || strings.HasPrefix(clean, "..") {
		return "", fmt.Errorf("vfs: name %q escapes the filesystem root", name)
	}
	return filepath.Join(d.root, clean), nil
}

// Create implements FS.
func (d *Dir) Create(name string) (io.WriteCloser, error) {
	p, err := d.resolve(name)
	if err != nil {
		return nil, err
	}
	if dir := filepath.Dir(p); dir != d.root {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return os.Create(p)
}

// Open implements FS.
func (d *Dir) Open(name string) (io.ReadCloser, error) {
	p, err := d.resolve(name)
	if err != nil {
		return nil, err
	}
	return os.Open(p)
}

// Remove implements FS.
func (d *Dir) Remove(name string) error {
	p, err := d.resolve(name)
	if err != nil {
		return err
	}
	return os.Remove(p)
}

// Rename implements FS via os.Rename, which is atomic on POSIX
// filesystems — the property the checkpoint layer's commit depends on.
func (d *Dir) Rename(oldname, newname string) error {
	op, err := d.resolve(oldname)
	if err != nil {
		return err
	}
	np, err := d.resolve(newname)
	if err != nil {
		return err
	}
	if dir := filepath.Dir(np); dir != d.root {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.Rename(op, np)
}

// List implements FS.  Names are reported relative to the root, using
// forward slashes, sorted lexicographically.
func (d *Dir) List() ([]string, error) {
	var names []string
	err := filepath.Walk(d.root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(d.root, path)
		if err != nil {
			return err
		}
		names = append(names, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// Size implements FS.
func (d *Dir) Size(name string) (int64, error) {
	p, err := d.resolve(name)
	if err != nil {
		return 0, err
	}
	info, err := os.Stat(p)
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// Interface conformance checks.
var (
	_ FS = (*Mem)(nil)
	_ FS = (*Dir)(nil)
)
