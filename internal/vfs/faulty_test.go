package vfs

import (
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFaultyFailsAfterBudget(t *testing.T) {
	f := NewFaulty(NewMem(), 10)
	w, err := f.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(w, "12345"); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if _, err := io.WriteString(w, "1234567890"); !errors.Is(err, ErrInjected) {
		t.Fatalf("over budget err = %v", err)
	}
}

func TestFaultyReadBudget(t *testing.T) {
	mem := NewMem()
	w, _ := mem.Create("big")
	io.WriteString(w, strings.Repeat("x", 1000))
	w.Close()
	f := NewFaulty(mem, 100)
	r, err := f.Open("big")
	if err != nil {
		t.Fatal(err)
	}
	_, err = io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("read err = %v, want injected failure", err)
	}
}

func TestFaultyRefusesNewFilesAfterExhaustion(t *testing.T) {
	f := NewFaulty(NewMem(), 1)
	w, _ := f.Create("a")
	w.Write([]byte("toomany"))
	if _, err := f.Create("b"); !errors.Is(err, ErrInjected) {
		t.Errorf("Create after exhaustion err = %v", err)
	}
	if _, err := f.Open("a"); !errors.Is(err, ErrInjected) {
		t.Errorf("Open after exhaustion err = %v", err)
	}
}

func TestFaultyGenerousBudgetTransparent(t *testing.T) {
	f := NewFaulty(NewMem(), 1<<30)
	w, _ := f.Create("ok")
	io.WriteString(w, "hello")
	w.Close()
	r, err := f.Open("ok")
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(r)
	if err != nil || string(b) != "hello" {
		t.Errorf("transparent path: %q %v", b, err)
	}
	if _, err := f.Size("ok"); err != nil {
		t.Error(err)
	}
	if names, _ := f.List(); len(names) != 1 {
		t.Error("List broken")
	}
	if err := f.Remove("ok"); err != nil {
		t.Error(err)
	}
}

func TestFaultyPartialWrite(t *testing.T) {
	mem := NewMem()
	f := NewFaulty(mem, 10).PartialWrites()
	w, err := f.Create("torn")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(w, "12345"); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	n, err := io.WriteString(w, "abcdefghij")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("over budget err = %v, want injected", err)
	}
	if n != 5 {
		t.Fatalf("torn write landed %d bytes, want the 5 that fit", n)
	}
	w.Close()
	r, err := mem.Open("torn")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(r)
	if string(b) != "12345abcde" {
		t.Fatalf("torn file content = %q, want prefix 12345abcde", b)
	}
	// The budget stays exhausted: a later write lands nothing.
	w2, _ := mem.Create("again")
	fw := &faultyWriter{w: w2, f: f}
	if n, err := fw.Write([]byte("zz")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-exhaustion write = (%d, %v), want (0, injected)", n, err)
	}
}

func TestFaultyPartialWriteDefaultOff(t *testing.T) {
	f := NewFaulty(NewMem(), 3)
	w, _ := f.Create("x")
	if n, err := w.Write([]byte("abcdef")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("all-or-nothing default violated: (%d, %v)", n, err)
	}
}

func TestFaultyFailRenamesAfter(t *testing.T) {
	mem := NewMem()
	for _, name := range []string{"a", "b", "c"} {
		w, _ := mem.Create(name)
		io.WriteString(w, name)
		w.Close()
	}
	f := NewFaulty(mem, 1<<30).FailRenamesAfter(1)
	if err := f.Rename("a", "a2"); err != nil {
		t.Fatalf("first rename within allowance: %v", err)
	}
	if err := f.Rename("b", "b2"); !errors.Is(err, ErrInjected) {
		t.Fatalf("second rename err = %v, want injected", err)
	}
	if err := f.Rename("c", "c2"); !errors.Is(err, ErrInjected) {
		t.Fatalf("third rename err = %v, want injected", err)
	}
	// The source of the failed rename is untouched (the temp file survives).
	if _, err := mem.Open("b"); err != nil {
		t.Fatalf("failed rename should leave source intact: %v", err)
	}
	if _, err := mem.Open("a2"); err != nil {
		t.Fatalf("allowed rename should have landed: %v", err)
	}
}

func TestFaultyRenameUnlimitedByDefault(t *testing.T) {
	mem := NewMem()
	f := NewFaulty(mem, 0) // byte budget exhausted from the start
	w, _ := mem.Create("x")
	w.Close()
	// Renames do not consume the byte budget.
	if err := f.Rename("x", "y"); err != nil {
		t.Fatalf("rename with zero byte budget: %v", err)
	}
}
