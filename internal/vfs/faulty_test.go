package vfs

import (
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFaultyFailsAfterBudget(t *testing.T) {
	f := NewFaulty(NewMem(), 10)
	w, err := f.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(w, "12345"); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if _, err := io.WriteString(w, "1234567890"); !errors.Is(err, ErrInjected) {
		t.Fatalf("over budget err = %v", err)
	}
}

func TestFaultyReadBudget(t *testing.T) {
	mem := NewMem()
	w, _ := mem.Create("big")
	io.WriteString(w, strings.Repeat("x", 1000))
	w.Close()
	f := NewFaulty(mem, 100)
	r, err := f.Open("big")
	if err != nil {
		t.Fatal(err)
	}
	_, err = io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("read err = %v, want injected failure", err)
	}
}

func TestFaultyRefusesNewFilesAfterExhaustion(t *testing.T) {
	f := NewFaulty(NewMem(), 1)
	w, _ := f.Create("a")
	w.Write([]byte("toomany"))
	if _, err := f.Create("b"); !errors.Is(err, ErrInjected) {
		t.Errorf("Create after exhaustion err = %v", err)
	}
	if _, err := f.Open("a"); !errors.Is(err, ErrInjected) {
		t.Errorf("Open after exhaustion err = %v", err)
	}
}

func TestFaultyGenerousBudgetTransparent(t *testing.T) {
	f := NewFaulty(NewMem(), 1<<30)
	w, _ := f.Create("ok")
	io.WriteString(w, "hello")
	w.Close()
	r, err := f.Open("ok")
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(r)
	if err != nil || string(b) != "hello" {
		t.Errorf("transparent path: %q %v", b, err)
	}
	if _, err := f.Size("ok"); err != nil {
		t.Error(err)
	}
	if names, _ := f.List(); len(names) != 1 {
		t.Error("List broken")
	}
	if err := f.Remove("ok"); err != nil {
		t.Error(err)
	}
}
