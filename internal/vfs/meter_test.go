package vfs

import (
	"io"
	"testing"
)

func TestMeteredCountsBytes(t *testing.T) {
	m := NewMetered(NewMem())
	w, err := m.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(w, "hello world")
	w.Close()
	r, err := m.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(r)
	r.Close()
	s := m.Stats()
	if s.BytesWritten != 11 {
		t.Errorf("BytesWritten = %d", s.BytesWritten)
	}
	if s.BytesRead != 11 {
		t.Errorf("BytesRead = %d", s.BytesRead)
	}
	if s.Creates != 1 || s.Opens != 1 {
		t.Errorf("ops = %+v", s)
	}
}

func TestMeteredReset(t *testing.T) {
	m := NewMetered(NewMem())
	w, _ := m.Create("f")
	io.WriteString(w, "abc")
	w.Close()
	prev := m.Reset()
	if prev.BytesWritten != 3 {
		t.Errorf("Reset snapshot = %+v", prev)
	}
	if s := m.Stats(); s.BytesWritten != 0 || s.Creates != 0 {
		t.Errorf("counters not cleared: %+v", s)
	}
}

func TestMeteredDelegates(t *testing.T) {
	m := NewMetered(NewMem())
	w, _ := m.Create("a")
	w.Close()
	names, err := m.List()
	if err != nil || len(names) != 1 {
		t.Errorf("List via meter: %v %v", names, err)
	}
	if n, err := m.Size("a"); err != nil || n != 0 {
		t.Errorf("Size via meter: %d %v", n, err)
	}
	if err := m.Remove("a"); err != nil {
		t.Errorf("Remove via meter: %v", err)
	}
	if _, err := m.Open("a"); err == nil {
		t.Error("open after remove should fail")
	}
}

func TestMeteredErrorsDoNotCount(t *testing.T) {
	m := NewMetered(NewMem())
	if _, err := m.Open("missing"); err == nil {
		t.Fatal("expected error")
	}
	if s := m.Stats(); s.Opens != 0 {
		t.Errorf("failed open counted: %+v", s)
	}
}
