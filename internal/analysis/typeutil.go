package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NamedTypeName returns the name of t's (pointer-stripped) named type,
// or "" if t is not a named type.
func NamedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// MethodCallOn reports whether call is a method call with the given
// method name whose receiver's named type is recvType, and returns the
// receiver expression when it is.
func (p *Pass) MethodCallOn(call *ast.CallExpr, recvType, method string) (recv ast.Expr, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != method {
		return nil, false
	}
	fn, isFn := p.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return nil, false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return nil, false
	}
	if NamedTypeName(sig.Recv().Type()) != recvType {
		return nil, false
	}
	return sel.X, true
}

// PkgFuncCall reports whether call invokes the package-level function
// pkgPath.name (e.g. "time".Now).
func (p *Pass) PkgFuncCall(call *ast.CallExpr, pkgPath string, names ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// IsDeprecated reports whether doc carries a "Deprecated:" paragraph
// per the standard Go convention.
func IsDeprecated(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "Deprecated:") {
			return true
		}
	}
	return false
}

// ObjectOf resolves an identifier to its object (definition or use).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return p.TypesInfo.Uses[id]
}
