// Package analysistest runs an analyzer over a GOPATH-style golden tree
// (testdata/src/<pkg>/...) and checks its diagnostics against `want`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A want comment sits on the line it describes and holds one or more
// double- or back-quoted regular expressions, each of which must be
// matched by exactly one diagnostic on that line:
//
//	m := f.getVec(8) // want `not released`
//
// Lines without a want comment must produce no diagnostics, so every
// golden package pins true negatives as strictly as true positives.
package analysistest

import (
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Run loads each named package from dir/src and applies the analyzer,
// comparing diagnostics (after suppression filtering, so golden trees
// can also pin the //prlint:allow contract) against want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := load.New(load.Config{Tests: true, SrcRoot: dir + "/src"})
	var pkgs []*load.Package
	for _, path := range pkgPaths {
		got, err := l.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		pkgs = append(pkgs, got...)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkgs)
	for _, d := range diags {
		pos := pkgs[0].Fset.Position(d.Pos)
		key := lineKey{pos.Filename, pos.Line}
		if matchWant(wants[key], d.Message) {
			continue
		}
		t.Errorf("%s:%d: unexpected diagnostic: %s [%s]", pos.Filename, pos.Line, d.Message, d.Analyzer)
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, w.re.String())
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

func matchWant(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

var wantRe = regexp.MustCompile("(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

func collectWants(t *testing.T, pkgs []*load.Package) map[lineKey][]*want {
	t.Helper()
	wants := map[lineKey][]*want{}
	seen := map[*token.File]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			tf := pkg.Fset.File(f.Pos())
			if tf == nil || seen[tf] {
				continue
			}
			seen[tf] = true
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, quoted := range wantRe.FindAllString(rest, -1) {
						pat, err := unquote(quoted)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, quoted, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, quoted, err)
						}
						key := lineKey{pos.Filename, pos.Line}
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}
	return wants
}

func unquote(s string) (string, error) {
	if strings.HasPrefix(s, "`") {
		return strings.Trim(s, "`"), nil
	}
	return strconv.Unquote(s)
}
