// Package dist (a stand-in kernel package: the determinism analyzer
// keys on the kernel package names dist/pagerank/sparse/xsort/ckpt)
// exercises the reproducibility rules.
package dist

import (
	"math/rand" // want `math/rand in kernel package dist`
	"sort"
	"time"
)

// --- true positives ---

func mapOrder(m map[int]float64, out []float64) {
	for k, v := range m { // want `range over a map in kernel package dist`
		out[k%len(out)] += v
	}
}

func wallClock() time.Time {
	return time.Now() // want `wall-clock read in kernel package dist`
}

func elapsed(t0 time.Time) float64 {
	return time.Since(t0).Seconds() // want `wall-clock read in kernel package dist`
}

func rawSpawn(fn func()) {
	go fn() // want `raw go statement in kernel package dist`
}

func randomness() float64 {
	return rand.Float64()
}

// --- true negatives ---

// Slices iterate in index order: deterministic.
func okSliceRange(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Sorting map keys before iterating the *slice* is the documented
// remedy; the map range that collects the keys still needs a justified
// suppression in kernel code.
func okSortedKeys(m map[int]float64, out []float64) {
	keys := make([]int, 0, len(m))
	//prlint:allow determinism -- key collection only; iteration over the sorted slice below is what feeds results
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		out = append(out, m[k])
	}
	_ = out
}

// Wall-clock timing with a justification: measured seconds are
// reported, never fed into results.
func okTimedRun(run func()) float64 {
	start := time.Now() //prlint:allow determinism -- timing measurement only; the value never reaches kernel results
	run()
	//prlint:allow determinism -- timing measurement only; the value never reaches kernel results
	return time.Since(start).Seconds()
}
