package dist

import (
	"sort"
	"testing"
)

// In test files only the subtest-order rule applies; the kernel rules
// (go statements, wall clock, map ranges that do not drive subtests)
// stay quiet here.
func TestSubtestOrder(t *testing.T) {
	cases := map[string]int{"a": 1, "b": 2}
	for name := range cases {
		t.Run(name, func(t *testing.T) {}) // want `subtest driven by map iteration`
	}

	// The documented remedy: iterate sorted keys.
	keys := make([]string, 0, len(cases))
	for k := range cases {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, name := range keys {
		t.Run(name, func(t *testing.T) {})
	}

	// Kernel rules do not fire in test files.
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

func BenchmarkSubtestOrder(b *testing.B) {
	cases := map[string]int{"a": 1}
	for name := range cases {
		b.Run(name, func(b *testing.B) {}) // want `subtest driven by map iteration`
	}
}
