// Package determinism enforces the bit-for-bit reproducibility contract
// of DESIGN.md §3–§5: the kernels promise identical results for
// identical inputs across runs, exec modes, rank counts and worker
// counts, so the kernel packages must not consult any
// nondeterministically ordered or time-varying source.
//
// Inside the kernel packages (dist, pagerank, sparse, xsort, ckpt, and
// serve — whose staged artifact cache hands one computed artifact to
// many runs, so any nondeterminism there fans out), non-test code may
// not:
//
//   - range over a map (iteration order feeds results in nondeterministic
//     order);
//   - call time.Now or time.Since (wall-clock values must not reach
//     results; the one legitimate timing site carries a justified
//     //prlint:allow directive);
//   - import math/rand or math/rand/v2 (randomness comes from the
//     deterministic seeded streams in internal/xrand);
//   - start a raw goroutine (concurrency goes through internal/workteam
//     or the rank fabric, whose join points pin the result order; the
//     fabric's own spawn sites carry justified directives).
//
// In _test.go files of every package, t.Run/b.Run inside a range over a
// map is flagged: subtests would run in nondeterministic order, which
// breaks -run selection stability and diff-ability of verbose logs.
package determinism

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/analysis"
)

// kernelPkgs are the package names under the reproducibility contract.
var kernelPkgs = map[string]bool{
	"dist": true, "pagerank": true, "sparse": true, "xsort": true, "ckpt": true,
	"serve": true,
}

// Analyzer is the determinism checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "DESIGN.md §3–§5: kernel packages must stay bit-for-bit deterministic (no map ranges, wall clock, math/rand, or raw goroutines); subtests must not be driven from map iteration",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	kernel := kernelPkgs[pass.Pkg.Name()]
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			checkSubtests(pass, f)
			continue
		}
		if !kernel {
			continue
		}
		checkImports(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if isMapType(pass.TypesInfo.TypeOf(n.X)) {
					pass.Reportf(n.Pos(), "range over a map in kernel package %s: iteration order is nondeterministic and may feed results (DESIGN.md §3)", pass.Pkg.Name())
				}
			case *ast.CallExpr:
				if pass.PkgFuncCall(n, "time", "Now", "Since") {
					pass.Reportf(n.Pos(), "wall-clock read in kernel package %s: time values must not influence results (DESIGN.md §3)", pass.Pkg.Name())
				}
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "raw go statement in kernel package %s: spawn through internal/workteam or the rank fabric so the join order is pinned (DESIGN.md §5, §7)", pass.Pkg.Name())
			}
			return true
		})
	}
	return nil
}

func checkImports(pass *analysis.Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if path == "math/rand" || path == "math/rand/v2" {
			pass.Reportf(imp.Pos(), "math/rand in kernel package %s: use the seeded deterministic streams in internal/xrand (DESIGN.md §3)", pass.Pkg.Name())
		}
	}
}

// checkSubtests flags t.Run/b.Run calls lexically inside a range over a
// map: the subtest execution order then varies run to run.
func checkSubtests(pass *analysis.Pass, f *ast.File) {
	var mapRanges []*ast.RangeStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isMapType(pass.TypesInfo.TypeOf(n.X)) {
				mapRanges = append(mapRanges, n)
			}
		case *ast.CallExpr:
			if !isSubtestRun(pass, n) {
				return true
			}
			for _, r := range mapRanges {
				if r.Body.Pos() <= n.Pos() && n.Pos() < r.Body.End() {
					pass.Reportf(n.Pos(), "subtest driven by map iteration: run order is nondeterministic; iterate sorted keys or a slice instead")
					return true
				}
			}
		}
		return true
	})
}

func isSubtestRun(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, recv := range []string{"T", "B"} {
		if sel, ok := pass.MethodCallOn(call, recv, "Run"); ok {
			if t := pass.TypesInfo.TypeOf(sel); t != nil {
				if n := deref(t); n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "testing" {
					return true
				}
			}
		}
	}
	return false
}

func deref(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
