// Package load parses and type-checks Go packages for the analysis
// framework without shelling out to the go tool or importing
// golang.org/x/tools.  It understands exactly the two worlds prlint
// needs:
//
//   - module mode: packages under a go.mod root, addressed by their
//     module-qualified import path ("repro/internal/dist") or by the
//     "./..." pattern, with intra-module imports resolved by path
//     rewriting and standard-library imports type-checked from GOROOT
//     source (the toolchain ships no export data);
//   - src mode: analysistest golden trees laid out GOPATH-style under
//     testdata/src/<path>, where any import found under the src root
//     resolves locally and everything else falls through to GOROOT.
//
// All packages share one token.FileSet, so positions are comparable
// across the run, and results are memoized per Loader.
package load

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed, type-checked package.
type Package struct {
	// PkgPath is the import path used to address the package; the
	// external test package of path P gets "P_test".
	PkgPath string
	Dir     string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TestFiles marks which of Files came from _test.go files.
	TestFiles map[*ast.File]bool
}

// Config controls a Loader.
type Config struct {
	// Tests includes _test.go files: in-package test files join their
	// package, and external _test packages are loaded alongside.
	Tests bool

	// ModRoot/ModPath describe module mode: the directory holding
	// go.mod and the module path it declares.
	ModRoot string
	ModPath string

	// SrcRoot, when set, switches to src mode: import path P resolves
	// to SrcRoot/P when that directory exists.
	SrcRoot string
}

// A Loader loads packages under one Config, memoizing by import path.
type Loader struct {
	cfg  Config
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*loadResult
}

type loadResult struct {
	pkg *Package
	err error
	// loading marks an in-progress load, to turn import cycles into
	// errors instead of infinite recursion.
	loading bool
}

// New returns a Loader for cfg.
func New(cfg Config) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		cfg:  cfg,
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*loadResult{},
	}
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// FindModuleRoot walks up from dir to the nearest go.mod and returns
// its directory and the module path it declares.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Expand resolves a command-line pattern to import paths.  Supported
// forms: "./..." and "./dir/..." (all packages under the module root or
// the named subdirectory), "./dir" (one directory), and a plain import
// path, which is returned as-is.
func (l *Loader) Expand(pattern string) ([]string, error) {
	if l.cfg.ModRoot == "" {
		return nil, fmt.Errorf("load: pattern %q needs module mode", pattern)
	}
	rel, recursive := pattern, false
	if rest, ok := strings.CutSuffix(rel, "/..."); ok {
		rel, recursive = rest, true
	}
	if rel == "." || rel == "./" {
		rel = ""
	}
	rel = strings.TrimPrefix(rel, "./")
	if !recursive && strings.HasPrefix(pattern, "./") {
		return []string{l.joinPath(rel)}, nil
	}
	if !recursive {
		// A bare import path.
		return []string{pattern}, nil
	}
	base := filepath.Join(l.cfg.ModRoot, filepath.FromSlash(rel))
	var paths []string
	err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			r, rerr := filepath.Rel(l.cfg.ModRoot, p)
			if rerr != nil {
				return rerr
			}
			paths = append(paths, l.joinPath(filepath.ToSlash(r)))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

func (l *Loader) joinPath(rel string) string {
	if rel == "" || rel == "." {
		return l.cfg.ModPath
	}
	return l.cfg.ModPath + "/" + rel
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// errTestOnly marks a directory holding only _test.go files while the
// loader runs with Tests disabled; Load turns it into an empty result.
var errTestOnly = errors.New("load: test-only package outside Tests mode")

// Load loads the package at the given import path, plus — in Tests mode
// — its external test package when one exists.  The base package is
// always first in the result.  A test-only directory loads as zero
// packages when Tests is off.
func (l *Loader) Load(path string) ([]*Package, error) {
	base, err := l.load(path)
	if errors.Is(err, errTestOnly) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	out := []*Package{base}
	if l.cfg.Tests {
		if xt, err := l.loadXTest(path, base); err != nil {
			return nil, err
		} else if xt != nil {
			out = append(out, xt)
		}
	}
	return out, nil
}

// dirOf resolves an import path to a directory, or "" for a path this
// loader does not own (i.e. a standard-library import).
func (l *Loader) dirOf(path string) string {
	if l.cfg.SrcRoot != "" {
		dir := filepath.Join(l.cfg.SrcRoot, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir
		}
		return ""
	}
	if path == l.cfg.ModPath {
		return l.cfg.ModRoot
	}
	if rest, ok := strings.CutPrefix(path, l.cfg.ModPath+"/"); ok {
		return filepath.Join(l.cfg.ModRoot, filepath.FromSlash(rest))
	}
	return ""
}

func (l *Loader) load(path string) (*Package, error) {
	if r, ok := l.pkgs[path]; ok {
		if r.loading {
			return nil, fmt.Errorf("load: import cycle through %q", path)
		}
		return r.pkg, r.err
	}
	dir := l.dirOf(path)
	if dir == "" {
		return nil, fmt.Errorf("load: %q is not under this loader's root", path)
	}
	r := &loadResult{loading: true}
	l.pkgs[path] = r
	r.pkg, r.err = l.typecheckDir(path, dir, false, nil)
	r.loading = false
	return r.pkg, r.err
}

func (l *Loader) loadXTest(path string, base *Package) (*Package, error) {
	bp, err := build.Default.ImportDir(base.Dir, 0)
	if err != nil || len(bp.XTestGoFiles) == 0 {
		return nil, nil
	}
	return l.typecheckDir(path+"_test", base.Dir, true, bp.XTestGoFiles)
}

// typecheckDir parses and type-checks one package.  For the base
// package (xtestOnly false) the file list comes from go/build so build
// constraints are honored; _test.go files join in Tests mode.
func (l *Loader) typecheckDir(path, dir string, xtestOnly bool, fileNames []string) (*Package, error) {
	if !xtestOnly {
		bp, err := build.Default.ImportDir(dir, 0)
		if err != nil {
			if _, noGo := err.(*build.NoGoError); !noGo {
				return nil, fmt.Errorf("load %s: %w", path, err)
			}
			// A test-only directory: analyzable in Tests mode, and
			// deliberately empty — not an error — without it.
			if len(bp.TestGoFiles) == 0 || !l.cfg.Tests {
				return nil, errTestOnly
			}
		}
		fileNames = append(fileNames, bp.GoFiles...)
		if l.cfg.Tests {
			fileNames = append(fileNames, bp.TestGoFiles...)
		}
		if len(fileNames) == 0 {
			return nil, errTestOnly
		}
	}
	if len(fileNames) == 0 {
		return nil, fmt.Errorf("load %s: no Go files in %s", path, dir)
	}
	sort.Strings(fileNames)

	pkg := &Package{
		PkgPath:   path,
		Dir:       dir,
		Fset:      l.fset,
		TestFiles: map[*ast.File]bool{},
	}
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		pkg.Files = append(pkg.Files, f)
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFiles[f] = true
		}
	}

	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importerFunc(l.importFor)}
	tpkg, err := conf.Check(path, l.fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// importFor resolves one import during type checking: local paths go
// through the memoizing loader, everything else to the GOROOT source
// importer.
func (l *Loader) importFor(path string) (*types.Package, error) {
	if l.dirOf(path) != "" {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
