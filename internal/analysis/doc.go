// Package analysis is the repo's machine-checked-invariant framework: a
// deliberately small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface (Analyzer, Pass, Diagnostic)
// plus the driver that runs analyzers over type-checked packages and
// applies the //prlint:allow suppression contract.
//
// Why not the real x/tools module?  The build environment pins the
// dependency closure to the standard library (go.mod has no requires,
// and adding one is out of budget for this tree), so the framework is
// vendored down to the subset the repo's analyzers need: no facts, no
// Requires graph, no SSA — just parsed, fully type-checked packages and
// a Report callback.  The types mirror x/tools field-for-field where
// they overlap, so migrating an analyzer to the upstream framework is a
// change of import path, not a rewrite.
//
// The analyzers themselves live in subpackages (envelope, meteredcomm,
// determinism, ctxfirst) and encode contracts that DESIGN.md states in
// prose; DESIGN.md §11 is the normative map from each analyzer to the
// section it enforces.  cmd/prlint is the multichecker binary; the
// selftest package keeps `go test ./...` failing if the tree itself
// regresses.
//
// # Suppression
//
// A diagnostic is suppressed by a directive comment on the flagged line
// or the line directly above it:
//
//	//prlint:allow <analyzer> -- <justification>
//
// The justification is mandatory: a directive without one does not
// suppress and instead produces its own diagnostic.  One directive
// suppresses only the named analyzer on that one line — there is no
// file- or package-level escape hatch, by design.
package analysis
