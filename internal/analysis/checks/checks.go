// Package checks is the registry of the repo's analyzers: the single
// list shared by cmd/prlint and the selftest that keeps `go test ./...`
// failing when the tree breaks one of its own documented contracts.
// DESIGN.md §11 maps each analyzer to the section it enforces.
package checks

import (
	"repro/internal/analysis"
	"repro/internal/analysis/ctxfirst"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/envelope"
	"repro/internal/analysis/meteredcomm"
)

// All returns every registered analyzer, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxfirst.Analyzer,
		determinism.Analyzer,
		envelope.Analyzer,
		meteredcomm.Analyzer,
	}
}

// Select returns the analyzers whose names appear in names; an unknown
// name returns nil and false.
func Select(names []string) ([]*analysis.Analyzer, bool) {
	byName := map[string]*analysis.Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, true
}
