// Package selftest runs the prlint analyzers over this repository
// itself, so `go test ./...` fails the moment the tree breaks one of
// its own machine-checked invariants (DESIGN.md §11).  The golden tests
// under each analyzer prove the analyzers right; this test proves the
// repo clean.
package selftest

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/checks"
	"repro/internal/analysis/load"
)

// TestRepoIsPrlintClean type-checks and analyzes every package in the
// module, test files included — the same sweep as `go run ./cmd/prlint
// ./...`.  A finding here is a real regression: fix the code, or add a
// `//prlint:allow <analyzer> -- <justification>` directive if the
// violation is intentional and justified.
func TestRepoIsPrlintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzing the whole module is not a -short test")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, modPath, err := load.FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	l := load.New(load.Config{Tests: true, ModRoot: root, ModPath: modPath})
	paths, err := l.Expand("./...")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*load.Package
	for _, path := range paths {
		got, err := l.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		pkgs = append(pkgs, got...)
	}
	diags, err := analysis.Run(pkgs, checks.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		pos := l.Fset().Position(d.Pos)
		file := pos.Filename
		if rel, rerr := filepath.Rel(root, file); rerr == nil {
			file = rel
		}
		t.Errorf("%s:%d:%d: %s [%s]", file, pos.Line, pos.Column, d.Message, d.Analyzer)
	}
	if t.Failed() {
		fmt.Println("see DESIGN.md §11 for the invariant each analyzer enforces and the suppression contract")
	}
}
