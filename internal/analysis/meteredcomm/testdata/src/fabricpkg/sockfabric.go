// This file plays the role of the real sockfabric.go: the socket
// fabric's inbox channels are its own metered plumbing, so raw inbox
// operations here are exempt — no diagnostics are expected in this
// file.
package dist

type sockFabric struct {
	p     int
	self  int
	inbox []chan any
	done  chan struct{}
}

func (f *sockFabric) procs() int { return f.p }

func (f *sockFabric) send(src, dst int, m any) {}

func (f *sockFabric) recv(src, dst int) any {
	select {
	case m := <-f.inbox[src]:
		return m
	case <-f.done:
		return nil
	}
}

func (f *sockFabric) deliver(src int, m any) {
	f.inbox[src] <- m
}

func (f *sockFabric) shutdown() {
	for _, ch := range f.inbox {
		close(ch)
	}
}
