// Package dist is a miniature of the real fabric for the meteredcomm
// golden cases.  This file plays the role of the real collective.go:
// raw link operations here are the metered collective layer itself and
// are exempt — no diagnostics are expected in this file.
package dist

// rankFabric is the seam the analyzer gates on: the package defining
// this interface is the one whose link channels are guarded.
type rankFabric interface {
	procs() int
	send(src, dst int, m any)
	recv(src, dst int) any
}

type chanFabric struct {
	p     int
	links []chan any
	done  chan struct{}
}

func (f *chanFabric) procs() int { return f.p }

func (f *chanFabric) send(src, dst int, m any) {
	select {
	case f.links[src*f.p+dst] <- m:
	case <-f.done:
	}
}

func (f *chanFabric) recv(src, dst int) any {
	select {
	case m := <-f.links[src*f.p+dst]:
		return m
	case <-f.done:
		return nil
	}
}

type rankComm struct {
	f    rankFabric
	rank int
}

func (c *rankComm) send(dst int, m any) { c.f.send(c.rank, dst, m) }

func (c *rankComm) recv(src int) any { return c.f.recv(src, c.rank) }

// allReduce stands in for the metered collectives rank programs are
// supposed to call.
func (c *rankComm) allReduce(vec []float64) {}
