// Package dist is a miniature of the real fabric for the meteredcomm
// golden cases.  This file plays the role of the real collective.go:
// raw link operations here are the metered collective layer itself and
// are exempt — no diagnostics are expected in this file.
package dist

type fabric struct {
	p     int
	links []chan any
	done  chan struct{}
}

type rankComm struct {
	f    *fabric
	rank int
}

func (c *rankComm) send(dst int, m any) {
	select {
	case c.f.links[c.rank*c.f.p+dst] <- m:
	case <-c.f.done:
	}
}

func (c *rankComm) recv(src int) any {
	select {
	case m := <-c.f.links[src*c.f.p+c.rank]:
		return m
	case <-c.f.done:
		return nil
	}
}

// allReduce stands in for the metered collectives rank programs are
// supposed to call.
func (c *rankComm) allReduce(vec []float64) {}
