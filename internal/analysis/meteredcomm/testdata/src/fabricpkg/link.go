// This file plays the role of the real fabric/link.go: the one place
// allowed to read and write a net.Conn, because its write path is where
// wire bytes are counted.  No diagnostics are expected in this file.
package dist

import (
	"bufio"
	"io"
	"net"
)

type link struct {
	conn net.Conn
	br   *bufio.Reader
}

func newLink(conn net.Conn) *link {
	return &link{conn: conn, br: bufio.NewReader(conn)}
}

func (l *link) writeFrame(b []byte) error {
	_, err := l.conn.Write(b)
	return err
}

func (l *link) readFrame(b []byte) error {
	_, err := io.ReadFull(l.br, b)
	return err
}
