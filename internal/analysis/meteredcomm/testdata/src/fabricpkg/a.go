package dist

// --- true positives: unmetered side channels on the fabric ---

func sideChannelSend(f *fabric, m any) {
	f.links[0] <- m // want `send on a fabric link outside collective.go`
}

func sideChannelRecv(f *fabric) any {
	return <-f.links[0] // want `receive from a fabric link outside collective.go`
}

func sideChannelViaComm(c *rankComm, dst int, m any) {
	c.f.links[dst] <- m // want `send on a fabric link outside collective.go`
}

func rawSend(c *rankComm, dst int, m any) {
	c.send(dst, m) // want `raw rankComm.send call outside collective.go`
}

func rawRecv(c *rankComm, src int) any {
	return c.recv(src) // want `raw rankComm.recv call outside collective.go`
}

func closeLink(f *fabric) {
	close(f.links[0]) // want `close of a fabric link outside collective.go`
}

func drainLink(f *fabric) {
	for range f.links[0] { // want `range over a fabric link outside collective.go`
	}
}

// --- true negatives ---

// Private channels that are not fabric links are free.
func okPrivateChannel(done chan struct{}) {
	done <- struct{}{}
	<-done
	close(done)
}

// The teardown plane is not a link: watching done is legal anywhere.
func okDoneWatch(f *fabric) bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Rank programs speak collectives.
func okCollective(c *rankComm, vec []float64) {
	c.allReduce(vec)
}

// A justified suppression silences a finding.
func okSuppressed(c *rankComm, src int) any {
	//prlint:allow meteredcomm -- golden case for the suppression contract
	return c.recv(src)
}
