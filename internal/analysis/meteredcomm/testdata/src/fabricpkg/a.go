package dist

import (
	"bufio"
	"io"
	"net"
)

// --- true positives: unmetered side channels on the fabric ---

func sideChannelSend(f *chanFabric, m any) {
	f.links[0] <- m // want `send on a fabric link outside collective.go`
}

func sideChannelRecv(f *chanFabric) any {
	return <-f.links[0] // want `receive from a fabric link outside collective.go`
}

func rawSend(c *rankComm, dst int, m any) {
	c.send(dst, m) // want `raw rankComm.send call outside collective.go`
}

func rawRecv(c *rankComm, src int) any {
	return c.recv(src) // want `raw rankComm.recv call outside collective.go`
}

func closeLink(f *chanFabric) {
	close(f.links[0]) // want `close of a fabric link outside collective.go`
}

func drainLink(f *chanFabric) {
	for range f.links[0] { // want `range over a fabric link outside collective.go`
	}
}

func sideChannelInbox(f *sockFabric, m any) {
	f.inbox[0] <- m // want `send on a fabric link outside collective.go`
}

func drainInbox(f *sockFabric) any {
	return <-f.inbox[0] // want `receive from a fabric link outside collective.go`
}

// --- true positives: raw net.Conn I/O outside link.go ---

func rawConnWrite(conn net.Conn, b []byte) {
	conn.Write(b) // want `raw net.Conn Write outside link.go`
}

func rawConnRead(conn net.Conn, b []byte) {
	conn.Read(b) // want `raw net.Conn Read outside link.go`
}

func rawTCPWrite(conn *net.TCPConn, b []byte) {
	conn.Write(b) // want `raw net.Conn Write outside link.go`
}

func wrapConn(conn net.Conn) *bufio.Reader {
	return bufio.NewReader(conn) // want `net.Conn handed to an unmetered I/O helper outside link.go`
}

func drainConn(conn net.Conn, b []byte) {
	io.ReadFull(conn, b) // want `net.Conn handed to an unmetered I/O helper outside link.go`
}

// --- true negatives ---

// Private channels that are not fabric links are free.
func okPrivateChannel(done chan struct{}) {
	done <- struct{}{}
	<-done
	close(done)
}

// The teardown plane is not a link: watching done is legal anywhere.
func okDoneWatch(f *chanFabric) bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Rank programs speak collectives.
func okCollective(c *rankComm, vec []float64) {
	c.allReduce(vec)
}

// Accepting a connection and handing it whole to the link layer is
// fine: only reading/writing it bypasses the meter.
func okHandOff(ln net.Listener) (*link, error) {
	conn, err := ln.Accept()
	if err != nil {
		return nil, err
	}
	return newLink(conn), nil
}

// Closing and setting deadlines do not move bytes.
func okConnAdmin(conn net.Conn) {
	conn.Close()
}

// bufio over something that is not a connection is free.
func okBufio(r io.Reader) *bufio.Reader {
	return bufio.NewReader(r)
}

// A justified suppression silences a finding.
func okSuppressed(c *rankComm, src int) any {
	//prlint:allow meteredcomm -- golden case for the suppression contract
	return c.recv(src)
}
