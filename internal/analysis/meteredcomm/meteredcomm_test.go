package meteredcomm_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/meteredcomm"
)

func TestMeteredComm(t *testing.T) {
	analysistest.Run(t, "testdata", meteredcomm.Analyzer, "fabricpkg")
}
