// Package meteredcomm enforces the collective contract of DESIGN.md §5:
// every byte a rank puts on the wire is metered by the collective layer
// in collective.go, which is the load-bearing fact behind the repo's
// provable claim that measured CommStats equal PredictedCommBytes.  A
// send or receive that touches the fabric's links from anywhere else is
// an unmetered side channel: results may stay right while the paper's
// closed-form communication model silently becomes unfalsifiable.
//
// In any package that defines the `rankFabric` interface, code outside
// the fabric implementations (collective.go for the goroutine links,
// sockfabric.go for the socket inboxes; tests exempt) may not:
//
//   - send on, receive from, close, or range over a channel reached
//     through a chanFabric's links or a sockFabric's inbox;
//   - call the raw rankComm send/recv primitives — rank programs speak
//     collectives (allReduce*, broadcast*, gather*, exchange*,
//     agreeError) or the typed recv helpers, never the wire directly.
//
// The socket mode adds a second metering seam (DESIGN.md §13): the
// fabric package's Link is the ONLY place allowed to read or write a
// net.Conn, because Link's write path is where wire bytes are counted.
// In the dist and fabric packages, files other than link.go may not
// call Read/Write on a net connection, nor wrap one in a bufio
// reader/writer or feed it to the io copy helpers — any of those would
// move bytes the Stats never see.
package meteredcomm

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"repro/internal/analysis"
)

// Analyzer is the metered-communication checker.
var Analyzer = &analysis.Analyzer{
	Name: "meteredcomm",
	Doc:  "DESIGN.md §5/§13: all rank communication flows through the metered collectives in collective.go and the byte-counting Link in link.go; raw fabric link or net.Conn operations elsewhere would break CommStats == PredictedCommBytes",
	Run:  run,
}

// chanFields maps each fabric implementation type to its link-channel
// field: reaching one of these channels outside the implementation's
// own file is an unmetered side channel.
var chanFields = map[string]string{
	"chanFabric": "links",
	"sockFabric": "inbox",
}

// chanExempt names the files that ARE the metered layer for the channel
// rule: collective.go owns the chanFabric links, sockfabric.go owns the
// sockFabric inboxes.
var chanExempt = map[string]bool{
	"collective.go": true,
	"sockfabric.go": true,
}

func run(pass *analysis.Pass) error {
	// The channel rule fires in packages that define the rank fabric
	// seam; the net.Conn rule also covers the wire-format package, which
	// has no rankFabric of its own.
	rankPkg := pass.Pkg.Scope().Lookup("rankFabric") != nil
	connPkg := rankPkg || pass.Pkg.Name() == "fabric"
	if !connPkg {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		base := filepath.Base(pass.Fset.Position(f.Package).Filename)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				if rankPkg && !chanExempt[base] && touchesLinks(pass, n.Chan) {
					report(pass, n.Pos(), "send on a fabric link")
				}
			case *ast.UnaryExpr:
				if rankPkg && !chanExempt[base] && n.Op == token.ARROW && touchesLinks(pass, n.X) {
					report(pass, n.Pos(), "receive from a fabric link")
				}
			case *ast.RangeStmt:
				if rankPkg && !chanExempt[base] && touchesLinks(pass, n.X) {
					report(pass, n.Pos(), "range over a fabric link")
				}
			case *ast.CallExpr:
				if rankPkg && !chanExempt[base] {
					if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 && touchesLinks(pass, n.Args[0]) {
						report(pass, n.Pos(), "close of a fabric link")
					}
				}
				if rankPkg && base != "collective.go" {
					for _, m := range []string{"send", "recv"} {
						if _, ok := pass.MethodCallOn(n, "rankComm", m); ok {
							report(pass, n.Pos(), "raw rankComm."+m+" call")
						}
					}
				}
				if base != "link.go" {
					checkConn(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

func report(pass *analysis.Pass, pos token.Pos, what string) {
	pass.Reportf(pos, "%s outside collective.go: all rank communication must go through the metered collectives (DESIGN.md §5)", what)
}

// checkConn flags raw I/O on a net connection outside link.go: direct
// Read/Write method calls, and handing the connection to the usual
// wrappers (bufio.NewReader/NewWriter, io.ReadFull and friends) that
// would carry bytes around the Link's Stats.
func checkConn(pass *analysis.Pass, call *ast.CallExpr) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "net" &&
			(fn.Name() == "Read" || fn.Name() == "Write") {
			pass.Reportf(call.Pos(), "raw net.Conn %s outside link.go: socket bytes must flow through the byte-counting Link (DESIGN.md §13)", fn.Name())
			return
		}
	}
	wrapper := pass.PkgFuncCall(call, "bufio", "NewReader", "NewWriter", "NewReaderSize", "NewWriterSize") ||
		pass.PkgFuncCall(call, "io", "ReadFull", "ReadAtLeast", "ReadAll", "Copy", "CopyN", "CopyBuffer")
	if !wrapper {
		return
	}
	for _, arg := range call.Args {
		if isNetConn(pass.TypesInfo.TypeOf(arg)) {
			pass.Reportf(call.Pos(), "net.Conn handed to an unmetered I/O helper outside link.go: socket bytes must flow through the byte-counting Link (DESIGN.md §13)")
			return
		}
	}
}

// isNetConn reports whether t is a connection type from package net —
// the net.Conn interface itself or a concrete *net.TCPConn-style
// connection that satisfies it.
func isNetConn(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "net" {
		return false
	}
	switch obj.Name() {
	case "Conn", "TCPConn", "UnixConn", "UDPConn", "IPConn":
		return true
	}
	return false
}

// touchesLinks reports whether expr reaches a channel through the link
// field of a fabric implementation (f.links[i], c.f.links[…] on a
// chanFabric; f.inbox[src] on a sockFabric).
func touchesLinks(pass *analysis.Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		owner := analysis.NamedTypeName(pass.TypesInfo.TypeOf(sel.X))
		if chanFields[owner] == sel.Sel.Name {
			found = true
		}
		return true
	})
	return found
}
