// Package meteredcomm enforces the collective contract of DESIGN.md §5:
// every byte a rank puts on the wire is metered by the collective layer
// in collective.go, which is the load-bearing fact behind the repo's
// provable claim that measured CommStats equal PredictedCommBytes.  A
// send or receive that touches the fabric's links from anywhere else is
// an unmetered side channel: results may stay right while the paper's
// closed-form communication model silently becomes unfalsifiable.
//
// In any package that defines a `fabric` type, code outside
// collective.go (tests exempt) may not:
//
//   - send on, receive from, close, or range over a channel reached
//     through a fabric's links;
//   - call the raw rankComm send/recv primitives — rank programs speak
//     collectives (allReduce*, broadcast*, gather*, exchange*,
//     agreeError) or the typed recv helpers, never the wire directly.
package meteredcomm

import (
	"go/ast"
	"go/token"
	"path/filepath"

	"repro/internal/analysis"
)

// Analyzer is the metered-communication checker.
var Analyzer = &analysis.Analyzer{
	Name: "meteredcomm",
	Doc:  "DESIGN.md §5: all rank communication flows through the metered collectives in collective.go; raw fabric link operations elsewhere would break CommStats == PredictedCommBytes",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Scope().Lookup("fabric") == nil {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		if filepath.Base(pass.Fset.Position(f.Package).Filename) == "collective.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				if touchesLinks(pass, n.Chan) {
					report(pass, n.Pos(), "send on a fabric link")
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && touchesLinks(pass, n.X) {
					report(pass, n.Pos(), "receive from a fabric link")
				}
			case *ast.RangeStmt:
				if touchesLinks(pass, n.X) {
					report(pass, n.Pos(), "range over a fabric link")
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 && touchesLinks(pass, n.Args[0]) {
					report(pass, n.Pos(), "close of a fabric link")
				}
				for _, m := range []string{"send", "recv"} {
					if _, ok := pass.MethodCallOn(n, "rankComm", m); ok {
						report(pass, n.Pos(), "raw rankComm."+m+" call")
					}
				}
			}
			return true
		})
	}
	return nil
}

func report(pass *analysis.Pass, pos token.Pos, what string) {
	pass.Reportf(pos, "%s outside collective.go: all rank communication must go through the metered collectives (DESIGN.md §5)", what)
}

// touchesLinks reports whether expr reaches a channel through the links
// field of a fabric value (f.links[i], c.f.links[…], …).
func touchesLinks(pass *analysis.Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "links" {
			return true
		}
		if analysis.NamedTypeName(pass.TypesInfo.TypeOf(sel.X)) == "fabric" {
			found = true
		}
		return true
	})
	return found
}
