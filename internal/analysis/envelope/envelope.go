// Package envelope enforces the pooled-envelope ownership rules of
// DESIGN.md §5/§7: a vecMsg/keyMsg acquired from the fabric pool
// (rankFabric/envPool getVec/getKeys) or taken off a link
// (rankComm.recvVec/recvKeyMsg) is owned by exactly one party, which
// must either release it back to the pool (putVec/putKeys), hand it off
// over the wire (rankComm.send), or pass ownership out of the function
// (return
// it or store it away).  A leaked envelope silently grows the pool and
// breaks the deterministic zero-allocation budget; touching an envelope
// after release or handoff is a data race with the next owner.
//
// The check is a per-function abstract interpretation over the AST —
// no cross-function tracking.  Each acquired envelope is in one or more
// of the states {live, released, handed}; branch merges union the
// states.  Reported hazards:
//
//   - an envelope still (possibly) live at a return or at the end of
//     the function — the classic leaked-envelope-on-an-error-path bug;
//   - any use of an envelope that is definitely released or handed off
//     (including releasing it twice, or releasing after a send);
//   - an acquisition whose result is not bound to a variable.
//
// Passing the envelope itself to any other function, storing it, or
// returning it transfers ownership conservatively: tracking stops and
// no leak is reported.  A deferred release covers every path.  Paths
// that end in panic are exempt — the run is already coming down.
package envelope

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the envelope ownership checker.
var Analyzer = &analysis.Analyzer{
	Name: "envelope",
	Doc:  "DESIGN.md §5/§7: pooled vecMsg/keyMsg envelopes must be released or handed off on every path and never touched afterwards",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				newChecker(pass).checkFunc(fd)
			}
		}
	}
	return nil
}

// state is the may-state bitset of one tracked envelope.
type state uint8

const (
	live state = 1 << iota
	released
	handed
)

type meta struct {
	pos          token.Pos // acquisition site
	method       string    // acquiring method name
	deferred     bool      // a deferred release covers every exit
	leakReported bool
}

type checker struct {
	pass *analysis.Pass
	meta map[*types.Var]*meta
}

type env map[*types.Var]state

func (e env) clone() env {
	c := make(env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

func newChecker(pass *analysis.Pass) *checker {
	return &checker{pass: pass, meta: map[*types.Var]*meta{}}
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	e, term := c.walkStmts(fd.Body.List, env{})
	if !term {
		c.leakCheck(e)
	}
}

// leakCheck fires at an exit point: every envelope that may still be
// live, has no deferred release, and never escaped is a leak.
func (c *checker) leakCheck(e env) {
	for v, st := range e {
		m := c.meta[v]
		if st&live != 0 && !m.deferred && !m.leakReported {
			m.leakReported = true
			c.pass.Reportf(m.pos, "envelope from %s is not released on every path: release it with putVec/putKeys, send it, or hand it out of the function (DESIGN.md §7)", m.method)
		}
	}
}

// walkStmts interprets a statement list.  The returned bool means every
// path through the list terminated (return, panic, break/continue).
func (c *checker) walkStmts(stmts []ast.Stmt, e env) (env, bool) {
	for _, s := range stmts {
		var term bool
		e, term = c.walkStmt(s, e)
		if term {
			return e, true
		}
	}
	return e, false
}

func (c *checker) walkStmt(s ast.Stmt, e env) (env, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.assign(s, e)
	case *ast.DeclStmt:
		c.declStmt(s, e)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, builtin := c.pass.ObjectOf(id).(*types.Builtin); builtin {
					c.scanExpr(s.X, e)
					return e, true // aborting; the pool no longer matters
				}
			}
		}
		c.scanExpr(s.X, e)
	case *ast.DeferStmt:
		c.deferStmt(s, e)
	case *ast.SendStmt:
		c.scanExpr(s.Chan, e)
		if v := c.trackedIdent(s.Value, e); v != nil {
			c.useCheck(v, s.Value.Pos(), e)
			e[v] = handed
		} else {
			c.scanExpr(s.Value, e)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if v := c.trackedIdent(r, e); v != nil {
				delete(e, v) // ownership moves to the caller
			} else if call, ok := r.(*ast.CallExpr); ok && c.acquisitionMethod(call) != "" {
				c.scanCallArgs(call, e) // fresh envelope returned directly
			} else {
				c.scanExpr(r, e)
			}
		}
		c.leakCheck(e)
		return e, true
	case *ast.BranchStmt:
		// break/continue/goto leave the structured walk; stay silent
		// rather than guess which paths rejoin.
		return e, true
	case *ast.IfStmt:
		if s.Init != nil {
			e, _ = c.walkStmt(s.Init, e)
		}
		c.scanExpr(s.Cond, e)
		thenEnv, thenTerm := c.walkStmts(s.Body.List, e.clone())
		elseEnv, elseTerm := e, false
		if s.Else != nil {
			elseEnv, elseTerm = c.walkStmt(s.Else, e.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return e, true
		case thenTerm:
			return elseEnv, false
		case elseTerm:
			return thenEnv, false
		default:
			return merge(thenEnv, elseEnv), false
		}
	case *ast.BlockStmt:
		return c.walkStmts(s.List, e)
	case *ast.ForStmt:
		if s.Init != nil {
			e, _ = c.walkStmt(s.Init, e)
		}
		if s.Cond != nil {
			c.scanExpr(s.Cond, e)
		}
		bodyEnv, _ := c.walkStmts(s.Body.List, e.clone())
		if s.Post != nil {
			bodyEnv, _ = c.walkStmt(s.Post, bodyEnv)
		}
		return merge(e, bodyEnv), false
	case *ast.RangeStmt:
		c.scanExpr(s.X, e)
		bodyEnv, _ := c.walkStmts(s.Body.List, e.clone())
		return merge(e, bodyEnv), false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.walkBranches(s, e)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, e)
	case *ast.GoStmt:
		c.scanExpr(s.Call, e)
	case *ast.IncDecStmt:
		c.scanExpr(s.X, e)
	}
	return e, false
}

// walkBranches handles switch/type-switch/select: each clause is a
// branch.  The pre-statement env joins the merge only when no clause
// may run at all — a switch without a default; a select always executes
// exactly one of its clauses.
func (c *checker) walkBranches(s ast.Stmt, e env) (env, bool) {
	var body *ast.BlockStmt
	exhaustive := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			e, _ = c.walkStmt(s.Init, e)
		}
		if s.Tag != nil {
			c.scanExpr(s.Tag, e)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			e, _ = c.walkStmt(s.Init, e)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
		exhaustive = true
	}
	out := env{}
	merged := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				exhaustive = true // default clause
			}
			for _, x := range cl.List {
				c.scanExpr(x, e)
			}
			stmts = cl.Body
		case *ast.CommClause:
			branch := e.clone()
			if cl.Comm != nil {
				branch, _ = c.walkStmt(cl.Comm, branch)
			}
			if clEnv, term := c.walkStmts(cl.Body, branch); !term {
				out, merged = merge(out, clEnv), true
			}
			continue
		}
		if clEnv, term := c.walkStmts(stmts, e.clone()); !term {
			out, merged = merge(out, clEnv), true
		}
	}
	if exhaustive && !merged && len(body.List) > 0 {
		return e, true // every clause terminates and one must run
	}
	if !exhaustive {
		out = merge(out, e)
	}
	return out, false
}

func merge(a, b env) env {
	for v, st := range b {
		a[v] |= st
	}
	return a
}

// assign handles bindings: an acquisition bound to an identifier starts
// tracking; overwriting a live envelope variable loses it.
func (c *checker) assign(s *ast.AssignStmt, e env) {
	if len(s.Lhs) == len(s.Rhs) {
		for i, rhs := range s.Rhs {
			call, isCall := rhs.(*ast.CallExpr)
			if isCall {
				if m := c.acquisitionMethod(call); m != "" {
					c.scanCallArgs(call, e)
					c.bind(s.Lhs[i], call, m, e)
					continue
				}
			}
			c.scanLhs(s.Lhs[i], e)
			if v := c.trackedIdent(rhs, e); v != nil {
				c.useCheck(v, rhs.Pos(), e)
				delete(e, v) // aliased away: ownership is no longer ours to judge
			} else {
				c.scanExpr(rhs, e)
			}
		}
		return
	}
	for _, lhs := range s.Lhs {
		c.scanLhs(lhs, e)
	}
	for _, rhs := range s.Rhs {
		c.scanExpr(rhs, e)
	}
}

func (c *checker) declStmt(s *ast.DeclStmt, e env) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Names) == len(vs.Values) {
			for i, val := range vs.Values {
				if call, isCall := val.(*ast.CallExpr); isCall {
					if m := c.acquisitionMethod(call); m != "" {
						c.scanCallArgs(call, e)
						c.bind(vs.Names[i], call, m, e)
						continue
					}
				}
				c.scanExpr(val, e)
			}
			continue
		}
		for _, val := range vs.Values {
			c.scanExpr(val, e)
		}
	}
}

// bind starts (or restarts) tracking lhs as the owner of a fresh
// envelope.
func (c *checker) bind(lhs ast.Expr, call *ast.CallExpr, method string, e env) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		c.pass.Reportf(call.Pos(), "envelope from %s is discarded: bind it so it can be released (DESIGN.md §7)", method)
		return
	}
	v, ok := c.pass.ObjectOf(id).(*types.Var)
	if !ok {
		return
	}
	if st, tracked := e[v]; tracked && st&live != 0 && !c.meta[v].deferred && !c.meta[v].leakReported {
		c.meta[v].leakReported = true
		c.pass.Reportf(c.meta[v].pos, "envelope from %s is overwritten while still live: the previous envelope leaks (DESIGN.md §7)", c.meta[v].method)
	}
	c.meta[v] = &meta{pos: call.Pos(), method: method}
	e[v] = live
}

func (c *checker) deferStmt(s *ast.DeferStmt, e env) {
	if v, isRelease := c.releaseArg(s.Call, e); isRelease && v != nil {
		c.meta[v].deferred = true
		return
	}
	c.scanExpr(s.Call, e)
}

// scanLhs treats `m.buf = …` / `x[i] = …` as uses of m/x, and plain
// `m = …` overwrites as loss of the previous envelope (handled by the
// caller via bind for acquisitions; here for non-acquisition RHS).
func (c *checker) scanLhs(lhs ast.Expr, e env) {
	if id, ok := lhs.(*ast.Ident); ok {
		if v, isVar := c.pass.ObjectOf(id).(*types.Var); isVar {
			if st, tracked := e[v]; tracked {
				if st&live != 0 && !c.meta[v].deferred && !c.meta[v].leakReported {
					c.meta[v].leakReported = true
					c.pass.Reportf(c.meta[v].pos, "envelope from %s is overwritten while still live: the previous envelope leaks (DESIGN.md §7)", c.meta[v].method)
				}
				delete(e, v)
			}
		}
		return
	}
	c.scanExpr(lhs, e)
}

// scanExpr interprets an expression for releases, handoffs, escapes and
// plain uses of tracked envelopes.
func (c *checker) scanExpr(x ast.Expr, e env) {
	switch x := x.(type) {
	case nil:
	case *ast.CallExpr:
		if v, isRelease := c.releaseArg(x, e); isRelease {
			if v != nil {
				c.release(v, x.Pos(), e)
			} else {
				c.scanCallArgs(x, e)
			}
			return
		}
		if c.isHandoff(x) {
			for _, arg := range x.Args {
				if v := c.trackedIdent(arg, e); v != nil {
					c.useCheck(v, arg.Pos(), e)
					e[v] = handed
				} else {
					c.scanExpr(arg, e)
				}
			}
			c.scanExpr(x.Fun, e)
			return
		}
		if m := c.acquisitionMethod(x); m != "" {
			// An acquisition reaching here was never bound.
			c.pass.Reportf(x.Pos(), "envelope from %s is discarded: bind it so it can be released (DESIGN.md §7)", m)
			c.scanCallArgs(x, e)
			return
		}
		// Unknown call: a bare envelope argument transfers ownership
		// conservatively (stop tracking); everything else is a use.
		for _, arg := range x.Args {
			if v := c.trackedIdent(arg, e); v != nil {
				c.useCheck(v, arg.Pos(), e)
				delete(e, v)
			} else {
				c.scanExpr(arg, e)
			}
		}
		c.scanExpr(x.Fun, e)
	case *ast.Ident:
		if v := c.trackedIdent(x, e); v != nil {
			c.useCheck(v, x.Pos(), e)
		}
	case *ast.SelectorExpr:
		c.scanExpr(x.X, e)
	case *ast.ParenExpr:
		c.scanExpr(x.X, e)
	case *ast.StarExpr:
		c.scanExpr(x.X, e)
	case *ast.UnaryExpr:
		if v := c.trackedIdent(x.X, e); v != nil && x.Op == token.AND {
			c.useCheck(v, x.Pos(), e)
			delete(e, v) // address taken: anyone may own it now
			return
		}
		c.scanExpr(x.X, e)
	case *ast.BinaryExpr:
		c.scanExpr(x.X, e)
		c.scanExpr(x.Y, e)
	case *ast.IndexExpr:
		c.scanExpr(x.X, e)
		c.scanExpr(x.Index, e)
	case *ast.SliceExpr:
		c.scanExpr(x.X, e)
		c.scanExpr(x.Low, e)
		c.scanExpr(x.High, e)
		c.scanExpr(x.Max, e)
	case *ast.TypeAssertExpr:
		c.scanExpr(x.X, e)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if v := c.trackedIdent(el, e); v != nil {
				c.useCheck(v, el.Pos(), e)
				delete(e, v) // stored away: ownership transfers
			} else {
				c.scanExpr(el, e)
			}
		}
	case *ast.KeyValueExpr:
		c.scanExpr(x.Key, e)
		if v := c.trackedIdent(x.Value, e); v != nil {
			c.useCheck(v, x.Value.Pos(), e)
			delete(e, v)
		} else {
			c.scanExpr(x.Value, e)
		}
	case *ast.FuncLit:
		// A closure may run at any time: any envelope it captures is
		// beyond this intraprocedural analysis.
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v := c.trackedIdent(id, e); v != nil {
					delete(e, v)
				}
			}
			return true
		})
	}
}

func (c *checker) scanCallArgs(call *ast.CallExpr, e env) {
	for _, arg := range call.Args {
		c.scanExpr(arg, e)
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		c.scanExpr(sel.X, e)
	}
}

func (c *checker) release(v *types.Var, pos token.Pos, e env) {
	st := e[v]
	m := c.meta[v]
	switch {
	case st&live == 0 && st&handed != 0:
		c.pass.Reportf(pos, "release of an envelope already handed to the fabric: the receiver owns it now (DESIGN.md §5/§7)")
	case st&live == 0 && st&released != 0:
		c.pass.Reportf(pos, "double release of envelope from %s (DESIGN.md §7)", m.method)
	}
	e[v] = released
}

func (c *checker) useCheck(v *types.Var, pos token.Pos, e env) {
	st := e[v]
	if st&live != 0 || c.meta[v].deferred {
		return
	}
	switch {
	case st&handed != 0:
		c.pass.Reportf(pos, "use of envelope after it was handed to the fabric: the receiver owns it (DESIGN.md §5/§7)")
	case st&released != 0:
		c.pass.Reportf(pos, "use of envelope after release back to the pool (DESIGN.md §7)")
	}
}

// trackedIdent returns the tracked variable behind a bare identifier
// expression, or nil.
func (c *checker) trackedIdent(x ast.Expr, e env) *types.Var {
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := c.pass.ObjectOf(id).(*types.Var)
	if !ok {
		return nil
	}
	if _, tracked := e[v]; !tracked {
		return nil
	}
	return v
}

// poolRecvs are the named types whose getVec/getKeys mint a pooled
// envelope and whose putVec/putKeys release one: the rankFabric
// transport seam and the envPool free list every fabric embeds.
var poolRecvs = []string{"rankFabric", "envPool"}

// acquisitionMethod reports the acquiring method name when call mints a
// pooled envelope: getVec/getKeys on a fabric or its pool, or
// rankComm.recvVec/recvKeyMsg.
func (c *checker) acquisitionMethod(call *ast.CallExpr) string {
	for _, m := range []string{"getVec", "getKeys"} {
		for _, recv := range poolRecvs {
			if _, ok := c.pass.MethodCallOn(call, recv, m); ok {
				return m
			}
		}
	}
	for _, m := range []string{"recvVec", "recvKeyMsg"} {
		if _, ok := c.pass.MethodCallOn(call, "rankComm", m); ok {
			return m
		}
	}
	return ""
}

// releaseArg reports whether call is putVec/putKeys; v is the tracked
// released variable when the argument is a bare tracked identifier.
func (c *checker) releaseArg(call *ast.CallExpr, e env) (v *types.Var, isRelease bool) {
	for _, m := range []string{"putVec", "putKeys"} {
		for _, recv := range poolRecvs {
			if _, ok := c.pass.MethodCallOn(call, recv, m); ok {
				if len(call.Args) == 1 {
					v = c.trackedIdent(call.Args[0], e)
				}
				return v, true
			}
		}
	}
	return nil, false
}

// isHandoff reports whether call transfers envelope ownership over the
// wire: the raw rankComm.send.
func (c *checker) isHandoff(call *ast.CallExpr) bool {
	_, ok := c.pass.MethodCallOn(call, "rankComm", "send")
	return ok
}
