package dist

// --- true positives: every hazard class the analyzer promises to catch ---

// The classic real-world bug: the envelope leaks on the early error
// return while the happy path releases correctly.
func leakOnErrorPath(c *rankComm, err error) error {
	m := c.f.getVec(8) // want `envelope from getVec is not released on every path`
	if err != nil {
		return err
	}
	c.f.putVec(m)
	return nil
}

func leakOneBranch(c *rankComm, cond bool) {
	m := c.f.getKeys(2) // want `envelope from getKeys is not released on every path`
	if cond {
		c.f.putKeys(m)
	}
}

func leakPlain(c *rankComm) {
	m := c.recvVec(0) // want `envelope from recvVec is not released on every path`
	_ = m.buf
}

func useAfterRelease(c *rankComm) float64 {
	m := c.f.getVec(4)
	c.f.putVec(m)
	return m.buf[0] // want `use of envelope after release back to the pool`
}

func useAfterHandoff(c *rankComm, dst int) {
	m := c.f.getVec(4)
	c.send(dst, m)
	m.buf[0] = 1 // want `use of envelope after it was handed to the fabric`
}

func releaseAfterHandoff(c *rankComm, dst int) {
	m := c.f.getVec(4)
	c.send(dst, m)
	c.f.putVec(m) // want `release of an envelope already handed to the fabric`
}

func doubleRelease(c *rankComm) {
	m := c.f.getVec(4)
	c.f.putVec(m)
	c.f.putVec(m) // want `double release of envelope from getVec`
}

func discarded(c *rankComm) {
	c.f.getVec(4) // want `envelope from getVec is discarded`
}

func overwriteWhileLive(c *rankComm) {
	m := c.f.getVec(4) // want `envelope from getVec is overwritten while still live`
	m = c.f.getVec(8)
	c.f.putVec(m)
}

// --- true negatives: the documented ownership idioms stay silent ---

// Sender-copies: acquire, fill, hand off; the sender never touches the
// envelope again (DESIGN.md §5).
func okSendCopy(c *rankComm, vec []float64, dst int) {
	m := c.f.getVec(len(vec))
	copy(m.buf, vec)
	c.send(dst, m)
}

// Receiver-folds: take each contribution off the link, consume, release
// — the allReduce inner loop.
func okRecvFold(c *rankComm, vec []float64, p int) {
	for src := 1; src < p; src++ {
		m := c.recvVec(src)
		for i, v := range m.buf {
			vec[i] += v
		}
		c.f.putVec(m)
	}
}

// A deferred release covers every path, including early error returns.
func okDeferred(c *rankComm, err error) (float64, error) {
	m := c.recvVec(0)
	defer c.f.putVec(m)
	if err != nil {
		return 0, err
	}
	return m.buf[0], nil
}

// Returning the envelope hands ownership to the caller.
func okReturn(c *rankComm) *vecMsg {
	m := c.f.getVec(1)
	m.buf[0] = 1
	return m
}

func okReturnDirect(c *rankComm) *vecMsg {
	return c.f.getVec(3)
}

// Storing the envelope transfers ownership out of the function.
func okStore(c *rankComm, sink []*vecMsg) {
	m := c.f.getVec(2)
	sink[0] = m
}

// Releasing on both branches is a release on every path.
func okBothBranches(c *rankComm, cond bool) {
	m := c.f.getKeys(2)
	if cond {
		c.f.putKeys(m)
	} else {
		c.f.putKeys(m)
	}
}

// A path that panics is the run coming down; the pool no longer matters.
func okPanicPath(c *rankComm, src int) *vecMsg {
	m := c.recvVec(src)
	if m.buf == nil {
		panic("dist: protocol bug")
	}
	return m
}

// A select executes exactly one clause: handing off on one arm and
// releasing on the other covers every path.
func okSelect(c *rankComm, sink chan *vecMsg) {
	m := c.f.getVec(2)
	select {
	case sink <- m:
	default:
		c.f.putVec(m)
	}
}

// A justified suppression silences the finding (driver contract): the
// directive line covers the acquisition directly below it.
func okSuppressed(c *rankComm, cond bool) {
	//prlint:allow envelope -- golden case for the suppression contract; the leak is the point
	m := c.f.getVec(2)
	if cond {
		c.f.putVec(m)
	}
}
