// Package dist is a miniature of the real rank fabric: just enough of
// the vecMsg/keyMsg pool and rankComm surface for the envelope
// analyzer's golden cases.  No diagnostics are expected in this file.
package dist

type vecMsg struct{ buf []float64 }

type keyMsg struct{ buf []uint64 }

type fabric struct {
	freeVecs []*vecMsg
	freeKeys []*keyMsg
}

func (f *fabric) getVec(n int) *vecMsg {
	return &vecMsg{buf: make([]float64, n)}
}

func (f *fabric) getKeys(n int) *keyMsg {
	return &keyMsg{buf: make([]uint64, n)}
}

func (f *fabric) putVec(m *vecMsg)  { f.freeVecs = append(f.freeVecs, m) }
func (f *fabric) putKeys(m *keyMsg) { f.freeKeys = append(f.freeKeys, m) }

type rankComm struct {
	f    *fabric
	rank int
}

func (c *rankComm) send(dst int, m any) {}

func (c *rankComm) recvVec(src int) *vecMsg { return &vecMsg{} }

func (c *rankComm) recvKeyMsg(src int) *keyMsg { return &keyMsg{} }
