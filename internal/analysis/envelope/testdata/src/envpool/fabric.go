// Package dist is a miniature of the real rank fabric: just enough of
// the vecMsg/keyMsg pool and rankComm surface for the envelope
// analyzer's golden cases.  No diagnostics are expected in this file.
package dist

type vecMsg struct{ buf []float64 }

type keyMsg struct{ buf []uint64 }

// rankFabric mirrors the real transport seam: the interface rank
// programs acquire and release envelopes through.
type rankFabric interface {
	getVec(n int) *vecMsg
	putVec(m *vecMsg)
	getKeys(n int) *keyMsg
	putKeys(m *keyMsg)
}

// envPool mirrors the concrete free list every fabric embeds.
type envPool struct {
	freeVecs []*vecMsg
	freeKeys []*keyMsg
}

func (pl *envPool) getVec(n int) *vecMsg {
	return &vecMsg{buf: make([]float64, n)}
}

func (pl *envPool) getKeys(n int) *keyMsg {
	return &keyMsg{buf: make([]uint64, n)}
}

func (pl *envPool) putVec(m *vecMsg)  { pl.freeVecs = append(pl.freeVecs, m) }
func (pl *envPool) putKeys(m *keyMsg) { pl.freeKeys = append(pl.freeKeys, m) }

// okDirectPool exercises the concrete envPool receiver: a balanced
// acquire/release straight on the pool, as the fabric implementations
// themselves do.
func okDirectPool(pl *envPool) {
	m := pl.getVec(8)
	pl.putVec(m)
}

type rankComm struct {
	f    rankFabric
	rank int
}

func (c *rankComm) send(dst int, m any) {}

func (c *rankComm) recvVec(src int) *vecMsg { return &vecMsg{} }

func (c *rankComm) recvKeyMsg(src int) *keyMsg { return &keyMsg{} }
