package ctxfirst_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxfirst"
)

func TestCtxFirst(t *testing.T) {
	analysistest.Run(t, "testdata", ctxfirst.Analyzer, "apisurface")
}
