// Package ctxfirst enforces the session-API contract of DESIGN.md §8:
// the service and execution layers are context-first, so cancellation
// and deadlines reach every kernel run and every I/O path from one
// place.  In the API packages (serve, pipeline, dist, core), an
// exported function or method (on an exported type):
//
//   - that takes a context.Context must take it as the first parameter
//     (after the receiver);
//   - that takes no context must not conjure one with
//     context.Background()/context.TODO() inside — it is swallowing the
//     caller's cancellation and must accept a context instead.
//
// Deprecated functions are exempt: the pre-§8 wrappers intentionally
// bridge old signatures onto Execute(ctx, …) under context.Background(),
// and staticcheck's SA1019 already fences new callers away from them.
// Test files are exempt throughout.
package ctxfirst

import (
	"go/ast"

	"repro/internal/analysis"
)

// apiPkgs are the package names under the §8 contract.
var apiPkgs = map[string]bool{
	"serve": true, "pipeline": true, "dist": true, "core": true,
}

// Analyzer is the context-first checker.
var Analyzer = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc:  "DESIGN.md §8: exported API functions are context-first — ctx is the leading parameter, and no exported non-deprecated entrypoint fabricates its own background context",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !apiPkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !exportedAPI(pass, fd) || analysis.IsDeprecated(fd.Doc) {
				continue
			}
			checkSignature(pass, fd)
		}
	}
	return nil
}

// exportedAPI reports whether fd is part of the package's exported
// surface: an exported function, or an exported method on an exported
// receiver type.
func exportedAPI(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	name := analysis.NamedTypeName(t)
	return name != "" && ast.IsExported(name)
}

func checkSignature(pass *analysis.Pass, fd *ast.FuncDecl) {
	ctxIndex := -1
	idx := 0
	for _, field := range fd.Type.Params.List {
		isCtx := analysis.IsContextType(pass.TypesInfo.TypeOf(field.Type))
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtx && ctxIndex < 0 {
			ctxIndex = idx
		}
		idx += n
	}
	switch {
	case ctxIndex > 0:
		pass.Reportf(fd.Name.Pos(), "exported %s.%s takes context.Context at parameter %d: the §8 contract puts ctx first", pass.Pkg.Name(), fd.Name.Name, ctxIndex)
	case ctxIndex < 0:
		checkConjuredContext(pass, fd)
	}
}

// checkConjuredContext flags context.Background()/TODO() passed to a
// call inside a context-free exported function.  Returning a stored or
// default context (the Run.Context() getter pattern) stays legal: only
// use as a call argument is the smell.
func checkConjuredContext(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			inner, ok := arg.(*ast.CallExpr)
			if !ok || !pass.PkgFuncCall(inner, "context", "Background", "TODO") {
				continue
			}
			pass.Reportf(inner.Pos(), "exported %s.%s passes a fabricated context downstream: accept a context.Context as its first parameter instead (DESIGN.md §8)", pass.Pkg.Name(), fd.Name.Name)
		}
		return true
	})
}
