// Package serve (a stand-in API package: the ctxfirst analyzer keys on
// the API package names serve/pipeline/dist/core) exercises the §8
// context-first contract.
package serve

import "context"

type Service struct{}

func runWith(ctx context.Context, n int) error { return ctx.Err() }

// --- true positives ---

func (s *Service) RunLate(n int, ctx context.Context) error { // want `exported serve.RunLate takes context.Context at parameter 1`
	return runWith(ctx, n)
}

func Late(a, b int, ctx context.Context) error { // want `exported serve.Late takes context.Context at parameter 2`
	return runWith(ctx, a+b)
}

func Fire(n int) error {
	return runWith(context.Background(), n) // want `exported serve.Fire passes a fabricated context downstream`
}

func FireTODO(n int) error {
	return runWith(context.TODO(), n) // want `exported serve.FireTODO passes a fabricated context downstream`
}

// --- true negatives ---

// Context first is the contract.
func (s *Service) Run(ctx context.Context, n int) error {
	return runWith(ctx, n)
}

// A deprecated wrapper may bridge onto Background: SA1019 fences new
// callers away from it.
//
// Deprecated: use Service.Run.
func OldFire(n int) error {
	return runWith(context.Background(), n)
}

// The stored-context getter pattern returns (not passes) a default.
type Run struct{ ctx context.Context }

func (r *Run) Context() context.Context {
	if r.ctx != nil {
		return r.ctx
	}
	return context.Background()
}

// Unexported functions are not API surface.
func fire(n int) error { return runWith(context.TODO(), n) }

func lateHelper(n int, ctx context.Context) error { return runWith(ctx, n) }

// Methods on unexported types are not API surface.
type worker struct{}

func (w worker) Fire(n int) error { return runWith(context.Background(), n) }

// A justified suppression silences a finding.
func Detached(n int) error {
	//prlint:allow ctxfirst -- golden case for the suppression contract
	return runWith(context.Background(), n)
}
