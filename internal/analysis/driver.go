package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/analysis/load"
)

// AllowPrefix is the suppression directive: a comment of the form
// `//prlint:allow <analyzer> -- <justification>` on the flagged line or
// the line directly above suppresses that analyzer's diagnostics there.
const AllowPrefix = "//prlint:allow"

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by position.  Suppression directives are honored
// here — analyzers never see them — and a directive missing its
// mandatory justification is itself reported, attributed to the pseudo
// analyzer "prlint".
func Run(pkgs []*load.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows, malformed := collectAllows(pkg)
		diags = append(diags, malformed...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				PkgPath:   pkg.PkgPath,
				testFiles: pkg.TestFiles,
			}
			pass.Report = func(d Diagnostic) {
				d.Analyzer = a.Name
				pos := pkg.Fset.Position(d.Pos)
				if allows[allowKey{a.Name, pos.Filename, pos.Line}] {
					return
				}
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sortDiagnostics(pkgs, diags)
	return diags, nil
}

type allowKey struct {
	analyzer string
	file     string
	line     int
}

// collectAllows scans a package's comments for suppression directives.
// A well-formed directive covers its own line and the next line (so it
// works both as a trailing comment and as a comment above the flagged
// statement).  Directives without a ` -- justification` tail do not
// suppress anything and are reported.
func collectAllows(pkg *load.Package) (map[allowKey]bool, []Diagnostic) {
	allows := map[allowKey]bool{}
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, AllowPrefix)
				if !ok {
					continue
				}
				name, reason, hasReason := strings.Cut(strings.TrimSpace(rest), "--")
				name = strings.TrimSpace(name)
				if name == "" || !hasReason || strings.TrimSpace(reason) == "" {
					malformed = append(malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "prlint",
						Message: fmt.Sprintf(
							"malformed suppression: want %s <analyzer> -- <justification>", AllowPrefix),
					})
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				allows[allowKey{name, pos.Filename, pos.Line}] = true
				allows[allowKey{name, pos.Filename, pos.Line + 1}] = true
			}
		}
	}
	return allows, malformed
}

func sortDiagnostics(pkgs []*load.Package, diags []Diagnostic) {
	var fset *token.FileSet
	if len(pkgs) > 0 {
		fset = pkgs[0].Fset
	}
	sort.SliceStable(diags, func(i, j int) bool {
		if fset == nil {
			return false
		}
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// File returns the *ast.File of pass.Files containing pos, or nil.
func (p *Pass) File(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
