package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant checker.  The fields mirror
// golang.org/x/tools/go/analysis.Analyzer where the two overlap.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //prlint:allow directives.  Lower-case, no spaces.
	Name string

	// Doc is the one-paragraph statement of the invariant, opening
	// with the DESIGN.md section it enforces.
	Doc string

	// Run applies the analyzer to one package.  Findings are delivered
	// through pass.Report; the error return is for the analyzer being
	// unable to run at all, not for findings.
	Run func(pass *Pass) error
}

// A Pass presents one type-checked package to an analyzer.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// PkgPath is the package's import path ("repro/internal/dist", or
	// the bare testdata path in analysistest runs).
	PkgPath string

	// testFiles marks which of Files were parsed from _test.go files.
	testFiles map[*ast.File]bool

	// Report delivers one diagnostic.  Filled in by the driver.
	Report func(Diagnostic)
}

// IsTestFile reports whether f came from a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool { return p.testFiles[f] }

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string

	// Analyzer is the reporting analyzer's name; the driver fills it in.
	Analyzer string
}
