package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis/load"
)

// fakeAnalyzer flags every function declaration, so the test can steer
// findings onto chosen lines with plain source text.
var fakeAnalyzer = &Analyzer{
	Name: "fake",
	Doc:  "flags every function declaration",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "func %s flagged", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

func parsePackage(t *testing.T, src string) *load.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fake.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &load.Package{
		PkgPath:   "fakepkg",
		Fset:      fset,
		Files:     []*ast.File{f},
		TestFiles: map[*ast.File]bool{},
	}
}

// TestSuppressionContract pins the driver side of the directive design:
// a justified //prlint:allow covers its own line and the next, an
// unjustified one suppresses nothing and is itself reported, and a
// directive only silences the analyzer it names.
func TestSuppressionContract(t *testing.T) {
	pkg := parsePackage(t, `package fakepkg

func caught() {}

//prlint:allow fake -- the test wants this one quiet
func allowed() {}

//prlint:allow fake
func unjustified() {}

//prlint:allow other -- names a different analyzer
func wrongName() {}
`)
	diags, err := Run([]*load.Package{pkg}, []*Analyzer{fakeAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+": "+d.Message)
	}
	want := map[string]bool{
		"fake: func caught flagged":      true,
		"fake: func unjustified flagged": true,
		"fake: func wrongName flagged":   true,
	}
	sawMalformed := false
	for _, g := range got {
		switch {
		case want[g]:
			delete(want, g)
		case strings.HasPrefix(g, "prlint: malformed suppression"):
			sawMalformed = true
		default:
			t.Errorf("unexpected diagnostic %q", g)
		}
	}
	for w := range want {
		t.Errorf("missing diagnostic %q", w)
	}
	if !sawMalformed {
		t.Error("unjustified directive was not reported as malformed")
	}
	for _, g := range got {
		if strings.Contains(g, "allowed") {
			t.Errorf("suppressed finding leaked: %q", g)
		}
	}
}

// TestSuppressionCoversTrailingComment checks the same-line form: the
// directive as a trailing comment on the flagged line.
func TestSuppressionCoversTrailingComment(t *testing.T) {
	pkg := parsePackage(t, `package fakepkg

func trailing() {} //prlint:allow fake -- trailing form
`)
	diags, err := Run([]*load.Package{pkg}, []*Analyzer{fakeAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("trailing directive did not suppress: %v", diags)
	}
}
