package edge

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestAppendAndAt(t *testing.T) {
	l := NewList(4)
	l.Append(1, 2)
	l.Append(3, 4)
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2", l.Len())
	}
	if u, v := l.At(0); u != 1 || v != 2 {
		t.Errorf("At(0) = (%d,%d), want (1,2)", u, v)
	}
	if u, v := l.At(1); u != 3 || v != 4 {
		t.Errorf("At(1) = (%d,%d), want (3,4)", u, v)
	}
}

func TestAppendList(t *testing.T) {
	a := NewList(0)
	a.Append(1, 1)
	b := NewList(0)
	b.Append(2, 2)
	b.Append(3, 3)
	a.AppendList(b)
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3", a.Len())
	}
	if u, _ := a.At(2); u != 3 {
		t.Errorf("merged list wrong tail")
	}
}

func TestSetSwap(t *testing.T) {
	l := Make(2)
	l.Set(0, 10, 20)
	l.Set(1, 30, 40)
	l.Swap(0, 1)
	if u, v := l.At(0); u != 30 || v != 40 {
		t.Errorf("after swap At(0) = (%d,%d)", u, v)
	}
}

func TestCloneIndependent(t *testing.T) {
	l := NewList(1)
	l.Append(5, 6)
	c := l.Clone()
	c.Set(0, 7, 8)
	if u, _ := l.At(0); u != 5 {
		t.Error("Clone shares storage with original")
	}
}

func TestSliceSharesStorage(t *testing.T) {
	l := Make(4)
	for i := 0; i < 4; i++ {
		l.Set(i, uint64(i), uint64(i))
	}
	s := l.Slice(1, 3)
	if s.Len() != 2 {
		t.Fatalf("slice Len = %d", s.Len())
	}
	s.Set(0, 99, 99)
	if u, _ := l.At(1); u != 99 {
		t.Error("Slice does not alias parent storage")
	}
}

func TestResetKeepsCapacity(t *testing.T) {
	l := NewList(8)
	l.Append(1, 1)
	c := cap(l.U)
	l.Reset()
	if l.Len() != 0 || cap(l.U) != c {
		t.Errorf("Reset: len=%d cap=%d, want 0,%d", l.Len(), cap(l.U), c)
	}
}

func TestMaxVertex(t *testing.T) {
	l := NewList(0)
	if l.MaxVertex() != 0 {
		t.Error("empty list MaxVertex != 0")
	}
	l.Append(3, 9)
	l.Append(12, 1)
	if got := l.MaxVertex(); got != 12 {
		t.Errorf("MaxVertex = %d, want 12", got)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	g := xrand.New(1)
	l := NewList(100)
	for i := 0; i < 100; i++ {
		l.Append(g.Uint64n(50), g.Uint64n(50))
	}
	orig := l.Clone()
	l.Shuffle(xrand.New(2))
	if !l.SameMultiset(orig) {
		t.Error("Shuffle changed the edge multiset")
	}
	if l.Equal(orig) {
		t.Error("Shuffle of 100 edges left order identical (astronomically unlikely)")
	}
}

func TestRelabelVertices(t *testing.T) {
	l := NewList(2)
	l.Append(0, 1)
	l.Append(2, 0)
	perm := []uint64{5, 6, 7}
	l.RelabelVertices(perm)
	if u, v := l.At(0); u != 5 || v != 6 {
		t.Errorf("relabeled edge 0 = (%d,%d), want (5,6)", u, v)
	}
	if u, v := l.At(1); u != 7 || v != 5 {
		t.Errorf("relabeled edge 1 = (%d,%d), want (7,5)", u, v)
	}
}

func TestRelabelVerticesPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range vertex")
		}
	}()
	l := NewList(1)
	l.Append(9, 0)
	l.RelabelVertices([]uint64{0, 1})
}

func TestIsSorted(t *testing.T) {
	l := NewList(3)
	l.Append(1, 5)
	l.Append(1, 2)
	l.Append(3, 0)
	if !l.IsSortedByU() {
		t.Error("IsSortedByU should hold (1,1,3)")
	}
	if l.IsSortedByUV() {
		t.Error("IsSortedByUV should fail ((1,5) before (1,2))")
	}
	l.Swap(0, 1)
	if !l.IsSortedByUV() {
		t.Error("IsSortedByUV should hold after swap")
	}
}

func TestEqualAndSameMultiset(t *testing.T) {
	a := NewList(2)
	a.Append(1, 2)
	a.Append(3, 4)
	b := NewList(2)
	b.Append(3, 4)
	b.Append(1, 2)
	if a.Equal(b) {
		t.Error("Equal should be order sensitive")
	}
	if !a.SameMultiset(b) {
		t.Error("SameMultiset should be order insensitive")
	}
	b.Set(0, 3, 5)
	if a.SameMultiset(b) {
		t.Error("SameMultiset should detect changed edge")
	}
	c := NewList(1)
	c.Append(1, 2)
	if a.SameMultiset(c) {
		t.Error("SameMultiset should detect length mismatch")
	}
}

func TestSameMultisetWithDuplicates(t *testing.T) {
	a := NewList(3)
	a.Append(1, 1)
	a.Append(1, 1)
	a.Append(2, 2)
	b := NewList(3)
	b.Append(1, 1)
	b.Append(2, 2)
	b.Append(2, 2)
	if a.SameMultiset(b) {
		t.Error("multiset multiplicities not respected")
	}
}

func TestRelabelIsBijectiveProperty(t *testing.T) {
	// Relabeling with a permutation then with its inverse restores the list.
	err := quick.Check(func(seed uint64) bool {
		g := xrand.New(seed)
		const n = 32
		l := NewList(64)
		for i := 0; i < 64; i++ {
			l.Append(g.Uint64n(n), g.Uint64n(n))
		}
		orig := l.Clone()
		perm := g.Perm(n)
		inv := make([]uint64, n)
		for i, p := range perm {
			inv[p] = uint64(i)
		}
		l.RelabelVertices(perm)
		l.RelabelVertices(inv)
		return l.Equal(orig)
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Error(err)
	}
}
