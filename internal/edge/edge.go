// Package edge defines the edge-list representation shared by all pipeline
// kernels.
//
// The PageRank pipeline benchmark moves a list of M directed edges through
// four kernels.  Edges are stored in "structure of arrays" form — two
// parallel uint64 slices for the start and end vertices — which is the
// layout both the columnar implementation variant and the radix sorter
// want, and which converts trivially to the (u, v) text records the paper
// specifies for non-volatile storage.
package edge

import (
	"fmt"

	"repro/internal/xrand"
)

// List is a list of directed edges (U[i] -> V[i]).  The two slices always
// have equal length.  The zero value is an empty, ready-to-append list.
type List struct {
	U []uint64 // start vertices
	V []uint64 // end vertices
}

// NewList returns a List with capacity for n edges.
func NewList(n int) *List {
	return &List{U: make([]uint64, 0, n), V: make([]uint64, 0, n)}
}

// Make returns a List of length n with all edges (0, 0).
func Make(n int) *List {
	return &List{U: make([]uint64, n), V: make([]uint64, n)}
}

// Len returns the number of edges.
func (l *List) Len() int { return len(l.U) }

// Append adds the edge (u, v) to the list.
func (l *List) Append(u, v uint64) {
	l.U = append(l.U, u)
	l.V = append(l.V, v)
}

// AppendList appends all edges of other to l.
func (l *List) AppendList(other *List) {
	l.U = append(l.U, other.U...)
	l.V = append(l.V, other.V...)
}

// At returns the i-th edge.
func (l *List) At(i int) (u, v uint64) { return l.U[i], l.V[i] }

// Set overwrites the i-th edge.
func (l *List) Set(i int, u, v uint64) {
	l.U[i] = u
	l.V[i] = v
}

// Swap exchanges edges i and j.  Together with Len and a comparison this
// lets a List participate in sort.Sort-style algorithms.
func (l *List) Swap(i, j int) {
	l.U[i], l.U[j] = l.U[j], l.U[i]
	l.V[i], l.V[j] = l.V[j], l.V[i]
}

// Clone returns a deep copy of the list.
func (l *List) Clone() *List {
	c := Make(l.Len())
	copy(c.U, l.U)
	copy(c.V, l.V)
	return c
}

// Footprint returns the list's in-memory size in bytes — the two vertex
// arrays at their allocated capacity.  The service layer's staged
// artifact cache charges resident edge lists at this cost.
func (l *List) Footprint() int64 {
	return int64(cap(l.U))*8 + int64(cap(l.V))*8
}

// Slice returns a view of edges [lo, hi).  The view shares storage with l.
func (l *List) Slice(lo, hi int) *List {
	return &List{U: l.U[lo:hi:hi], V: l.V[lo:hi:hi]}
}

// Reset truncates the list to zero length, retaining capacity.
func (l *List) Reset() {
	l.U = l.U[:0]
	l.V = l.V[:0]
}

// MaxVertex returns the largest vertex label appearing in the list, or 0
// for an empty list.
func (l *List) MaxVertex() uint64 {
	var m uint64
	for _, u := range l.U {
		if u > m {
			m = u
		}
	}
	for _, v := range l.V {
		if v > m {
			m = v
		}
	}
	return m
}

// Shuffle permutes the order of the edges in place using g.
// Kernel 0 of Graph500 randomizes edge order so that the sort in kernel 1
// is not trivially presorted.
func (l *List) Shuffle(g *xrand.Xoshiro256) {
	g.Shuffle(l.Len(), l.Swap)
}

// RelabelVertices applies the vertex permutation perm to every endpoint:
// vertex x becomes perm[x].  It panics if any vertex is out of range.
// Graph500 kernel 0 relabels vertices with a random permutation so that
// vertex IDs carry no structural information.
func (l *List) RelabelVertices(perm []uint64) {
	n := uint64(len(perm))
	for i, u := range l.U {
		if u >= n {
			panic(fmt.Sprintf("edge: vertex %d out of range for permutation of size %d", u, n))
		}
		l.U[i] = perm[u]
	}
	for i, v := range l.V {
		if v >= n {
			panic(fmt.Sprintf("edge: vertex %d out of range for permutation of size %d", v, n))
		}
		l.V[i] = perm[v]
	}
}

// IsSortedByU reports whether the edges are sorted by start vertex
// (non-decreasing U), the postcondition of kernel 1.
func (l *List) IsSortedByU() bool {
	for i := 1; i < len(l.U); i++ {
		if l.U[i-1] > l.U[i] {
			return false
		}
	}
	return true
}

// IsSortedByUV reports whether the edges are sorted by (U, V)
// lexicographically.
func (l *List) IsSortedByUV() bool {
	for i := 1; i < len(l.U); i++ {
		if l.U[i-1] > l.U[i] || (l.U[i-1] == l.U[i] && l.V[i-1] > l.V[i]) {
			return false
		}
	}
	return true
}

// Equal reports whether two lists contain the same edges in the same order.
func (l *List) Equal(other *List) bool {
	if l.Len() != other.Len() {
		return false
	}
	for i := range l.U {
		if l.U[i] != other.U[i] || l.V[i] != other.V[i] {
			return false
		}
	}
	return true
}

// Counts returns a multiset fingerprint of the edges: a map from (u,v) to
// multiplicity.  It is intended for tests and validation, not hot paths.
func (l *List) Counts() map[[2]uint64]int {
	m := make(map[[2]uint64]int, l.Len())
	for i := range l.U {
		m[[2]uint64{l.U[i], l.V[i]}]++
	}
	return m
}

// SameMultiset reports whether two lists contain exactly the same edges
// ignoring order (the invariant kernel 1 must preserve).
func (l *List) SameMultiset(other *List) bool {
	if l.Len() != other.Len() {
		return false
	}
	a := l.Counts()
	for i := range other.U {
		k := [2]uint64{other.U[i], other.V[i]}
		a[k]--
		if a[k] == 0 {
			delete(a, k)
		}
	}
	return len(a) == 0
}
