package results

import (
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable("Table I. SLOC", "Language", "Lines")
	t.AddRow("C++", "494")
	t.AddRow("Python", "162")
	return t
}

func TestTablePlain(t *testing.T) {
	out := sampleTable().Plain()
	if !strings.Contains(out, "Table I. SLOC") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "C++") || !strings.Contains(out, "494") {
		t.Error("missing cells")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Errorf("plain render has %d lines:\n%s", len(lines), out)
	}
	// Alignment: all data lines equal length.
	if len(lines[1]) != len(lines[3]) {
		t.Errorf("columns not aligned:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	out := sampleTable().CSV()
	want := "Language,Lines\nC++,494\nPython,162\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`has,comma`, `has"quote`)
	out := tb.CSV()
	if !strings.Contains(out, `"has,comma"`) || !strings.Contains(out, `"has""quote"`) {
		t.Errorf("CSV quoting wrong: %q", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	out := sampleTable().Markdown()
	if !strings.Contains(out, "| Language | Lines |") {
		t.Errorf("markdown header missing: %s", out)
	}
	if !strings.Contains(out, "|---|---|") {
		t.Errorf("markdown separator missing: %s", out)
	}
	if !strings.Contains(out, "| C++ | 494 |") {
		t.Errorf("markdown row missing: %s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("1")                // short
	tb.AddRow("1", "2", "3", "4") // long
	if tb.NumRows() != 2 {
		t.Fatal("row count")
	}
	out := tb.CSV()
	if !strings.Contains(out, "1,,\n") {
		t.Errorf("short row not padded: %q", out)
	}
	if strings.Contains(out, "4") {
		t.Errorf("extra cell not dropped: %q", out)
	}
}

func sampleFigure() *Figure {
	f := &Figure{Title: "Figure 7", XLabel: "number of edges", YLabel: "edges per second"}
	f.Add(Series{Label: "csr", X: []float64{1e6, 1e7, 1e8}, Y: []float64{1e8, 9e7, 8e7}})
	f.Add(Series{Label: "coo", X: []float64{1e6, 1e7, 1e8}, Y: []float64{2e7, 1.8e7, 1.5e7}})
	return f
}

func TestFigureCSV(t *testing.T) {
	out := sampleFigure().CSV()
	if !strings.HasPrefix(out, "series,number of edges,edges per second\n") {
		t.Errorf("CSV header: %q", out)
	}
	if !strings.Contains(out, "csr,1e+06,1e+08\n") {
		t.Errorf("CSV data row missing:\n%s", out)
	}
	if strings.Count(out, "\n") != 7 {
		t.Errorf("CSV should have 1 header + 6 data lines:\n%s", out)
	}
}

func TestFigureASCII(t *testing.T) {
	out := sampleFigure().ASCII(60, 15)
	if !strings.Contains(out, "Figure 7") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "A = csr") || !strings.Contains(out, "B = coo") {
		t.Error("missing legend")
	}
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Error("missing data marks")
	}
	if !strings.Contains(out, "log-log") {
		t.Error("missing axis annotation")
	}
}

func TestFigureASCIIEmpty(t *testing.T) {
	f := &Figure{Title: "empty"}
	out := f.ASCII(40, 10)
	if !strings.Contains(out, "no positive data") {
		t.Errorf("empty figure render: %q", out)
	}
	// Zero/negative values skipped without panic.
	f.Add(Series{Label: "z", X: []float64{0, -1}, Y: []float64{1, 2}})
	out = f.ASCII(40, 10)
	if !strings.Contains(out, "no positive data") {
		t.Errorf("nonpositive-only figure: %q", out)
	}
}

func TestFigureASCIIDegenerateRange(t *testing.T) {
	f := &Figure{Title: "point"}
	f.Add(Series{Label: "p", X: []float64{100}, Y: []float64{100}})
	out := f.ASCII(40, 10)
	if !strings.Contains(out, "A") {
		t.Errorf("single point not plotted:\n%s", out)
	}
}

func TestFigureASCIIMinimumSize(t *testing.T) {
	out := sampleFigure().ASCII(1, 1) // clamped to minimums
	if len(out) == 0 {
		t.Error("tiny plot produced nothing")
	}
}
