// Package results renders benchmark output as the paper's tables and
// figures: aligned plain-text tables, CSV, markdown, and log-log ASCII
// scatter plots that visually regenerate Figures 4–7 in a terminal.
package results

import (
	"fmt"
	"math"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	// Title is printed above the table.
	Title string
	// Columns are the header labels.
	Columns []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; missing cells render empty, extra cells are
// dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Plain renders the table with aligned columns.
func (t *Table) Plain() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row.
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Figures

// Series is one labeled line of a figure.
type Series struct {
	// Label names the series (e.g. an implementation variant).
	Label string
	// X and Y are the data points, parallel slices.
	X, Y []float64
}

// Figure reproduces one of the paper's log-log performance plots.
type Figure struct {
	// Title, XLabel and YLabel annotate the plot.
	Title  string
	XLabel string
	YLabel string
	// Series holds the plotted lines.
	Series []Series
}

// Add appends a series.
func (f *Figure) Add(s Series) { f.Series = append(f.Series, s) }

// CSV renders the figure data in long form: series,x,y.
func (f *Figure) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, []string{"series", f.XLabel, f.YLabel})
	for _, s := range f.Series {
		for i := range s.X {
			writeCSVRow(&b, []string{s.Label, formatG(s.X[i]), formatG(s.Y[i])})
		}
	}
	return b.String()
}

func formatG(v float64) string { return fmt.Sprintf("%.6g", v) }

// ASCII renders the figure as a log-log scatter plot of the given size,
// one letter per series, with a legend — the terminal rendition of the
// paper's Figures 4–7.  Non-positive values are skipped (log scale).
func (f *Figure) ASCII(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for i := range s.X {
			if s.X[i] <= 0 || s.Y[i] <= 0 {
				continue
			}
			lx, ly := math.Log10(s.X[i]), math.Log10(s.Y[i])
			minX, maxX = math.Min(minX, lx), math.Max(maxX, lx)
			minY, maxY = math.Min(minY, ly), math.Max(maxY, ly)
		}
	}
	var b strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&b, "%s\n", f.Title)
	}
	if math.IsInf(minX, 1) {
		b.WriteString("(no positive data)\n")
		return b.String()
	}
	// Pad degenerate ranges.
	if maxX-minX < 1e-9 {
		minX, maxX = minX-0.5, maxX+0.5
	}
	if maxY-minY < 1e-9 {
		minY, maxY = minY-0.5, maxY+0.5
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		mark := byte('A' + si%26)
		for i := range s.X {
			if s.X[i] <= 0 || s.Y[i] <= 0 {
				continue
			}
			cx := int((math.Log10(s.X[i]) - minX) / (maxX - minX) * float64(width-1))
			cy := int((math.Log10(s.Y[i]) - minY) / (maxY - minY) * float64(height-1))
			row := height - 1 - cy
			grid[row][cx] = mark
		}
	}
	topLabel := fmt.Sprintf("1e%.1f", maxY)
	botLabel := fmt.Sprintf("1e%.1f", minY)
	margin := len(topLabel)
	if len(botLabel) > margin {
		margin = len(botLabel)
	}
	for r := range grid {
		label := strings.Repeat(" ", margin)
		if r == 0 {
			label = fmt.Sprintf("%*s", margin, topLabel)
		}
		if r == height-1 {
			label = fmt.Sprintf("%*s", margin, botLabel)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s  %s%s\n", strings.Repeat(" ", margin),
		fmt.Sprintf("1e%.1f", minX),
		fmt.Sprintf("%*s", width-8, fmt.Sprintf("1e%.1f", maxX)))
	fmt.Fprintf(&b, "%s  x: %s, y: %s (log-log)\n", strings.Repeat(" ", margin), f.XLabel, f.YLabel)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "%s  %c = %s\n", strings.Repeat(" ", margin), 'A'+si%26, s.Label)
	}
	return b.String()
}
