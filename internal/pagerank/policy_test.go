package pagerank

import (
	"math"
	"testing"

	"repro/internal/sparse"
)

func TestPolicyString(t *testing.T) {
	if DanglingIgnore.String() != "ignore" || DanglingUniform.String() != "uniform" || DanglingTeleport.String() != "teleport" {
		t.Error("policy names")
	}
	if DanglingPolicy(9).String() == "" {
		t.Error("unknown policy should stringify")
	}
}

func TestDanglingBoolMapsToUniform(t *testing.T) {
	a := filteredMatrix(t, 21, 64, 600)
	viaBool, err := Scatter(a, Options{Seed: 1, Dangling: true})
	if err != nil {
		t.Fatal(err)
	}
	viaPolicy, err := Scatter(a, Options{Seed: 1, Policy: DanglingUniform})
	if err != nil {
		t.Fatal(err)
	}
	for i := range viaBool.Rank {
		if viaBool.Rank[i] != viaPolicy.Rank[i] {
			t.Fatal("Dangling bool and DanglingUniform policy differ")
		}
	}
}

func TestTeleportValidation(t *testing.T) {
	a := filteredMatrix(t, 22, 16, 150)
	bad := make([]float64, 16)
	bad[0] = 2 // sums to 2
	if _, err := Scatter(a, Options{Teleport: bad}); err == nil {
		t.Error("non-unit teleport accepted")
	}
	neg := make([]float64, 16)
	neg[0], neg[1] = 2, -1
	if _, err := Scatter(a, Options{Teleport: neg}); err == nil {
		t.Error("negative teleport accepted")
	}
	short := []float64{1}
	if _, err := Scatter(a, Options{Teleport: short}); err == nil {
		t.Error("wrong-length teleport accepted")
	}
	if err := (Options{Policy: DanglingPolicy(7)}).Validate(); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestUniformTeleportVectorMatchesNil(t *testing.T) {
	a := filteredMatrix(t, 23, 32, 300)
	n := 32
	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = 1.0 / float64(n)
	}
	implicit, err := Scatter(a, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Scatter(a, Options{Seed: 2, Teleport: uniform})
	if err != nil {
		t.Fatal(err)
	}
	for i := range implicit.Rank {
		if math.Abs(implicit.Rank[i]-explicit.Rank[i]) > 1e-15 {
			t.Fatal("explicit uniform teleport differs from implicit")
		}
	}
}

func TestPersonalizedTeleportBiasesRank(t *testing.T) {
	// Cycle graph (perfectly symmetric) with teleport concentrated on
	// vertex 3: vertex 3 must outrank all others.
	const n = 8
	rows := make([]int, n)
	cols := make([]int, n)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		rows[i], cols[i], vals[i] = i, (i+1)%n, 1
	}
	a, err := sparse.FromTriplets(n, rows, cols, vals)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float64, n)
	v[3] = 1
	res, err := Scatter(a, Options{Seed: 1, Iterations: 200, Teleport: v, Policy: DanglingTeleport})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if i != 3 && res.Rank[i] >= res.Rank[3] {
			t.Fatalf("vertex %d rank %v >= personalized vertex 3 rank %v", i, res.Rank[i], res.Rank[3])
		}
	}
}

func TestStronglyVsWeaklyPreferentialDiffer(t *testing.T) {
	// A graph with dangling vertices and a non-uniform teleport: the two
	// policies redistribute dangling mass differently, so ranks differ.
	rows := []int{0, 1}
	cols := []int{2, 2}
	a, err := sparse.FromTriplets(4, rows, cols, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	a.ScaleRows(a.OutDegrees()) // vertices 2, 3 dangle
	v := []float64{0.7, 0.1, 0.1, 0.1}
	strong, err := Scatter(a, Options{Seed: 1, Iterations: 100, Teleport: v, Policy: DanglingTeleport})
	if err != nil {
		t.Fatal(err)
	}
	weak, err := Scatter(a, Options{Seed: 1, Iterations: 100, Teleport: v, Policy: DanglingUniform})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range strong.Rank {
		if math.Abs(strong.Rank[i]-weak.Rank[i]) > 1e-12 {
			same = false
		}
	}
	if same {
		t.Error("strongly and weakly preferential ranks identical despite non-uniform teleport")
	}
	// Both conserve total mass.
	if s := sparse.Sum(strong.Rank); math.Abs(s-1) > 1e-9 {
		t.Errorf("strongly preferential mass = %v", s)
	}
	if s := sparse.Sum(weak.Rank); math.Abs(s-1) > 1e-9 {
		t.Errorf("weakly preferential mass = %v", s)
	}
	// Strongly preferential must push more mass toward teleport-favored
	// vertex 0 than weakly preferential.
	if strong.Rank[0] <= weak.Rank[0] {
		t.Errorf("strong rank[0] %v <= weak rank[0] %v", strong.Rank[0], weak.Rank[0])
	}
}

func TestSinkPolicyLeaksMass(t *testing.T) {
	// DanglingIgnore with dangling rows: mass must strictly decrease.
	rows := []int{0}
	cols := []int{1}
	a, _ := sparse.FromTriplets(3, rows, cols, []float64{1})
	a.ScaleRows(a.OutDegrees())
	res, err := Scatter(a, Options{Seed: 1, Iterations: 50})
	if err != nil {
		t.Fatal(err)
	}
	if s := sparse.Sum(res.Rank); s >= 1 {
		t.Errorf("ignore policy conserved mass (%v), expected leak", s)
	}
}

func TestAllEnginesSupportPolicies(t *testing.T) {
	a := filteredMatrix(t, 24, 64, 700)
	n := 64
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i+1) * 2 / float64(n*(n+1))
	}
	opt := Options{Seed: 5, Teleport: v, Policy: DanglingTeleport}
	ref, err := Scatter(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	gat, err := Gather(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Parallel(a, Options{Seed: 5, Teleport: v, Policy: DanglingTeleport, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Rank {
		if math.Abs(gat.Rank[i]-ref.Rank[i]) > 1e-9 || math.Abs(par.Rank[i]-ref.Rank[i]) > 1e-9 {
			t.Fatalf("engines disagree under teleport policy at %d", i)
		}
	}
	if s := sparse.Sum(ref.Rank); math.Abs(s-1) > 1e-9 {
		t.Errorf("teleport-policy mass = %v", s)
	}
}
