package pagerank

import (
	"math"
	"testing"

	"repro/internal/edge"
	"repro/internal/graphblas"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// filteredMatrix builds a small kernel-2-style normalized adjacency matrix:
// random edges, super-node and leaf columns zeroed, rows normalized.
func filteredMatrix(t testing.TB, seed uint64, n int, m int) *sparse.CSR {
	t.Helper()
	g := xrand.New(seed)
	l := edge.NewList(m)
	for i := 0; i < m; i++ {
		l.Append(g.Uint64n(uint64(n)), g.Uint64n(uint64(n)))
	}
	a, err := sparse.FromEdges(l, n)
	if err != nil {
		t.Fatal(err)
	}
	din := a.InDegrees()
	maxDin := sparse.MaxValue(din)
	mask := make([]bool, n)
	for i, d := range din {
		if d == maxDin || d == 1 {
			mask[i] = true
		}
	}
	a.ZeroColumns(mask)
	a.Compact()
	a.ScaleRows(a.OutDegrees())
	return a
}

func TestInitVectorNormalized(t *testing.T) {
	r := InitVector(1000, 7)
	if math.Abs(sparse.Sum(r)-1) > 1e-12 {
		t.Errorf("initial vector sums to %v, want 1", sparse.Sum(r))
	}
	for i, x := range r {
		if x < 0 || x > 1 {
			t.Fatalf("r[%d] = %v out of [0,1]", i, x)
		}
	}
	r2 := InitVector(1000, 7)
	for i := range r {
		if r[i] != r2[i] {
			t.Fatal("InitVector not deterministic per seed")
		}
	}
	r3 := InitVector(1000, 8)
	if r[0] == r3[0] && r[1] == r3[1] && r[2] == r3[2] {
		t.Error("InitVector ignores seed")
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{Damping: 1.5},
		{Damping: -0.1},
		{Iterations: -3},
		{Tolerance: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, o)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
}

func TestDefaultsApplied(t *testing.T) {
	a := filteredMatrix(t, 1, 64, 600)
	res, err := Scatter(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != DefaultIterations {
		t.Errorf("ran %d iterations, want %d", res.Iterations, DefaultIterations)
	}
	if len(res.Rank) != 64 {
		t.Errorf("rank length %d", len(res.Rank))
	}
}

func TestEnginesAgree(t *testing.T) {
	a := filteredMatrix(t, 2, 128, 2000)
	opt := Options{Seed: 5}
	ref, err := Scatter(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	gat, err := Gather(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Parallel(a, Options{Seed: 5, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	rows, cols, vals := tuplesFromCSR(a)
	gm, err := graphblas.Build(a.N, rows, cols, vals, graphblas.PlusFloat64.Op)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := GraphBLAS(gm, opt)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string][]float64{"gather": gat.Rank, "parallel": par.Rank, "graphblas": gb.Rank} {
		for i := range ref.Rank {
			if math.Abs(r[i]-ref.Rank[i]) > 1e-9 {
				t.Fatalf("%s engine differs from scatter at %d: %v vs %v", name, i, r[i], ref.Rank[i])
			}
		}
	}
}

func tuplesFromCSR(a *sparse.CSR) (rows, cols []int, vals []float64) {
	for i := 0; i < a.N; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			rows = append(rows, i)
			cols = append(cols, int(a.Col[k]))
			vals = append(vals, a.Val[k])
		}
	}
	return
}

func TestMatchesDenseEigenvector(t *testing.T) {
	// The paper's validation: after enough iterations the normalized rank
	// vector equals the dominant eigenvector of c·Aᵀ + (1-c)/N.
	a := filteredMatrix(t, 3, 64, 800)
	res, err := Scatter(a, Options{Iterations: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	diff, err := CompareWithEigen(res.Rank, a, EigenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if diff > 1e-8 {
		t.Errorf("rank vector differs from dominant eigenvector by %v", diff)
	}
}

func TestTwentyIterationsCloseToEigen(t *testing.T) {
	// Even the benchmark's fixed 20 iterations should land near the
	// eigenvector (c^20 ≈ 0.04 residual contraction).
	a := filteredMatrix(t, 4, 32, 400)
	res, err := Scatter(a, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	diff, err := CompareWithEigen(res.Rank, a, EigenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if diff > 0.05 {
		t.Errorf("20-iteration result differs from eigenvector by %v", diff)
	}
}

func TestDanglingPreservesMass(t *testing.T) {
	// With the dangling correction the iteration is fully stochastic:
	// sum(r) must stay 1 every iteration.
	a := filteredMatrix(t, 5, 64, 500)
	res, err := Scatter(a, Options{Dangling: true, Iterations: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s := sparse.Sum(res.Rank); math.Abs(s-1) > 1e-9 {
		t.Errorf("with dangling correction sum(r) = %v, want 1", s)
	}
}

func TestWithoutDanglingMassLeaks(t *testing.T) {
	// The paper's definition omits the correction, so rank mass leaks
	// through dangling/zeroed vertices: sum(r) < 1 after iterations
	// whenever dangling rows exist.
	a := filteredMatrix(t, 6, 64, 500)
	dangling := false
	for i, d := range a.OutDegrees() {
		_ = i
		if d == 0 {
			dangling = true
			break
		}
	}
	if !dangling {
		t.Skip("random graph has no dangling rows")
	}
	res, err := Scatter(a, Options{Iterations: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s := sparse.Sum(res.Rank); s >= 1 {
		t.Errorf("sum(r) = %v, expected mass leak < 1 without dangling correction", s)
	}
}

func TestToleranceStopsEarly(t *testing.T) {
	a := filteredMatrix(t, 7, 64, 800)
	res, err := Scatter(a, Options{Iterations: 500, Tolerance: 1e-10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 500 {
		t.Errorf("tolerance mode did not converge early (%d iterations)", res.Iterations)
	}
	if res.FinalDiff >= 1e-10 {
		t.Errorf("FinalDiff = %v, want < tolerance", res.FinalDiff)
	}
}

func TestRankIsNonNegative(t *testing.T) {
	a := filteredMatrix(t, 8, 128, 1500)
	res, err := Gather(a, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range res.Rank {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("rank[%d] = %v", i, x)
		}
	}
}

func TestHubReceivesTopRank(t *testing.T) {
	// Star graph: all vertices point at vertex 0; vertex 0 must win.
	l := edge.NewList(10)
	for u := uint64(1); u < 10; u++ {
		l.Append(u, 0)
	}
	a, err := sparse.FromEdges(l, 10)
	if err != nil {
		t.Fatal(err)
	}
	a.ScaleRows(a.OutDegrees())
	res, err := Scatter(a, Options{Iterations: 50, Seed: 1, Dangling: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 10; i++ {
		if res.Rank[i] >= res.Rank[0] {
			t.Fatalf("vertex %d rank %v >= hub rank %v", i, res.Rank[i], res.Rank[0])
		}
	}
}

func TestCycleGraphUniformRank(t *testing.T) {
	// Directed cycle: perfect symmetry forces equal ranks.
	const n = 8
	l := edge.NewList(n)
	for u := uint64(0); u < n; u++ {
		l.Append(u, (u+1)%n)
	}
	a, _ := sparse.FromEdges(l, n)
	a.ScaleRows(a.OutDegrees())
	res, err := Scatter(a, Options{Iterations: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := sparse.Sum(res.Rank) / n
	for i, x := range res.Rank {
		if math.Abs(x-want) > 1e-9 {
			t.Fatalf("cycle rank[%d] = %v, want %v", i, x, want)
		}
	}
}

func TestEigenRejectsHugeMatrix(t *testing.T) {
	big := &sparse.CSR{N: 5000, RowPtr: make([]int64, 5001)}
	if _, err := DominantEigenvector(big, EigenOptions{}); err == nil {
		t.Error("DominantEigenvector accepted N=5000")
	}
}

func TestCompareWithEigenZeroVector(t *testing.T) {
	a := filteredMatrix(t, 9, 16, 100)
	if _, err := CompareWithEigen(make([]float64, 16), a, EigenOptions{}); err == nil {
		t.Error("zero rank vector accepted")
	}
}

func TestInvalidOptionsPropagate(t *testing.T) {
	a := filteredMatrix(t, 10, 16, 100)
	if _, err := Scatter(a, Options{Damping: 2}); err == nil {
		t.Error("Scatter accepted damping 2")
	}
	if _, err := Gather(a, Options{Damping: 2}); err == nil {
		t.Error("Gather accepted damping 2")
	}
	if _, err := Parallel(a, Options{Damping: 2}); err == nil {
		t.Error("Parallel accepted damping 2")
	}
}

func BenchmarkScatter20Iters(b *testing.B) {
	a := filteredMatrix(b, 1, 1<<12, 16<<12)
	b.SetBytes(int64(20 * a.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Scatter(a, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGather20Iters(b *testing.B) {
	a := filteredMatrix(b, 1, 1<<12, 16<<12)
	b.SetBytes(int64(20 * a.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Gather(a, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
