package pagerank

import (
	"fmt"
	"math"

	"repro/internal/graphblas"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// Defaults from the paper.
const (
	// DefaultDamping is the canonical PageRank damping factor c.
	DefaultDamping = 0.85
	// DefaultIterations is the benchmark's fixed iteration count.
	DefaultIterations = 20
)

// DanglingPolicy selects how the rank mass sitting on dangling
// (zero-out-degree) vertices is treated each iteration.  The paper's
// appendix cites the family of PageRank variants these correspond to
// (Gleich 2015): sink, weakly preferential and strongly preferential
// PageRank.
type DanglingPolicy int

const (
	// DanglingIgnore is the benchmark definition: the dangling term is
	// omitted and rank mass leaks out of the iteration ("sink" behavior).
	DanglingIgnore DanglingPolicy = iota
	// DanglingUniform redistributes dangling mass uniformly over all
	// vertices — weakly preferential PageRank.  The iteration becomes
	// fully stochastic: sum(r) is conserved.
	DanglingUniform
	// DanglingTeleport redistributes dangling mass according to the
	// teleport (personalization) vector — strongly preferential PageRank.
	// Also mass conserving.
	DanglingTeleport
)

// String implements fmt.Stringer.
func (p DanglingPolicy) String() string {
	switch p {
	case DanglingIgnore:
		return "ignore"
	case DanglingUniform:
		return "uniform"
	case DanglingTeleport:
		return "teleport"
	default:
		return fmt.Sprintf("policy?(%d)", int(p))
	}
}

// Options configures a PageRank run.  The zero value selects the paper's
// benchmark parameters (c = 0.85, 20 iterations, no dangling correction,
// uniform teleportation, random initial vector from seed 0).
type Options struct {
	// Damping is c; zero selects 0.85.
	Damping float64
	// Iterations is the fixed iteration count; zero selects 20.
	Iterations int
	// Seed selects the random initial vector.
	Seed uint64
	// Dangling enables the uniform dangling-node correction; it is the
	// boolean shorthand for Policy == DanglingUniform.  Off in the
	// benchmark definition.
	Dangling bool
	// Policy selects the dangling-mass treatment explicitly; it overrides
	// Dangling when non-zero.
	Policy DanglingPolicy
	// Teleport is the personalization vector v: the teleport term becomes
	// (1-c)·sum(r)·v[j] instead of (1-c)·sum(r)/N.  It must have length N,
	// non-negative entries and unit sum.  Nil selects the uniform vector,
	// which is the benchmark definition.
	Teleport []float64
	// Tolerance, when positive, stops iterating early once the 1-norm
	// difference between successive vectors drops below it — the
	// "real application" convergence mode the paper contrasts with fixed
	// iteration counts.
	Tolerance float64
	// Workers is the goroutine count for the parallel engine; <= 0 means
	// GOMAXPROCS.
	Workers int
	// InitialRank, when non-nil, seeds the iteration with the given vector
	// instead of InitVector(N, Seed) — the restart path for checkpointed
	// runs.  It must have length N; it is copied, not aliased.
	InitialRank []float64
	// Progress, when non-nil, is called after every completed iteration
	// with the 1-based iteration count — the streaming-observation hook
	// the service layer's RunStream is built on.  The callback runs on
	// the iterating goroutine; it must be fast and must not call back
	// into the engine.  A nil Progress costs nothing.
	Progress func(iteration int)
}

// policy resolves the effective dangling policy.
func (o Options) policy() DanglingPolicy {
	if o.Policy != DanglingIgnore {
		return o.Policy
	}
	if o.Dangling {
		return DanglingUniform
	}
	return DanglingIgnore
}

func (o Options) damping() float64 {
	if o.Damping == 0 {
		return DefaultDamping
	}
	return o.Damping
}

func (o Options) iterations() int {
	if o.Iterations == 0 {
		return DefaultIterations
	}
	return o.Iterations
}

// Validate reports configuration errors.
func (o Options) Validate() error {
	c := o.damping()
	if c <= 0 || c >= 1 {
		return fmt.Errorf("pagerank: damping %v out of (0,1)", c)
	}
	if o.iterations() < 1 {
		return fmt.Errorf("pagerank: iterations %d, want >= 1", o.iterations())
	}
	if o.Tolerance < 0 {
		return fmt.Errorf("pagerank: negative tolerance %v", o.Tolerance)
	}
	switch o.Policy {
	case DanglingIgnore, DanglingUniform, DanglingTeleport:
	default:
		return fmt.Errorf("pagerank: unknown dangling policy %d", o.Policy)
	}
	if o.Teleport != nil {
		var sum float64
		for i, v := range o.Teleport {
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("pagerank: teleport[%d] = %v, want non-negative", i, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("pagerank: teleport vector sums to %v, want 1", sum)
		}
	}
	return nil
}

// validateAgainstN checks size constraints that need the matrix dimension.
func (o Options) validateAgainstN(n int) error {
	if o.Teleport != nil && len(o.Teleport) != n {
		return fmt.Errorf("pagerank: teleport vector length %d, want N = %d", len(o.Teleport), n)
	}
	if o.InitialRank != nil && len(o.InitialRank) != n {
		return fmt.Errorf("pagerank: initial rank length %d, want N = %d", len(o.InitialRank), n)
	}
	return nil
}

// Result is the outcome of a PageRank run.
type Result struct {
	// Rank is the final rank vector r.
	Rank []float64
	// Iterations is the number of update steps actually performed.
	Iterations int
	// FinalDiff is the 1-norm difference between the last two iterates
	// (0 if only one iteration ran without tolerance checking).
	FinalDiff float64
}

// InitVector returns the paper's initial vector: N random values
// normalized to unit 1-norm.
func InitVector(n int, seed uint64) []float64 {
	r := make([]float64, n)
	initVectorInto(r, seed)
	return r
}

// initVectorInto fills r with the paper's initial vector in place — the
// allocation-free form Engine.Reset uses.
func initVectorInto(r []float64, seed uint64) {
	g := xrand.NewSeeded(seed, 0x70617261) // distinct stream tag
	var sum float64
	for i := range r {
		r[i] = g.Float64()
		sum += r[i]
	}
	inv := 1 / sum
	for i := range r {
		r[i] *= inv
	}
}

// stepFunc evaluates out = r·A for the engine's matrix representation.
type stepFunc func(out, r []float64)

// danglingMask returns which rows of a carry no outgoing mass.
func danglingMask(a *sparse.CSR) []bool {
	mask := make([]bool, a.N)
	dout := a.OutDegrees()
	for i, d := range dout {
		mask[i] = d == 0
	}
	return mask
}

// run adapts a dangling mask to the shared iteration engine, used by the
// serial engines.
func run(n int, step stepFunc, dangling []bool, opt Options) (*Result, error) {
	e, err := newMaskedEngine(n, step, dangling, opt)
	if err != nil {
		return nil, err
	}
	return e.Run(), nil
}

// RunCustom is the shared iteration driver.  Each iteration computes
//
//	r' = c·(r·A) + (1-c)·sum(r)·v + c·D(r)·w
//
// where v is the teleport vector (uniform by default), and the dangling
// term D(r)·w depends on the policy: absent (ignore), uniform w (weakly
// preferential), or w = v (strongly preferential).
//
// step evaluates out = r·A and dangleMass returns D(r), the rank mass on
// zero-out-degree vertices (called only when a dangling policy is
// active).  Both are extension points: the serial engines supply a local
// product and a mask scan, while the distributed runtime (internal/dist)
// supplies a metered all-reduce product and a metered scalar reduction,
// so every engine shares these update semantics exactly.
//
// RunCustom is the one-shot form of the reusable Engine (engine.go): it
// constructs an engine — the only allocations of the run — and drives it
// to completion, so every iteration after the first is allocation-free.
func RunCustom(n int, step func(out, r []float64), dangleMass func(r []float64) float64, opt Options) (*Result, error) {
	e, err := NewEngine(n, step, dangleMass, opt)
	if err != nil {
		return nil, err
	}
	return e.Run(), nil
}

// Scatter runs PageRank with the CSR scatter engine: each stored entry
// A(i,j) contributes r[i]·A(i,j) to out[j] in row-major order.
func Scatter(a *sparse.CSR, opt Options) (*Result, error) {
	return run(a.N, a.VxM, danglingMask(a), opt)
}

// Gather runs PageRank with the gather engine: A is transposed once and
// the product r·A becomes the cache-friendlier Aᵀ·r.
func Gather(a *sparse.CSR, opt Options) (*Result, error) {
	at := a.Transpose()
	return run(a.N, func(out, r []float64) { at.MxV(out, r) }, danglingMask(a), opt)
}

// Parallel runs PageRank with the row-partitioned parallel gather engine:
// a one-shot NewParallelEngine run.  The persistent worker team means the
// 20-iteration benchmark spawns its goroutines once, not per step, and
// iterations allocate nothing; results are bit-for-bit those of the
// serial gather engine (each output row is computed identically by
// exactly one worker).
func Parallel(a *sparse.CSR, opt Options) (*Result, error) {
	pe, err := NewParallelEngine(a, opt)
	if err != nil {
		return nil, err
	}
	defer pe.Close()
	return pe.Run(), nil
}

func workersOr(w int) int {
	if w <= 0 {
		return 4
	}
	return w
}

// GraphBLAS runs PageRank expressed over the generic (+, ×) semiring.
func GraphBLAS(m *graphblas.Matrix[float64], opt Options) (*Result, error) {
	e, err := NewGraphBLASEngine(m, opt)
	if err != nil {
		return nil, err
	}
	return e.Run(), nil
}

// NewGraphBLASEngine builds a reusable engine over the generic (+, ×)
// semiring product — the engine behind GraphBLAS, exported so callers
// needing iteration-level control (or RunContext cancellation) get it for
// the generic representation too.
func NewGraphBLASEngine(m *graphblas.Matrix[float64], opt Options) (*Engine, error) {
	n := m.Dim()
	dangling := make([]bool, n)
	for i, s := range m.ReduceRows(graphblas.PlusFloat64) {
		dangling[i] = s == 0
	}
	step := func(out, r []float64) {
		if err := graphblas.VxM(out, r, m, graphblas.PlusTimesFloat64); err != nil {
			// Dimensions are fixed by construction; an error here is a bug.
			panic(err)
		}
	}
	return newMaskedEngine(n, step, dangling, opt)
}

// ---------------------------------------------------------------------------
// Validation (paper §IV.D)

// EigenOptions configures the dense eigenvector validation.
type EigenOptions struct {
	// Damping is c; zero selects 0.85.
	Damping float64
	// MaxIterations bounds the dense power iteration (default 1000).
	MaxIterations int
	// Tolerance is the power-iteration convergence threshold on the
	// 1-norm difference (default 1e-12).
	Tolerance float64
}

// DominantEigenvector computes the dominant left eigenvector of
// c·A + (1-c)/N·𝟙 — equivalently the dominant (right) eigenvector of
// c·Aᵀ + (1-c)/N, the matrix the paper passes to eigs — by dense power
// iteration.  It refuses N > 4096; the check is defined for "small enough
// problems where the dense matrix fits into memory".
func DominantEigenvector(a *sparse.CSR, opt EigenOptions) ([]float64, error) {
	c := opt.Damping
	if c == 0 {
		c = DefaultDamping
	}
	maxIter := opt.MaxIterations
	if maxIter == 0 {
		maxIter = 1000
	}
	tol := opt.Tolerance
	if tol == 0 {
		tol = 1e-12
	}
	dense, err := a.Dense()
	if err != nil {
		return nil, err
	}
	n := a.N
	offset := (1 - c) / float64(n)
	// x ← x·(c·A + offset·𝟙), normalized each step.
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	next := make([]float64, n)
	for it := 0; it < maxIter; it++ {
		sumX := sparse.Sum(x)
		for j := 0; j < n; j++ {
			next[j] = offset * sumX
		}
		for i := 0; i < n; i++ {
			xi := c * x[i]
			if xi == 0 {
				continue
			}
			row := dense[i]
			for j := 0; j < n; j++ {
				next[j] += xi * row[j]
			}
		}
		norm := sparse.Norm1(next)
		if norm == 0 {
			return nil, fmt.Errorf("pagerank: power iteration collapsed to zero")
		}
		sparse.Scale(next, 1/norm)
		d := sparse.Diff1(next, x)
		x, next = next, x
		if d < tol {
			break
		}
	}
	return x, nil
}

// CompareWithEigen normalizes both r and the dense dominant eigenvector to
// unit 1-norm and returns the maximum absolute component difference — the
// paper's r./norm(r,1) == r1./norm(r1,1) check.
func CompareWithEigen(r []float64, a *sparse.CSR, opt EigenOptions) (float64, error) {
	r1, err := DominantEigenvector(a, opt)
	if err != nil {
		return 0, err
	}
	rn := append([]float64(nil), r...)
	norm := sparse.Norm1(rn)
	if norm == 0 {
		return 0, fmt.Errorf("pagerank: rank vector has zero norm")
	}
	sparse.Scale(rn, 1/norm)
	var maxDiff float64
	for i := range rn {
		if d := math.Abs(rn[i] - r1[i]); d > maxDiff {
			maxDiff = d
		}
	}
	return maxDiff, nil
}
