package pagerank

// Tests for the reusable iteration engine: equivalence with the one-shot
// entry points, Reset determinism, and the zero-allocation steady-state
// pins the hybrid runtime's allocation budget rests on (DESIGN.md §7).

import (
	"math"
	"testing"

	"repro/internal/edge"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

func engineTestMatrix(t testing.TB, seed uint64, m, n int) *sparse.CSR {
	t.Helper()
	g := xrand.New(seed)
	l := edge.NewList(m)
	for i := 0; i < m; i++ {
		l.Append(g.Uint64n(uint64(n)), g.Uint64n(uint64(n)))
	}
	a, err := sparse.FromEdges(l, n)
	if err != nil {
		t.Fatal(err)
	}
	a.ScaleRows(a.OutDegrees()) // row-stochastic, like kernel 2's output
	return a
}

func TestEngineRunEqualsScatter(t *testing.T) {
	a := engineTestMatrix(t, 1, 1<<12, 1<<9)
	for _, opt := range []Options{
		{Seed: 3},
		{Seed: 3, Dangling: true, Iterations: 7},
		{Seed: 3, Tolerance: 1e-8, Iterations: 500},
	} {
		want, err := Scatter(a, opt)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewScatterEngine(a, opt)
		if err != nil {
			t.Fatal(err)
		}
		got := e.Run()
		if got.Iterations != want.Iterations ||
			math.Float64bits(got.FinalDiff) != math.Float64bits(want.FinalDiff) {
			t.Fatalf("engine iters/diff %d/%v, Scatter %d/%v",
				got.Iterations, got.FinalDiff, want.Iterations, want.FinalDiff)
		}
		for i := range want.Rank {
			if got.Rank[i] != want.Rank[i] {
				t.Fatalf("engine rank[%d] = %v, Scatter %v", i, got.Rank[i], want.Rank[i])
			}
		}
	}
}

func TestEngineResetReproducesRun(t *testing.T) {
	a := engineTestMatrix(t, 2, 1<<12, 1<<9)
	e, err := NewGatherEngine(a, Options{Seed: 5, Iterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	first := append([]float64(nil), e.Run().Rank...)
	if e.Iterations() != 6 {
		t.Fatalf("Iterations() = %d after Run, want 6", e.Iterations())
	}
	e.Reset()
	if e.Iterations() != 0 {
		t.Fatalf("Iterations() = %d after Reset, want 0", e.Iterations())
	}
	second := e.Run().Rank
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("rank[%d] differs between Run and Reset+Run", i)
		}
	}
}

func TestParallelEqualsGatherBitForBit(t *testing.T) {
	// Every output row of the parallel gather is computed by exactly one
	// worker with the serial per-row loop, so the parallel engine must
	// match Gather exactly, for every worker count.
	a := engineTestMatrix(t, 3, 1<<13, 1<<10)
	opt := Options{Seed: 7, Iterations: 8, Dangling: true}
	want, err := Gather(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		opt.Workers = workers
		got, err := Parallel(a, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Rank {
			if got.Rank[i] != want.Rank[i] {
				t.Fatalf("workers=%d: rank[%d] = %v, Gather %v", workers, i, got.Rank[i], want.Rank[i])
			}
		}
	}
}

func TestEngineIterateZeroAllocs(t *testing.T) {
	a := engineTestMatrix(t, 4, 1<<13, 1<<10)
	serial, err := NewScatterEngine(a, Options{Seed: 1, Dangling: true})
	if err != nil {
		t.Fatal(err)
	}
	serial.Iterate() // warm
	if allocs := testing.AllocsPerRun(50, func() { serial.Iterate() }); allocs != 0 {
		t.Errorf("serial engine Iterate allocates %.1f/op, want 0", allocs)
	}

	gather, err := NewGatherEngine(a, Options{Seed: 1, Tolerance: 1e-30, Iterations: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	gather.Iterate()
	if allocs := testing.AllocsPerRun(50, func() { gather.Iterate() }); allocs != 0 {
		t.Errorf("gather engine Iterate (tolerance mode) allocates %.1f/op, want 0", allocs)
	}
}

func TestParallelEngineIterateZeroAllocs(t *testing.T) {
	a := engineTestMatrix(t, 5, 1<<13, 1<<10)
	pe, err := NewParallelEngine(a, Options{Seed: 1, Workers: 4, Dangling: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pe.Close()
	pe.Engine().Iterate() // warm the team
	if allocs := testing.AllocsPerRun(50, func() { pe.Engine().Iterate() }); allocs != 0 {
		t.Errorf("parallel engine Iterate allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkEngineIterate(b *testing.B) {
	a := engineTestMatrix(b, 6, 16<<12, 1<<12)
	e, err := NewScatterEngine(a, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Iterate()
	}
}

func BenchmarkParallelEngineIterate(b *testing.B) {
	a := engineTestMatrix(b, 6, 16<<12, 1<<12)
	pe, err := NewParallelEngine(a, Options{Seed: 1, Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer pe.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pe.Engine().Iterate()
	}
}
