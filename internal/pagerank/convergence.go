package pagerank

import (
	"fmt"

	"repro/internal/sparse"
)

// ConvergencePoint records the iterations a damping factor needed to reach
// a tolerance.
type ConvergencePoint struct {
	// Damping is the c value studied.
	Damping float64
	// Iterations is the number of update steps to reach the tolerance
	// (or the cap).
	Iterations int
	// Converged reports whether the tolerance was reached before the cap.
	Converged bool
	// FinalDiff is the last 1-norm difference observed.
	FinalDiff float64
}

// ConvergenceStudy measures how many iterations PageRank needs to converge
// to the given tolerance for each damping factor — the trade the paper
// describes when it replaces the "data dependent" convergence test with a
// fixed 20 iterations.  maxIterations caps each run (default 1000).
// The study quantifies the fixed-count choice: at c = 0.85 the contraction
// rate is c per iteration, so 20 iterations leave a ~c^20 ≈ 4% residual.
func ConvergenceStudy(a *sparse.CSR, dampings []float64, tolerance float64, maxIterations int, seed uint64) ([]ConvergencePoint, error) {
	if tolerance <= 0 {
		return nil, fmt.Errorf("pagerank: tolerance %v, want > 0", tolerance)
	}
	if maxIterations <= 0 {
		maxIterations = 1000
	}
	points := make([]ConvergencePoint, 0, len(dampings))
	for _, c := range dampings {
		res, err := Gather(a, Options{
			Damping:    c,
			Iterations: maxIterations,
			Tolerance:  tolerance,
			Seed:       seed,
			Dangling:   true, // mass conservation makes tolerances comparable across c
		})
		if err != nil {
			return nil, fmt.Errorf("pagerank: damping %v: %w", c, err)
		}
		points = append(points, ConvergencePoint{
			Damping:    c,
			Iterations: res.Iterations,
			Converged:  res.FinalDiff < tolerance,
			FinalDiff:  res.FinalDiff,
		})
	}
	return points, nil
}
