// Package pagerank implements kernel 3 of the PageRank pipeline benchmark:
// a fixed number of iterations of the PageRank update on the normalized
// adjacency matrix produced by kernel 2.
//
// The paper's update, in Matlab notation with row vector r and damping
// factor c = 0.85, is
//
//	a = ones(1,N) .* (1-c) ./ N
//	r = ((c .* r) * A) + (a .* sum(r,2))
//
// i.e. r ← c·(r·A) + (1-c)·sum(r)/N in every component — exactly one power
// iteration of the dense matrix c·A + (1-c)/N·𝟙.  Following the benchmark
// definition the update runs for a fixed 20 iterations rather than to
// convergence, and the dangling-node correction is deliberately omitted
// (the paper cites Ipsen & Selee that it does not materially change r);
// both behaviors are available as options.
//
// Four interchangeable engines evaluate the product r·A: scatter (CSR
// row-major), gather (via the transpose), goroutine-parallel gather, and
// the generic GraphBLAS semiring form.  All are verified against each
// other and against the paper's dense eigenvector check.
//
// Engine is the reusable form of the iteration (NewScatterEngine,
// NewGatherEngine, NewParallelEngine, or NewEngine over custom hooks as
// the distributed runtime does): all state is allocated at construction
// and steady-state Iterate calls perform zero heap allocations, the
// allocation budget DESIGN.md §7 specifies for kernel 3 at every level
// of the stack.
package pagerank
