package pagerank

// The reusable kernel-3 iteration engine.  RunCustom and every serial
// engine build on it; the distributed runtime (internal/dist) drives one
// per replica.  The point of the type is the allocation budget: all
// iteration state — the current and next rank vectors and the resolved
// option scalars — is allocated once at construction, so the steady-state
// Iterate performs zero heap allocations of its own (DESIGN.md §7).  The
// step and dangling-mass hooks own their allocation behavior; the engines
// in this package and in dist supply allocation-free hooks.

import (
	"context"

	"repro/internal/sparse"
	"repro/internal/workteam"
)

// Engine holds the reusable state of the kernel-3 power iteration
//
//	r' = c·(r·A) + (1-c)·sum(r)·v + c·D(r)·w
//
// (the update RunCustom documents).  Construct it once with NewEngine,
// then either call Run to drive it to completion or call Iterate step by
// step.  Iterate allocates nothing, so a fixed-size problem iterates at a
// steady-state allocation rate of zero — the hybrid runtime's allocation
// budget depends on this.
type Engine struct {
	n          int
	step       func(out, r []float64)
	dangleMass func(r []float64) float64

	c        float64
	iters    int
	policy   DanglingPolicy
	teleport []float64
	tol      float64
	uniform  float64
	seed     uint64
	initial  []float64 // private snapshot of the option's InitialRank, for Reset
	progress func(iteration int)

	r, next  []float64
	it       int
	lastDiff float64
}

// NewEngine validates opt and builds an engine over the given step and
// dangling-mass hooks (see RunCustom for their contracts; dangleMass may
// be nil when no dangling policy is active).  The initial vector is
// materialized immediately — a copy of opt.InitialRank, or InitVector.
func NewEngine(n int, step func(out, r []float64), dangleMass func(r []float64) float64, opt Options) (*Engine, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := opt.validateAgainstN(n); err != nil {
		return nil, err
	}
	e := &Engine{
		n:          n,
		step:       step,
		dangleMass: dangleMass,
		c:          opt.damping(),
		iters:      opt.iterations(),
		policy:     opt.policy(),
		teleport:   opt.Teleport,
		tol:        opt.Tolerance,
		uniform:    1 / float64(n),
		seed:       opt.Seed,
		progress:   opt.Progress,
		r:          make([]float64, n),
		next:       make([]float64, n),
	}
	if opt.InitialRank != nil {
		// A private snapshot: Reset must reproduce the construction-time
		// vector even if the caller reuses its slice afterwards.
		e.initial = append([]float64(nil), opt.InitialRank...)
	}
	e.Reset()
	return e, nil
}

// Reset rewinds the engine to iteration zero and re-materializes the
// initial vector in place (no allocation beyond InitVector's internals
// when no InitialRank was given).
func (e *Engine) Reset() {
	if e.initial != nil {
		copy(e.r, e.initial)
	} else {
		initVectorInto(e.r, e.seed)
	}
	e.it = 0
	e.lastDiff = 0
}

// Iterations returns the number of update steps performed since the last
// Reset.
func (e *Engine) Iterations() int { return e.it }

// Rank returns the current rank vector.  The slice aliases engine state:
// it is overwritten by further Iterate calls.
func (e *Engine) Rank() []float64 { return e.r }

// Iterate performs exactly one update step and returns the 1-norm
// difference between the new and previous iterates when a tolerance is
// configured (0 otherwise — the fixed-iteration benchmark mode skips the
// comparison).  It does not enforce the iteration cap; Run does.
// Iterate itself performs no heap allocations.
func (e *Engine) Iterate() float64 {
	sumR := sparse.Sum(e.r)
	e.step(e.next, e.r)
	var dangle float64
	if e.policy != DanglingIgnore {
		dangle = e.dangleMass(e.r)
	}
	teleMass := (1 - e.c) * sumR
	next := e.next
	switch {
	case e.teleport == nil && e.policy != DanglingTeleport:
		// Uniform teleport, uniform (or no) dangling redistribution:
		// a single scalar addend, the benchmark fast path.
		addend := teleMass * e.uniform
		if e.policy == DanglingUniform {
			addend += e.c * dangle * e.uniform
		}
		for j := range next {
			next[j] = e.c*next[j] + addend
		}
	default:
		v := e.teleport
		for j := range next {
			vj := e.uniform
			if v != nil {
				vj = v[j]
			}
			x := e.c*next[j] + teleMass*vj
			switch e.policy {
			case DanglingUniform:
				x += e.c * dangle * e.uniform
			case DanglingTeleport:
				x += e.c * dangle * vj
			}
			next[j] = x
		}
	}
	e.it++
	var diff float64
	if e.tol > 0 {
		diff = sparse.Diff1(e.next, e.r)
		e.lastDiff = diff
	}
	e.r, e.next = e.next, e.r
	if e.progress != nil {
		e.progress(e.it)
	}
	return diff
}

// Run drives Iterate up to the configured iteration count, stopping early
// once the tolerance (if any) is met.  The returned Result's Rank aliases
// the engine's current vector; callers that keep iterating the same
// engine must copy it first.  Run is RunContext under a background
// context — one stopping rule, written once.
func (e *Engine) Run() *Result {
	res, _ := e.RunContext(context.Background()) // a nil Done() can't error
	return res
}

// RunContext is Run with a cancellation point before every iteration: a
// context cancelled mid-run aborts with ctx.Err() instead of finishing
// the remaining iterations.  A background (never-cancelled) context makes
// it exactly Run — the check costs one nil comparison per iteration — so
// results are bit-for-bit identical between the two forms.
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	return e.RunContextAfter(ctx, nil)
}

// RunContextAfter is RunContext with a post-iteration hook: after every
// completed update step, after is called with the number of steps
// performed so far and the current rank vector (aliasing engine state —
// it must not be retained or modified), before the tolerance check, so
// the hook observes every iterate including a final tolerance-stopped
// one.  A non-nil error from the hook aborts the run with that error.
// The distributed runtime's checkpoint writer lives in this hook; a nil
// hook makes RunContextAfter exactly RunContext.
func (e *Engine) RunContextAfter(ctx context.Context, after func(it int, r []float64) error) (*Result, error) {
	done := ctx.Done()
	for e.it < e.iters {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		diff := e.Iterate()
		if after != nil {
			if err := after(e.it, e.r); err != nil {
				return nil, err
			}
		}
		if e.tol > 0 && diff < e.tol {
			break
		}
	}
	return &Result{Rank: e.r, Iterations: e.it, FinalDiff: e.lastDiff}, nil
}

// newMaskedEngine builds an engine whose dangling mass is a scan of the
// given row mask — the serial engines' shared construction.
func newMaskedEngine(n int, step func(out, r []float64), dangling []bool, opt Options) (*Engine, error) {
	return NewEngine(n, step, func(r []float64) float64 {
		var m float64
		for i, d := range dangling {
			if d {
				m += r[i]
			}
		}
		return m
	}, opt)
}

// NewScatterEngine builds a reusable engine over the CSR scatter product
// (the engine behind Scatter).
func NewScatterEngine(a *sparse.CSR, opt Options) (*Engine, error) {
	return newMaskedEngine(a.N, a.VxM, danglingMask(a), opt)
}

// NewGatherEngine transposes a once and builds a reusable engine over the
// cache-friendlier gather product (the engine behind Gather).
func NewGatherEngine(a *sparse.CSR, opt Options) (*Engine, error) {
	at := a.Transpose()
	return newMaskedEngine(a.N, func(out, r []float64) { at.MxV(out, r) }, danglingMask(a), opt)
}

// ---------------------------------------------------------------------------
// Parallel engine: transpose-once gather over a persistent worker team

// mxvTeam is a persistent workteam.Team computing disjoint row ranges of
// a gather product — spawned once, signalled per product, so a
// steady-state product allocates nothing.  Each output row is written by
// exactly one worker and rows are independent, so the result is
// bit-for-bit the serial MxV for every worker count.
type mxvTeam struct {
	out, x []float64
	team   *workteam.Team
}

// newMxVTeam spawns workers goroutines over the rows of at.  Callers must
// close the team when done iterating or the goroutines leak.
func newMxVTeam(at *sparse.CSR, workers int) *mxvTeam {
	t := &mxvTeam{}
	t.team = workteam.New(workers, func(w int) {
		at.MxVRange(t.out, t.x, w*at.N/workers, (w+1)*at.N/workers)
	})
	return t
}

// mxv computes out = at·x across the team (workteam.Run's happens-before
// edges keep the workers from racing the caller on out/x).
func (t *mxvTeam) mxv(out, x []float64) {
	t.out, t.x = out, x
	t.team.Run()
}

// close terminates the worker goroutines.  The team must not be used
// afterwards.
func (t *mxvTeam) close() { t.team.Close() }

// ParallelEngine is the row-partitioned parallel gather engine in reusable
// form: the matrix is transposed once, a persistent worker team computes
// the product, and the embedded Engine owns the iteration vectors — so
// steady-state iterations perform zero heap allocations while using every
// configured core.  Close must be called when done (Parallel does).
type ParallelEngine struct {
	eng  *Engine
	team *mxvTeam
}

// NewParallelEngine validates opt and builds the reusable parallel engine.
// The worker count is Options.Workers (defaulted like Parallel); tiny
// problems degenerate to the serial gather exactly as ParallelMxV does.
func NewParallelEngine(a *sparse.CSR, opt Options) (*ParallelEngine, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := opt.validateAgainstN(a.N); err != nil {
		return nil, err
	}
	at := a.Transpose()
	workers := workersOr(opt.Workers)
	pe := &ParallelEngine{}
	step := func(out, r []float64) { at.MxV(out, r) }
	if workers >= 2 && a.N >= 2*workers {
		pe.team = newMxVTeam(at, workers)
		step = pe.team.mxv
	}
	eng, err := newMaskedEngine(a.N, step, danglingMask(a), opt)
	if err != nil {
		pe.Close()
		return nil, err
	}
	pe.eng = eng
	return pe, nil
}

// Engine returns the embedded iteration engine (for Iterate-level
// control and benchmarks).
func (pe *ParallelEngine) Engine() *Engine { return pe.eng }

// Run drives the engine to completion, like Parallel.
func (pe *ParallelEngine) Run() *Result { return pe.eng.Run() }

// RunContext drives the engine to completion with a per-iteration
// cancellation point, like Engine.RunContext.  The worker team survives
// an abort; Close still owns its teardown.
func (pe *ParallelEngine) RunContext(ctx context.Context) (*Result, error) {
	return pe.eng.RunContext(ctx)
}

// Close terminates the worker team.  The engine must not be iterated
// afterwards.
func (pe *ParallelEngine) Close() {
	if pe.team != nil {
		pe.team.close()
		pe.team = nil
	}
}
