package pagerank

import (
	"math"
	"testing"

	"repro/internal/edge"
	"repro/internal/sparse"
)

func TestConvergenceStudyMonotoneInDamping(t *testing.T) {
	a := filteredMatrix(t, 31, 128, 2000)
	pts, err := ConvergenceStudy(a, []float64{0.5, 0.7, 0.85, 0.95}, 1e-10, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for i, p := range pts {
		if !p.Converged {
			t.Fatalf("damping %v did not converge (%d iterations, diff %v)", p.Damping, p.Iterations, p.FinalDiff)
		}
		if i > 0 && p.Iterations <= pts[i-1].Iterations {
			t.Errorf("iterations not increasing with damping: c=%v took %d, c=%v took %d",
				pts[i-1].Damping, pts[i-1].Iterations, p.Damping, p.Iterations)
		}
	}
}

func TestConvergenceMatchesContractionTheory(t *testing.T) {
	// On a directed cycle the adjacency matrix is a permutation, so the
	// Google matrix's subdominant eigenvalue modulus is exactly c and
	// iterations to tolerance ≈ log(tol)/log(c).  Check within 2x.
	const n = 64
	l := cycleEdges(n)
	a, err := sparse.FromEdges(l, n)
	if err != nil {
		t.Fatal(err)
	}
	a.ScaleRows(a.OutDegrees())
	const tol = 1e-8
	pts, err := ConvergenceStudy(a, []float64{0.85}, tol, 2000, 2)
	if err != nil {
		t.Fatal(err)
	}
	theory := math.Log(tol) / math.Log(0.85)
	got := float64(pts[0].Iterations)
	if got < theory/2 || got > theory*2 {
		t.Errorf("iterations %v, contraction theory predicts ~%.0f", got, theory)
	}
}

func cycleEdges(n int) *edge.List {
	l := edge.NewList(n)
	for u := uint64(0); u < uint64(n); u++ {
		l.Append(u, (u+1)%uint64(n))
	}
	return l
}

func TestConvergenceStudyValidation(t *testing.T) {
	a := filteredMatrix(t, 33, 16, 100)
	if _, err := ConvergenceStudy(a, []float64{0.85}, 0, 10, 1); err == nil {
		t.Error("zero tolerance accepted")
	}
	if _, err := ConvergenceStudy(a, []float64{2.0}, 1e-6, 10, 1); err == nil {
		t.Error("invalid damping accepted")
	}
}

func TestConvergenceStudyCap(t *testing.T) {
	a := filteredMatrix(t, 34, 64, 800)
	pts, err := ConvergenceStudy(a, []float64{0.99}, 1e-15, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Converged {
		t.Error("5 iterations at c=0.99 cannot reach 1e-15")
	}
	if pts[0].Iterations != 5 {
		t.Errorf("cap not respected: %d", pts[0].Iterations)
	}
}
