package graphblas

import (
	"maps"
	"math"
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
	"repro/internal/xrand"
)

func TestBuildAccumulatesDuplicates(t *testing.T) {
	m, err := Build(3, []int{0, 0, 1}, []int{1, 1, 2}, []float64{1, 2, 5}, PlusFloat64.Op)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m.At(0, 1); !ok || v != 3 {
		t.Errorf("At(0,1) = %v,%v want 3,true", v, ok)
	}
	if v, ok := m.At(1, 2); !ok || v != 5 {
		t.Errorf("At(1,2) = %v,%v", v, ok)
	}
	if _, ok := m.At(2, 0); ok {
		t.Error("phantom entry at (2,0)")
	}
	if m.NNZ() != 2 || m.Dim() != 3 {
		t.Errorf("NNZ=%d Dim=%d", m.NNZ(), m.Dim())
	}
}

func TestBuildWithMinDup(t *testing.T) {
	// dup is caller-chosen: with Min, duplicates keep the smallest value.
	m, err := Build(2, []int{0, 0}, []int{1, 1}, []float64{7, 3}, MinFloat64.Op)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.At(0, 1); v != 3 {
		t.Errorf("min-dup value = %v, want 3", v)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(0, nil, nil, []float64{}, PlusFloat64.Op); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Build(2, []int{0}, []int{0, 1}, []float64{1}, PlusFloat64.Op); err == nil {
		t.Error("ragged triplets accepted")
	}
	if _, err := Build(2, []int{5}, []int{0}, []float64{1}, PlusFloat64.Op); err == nil {
		t.Error("out-of-range accepted")
	}
	if _, err := Build(2, []int{0}, []int{0}, []float64{1}, nil); err == nil {
		t.Error("nil dup accepted")
	}
}

func TestBuildFromEdges(t *testing.T) {
	m, err := BuildFromEdges(4, []uint64{0, 0, 3}, []uint64{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.At(0, 1); v != 2 {
		t.Errorf("count at (0,1) = %v", v)
	}
	if _, err := BuildFromEdges(2, []uint64{9}, []uint64{0}); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestExtractTuplesRoundTrip(t *testing.T) {
	m, _ := Build(5, []int{4, 0, 2}, []int{1, 3, 2}, []float64{9, 8, 7}, PlusFloat64.Op)
	rows, cols, vals := m.ExtractTuples()
	m2, err := Build(5, rows, cols, vals, PlusFloat64.Op)
	if err != nil {
		t.Fatal(err)
	}
	r2, c2, v2 := m2.ExtractTuples()
	if len(r2) != len(rows) {
		t.Fatal("tuple count changed")
	}
	for i := range rows {
		if rows[i] != r2[i] || cols[i] != c2[i] || vals[i] != v2[i] {
			t.Fatalf("tuple %d changed: (%d,%d,%v) vs (%d,%d,%v)", i, rows[i], cols[i], vals[i], r2[i], c2[i], v2[i])
		}
	}
}

func TestMonoidLaws(t *testing.T) {
	// Property: identity and associativity for the shipped float64 monoids.
	monoids := map[string]Monoid[float64]{
		"plus": PlusFloat64, "times": TimesFloat64, "min": MinFloat64, "max": MaxFloat64,
	}
	for _, name := range slices.Sorted(maps.Keys(monoids)) {
		mon := monoids[name]
		t.Run(name, func(t *testing.T) {
			err := quick.Check(func(aBits, bBits, cBits uint32) bool {
				// Bounded floats to keep FP associativity exact-ish:
				// use small integers so + and × are exact.
				a := float64(aBits % 100)
				b := float64(bBits % 100)
				c := float64(cBits % 100)
				if mon.Op(a, mon.Identity) != a || mon.Op(mon.Identity, a) != a {
					return false
				}
				return mon.Op(mon.Op(a, b), c) == mon.Op(a, mon.Op(b, c))
			}, &quick.Config{MaxCount: 200})
			if err != nil {
				t.Error(err)
			}
		})
	}
}

func TestVxMMatchesSparse(t *testing.T) {
	// Differential test against the specialized float64 kernel in sparse.
	const n = 128
	g := xrand.New(1)
	var us, vs []uint64
	for i := 0; i < 3000; i++ {
		us = append(us, g.Uint64n(n))
		vs = append(vs, g.Uint64n(n))
	}
	gm, err := BuildFromEdges(n, us, vs)
	if err != nil {
		t.Fatal(err)
	}
	sl := &struct{ U, V []uint64 }{us, vs}
	_ = sl
	sm, err := sparse.FromTriplets(n, toInts(us), toInts(vs), ones(len(us)))
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = g.Float64()
	}
	want := make([]float64, n)
	sm.VxM(want, x)
	got := make([]float64, n)
	if err := VxM(got, x, gm, PlusTimesFloat64); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("VxM[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func toInts(u []uint64) []int {
	out := make([]int, len(u))
	for i, x := range u {
		out[i] = int(x)
	}
	return out
}

func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func TestMxVTransposeDuality(t *testing.T) {
	// x·M == Mᵀ·x over any commutative semiring; check with plus-times.
	const n = 64
	g := xrand.New(2)
	var us, vs []uint64
	for i := 0; i < 1000; i++ {
		us = append(us, g.Uint64n(n))
		vs = append(vs, g.Uint64n(n))
	}
	m, _ := BuildFromEdges(n, us, vs)
	x := make([]float64, n)
	for i := range x {
		x[i] = g.Float64()
	}
	a := make([]float64, n)
	b := make([]float64, n)
	if err := VxM(a, x, m, PlusTimesFloat64); err != nil {
		t.Fatal(err)
	}
	if err := MxV(b, m.Transpose(), x, PlusTimesFloat64); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("duality violated at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDimensionErrors(t *testing.T) {
	m, _ := Build(3, []int{0}, []int{1}, []float64{1}, PlusFloat64.Op)
	if err := VxM(make([]float64, 2), make([]float64, 3), m, PlusTimesFloat64); err == nil {
		t.Error("VxM accepted short out")
	}
	if err := MxV(make([]float64, 3), m, make([]float64, 2), PlusTimesFloat64); err == nil {
		t.Error("MxV accepted short x")
	}
	if err := EWiseAdd(make([]float64, 2), make([]float64, 2), make([]float64, 3), PlusFloat64.Op); err == nil {
		t.Error("EWiseAdd accepted ragged input")
	}
}

func TestMinPlusShortestPathHop(t *testing.T) {
	// Tropical semiring: one MxV over (min,+) relaxes one hop of shortest
	// paths.  Path graph 0→1→2 with weights 5 and 7.
	m, err := Build(3, []int{0, 1}, []int{1, 2}, []float64{5, 7}, MinFloat64.Op)
	if err != nil {
		t.Fatal(err)
	}
	dist := []float64{0, inf, inf}
	next := make([]float64, 3)
	// dist'[j] = min_i dist[i] + M(i,j): one relaxation via VxM.
	if err := VxM(next, dist, m, MinPlusFloat64); err != nil {
		t.Fatal(err)
	}
	// Keep previously settled distances.
	EWiseAdd(next, next, dist, MinFloat64.Op)
	if next[1] != 5 || next[0] != 0 {
		t.Fatalf("after 1 hop: %v", next)
	}
	dist = next
	next2 := make([]float64, 3)
	VxM(next2, dist, m, MinPlusFloat64)
	EWiseAdd(next2, next2, dist, MinFloat64.Op)
	if next2[2] != 12 {
		t.Fatalf("after 2 hops dist[2] = %v, want 12", next2[2])
	}
}

func TestBooleanReachability(t *testing.T) {
	// (∨, ∧) semiring: frontier·M is one BFS expansion.
	m, err := Build(4, []int{0, 1, 2}, []int{1, 2, 3}, []bool{true, true, true},
		func(a, b bool) bool { return a || b })
	if err != nil {
		t.Fatal(err)
	}
	frontier := []bool{true, false, false, false}
	next := make([]bool, 4)
	if err := VxM(next, frontier, m, LorLandBool); err != nil {
		t.Fatal(err)
	}
	if !next[1] || next[2] || next[3] {
		t.Fatalf("1-hop frontier = %v", next)
	}
}

func TestApplyAndSelect(t *testing.T) {
	m, _ := Build(3, []int{0, 1, 2}, []int{1, 2, 0}, []float64{1, 2, 3}, PlusFloat64.Op)
	m.Apply(func(i, j int, v float64) float64 { return v * 10 })
	if v, _ := m.At(1, 2); v != 20 {
		t.Errorf("Apply result = %v", v)
	}
	sel := m.Select(func(i, j int, v float64) bool { return v > 15 })
	if sel.NNZ() != 2 {
		t.Errorf("Select kept %d entries, want 2", sel.NNZ())
	}
	if _, ok := sel.At(0, 1); ok {
		t.Error("Select kept the filtered entry")
	}
	// Column elimination (kernel-2 style) via Select.
	noCol0 := m.Select(func(i, j int, v float64) bool { return j != 0 })
	if _, ok := noCol0.At(2, 0); ok {
		t.Error("column 0 not eliminated")
	}
}

func TestReduceRowsColsAll(t *testing.T) {
	m, _ := Build(3, []int{0, 0, 1}, []int{0, 2, 2}, []float64{1, 2, 4}, PlusFloat64.Op)
	rows := m.ReduceRows(PlusFloat64)
	if rows[0] != 3 || rows[1] != 4 || rows[2] != 0 {
		t.Errorf("row sums = %v", rows)
	}
	cols := m.ReduceCols(PlusFloat64)
	if cols[0] != 1 || cols[1] != 0 || cols[2] != 6 {
		t.Errorf("col sums = %v", cols)
	}
	if s := m.ReduceAll(PlusFloat64); s != 7 {
		t.Errorf("total = %v", s)
	}
	if mx := m.ReduceAll(MaxFloat64); mx != 4 {
		t.Errorf("max = %v", mx)
	}
}

func TestReduceIdentityForEmpty(t *testing.T) {
	m, _ := Build(2, nil, nil, []float64{}, PlusFloat64.Op)
	rows := m.ReduceRows(MinFloat64)
	if !math.IsInf(rows[0], 1) {
		t.Errorf("empty row min = %v, want +Inf identity", rows[0])
	}
}

func TestTransposeInvolution(t *testing.T) {
	g := xrand.New(3)
	var rows, cols []int
	var vals []float64
	for i := 0; i < 500; i++ {
		rows = append(rows, g.Intn(40))
		cols = append(cols, g.Intn(40))
		vals = append(vals, g.Float64())
	}
	m, _ := Build(40, rows, cols, vals, PlusFloat64.Op)
	tt := m.Transpose().Transpose()
	r1, c1, v1 := m.ExtractTuples()
	r2, c2, v2 := tt.ExtractTuples()
	if len(r1) != len(r2) {
		t.Fatal("transpose changed NNZ")
	}
	for i := range r1 {
		if r1[i] != r2[i] || c1[i] != c2[i] || v1[i] != v2[i] {
			t.Fatalf("(Mᵀ)ᵀ differs at %d", i)
		}
	}
}

func TestVectorHelpers(t *testing.T) {
	v := []float64{1, 2, 3}
	ApplyVec(v, func(x float64) float64 { return x * x })
	if v[2] != 9 {
		t.Errorf("ApplyVec: %v", v)
	}
	if s := ReduceVec(v, PlusFloat64); s != 14 {
		t.Errorf("ReduceVec = %v", s)
	}
	out := make([]float64, 3)
	if err := EWiseAdd(out, v, []float64{1, 1, 1}, PlusFloat64.Op); err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 {
		t.Errorf("EWiseAdd: %v", out)
	}
}

func BenchmarkGenericVxM(b *testing.B) {
	const n = 1 << 12
	g := xrand.New(1)
	var us, vs []uint64
	for i := 0; i < 16*n; i++ {
		us = append(us, g.Uint64n(n))
		vs = append(vs, g.Uint64n(n))
	}
	m, _ := BuildFromEdges(n, us, vs)
	x := make([]float64, n)
	out := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	b.SetBytes(int64(m.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VxM(out, x, m, PlusTimesFloat64)
	}
}
