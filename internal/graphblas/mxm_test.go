package graphblas

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func isZeroF(v float64) bool { return v == 0 }

func TestMxMSmall(t *testing.T) {
	// A = [[0,1],[0,0]], B = [[0,2],[3,0]]: A·B = [[3,0],[0,0]].
	a, _ := Build(2, []int{0}, []int{1}, []float64{1}, PlusFloat64.Op)
	b, _ := Build(2, []int{0, 1}, []int{1, 0}, []float64{2, 3}, PlusFloat64.Op)
	c, err := MxM(a, b, PlusTimesFloat64, isZeroF)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := c.At(0, 0); !ok || v != 3 {
		t.Errorf("C(0,0) = %v,%v want 3", v, ok)
	}
	if c.NNZ() != 1 {
		t.Errorf("NNZ = %d", c.NNZ())
	}
}

func TestMxMAgainstDense(t *testing.T) {
	const n = 24
	g := xrand.New(4)
	build := func(seed uint64) (*Matrix[float64], [][]float64) {
		gg := xrand.New(seed)
		var rows, cols []int
		var vals []float64
		dense := make([][]float64, n)
		for i := range dense {
			dense[i] = make([]float64, n)
		}
		for k := 0; k < 100; k++ {
			i, j := gg.Intn(n), gg.Intn(n)
			v := float64(gg.Intn(5) + 1)
			rows = append(rows, i)
			cols = append(cols, j)
			vals = append(vals, v)
			dense[i][j] += v
		}
		m, err := Build(n, rows, cols, vals, PlusFloat64.Op)
		if err != nil {
			t.Fatal(err)
		}
		return m, dense
	}
	a, da := build(g.Next())
	b, db := build(g.Next())
	c, err := MxM(a, b, PlusTimesFloat64, isZeroF)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var want float64
			for k := 0; k < n; k++ {
				want += da[i][k] * db[k][j]
			}
			got, _ := c.At(i, j)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("C(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestMxMErrors(t *testing.T) {
	a, _ := Build(2, nil, nil, []float64{}, PlusFloat64.Op)
	b, _ := Build(3, nil, nil, []float64{}, PlusFloat64.Op)
	if _, err := MxM(a, b, PlusTimesFloat64, isZeroF); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := MxM(a, a, PlusTimesFloat64, nil); err == nil {
		t.Error("nil isZero accepted")
	}
}

func TestMxMTriangleCounting(t *testing.T) {
	// Triangle counting via trace(A³)/6 on an undirected triangle plus a
	// pendant edge — a classic GraphBLAS application exercising MxM with
	// the arithmetic semiring.
	//
	// Graph: 0-1, 1-2, 2-0 (triangle), 2-3 (pendant), symmetric.
	rows := []int{0, 1, 1, 2, 2, 0, 2, 3}
	cols := []int{1, 0, 2, 1, 0, 2, 3, 2}
	ones := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	a, err := Build(4, rows, cols, ones, PlusFloat64.Op)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := MxM(a, a, PlusTimesFloat64, isZeroF)
	if err != nil {
		t.Fatal(err)
	}
	a3, err := MxM(a2, a, PlusTimesFloat64, isZeroF)
	if err != nil {
		t.Fatal(err)
	}
	var trace float64
	for i := 0; i < 4; i++ {
		if v, ok := a3.At(i, i); ok {
			trace += v
		}
	}
	if got := trace / 6; got != 1 {
		t.Errorf("triangle count = %v, want 1", got)
	}
}

func TestMxMMinPlusAllPairsStep(t *testing.T) {
	// One (min,+) matrix square doubles the path-length horizon.
	inf := math.Inf(1)
	_ = inf
	// Path 0→1→2, weights 1 and 2; A² must contain the 2-hop distance 3.
	a, _ := Build(3, []int{0, 1}, []int{1, 2}, []float64{1, 2}, MinFloat64.Op)
	a2, err := MxM(a, a, MinPlusFloat64, func(v float64) bool { return math.IsInf(v, 1) })
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := a2.At(0, 2); !ok || v != 3 {
		t.Errorf("2-hop distance = %v,%v want 3", v, ok)
	}
}

func TestMxMIdentity(t *testing.T) {
	// A·I == A with the arithmetic semiring.
	g := xrand.New(9)
	var rows, cols []int
	var vals []float64
	for k := 0; k < 50; k++ {
		rows = append(rows, g.Intn(10))
		cols = append(cols, g.Intn(10))
		vals = append(vals, g.Float64()+0.1)
	}
	a, _ := Build(10, rows, cols, vals, PlusFloat64.Op)
	var ir, ic []int
	var iv []float64
	for i := 0; i < 10; i++ {
		ir = append(ir, i)
		ic = append(ic, i)
		iv = append(iv, 1)
	}
	id, _ := Build(10, ir, ic, iv, PlusFloat64.Op)
	c, err := MxM(a, id, PlusTimesFloat64, isZeroF)
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != a.NNZ() {
		t.Fatalf("A·I NNZ %d != %d", c.NNZ(), a.NNZ())
	}
	r1, c1, v1 := a.ExtractTuples()
	r2, c2, v2 := c.ExtractTuples()
	for i := range r1 {
		if r1[i] != r2[i] || c1[i] != c2[i] || math.Abs(v1[i]-v2[i]) > 1e-12 {
			t.Fatalf("A·I differs at %d", i)
		}
	}
}
