// Package graphblas implements the subset of the GraphBLAS standard needed
// to express the PageRank pipeline kernels as generalized sparse linear
// algebra.
//
// The paper notes that "the linear algebraic nature of PageRank makes it
// well suited to being implemented using the GraphBLAS standard" and lists
// a GraphBLAS reference implementation as future work.  This package is
// that implementation path: matrices over an arbitrary element type, with
// all reductions and products parameterized by user-supplied monoids and
// semirings.  Kernel 2's in/out-degree computations are semiring column and
// row reductions; kernel 3's iteration is a vector×matrix product over the
// (+, ×) semiring.  The same machinery instantiated over (min, +) or
// (|, &) gives shortest-path and reachability kernels, which the tests use
// to demonstrate (and verify) genericity.
package graphblas

import (
	"fmt"
	"math"
	"sort"
)

// BinaryOp combines two elements.
type BinaryOp[T any] func(T, T) T

// UnaryOp transforms one element.
type UnaryOp[T any] func(T) T

// IndexUnaryOp transforms an element with knowledge of its (row, col)
// position, the GraphBLAS apply-with-index operation used for select-style
// filtering.
type IndexUnaryOp[T any] func(row, col int, v T) T

// Monoid is an associative BinaryOp with an identity element.
type Monoid[T any] struct {
	Op       BinaryOp[T]
	Identity T
}

// Semiring pairs an additive monoid with a multiplicative operator, the
// algebraic structure GraphBLAS products are defined over.
type Semiring[T any] struct {
	Add Monoid[T]
	Mul BinaryOp[T]
}

// Standard float64 building blocks.
var (
	// PlusFloat64 is the (＋, 0) monoid.
	PlusFloat64 = Monoid[float64]{Op: func(a, b float64) float64 { return a + b }, Identity: 0}
	// TimesFloat64 is the (×, 1) monoid.
	TimesFloat64 = Monoid[float64]{Op: func(a, b float64) float64 { return a * b }, Identity: 1}
	// MinFloat64 is the (min, +Inf) monoid.
	MinFloat64 = Monoid[float64]{Op: func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}, Identity: inf}
	// MaxFloat64 is the (max, -Inf) monoid.
	MaxFloat64 = Monoid[float64]{Op: func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}, Identity: -inf}
	// PlusTimesFloat64 is the conventional arithmetic semiring used by
	// PageRank.
	PlusTimesFloat64 = Semiring[float64]{Add: PlusFloat64, Mul: func(a, b float64) float64 { return a * b }}
	// MinPlusFloat64 is the tropical semiring (shortest paths).
	MinPlusFloat64 = Semiring[float64]{Add: MinFloat64, Mul: func(a, b float64) float64 { return a + b }}
	// LorLandBool is the boolean reachability semiring.
	LorLandBool = Semiring[bool]{
		Add: Monoid[bool]{Op: func(a, b bool) bool { return a || b }, Identity: false},
		Mul: func(a, b bool) bool { return a && b },
	}
)

var inf = math.Inf(1)

// ---------------------------------------------------------------------------
// Matrix

// Matrix is a square sparse matrix over T in compressed sparse row form.
// Stored entries are explicit; absent entries are interpreted as the
// additive identity of whichever monoid an operation is given.
type Matrix[T any] struct {
	n      int
	rowPtr []int64
	col    []uint32
	val    []T
}

// Dim returns the matrix dimension.
func (m *Matrix[T]) Dim() int { return m.n }

// NNZ returns the number of stored entries.
func (m *Matrix[T]) NNZ() int { return len(m.col) }

// Build constructs an n×n matrix from (row, col, val) triplets, combining
// duplicates with dup (the GraphBLAS GrB_Matrix_build dup operator).
func Build[T any](n int, rows, cols []int, vals []T, dup BinaryOp[T]) (*Matrix[T], error) {
	if n <= 0 {
		return nil, fmt.Errorf("graphblas: dimension %d, want > 0", n)
	}
	if len(rows) != len(cols) || len(rows) != len(vals) {
		return nil, fmt.Errorf("graphblas: triplet slices have unequal lengths %d/%d/%d", len(rows), len(cols), len(vals))
	}
	if dup == nil {
		return nil, fmt.Errorf("graphblas: nil dup operator")
	}
	order := make([]int, len(rows))
	for i := range order {
		if rows[i] < 0 || rows[i] >= n || cols[i] < 0 || cols[i] >= n {
			return nil, fmt.Errorf("graphblas: triplet (%d,%d) out of range n=%d", rows[i], cols[i], n)
		}
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if rows[i] != rows[j] {
			return rows[i] < rows[j]
		}
		return cols[i] < cols[j]
	})
	m := &Matrix[T]{n: n, rowPtr: make([]int64, n+1)}
	for k := 0; k < len(order); {
		i := order[k]
		r, c := rows[i], cols[i]
		acc := vals[i]
		k++
		for k < len(order) && rows[order[k]] == r && cols[order[k]] == c {
			acc = dup(acc, vals[order[k]])
			k++
		}
		m.col = append(m.col, uint32(c))
		m.val = append(m.val, acc)
		m.rowPtr[r+1] = int64(len(m.col))
	}
	for i := 0; i < n; i++ {
		if m.rowPtr[i+1] < m.rowPtr[i] {
			m.rowPtr[i+1] = m.rowPtr[i]
		}
	}
	return m, nil
}

// BuildFromEdges constructs a counting matrix over float64 from uint64
// vertex pairs, the exact kernel-2 construction A = sparse(u, v, 1, N, N).
func BuildFromEdges(n int, us, vs []uint64) (*Matrix[float64], error) {
	rows := make([]int, len(us))
	cols := make([]int, len(us))
	vals := make([]float64, len(us))
	for i := range us {
		if us[i] >= uint64(n) || vs[i] >= uint64(n) {
			return nil, fmt.Errorf("graphblas: edge (%d,%d) out of range n=%d", us[i], vs[i], n)
		}
		rows[i] = int(us[i])
		cols[i] = int(vs[i])
		vals[i] = 1
	}
	return Build(n, rows, cols, vals, PlusFloat64.Op)
}

// ExtractTuples returns the stored entries as parallel triplet slices in
// row-major order.
func (m *Matrix[T]) ExtractTuples() (rows, cols []int, vals []T) {
	rows = make([]int, 0, m.NNZ())
	cols = make([]int, 0, m.NNZ())
	vals = make([]T, 0, m.NNZ())
	for i := 0; i < m.n; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			rows = append(rows, i)
			cols = append(cols, int(m.col[k]))
			vals = append(vals, m.val[k])
		}
	}
	return rows, cols, vals
}

// At returns the stored value at (i, j) and whether an entry exists.
func (m *Matrix[T]) At(i, j int) (T, bool) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	row := m.col[lo:hi]
	k := sort.Search(len(row), func(k int) bool { return row[k] >= uint32(j) })
	if k < len(row) && row[k] == uint32(j) {
		return m.val[lo+int64(k)], true
	}
	var z T
	return z, false
}

// Apply replaces every stored value v at (i, j) with f(i, j, v).
func (m *Matrix[T]) Apply(f IndexUnaryOp[T]) {
	for i := 0; i < m.n; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			m.val[k] = f(i, int(m.col[k]), m.val[k])
		}
	}
}

// Select returns a new matrix retaining only the entries for which keep
// returns true (GraphBLAS GrB_select).
func (m *Matrix[T]) Select(keep func(row, col int, v T) bool) *Matrix[T] {
	out := &Matrix[T]{n: m.n, rowPtr: make([]int64, m.n+1)}
	for i := 0; i < m.n; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			c := int(m.col[k])
			if keep(i, c, m.val[k]) {
				out.col = append(out.col, m.col[k])
				out.val = append(out.val, m.val[k])
			}
		}
		out.rowPtr[i+1] = int64(len(out.col))
	}
	return out
}

// Transpose returns the transposed matrix.
func (m *Matrix[T]) Transpose() *Matrix[T] {
	t := &Matrix[T]{n: m.n, rowPtr: make([]int64, m.n+1), col: make([]uint32, m.NNZ()), val: make([]T, m.NNZ())}
	for _, c := range m.col {
		t.rowPtr[c+1]++
	}
	for i := 0; i < m.n; i++ {
		t.rowPtr[i+1] += t.rowPtr[i]
	}
	next := make([]int64, m.n)
	copy(next, t.rowPtr[:m.n])
	for i := 0; i < m.n; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			c := m.col[k]
			p := next[c]
			t.col[p] = uint32(i)
			t.val[p] = m.val[k]
			next[c]++
		}
	}
	return t
}

// ReduceRows reduces each row with the monoid, returning a dense vector of
// length n (GraphBLAS GrB_Matrix_reduce to vector).  Rows with no entries
// reduce to the identity.
func (m *Matrix[T]) ReduceRows(mon Monoid[T]) []T {
	out := make([]T, m.n)
	for i := 0; i < m.n; i++ {
		acc := mon.Identity
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			acc = mon.Op(acc, m.val[k])
		}
		out[i] = acc
	}
	return out
}

// ReduceCols reduces each column with the monoid, returning a dense vector
// of length n.  This is kernel 2's in-degree when instantiated with
// PlusFloat64.
func (m *Matrix[T]) ReduceCols(mon Monoid[T]) []T {
	out := make([]T, m.n)
	for i := range out {
		out[i] = mon.Identity
	}
	for k, c := range m.col {
		out[c] = mon.Op(out[c], m.val[k])
	}
	return out
}

// ReduceAll reduces every stored entry to a scalar.
func (m *Matrix[T]) ReduceAll(mon Monoid[T]) T {
	acc := mon.Identity
	for _, v := range m.val {
		acc = mon.Op(acc, v)
	}
	return acc
}

// ---------------------------------------------------------------------------
// Vector operations

// VxM computes out = x·M over the semiring s: out[j] = ⊕_i x[i] ⊗ M(i,j),
// where entries absent from M contribute nothing.  x and out are dense
// vectors of length n; out is fully overwritten.  PageRank's update is
// VxM over PlusTimesFloat64.
func VxM[T any](out, x []T, m *Matrix[T], s Semiring[T]) error {
	if len(x) != m.n || len(out) != m.n {
		return fmt.Errorf("graphblas: VxM dimension mismatch: len(x)=%d len(out)=%d n=%d", len(x), len(out), m.n)
	}
	for i := range out {
		out[i] = s.Add.Identity
	}
	for i := 0; i < m.n; i++ {
		xi := x[i]
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			c := m.col[k]
			out[c] = s.Add.Op(out[c], s.Mul(xi, m.val[k]))
		}
	}
	return nil
}

// MxV computes out = M·x over the semiring s: out[i] = ⊕_j M(i,j) ⊗ x[j].
func MxV[T any](out []T, m *Matrix[T], x []T, s Semiring[T]) error {
	if len(x) != m.n || len(out) != m.n {
		return fmt.Errorf("graphblas: MxV dimension mismatch: len(x)=%d len(out)=%d n=%d", len(x), len(out), m.n)
	}
	for i := 0; i < m.n; i++ {
		acc := s.Add.Identity
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			acc = s.Add.Op(acc, s.Mul(m.val[k], x[m.col[k]]))
		}
		out[i] = acc
	}
	return nil
}

// MxM computes the matrix product C = A·B over the semiring s:
// C(i,j) = ⊕_k A(i,k) ⊗ B(k,j), with entries reducing to nothing (absent)
// when no k contributes.  It is the Gustavson row-by-row algorithm with a
// dense accumulator per row; adequate for the matrix dimensions of the
// validation and example workloads.
func MxM[T any](a, b *Matrix[T], s Semiring[T], isZero func(T) bool) (*Matrix[T], error) {
	if a.n != b.n {
		return nil, fmt.Errorf("graphblas: MxM dimension mismatch %d vs %d", a.n, b.n)
	}
	if isZero == nil {
		return nil, fmt.Errorf("graphblas: MxM requires an isZero predicate to keep C sparse")
	}
	n := a.n
	out := &Matrix[T]{n: n, rowPtr: make([]int64, n+1)}
	acc := make([]T, n)
	touched := make([]bool, n)
	var touchedList []int
	for i := 0; i < n; i++ {
		touchedList = touchedList[:0]
		for ka := a.rowPtr[i]; ka < a.rowPtr[i+1]; ka++ {
			k := int(a.col[ka])
			av := a.val[ka]
			for kb := b.rowPtr[k]; kb < b.rowPtr[k+1]; kb++ {
				j := b.col[kb]
				prod := s.Mul(av, b.val[kb])
				if !touched[j] {
					touched[j] = true
					touchedList = append(touchedList, int(j))
					acc[j] = s.Add.Op(s.Add.Identity, prod)
				} else {
					acc[j] = s.Add.Op(acc[j], prod)
				}
			}
		}
		sort.Ints(touchedList)
		for _, j := range touchedList {
			if !isZero(acc[j]) {
				out.col = append(out.col, uint32(j))
				out.val = append(out.val, acc[j])
			}
			touched[j] = false
		}
		out.rowPtr[i+1] = int64(len(out.col))
	}
	return out, nil
}

// EWiseAdd combines two dense vectors elementwise with op (GraphBLAS
// eWiseAdd over dense operands).
func EWiseAdd[T any](out, a, b []T, op BinaryOp[T]) error {
	if len(a) != len(b) || len(out) != len(a) {
		return fmt.Errorf("graphblas: EWiseAdd length mismatch %d/%d/%d", len(out), len(a), len(b))
	}
	for i := range a {
		out[i] = op(a[i], b[i])
	}
	return nil
}

// ApplyVec replaces every element of v with f(v[i]).
func ApplyVec[T any](v []T, f UnaryOp[T]) {
	for i := range v {
		v[i] = f(v[i])
	}
}

// ReduceVec reduces a dense vector with the monoid.
func ReduceVec[T any](v []T, mon Monoid[T]) T {
	acc := mon.Identity
	for _, x := range v {
		acc = mon.Op(acc, x)
	}
	return acc
}
