package dist

// Epoch checkpoint/restart of the distributed kernel-3 iteration, plus
// the rank-failure injection the chaos suite drives (DESIGN.md §10).
//
// Every CheckpointSpec.Every iterations the run writes one epoch to the
// spec's vfs.FS in the internal/ckpt format: one chunk per rank holding
// its block-local slice of the replicated rank vector, then a commit
// marker.  Chunk writes are two-phase (temp name + rename), the commit
// is written only after every chunk landed, and the goroutine runtime
// separates the phases with unmetered agreeError barriers — so a crash
// at any point leaves at worst a torn epoch that the loader detects and
// skips.  Checkpoint traffic is storage and control plane: CommStats,
// and therefore the §V closed form, are untouched.
//
// Resume loads the newest complete epoch before the run starts and feeds
// the recovered vector through the ordinary InitialRank broadcast, so a
// resumed segment's communication is exactly PredictedCommBytes over the
// remaining iterations and the final ranks are bit-for-bit the
// uninterrupted run's (the engine's update is deterministic and the
// epoch stores exact float64 bits).  Resume is p-independent: the loader
// reassembles the global vector from whatever decomposition the writing
// run used.

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/ckpt"
	"repro/internal/pagerank"
	"repro/internal/vfs"
)

// DefaultCheckpointEvery is the epoch length used when a CheckpointSpec
// enables checkpointing without choosing one.
const DefaultCheckpointEvery = 10

// CheckpointSpec configures epoch checkpoint/restart of the kernel-3
// iteration.  It applies to OpRun and OpRunMatrix; a nil FS disables
// checkpointing entirely.
type CheckpointSpec struct {
	// FS is the storage the epochs are written to and resumed from.
	FS vfs.FS
	// Every is the epoch length in iterations (DefaultCheckpointEvery
	// when <= 0): an epoch is written after every iteration count
	// divisible by Every.
	Every int
	// Prefix namespaces the epoch files within FS ("ckpt" by default).
	Prefix string
	// Resume loads the newest complete epoch under Prefix before
	// iterating and continues from it.  No complete epoch means a fresh
	// start, not an error.
	Resume bool
	// Keep bounds the committed epochs retained on storage: after each
	// commit, all but the newest Keep epochs are removed (best-effort).
	// Zero keeps every epoch.
	Keep int
	// OnCommit, when non-nil, observes each committed epoch (its
	// completed-iteration count).  It runs synchronously on the
	// committing goroutine — rank 0's, in the goroutine mode — and must
	// be fast; the pipeline's Progress events are built on it.
	OnCommit func(epoch int64)
	// OnResume, when non-nil, observes a successful resume load before
	// the run starts: the epoch continued from and the count of newer
	// torn epochs skipped to reach it.
	OnResume func(epoch int64, tornSkipped int)
}

// enabled reports whether the spec actually checkpoints.
func (cs CheckpointSpec) enabled() bool { return cs.FS != nil }

// withDefaults resolves the zero knobs.
func (cs CheckpointSpec) withDefaults() CheckpointSpec {
	if cs.Every <= 0 {
		cs.Every = DefaultCheckpointEvery
	}
	if cs.Prefix == "" {
		cs.Prefix = "ckpt"
	}
	return cs
}

// FaultPlan injects a rank failure into a kernel-3 run — the chaos
// harness's instrument.  The fault fires at the iteration boundary after
// AtIteration completed update steps (counted globally, across a resume):
// in the goroutine mode rank KillRank returns ErrFaultInjected from its
// post-iteration hook, the teardown plane unwinds its peers, and Execute
// returns ErrFaultInjected with no goroutine leaked; the simulation
// aborts its single thread at the same boundary, so both modes leave
// identical storage state.  When the boundary is also an epoch boundary
// the epoch is committed first — unless DuringCheckpoint is set, which
// kills the rank between its chunk write and the commit barrier,
// manufacturing exactly the torn epoch the loader must skip.
//
// A FaultPlan describes one injection: the restarted run must not carry
// it over, or the fault re-fires when the boundary is re-reached.
type FaultPlan struct {
	// KillRank is the goroutine rank brought down, in [0, Procs).
	KillRank int
	// AtIteration is the global completed-iteration count at whose
	// boundary the fault fires (>= 1).
	AtIteration int
	// DuringCheckpoint moves the fault between the rank's chunk write
	// and the epoch commit; AtIteration must then be an epoch boundary.
	DuringCheckpoint bool
	// Hard, in the socket mode only, turns the failure into a genuine
	// process death: the killed rank's worker calls os.Exit at the fault
	// boundary instead of returning an error, so the coordinator observes
	// a peer vanishing mid-run — the failure class checkpoint/restart
	// exists for.  The run fails with the worker-death error rather than
	// ErrFaultInjected.  Rejected in the sim and goroutine modes, which
	// have no process to kill.
	Hard bool
}

// ErrFaultInjected is the failure a FaultPlan's killed rank reports.
var ErrFaultInjected = errors.New("dist: injected rank failure")

// CheckpointStats records what the checkpoint machinery did during one
// Execute, reported on Result.Checkpoint.
type CheckpointStats struct {
	// Resumed reports whether a complete epoch was loaded.
	Resumed bool
	// ResumedFrom is the loaded epoch's completed-iteration count (0 on
	// a fresh start).
	ResumedFrom int64
	// TornSkipped counts newer epochs the loader skipped as torn.
	TornSkipped int
	// EpochsWritten counts epochs committed by this run.
	EpochsWritten int
	// LastEpoch is the newest epoch committed by this run (0 if none).
	LastEpoch int64
}

// ckptRun is the per-Execute checkpoint/fault runtime: the resolved
// spec, the resume base offset, and the running stats.  A nil *ckptRun
// means both features are off; every method tolerates the nil receiver.
// In the goroutine mode the struct is shared read-only across ranks
// except stats, which only rank 0's hook mutates (the join's
// happens-before edge publishes it to the driver).
type ckptRun struct {
	spec    CheckpointSpec
	fault   *FaultPlan
	n       int64
	procs   int64
	damping float64
	base    int64
	stats   CheckpointStats

	// The relay seam (socket mode): on a worker process the storage the
	// epochs land on lives with the coordinator, so the worker-side
	// ckptRun has a nil spec.FS and relays chunk and commit writes over
	// its control link instead (sockworker.go wires these).  relay marks
	// checkpointing as enabled despite the nil FS; committed replaces
	// noteCommitted (the coordinator keeps the stats, the Keep pruning
	// and the OnCommit observer, since it performs the writes); hardExit
	// implements FaultPlan.Hard (a genuine os.Exit, socket workers only).
	relay     bool
	putChunk  func(*ckpt.Chunk) error
	putCommit func(epoch int64) error
	committed func(epoch int64)
	hardExit  func()
}

// enabled reports whether the runtime checkpoints — locally or by relay.
func (ck *ckptRun) enabled() bool { return ck.spec.enabled() || ck.relay }

// writeChunk lands one epoch chunk: directly on spec.FS, or through the
// relay on a socket worker.
func (ck *ckptRun) writeChunk(c *ckpt.Chunk) error {
	if ck.putChunk != nil {
		return ck.putChunk(c)
	}
	return ckpt.WriteChunk(ck.spec.FS, ck.spec.Prefix, c)
}

// writeCommit lands the epoch commit marker, directly or by relay.
func (ck *ckptRun) writeCommit(g int64) error {
	if ck.putCommit != nil {
		return ck.putCommit(g)
	}
	return ckpt.WriteCommit(ck.spec.FS, ck.spec.Prefix, g, ck.n, ck.procs, ck.damping)
}

// commitNoted records a committed epoch, locally or at the relay's far
// end (where the coordinator already recorded it when it wrote the
// commit — the worker-side hook is a no-op there).
func (ck *ckptRun) commitNoted(g int64) {
	if ck.committed != nil {
		ck.committed(g)
		return
	}
	ck.noteCommitted(g)
}

// prepareCheckpoint validates the spec's checkpoint/fault configuration
// for OpRun/OpRunMatrix over n vertices, performs the resume load, and
// rewrites spec.PageRank for the remaining segment (initial vector,
// iteration count, progress offset).  A non-nil Result means the loaded
// epoch already covers the requested iterations and no run is needed.
func prepareCheckpoint(spec *Spec, n int) (*ckptRun, *Result, error) {
	if !spec.Checkpoint.enabled() && spec.Fault == nil {
		return nil, nil, nil
	}
	if n < 1 {
		return nil, nil, fmt.Errorf("dist: checkpointed run with n = %d, want >= 1", n)
	}
	opt := &spec.PageRank
	total := opt.Iterations
	if total == 0 {
		total = pagerank.DefaultIterations
	}
	if total < 0 {
		return nil, nil, fmt.Errorf("dist: checkpointed run with %d iterations", total)
	}
	damping := opt.Damping
	if damping == 0 {
		damping = pagerank.DefaultDamping
	}
	ck := &ckptRun{
		spec:    spec.Checkpoint.withDefaults(),
		fault:   spec.Fault,
		n:       int64(n),
		procs:   int64(spec.Procs),
		damping: damping,
	}
	if f := spec.Fault; f != nil {
		if f.KillRank < 0 || f.KillRank >= spec.Procs {
			return nil, nil, fmt.Errorf("dist: fault plan kills rank %d of %d", f.KillRank, spec.Procs)
		}
		if f.AtIteration < 1 || f.AtIteration > total {
			return nil, nil, fmt.Errorf("dist: fault plan at iteration %d of %d", f.AtIteration, total)
		}
		if f.Hard && spec.Mode != ExecSocket {
			return nil, nil, fmt.Errorf("dist: hard fault plan requires the socket mode, not %v (no process to kill)", spec.Mode)
		}
		if f.DuringCheckpoint {
			if !spec.Checkpoint.enabled() {
				return nil, nil, fmt.Errorf("dist: fault plan during checkpoint, but checkpointing is off")
			}
			if f.AtIteration%ck.spec.Every != 0 {
				return nil, nil, fmt.Errorf("dist: fault plan during checkpoint at iteration %d, not an epoch boundary (every %d)", f.AtIteration, ck.spec.Every)
			}
		}
	}
	if ck.spec.enabled() && ck.spec.Resume {
		loaded, err := ckpt.Latest(ck.spec.FS, ck.spec.Prefix)
		switch {
		case errors.Is(err, ckpt.ErrNoCheckpoint):
			// Nothing to resume: a fresh start.
		case err != nil:
			return nil, nil, err
		default:
			if loaded.N != ck.n {
				return nil, nil, fmt.Errorf("dist: checkpoint is for n = %d, run has n = %d", loaded.N, ck.n)
			}
			if math.Float64bits(loaded.Damping) != math.Float64bits(damping) {
				return nil, nil, fmt.Errorf("dist: checkpoint damping %v != run damping %v", loaded.Damping, damping)
			}
			ck.base = loaded.Epoch
			ck.stats.Resumed = true
			ck.stats.ResumedFrom = loaded.Epoch
			ck.stats.TornSkipped = loaded.Torn
			if ck.spec.OnResume != nil {
				ck.spec.OnResume(loaded.Epoch, loaded.Torn)
			}
			if ck.base >= int64(total) {
				// The checkpoint already covers the request; no segment to
				// run.  (On OpRun the kernel-2 rebuild is skipped too, so
				// NNZ is not reported on this path.)
				return nil, &Result{
					Rank:       loaded.Rank,
					Iterations: int(ck.base),
					Checkpoint: ck.statsCopy(),
				}, nil
			}
			opt.InitialRank = loaded.Rank
			opt.Iterations = total - int(ck.base)
			if orig := opt.Progress; orig != nil {
				base := int(ck.base)
				opt.Progress = func(it int) { orig(base + it) }
			}
		}
	}
	return ck, nil, nil
}

// statsCopy snapshots the stats for a Result.
func (ck *ckptRun) statsCopy() *CheckpointStats {
	s := ck.stats
	return &s
}

// finish folds the checkpoint runtime into the run's Result: the resume
// base offsets the iteration count, and the stats are attached whenever
// checkpointing was on.
func (ck *ckptRun) finish(res *Result) {
	if ck == nil {
		return
	}
	res.Iterations += int(ck.base)
	if ck.spec.enabled() || ck.stats.Resumed {
		res.Checkpoint = ck.statsCopy()
	}
}

// noteCommitted records a committed epoch and prunes old ones when Keep
// is bounded.  Pruning is best-effort: the data of record is the commit
// that just landed, and a failed cleanup must not fail the run.
func (ck *ckptRun) noteCommitted(g int64) {
	ck.stats.EpochsWritten++
	ck.stats.LastEpoch = g
	if ck.spec.OnCommit != nil {
		ck.spec.OnCommit(g)
	}
	if ck.spec.Keep <= 0 {
		return
	}
	eps, err := ckpt.Epochs(ck.spec.FS, ck.spec.Prefix)
	if err != nil {
		return
	}
	for i := 0; i < len(eps)-ck.spec.Keep; i++ {
		_ = ckpt.RemoveEpoch(ck.spec.FS, ck.spec.Prefix, eps[i])
	}
}

// chunkOf frames one rank's slice of the replicated vector as an epoch
// chunk.  Data aliases r; the encoder consumes it immediately.
func (ck *ckptRun) chunkOf(g int64, r []float64, rank, lo, hi int) *ckpt.Chunk {
	return &ckpt.Chunk{
		Kind: ckpt.KindChunk, Epoch: g, N: ck.n, Procs: ck.procs,
		Rank: int64(rank), Lo: int64(lo), Hi: int64(hi),
		Damping: ck.damping, Data: r[lo:hi],
	}
}

// die implements FaultPlan.Hard at a fault boundary: on a socket worker
// it never returns (os.Exit); everywhere else it is a no-op and the
// caller returns ErrFaultInjected as usual (prepareCheckpoint rejects
// Hard outside the socket mode, so hardExit is always wired when Hard
// can be set).
func (ck *ckptRun) die() {
	if ck.fault.Hard && ck.hardExit != nil {
		ck.hardExit()
	}
}

// atFault reports whether the fault plan fires at global iteration g.
func (ck *ckptRun) atFault(g int64) bool {
	return ck.fault != nil && int64(ck.fault.AtIteration) == g
}

// epochBoundary reports whether g closes an epoch.
func (ck *ckptRun) epochBoundary(g int64) bool {
	return ck.enabled() && g%int64(ck.spec.Every) == 0
}

// afterSim builds the simulation's post-iteration hook: the single
// driver writes every rank's chunk and the commit itself, then fires
// any planned fault.  KillRank has no thread to kill in this mode; the
// simulated run aborts at the same boundary with the same storage state
// the goroutine mode leaves, which is what lets the property suite
// exercise kill-and-resume identically in both modes.
func (ck *ckptRun) afterSim(states []*rankState) func(int, []float64) error {
	if ck == nil {
		return nil
	}
	return func(it int, r []float64) error {
		g := ck.base + int64(it)
		if ck.epochBoundary(g) {
			for rk, st := range states {
				if err := ck.writeChunk(ck.chunkOf(g, r, rk, st.blk.lo, st.blk.hi)); err != nil {
					return err
				}
			}
			if ck.atFault(g) && ck.fault.DuringCheckpoint {
				// Died after the chunks, before the commit: a torn epoch.
				return ErrFaultInjected
			}
			if err := ck.writeCommit(g); err != nil {
				return err
			}
			ck.commitNoted(g)
		}
		if ck.atFault(g) {
			return ErrFaultInjected
		}
		return nil
	}
}

// afterRank builds one goroutine rank's post-iteration hook.  All
// replicas step in lockstep, so every rank reaches an epoch boundary
// together: each writes its own chunk, an agreeError barrier proves all
// chunks landed, rank 0 writes the commit, and a second barrier
// publishes the commit's fate — both barriers unmetered control plane,
// exactly like the out-of-core sort's.  A DuringCheckpoint fault returns
// between the chunk write and the first barrier, so the commit is never
// written and the epoch is torn; a plain fault returns after the epoch
// is fully committed.  Either way the teardown plane unwinds the peers
// blocked in the next collective.
func (ck *ckptRun) afterRank(c *rankComm, lo, hi int) func(int, []float64) error {
	if ck == nil {
		return nil
	}
	return func(it int, r []float64) error {
		g := ck.base + int64(it)
		killed := ck.atFault(g) && c.rank == ck.fault.KillRank
		if ck.epochBoundary(g) {
			werr := ck.writeChunk(ck.chunkOf(g, r, c.rank, lo, hi))
			if killed && ck.fault.DuringCheckpoint {
				ck.die()
				return ErrFaultInjected
			}
			if err := c.agreeError(werr); err != nil {
				return err
			}
			var cerr error
			if c.rank == 0 {
				cerr = ck.writeCommit(g)
			}
			if err := c.agreeError(cerr); err != nil {
				return err
			}
			if c.rank == 0 {
				ck.commitNoted(g)
			}
		}
		if killed {
			ck.die()
			return ErrFaultInjected
		}
		return nil
	}
}
