package dist

// The goroutine fabric: typed point-to-point channels between p concurrent
// ranks, and the collective layer built on them.  This is the real
// counterpart of the simulated comm in dist.go; DESIGN.md §5 is the
// normative statement of the contract implemented here.
//
// Message-passing contract (summary of DESIGN.md §5):
//
//   - Every (src, dst) rank pair has a dedicated buffered channel, so the
//     fabric delivers messages per-link FIFO, reliably, exactly once.
//     There is no global ordering between links.
//   - Collectives are bulk-synchronous and rooted at rank 0: a reduction
//     receives contributions in ascending rank order and combines them in
//     that order, which pins the floating-point association to the
//     simulation's (rank-ordered) sum — the source of the bit-for-bit
//     equality between the two runtimes.
//   - Every rank executes the same schedule of collectives in the same
//     program order; sends within a collective precede receives.  Link
//     buffering (linkBuf) covers the bounded number of sends a rank can
//     issue before its next synchronizing receive, so the schedule cannot
//     deadlock.
//   - Payload slices are copied at the sender (or ownership is handed
//     over, for the edge exchange whose outboxes the sender never touches
//     again); ranks share no mutable state through messages.
//   - Float and key payloads travel in pooled envelopes (vecMsg/keyMsg)
//     recycled through the fabric's free lists, so the steady-state
//     kernel-3 collectives allocate nothing.  Ownership hands off at the
//     link: the sender must not touch an envelope after sending, and the
//     receiver owns it from the moment it is taken off the link and must
//     release it back to the pool once the payload is consumed
//     (DESIGN.md §7 amends the §5 contract with these rules).
//   - Byte accounting is sender-side: each rank meters the payload bytes
//     it puts on the wire, using the same wire-cost formulas as the
//     simulation (dist.go), and the driver sums the per-rank records.
//     Measured channel bytes therefore equal the simulation's metered
//     bytes and PredictedCommBytes identically.

import (
	"fmt"
	"sync"

	"repro/internal/edge"
)

// linkBuf is the per-link channel capacity.  Two sends is the most any
// rank issues on one link before a synchronizing receive (the kernel-2
// edge outbox followed by the matrix-mass contribution); the slack above
// that only loosens the lockstep, it is not needed for liveness.  The
// socket fabric's per-peer inboxes use the same capacity, and the OS
// socket buffers behind them only add slack — which, per the same
// argument, cannot introduce a deadlock.
const linkBuf = 4

// rankFabric is the transport seam: the message plane one rankComm
// speaks through.  chanFabric (below) implements it over in-process channels;
// sockFabric (sockfabric.go) implements it over real socket links
// between OS processes.  Every implementation must provide per-link
// FIFO, exactly-once delivery, effective per-link buffering of at least
// linkBuf messages, envelope pooling, and a teardown plane whose trip
// makes every blocked or subsequent link operation panic fabricDown —
// the contract DESIGN.md §5/§8 state and the collectives below assume.
type rankFabric interface {
	// procs returns the fabric's rank count p.
	procs() int
	// send delivers m on the (src, dst) link, or panics fabricDown if
	// the fabric comes down first.  Envelope ownership transfers with
	// the message (DESIGN.md §7).
	send(src, dst int, m any)
	// recv takes the next message on the (src, dst) link, or panics
	// fabricDown if the fabric comes down first.
	recv(src, dst int) any
	// abort trips the teardown plane; idempotent, safe from any
	// goroutine.
	abort()
	// The pooled-envelope plane (DESIGN.md §7): getVec/getKeys take an
	// envelope from the fabric's free lists, putVec/putKeys release one.
	getVec(n int) *vecMsg
	putVec(m *vecMsg)
	getKeys(n int) *keyMsg
	putKeys(m *keyMsg)
}

// envPool is the shared envelope free-list implementation embedded by
// every fabric: a plain mutex-protected list — rather than a sync.Pool —
// keeps the steady-state allocation count deterministically zero,
// because the garbage collector cannot empty it between iterations.
type envPool struct {
	mu       sync.Mutex
	freeVecs []*vecMsg
	freeKeys []*keyMsg
}

// chanFabric is the in-process message plane of one goroutine run: p²
// dedicated links plus the shared envelope pools and the teardown plane.
type chanFabric struct {
	p     int
	links []chan any // links[src*p+dst]

	// done is the teardown plane: closed (once, by abort) when the run
	// must come down — a rank failed, or the run's context was cancelled.
	// Every link operation selects on it, so a rank blocked mid-collective
	// on a peer that will never arrive unwinds instead of leaking; its
	// goroutine exits through the fabricDown panic that spawnRanks
	// recovers.  In a healthy run the channel is never closed and the
	// extra select arm never fires.
	done      chan struct{}
	abortOnce sync.Once

	envPool
}

// abort trips the teardown plane.  Idempotent and safe from any
// goroutine; every subsequent (and every currently blocked) link
// operation panics fabricDown.
func (f *chanFabric) abort() { f.abortOnce.Do(func() { close(f.done) }) }

// fabricDown is the sentinel a link operation panics with after abort;
// spawnRanks' per-rank recover converts it into errRunAborted.  Any other
// panic value is a genuine bug and is re-raised.
type fabricDown struct{}

// vecMsg is a pooled float64 payload envelope: rank-vector replicas,
// in-degree partials and (at length 1) the scalar reductions.
type vecMsg struct{ buf []float64 }

// keyMsg is a pooled uint64 payload envelope: the sort's samples and
// splitters.
type keyMsg struct{ buf []uint64 }

func newChanFabric(p int) *chanFabric {
	f := &chanFabric{p: p, links: make([]chan any, p*p), done: make(chan struct{})}
	for i := range f.links {
		f.links[i] = make(chan any, linkBuf)
	}
	return f
}

func (f *chanFabric) procs() int { return f.p }

// send delivers m to dst's inbound link from src, or unwinds if the
// fabric comes down first (the select adds no allocation to the hot path).
func (f *chanFabric) send(src, dst int, m any) {
	select {
	case f.links[src*f.p+dst] <- m:
	case <-f.done:
		panic(fabricDown{})
	}
}

// recv takes the next message on the (src, dst) link, or unwinds if the
// fabric comes down first.
func (f *chanFabric) recv(src, dst int) any {
	select {
	case m := <-f.links[src*f.p+dst]:
		return m
	case <-f.done:
		panic(fabricDown{})
	}
}

// getVec takes a float envelope of length n from the pool (allocating
// only when the pool is dry — in steady state it never is).
func (pl *envPool) getVec(n int) *vecMsg {
	pl.mu.Lock()
	var m *vecMsg
	if last := len(pl.freeVecs) - 1; last >= 0 {
		m = pl.freeVecs[last]
		pl.freeVecs[last] = nil
		pl.freeVecs = pl.freeVecs[:last]
	}
	pl.mu.Unlock()
	if m == nil {
		m = &vecMsg{}
	}
	if cap(m.buf) < n {
		m.buf = make([]float64, n)
	}
	m.buf = m.buf[:n]
	return m
}

// putVec releases a float envelope back to the pool.  The caller must not
// touch it afterwards.
func (pl *envPool) putVec(m *vecMsg) {
	pl.mu.Lock()
	pl.freeVecs = append(pl.freeVecs, m)
	pl.mu.Unlock()
}

// getKeys and putKeys are the key-envelope counterparts.
func (pl *envPool) getKeys(n int) *keyMsg {
	pl.mu.Lock()
	var m *keyMsg
	if last := len(pl.freeKeys) - 1; last >= 0 {
		m = pl.freeKeys[last]
		pl.freeKeys[last] = nil
		pl.freeKeys = pl.freeKeys[:last]
	}
	pl.mu.Unlock()
	if m == nil {
		m = &keyMsg{}
	}
	if cap(m.buf) < n {
		m.buf = make([]uint64, n)
	}
	m.buf = m.buf[:n]
	return m
}

func (pl *envPool) putKeys(m *keyMsg) {
	pl.mu.Lock()
	pl.freeKeys = append(pl.freeKeys, m)
	pl.mu.Unlock()
}

// newRankComm returns rank r's handle on a fabric.

func newRankComm(f rankFabric, r int) *rankComm { return &rankComm{f: f, rank: r} }

// rankComm is one rank's view of the fabric: its identity, its send
// endpoints, and its private communication record (summed by the driver
// after the ranks join, so no counter is shared between goroutines).
// The fabric behind it may be the channel plane or the socket plane —
// the collectives below are transport-agnostic, which is what makes the
// three execution modes' CommStats equal by construction.
type rankComm struct {
	f    rankFabric
	rank int
	st   CommStats
}

func (c *rankComm) procs() int { return c.f.procs() }

// send delivers m to dst's inbound link from this rank, or unwinds if
// the fabric comes down first.
func (c *rankComm) send(dst int, m any) {
	c.f.send(c.rank, dst, m)
}

// recv takes the next message on the link from src, or unwinds if the
// fabric comes down first.
func (c *rankComm) recv(src int) any {
	return c.f.recv(src, c.rank)
}

// recvVec takes the next message from src, which the schedule guarantees
// is a pooled float envelope; a mismatch is a protocol bug.  Ownership
// transfers to the receiver, which must release the envelope with putVec
// once the payload is consumed.
func (c *rankComm) recvVec(src int) *vecMsg {
	v, ok := c.recv(src).(*vecMsg)
	if !ok {
		panic(fmt.Sprintf("dist: rank %d expected float payload from rank %d", c.rank, src))
	}
	return v
}

// recvKeyMsg is recvVec for the pooled key envelope.
func (c *rankComm) recvKeyMsg(src int) *keyMsg {
	v, ok := c.recv(src).(*keyMsg)
	if !ok {
		panic(fmt.Sprintf("dist: rank %d expected key payload from rank %d", c.rank, src))
	}
	return v
}

// sendVecCopy ships a private copy of vec to dst in a pooled envelope —
// the sender-copies rule of the §5 contract without the per-send
// allocation it used to cost.
func (c *rankComm) sendVecCopy(dst int, vec []float64) {
	m := c.f.getVec(len(vec))
	copy(m.buf, vec)
	c.send(dst, m)
}

// sendScalar ships one float64 in a length-1 pooled envelope (boxing a
// bare float64 into the link's interface type would allocate per send).
func (c *rankComm) sendScalar(dst int, v float64) {
	m := c.f.getVec(1)
	m.buf[0] = v
	c.send(dst, m)
}

func (c *rankComm) recvEdges(src int) *edge.List {
	v, ok := c.recv(src).(*edge.List)
	if !ok {
		panic(fmt.Sprintf("dist: rank %d expected *edge.List from rank %d", c.rank, src))
	}
	return v
}

func (c *rankComm) recvSegments(src int) []*edge.List {
	v, ok := c.recv(src).([]*edge.List)
	if !ok {
		panic(fmt.Sprintf("dist: rank %d expected []*edge.List from rank %d", c.rank, src))
	}
	return v
}

func (c *rankComm) recvString(src int) string {
	v, ok := c.recv(src).(string)
	if !ok {
		panic(fmt.Sprintf("dist: rank %d expected string from rank %d", c.rank, src))
	}
	return v
}

// allReduceSum leaves the rank-ordered global sum of the ranks' partial
// vectors in vec on every rank: non-roots send their partial to rank 0,
// the root accumulates the contributions in ascending rank order (its own
// partial first — the association the simulation uses), then redistributes
// the result.  Wire volume is 2·8·len·(p-1), charged half to the gathering
// senders and half to the root's redistribution.
// allReduceSum is the kernel-3 steady-state hot path, so every payload
// travels in a pooled envelope: the senders copy into envelopes, the root
// folds each contribution and immediately releases it, and every receiver
// copies out and releases — zero heap allocations per call once the pool
// is warm.
func (c *rankComm) allReduceSum(vec []float64) {
	p := c.procs()
	if p == 1 {
		return
	}
	if c.rank == 0 {
		c.st.AllReduceCalls++
		for src := 1; src < p; src++ {
			m := c.recvVec(src)
			for i, v := range m.buf {
				vec[i] += v
			}
			c.f.putVec(m)
		}
		for dst := 1; dst < p; dst++ {
			c.sendVecCopy(dst, vec)
			c.st.AllReduceBytes += floatWireBytes * uint64(len(vec))
		}
	} else {
		c.sendVecCopy(0, vec)
		c.st.AllReduceBytes += floatWireBytes * uint64(len(vec))
		m := c.recvVec(0)
		copy(vec, m.buf)
		c.f.putVec(m)
	}
}

// allReduceScalar is allReduceSum for a single float64 contribution,
// carried in a length-1 pooled envelope.
func (c *rankComm) allReduceScalar(v float64) float64 {
	p := c.procs()
	if p == 1 {
		return v
	}
	if c.rank == 0 {
		c.st.AllReduceCalls++
		for src := 1; src < p; src++ {
			m := c.recvVec(src)
			v += m.buf[0]
			c.f.putVec(m)
		}
		for dst := 1; dst < p; dst++ {
			c.sendScalar(dst, v)
			c.st.AllReduceBytes += floatWireBytes
		}
		return v
	}
	c.sendScalar(0, v)
	c.st.AllReduceBytes += floatWireBytes
	m := c.recvVec(0)
	v = m.buf[0]
	c.f.putVec(m)
	return v
}

// broadcastFloats ships rank 0's vector to every rank and returns each
// rank's private replica (the root's own argument on rank 0).  Non-roots
// pass nil.  The replica is a fresh slice — the caller keeps it for the
// whole run, so the envelope is copied out and released (a once-per-run
// allocation, not a steady-state one).
func (c *rankComm) broadcastFloats(vec []float64) []float64 {
	p := c.procs()
	if p == 1 {
		return vec
	}
	if c.rank == 0 {
		c.st.BroadcastCalls++
		for dst := 1; dst < p; dst++ {
			c.sendVecCopy(dst, vec)
			c.st.BroadcastBytes += floatWireBytes * uint64(len(vec))
		}
		return vec
	}
	m := c.recvVec(0)
	out := append([]float64(nil), m.buf...)
	c.f.putVec(m)
	return out
}

// broadcastKeys ships rank 0's key slice (the sort's splitters) to every
// rank; non-roots pass nil and receive a fresh copy (the splitters are
// held for the whole sort, so the envelope is released immediately).
func (c *rankComm) broadcastKeys(keys []uint64) []uint64 {
	p := c.procs()
	if p == 1 {
		return keys
	}
	if c.rank == 0 {
		c.st.BroadcastCalls++
		for dst := 1; dst < p; dst++ {
			m := c.f.getKeys(len(keys))
			copy(m.buf, keys)
			c.send(dst, m)
			c.st.BroadcastBytes += keyWireBytes * uint64(len(keys))
		}
		return keys
	}
	m := c.recvKeyMsg(0)
	out := append([]uint64(nil), m.buf...)
	c.f.putKeys(m)
	return out
}

// gatherKeys collects every rank's key slice at rank 0 in ascending rank
// order (the sort's sample gather); non-roots get nil back.  Like the
// simulation, the personalized sends are metered as all-to-all traffic.
func (c *rankComm) gatherKeys(keys []uint64) [][]uint64 {
	p := c.procs()
	if p == 1 {
		return [][]uint64{keys}
	}
	if c.rank == 0 {
		all := make([][]uint64, p)
		all[0] = keys
		for src := 1; src < p; src++ {
			m := c.recvKeyMsg(src)
			all[src] = append([]uint64(nil), m.buf...)
			c.f.putKeys(m)
		}
		return all
	}
	m := c.f.getKeys(len(keys))
	copy(m.buf, keys)
	c.send(0, m)
	c.st.AllToAllBytes += keyWireBytes * uint64(len(keys))
	return nil
}

// agreeError is the control-plane barrier of the out-of-core sort: every
// rank contributes its local error (nil for none), rank 0 folds the
// contributions in ascending rank order and redistributes the first
// failure.  A rank whose storage operation failed can thereby abort the
// whole team at a schedule point instead of stranding its peers inside a
// later collective; every rank returns a non-nil error, its own first.
// Control traffic is deliberately unmetered — CommStats records the data
// plane the §V model prices, and the simulation needs no barrier at all.
func (c *rankComm) agreeError(local error) error {
	p := c.procs()
	if p == 1 {
		return local
	}
	msg := ""
	if local != nil {
		msg = local.Error()
		if msg == "" {
			// The empty string is the wire encoding of "no error"; an
			// error whose message is empty must still abort every rank.
			msg = "unspecified failure"
		}
	}
	if c.rank == 0 {
		for src := 1; src < p; src++ {
			if s := c.recvString(src); s != "" && msg == "" {
				msg = s
			}
		}
		for dst := 1; dst < p; dst++ {
			c.send(dst, msg)
		}
	} else {
		c.send(0, msg)
		msg = c.recvString(0)
	}
	switch {
	case local != nil:
		return local
	case msg != "":
		return fmt.Errorf("dist: peer rank failed: %s", msg)
	default:
		return nil
	}
}

// exchangeSegments performs the personalized all-to-all of the out-of-core
// sort's spilled-run routing: out[d] holds this rank's sorted run segments
// for rank d, in run order.  Segment boundaries survive the wire — the
// receiver's k-way merge needs each segment as its own sorted stream — and
// the inbound groups are returned in ascending source order, which
// combined with run order inside each group is global input order, the
// stability invariant.  Outbox ownership transfers to the receiver.  Only
// off-rank edges are metered, at edgeWireBytes each — segment framing adds
// no modeled bytes, so the record equals the in-memory exchange's for the
// same splitters.
func (c *rankComm) exchangeSegments(out [][]*edge.List) [][]*edge.List {
	p := c.procs()
	in := make([][]*edge.List, p)
	in[c.rank] = out[c.rank]
	for dst := 0; dst < p; dst++ {
		if dst == c.rank {
			continue
		}
		c.send(dst, out[dst])
		for _, seg := range out[dst] {
			c.st.AllToAllBytes += edgeWireBytes * uint64(seg.Len())
		}
	}
	for src := 0; src < p; src++ {
		if src == c.rank {
			continue
		}
		in[src] = c.recvSegments(src)
	}
	return in
}

// exchangeEdges performs the personalized all-to-all of kernel 1's bucket
// exchange and kernel 2's edge routing: out[d] is this rank's outbox for
// rank d.  It returns the p inbound lists in ascending source order (the
// self outbox in place), which is what keeps every destination's edge
// stream in global input order — the stability invariant both kernels
// rely on.  Outbox ownership transfers to the receiver; only off-rank
// edges are metered, at edgeWireBytes each.
func (c *rankComm) exchangeEdges(out []*edge.List) []*edge.List {
	p := c.procs()
	in := make([]*edge.List, p)
	in[c.rank] = out[c.rank]
	for dst := 0; dst < p; dst++ {
		if dst == c.rank {
			continue
		}
		c.send(dst, out[dst])
		c.st.AllToAllBytes += edgeWireBytes * uint64(out[dst].Len())
	}
	for src := 0; src < p; src++ {
		if src == c.rank {
			continue
		}
		in[src] = c.recvEdges(src)
	}
	return in
}
