package dist

// The goroutine fabric: typed point-to-point channels between p concurrent
// ranks, and the collective layer built on them.  This is the real
// counterpart of the simulated comm in dist.go; DESIGN.md §5 is the
// normative statement of the contract implemented here.
//
// Message-passing contract (summary of DESIGN.md §5):
//
//   - Every (src, dst) rank pair has a dedicated buffered channel, so the
//     fabric delivers messages per-link FIFO, reliably, exactly once.
//     There is no global ordering between links.
//   - Collectives are bulk-synchronous and rooted at rank 0: a reduction
//     receives contributions in ascending rank order and combines them in
//     that order, which pins the floating-point association to the
//     simulation's (rank-ordered) sum — the source of the bit-for-bit
//     equality between the two runtimes.
//   - Every rank executes the same schedule of collectives in the same
//     program order; sends within a collective precede receives.  Link
//     buffering (linkBuf) covers the bounded number of sends a rank can
//     issue before its next synchronizing receive, so the schedule cannot
//     deadlock.
//   - Payload slices are copied at the sender (or ownership is handed
//     over, for the edge exchange whose outboxes the sender never touches
//     again); ranks share no mutable state through messages.
//   - Byte accounting is sender-side: each rank meters the payload bytes
//     it puts on the wire, using the same wire-cost formulas as the
//     simulation (dist.go), and the driver sums the per-rank records.
//     Measured channel bytes therefore equal the simulation's metered
//     bytes and PredictedCommBytes identically.

import (
	"fmt"

	"repro/internal/edge"
)

// linkBuf is the per-link channel capacity.  Two sends is the most any
// rank issues on one link before a synchronizing receive (the kernel-2
// edge outbox followed by the matrix-mass contribution); the slack above
// that only loosens the lockstep, it is not needed for liveness.
const linkBuf = 4

// fabric is the message plane of one goroutine run: p² dedicated links.
type fabric struct {
	p     int
	links []chan any // links[src*p+dst]
}

func newFabric(p int) *fabric {
	f := &fabric{p: p, links: make([]chan any, p*p)}
	for i := range f.links {
		f.links[i] = make(chan any, linkBuf)
	}
	return f
}

// comm returns rank r's handle on the fabric.
func (f *fabric) comm(r int) *rankComm { return &rankComm{f: f, rank: r} }

// rankComm is one rank's view of the fabric: its identity, its send
// endpoints, and its private communication record (summed by the driver
// after the ranks join, so no counter is shared between goroutines).
type rankComm struct {
	f    *fabric
	rank int
	st   CommStats
}

func (c *rankComm) procs() int { return c.f.p }

// send delivers m to dst's inbound link from this rank.
func (c *rankComm) send(dst int, m any) { c.f.links[c.rank*c.f.p+dst] <- m }

// recv takes the next message on the link from src.
func (c *rankComm) recv(src int) any { return <-c.f.links[src*c.f.p+c.rank] }

// recvFloats takes the next message from src, which the schedule
// guarantees is a float64 vector; a mismatch is a protocol bug.
func (c *rankComm) recvFloats(src int) []float64 {
	v, ok := c.recv(src).([]float64)
	if !ok {
		panic(fmt.Sprintf("dist: rank %d expected []float64 from rank %d", c.rank, src))
	}
	return v
}

func (c *rankComm) recvKeys(src int) []uint64 {
	v, ok := c.recv(src).([]uint64)
	if !ok {
		panic(fmt.Sprintf("dist: rank %d expected []uint64 from rank %d", c.rank, src))
	}
	return v
}

func (c *rankComm) recvScalar(src int) float64 {
	v, ok := c.recv(src).(float64)
	if !ok {
		panic(fmt.Sprintf("dist: rank %d expected float64 from rank %d", c.rank, src))
	}
	return v
}

func (c *rankComm) recvEdges(src int) *edge.List {
	v, ok := c.recv(src).(*edge.List)
	if !ok {
		panic(fmt.Sprintf("dist: rank %d expected *edge.List from rank %d", c.rank, src))
	}
	return v
}

func (c *rankComm) recvSegments(src int) []*edge.List {
	v, ok := c.recv(src).([]*edge.List)
	if !ok {
		panic(fmt.Sprintf("dist: rank %d expected []*edge.List from rank %d", c.rank, src))
	}
	return v
}

func (c *rankComm) recvString(src int) string {
	v, ok := c.recv(src).(string)
	if !ok {
		panic(fmt.Sprintf("dist: rank %d expected string from rank %d", c.rank, src))
	}
	return v
}

// allReduceSum leaves the rank-ordered global sum of the ranks' partial
// vectors in vec on every rank: non-roots send their partial to rank 0,
// the root accumulates the contributions in ascending rank order (its own
// partial first — the association the simulation uses), then redistributes
// the result.  Wire volume is 2·8·len·(p-1), charged half to the gathering
// senders and half to the root's redistribution.
func (c *rankComm) allReduceSum(vec []float64) {
	p := c.procs()
	if p == 1 {
		return
	}
	if c.rank == 0 {
		c.st.AllReduceCalls++
		for src := 1; src < p; src++ {
			for i, v := range c.recvFloats(src) {
				vec[i] += v
			}
		}
		for dst := 1; dst < p; dst++ {
			c.send(dst, append([]float64(nil), vec...))
			c.st.AllReduceBytes += floatWireBytes * uint64(len(vec))
		}
	} else {
		c.send(0, append([]float64(nil), vec...))
		c.st.AllReduceBytes += floatWireBytes * uint64(len(vec))
		copy(vec, c.recvFloats(0))
	}
}

// allReduceScalar is allReduceSum for a single float64 contribution.
func (c *rankComm) allReduceScalar(v float64) float64 {
	p := c.procs()
	if p == 1 {
		return v
	}
	if c.rank == 0 {
		c.st.AllReduceCalls++
		for src := 1; src < p; src++ {
			v += c.recvScalar(src)
		}
		for dst := 1; dst < p; dst++ {
			c.send(dst, v)
			c.st.AllReduceBytes += floatWireBytes
		}
		return v
	}
	c.send(0, v)
	c.st.AllReduceBytes += floatWireBytes
	return c.recvScalar(0)
}

// broadcastFloats ships rank 0's vector to every rank and returns each
// rank's private replica (the root's own argument on rank 0).  Non-roots
// pass nil.
func (c *rankComm) broadcastFloats(vec []float64) []float64 {
	p := c.procs()
	if p == 1 {
		return vec
	}
	if c.rank == 0 {
		c.st.BroadcastCalls++
		for dst := 1; dst < p; dst++ {
			c.send(dst, append([]float64(nil), vec...))
			c.st.BroadcastBytes += floatWireBytes * uint64(len(vec))
		}
		return vec
	}
	return c.recvFloats(0)
}

// broadcastKeys ships rank 0's key slice (the sort's splitters) to every
// rank; non-roots pass nil.
func (c *rankComm) broadcastKeys(keys []uint64) []uint64 {
	p := c.procs()
	if p == 1 {
		return keys
	}
	if c.rank == 0 {
		c.st.BroadcastCalls++
		for dst := 1; dst < p; dst++ {
			c.send(dst, append([]uint64(nil), keys...))
			c.st.BroadcastBytes += keyWireBytes * uint64(len(keys))
		}
		return keys
	}
	return c.recvKeys(0)
}

// gatherKeys collects every rank's key slice at rank 0 in ascending rank
// order (the sort's sample gather); non-roots get nil back.  Like the
// simulation, the personalized sends are metered as all-to-all traffic.
func (c *rankComm) gatherKeys(keys []uint64) [][]uint64 {
	p := c.procs()
	if p == 1 {
		return [][]uint64{keys}
	}
	if c.rank == 0 {
		all := make([][]uint64, p)
		all[0] = keys
		for src := 1; src < p; src++ {
			all[src] = c.recvKeys(src)
		}
		return all
	}
	c.send(0, append([]uint64(nil), keys...))
	c.st.AllToAllBytes += keyWireBytes * uint64(len(keys))
	return nil
}

// agreeError is the control-plane barrier of the out-of-core sort: every
// rank contributes its local error (nil for none), rank 0 folds the
// contributions in ascending rank order and redistributes the first
// failure.  A rank whose storage operation failed can thereby abort the
// whole team at a schedule point instead of stranding its peers inside a
// later collective; every rank returns a non-nil error, its own first.
// Control traffic is deliberately unmetered — CommStats records the data
// plane the §V model prices, and the simulation needs no barrier at all.
func (c *rankComm) agreeError(local error) error {
	p := c.procs()
	if p == 1 {
		return local
	}
	msg := ""
	if local != nil {
		msg = local.Error()
		if msg == "" {
			// The empty string is the wire encoding of "no error"; an
			// error whose message is empty must still abort every rank.
			msg = "unspecified failure"
		}
	}
	if c.rank == 0 {
		for src := 1; src < p; src++ {
			if s := c.recvString(src); s != "" && msg == "" {
				msg = s
			}
		}
		for dst := 1; dst < p; dst++ {
			c.send(dst, msg)
		}
	} else {
		c.send(0, msg)
		msg = c.recvString(0)
	}
	switch {
	case local != nil:
		return local
	case msg != "":
		return fmt.Errorf("dist: peer rank failed: %s", msg)
	default:
		return nil
	}
}

// exchangeSegments performs the personalized all-to-all of the out-of-core
// sort's spilled-run routing: out[d] holds this rank's sorted run segments
// for rank d, in run order.  Segment boundaries survive the wire — the
// receiver's k-way merge needs each segment as its own sorted stream — and
// the inbound groups are returned in ascending source order, which
// combined with run order inside each group is global input order, the
// stability invariant.  Outbox ownership transfers to the receiver.  Only
// off-rank edges are metered, at edgeWireBytes each — segment framing adds
// no modeled bytes, so the record equals the in-memory exchange's for the
// same splitters.
func (c *rankComm) exchangeSegments(out [][]*edge.List) [][]*edge.List {
	p := c.procs()
	in := make([][]*edge.List, p)
	in[c.rank] = out[c.rank]
	for dst := 0; dst < p; dst++ {
		if dst == c.rank {
			continue
		}
		c.send(dst, out[dst])
		for _, seg := range out[dst] {
			c.st.AllToAllBytes += edgeWireBytes * uint64(seg.Len())
		}
	}
	for src := 0; src < p; src++ {
		if src == c.rank {
			continue
		}
		in[src] = c.recvSegments(src)
	}
	return in
}

// exchangeEdges performs the personalized all-to-all of kernel 1's bucket
// exchange and kernel 2's edge routing: out[d] is this rank's outbox for
// rank d.  It returns the p inbound lists in ascending source order (the
// self outbox in place), which is what keeps every destination's edge
// stream in global input order — the stability invariant both kernels
// rely on.  Outbox ownership transfers to the receiver; only off-rank
// edges are metered, at edgeWireBytes each.
func (c *rankComm) exchangeEdges(out []*edge.List) []*edge.List {
	p := c.procs()
	in := make([]*edge.List, p)
	in[c.rank] = out[c.rank]
	for dst := 0; dst < p; dst++ {
		if dst == c.rank {
			continue
		}
		c.send(dst, out[dst])
		c.st.AllToAllBytes += edgeWireBytes * uint64(out[dst].Len())
	}
	for src := 0; src < p; src++ {
		if src == c.rank {
			continue
		}
		in[src] = c.recvEdges(src)
	}
	return in
}
