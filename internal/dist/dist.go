package dist

// CommStats records the communication volume of a distributed run, broken
// down by collective kind.  Byte counts are wire bytes under a linear
// cost model: a broadcast of B payload bytes to p processors sends
// B·(p-1) bytes, an all-reduce gathers and redistributes for 2·B·(p-1),
// and all-to-all counts every byte that leaves its source processor.
// A single processor communicates nothing: at p = 1 every collective is
// a local no-op and the whole record stays zero, for Sort and Run alike.
//
// Both execution modes fill the same record: the simulation meters the
// formulas below, the goroutine runtime counts the payload bytes actually
// sent over its channels — and the two are equal by construction, because
// the fabric's collectives (collective.go) move exactly the bytes the
// formulas price (DESIGN.md §5).
type CommStats struct {
	// AllToAllBytes is the personalized-exchange volume: edge data (and
	// sort samples) routed between distinct processors.
	AllToAllBytes uint64
	// AllReduceCalls counts reduction collectives (in-degree vector,
	// rank-vector product, dangling-mass scalar).
	AllReduceCalls uint64
	// AllReduceBytes is the all-reduce wire volume, 2·payload·(p-1) per call.
	AllReduceBytes uint64
	// BroadcastCalls counts one-to-all collectives (splitters, the initial
	// rank vector).
	BroadcastCalls uint64
	// BroadcastBytes is the broadcast wire volume, payload·(p-1) per call.
	BroadcastBytes uint64
}

// Add accumulates another record — the driver totals the goroutine
// runtime's per-rank records with it (byte counts are sender-side, so the
// sum is the wire total), and the pipeline's dist variants total their
// kernels' records into one per-run trajectory entry.
func (s *CommStats) Add(o CommStats) {
	s.AllToAllBytes += o.AllToAllBytes
	s.AllReduceCalls += o.AllReduceCalls
	s.AllReduceBytes += o.AllReduceBytes
	s.BroadcastCalls += o.BroadcastCalls
	s.BroadcastBytes += o.BroadcastBytes
}

// Wire-cost formulas of the linear model, shared verbatim by the simulated
// collective layer (comm, below), the goroutine fabric (collective.go) and
// the closed form (PredictedCommBytes): every byte count in the package is
// derived here, which is what makes "measured equals predicted" an
// identity rather than an approximation.
const (
	// floatWireBytes is the wire size of one float64 element.
	floatWireBytes = 8
	// keyWireBytes is the wire size of one uint64 sort key.
	keyWireBytes = 8
	// edgeWireBytes is the wire size of one routed edge (two uint64
	// endpoints).
	edgeWireBytes = 16
)

// broadcastWire prices a one-to-all of payload bytes on p processors.
func broadcastWire(payload uint64, p int) uint64 { return payload * uint64(p-1) }

// allReduceWire prices an all-reduce of payload bytes on p processors:
// a gather to the root plus a redistribution, each payload·(p-1).
func allReduceWire(payload uint64, p int) uint64 { return 2 * payload * uint64(p-1) }

// comm is the simulated collective layer shared by Sort and Run: it
// performs the data movement between simulated processors in one address
// space and meters every byte the wire-cost formulas price.
type comm struct {
	p  int
	st CommStats
}

// allReduceSum element-wise sums the processors' equal-length partial
// vectors into out, leaving the reduced vector replicated on every rank
// (in the simulation, shared).  Partials are combined in rank order, the
// same association the goroutine fabric's rooted reduction produces.
func (c *comm) allReduceSum(out []float64, partials [][]float64) {
	for i := range out {
		out[i] = 0
	}
	for _, part := range partials {
		for i, v := range part {
			out[i] += v
		}
	}
	if c.p > 1 {
		c.st.AllReduceCalls++
		c.st.AllReduceBytes += allReduceWire(floatWireBytes*uint64(len(out)), c.p)
	}
}

// allReduceScalar sums one float64 contribution per rank.
func (c *comm) allReduceScalar(parts []float64) float64 {
	var s float64
	for _, v := range parts {
		s += v
	}
	if c.p > 1 {
		c.st.AllReduceCalls++
		c.st.AllReduceBytes += allReduceWire(floatWireBytes, c.p)
	}
	return s
}

// broadcastFloats meters the broadcast of an n-element float64 vector
// from rank 0 to every other rank.  The simulation shares the backing
// array; only the wire volume is recorded.
func (c *comm) broadcastFloats(n int) {
	if c.p > 1 {
		c.st.BroadcastCalls++
		c.st.BroadcastBytes += broadcastWire(floatWireBytes*uint64(n), c.p)
	}
}

// broadcastKeys meters the broadcast of a uint64 key slice (the sort's
// splitters).
func (c *comm) broadcastKeys(keys []uint64) []uint64 {
	if c.p > 1 {
		c.st.BroadcastCalls++
		c.st.BroadcastBytes += broadcastWire(keyWireBytes*uint64(len(keys)), c.p)
	}
	return keys
}

// blockBounds returns the half-open range [lo, hi) of the r-th of p
// contiguous blocks of n items: the canonical 1D block distribution used
// for both row ownership and input-chunk ownership.
func blockBounds(n, p, r int) (lo, hi int) {
	return r * n / p, (r + 1) * n / p
}

// blockOwner returns the rank whose blockBounds range contains index i.
func blockOwner(n, p int, i int) int {
	r := i * p / n
	if r >= p {
		r = p - 1
	}
	// i*p/n is only an estimate of the inverse of blockBounds' integer
	// floors; walk to the block that actually contains i.
	for r > 0 && i < r*n/p {
		r--
	}
	for r < p-1 && i >= (r+1)*n/p {
		r++
	}
	return r
}

// PredictedCommBytes is the closed-form model of Run's collective traffic
// (all-reduce plus broadcast wire bytes) for an n-vertex graph on p
// processors running the given number of PageRank iterations:
//
//	broadcast of the initial rank vector:   8·n·(p-1)
//	all-reduce of the in-degree vector:   2·8·n·(p-1)        (kernel 2)
//	matrix-mass and NNZ scalars:        2·2·8·(p-1)          (kernel 2)
//	per iteration, all-reduce of r·A:     2·8·n·(p-1)        (kernel 3)
//	per iteration, dangling-mass scalar:  2·8·(p-1)  if dangling
//
// The model equals the measured Comm.AllReduceBytes + Comm.BroadcastBytes
// of Run and RunMode exactly — not approximately — because simulation,
// goroutine fabric and closed form are all derived from the same
// collective schedule and wire-cost formulas; prreport asserts the
// equality on every run.  All-to-all edge routing is excluded: it belongs
// to kernel 1's cost (see perfmodel.ParallelKernel1) and depends on the
// data, not just n.
func PredictedCommBytes(n, p, iterations int, dangling bool) uint64 {
	if p <= 1 {
		return 0
	}
	vec := floatWireBytes * uint64(n)
	total := broadcastWire(vec, p)                // initial rank-vector broadcast
	total += allReduceWire(vec, p)                // in-degree all-reduce (filter)
	total += 2 * allReduceWire(floatWireBytes, p) // matrix-mass and NNZ scalars
	perIter := allReduceWire(vec, p)              // rank-vector product all-reduce
	if dangling {
		perIter += allReduceWire(floatWireBytes, p) // dangling-mass scalar
	}
	return total + uint64(iterations)*perIter
}
