// Package dist is a simulated distributed-memory runtime for the PageRank
// pipeline benchmark: it executes kernels 1-3 over p virtual processors
// with exact communication accounting, reproducing the parallel analysis
// of the paper's §V (distributed sample sort for kernel 1, 1D row-block
// decomposition with a rank-vector all-reduce per iteration for kernel 3).
//
// Every virtual processor owns a contiguous block of rows (vertices) and a
// contiguous chunk of the input edge list.  Data crossing processor
// boundaries is metered by the collective layer below; the closed-form
// model PredictedCommBytes reproduces the collective volume exactly, byte
// for byte, which the prreport command asserts.
//
// The simulation is deterministic and single-threaded: results are
// bit-for-bit independent of p for kernel 1 (Sort equals the serial stable
// radix sort exactly) and match the serial kernel-3 engines to ~1e-12 for
// every p (floating-point sums re-associate across rank boundaries, which
// is the only source of deviation).
package dist

// CommStats records the communication volume of a distributed run, broken
// down by collective kind.  Byte counts are wire bytes under a linear
// cost model: a broadcast of B payload bytes to p processors sends
// B·(p-1) bytes, an all-reduce gathers and redistributes for 2·B·(p-1),
// and all-to-all counts every byte that leaves its source processor.
// A single processor communicates nothing: at p = 1 every collective is
// a local no-op and the whole record stays zero, for Sort and Run alike.
type CommStats struct {
	// AllToAllBytes is the personalized-exchange volume: edge data (and
	// sort samples) routed between distinct processors.
	AllToAllBytes uint64
	// AllReduceCalls counts reduction collectives (in-degree vector,
	// rank-vector product, dangling-mass scalar).
	AllReduceCalls uint64
	// AllReduceBytes is the all-reduce wire volume, 2·payload·(p-1) per call.
	AllReduceBytes uint64
	// BroadcastCalls counts one-to-all collectives (splitters, the initial
	// rank vector).
	BroadcastCalls uint64
	// BroadcastBytes is the broadcast wire volume, payload·(p-1) per call.
	BroadcastBytes uint64
}

// comm is the collective layer shared by Sort and Run: it performs the
// actual data movement between virtual processors and meters every byte.
type comm struct {
	p  int
	st CommStats
}

// allReduceSum element-wise sums the processors' equal-length partial
// vectors into out, leaving the reduced vector replicated on every rank
// (in the simulation, shared).  Partials are combined in rank order, the
// same association a rooted reduction tree walked in rank order produces.
func (c *comm) allReduceSum(out []float64, partials [][]float64) {
	for i := range out {
		out[i] = 0
	}
	for _, part := range partials {
		for i, v := range part {
			out[i] += v
		}
	}
	if c.p > 1 {
		c.st.AllReduceCalls++
		c.st.AllReduceBytes += 2 * 8 * uint64(len(out)) * uint64(c.p-1)
	}
}

// allReduceScalar sums one float64 contribution per rank.
func (c *comm) allReduceScalar(parts []float64) float64 {
	var s float64
	for _, v := range parts {
		s += v
	}
	if c.p > 1 {
		c.st.AllReduceCalls++
		c.st.AllReduceBytes += 2 * 8 * uint64(c.p-1)
	}
	return s
}

// broadcastFloats meters the broadcast of an n-element float64 vector
// from rank 0 to every other rank.  The simulation shares the backing
// array; only the wire volume is recorded.
func (c *comm) broadcastFloats(n int) {
	if c.p > 1 {
		c.st.BroadcastCalls++
		c.st.BroadcastBytes += 8 * uint64(n) * uint64(c.p-1)
	}
}

// broadcastKeys meters the broadcast of a uint64 key slice (the sort's
// splitters).
func (c *comm) broadcastKeys(keys []uint64) []uint64 {
	if c.p > 1 {
		c.st.BroadcastCalls++
		c.st.BroadcastBytes += 8 * uint64(len(keys)) * uint64(c.p-1)
	}
	return keys
}

// blockBounds returns the half-open range [lo, hi) of the r-th of p
// contiguous blocks of n items: the canonical 1D block distribution used
// for both row ownership and input-chunk ownership.
func blockBounds(n, p, r int) (lo, hi int) {
	return r * n / p, (r + 1) * n / p
}

// blockOwner returns the rank whose blockBounds range contains index i.
func blockOwner(n, p int, i int) int {
	r := i * p / n
	if r >= p {
		r = p - 1
	}
	// i*p/n is only an estimate of the inverse of blockBounds' integer
	// floors; walk to the block that actually contains i.
	for r > 0 && i < r*n/p {
		r--
	}
	for r < p-1 && i >= (r+1)*n/p {
		r++
	}
	return r
}

// PredictedCommBytes is the closed-form model of Run's collective traffic
// (all-reduce plus broadcast wire bytes) for an n-vertex graph on p
// processors running the given number of PageRank iterations:
//
//	broadcast of the initial rank vector:   8·n·(p-1)
//	all-reduce of the in-degree vector:   2·8·n·(p-1)        (kernel 2)
//	matrix-mass and NNZ scalars:        2·2·8·(p-1)          (kernel 2)
//	per iteration, all-reduce of r·A:     2·8·n·(p-1)        (kernel 3)
//	per iteration, dangling-mass scalar:  2·8·(p-1)  if dangling
//
// The model equals the measured Comm.AllReduceBytes + Comm.BroadcastBytes
// of Run exactly — not approximately — because both are derived from the
// same collective schedule; prreport asserts the equality on every run.
// All-to-all edge routing is excluded: it belongs to kernel 1's cost
// (see perfmodel.ParallelKernel1) and depends on the data, not just n.
func PredictedCommBytes(n, p, iterations int, dangling bool) uint64 {
	if p <= 1 {
		return 0
	}
	links := uint64(p - 1)
	vec := 8 * uint64(n)
	total := vec * links         // initial rank-vector broadcast
	total += 2 * vec * links     // in-degree all-reduce (filter)
	total += 2 * 2 * 8 * links   // matrix-mass and NNZ scalar all-reduces
	perIter := 2 * vec * links   // rank-vector product all-reduce
	if dangling {
		perIter += 2 * 8 * links // dangling-mass scalar all-reduce
	}
	return total + uint64(iterations)*perIter
}
