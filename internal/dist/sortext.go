package dist

// Out-of-core distributed sample sort (kernel 1 beyond RAM): the paper's
// §IV requires kernel 1 to switch to an out-of-core algorithm when the
// edge vectors exceed memory, and its §V analysis makes the distributed
// sort the scaling bottleneck.  SortExternal combines the two regimes:
//
//   - run formation: each rank scans its contiguous input chunk through a
//     bounded buffer of RunEdges edges, stably radix-sorts each buffer
//     load, and spills it to the vfs.FS in the configured spill codec —
//     fixed-width binary by default (xsort.SpillRun — the same machinery
//     xsort.External uses);
//   - splitter selection: sampling, the gather at rank 0 and the splitter
//     broadcast are byte-for-byte the schedule of the in-memory Sort
//     (sampleChunk / chooseSplitters / destRank, shared helpers);
//   - spilled all-to-all: each rank streams its runs back, splits every
//     run at the splitters — a sorted run splits into sorted, contiguous
//     segments — and routes the segments to their bucket owners.  Only
//     off-rank edges are metered, 16 bytes each, so CommStats equals the
//     in-memory Sort's record for the same input exactly;
//   - bucket merge: each rank k-way merges its received segments, ordered
//     by (source rank, run index), with ties inside the merge breaking by
//     segment order.
//
// The output is bit-for-bit equal to xsort.RadixByU for every p and every
// RunEdges: a segment preserves the input order of its run slice (the run
// sort is stable), segments are merged in (rank, run) order — which is
// global input order — and bucket key ranges are disjoint, so the
// concatenated buckets form the same stable sort the serial radix kernel
// produces.
//
// This file holds the shared schedule steps and the simulated execution;
// rank.go executes the identical schedule on p concurrent goroutine ranks
// (sortExternalRank), with storage failures agreed through an unmetered
// control-plane barrier so no rank strands another inside a collective.

import (
	"context"
	"fmt"
	"io"

	"repro/internal/edge"
	"repro/internal/fastio"
	"repro/internal/vfs"
	"repro/internal/xsort"
)

// ExtSortConfig parameterizes the out-of-core distributed sort.
type ExtSortConfig struct {
	// FS receives the spilled run files; nil selects a private in-memory
	// store (useful for tests; a real deployment points this at disk).
	FS vfs.FS
	// RunEdges bounds the per-rank in-memory buffer, modeling each
	// processor's RAM: RunEdges·16 bytes is the run-formation working set.
	// Zero or negative selects xsort.DefaultRunEdges.
	RunEdges int
	// TmpPrefix names the run files; empty selects "tmp/distsort".  Runs
	// are removed on completion, success and failure alike.
	TmpPrefix string
	// Codec encodes the spilled run files; nil means fastio.Binary, the
	// fixed-width record with exact 16 B/edge accounting.  Sorted runs are
	// the Packed codec's best case.  The codec never touches the wire:
	// CommStats always meters 16 bytes per exchanged edge.
	Codec fastio.Codec
}

func (cfg ExtSortConfig) withDefaults() ExtSortConfig {
	if cfg.FS == nil {
		cfg.FS = vfs.NewMem()
	}
	if cfg.RunEdges <= 0 {
		cfg.RunEdges = xsort.DefaultRunEdges
	}
	if cfg.TmpPrefix == "" {
		cfg.TmpPrefix = "tmp/distsort"
	}
	if cfg.Codec == nil {
		cfg.Codec = fastio.Binary{}
	}
	return cfg
}

// ExtSortResult is the outcome of an out-of-core distributed sort.
type ExtSortResult struct {
	// Sorted is the globally sorted edge list, bit-for-bit equal to
	// xsort.RadixByU of the input (and to Sort's output) for every p and
	// every RunEdges.
	Sorted *edge.List
	// Comm records the sample gather, splitter broadcast and segment
	// all-to-all — equal to the in-memory Sort's record for the same
	// input, because splitters and chunk bounds are identical and spilling
	// moves no extra bytes over the wire.
	Comm CommStats
	// RunsPerRank is the number of sorted runs each rank spilled,
	// ceil(chunk/RunEdges) per rank.
	RunsPerRank []int
	// Spill is the storage traffic of the run spill and read-back, the
	// I/O volume perfmodel.ParallelKernel1's out-of-core term prices.
	// With the default Binary spill codec BytesWritten is exactly
	// 16·edges; Packed runs measure smaller.
	Spill vfs.IOStats
	// SpillCodec names the codec that encoded the run files.
	SpillCodec string
	// Wire is the measured socket traffic (ExecSocket only, else nil).
	Wire *WireStats
}

// extRunName names rank r's run file number run under prefix.
func extRunName(prefix string, codec fastio.Codec, rank, run int) string {
	return fmt.Sprintf("%s/r%03d-run%05d.%s", prefix, rank, run, codec.Name())
}

// extSpillRuns forms one rank's sorted runs from the chunk [lo, hi) of l:
// slices of at most runEdges edges, each stably radix-sorted in a bounded
// buffer and spilled to fs — the run-formation step, shared by both
// runtimes.  The input list is never mutated.  The returned names include
// any file a failed spill may have partially created, so RemoveRuns over
// them restores the FS.
func extSpillRuns(fs vfs.FS, prefix string, codec fastio.Codec, l *edge.List, rank, lo, hi, runEdges int) ([]string, error) {
	var names []string
	n := runEdges
	if hi-lo < n {
		n = hi - lo
	}
	buf := edge.NewList(n)
	for start := lo; start < hi; start += runEdges {
		end := start + runEdges
		if end > hi {
			end = hi
		}
		buf.Reset()
		buf.AppendList(l.Slice(start, end))
		name := extRunName(prefix, codec, rank, len(names))
		names = append(names, name)
		if err := xsort.SpillRun(fs, name, codec, buf, false); err != nil {
			return names, err
		}
	}
	return names, nil
}

// extPartitionRun streams one spilled run back from fs and splits it at
// the splitters into per-destination segments.  The run is sorted, so each
// segment is a sorted, contiguous piece of it — the unit the destination's
// k-way merge consumes.
func extPartitionRun(fs vfs.FS, name string, codec fastio.Codec, splitters []uint64, p int) ([]*edge.List, error) {
	const chunk = 8192 // edges per bulk read
	r, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	src := codec.NewReader(r)
	parts := make([]*edge.List, p)
	for d := range parts {
		parts[d] = edge.NewList(0)
	}
	buf := edge.NewList(0)
	for {
		buf.Reset()
		if _, rerr := fastio.ReadEdges(src, buf, chunk); rerr != nil {
			if rerr == io.EOF {
				return parts, nil
			}
			return nil, rerr
		}
		for i := 0; i < buf.Len(); i++ {
			parts[destRank(splitters, buf.U[i])].Append(buf.U[i], buf.V[i])
		}
	}
}

// SortExternal performs the out-of-core distributed sample sort of l by
// start vertex over p simulated processors, spilling per-rank sorted runs
// to cfg.FS and merging per-bucket run segments.  The input is not
// modified.
//
// Deprecated: use Execute with OpSortExternal.
func SortExternal(l *edge.List, p int, cfg ExtSortConfig) (*ExtSortResult, error) {
	return SortExternalMode(ExecSim, l, p, cfg)
}

// SortExternalMode executes the out-of-core distributed sample sort in
// the given execution mode.
//
// Deprecated: use Execute with OpSortExternal.
func SortExternalMode(mode ExecMode, l *edge.List, p int, cfg ExtSortConfig) (*ExtSortResult, error) {
	out, err := Execute(context.Background(), Spec{
		Config: Config{Mode: mode}, Op: OpSortExternal, Edges: l, Procs: p, Ext: cfg,
	})
	if err != nil {
		return nil, err
	}
	return out.ExtSort, nil
}

// executeSortExternal dispatches the out-of-core distributed sample sort.
// Validation, configuration defaulting, the empty-input result and the
// spill metering live here, once, so the two modes cannot drift on the
// input contract; both produce bit-for-bit identical output and identical
// CommStats and Spill records.
func executeSortExternal(ctx context.Context, spec Spec) (*ExtSortResult, error) {
	l, p := spec.Edges, spec.Procs
	if l == nil {
		return nil, fmt.Errorf("dist: SortExternal of nil edge list")
	}
	if p < 1 {
		return nil, fmt.Errorf("dist: SortExternal with p = %d, want >= 1", p)
	}
	cfg := spec.Ext.withDefaults()
	if l.Len() == 0 {
		return &ExtSortResult{Sorted: edge.NewList(0), RunsPerRank: make([]int, p)}, nil
	}
	if spec.Mode == ExecSocket {
		// Each worker process meters its own private spill store; the
		// coordinator sums the per-rank records instead of wrapping a
		// shared meter (socket.go).
		spec.Ext = cfg
		res, err := sortExternalSocket(ctx, spec)
		if err != nil {
			return nil, err
		}
		res.SpillCodec = cfg.Codec.Name()
		return res, nil
	}
	meter := vfs.NewMetered(cfg.FS)
	var res *ExtSortResult
	var err error
	switch spec.Mode {
	case ExecSim:
		res, err = sortExternalSim(ctx, l, p, cfg, meter)
	case ExecGoroutine:
		res, err = sortExternalGoroutine(ctx, l, p, cfg, meter)
	}
	if err != nil {
		return nil, err
	}
	res.Spill = meter.Stats()
	res.SpillCodec = cfg.Codec.Name()
	return res, nil
}

// sortExternalSim is the simulated execution of the out-of-core sort's
// schedule; inputs were validated and defaulted by executeSortExternal.
func sortExternalSim(ctx context.Context, l *edge.List, p int, cfg ExtSortConfig, fs vfs.FS) (res *ExtSortResult, err error) {
	m := l.Len()
	c := &comm{p: p}

	// Phase 1: each rank forms its bounded sorted runs.  Whatever happens
	// below, the spilled runs are gone when the sort returns.
	names := make([][]string, p)
	defer func() {
		for _, ns := range names {
			if rmErr := xsort.RemoveRuns(fs, ns); rmErr != nil && err == nil {
				res, err = nil, rmErr
			}
		}
	}()
	runsPerRank := make([]int, p)
	for r := 0; r < p; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lo, hi := blockBounds(m, p, r)
		ns, spillErr := extSpillRuns(fs, cfg.TmpPrefix, cfg.Codec, l, r, lo, hi, cfg.RunEdges)
		names[r] = ns
		if spillErr != nil {
			return nil, spillErr
		}
		runsPerRank[r] = len(ns)
	}

	// Phase 2: samples are gathered at rank 0, which selects the
	// splitters and broadcasts them — the identical steps the in-memory
	// Sort executes, so buckets (and the all-to-all volume) match it
	// exactly.
	splitters := c.broadcastKeys(chooseSplitters(gatherSamples(c, l), p))

	// Phase 3: stream every run back, split it at the splitters, and
	// route the segments to their bucket owners.  Iterating sources in
	// rank order and runs in run order delivers each bucket's segments in
	// global input order — the stability invariant.
	segs := make([][]*edge.List, p)
	for src := 0; src < p; src++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, name := range names[src] {
			parts, perr := extPartitionRun(fs, name, cfg.Codec, splitters, p)
			if perr != nil {
				return nil, perr
			}
			for d, part := range parts {
				if part.Len() == 0 {
					continue
				}
				segs[d] = append(segs[d], part)
				if d != src {
					c.st.AllToAllBytes += edgeWireBytes * uint64(part.Len())
				}
			}
		}
	}

	// Phase 4: per-bucket k-way merges, concatenated in rank order.
	out := edge.NewList(m)
	for d := 0; d < p; d++ {
		xsort.MergeLists(segs[d], out, false)
	}
	return &ExtSortResult{Sorted: out, Comm: c.st, RunsPerRank: runsPerRank}, nil
}
