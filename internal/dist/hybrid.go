package dist

// Hybrid intra-rank parallelism: the MPI+OpenMP-style second level of the
// paper's decomposition.  Config.Workers spins a persistent team of worker
// goroutines inside each rank for the local kernel-3 block product and the
// kernel-1 bucket partitioning, in both execution modes.  The design
// constraint is DESIGN.md §7: results must be bit-for-bit invariant in
// Workers (and therefore still bit-for-bit equal between the modes and to
// the serial baseline), and the steady-state iteration must not allocate.
//
// Both properties come from the same trick: instead of giving each worker
// a private full-length accumulator and merging partial sums (which would
// re-associate the floating-point reduction every time Workers changes),
// the rank transposes its block once into a compressed sparse column view
// (blockCSC) and workers gather disjoint output ranges.  Each output
// element is then computed by exactly one worker, by the exact addition
// sequence of the serial scatter product — so there is nothing to reduce
// and nothing that depends on the worker count.

import (
	"sort"
	"sync"

	"repro/internal/edge"
	"repro/internal/workteam"
)

// Config configures the distributed runtime beyond the processor count.
// The zero value is the single-threaded simulation with serial ranks —
// exactly the pre-hybrid behavior.
type Config struct {
	// Mode selects the execution: the single-threaded simulation or the
	// concurrent goroutine ranks.
	Mode ExecMode
	// Workers is the intra-rank worker-goroutine count for each rank's
	// local compute (the kernel-3 block product and the kernel-1 bucket
	// partitioning); <= 1 keeps local compute serial.  Results are
	// bit-for-bit invariant in Workers in both modes.
	Workers int
}

// workers resolves the effective intra-rank worker count.
func (c Config) workers() int {
	if c.Workers < 1 {
		return 1
	}
	return c.Workers
}

// blockCSC is the transpose-once view of a rank's row block: the stored
// entries regrouped by column, with empty columns elided so the index
// costs O(nnz) — not the O(n) per rank the rectangular block layout
// (block.go) exists to avoid.  Within a column, entries appear in
// ascending local row order, which makes the gather of one column perform
// the exact addition sequence the serial scatter (block.vxm) performs for
// that output element.
type blockCSC struct {
	// lo is the owned global row offset: global row = lo + rowIdx.
	lo int
	// n is the global matrix dimension (the output length).
	n int
	// cols lists the present global columns, ascending.
	cols []uint32
	// colPtr delimits cols[i]'s entries: [colPtr[i], colPtr[i+1]).
	colPtr []int64
	// rowIdx and val hold each entry's local row and value.
	rowIdx []uint32
	val    []float64
}

// csc builds the transposed view of the block.  One transient full-length
// cursor array is used during construction; the result holds only
// O(nnz)-sized storage.
func (b *block) csc() *blockCSC {
	nnz := len(b.col)
	cursor := make([]int64, b.n)
	for _, c := range b.col {
		cursor[c]++
	}
	ncols := 0
	for _, cnt := range cursor {
		if cnt > 0 {
			ncols++
		}
	}
	t := &blockCSC{
		lo:     b.lo,
		n:      b.n,
		cols:   make([]uint32, ncols),
		colPtr: make([]int64, ncols+1),
		rowIdx: make([]uint32, nnz),
		val:    make([]float64, nnz),
	}
	ci := 0
	var w int64
	for c := 0; c < b.n; c++ {
		cnt := cursor[c]
		if cnt == 0 {
			continue
		}
		t.cols[ci] = uint32(c)
		t.colPtr[ci] = w
		cursor[c] = w // becomes the column's write cursor
		w += cnt
		ci++
	}
	t.colPtr[ci] = w
	// Scatter row-major entries into their columns; scanning rows in
	// ascending order leaves every column's entries in ascending local
	// row order.
	for i := 0; i < b.rows(); i++ {
		for k := b.rowPtr[i]; k < b.rowPtr[i+1]; k++ {
			c := b.col[k]
			p := cursor[c]
			t.rowIdx[p] = uint32(i)
			t.val[p] = b.val[k]
			cursor[c] = p + 1
		}
	}
	return t
}

// gatherRange computes out[jlo:jhi] of the block's partial product r·A:
// zeroes for absent columns, and for each present column cols[clo:chi]
// the gathered sum over its entries in ascending local row order,
// skipping zero r entries exactly as block.vxm does.  The addition
// sequence per output element is therefore identical to the serial
// scatter's, which is what makes the hybrid product bit-for-bit equal to
// the serial baseline for every worker partition.
func (t *blockCSC) gatherRange(out, r []float64, jlo, jhi, clo, chi int) {
	j := jlo
	for ci := clo; ci < chi; ci++ {
		c := int(t.cols[ci])
		for ; j < c; j++ {
			out[j] = 0
		}
		var s float64
		for k := t.colPtr[ci]; k < t.colPtr[ci+1]; k++ {
			ri := r[t.lo+int(t.rowIdx[k])]
			if ri == 0 {
				continue
			}
			s += ri * t.val[k]
		}
		out[c] = s
		j = c + 1
	}
	for ; j < jhi; j++ {
		out[j] = 0
	}
}

// hybridSpMV is one rank's persistent intra-rank worker team for the
// kernel-3 block product: a workteam.Team whose workers own disjoint,
// entry-balanced output ranges fixed at construction, so a product is
// one signal/join round and steady-state iterations allocate nothing.
type hybridSpMV struct {
	t *blockCSC
	// jb and cb are the per-worker output and cols-index bounds
	// (len workers+1): worker w owns out[jb[w]:jb[w+1]] and the present
	// columns cols[cb[w]:cb[w+1]].
	jb, cb []int
	out, r []float64
	team   *workteam.Team
}

// newHybridSpMV transposes the block and spawns the team; callers must
// close it when iteration ends.  workers must be >= 2 (workers <= 1 stays
// on the serial block.vxm path).
func newHybridSpMV(blk *block, workers int) *hybridSpMV {
	t := blk.csc()
	h := &hybridSpMV{
		t:  t,
		jb: make([]int, workers+1),
		cb: make([]int, workers+1),
	}
	// Entry-balanced split: worker w's columns start at the first present
	// column holding entry index >= w·nnz/workers.  Boundaries are
	// monotone, so ranges are disjoint and cover everything; a worker may
	// legitimately own an empty range on tiny or degenerate blocks.
	nnz := int64(len(t.val))
	h.jb[workers] = t.n
	h.cb[workers] = len(t.cols)
	for w := 1; w < workers; w++ {
		target := int64(w) * nnz / int64(workers)
		ci := sort.Search(len(t.cols), func(i int) bool { return t.colPtr[i] >= target })
		h.cb[w] = ci
		if ci < len(t.cols) {
			h.jb[w] = int(t.cols[ci])
		} else {
			h.jb[w] = t.n
		}
	}
	h.team = workteam.New(workers, func(w int) {
		h.t.gatherRange(h.out, h.r, h.jb[w], h.jb[w+1], h.cb[w], h.cb[w+1])
	})
	return h
}

// vxm computes the rank's partial product out = r·A across the team
// (workteam.Run's happens-before edges keep the workers from racing the
// caller on out/r).
func (h *hybridSpMV) vxm(out, r []float64) {
	h.out, h.r = out, r
	h.team.Run()
}

// close terminates the worker goroutines; the team must not be used
// afterwards.
func (h *hybridSpMV) close() { h.team.Close() }

// spmvOf builds the rank's step implementation: the hybrid team when
// workers > 1 (close the returned team), the serial scatter otherwise.
func spmvOf(st *rankState, workers int) (func(out, r []float64), *hybridSpMV) {
	if workers <= 1 {
		return st.blk.vxm, nil
	}
	h := newHybridSpMV(st.blk, workers)
	return h.vxm, h
}

// partitionChunk splits the input chunk [lo, hi) into p destination
// buckets by splitter key range — the local half of kernel 1's all-to-all,
// shared by both runtimes.  With workers > 1 the chunk is scanned by
// contiguous sub-chunks concurrently and each destination's per-worker
// parts are concatenated in worker order, which is sub-chunk order, which
// is input order: the bucket contents and their stability-critical
// ordering are exactly the serial scan's for every worker count.
func partitionChunk(l *edge.List, lo, hi int, splitters []uint64, p, workers int) []*edge.List {
	out := make([]*edge.List, p)
	if workers <= 1 || hi-lo < 2*workers {
		for d := range out {
			out[d] = edge.NewList(0)
		}
		for i := lo; i < hi; i++ {
			out[destRank(splitters, l.U[i])].Append(l.U[i], l.V[i])
		}
		return out
	}
	parts := make([][]*edge.List, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wlo := lo + w*(hi-lo)/workers
		whi := lo + (w+1)*(hi-lo)/workers
		parts[w] = make([]*edge.List, p)
		for d := range parts[w] {
			parts[w][d] = edge.NewList(0)
		}
		wg.Add(1)
		//prlint:allow determinism -- partition workers own disjoint index ranges and join on wg; output order is fixed by the range split
		go func(w, wlo, whi int) {
			defer wg.Done()
			mine := parts[w]
			for i := wlo; i < whi; i++ {
				mine[destRank(splitters, l.U[i])].Append(l.U[i], l.V[i])
			}
		}(w, wlo, whi)
	}
	wg.Wait()
	for d := 0; d < p; d++ {
		n := 0
		for w := 0; w < workers; w++ {
			n += parts[w][d].Len()
		}
		out[d] = edge.NewList(n)
		for w := 0; w < workers; w++ {
			out[d].AppendList(parts[w][d])
		}
	}
	return out
}
