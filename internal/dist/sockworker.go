package dist

// The socket worker: one OS process executing one rank of a socket
// fabric.  JoinFabric performs the handshake of DESIGN.md §13 — join
// the coordinator, build the rank mesh, receive the job — then runs the
// SAME rank programs the goroutine runtime spawns (buildRank,
// iterateRank, sortRank, sortExternalRank) over a sockFabric, and
// reports a wireOutcome.  Because the programs, the collectives and the
// metering are shared, the socket mode's results and CommStats equal
// the other modes' bit for bit by construction.
//
// Two ways into this file: the prrankd binary calls JoinFabric
// explicitly, and the init hook below turns ANY dist-importing binary
// into a worker when the coordinator's spawn environment is present —
// which is how the coordinator self-spawns workers out of its own
// executable (prbench, a test binary, a server) without per-binary
// cooperation.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/ckpt"
	"repro/internal/dist/fabric"
	"repro/internal/vfs"
)

const (
	// envJoin carries "network|address" of the coordinator to join; its
	// presence switches the process into worker mode at init.
	envJoin = "PRRANKD_JOIN"
	// envFabricID carries the fabric id the coordinator expects.
	envFabricID = "PRRANKD_FABRIC"
)

// init is the self-spawn hook: a process launched with the coordinator's
// environment joins the fabric, serves one rank job, and exits without
// ever reaching the binary's own main (or a test binary's test driver).
func init() {
	spec := os.Getenv(envJoin)
	if spec == "" {
		return
	}
	network, addr, ok := strings.Cut(spec, "|")
	if !ok {
		fmt.Fprintf(os.Stderr, "prrankd: malformed %s=%q, want network|address\n", envJoin, spec)
		os.Exit(2)
	}
	if err := JoinFabric(context.Background(), network, addr, os.Getenv(envFabricID)); err != nil {
		fmt.Fprintln(os.Stderr, "prrankd:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// JoinFabric joins the socket fabric whose coordinator listens at addr
// ("unix" socket path or "tcp" host:port) as one worker rank: it
// handshakes, builds its share of the rank mesh, executes the one job
// the coordinator sends, reports the outcome, and returns.  fabricID
// must match the coordinator's (Spec.Socket.FabricID for an external
// fabric).  A rank-program failure is reported through the outcome, not
// the returned error, which covers only transport and protocol
// failures.  Cancelling ctx aborts the worker's fabric and unwinds the
// rank at its next cancellation point.
func JoinFabric(ctx context.Context, network, addr, fabricID string) error {
	if network == "" {
		network = "unix"
	}
	var meshStats, ctrlStats fabric.Stats

	// The worker's own mesh listener must exist before it announces its
	// address in the join; higher ranks may dial the moment the
	// coordinator forwards it.
	meshAddr := ""
	switch network {
	case "unix":
		dir, err := os.MkdirTemp("", "prrankd")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		meshAddr = filepath.Join(dir, "mesh.sock")
	case "tcp":
		meshAddr = "127.0.0.1:0"
	default:
		return fmt.Errorf("dist: unknown fabric network %q (want unix or tcp)", network)
	}
	meshLn, err := fabric.Listen(network, meshAddr)
	if err != nil {
		return err
	}
	defer meshLn.Close()
	meshAddr = meshLn.Addr().String()

	ctrl, err := fabric.Dial(network, addr, 0, &ctrlStats)
	if err != nil {
		return err
	}
	defer ctrl.Close()
	err = ctrl.WriteControl(fabric.FrameJoin, 0, 0, fabric.AppendJoin(nil, fabric.Join{
		FabricID: fabricID, MeshNetwork: network, MeshAddr: meshAddr,
	}))
	if err != nil {
		return err
	}
	h, payload, err := ctrl.ReadFrame()
	if err != nil {
		return err
	}
	switch h.Type {
	case fabric.FrameWelcome:
	case fabric.FrameReject:
		return fmt.Errorf("dist: fabric rejected worker: %s", payload)
	default:
		return fmt.Errorf("dist: unexpected %v frame in place of welcome", h.Type)
	}
	w, err := fabric.ParseWelcome(payload)
	if err != nil {
		return err
	}
	rank, p := w.Rank, w.Procs

	// Mesh construction: one connection per unordered rank pair — this
	// rank dials every lower rank and accepts one connection from every
	// higher rank, validating each hello against the fabric id.
	peers := make([]*fabric.Link, p)
	closeMesh := func() {
		for _, l := range peers {
			if l != nil {
				l.Close()
			}
		}
	}
	for s := 0; s < rank; s++ {
		ln, err := fabric.Dial(w.MeshNetwork, w.MeshAddrs[s], 0, &meshStats)
		if err != nil {
			closeMesh()
			return fmt.Errorf("dist: rank %d dialing rank %d: %w", rank, s, err)
		}
		peers[s] = ln
		err = ln.WriteControl(fabric.FrameMeshHello, rank, s, fabric.AppendMeshHello(nil, fabric.MeshHello{
			FabricID: fabricID, Src: rank, Dst: s,
		}))
		if err != nil {
			closeMesh()
			return err
		}
	}
	for need := p - 1 - rank; need > 0; need-- {
		conn, err := meshLn.Accept()
		if err != nil {
			closeMesh()
			return err
		}
		ln := fabric.NewLink(conn, 0, &meshStats)
		hh, hp, err := ln.ReadFrame()
		if err != nil || hh.Type != fabric.FrameMeshHello {
			ln.Close()
			closeMesh()
			return fmt.Errorf("dist: rank %d: bad mesh hello (%v)", rank, err)
		}
		mh, err := fabric.ParseMeshHello(hp)
		if err != nil || mh.FabricID != fabricID || mh.Dst != rank ||
			mh.Src <= rank || mh.Src >= p || peers[mh.Src] != nil {
			ln.Close()
			closeMesh()
			return fmt.Errorf("dist: rank %d: invalid mesh hello", rank)
		}
		peers[mh.Src] = ln
	}
	meshLn.Close()

	if err := ctrl.WriteControl(fabric.FrameReady, rank, rank, nil); err != nil {
		closeMesh()
		return err
	}
	h, payload, err = ctrl.ReadFrame()
	if err != nil {
		closeMesh()
		return err
	}
	if h.Type != fabric.FrameJob {
		closeMesh()
		return fmt.Errorf("dist: unexpected %v frame in place of job", h.Type)
	}
	job := new(wireJob)
	if err := decodeGob(payload, job); err != nil {
		closeMesh()
		return err
	}

	f := newSockFabric(rank, p, peers)
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The control reader: routes checkpoint acks to the rank program and
	// converts a lost coordinator into a local abort — which is also how
	// a cancelled or failed run reaches a worker that is not inside a
	// mesh collective (p = 1 especially).  It exits when the control
	// connection dies, coordinator- or worker-initiated.
	acks := make(chan string, 1)
	ctrlDone := make(chan struct{})
	//prlint:allow determinism -- control-link reader: routes acks and teardown only, joins via ctrlDone before JoinFabric returns
	go func() {
		defer close(ctrlDone)
		for {
			ah, ap, aerr := ctrl.ReadFrame()
			if aerr != nil {
				cancel()
				f.abort()
				return
			}
			if ah.Type == fabric.FrameCkptAck {
				select {
				case acks <- string(ap):
				case <-wctx.Done():
				}
			}
		}
	}()

	out := runWorkerRank(wctx, f, ctrl, rank, job, acks)
	if out.ErrKind != errKindNone {
		// Mirror spawnRanks' teardown: a failed rank brings the fabric
		// down so no peer waits for it.
		f.abort()
	}
	f.shutdown()
	out.Wire = wireCounters(meshStats.Snapshot())
	buf, err := encodeGob(out)
	if err != nil {
		return err
	}
	if err := ctrl.WriteControl(fabric.FrameOutcome, rank, rank, buf); err != nil {
		if out.ErrKind == errKindAborted {
			// The coordinator already tore the control link down — it
			// deliberately unwound this worker and is not waiting for the
			// outcome.  Exiting quietly keeps induced teardown noise out
			// of the inherited stderr.
			return nil
		}
		return err
	}
	ctrl.Close()
	<-ctrlDone
	return nil
}

// runWorkerRank executes the rank program for one job, mirroring the
// per-rank body of spawnRanks: the fabricDown panic becomes the aborted
// outcome, wall clock is reported, and every failure classifies into a
// wire error kind.
func runWorkerRank(ctx context.Context, f *sockFabric, ctrl *fabric.Link, rank int, job *wireJob, acks <-chan string) *wireOutcome {
	out := &wireOutcome{Rank: rank}
	c := newRankComm(f, rank)
	//prlint:allow determinism -- wall-clock feeds only the reported per-rank timing, never the kernel results
	start := time.Now()
	err := func() (err error) {
		defer func() {
			if e := recover(); e != nil {
				if _, down := e.(fabricDown); down {
					err = errRunAborted
					return
				}
				panic(e)
			}
		}()
		return workerProgram(ctx, c, ctrl, rank, job, acks, out)
	}()
	out.ErrKind, out.ErrMsg = errToKind(err)
	out.Comm = c.st
	//prlint:allow determinism -- wall-clock feeds only the reported per-rank timing, never the kernel results
	out.Seconds = time.Since(start).Seconds()
	return out
}

// workerProgram dispatches the shared rank program of the job's op and
// records its results on out.
func workerProgram(ctx context.Context, c *rankComm, ctrl *fabric.Link, rank int, job *wireJob, acks <-chan string, out *wireOutcome) error {
	l := edgesOf(job.EdgesU, job.EdgesV)
	switch Op(job.Op) {
	case OpSort:
		bucket := sortRank(c, l, job.Workers)
		out.EdgesU, out.EdgesV = bucket.U, bucket.V
		return nil

	case OpSortExternal:
		codec, err := codecByName(job.Ext.CodecName)
		if err != nil {
			return err
		}
		// Each worker spills to its own private in-memory store; the run
		// files are rank-private temporaries removed before the rank
		// returns, so only the metered counters are observable.
		fs := vfs.NewMetered(vfs.NewMem())
		bucket, runs, err := sortExternalRank(c, l, fs, job.Ext.TmpPrefix, codec, job.Ext.RunEdges)
		out.Runs = runs
		out.Spill = fs.Stats()
		if err != nil {
			return err
		}
		out.EdgesU, out.EdgesV = bucket.U, bucket.V
		return nil

	case OpBuildFiltered:
		st, mass, nnz := buildRank(c, l, job.N)
		out.Block = stateToWire(st)
		out.Mass, out.NNZ = mass, nnz
		return nil

	case OpRun, OpRunMatrix:
		opt := job.Opt.options()
		if job.ReportProgress && rank == 0 {
			// Relay rank 0's per-iteration progress to the coordinator,
			// which invokes the caller's (already resume-offset) hook.  A
			// failed relay is ignored here: a dead control link is about
			// to abort the run through the control reader anyway.
			opt.Progress = func(it int) {
				_ = ctrl.WriteControl(fabric.FrameProgress, rank, rank,
					binary.LittleEndian.AppendUint64(nil, uint64(it)))
			}
		}
		ck := workerCkpt(ctx, job, ctrl, rank, acks)
		var st *rankState
		n := job.N
		if Op(job.Op) == OpRunMatrix {
			a := job.Matrix.csr()
			n = a.N
			st = splitMatrix(a, job.Procs)[rank]
			out.NNZ = a.NNZ()
		} else {
			var mass float64
			st, mass, out.NNZ = buildRank(c, l, n)
			out.Mass = mass
		}
		rankVec, iters, err := iterateRank(ctx, c, st, n, opt, job.Workers, ck)
		if err != nil {
			return err
		}
		out.Iters = iters
		if rank == 0 {
			out.RankVec = rankVec
		}
		return nil
	}
	return fmt.Errorf("dist: unknown op %d in job", job.Op)
}

// workerCkpt builds the worker-side checkpoint/fault runtime: the same
// ckptRun that drives afterRank everywhere, with storage relayed to the
// coordinator — chunk and commit frames answered by acks — and
// FaultPlan.Hard wired to a genuine process death.
func workerCkpt(ctx context.Context, job *wireJob, ctrl *fabric.Link, rank int, acks <-chan string) *ckptRun {
	if !job.Ckpt.On && job.Fault == nil {
		return nil
	}
	relay := func(t fabric.FrameType, payload []byte) error {
		if err := ctrl.WriteControl(t, rank, rank, payload); err != nil {
			return err
		}
		select {
		case msg := <-acks:
			if msg != "" {
				return errors.New(msg)
			}
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	ck := &ckptRun{
		spec:      CheckpointSpec{Every: job.Ckpt.Every},
		fault:     job.Fault,
		n:         job.Ckpt.N,
		procs:     int64(job.Procs),
		damping:   job.Ckpt.Damping,
		base:      job.Ckpt.Base,
		relay:     job.Ckpt.On,
		committed: func(int64) {}, // the coordinator records commits as it writes them
		hardExit:  func() { os.Exit(3) },
	}
	if job.Ckpt.On {
		ck.putChunk = func(chunk *ckpt.Chunk) error {
			var buf bytes.Buffer
			if err := ckpt.Encode(&buf, chunk); err != nil {
				return err
			}
			return relay(fabric.FrameCkptChunk, buf.Bytes())
		}
		ck.putCommit = func(g int64) error {
			return relay(fabric.FrameCkptCommit, binary.LittleEndian.AppendUint64(nil, uint64(g)))
		}
	}
	return ck
}
