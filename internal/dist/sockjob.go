package dist

// The socket runtime's control-plane job and outcome payloads: what the
// coordinator ships to a worker process (wireJob) and what the worker
// ships back (wireOutcome).  Both travel gob-encoded inside control
// frames — the handshake has already proven both ends speak the same
// wire version, and control traffic is unmetered (DESIGN.md §5), so the
// job's full edge list mirrors the goroutine mode's closures capturing
// the full input without touching CommStats.

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"

	"repro/internal/dist/fabric"
	"repro/internal/edge"
	"repro/internal/fastio"
	"repro/internal/pagerank"
	"repro/internal/sparse"
	"repro/internal/vfs"
)

// WireStats reports the socket fabric's measured bytes, summed over the
// workers' mesh links — the actual network the comm model is tested
// against.  DataBytes are the payload bytes of the metered collectives
// and equal the run's CommStats total identically (the typed frame
// encodings cost exactly the wire-cost formulas); ControlBytes are the
// unmetered error-agreement strings; OverheadBytes the frame headers
// and segment boundaries.
type WireStats struct {
	DataBytes     uint64
	ControlBytes  uint64
	OverheadBytes uint64
	Frames        uint64
}

// Add folds o into w.
func (w *WireStats) Add(o WireStats) {
	w.DataBytes += o.DataBytes
	w.ControlBytes += o.ControlBytes
	w.OverheadBytes += o.OverheadBytes
	w.Frames += o.Frames
}

// wireCounters converts a fabric snapshot.
func wireCounters(c fabric.Counters) WireStats {
	return WireStats{DataBytes: c.DataBytes, ControlBytes: c.ControlBytes,
		OverheadBytes: c.OverheadBytes, Frames: c.Frames}
}

// wireJob is one worker's marching orders: the op, the shared inputs,
// and the per-op knobs — everything a rank program needs that the
// goroutine mode's closures would have captured.
type wireJob struct {
	Op      int
	Procs   int
	N       int
	Workers int

	// EdgesU/EdgesV carry the full input edge list (every op except
	// run-matrix); every rank receives the whole list and works on its
	// blockBounds chunk, exactly like a goroutine rank.
	EdgesU, EdgesV []uint64

	// Matrix is the built input (run-matrix only).
	Matrix *wireMatrix

	Opt wireOpt
	// ReportProgress asks rank 0 to stream per-iteration progress
	// frames back to the coordinator.
	ReportProgress bool

	// Ext carries the out-of-core sort's knobs.
	Ext wireExt

	// Ckpt configures the worker-side checkpoint hook; chunk and commit
	// writes are relayed to the coordinator's storage.
	Ckpt wireCkpt
	// Fault is the planned rank failure, if any.
	Fault *FaultPlan
}

// wireMatrix is sparse.CSR flattened for gob.
type wireMatrix struct {
	N      int
	RowPtr []int64
	Col    []uint32
	Val    []float64
}

func matrixToWire(a *sparse.CSR) *wireMatrix {
	return &wireMatrix{N: a.N, RowPtr: a.RowPtr, Col: a.Col, Val: a.Val}
}

func (m *wireMatrix) csr() *sparse.CSR {
	return &sparse.CSR{N: m.N, RowPtr: m.RowPtr, Col: m.Col, Val: m.Val}
}

// wireOpt is pagerank.Options minus the function fields, which cannot
// cross a process boundary (Progress is relayed by frame instead).
type wireOpt struct {
	Damping       float64
	Iterations    int
	Seed          uint64
	Dangling      bool
	Policy        int
	Teleport      []float64
	Tolerance     float64
	EngineWorkers int
	InitialRank   []float64
}

func optToWire(o pagerank.Options) wireOpt {
	return wireOpt{
		Damping: o.Damping, Iterations: o.Iterations, Seed: o.Seed,
		Dangling: o.Dangling, Policy: int(o.Policy), Teleport: o.Teleport,
		Tolerance: o.Tolerance, EngineWorkers: o.Workers, InitialRank: o.InitialRank,
	}
}

func (w wireOpt) options() pagerank.Options {
	return pagerank.Options{
		Damping: w.Damping, Iterations: w.Iterations, Seed: w.Seed,
		Dangling: w.Dangling, Policy: pagerank.DanglingPolicy(w.Policy),
		Teleport: w.Teleport, Tolerance: w.Tolerance, Workers: w.EngineWorkers,
		InitialRank: w.InitialRank,
	}
}

// wireExt is ExtSortConfig minus the FS (each worker spills to its own
// private in-memory store — run files are rank-private temporaries,
// removed before the rank returns, so the backing store is
// unobservable beyond the metered spill counters the outcome reports).
type wireExt struct {
	RunEdges  int
	TmpPrefix string
	CodecName string
}

// codecByName resolves a spill codec shipped by name; the names are the
// codecs' own Name() strings.
func codecByName(name string) (fastio.Codec, error) {
	switch name {
	case "", fastio.Binary{}.Name():
		return fastio.Binary{}, nil
	case fastio.Packed{}.Name():
		return fastio.Packed{}, nil
	case fastio.TSV{}.Name():
		return fastio.TSV{}, nil
	case fastio.NaiveTSV{}.Name():
		return fastio.NaiveTSV{}, nil
	default:
		return nil, fmt.Errorf("dist: unknown spill codec %q", name)
	}
}

// wireCkpt parameterizes the worker-side checkpoint hook: the epoch
// schedule and the chunk geometry, with all storage relayed to the
// coordinator (checkpoint.go's relay seam).
type wireCkpt struct {
	On      bool
	Every   int
	N       int64
	Damping float64
	Base    int64
}

// Worker outcome error kinds: how a rank program's error crosses the
// process boundary without losing its errors.Is identity.
const (
	errKindNone = iota
	// errKindAborted: the fabric came down underneath the rank (a peer
	// failed, or the run was cancelled) — the socket spelling of
	// errRunAborted.
	errKindAborted
	// errKindFault: the rank's planned FaultPlan failure fired
	// (ErrFaultInjected).
	errKindFault
	// errKindOther: any other failure, carried by message.
	errKindOther
)

// wireOutcome is one worker's result report: the fields of rankOutcome
// that survive the process boundary, plus the worker's communication,
// timing, wire and spill records.
type wireOutcome struct {
	Rank    int
	ErrKind int
	ErrMsg  string

	Comm    CommStats
	Seconds float64
	Wire    WireStats

	// RankVec is the final rank vector (rank 0 only; all replicas are
	// byte-identical, so shipping one saves p-1 copies of control
	// traffic).
	RankVec []float64
	Iters   int
	Mass    float64
	NNZ     int

	// Block is the rank's built block state (build-filtered only).
	Block *wireBlock

	// EdgesU/EdgesV is the rank's sorted bucket (sort ops only).
	EdgesU, EdgesV []uint64
	// Runs is the rank's spilled-run count (out-of-core sort only).
	Runs int
	// Spill is the rank's private spill-store traffic (out-of-core sort
	// only); the coordinator sums the per-rank records.
	Spill vfs.IOStats
}

// wireBlock is one rank's block plus its dangling rows, flattened.
type wireBlock struct {
	Lo, Hi, N    int
	RowPtr       []int64
	Col          []uint32
	Val          []float64
	DanglingRows []int
}

func stateToWire(st *rankState) *wireBlock {
	return &wireBlock{
		Lo: st.blk.lo, Hi: st.blk.hi, N: st.blk.n,
		RowPtr: st.blk.rowPtr, Col: st.blk.col, Val: st.blk.val,
		DanglingRows: st.danglingRows,
	}
}

func (w *wireBlock) state() *rankState {
	return &rankState{
		blk:          &block{lo: w.Lo, hi: w.Hi, n: w.N, rowPtr: w.RowPtr, col: w.Col, val: w.Val},
		danglingRows: w.DanglingRows,
	}
}

// outcomeErr reconstructs a worker error on the coordinator, preserving
// errors.Is against ErrFaultInjected and the aborted sentinel.
func (o *wireOutcome) outcomeErr() error {
	switch o.ErrKind {
	case errKindNone:
		return nil
	case errKindAborted:
		return errRunAborted
	case errKindFault:
		return ErrFaultInjected
	default:
		return fmt.Errorf("dist: rank %d: %s", o.Rank, o.ErrMsg)
	}
}

// errToKind classifies a rank program's error for the wire.  A local
// cancellation maps to aborted: the coordinator owns the causal error
// (its own ctx, or the originating rank's failure).
func errToKind(err error) (int, string) {
	switch {
	case err == nil:
		return errKindNone, ""
	case errors.Is(err, ErrFaultInjected):
		return errKindFault, err.Error()
	case errors.Is(err, errRunAborted), errors.Is(err, context.Canceled):
		return errKindAborted, err.Error()
	default:
		return errKindOther, err.Error()
	}
}

// encodeGob and decodeGob are the control payload codec.
func encodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeGob(payload []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(payload)).Decode(v)
}

// edgesOf rebuilds an edge list from its flattened halves (aliasing,
// not copying: the wire slices are private to the decode).
func edgesOf(u, v []uint64) *edge.List { return &edge.List{U: u, V: v} }
