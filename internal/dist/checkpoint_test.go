package dist_test

// Property suite for the epoch checkpoint/restart of the distributed
// kernel-3 iteration (DESIGN.md §10): for every processor count and both
// execution modes, killing a run at any checkpoint epoch and restarting
// yields final ranks bit-for-bit equal to the uninterrupted run's, the
// resumed segment's communication equals the §V closed form over the
// remaining iterations, and torn epochs — manufactured by fault points
// or direct corruption — are detected and skipped, never loaded.

import (
	"context"
	"errors"
	"io"
	"maps"
	"slices"
	"strings"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/dist"
	"repro/internal/pagerank"
	"repro/internal/vfs"
)

var ckptProcs = []int{1, 2, 3, 5, 8}

// ckptSpec builds the canonical checkpointed kernel-3 spec of this
// suite: 10 iterations, an epoch every 3 (boundaries at 3, 6 and 9).
func ckptSpec(mode dist.ExecMode, p int, fs vfs.FS) dist.Spec {
	return dist.Spec{
		Config: dist.Config{Mode: mode}, Op: dist.OpRun, Procs: p,
		PageRank:   pagerank.Options{Seed: 5, Iterations: 10},
		Checkpoint: dist.CheckpointSpec{FS: fs, Every: 3, Resume: true},
	}
}

// TestCheckpointKillAndResumeBitForBit is the tentpole property: for
// p ∈ {1,2,3,5,8} × both exec modes × every checkpoint epoch e, a run
// killed at e and restarted produces bit-for-bit the uninterrupted
// ranks, and the resumed segment's measured wire bytes equal
// PredictedCommBytes over the remaining iterations.
func TestCheckpointKillAndResumeBitForBit(t *testing.T) {
	l, n := executeGraph(t, 7)
	// Reduction order depends on p, so the uninterrupted reference is
	// per processor count (modes are bit-identical, p's are ~1e-12).
	baselines := map[int][]float64{}
	for _, p := range ckptProcs {
		res, err := dist.Execute(context.Background(), dist.Spec{
			Op: dist.OpRun, Edges: l, N: n, Procs: p,
			PageRank: pagerank.Options{Seed: 5, Iterations: 10},
		})
		if err != nil {
			t.Fatal(err)
		}
		baselines[p] = res.Run.Rank
	}
	for _, mode := range []dist.ExecMode{dist.ExecSim, dist.ExecGoroutine} {
		for _, p := range ckptProcs {
			for _, epoch := range []int{3, 6, 9} {
				fs := vfs.NewMem()
				spec := ckptSpec(mode, p, fs)
				spec.Edges, spec.N = l, n
				spec.Fault = &dist.FaultPlan{KillRank: p - 1, AtIteration: epoch}
				_, err := dist.Execute(context.Background(), spec)
				if !errors.Is(err, dist.ErrFaultInjected) {
					t.Fatalf("mode=%v p=%d epoch=%d: kill err = %v", mode, p, epoch, err)
				}

				resumed := ckptSpec(mode, p, fs)
				resumed.Edges, resumed.N = l, n
				out, err := dist.Execute(context.Background(), resumed)
				if err != nil {
					t.Fatalf("mode=%v p=%d epoch=%d: resume: %v", mode, p, epoch, err)
				}
				res := out.Run
				sameRank(t, "kill-and-resume", baselines[p], res.Rank)
				if res.Iterations != 10 {
					t.Fatalf("mode=%v p=%d epoch=%d: resumed to %d iterations", mode, p, epoch, res.Iterations)
				}
				st := res.Checkpoint
				if st == nil || !st.Resumed || st.ResumedFrom != int64(epoch) {
					t.Fatalf("mode=%v p=%d epoch=%d: stats %+v", mode, p, epoch, st)
				}
				remaining := 10 - epoch
				measured := res.Comm.AllReduceBytes + res.Comm.BroadcastBytes
				if want := dist.PredictedCommBytes(n, p, remaining, false); measured != want {
					t.Fatalf("mode=%v p=%d epoch=%d: resumed segment %d wire bytes, predicted %d",
						mode, p, epoch, measured, want)
				}
			}
		}
	}
}

// TestCheckpointDoesNotPerturbResultOrComm pins that turning
// checkpointing on changes neither a single rank bit nor a single
// CommStats field — epoch I/O is storage and control plane only.
func TestCheckpointDoesNotPerturbResultOrComm(t *testing.T) {
	l, n := executeGraph(t, 7)
	for _, mode := range []dist.ExecMode{dist.ExecSim, dist.ExecGoroutine} {
		for _, p := range []int{1, 3, 5} {
			plain, err := dist.Execute(context.Background(), dist.Spec{
				Config: dist.Config{Mode: mode}, Op: dist.OpRun, Edges: l, N: n, Procs: p,
				PageRank: pagerank.Options{Seed: 5, Iterations: 10},
			})
			if err != nil {
				t.Fatal(err)
			}
			spec := ckptSpec(mode, p, vfs.NewMem())
			spec.Edges, spec.N = l, n
			ck, err := dist.Execute(context.Background(), spec)
			if err != nil {
				t.Fatal(err)
			}
			sameRank(t, "checkpointed run", plain.Run.Rank, ck.Run.Rank)
			if plain.Run.Comm != ck.Run.Comm {
				t.Fatalf("mode=%v p=%d: checkpointing perturbed CommStats: %+v vs %+v",
					mode, p, plain.Run.Comm, ck.Run.Comm)
			}
			if st := ck.Run.Checkpoint; st == nil || st.EpochsWritten != 3 || st.LastEpoch != 9 {
				t.Fatalf("mode=%v p=%d: stats %+v, want 3 epochs through 9", mode, p, ck.Run.Checkpoint)
			}
		}
	}
}

// TestCheckpointResumeAcrossProcsAndModes pins p-independence of the
// epoch format: a run killed under one (mode, p) resumes under another
// (mode, p).  Reduction order depends on p, so the exact reference for
// "6 iterations at p=3 then 4 at p=5" is built from the same public
// pieces: a 6-iteration p=3 run whose vector seeds a 4-iteration p=5
// run via InitialRank — the resumed execution must match it bit-for-bit.
func TestCheckpointResumeAcrossProcsAndModes(t *testing.T) {
	l, n := executeGraph(t, 7)
	seg1, err := dist.Execute(context.Background(), dist.Spec{
		Op: dist.OpRun, Edges: l, N: n, Procs: 3,
		PageRank: pagerank.Options{Seed: 5, Iterations: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	seg2, err := dist.Execute(context.Background(), dist.Spec{
		Op: dist.OpRun, Edges: l, N: n, Procs: 5,
		PageRank: pagerank.Options{Seed: 5, Iterations: 4, InitialRank: seg1.Run.Rank},
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := vfs.NewMem()
	kill := ckptSpec(dist.ExecGoroutine, 3, fs)
	kill.Edges, kill.N = l, n
	kill.Fault = &dist.FaultPlan{KillRank: 1, AtIteration: 6}
	if _, err := dist.Execute(context.Background(), kill); !errors.Is(err, dist.ErrFaultInjected) {
		t.Fatalf("kill err = %v", err)
	}
	resume := ckptSpec(dist.ExecSim, 5, fs)
	resume.Edges, resume.N = l, n
	out, err := dist.Execute(context.Background(), resume)
	if err != nil {
		t.Fatal(err)
	}
	sameRank(t, "cross-procs cross-mode resume", seg2.Run.Rank, out.Run.Rank)
	if st := out.Run.Checkpoint; st == nil || st.ResumedFrom != 6 {
		t.Fatalf("stats %+v", out.Run.Checkpoint)
	}
}

// TestCheckpointRunMatrixOp pins the OpRunMatrix path: kill-and-resume
// on a prebuilt matrix is bit-for-bit too.
func TestCheckpointRunMatrixOp(t *testing.T) {
	l, n := executeGraph(t, 7)
	built, err := dist.Execute(context.Background(), dist.Spec{
		Op: dist.OpBuildFiltered, Edges: l, N: n, Procs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := built.Build.Matrix
	opt := pagerank.Options{Seed: 5, Iterations: 10}
	baseline, err := dist.Execute(context.Background(), dist.Spec{
		Op: dist.OpRunMatrix, Matrix: a, Procs: 3, PageRank: opt,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []dist.ExecMode{dist.ExecSim, dist.ExecGoroutine} {
		fs := vfs.NewMem()
		kill := dist.Spec{
			Config: dist.Config{Mode: mode}, Op: dist.OpRunMatrix, Matrix: a, Procs: 3,
			PageRank:   opt,
			Checkpoint: dist.CheckpointSpec{FS: fs, Every: 4, Resume: true},
			Fault:      &dist.FaultPlan{KillRank: 2, AtIteration: 8},
		}
		if _, err := dist.Execute(context.Background(), kill); !errors.Is(err, dist.ErrFaultInjected) {
			t.Fatalf("mode=%v: kill err = %v", mode, err)
		}
		resume := kill
		resume.Fault = nil
		out, err := dist.Execute(context.Background(), resume)
		if err != nil {
			t.Fatal(err)
		}
		sameRank(t, "matrix-op resume", baseline.Run.Rank, out.Run.Rank)
		if out.Run.Checkpoint.ResumedFrom != 8 {
			t.Fatalf("mode=%v: resumed from %d, want 8", mode, out.Run.Checkpoint.ResumedFrom)
		}
	}
}

// TestCheckpointAlreadyCovered pins the degenerate resume: when the
// loaded epoch already covers the requested iterations, Execute returns
// the recovered vector without running (and without communicating).
func TestCheckpointAlreadyCovered(t *testing.T) {
	l, n := executeGraph(t, 7)
	fs := vfs.NewMem()
	spec := ckptSpec(dist.ExecSim, 3, fs)
	spec.Edges, spec.N = l, n
	if _, err := dist.Execute(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	short := ckptSpec(dist.ExecGoroutine, 3, fs)
	short.Edges, short.N = l, n
	short.PageRank.Iterations = 9 // the stored epoch 9 covers this
	out, err := dist.Execute(context.Background(), short)
	if err != nil {
		t.Fatal(err)
	}
	if out.Run.Iterations != 9 {
		t.Fatalf("iterations %d, want the covered 9", out.Run.Iterations)
	}
	var zero dist.CommStats
	if out.Run.Comm != zero {
		t.Fatalf("covered resume communicated: %+v", out.Run.Comm)
	}
	// The epoch-9 vector is the 9-iteration prefix of the full run's
	// trajectory; spot-check it differs from the final (10-iteration)
	// vector but matches what the checkpoint stored.
	loaded, err := ckpt.Load(fs, "ckpt", 9)
	if err != nil {
		t.Fatal(err)
	}
	sameRank(t, "covered resume", loaded.Rank, out.Run.Rank)
}

// TestCheckpointTornEpochSkippedOnResume corrupts the newest committed
// epoch and resumes: the loader must fall back to the previous complete
// epoch, report it as torn, and the run must still land bit-for-bit.
func TestCheckpointTornEpochSkippedOnResume(t *testing.T) {
	l, n := executeGraph(t, 7)
	baseline, err := dist.Execute(context.Background(), dist.Spec{
		Op: dist.OpRun, Edges: l, N: n, Procs: 2,
		PageRank: pagerank.Options{Seed: 5, Iterations: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := vfs.NewMem()
	spec := ckptSpec(dist.ExecGoroutine, 2, fs)
	spec.Edges, spec.N = l, n
	if _, err := dist.Execute(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	// Corrupt one chunk of the newest epoch (9), commit intact.
	name := ckpt.ChunkName("ckpt", 9, 1)
	r, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(r)
	r.Close()
	b[len(b)/2] ^= 0x55
	w, _ := fs.Create(name)
	w.Write(b)
	w.Close()

	resume := ckptSpec(dist.ExecGoroutine, 2, fs)
	resume.Edges, resume.N = l, n
	out, err := dist.Execute(context.Background(), resume)
	if err != nil {
		t.Fatal(err)
	}
	st := out.Run.Checkpoint
	if st.ResumedFrom != 6 || st.TornSkipped != 1 {
		t.Fatalf("stats %+v, want resume from 6 skipping 1 torn epoch", st)
	}
	sameRank(t, "torn-skip resume", baseline.Run.Rank, out.Run.Rank)
}

// TestCheckpointFaultDuringWriteLeavesTornEpoch pins the
// DuringCheckpoint fault point in both modes: the epoch at the fault
// boundary has chunks but no commit, so the resume starts from the
// previous epoch and still reproduces the baseline bit-for-bit.
func TestCheckpointFaultDuringWriteLeavesTornEpoch(t *testing.T) {
	l, n := executeGraph(t, 7)
	baseline, err := dist.Execute(context.Background(), dist.Spec{
		Op: dist.OpRun, Edges: l, N: n, Procs: 3,
		PageRank: pagerank.Options{Seed: 5, Iterations: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []dist.ExecMode{dist.ExecSim, dist.ExecGoroutine} {
		fs := vfs.NewMem()
		spec := ckptSpec(mode, 3, fs)
		spec.Edges, spec.N = l, n
		spec.Fault = &dist.FaultPlan{KillRank: 0, AtIteration: 6, DuringCheckpoint: true}
		if _, err := dist.Execute(context.Background(), spec); !errors.Is(err, dist.ErrFaultInjected) {
			t.Fatalf("mode=%v: kill err = %v", mode, err)
		}
		// Epoch 6 must be uncommitted: chunks may exist, commit must not.
		if _, err := fs.Open(ckpt.CommitName("ckpt", 6)); !errors.Is(err, vfs.ErrNotExist) {
			t.Fatalf("mode=%v: epoch 6 commit exists after mid-checkpoint fault", mode)
		}
		resume := ckptSpec(mode, 3, fs)
		resume.Edges, resume.N = l, n
		out, err := dist.Execute(context.Background(), resume)
		if err != nil {
			t.Fatal(err)
		}
		if out.Run.Checkpoint.ResumedFrom != 3 {
			t.Fatalf("mode=%v: resumed from %d, want 3", mode, out.Run.Checkpoint.ResumedFrom)
		}
		sameRank(t, "post-torn-write resume", baseline.Run.Rank, out.Run.Rank)
	}
}

// TestCheckpointStorageFailureSurfaces drives the epoch writer into an
// injected storage failure: the run must fail with the injected error in
// both modes (no silent skip), and the prior complete epoch must remain
// loadable.
func TestCheckpointStorageFailureSurfaces(t *testing.T) {
	l, n := executeGraph(t, 7)
	for _, mode := range []dist.ExecMode{dist.ExecSim, dist.ExecGoroutine} {
		mem := vfs.NewMem()
		// Let epoch 3 land, then fail: budget for one epoch plus change.
		probe := vfs.NewMem()
		spec := ckptSpec(mode, 2, probe)
		spec.Edges, spec.N = l, n
		spec.PageRank.Iterations = 3
		if _, err := dist.Execute(context.Background(), spec); err != nil {
			t.Fatal(err)
		}
		faulty := vfs.NewFaulty(mem, probe.TotalBytes()+64)
		spec = ckptSpec(mode, 2, faulty)
		spec.Edges, spec.N = l, n
		_, err := dist.Execute(context.Background(), spec)
		if err == nil || !strings.Contains(err.Error(), vfs.ErrInjected.Error()) {
			t.Fatalf("mode=%v: checkpoint write failure not surfaced: %v", mode, err)
		}
		if l, lerr := ckpt.Latest(mem, "ckpt"); lerr != nil || l.Epoch != 3 {
			t.Fatalf("mode=%v: prior epoch lost after storage failure: %+v %v", mode, l, lerr)
		}
	}
}

// TestCheckpointSpecValidation pins the input contract of the new Spec
// surface.
func TestCheckpointSpecValidation(t *testing.T) {
	l, n := executeGraph(t, 6)
	fs := vfs.NewMem()
	base := dist.Spec{
		Op: dist.OpRun, Edges: l, N: n, Procs: 2,
		PageRank: pagerank.Options{Seed: 5, Iterations: 10},
	}
	mutations := map[string]func(*dist.Spec){
		"kill-rank-out-of-range": func(s *dist.Spec) {
			s.Fault = &dist.FaultPlan{KillRank: 2, AtIteration: 1}
		},
		"kill-rank-negative": func(s *dist.Spec) {
			s.Fault = &dist.FaultPlan{KillRank: -1, AtIteration: 1}
		},
		"fault-iteration-zero": func(s *dist.Spec) {
			s.Fault = &dist.FaultPlan{AtIteration: 0}
		},
		"fault-beyond-run": func(s *dist.Spec) {
			s.Fault = &dist.FaultPlan{AtIteration: 11}
		},
		"during-checkpoint-without-fs": func(s *dist.Spec) {
			s.Fault = &dist.FaultPlan{AtIteration: 3, DuringCheckpoint: true}
		},
		"during-checkpoint-off-boundary": func(s *dist.Spec) {
			s.Checkpoint = dist.CheckpointSpec{FS: fs, Every: 3}
			s.Fault = &dist.FaultPlan{AtIteration: 4, DuringCheckpoint: true}
		},
		"checkpoint-on-sort": func(s *dist.Spec) {
			s.Op = dist.OpSort
			s.Checkpoint = dist.CheckpointSpec{FS: fs}
		},
		"fault-on-sort": func(s *dist.Spec) {
			s.Op = dist.OpSort
			s.Fault = &dist.FaultPlan{AtIteration: 1}
		},
	}
	for _, name := range slices.Sorted(maps.Keys(mutations)) {
		mutate := mutations[name]
		t.Run(name, func(t *testing.T) {
			spec := base
			mutate(&spec)
			if _, err := dist.Execute(context.Background(), spec); err == nil {
				t.Fatal("accepted")
			}
		})
	}
}

// TestCheckpointMismatchRejected pins that a checkpoint from a different
// problem (different n or damping) is rejected at resume, not loaded.
func TestCheckpointMismatchRejected(t *testing.T) {
	l, n := executeGraph(t, 6)
	fs := vfs.NewMem()
	spec := ckptSpec(dist.ExecSim, 2, fs)
	spec.Edges, spec.N = l, n
	if _, err := dist.Execute(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	other := ckptSpec(dist.ExecSim, 2, fs)
	other.Edges, other.N = l, n
	other.PageRank.Damping = 0.5
	if _, err := dist.Execute(context.Background(), other); err == nil {
		t.Fatal("damping mismatch accepted")
	}
}

// TestCheckpointKeepPrunesOldEpochs pins the retention knob: with
// Keep=2, only the newest two committed epochs survive a run.
func TestCheckpointKeepPrunesOldEpochs(t *testing.T) {
	l, n := executeGraph(t, 6)
	fs := vfs.NewMem()
	spec := ckptSpec(dist.ExecGoroutine, 3, fs)
	spec.Edges, spec.N = l, n
	spec.Checkpoint.Keep = 2
	if _, err := dist.Execute(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	eps, err := ckpt.Epochs(fs, "ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 2 || eps[0] != 6 || eps[1] != 9 {
		t.Fatalf("retained epochs %v, want [6 9]", eps)
	}
}
