package dist_test

// Property tests for the out-of-core distributed sample sort: for every
// processor count, every run-buffer size and both execution modes the
// output must equal the serial stable radix sort bit for bit, the
// communication record must equal the in-memory distributed sort's, the
// spill I/O must account for exactly one write and one read-back of every
// edge, and the run files must be gone afterwards — on failure paths too.

import (
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/edge"
	"repro/internal/fastio"
	"repro/internal/vfs"
	"repro/internal/xsort"
)

// adversarialInputs builds the kernel-1 edge cases the sort must survive:
// duplicate-heavy keys, already-sorted and reverse-sorted input, fewer
// edges than processors (empty chunks), and the crafted inputs the
// in-memory sort's tests use.
func adversarialInputs(t *testing.T) map[string]*edge.List {
	t.Helper()
	inputs := map[string]*edge.List{}
	inputs["kronecker"], _ = kron(t, 7, 5)

	dup := edge.NewList(257)
	for i := 0; i < 257; i++ {
		dup.Append(uint64(i%4), uint64(i*7%257))
	}
	inputs["duplicate-heavy"] = dup

	sorted := edge.NewList(200)
	for i := 0; i < 200; i++ {
		sorted.Append(uint64(i/2), uint64(199-i))
	}
	inputs["already-sorted"] = sorted

	rev := edge.NewList(200)
	for i := 0; i < 200; i++ {
		rev.Append(uint64(200-i), uint64(i))
	}
	inputs["reverse-sorted"] = rev

	tiny := edge.NewList(3)
	tiny.Append(9, 1)
	tiny.Append(2, 2)
	tiny.Append(9, 0)
	inputs["m-less-than-p"] = tiny

	same := edge.NewList(16)
	for i := 0; i < 16; i++ {
		same.Append(3, uint64(15-i))
	}
	inputs["all-equal-u"] = same

	inputs["empty"] = edge.NewList(0)
	return inputs
}

// runEdgesChoices returns run-buffer sizes forcing one, about two, and
// many runs per rank for an m-edge input on p processors.
func runEdgesChoices(m, p int) []int {
	chunk := m/p + 1
	two := chunk/2 + 1
	if two < 1 {
		two = 1
	}
	return []int{m + 1, two, 7}
}

var execModes = []dist.ExecMode{dist.ExecSim, dist.ExecGoroutine}

func TestSortExternalEqualsSerialBitForBit(t *testing.T) {
	for name, l := range adversarialInputs(t) {
		want := l.Clone()
		xsort.RadixByU(want)
		for _, p := range procCounts {
			// The in-memory distributed sort is the communication
			// reference: spilling must not change what crosses the wire.
			ref, err := dist.Sort(l, p)
			if err != nil {
				t.Fatal(err)
			}
			m := l.Len()
			if m == 0 {
				m = 1
			}
			for _, runEdges := range runEdgesChoices(m, p) {
				for _, mode := range execModes {
					fs := vfs.NewMem()
					res, err := dist.SortExternalMode(mode, l, p, dist.ExtSortConfig{FS: fs, RunEdges: runEdges})
					if err != nil {
						t.Fatalf("%s p=%d runEdges=%d %v: %v", name, p, runEdges, mode, err)
					}
					if !res.Sorted.Equal(want) {
						t.Fatalf("%s p=%d runEdges=%d %v: output differs from serial radix sort", name, p, runEdges, mode)
					}
					if !res.Sorted.SameMultiset(l) {
						t.Fatalf("%s p=%d runEdges=%d %v: sort lost edges", name, p, runEdges, mode)
					}
					if l.Len() > 0 && res.Comm != ref.Comm {
						t.Errorf("%s p=%d runEdges=%d %v: comm %+v, in-memory sort %+v",
							name, p, runEdges, mode, res.Comm, ref.Comm)
					}
					if p == 1 && res.Comm != (dist.CommStats{}) {
						t.Errorf("%s p=1 %v: nonzero comm %+v", name, mode, res.Comm)
					}
					names, err := fs.List()
					if err != nil {
						t.Fatal(err)
					}
					if len(names) != 0 {
						t.Errorf("%s p=%d runEdges=%d %v: run files left behind: %v", name, p, runEdges, mode, names)
					}
				}
			}
		}
	}
}

func TestSortExternalModesAgreeOnSpillAndRuns(t *testing.T) {
	l, _ := kron(t, 8, 3)
	for _, p := range procCounts {
		for _, runEdges := range runEdgesChoices(l.Len(), p) {
			sim, err := dist.SortExternal(l, p, dist.ExtSortConfig{RunEdges: runEdges})
			if err != nil {
				t.Fatal(err)
			}
			gor, err := dist.SortExternalMode(dist.ExecGoroutine, l, p, dist.ExtSortConfig{RunEdges: runEdges})
			if err != nil {
				t.Fatal(err)
			}
			if !sim.Sorted.Equal(gor.Sorted) {
				t.Fatalf("p=%d runEdges=%d: modes disagree on output", p, runEdges)
			}
			if sim.Comm != gor.Comm {
				t.Errorf("p=%d runEdges=%d: comm sim %+v, goroutine %+v", p, runEdges, sim.Comm, gor.Comm)
			}
			if sim.Spill != gor.Spill {
				t.Errorf("p=%d runEdges=%d: spill sim %+v, goroutine %+v", p, runEdges, sim.Spill, gor.Spill)
			}
			// Every rank spills ceil(chunk/runEdges) runs; both modes must
			// report the same counts, and every edge is written and read
			// back exactly once at 16 bytes.
			totalRuns := 0
			for r, runs := range sim.RunsPerRank {
				if runs != gor.RunsPerRank[r] {
					t.Fatalf("p=%d runEdges=%d: rank %d runs sim %d, goroutine %d",
						p, runEdges, r, runs, gor.RunsPerRank[r])
				}
				totalRuns += runs
			}
			wantBytes := int64(16 * l.Len())
			if sim.Spill.BytesWritten != wantBytes || sim.Spill.BytesRead != wantBytes {
				t.Errorf("p=%d runEdges=%d: spill I/O %+v, want %d bytes each way",
					p, runEdges, sim.Spill, wantBytes)
			}
			if int(sim.Spill.Creates) != totalRuns || int(sim.Spill.Opens) != totalRuns {
				t.Errorf("p=%d runEdges=%d: %d creates / %d opens for %d runs",
					p, runEdges, sim.Spill.Creates, sim.Spill.Opens, totalRuns)
			}
		}
	}
}

func TestSortExternalStorageFailureLeavesFSClean(t *testing.T) {
	l, _ := kron(t, 7, 4)
	writeBytes := int64(16 * l.Len())
	budgets := map[string]int64{
		"spill-fails":    writeBytes / 3,
		"readback-fails": writeBytes + 8,
	}
	for stage, budget := range budgets {
		for _, mode := range execModes {
			mem := vfs.NewMem()
			fs := vfs.NewFaulty(mem, budget)
			_, err := dist.SortExternalMode(mode, l, 4, dist.ExtSortConfig{FS: fs, RunEdges: 64})
			if err == nil {
				t.Fatalf("%s %v: injected storage failure not surfaced", stage, mode)
			}
			if !strings.Contains(err.Error(), vfs.ErrInjected.Error()) {
				t.Fatalf("%s %v: unexpected error %v", stage, mode, err)
			}
			names, lerr := mem.List()
			if lerr != nil {
				t.Fatal(lerr)
			}
			if len(names) != 0 {
				t.Errorf("%s %v: failed sort left run files: %v", stage, mode, names)
			}
		}
	}
}

func TestSortExternalRejectsBadInput(t *testing.T) {
	for _, mode := range execModes {
		if _, err := dist.SortExternalMode(mode, nil, 2, dist.ExtSortConfig{}); err == nil {
			t.Errorf("%v: nil list accepted", mode)
		}
		if _, err := dist.SortExternalMode(mode, edge.NewList(0), 0, dist.ExtSortConfig{}); err == nil {
			t.Errorf("%v: p = 0 accepted", mode)
		}
	}
}

// TestSortAdversarialBothModes extends the in-memory sort's bit-for-bit
// property to the adversarial inputs in both execution modes — the
// duplicate-heavy and presorted cases exercise the deduplicating splitter
// selection.
func TestSortAdversarialBothModes(t *testing.T) {
	for name, l := range adversarialInputs(t) {
		want := l.Clone()
		xsort.RadixByU(want)
		for _, p := range procCounts {
			var ref *dist.SortResult
			for _, mode := range execModes {
				res, err := dist.SortMode(mode, l, p)
				if err != nil {
					t.Fatalf("%s p=%d %v: %v", name, p, mode, err)
				}
				if !res.Sorted.Equal(want) {
					t.Fatalf("%s p=%d %v: output differs from serial radix sort", name, p, mode)
				}
				if ref == nil {
					ref = res
				} else if res.Comm != ref.Comm {
					t.Errorf("%s p=%d: modes meter different bytes: %+v vs %+v", name, p, res.Comm, ref.Comm)
				}
			}
		}
	}
}

// TestSortExternalSpillCodec pins the configurable spill codec: results
// are bit-for-bit invariant in it, the result records its name, and the
// packed codec's sorted-run encoding spills measurably fewer bytes than
// the 16-byte fixed-width default.
func TestSortExternalSpillCodec(t *testing.T) {
	l, _ := kron(t, 8, 3)
	for _, p := range []int{1, 3, 4} {
		def, err := dist.SortExternal(l, p, dist.ExtSortConfig{RunEdges: 300})
		if err != nil {
			t.Fatal(err)
		}
		if def.SpillCodec != "bin" {
			t.Errorf("p=%d: default spill codec %q, want bin", p, def.SpillCodec)
		}
		for _, mode := range []dist.ExecMode{dist.ExecSim, dist.ExecGoroutine} {
			res, err := dist.SortExternalMode(mode, l, p, dist.ExtSortConfig{
				RunEdges: 300, Codec: fastio.Packed{},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.SpillCodec != "packed" {
				t.Errorf("p=%d %v: spill codec %q, want packed", p, mode, res.SpillCodec)
			}
			if !res.Sorted.Equal(def.Sorted) {
				t.Fatalf("p=%d %v: packed spill changed the sorted output", p, mode)
			}
			if res.Comm != def.Comm {
				t.Errorf("p=%d %v: packed spill changed the comm record: %+v vs %+v", p, mode, res.Comm, def.Comm)
			}
			if res.Spill.BytesWritten >= def.Spill.BytesWritten {
				t.Errorf("p=%d %v: packed spill wrote %d bytes, binary wrote %d",
					p, mode, res.Spill.BytesWritten, def.Spill.BytesWritten)
			}
		}
	}
}
