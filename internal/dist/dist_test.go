package dist_test

// Property tests for the simulated distributed runtime: for every
// processor count the distributed sort must equal the serial stable radix
// sort bit for bit, the distributed pipeline must match the serial
// reference, and the measured collective traffic must equal the
// closed-form model exactly.

import (
	"math"
	"testing"

	"repro/internal/dist"
	"repro/internal/edge"
	"repro/internal/kronecker"
	"repro/internal/pagerank"
	"repro/internal/pipeline"
	"repro/internal/sparse"
)

// procCounts includes p = 1 (degenerate), a p that does not divide
// typical sizes, and p = 8 (larger than the distinct-start-vertex count
// of the crafted inputs below).
var procCounts = []int{1, 2, 3, 5, 8}

func kron(t *testing.T, scale int, seed uint64) (*edge.List, int) {
	t.Helper()
	cfg := kronecker.New(scale, seed)
	l, err := kronecker.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l, int(cfg.N())
}

func TestSortEqualsSerialBitForBit(t *testing.T) {
	inputs := map[string]*edge.List{}
	inputs["kronecker"], _ = kron(t, 7, 5)

	// Two distinct start vertices only: with p = 8 most splitters
	// duplicate and most buckets stay empty.
	few := edge.NewList(64)
	for i := 0; i < 64; i++ {
		few.Append(uint64(i%2), uint64(i))
	}
	inputs["two-distinct-u"] = few

	// All-equal keys: stability is the entire sort.
	same := edge.NewList(16)
	for i := 0; i < 16; i++ {
		same.Append(3, uint64(15-i))
	}
	inputs["all-equal-u"] = same

	inputs["empty"] = edge.NewList(0)

	for name, l := range inputs {
		want := l.Clone()
		// The serial reference kernel 1: stable LSD radix by start vertex.
		res0, err := dist.Sort(want, 1)
		if err != nil {
			t.Fatal(err)
		}
		want = res0.Sorted
		for _, p := range procCounts {
			res, err := dist.Sort(l, p)
			if err != nil {
				t.Fatalf("%s p=%d: %v", name, p, err)
			}
			if !res.Sorted.Equal(want) {
				t.Errorf("%s p=%d: distributed sort differs from serial sort", name, p)
			}
			if !res.Sorted.SameMultiset(l) {
				t.Errorf("%s p=%d: sort lost edges", name, p)
			}
			if p > 1 && l.Len() > 8 && res.Comm.AllToAllBytes == 0 {
				t.Errorf("%s p=%d: no all-to-all traffic metered", name, p)
			}
			if p == 1 && res.Comm != (dist.CommStats{}) {
				t.Errorf("%s p=1: nonzero comm %+v", name, res.Comm)
			}
		}
	}
}

func TestSortRejectsBadInput(t *testing.T) {
	if _, err := dist.Sort(nil, 2); err == nil {
		t.Error("nil list accepted")
	}
	if _, err := dist.Sort(edge.NewList(0), 0); err == nil {
		t.Error("p = 0 accepted")
	}
}

func TestRunMatchesSerialReferenceEveryP(t *testing.T) {
	l, n := kron(t, 8, 9)
	a, err := sparse.FromEdges(l, n)
	if err != nil {
		t.Fatal(err)
	}
	pipeline.ApplyKernel2Filter(a)
	opt := pagerank.Options{Seed: 4}
	want, err := pagerank.Scatter(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range procCounts {
		res, err := dist.Run(l, n, p, opt)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if res.NNZ != a.NNZ() {
			t.Errorf("p=%d: NNZ %d, serial %d", p, res.NNZ, a.NNZ())
		}
		if res.Iterations != want.Iterations {
			t.Errorf("p=%d: iterations %d, serial %d", p, res.Iterations, want.Iterations)
		}
		for i := range want.Rank {
			if math.Abs(res.Rank[i]-want.Rank[i]) > 1e-9 {
				t.Fatalf("p=%d: rank[%d] = %v, serial %v", p, i, res.Rank[i], want.Rank[i])
			}
		}
	}
}

func TestRunPExceedsVertexAndDistinctCounts(t *testing.T) {
	// n = 4 with a single start vertex: p = 5 and 8 leave most virtual
	// processors without rows or edges.
	l := edge.NewList(8)
	for i := 0; i < 8; i++ {
		l.Append(0, uint64(i%4))
	}
	const n = 4
	a, err := sparse.FromEdges(l, n)
	if err != nil {
		t.Fatal(err)
	}
	pipeline.ApplyKernel2Filter(a)
	want, err := pagerank.Scatter(a, pagerank.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range procCounts {
		res, err := dist.Run(l, n, p, pagerank.Options{Seed: 1})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i := range want.Rank {
			if math.Abs(res.Rank[i]-want.Rank[i]) > 1e-9 {
				t.Fatalf("p=%d: rank diverges at %d", p, i)
			}
		}
	}
}

func TestBuildFilteredEqualsSerialKernel2(t *testing.T) {
	l, n := kron(t, 7, 2)
	ref, err := sparse.FromEdges(l, n)
	if err != nil {
		t.Fatal(err)
	}
	mass := ref.SumValues()
	pipeline.ApplyKernel2Filter(ref)
	for _, p := range procCounts {
		b, err := dist.BuildFiltered(l, n, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if b.Mass != mass {
			t.Errorf("p=%d: mass %v, serial %v", p, b.Mass, mass)
		}
		if b.NNZ != ref.NNZ() {
			t.Fatalf("p=%d: NNZ %d, serial %d", p, b.NNZ, ref.NNZ())
		}
		if err := b.Matrix.Validate(); err != nil {
			t.Fatalf("p=%d: assembled matrix invalid: %v", p, err)
		}
		for k := range ref.Val {
			if b.Matrix.Col[k] != ref.Col[k] || b.Matrix.Val[k] != ref.Val[k] {
				t.Fatalf("p=%d: assembled matrix entry %d differs", p, k)
			}
		}
	}
}

func TestCommStatsEqualPredictionExactly(t *testing.T) {
	l, n := kron(t, 7, 3)
	for _, p := range procCounts {
		for _, iters := range []int{1, 5, 20} {
			for _, dangling := range []bool{false, true} {
				opt := pagerank.Options{Seed: 1, Iterations: iters, Dangling: dangling}
				res, err := dist.Run(l, n, p, opt)
				if err != nil {
					t.Fatalf("p=%d iters=%d dangling=%v: %v", p, iters, dangling, err)
				}
				measured := res.Comm.AllReduceBytes + res.Comm.BroadcastBytes
				predicted := dist.PredictedCommBytes(n, p, res.Iterations, dangling)
				if measured != predicted {
					t.Errorf("p=%d iters=%d dangling=%v: measured %d bytes, predicted %d",
						p, iters, dangling, measured, predicted)
				}
				if p > 1 && res.Comm.AllReduceCalls == 0 {
					t.Errorf("p=%d: no all-reduce calls recorded", p)
				}
			}
		}
	}
}

func TestCommPredictionZeroDefaultIterations(t *testing.T) {
	// Options{} resolves to the benchmark's 20 iterations; the prediction
	// taken at pagerank.DefaultIterations must match (the prreport path).
	l, n := kron(t, 6, 8)
	const p = 4
	res, err := dist.Run(l, n, p, pagerank.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	measured := res.Comm.AllReduceBytes + res.Comm.BroadcastBytes
	if want := dist.PredictedCommBytes(n, p, pagerank.DefaultIterations, false); measured != want {
		t.Errorf("measured %d, predicted %d", measured, want)
	}
	if dist.PredictedCommBytes(n, 1, 20, true) != 0 {
		t.Error("p = 1 must predict zero communication")
	}
	// And a single processor must measure zero too, calls included,
	// matching Sort's p = 1 contract.
	res1, err := dist.Run(l, n, 1, pagerank.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Comm != (dist.CommStats{}) {
		t.Errorf("p = 1 run recorded communication: %+v", res1.Comm)
	}
}

func TestRunMatrixMatchesSerialEngines(t *testing.T) {
	l, n := kron(t, 7, 6)
	a, err := sparse.FromEdges(l, n)
	if err != nil {
		t.Fatal(err)
	}
	pipeline.ApplyKernel2Filter(a)
	opt := pagerank.Options{Seed: 2, Dangling: true}
	want, err := pagerank.Scatter(a, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range procCounts {
		res, err := dist.RunMatrix(a, p, opt)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i := range want.Rank {
			if math.Abs(res.Rank[i]-want.Rank[i]) > 1e-9 {
				t.Fatalf("p=%d: rank diverges at %d", p, i)
			}
		}
	}
}

func TestRunToleranceEarlyExitMetersActualIterations(t *testing.T) {
	l, n := kron(t, 7, 7)
	opt := pagerank.Options{Seed: 1, Iterations: 200, Tolerance: 1e-3}
	res, err := dist.Run(l, n, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 200 || res.Iterations < 1 {
		t.Fatalf("tolerance run did %d iterations", res.Iterations)
	}
	measured := res.Comm.AllReduceBytes + res.Comm.BroadcastBytes
	if want := dist.PredictedCommBytes(n, 3, res.Iterations, false); measured != want {
		t.Errorf("early-exit comm %d, predicted %d", measured, want)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	l, n := kron(t, 5, 1)
	if _, err := dist.Run(l, n, 0, pagerank.Options{}); err == nil {
		t.Error("p = 0 accepted")
	}
	if _, err := dist.Run(l, 0, 2, pagerank.Options{}); err == nil {
		t.Error("n = 0 accepted")
	}
	if _, err := dist.Run(l, 2, 2, pagerank.Options{}); err == nil {
		t.Error("out-of-range vertices accepted")
	}
	bad := pagerank.Options{Damping: 2}
	if _, err := dist.Run(l, n, 2, bad); err == nil {
		t.Error("invalid damping accepted")
	}
	if _, err := dist.Run(l, n, 2, pagerank.Options{Teleport: []float64{1}}); err == nil {
		t.Error("short teleport vector accepted")
	}
}
