package dist

// Distributed sample sort (kernel 1), the paper's proposed parallel sort:
// each processor samples its chunk, a root picks p-1 splitters from the
// gathered sample, edges are exchanged all-to-all by key range, and each
// processor sorts its bucket locally.
//
// The implementation is carefully stable so that the distributed result
// equals the serial stable radix sort bit for bit, for every p:
//
//   - input chunks are contiguous and scanned in rank order, so every
//     bucket receives its edges in global input order;
//   - routing depends only on the start vertex, so equal keys land in the
//     same bucket;
//   - the local sort is the same stable LSD radix sort the serial kernel
//     uses, and bucket key ranges are disjoint.

import (
	"fmt"
	"sort"

	"repro/internal/edge"
	"repro/internal/xsort"
)

// SamplesPerRank is the sample-sort oversampling factor: each processor
// contributes up to this many evenly spaced keys to the splitter sample.
// perfmodel.ParallelKernel1's splitter-exchange term uses the same
// constant so the documented cost model matches the implementation.
const SamplesPerRank = 24

// SortResult is the outcome of a distributed sort.
type SortResult struct {
	// Sorted is the globally sorted edge list (concatenated bucket
	// outputs), bit-for-bit equal to xsort.RadixByU of the input.
	Sorted *edge.List
	// Comm records the sample gather, splitter broadcast and all-to-all
	// edge exchange.
	Comm CommStats
}

// Sort performs the distributed sample sort of l by start vertex over p
// virtual processors.  The input is not modified.
func Sort(l *edge.List, p int) (*SortResult, error) {
	if l == nil {
		return nil, fmt.Errorf("dist: Sort of nil edge list")
	}
	if p < 1 {
		return nil, fmt.Errorf("dist: Sort with p = %d, want >= 1", p)
	}
	m := l.Len()
	if p == 1 || m == 0 {
		out := l.Clone()
		xsort.RadixByU(out)
		return &SortResult{Sorted: out}, nil
	}
	c := &comm{p: p}

	// Phase 1: each rank draws evenly spaced keys from its chunk; the
	// samples are gathered at rank 0 (personalized sends, metered as
	// all-to-all traffic).
	samples := make([]uint64, 0, p*SamplesPerRank)
	for r := 0; r < p; r++ {
		lo, hi := blockBounds(m, p, r)
		cnt := hi - lo
		if cnt == 0 {
			continue
		}
		s := SamplesPerRank
		if s > cnt {
			s = cnt
		}
		for k := 0; k < s; k++ {
			samples = append(samples, l.U[lo+k*cnt/s])
		}
		if r != 0 {
			c.st.AllToAllBytes += 8 * uint64(s)
		}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })

	// Phase 2: rank 0 selects p-1 splitters at even sample quantiles and
	// broadcasts them.  Duplicate splitters (p larger than the number of
	// distinct keys) simply leave some buckets empty.
	splitters := make([]uint64, p-1)
	for i := range splitters {
		splitters[i] = samples[(i+1)*len(samples)/p]
	}
	splitters = c.broadcastKeys(splitters)

	// Phase 3: all-to-all exchange.  Scanning source chunks in rank order
	// keeps each bucket in global input order, which is what makes the
	// final concatenation a stable sort.
	buckets := make([]*edge.List, p)
	for r := range buckets {
		buckets[r] = edge.NewList(m / p)
	}
	for src := 0; src < p; src++ {
		lo, hi := blockBounds(m, p, src)
		for i := lo; i < hi; i++ {
			u := l.U[i]
			d := destRank(splitters, u)
			buckets[d].Append(u, l.V[i])
			if d != src {
				c.st.AllToAllBytes += 16 // two uint64 endpoints
			}
		}
	}

	// Phase 4: local stable sorts, concatenated in rank order.
	out := edge.NewList(m)
	for _, b := range buckets {
		xsort.RadixByU(b)
		out.AppendList(b)
	}
	return &SortResult{Sorted: out, Comm: c.st}, nil
}

// destRank returns the bucket owning key u: rank i holds keys in
// [splitters[i-1], splitters[i]) with open outer sentinels.
func destRank(splitters []uint64, u uint64) int {
	return sort.Search(len(splitters), func(i int) bool { return u < splitters[i] })
}
