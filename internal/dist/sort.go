package dist

// Distributed sample sort (kernel 1), the paper's proposed parallel sort:
// each processor samples its chunk, a root picks p-1 splitters from the
// gathered sample, edges are exchanged all-to-all by key range, and each
// processor sorts its bucket locally.
//
// The implementation is carefully stable so that the distributed result
// equals the serial stable radix sort bit for bit, for every p:
//
//   - input chunks are contiguous and scanned in rank order, so every
//     bucket receives its edges in global input order;
//   - routing depends only on the start vertex, so equal keys land in the
//     same bucket;
//   - the local sort is the same stable LSD radix sort the serial kernel
//     uses, and bucket key ranges are disjoint.
//
// The schedule's sampling and splitter-selection steps live in the shared
// helpers below; the simulated path (Sort, this file) and the goroutine
// path (sortGoroutine, rank.go) both execute them, so the two produce the
// same splitters, the same buckets, the same bytes and the same output.

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/edge"
	"repro/internal/xsort"
)

// SamplesPerRank is the sample-sort oversampling factor: each processor
// contributes up to this many evenly spaced keys to the splitter sample.
// perfmodel.ParallelKernel1's splitter-exchange term uses the same
// constant so the documented cost model matches the implementation.
const SamplesPerRank = 24

// SortResult is the outcome of a distributed sort.
type SortResult struct {
	// Sorted is the globally sorted edge list (concatenated bucket
	// outputs), bit-for-bit equal to xsort.RadixByU of the input.
	Sorted *edge.List
	// Comm records the sample gather, splitter broadcast and all-to-all
	// edge exchange.
	Comm CommStats
	// Wire is the measured socket traffic (ExecSocket only, else nil).
	Wire *WireStats
}

// sampleChunk draws up to SamplesPerRank evenly spaced start-vertex keys
// from the chunk [lo, hi) of the input — one rank's local sampling step,
// shared by both runtimes.
func sampleChunk(l *edge.List, lo, hi int) []uint64 {
	cnt := hi - lo
	if cnt == 0 {
		return nil
	}
	s := SamplesPerRank
	if s > cnt {
		s = cnt
	}
	keys := make([]uint64, s)
	for k := 0; k < s; k++ {
		keys[k] = l.U[lo+k*cnt/s]
	}
	return keys
}

// chooseSplitters sorts the gathered sample in place and selects up to
// p-1 strictly increasing splitters at even sample quantiles — the root's
// selection step, shared by both runtimes.  The quantiles are taken over
// the raw (frequency-weighted) sample, so skewed key distributions place
// more splitters inside their hot ranges and the buckets balance by edge
// count, which is what the oversampling exists for.  A quantile pick that
// repeats an already-chosen splitter is skipped rather than emitted:
// repeated splitters (tiny or duplicate-heavy samples repeat quantile
// indices) would funnel nearly every edge into one bucket.  Fewer than
// p-1 splitters is a valid destRank input — the trailing buckets receive
// nothing — and both runtimes broadcast whatever length is chosen here,
// so the schedules stay in lockstep.
func chooseSplitters(samples []uint64, p int) []uint64 {
	if len(samples) == 0 {
		return nil
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	splitters := make([]uint64, 0, p-1)
	for i := 1; i < p; i++ {
		cand := samples[i*len(samples)/p]
		if len(splitters) > 0 && cand <= splitters[len(splitters)-1] {
			continue
		}
		splitters = append(splitters, cand)
	}
	return splitters
}

// gatherSamples draws every rank's evenly spaced sample keys and meters
// the gather at rank 0 (personalized sends, metered as all-to-all
// traffic) — the simulated counterpart of the goroutine ranks'
// gatherKeys calls, shared by the in-memory and out-of-core sorts so
// their sampling schedules cannot drift apart.
func gatherSamples(c *comm, l *edge.List) []uint64 {
	samples := make([]uint64, 0, c.p*SamplesPerRank)
	for r := 0; r < c.p; r++ {
		lo, hi := blockBounds(l.Len(), c.p, r)
		keys := sampleChunk(l, lo, hi)
		samples = append(samples, keys...)
		if r != 0 {
			c.st.AllToAllBytes += keyWireBytes * uint64(len(keys))
		}
	}
	return samples
}

// Sort performs the distributed sample sort of l by start vertex over p
// simulated processors.  The input is not modified.
//
// Deprecated: use Execute with OpSort.
func Sort(l *edge.List, p int) (*SortResult, error) {
	return SortCfg(Config{}, l, p)
}

// sortSim is the simulated execution of Sort's schedule under cfg.
func sortSim(ctx context.Context, cfg Config, l *edge.List, p int) (*SortResult, error) {
	if l == nil {
		return nil, fmt.Errorf("dist: Sort of nil edge list")
	}
	if p < 1 {
		return nil, fmt.Errorf("dist: Sort with p = %d, want >= 1", p)
	}
	m := l.Len()
	if p == 1 || m == 0 {
		out := l.Clone()
		xsort.RadixByU(out)
		return &SortResult{Sorted: out}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := &comm{p: p}

	// Phases 1 and 2: samples are gathered at rank 0, which selects the
	// splitters and broadcasts them.
	splitters := c.broadcastKeys(chooseSplitters(gatherSamples(c, l), p))

	// Phase 3: all-to-all exchange.  Scanning source chunks in rank order
	// keeps each bucket in global input order, which is what makes the
	// final concatenation a stable sort; partitionChunk preserves that
	// order for every hybrid worker count.
	buckets := make([]*edge.List, p)
	for r := range buckets {
		buckets[r] = edge.NewList(m / p)
	}
	for src := 0; src < p; src++ {
		lo, hi := blockBounds(m, p, src)
		for d, part := range partitionChunk(l, lo, hi, splitters, p, cfg.workers()) {
			buckets[d].AppendList(part)
			if d != src {
				c.st.AllToAllBytes += edgeWireBytes * uint64(part.Len())
			}
		}
	}

	// Phase 4: local stable sorts, concatenated in rank order.  The
	// exchange above and the bucket sorts below dominate the wall clock,
	// so the boundary is a cancellation point.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := edge.NewList(m)
	for _, b := range buckets {
		xsort.RadixByU(b)
		out.AppendList(b)
	}
	return &SortResult{Sorted: out, Comm: c.st}, nil
}

// destRank returns the bucket owning key u: rank i holds keys in
// [splitters[i-1], splitters[i]) with open outer sentinels.
func destRank(splitters []uint64, u uint64) int {
	return sort.Search(len(splitters), func(i int) bool { return u < splitters[i] })
}
