package dist

// block is one rank's rectangular share of the global n×n matrix: the
// contiguous row block [lo, hi) in CSR layout with block-local row
// pointers.  Where the first-generation rankState kept a square n×n CSR
// per rank (O(p·n) row pointers across ranks), a block stores hi-lo+1
// pointers, so p ranks together hold exactly n+p — the storage a real
// distributed memory forces, and the reason both the simulated and the
// goroutine runtime build on this type (DESIGN.md §5).
//
// Column indices still span the full [0, n) range: kernel 3's scatter
// product writes into a full-length output vector, which is what the
// replicated-rank-vector schedule of the paper's §V analysis assumes.

import (
	"fmt"
	"sort"

	"repro/internal/edge"
	"repro/internal/sparse"
)

type block struct {
	// lo, hi delimit the owned global row range [lo, hi).
	lo, hi int
	// n is the global matrix dimension (the column space).
	n int
	// rowPtr has length hi-lo+1; local row i is global row lo+i.
	rowPtr []int64
	// col and val hold the stored entries of the owned rows.
	col []uint32
	val []float64
}

// rows returns the owned row count hi-lo.
func (b *block) rows() int { return b.hi - b.lo }

// nnz returns the stored-entry count of the block.
func (b *block) nnz() int { return len(b.col) }

// buildBlock constructs the counting sub-matrix of the rows [lo, hi) from
// an edge list whose start vertices all lie in that range (kernel 2's
// postcondition of the edge routing step).  The construction mirrors
// sparse.FromEdges — count, scatter, per-row sort, duplicate accumulation —
// so the assembled blocks equal the serial square build bit for bit.
func buildBlock(l *edge.List, n, lo, hi int) (*block, error) {
	b := &block{lo: lo, hi: hi, n: n, rowPtr: make([]int64, hi-lo+1)}
	m := l.Len()
	for _, u := range l.U {
		if int(u) < lo || int(u) >= hi {
			return nil, fmt.Errorf("dist: routed edge with start %d outside owned rows [%d,%d)", u, lo, hi)
		}
		b.rowPtr[int(u)-lo+1]++
	}
	for i := 0; i < b.rows(); i++ {
		b.rowPtr[i+1] += b.rowPtr[i]
	}
	cols := make([]uint32, m)
	next := append([]int64(nil), b.rowPtr[:b.rows()]...)
	for i := 0; i < m; i++ {
		v := l.V[i]
		if v >= uint64(n) {
			return nil, fmt.Errorf("dist: end vertex %d out of range N=%d", v, n)
		}
		li := int(l.U[i]) - lo
		cols[next[li]] = uint32(v)
		next[li]++
	}
	// Sort each row bucket and accumulate duplicates into counts, exactly
	// as sparse.compressRows does for the square build.
	outPtr := make([]int64, b.rows()+1)
	outCols := cols[:0] // compact in place: writes never overtake reads
	vals := make([]float64, 0, m)
	w := int64(0)
	for i := 0; i < b.rows(); i++ {
		row := cols[b.rowPtr[i]:b.rowPtr[i+1]]
		sortCols(row)
		for k := 0; k < len(row); {
			c := row[k]
			cnt := 1
			for k+cnt < len(row) && row[k+cnt] == c {
				cnt++
			}
			outCols = append(outCols[:w], c)
			vals = append(vals, float64(cnt))
			w++
			k += cnt
		}
		outPtr[i+1] = w
	}
	b.rowPtr = outPtr
	b.col = outCols[:w]
	b.val = vals
	return b, nil
}

// sortCols sorts a row's column bucket: insertion sort for the short rows
// that dominate Kronecker graphs, sort.Slice for hub rows (the same
// policy as sparse's row builder).
func sortCols(s []uint32) {
	if len(s) < 24 {
		for i := 1; i < len(s); i++ {
			v := s[i]
			j := i - 1
			for j >= 0 && s[j] > v {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = v
		}
		return
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// blockOf returns the [lo, hi) row block of a global matrix as a view
// sharing the Col/Val storage (row pointers are rebased into a fresh
// hi-lo+1 slice).
func blockOf(a *sparse.CSR, lo, hi int) *block {
	loPtr := a.RowPtr[lo]
	rowPtr := make([]int64, hi-lo+1)
	for i := lo; i <= hi; i++ {
		rowPtr[i-lo] = a.RowPtr[i] - loPtr
	}
	return &block{
		lo: lo, hi: hi, n: a.N,
		rowPtr: rowPtr,
		col:    a.Col[loPtr:a.RowPtr[hi]],
		val:    a.Val[loPtr:a.RowPtr[hi]],
	}
}

// sumValues returns the sum of the block's stored values.
func (b *block) sumValues() float64 {
	var s float64
	for _, v := range b.val {
		s += v
	}
	return s
}

// inDegrees returns the block's contribution to the global column sums
// din = sum(A, 1) as a full-length n vector — the payload of kernel 2's
// in-degree all-reduce.
func (b *block) inDegrees() []float64 {
	din := make([]float64, b.n)
	for k, c := range b.col {
		din[c] += b.val[k]
	}
	return din
}

// outDegrees returns the row sums of the owned rows as a local-length
// (hi-lo) vector; local index i is global row lo+i.
func (b *block) outDegrees() []float64 {
	dout := make([]float64, b.rows())
	for i := range dout {
		var s float64
		for k := b.rowPtr[i]; k < b.rowPtr[i+1]; k++ {
			s += b.val[k]
		}
		dout[i] = s
	}
	return dout
}

// zeroColumns zeroes every stored entry whose column is masked, leaving
// explicit zeros for compact to drop.
func (b *block) zeroColumns(mask []bool) {
	for k, c := range b.col {
		if mask[c] {
			b.val[k] = 0
		}
	}
}

// compact removes stored zeros, preserving order.
func (b *block) compact() {
	w := int64(0)
	read := int64(0)
	for i := 0; i < b.rows(); i++ {
		hi := b.rowPtr[i+1]
		for ; read < hi; read++ {
			if b.val[read] != 0 {
				b.col[w] = b.col[read]
				b.val[w] = b.val[read]
				w++
			}
		}
		b.rowPtr[i+1] = w
	}
	b.col = b.col[:w]
	b.val = b.val[:w]
}

// scaleRows divides row i by dout[i] wherever dout[i] is non-zero: the
// kernel-2 normalization, applied block-locally (dout is local-length).
func (b *block) scaleRows(dout []float64) {
	for i := 0; i < b.rows(); i++ {
		s := dout[i]
		if s == 0 {
			continue
		}
		inv := 1 / s
		for k := b.rowPtr[i]; k < b.rowPtr[i+1]; k++ {
			b.val[k] *= inv
		}
	}
}

// vxm computes out = r·A for the owned row block: the scatter product of
// sparse.CSR.VxM restricted to [lo, hi).  out and r are full length; out
// is zeroed first, and contributions scatter to arbitrary columns.  The
// loop order matches the serial scatter engine's, so summing the p block
// partials in rank order reproduces its floating-point association.
func (b *block) vxm(out, r []float64) {
	for i := range out {
		out[i] = 0
	}
	for i := 0; i < b.rows(); i++ {
		ri := r[b.lo+i]
		if ri == 0 {
			continue
		}
		for k := b.rowPtr[i]; k < b.rowPtr[i+1]; k++ {
			out[b.col[k]] += ri * b.val[k]
		}
	}
}

// appendTo appends the block's rows to a global CSR under assembly; blocks
// must be appended in rank order.
func (b *block) appendTo(out *sparse.CSR) {
	for i := 0; i < b.rows(); i++ {
		lo, hi := b.rowPtr[i], b.rowPtr[i+1]
		out.Col = append(out.Col, b.col[lo:hi]...)
		out.Val = append(out.Val, b.val[lo:hi]...)
		out.RowPtr[b.lo+i+1] = int64(len(out.Col))
	}
}
