package dist

// Distributed kernels 2 and 3: 1D row-block decomposition.  Each virtual
// processor owns a contiguous block of rows of the adjacency matrix;
// kernel 2 routes edges to the row owner, builds the local counting
// matrix, all-reduces the in-degree vector to apply the paper's
// super-node/leaf filter globally, and normalizes rows locally.  Kernel 3
// keeps the rank vector replicated: every iteration each processor
// computes the partial product of its row block and the partials are
// summed by one all-reduce — the communication pattern whose closed form
// the paper derives and PredictedCommBytes reproduces.

import (
	"fmt"

	"repro/internal/edge"
	"repro/internal/pagerank"
	"repro/internal/sparse"
)

// Result is the outcome of a distributed kernel-2/kernel-3 run.
type Result struct {
	// Rank is the final rank vector, matching the serial engines to ~1e-12.
	Rank []float64
	// NNZ is the global stored-entry count of the filtered matrix.
	NNZ int
	// Comm is the full communication record of the run.
	Comm CommStats
	// Iterations is the number of PageRank update steps performed.
	Iterations int
}

// BuildResult is the outcome of the distributed kernel 2 alone.
type BuildResult struct {
	// Matrix is the assembled global filtered, normalized matrix — bit-for-
	// bit equal to the serial kernel-2 output (sparse.FromEdges followed by
	// the kernel-2 filter), because row blocks are disjoint and integer
	// degree sums are exact.
	Matrix *sparse.CSR
	// Mass is sum(A) before filtering (equals M for a full edge list).
	Mass float64
	// NNZ is the filtered stored-entry count.
	NNZ int
	// Comm records the edge routing and the in-degree all-reduce.
	Comm CommStats
}

// rankState is one virtual processor's share of the matrix: the row block
// [lo, hi) of a square n×n CSR whose rows outside the block are empty.
// The square form duplicates O(n) row pointers per rank; the simulation's
// footprint is O(p·n) regardless because of the p full-length partial
// vectors the replicated-rank-vector model requires, so block-local
// storage is deferred until a real multi-process runtime needs it (see
// ROADMAP).
type rankState struct {
	lo, hi int
	a      *sparse.CSR
	// danglingRows lists owned rows with zero out-degree after filtering.
	danglingRows []int
}

// Run executes the distributed kernel-2/kernel-3 pipeline over p virtual
// processors: route edges by row owner, build and filter the distributed
// matrix, then iterate PageRank with a metered all-reduce per step.  The
// result matches pagerank.Scatter on the serially built and filtered
// matrix to well under 1e-9 for every p.
func Run(l *edge.List, n, p int, opt pagerank.Options) (*Result, error) {
	c := &comm{p: p}
	states, _, nnz, err := buildFiltered(l, n, p, c)
	if err != nil {
		return nil, err
	}
	rank, iters, err := iterate(states, n, opt, c)
	if err != nil {
		return nil, err
	}
	return &Result{Rank: rank, NNZ: nnz, Comm: c.st, Iterations: iters}, nil
}

// RunMatrix executes the metered distributed kernel-3 iteration on an
// already filtered, normalized matrix (kernel 2's output), splitting it
// into p row blocks.  It is the kernel-3 entry point of the pipeline's
// "dist" variant, which builds the matrix through BuildFiltered first.
func RunMatrix(a *sparse.CSR, p int, opt pagerank.Options) (*Result, error) {
	if a == nil {
		return nil, fmt.Errorf("dist: RunMatrix of nil matrix")
	}
	if p < 1 {
		return nil, fmt.Errorf("dist: RunMatrix with p = %d, want >= 1", p)
	}
	states := splitMatrix(a, p)
	c := &comm{p: p}
	rank, iters, err := iterate(states, a.N, opt, c)
	if err != nil {
		return nil, err
	}
	return &Result{Rank: rank, NNZ: a.NNZ(), Comm: c.st, Iterations: iters}, nil
}

// BuildFiltered executes the distributed kernel 2 over p virtual
// processors and assembles the global filtered matrix from the row blocks.
func BuildFiltered(l *edge.List, n, p int) (*BuildResult, error) {
	c := &comm{p: p}
	states, mass, nnz, err := buildFiltered(l, n, p, c)
	if err != nil {
		return nil, err
	}
	return &BuildResult{Matrix: assemble(states, n), Mass: mass, NNZ: nnz, Comm: c.st}, nil
}

// buildFiltered routes edges, builds per-rank local matrices and applies
// the kernel-2 filter with a global in-degree all-reduce.  The filter
// semantics are exactly pipeline.ApplyKernel2Filter's — both derive the
// column mask from sparse.Kernel2Mask:
//
//	din = sum(A,1); zero columns with din == max(din) or din == 1;
//	compact; divide each non-empty row by its out-degree.
func buildFiltered(l *edge.List, n, p int, c *comm) ([]*rankState, float64, int, error) {
	if l == nil {
		return nil, 0, 0, fmt.Errorf("dist: nil edge list")
	}
	if n < 1 {
		return nil, 0, 0, fmt.Errorf("dist: n = %d, want >= 1", n)
	}
	if p < 1 {
		return nil, 0, 0, fmt.Errorf("dist: p = %d, want >= 1", p)
	}

	// Route edges to their row owner, scanning source chunks in rank
	// order.  Off-rank edges are metered as all-to-all traffic.
	parts := make([]*edge.List, p)
	for r := range parts {
		parts[r] = edge.NewList(0)
	}
	m := l.Len()
	for src := 0; src < p; src++ {
		lo, hi := blockBounds(m, p, src)
		for i := lo; i < hi; i++ {
			u, v := l.U[i], l.V[i]
			if u >= uint64(n) || v >= uint64(n) {
				return nil, 0, 0, fmt.Errorf("dist: edge (%d,%d) out of range N=%d", u, v, n)
			}
			d := blockOwner(n, p, int(u))
			parts[d].Append(u, v)
			if d != src {
				c.st.AllToAllBytes += 16
			}
		}
	}

	// Local counting-matrix builds (square n×n; only owned rows occupied).
	states := make([]*rankState, p)
	massParts := make([]float64, p)
	partialDin := make([][]float64, p)
	for r := 0; r < p; r++ {
		lo, hi := blockBounds(n, p, r)
		a, err := sparse.FromEdges(parts[r], n)
		if err != nil {
			return nil, 0, 0, err
		}
		states[r] = &rankState{lo: lo, hi: hi, a: a}
		massParts[r] = a.SumValues()
		partialDin[r] = a.InDegrees()
	}
	// The global matrix mass is a cross-rank scalar reduction (it feeds
	// the paper's sum(A) == M check), so it is metered like one.
	mass := c.allReduceScalar(massParts)

	// Global filter: one all-reduce of the in-degree vector, then purely
	// local column zeroing and row normalization.  Degree sums are integer
	// counts, so the distributed din is exact and the shared mask rule
	// (sparse.Kernel2Mask, also used by the serial filter) produces the
	// same mask the serial kernel 2 computes.
	din := make([]float64, n)
	c.allReduceSum(din, partialDin)
	mask, _, _, _ := sparse.Kernel2Mask(din)
	nnzParts := make([]float64, p)
	for r, st := range states {
		st.a.ZeroColumns(mask)
		st.a.Compact()
		dout := st.a.OutDegrees()
		st.a.ScaleRows(dout)
		for i := st.lo; i < st.hi; i++ {
			if dout[i] == 0 {
				st.danglingRows = append(st.danglingRows, i)
			}
		}
		nnzParts[r] = float64(st.a.NNZ())
	}
	// The global stored-entry count is likewise a metered scalar
	// reduction; counts are integers, so the float64 sum is exact.
	nnz := int(c.allReduceScalar(nnzParts))
	return states, mass, nnz, nil
}

// splitMatrix views a global matrix as p row-block rankStates sharing the
// original Col/Val storage.
func splitMatrix(a *sparse.CSR, p int) []*rankState {
	states := make([]*rankState, p)
	dout := a.OutDegrees()
	for r := 0; r < p; r++ {
		lo, hi := blockBounds(a.N, p, r)
		loPtr, hiPtr := a.RowPtr[lo], a.RowPtr[hi]
		rowPtr := make([]int64, a.N+1)
		for i := 1; i <= a.N; i++ {
			switch {
			case i <= lo:
				rowPtr[i] = 0
			case i >= hi:
				rowPtr[i] = hiPtr - loPtr
			default:
				rowPtr[i] = a.RowPtr[i] - loPtr
			}
		}
		st := &rankState{lo: lo, hi: hi, a: &sparse.CSR{
			N: a.N, RowPtr: rowPtr, Col: a.Col[loPtr:hiPtr], Val: a.Val[loPtr:hiPtr],
		}}
		for i := lo; i < hi; i++ {
			if dout[i] == 0 {
				st.danglingRows = append(st.danglingRows, i)
			}
		}
		states[r] = st
	}
	return states
}

// vxm computes out = r·A for this processor's share: the scatter product
// of sparse.CSR.VxM restricted to the owned row block [lo, hi), so the
// row scan is bounded by the block instead of walking all n (empty) row
// headers.  out is full length — contributions scatter to arbitrary
// columns — and is zeroed first.
func (st *rankState) vxm(out, r []float64) {
	for i := range out {
		out[i] = 0
	}
	a := st.a
	for i := st.lo; i < st.hi; i++ {
		ri := r[i]
		if ri == 0 {
			continue
		}
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			out[a.Col[k]] += ri * a.Val[k]
		}
	}
}

// assemble concatenates the disjoint row blocks back into one global CSR.
func assemble(states []*rankState, n int) *sparse.CSR {
	nnz := 0
	for _, st := range states {
		nnz += st.a.NNZ()
	}
	out := &sparse.CSR{
		N:      n,
		RowPtr: make([]int64, n+1),
		Col:    make([]uint32, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
	for _, st := range states {
		for i := st.lo; i < st.hi; i++ {
			lo, hi := st.a.RowPtr[i], st.a.RowPtr[i+1]
			out.Col = append(out.Col, st.a.Col[lo:hi]...)
			out.Val = append(out.Val, st.a.Val[lo:hi]...)
			out.RowPtr[i+1] = int64(len(out.Col))
		}
	}
	return out
}

// iterate is the distributed kernel-3 driver: pagerank.RunCustom supplies
// the exact serial update semantics, and the two hooks distribute it —
// the step hook computes each processor's row-block partial product and
// all-reduces the partials, and the dangling-mass hook performs a scalar
// all-reduce because out-degrees are distributed.  The rank vector stays
// replicated: rank 0 materializes the initial vector inside the driver
// and one broadcast ships it.
func iterate(states []*rankState, n int, opt pagerank.Options, c *comm) ([]float64, int, error) {
	partials := make([][]float64, len(states))
	for i := range partials {
		partials[i] = make([]float64, n)
	}
	dangleParts := make([]float64, len(states))
	step := func(out, r []float64) {
		for rk, st := range states {
			st.vxm(partials[rk], r)
		}
		c.allReduceSum(out, partials)
	}
	dangleMass := func(r []float64) float64 {
		for rk, st := range states {
			var s float64
			for _, i := range st.danglingRows {
				s += r[i]
			}
			dangleParts[rk] = s
		}
		return c.allReduceScalar(dangleParts)
	}
	c.broadcastFloats(n) // the initial rank vector
	res, err := pagerank.RunCustom(n, step, dangleMass, opt)
	if err != nil {
		return nil, 0, err
	}
	return res.Rank, res.Iterations, nil
}
