package dist

// Distributed kernels 2 and 3: 1D row-block decomposition.  Each processor
// owns a contiguous block of rows of the adjacency matrix; kernel 2 routes
// edges to the row owner, builds the block-local counting matrix,
// all-reduces the in-degree vector to apply the paper's super-node/leaf
// filter globally, and normalizes rows locally.  Kernel 3 keeps the rank
// vector replicated: every iteration each processor computes the partial
// product of its row block and the partials are summed by one all-reduce —
// the communication pattern whose closed form the paper derives and
// PredictedCommBytes reproduces.
//
// This file is the simulated (single-threaded) execution of that schedule;
// rank.go executes the identical schedule on p concurrent goroutine ranks
// (DESIGN.md §5).  Both share the block type, the collective wire-cost
// formulas in dist.go, and pagerank.RunCustom's update semantics, which is
// what keeps their results bit-for-bit equal and their byte counts
// identical.

import (
	"context"
	"fmt"

	"repro/internal/edge"
	"repro/internal/pagerank"
	"repro/internal/sparse"
)

// Result is the outcome of a distributed kernel-2/kernel-3 run.
type Result struct {
	// Rank is the final rank vector, matching the serial engines to ~1e-12.
	Rank []float64
	// NNZ is the global stored-entry count of the filtered matrix.
	NNZ int
	// Comm is the full communication record of the run.
	Comm CommStats
	// Iterations is the number of PageRank update steps performed.
	Iterations int
	// RankSeconds is each rank's wall-clock execution time.  Only the
	// goroutine runtime fills it (the simulation runs all ranks on one
	// thread, where per-rank wall-clock is meaningless); perfmodel's
	// CompareRankElapsed relates it to the parallel hardware model.
	RankSeconds []float64
	// Checkpoint reports what the checkpoint/restart machinery did; nil
	// when the Spec enabled neither checkpointing nor resume.
	Checkpoint *CheckpointStats
	// Wire is the measured socket traffic, summed over the workers' mesh
	// links (ExecSocket only, else nil).  Wire.DataBytes equals Comm's
	// total byte count identically — the metered model tested against an
	// actual network.
	Wire *WireStats
}

// BuildResult is the outcome of the distributed kernel 2 alone.
type BuildResult struct {
	// Matrix is the assembled global filtered, normalized matrix — bit-for-
	// bit equal to the serial kernel-2 output (sparse.FromEdges followed by
	// the kernel-2 filter), because row blocks are disjoint and integer
	// degree sums are exact.
	Matrix *sparse.CSR
	// Mass is sum(A) before filtering (equals M for a full edge list).
	Mass float64
	// NNZ is the filtered stored-entry count.
	NNZ int
	// Comm records the edge routing and the in-degree all-reduce.
	Comm CommStats
	// Wire is the measured socket traffic (ExecSocket only, else nil).
	Wire *WireStats
}

// rankState is one processor's share of the matrix: the rectangular row
// block (block-local CSR, hi-lo+1 row pointers) plus the owned dangling
// rows.  Both runtimes use it; p ranks together hold n+p row pointers,
// the footprint a real distributed memory forces.
type rankState struct {
	blk *block
	// danglingRows lists owned rows (global indices) with zero out-degree
	// after filtering.
	danglingRows []int
}

// Run executes the distributed kernel-2/kernel-3 pipeline over p simulated
// processors: route edges by row owner, build and filter the distributed
// matrix, then iterate PageRank with a metered all-reduce per step.  The
// result matches pagerank.Scatter on the serially built and filtered
// matrix to well under 1e-9 for every p.
//
// Deprecated: use Execute with OpRun.
func Run(l *edge.List, n, p int, opt pagerank.Options) (*Result, error) {
	return RunCfg(Config{}, l, n, p, opt)
}

// runSim is the simulated execution of Run's schedule under cfg.
func runSim(ctx context.Context, cfg Config, l *edge.List, n, p int, opt pagerank.Options, ck *ckptRun) (*Result, error) {
	c := &comm{p: p}
	states, _, nnz, err := buildFiltered(ctx, l, n, p, c)
	if err != nil {
		return nil, err
	}
	rank, iters, err := iterate(ctx, states, n, opt, c, cfg.workers(), ck)
	if err != nil {
		return nil, err
	}
	return &Result{Rank: rank, NNZ: nnz, Comm: c.st, Iterations: iters}, nil
}

// RunMatrix executes the metered distributed kernel-3 iteration on an
// already filtered, normalized matrix (kernel 2's output), splitting it
// into p row blocks.  It is the kernel-3 entry point of the pipeline's
// "dist" variant, which builds the matrix through the kernel-2 op first.
//
// Deprecated: use Execute with OpRunMatrix.
func RunMatrix(a *sparse.CSR, p int, opt pagerank.Options) (*Result, error) {
	return RunMatrixCfg(Config{}, a, p, opt)
}

// runMatrixSim is the simulated execution of RunMatrix's schedule under
// cfg.
func runMatrixSim(ctx context.Context, cfg Config, a *sparse.CSR, p int, opt pagerank.Options, ck *ckptRun) (*Result, error) {
	if a == nil {
		return nil, fmt.Errorf("dist: RunMatrix of nil matrix")
	}
	if p < 1 {
		return nil, fmt.Errorf("dist: RunMatrix with p = %d, want >= 1", p)
	}
	states := splitMatrix(a, p)
	c := &comm{p: p}
	rank, iters, err := iterate(ctx, states, a.N, opt, c, cfg.workers(), ck)
	if err != nil {
		return nil, err
	}
	return &Result{Rank: rank, NNZ: a.NNZ(), Comm: c.st, Iterations: iters}, nil
}

// BuildFiltered executes the distributed kernel 2 over p simulated
// processors and assembles the global filtered matrix from the row blocks.
//
// Deprecated: use Execute with OpBuildFiltered.
func BuildFiltered(l *edge.List, n, p int) (*BuildResult, error) {
	return BuildFilteredMode(ExecSim, l, n, p)
}

// buildFilteredSim is the simulated execution of the kernel-2 schedule,
// assembling the global filtered matrix from the row blocks.
func buildFilteredSim(ctx context.Context, l *edge.List, n, p int) (*BuildResult, error) {
	c := &comm{p: p}
	states, mass, nnz, err := buildFiltered(ctx, l, n, p, c)
	if err != nil {
		return nil, err
	}
	return &BuildResult{Matrix: assemble(states, n), Mass: mass, NNZ: nnz, Comm: c.st}, nil
}

// validateRun checks the shared preconditions of both runtimes' kernel-2
// entry points.  The goroutine runtime validates before spawning ranks so
// a bad edge cannot strand the other ranks inside a collective.
func validateRun(l *edge.List, n, p int) error {
	if l == nil {
		return fmt.Errorf("dist: nil edge list")
	}
	if n < 1 {
		return fmt.Errorf("dist: n = %d, want >= 1", n)
	}
	if p < 1 {
		return fmt.Errorf("dist: p = %d, want >= 1", p)
	}
	for i := 0; i < l.Len(); i++ {
		if l.U[i] >= uint64(n) || l.V[i] >= uint64(n) {
			return fmt.Errorf("dist: edge (%d,%d) out of range N=%d", l.U[i], l.V[i], n)
		}
	}
	return nil
}

// routeChunk partitions one rank's input chunk [lo, hi) of the global edge
// list by row owner, appending to the p per-destination lists — the local
// half of the kernel-2 all-to-all, shared by both runtimes (the goroutine
// ranks route into private outboxes, the simulation directly into the
// global parts).  It returns the count routed to each destination, which
// is what the simulation meters.
func routeChunk(out []*edge.List, l *edge.List, n, p, lo, hi int) []int {
	counts := make([]int, p)
	for i := lo; i < hi; i++ {
		d := blockOwner(n, p, int(l.U[i]))
		out[d].Append(l.U[i], l.V[i])
		counts[d]++
	}
	return counts
}

// filterBlock applies the kernel-2 filter to one rank's block given the
// globally reduced in-degree vector, and returns the owned dangling rows
// (global indices) and the local stored-entry count — the purely local
// step between the in-degree all-reduce and the NNZ reduction, shared by
// both runtimes.  The mask rule is sparse.Kernel2Mask, the same the serial
// filter uses, which is what keeps the distributed filter bit-identical.
func filterBlock(blk *block, din []float64) (dangling []int, nnz int) {
	mask, _, _, _ := sparse.Kernel2Mask(din)
	blk.zeroColumns(mask)
	blk.compact()
	dout := blk.outDegrees()
	blk.scaleRows(dout)
	for i, d := range dout {
		if d == 0 {
			dangling = append(dangling, blk.lo+i)
		}
	}
	return dangling, blk.nnz()
}

// buildFiltered routes edges, builds per-rank block-local matrices and
// applies the kernel-2 filter with a global in-degree all-reduce.  The
// filter semantics are exactly pipeline.ApplyKernel2Filter's — both derive
// the column mask from sparse.Kernel2Mask:
//
//	din = sum(A,1); zero columns with din == max(din) or din == 1;
//	compact; divide each non-empty row by its out-degree.
func buildFiltered(ctx context.Context, l *edge.List, n, p int, c *comm) ([]*rankState, float64, int, error) {
	if err := validateRun(l, n, p); err != nil {
		return nil, 0, 0, err
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, 0, err
	}

	// Route edges to their row owner, scanning source chunks in rank
	// order.  Off-rank edges are metered as all-to-all traffic.
	parts := make([]*edge.List, p)
	for r := range parts {
		parts[r] = edge.NewList(0)
	}
	m := l.Len()
	for src := 0; src < p; src++ {
		lo, hi := blockBounds(m, p, src)
		for d, cnt := range routeChunk(parts, l, n, p, lo, hi) {
			if d != src {
				c.st.AllToAllBytes += edgeWireBytes * uint64(cnt)
			}
		}
	}

	// Local block builds: each rank holds only its owned rows.  The
	// routing pass above and the per-rank builds below are the kernel's
	// long phases, so each is a cancellation point.
	if err := ctx.Err(); err != nil {
		return nil, 0, 0, err
	}
	states := make([]*rankState, p)
	massParts := make([]float64, p)
	partialDin := make([][]float64, p)
	for r := 0; r < p; r++ {
		lo, hi := blockBounds(n, p, r)
		blk, err := buildBlock(parts[r], n, lo, hi)
		if err != nil {
			return nil, 0, 0, err
		}
		states[r] = &rankState{blk: blk}
		massParts[r] = blk.sumValues()
		partialDin[r] = blk.inDegrees()
	}
	// The global matrix mass is a cross-rank scalar reduction (it feeds
	// the paper's sum(A) == M check), so it is metered like one.
	mass := c.allReduceScalar(massParts)

	// Global filter: one all-reduce of the in-degree vector, then purely
	// local column zeroing and row normalization.  Degree sums are integer
	// counts, so the distributed din is exact and the shared mask rule
	// (sparse.Kernel2Mask, also used by the serial filter) produces the
	// same mask the serial kernel 2 computes.
	din := make([]float64, n)
	c.allReduceSum(din, partialDin)
	nnzParts := make([]float64, p)
	for r, st := range states {
		var local int
		st.danglingRows, local = filterBlock(st.blk, din)
		nnzParts[r] = float64(local)
	}
	// The global stored-entry count is likewise a metered scalar
	// reduction; counts are integers, so the float64 sum is exact.
	nnz := int(c.allReduceScalar(nnzParts))
	return states, mass, nnz, nil
}

// splitMatrix views a global matrix as p row-block rankStates sharing the
// original Col/Val storage.
func splitMatrix(a *sparse.CSR, p int) []*rankState {
	states := make([]*rankState, p)
	dout := a.OutDegrees()
	for r := 0; r < p; r++ {
		lo, hi := blockBounds(a.N, p, r)
		st := &rankState{blk: blockOf(a, lo, hi)}
		for i := lo; i < hi; i++ {
			if dout[i] == 0 {
				st.danglingRows = append(st.danglingRows, i)
			}
		}
		states[r] = st
	}
	return states
}

// assemble concatenates the disjoint row blocks back into one global CSR.
func assemble(states []*rankState, n int) *sparse.CSR {
	nnz := 0
	for _, st := range states {
		nnz += st.blk.nnz()
	}
	out := &sparse.CSR{
		N:      n,
		RowPtr: make([]int64, n+1),
		Col:    make([]uint32, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
	for _, st := range states {
		st.blk.appendTo(out)
	}
	return out
}

// danglingMassOf sums the rank mass sitting on one rank's owned dangling
// rows — the local contribution to the dangling-mass scalar all-reduce,
// shared by both runtimes.
func danglingMassOf(st *rankState, r []float64) float64 {
	var s float64
	for _, i := range st.danglingRows {
		s += r[i]
	}
	return s
}

// iterate is the simulated distributed kernel-3 driver: pagerank.Engine
// supplies the exact serial update semantics, and the two hooks distribute
// it — the step hook computes each processor's row-block partial product
// and all-reduces the partials, and the dangling-mass hook performs a
// scalar all-reduce because out-degrees are distributed.  The rank vector
// stays replicated: rank 0 materializes the initial vector inside the
// driver and one broadcast ships it.  With workers > 1 each simulated
// rank's local product runs on its own hybrid worker team (spmvOf), which
// changes wall clock but — by the §7 transpose-once construction — not a
// single bit of the result.  The engine is driven through RunContext, so
// a cancelled ctx aborts between iterations; the deferred team closes
// run on that path too.  The checkpoint runtime (ck, may be nil) hangs
// off the engine's post-iteration hook: the single simulated driver
// writes every rank's chunk and the commit itself, unmetered — epoch
// I/O is storage traffic, not the data plane CommStats prices.
func iterate(ctx context.Context, states []*rankState, n int, opt pagerank.Options, c *comm, workers int, ck *ckptRun) ([]float64, int, error) {
	partials := make([][]float64, len(states))
	for i := range partials {
		partials[i] = make([]float64, n)
	}
	spmvs := make([]func(out, r []float64), len(states))
	for i, st := range states {
		spmv, h := spmvOf(st, workers)
		spmvs[i] = spmv
		if h != nil {
			defer h.close()
		}
	}
	dangleParts := make([]float64, len(states))
	step := func(out, r []float64) {
		for rk := range states {
			spmvs[rk](partials[rk], r)
		}
		c.allReduceSum(out, partials)
	}
	dangleMass := func(r []float64) float64 {
		for rk, st := range states {
			dangleParts[rk] = danglingMassOf(st, r)
		}
		return c.allReduceScalar(dangleParts)
	}
	c.broadcastFloats(n) // the initial rank vector
	e, err := pagerank.NewEngine(n, step, dangleMass, opt)
	if err != nil {
		return nil, 0, err
	}
	res, err := e.RunContextAfter(ctx, ck.afterSim(states))
	if err != nil {
		return nil, 0, err
	}
	return res.Rank, res.Iterations, nil
}
