package dist_test

// Chaos harness for the fault-injection plane (ISSUE 7): table-driven
// FaultPlan scenarios — first rank vs last rank, first iteration vs
// final iteration, fault during the checkpoint write itself — each
// asserting three things: the run dies with ErrFaultInjected, the
// teardown plane strands no goroutine, and a subsequent resume still
// reproduces the uninterrupted ranks bit-for-bit.  Run under -race in
// CI's chaos step.

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"repro/internal/dist"
	"repro/internal/pagerank"
	"repro/internal/vfs"
)

func TestChaosFaultPlans(t *testing.T) {
	const procs, iters = 4, 10
	l, n := executeGraph(t, 7)
	baseline, err := dist.Execute(context.Background(), dist.Spec{
		Op: dist.OpRun, Edges: l, N: n, Procs: procs,
		PageRank: pagerank.Options{Seed: 5, Iterations: iters},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name       string
		fault      dist.FaultPlan
		resumeFrom int64 // epoch the restart must pick up (0 = fresh start)
	}{
		{"rank0-first-iteration", dist.FaultPlan{KillRank: 0, AtIteration: 1}, 0},
		{"rank0-mid-run", dist.FaultPlan{KillRank: 0, AtIteration: 5}, 3},
		{"last-rank-mid-run", dist.FaultPlan{KillRank: procs - 1, AtIteration: 5}, 3},
		{"last-rank-final-iteration", dist.FaultPlan{KillRank: procs - 1, AtIteration: iters}, 9},
		{"rank0-during-checkpoint", dist.FaultPlan{KillRank: 0, AtIteration: 6, DuringCheckpoint: true}, 3},
		{"last-rank-during-checkpoint", dist.FaultPlan{KillRank: procs - 1, AtIteration: 9, DuringCheckpoint: true}, 6},
		{"mid-rank-at-epoch-boundary", dist.FaultPlan{KillRank: 2, AtIteration: 6}, 6},
	}
	for _, mode := range []dist.ExecMode{dist.ExecSim, dist.ExecGoroutine} {
		for _, tc := range cases {
			t.Run(mode.String()+"/"+tc.name, func(t *testing.T) {
				base := runtime.NumGoroutine()
				fs := vfs.NewMem()
				kill := ckptSpec(mode, procs, fs)
				kill.Edges, kill.N = l, n
				fault := tc.fault
				kill.Fault = &fault
				if _, err := dist.Execute(context.Background(), kill); !errors.Is(err, dist.ErrFaultInjected) {
					t.Fatalf("kill err = %v, want ErrFaultInjected", err)
				}
				// The teardown plane must unwind every rank goroutine
				// before Execute returns — no leak, even with the
				// victim dead mid-protocol.
				waitForGoroutines(t, base)

				resume := ckptSpec(mode, procs, fs)
				resume.Edges, resume.N = l, n
				out, err := dist.Execute(context.Background(), resume)
				if err != nil {
					t.Fatalf("resume: %v", err)
				}
				sameRank(t, "chaos resume", baseline.Run.Rank, out.Run.Rank)
				st := out.Run.Checkpoint
				if st == nil {
					t.Fatal("resume reported no checkpoint stats")
				}
				if st.ResumedFrom != tc.resumeFrom {
					t.Fatalf("resumed from epoch %d, want %d", st.ResumedFrom, tc.resumeFrom)
				}
				if tc.resumeFrom == 0 && st.Resumed {
					t.Fatal("fresh start misreported as a resume")
				}
				waitForGoroutines(t, base)
			})
		}
	}
}

// TestChaosRepeatedKills drives one storage through a kill at every
// epoch boundary in sequence — crash, restart, crash again — and checks
// the final completed run still matches the uninterrupted trajectory.
func TestChaosRepeatedKills(t *testing.T) {
	const procs, iters = 3, 10
	l, n := executeGraph(t, 7)
	baseline, err := dist.Execute(context.Background(), dist.Spec{
		Op: dist.OpRun, Edges: l, N: n, Procs: procs,
		PageRank: pagerank.Options{Seed: 5, Iterations: iters},
	})
	if err != nil {
		t.Fatal(err)
	}
	fs := vfs.NewMem()
	for i, at := range []int{3, 6, 9} {
		kill := ckptSpec(dist.ExecGoroutine, procs, fs)
		kill.Edges, kill.N = l, n
		kill.Fault = &dist.FaultPlan{KillRank: at % procs, AtIteration: at}
		if _, err := dist.Execute(context.Background(), kill); !errors.Is(err, dist.ErrFaultInjected) {
			t.Fatalf("kill %d: err = %v", i, err)
		}
	}
	final := ckptSpec(dist.ExecGoroutine, procs, fs)
	final.Edges, final.N = l, n
	out, err := dist.Execute(context.Background(), final)
	if err != nil {
		t.Fatal(err)
	}
	sameRank(t, "after repeated kills", baseline.Run.Rank, out.Run.Rank)
	if out.Run.Checkpoint.ResumedFrom != 9 {
		t.Fatalf("final resume from %d, want 9", out.Run.Checkpoint.ResumedFrom)
	}
}

// TestChaosFaultWithoutCheckpoint pins the fault plane standing alone:
// no FS configured, the victim still dies cleanly with ErrFaultInjected
// and no goroutine leaks.
func TestChaosFaultWithoutCheckpoint(t *testing.T) {
	l, n := executeGraph(t, 7)
	for _, mode := range []dist.ExecMode{dist.ExecSim, dist.ExecGoroutine} {
		base := runtime.NumGoroutine()
		_, err := dist.Execute(context.Background(), dist.Spec{
			Config: dist.Config{Mode: mode}, Op: dist.OpRun, Edges: l, N: n, Procs: 4,
			PageRank: pagerank.Options{Seed: 5, Iterations: 10},
			Fault:    &dist.FaultPlan{KillRank: 1, AtIteration: 4},
		})
		if !errors.Is(err, dist.ErrFaultInjected) {
			t.Fatalf("mode=%v: err = %v", mode, err)
		}
		waitForGoroutines(t, base)
	}
}

// TestChaosFaultUnderCancellation races the injected fault against a
// context cancellation: whichever wins, Execute must return an error
// and unwind every rank.
func TestChaosFaultUnderCancellation(t *testing.T) {
	l, n := executeGraph(t, 7)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	spec := ckptSpec(dist.ExecGoroutine, 4, vfs.NewMem())
	spec.Edges, spec.N = l, n
	spec.Fault = &dist.FaultPlan{KillRank: 3, AtIteration: 6}
	spec.PageRank.Progress = func(it int) {
		if it == 4 {
			cancel()
		}
	}
	defer cancel()
	if _, err := dist.Execute(ctx, spec); err == nil {
		t.Fatal("no error from cancelled faulty run")
	}
	waitForGoroutines(t, base)
}
