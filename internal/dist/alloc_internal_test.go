package dist

// Allocation-regression pins for the hybrid runtime's steady state
// (DESIGN.md §7): one collective send/receive round trip over the pooled
// fabric and one hybrid per-rank kernel-3 step must perform zero heap
// allocations once warm.  These are the dist-side thirds of the
// zero-allocation budget; internal/pagerank pins the iteration engine
// itself.

import (
	"context"
	"testing"

	"repro/internal/kronecker"
	"repro/internal/pagerank"
)

// testBlock builds a filtered rank block from a small Kronecker graph.
func testBlock(t testing.TB, p, r int) (*rankState, int) {
	t.Helper()
	cfg := kronecker.New(8, 3)
	l, err := kronecker.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := int(cfg.N())
	c := &comm{p: p}
	states, _, _, err := buildFiltered(context.Background(), l, n, p, c)
	if err != nil {
		t.Fatal(err)
	}
	return states[r], n
}

func TestHybridStepZeroAllocs(t *testing.T) {
	st, n := testBlock(t, 3, 1)
	for _, w := range []int{2, 4} {
		h := newHybridSpMV(st.blk, w)
		out := make([]float64, n)
		r := make([]float64, n)
		for i := range r {
			r[i] = 1 / float64(n)
		}
		h.vxm(out, r) // warm the team
		if allocs := testing.AllocsPerRun(50, func() { h.vxm(out, r) }); allocs != 0 {
			t.Errorf("w=%d: hybrid per-rank SpMV step allocates %.1f/op, want 0", w, allocs)
		}
		h.close()
	}
}

func TestHybridMatchesSerialBlockVxM(t *testing.T) {
	// The unit-level bit-equality behind the p×w property tests: the
	// transposed-gather product must equal the serial scatter exactly.
	st, n := testBlock(t, 3, 1)
	r := make([]float64, n)
	for i := range r {
		r[i] = float64(i%7) / 3
	}
	r[st.blk.lo] = 0 // exercise the zero-skip path
	want := make([]float64, n)
	st.blk.vxm(want, r)
	for _, w := range []int{2, 3, 8} {
		h := newHybridSpMV(st.blk, w)
		got := make([]float64, n)
		for i := range got {
			got[i] = -1 // stale values must be overwritten or zeroed
		}
		h.vxm(got, r)
		h.close()
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("w=%d: out[%d] = %v, serial %v", w, j, got[j], want[j])
			}
		}
	}
}

func TestCollectiveRoundTripZeroAllocs(t *testing.T) {
	// One allReduceSum + one allReduceScalar round trip at p = 2 over the
	// pooled fabric.  Rank 1 runs a fixed number of lockstep rounds on a
	// helper goroutine; the collectives themselves synchronize the two
	// sides, and AllocsPerRun counts mallocs process-wide, so a stray
	// allocation on either side fails the pin.
	const warmup, runs = 8, 50
	const vecLen = 512
	f := newChanFabric(2)
	c0, c1 := newRankComm(f, 0), newRankComm(f, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		vec := make([]float64, vecLen)
		// AllocsPerRun calls its body runs+1 times (one warm-up call).
		for i := 0; i < warmup+runs+1; i++ {
			c1.allReduceSum(vec)
			c1.allReduceScalar(1)
		}
	}()
	vec := make([]float64, vecLen)
	round := func() {
		c0.allReduceSum(vec)
		c0.allReduceScalar(1)
	}
	for i := 0; i < warmup; i++ {
		round()
	}
	if allocs := testing.AllocsPerRun(runs, round); allocs != 0 {
		t.Errorf("collective round trip allocates %.1f/op, want 0", allocs)
	}
	<-done
}

func TestGoroutineIterationSteadyStateAllocFree(t *testing.T) {
	// End-to-end regression: the marginal allocation cost of extra
	// kernel-3 iterations in a full goroutine-mode hybrid run must be
	// zero — construction allocates, iterating must not.  Two runs
	// differing only in iteration count have identical setup, so the
	// difference divided by the extra iterations is the steady-state
	// per-iteration allocation count.
	cfg := kronecker.New(8, 3)
	l, err := kronecker.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := int(cfg.N())
	b, err := BuildFiltered(l, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(iters int) {
		res, err := RunMatrixCfg(Config{Mode: ExecGoroutine, Workers: 2}, b.Matrix, 3,
			pagerank.Options{Iterations: iters, Seed: 1, Dangling: true})
		if err != nil {
			t.Fatal(err)
		}
		_ = res
	}
	const extra = 40
	// testing.AllocsPerRun gives a clean malloc count per call; the
	// difference between the two run shapes is extra iterations' worth.
	short := testing.AllocsPerRun(3, func() { run(5) })
	long := testing.AllocsPerRun(3, func() { run(5 + extra) })
	perIter := (long - short) / extra
	if perIter > 0.5 {
		t.Errorf("steady-state goroutine iteration allocates %.2f/iter (short %.0f, long %.0f), want 0",
			perIter, short, long)
	}
}
