package dist_test

// Property tests for the hybrid intra-rank runtime (dist.Config.Workers):
// the worker count is a pure wall-clock knob.  For every p × w, in both
// execution modes, the rank vectors must equal the w = 1 simulation bit
// for bit, the CommStats record must be identical (intra-rank workers
// move no wire bytes), and the sorted kernel-1 output must equal the
// serial stable radix sort — DESIGN.md §7's invariants.

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/edge"
	"repro/internal/pagerank"
	"repro/internal/xsort"
)

// workerCounts crosses serial ranks, an even split and a worker count
// that exceeds some ranks' block sizes at small scales.
var workerCounts = []int{1, 2, 4}

func TestHybridRunBitForBitAcrossWorkersAndModes(t *testing.T) {
	l, n := kron(t, 8, 9)
	for _, dangling := range []bool{false, true} {
		opt := pagerank.Options{Seed: 4, Iterations: 6, Dangling: dangling}
		for _, p := range procCounts {
			base, err := dist.Run(l, n, p, opt) // sim, serial ranks: the contract baseline
			if err != nil {
				t.Fatalf("p=%d baseline: %v", p, err)
			}
			for _, w := range workerCounts {
				for _, mode := range []dist.ExecMode{dist.ExecSim, dist.ExecGoroutine} {
					res, err := dist.RunCfg(dist.Config{Mode: mode, Workers: w}, l, n, p, opt)
					if err != nil {
						t.Fatalf("p=%d w=%d %v: %v", p, w, mode, err)
					}
					if res.Comm != base.Comm {
						t.Errorf("p=%d w=%d %v dangling=%v: comm %+v, baseline %+v",
							p, w, mode, dangling, res.Comm, base.Comm)
					}
					if res.NNZ != base.NNZ || res.Iterations != base.Iterations {
						t.Errorf("p=%d w=%d %v: NNZ/iters %d/%d, baseline %d/%d",
							p, w, mode, res.NNZ, res.Iterations, base.NNZ, base.Iterations)
					}
					for i := range base.Rank {
						if res.Rank[i] != base.Rank[i] {
							t.Fatalf("p=%d w=%d %v dangling=%v: rank[%d] = %v, baseline %v — workers changed bits",
								p, w, mode, dangling, i, res.Rank[i], base.Rank[i])
						}
					}
				}
			}
		}
	}
}

func TestHybridRunMatrixBitForBitAcrossWorkers(t *testing.T) {
	l, n := kron(t, 7, 6)
	b, err := dist.BuildFiltered(l, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := pagerank.Options{Seed: 2, Dangling: true, Iterations: 5}
	for _, p := range procCounts {
		base, err := dist.RunMatrix(b.Matrix, p, opt)
		if err != nil {
			t.Fatalf("p=%d baseline: %v", p, err)
		}
		for _, w := range workerCounts {
			for _, mode := range []dist.ExecMode{dist.ExecSim, dist.ExecGoroutine} {
				res, err := dist.RunMatrixCfg(dist.Config{Mode: mode, Workers: w}, b.Matrix, p, opt)
				if err != nil {
					t.Fatalf("p=%d w=%d %v: %v", p, w, mode, err)
				}
				if res.Comm != base.Comm {
					t.Errorf("p=%d w=%d %v: comm %+v, baseline %+v", p, w, mode, res.Comm, base.Comm)
				}
				for i := range base.Rank {
					if res.Rank[i] != base.Rank[i] {
						t.Fatalf("p=%d w=%d %v: rank[%d] not bit-for-bit", p, w, mode, i)
					}
				}
			}
		}
	}
}

func TestHybridSortEqualsSerialAcrossWorkersAndModes(t *testing.T) {
	inputs := map[string]*edge.List{}
	inputs["kronecker"], _ = kron(t, 7, 5)
	few := edge.NewList(64)
	for i := 0; i < 64; i++ {
		few.Append(uint64(i%2), uint64(i))
	}
	inputs["two-distinct-u"] = few
	inputs["empty"] = edge.NewList(0)

	for name, l := range inputs {
		serial := l.Clone()
		xsort.RadixByU(serial)
		for _, p := range procCounts {
			base, err := dist.Sort(l, p)
			if err != nil {
				t.Fatalf("%s p=%d baseline: %v", name, p, err)
			}
			for _, w := range workerCounts {
				for _, mode := range []dist.ExecMode{dist.ExecSim, dist.ExecGoroutine} {
					res, err := dist.SortCfg(dist.Config{Mode: mode, Workers: w}, l, p)
					if err != nil {
						t.Fatalf("%s p=%d w=%d %v: %v", name, p, w, mode, err)
					}
					if !res.Sorted.Equal(serial) {
						t.Errorf("%s p=%d w=%d %v: hybrid sort diverges from serial radix sort", name, p, w, mode)
					}
					if res.Comm != base.Comm {
						t.Errorf("%s p=%d w=%d %v: comm %+v, baseline %+v", name, p, w, mode, res.Comm, base.Comm)
					}
				}
			}
		}
	}
}

func TestHybridPredictedCommBytesUnchanged(t *testing.T) {
	// The closed form knows nothing of intra-rank workers, and must not
	// need to: measured channel bytes stay equal to it for every w.
	l, n := kron(t, 7, 3)
	for _, p := range procCounts {
		for _, w := range workerCounts {
			opt := pagerank.Options{Seed: 1, Iterations: 4, Dangling: true}
			res, err := dist.RunCfg(dist.Config{Mode: dist.ExecGoroutine, Workers: w}, l, n, p, opt)
			if err != nil {
				t.Fatalf("p=%d w=%d: %v", p, w, err)
			}
			measured := res.Comm.AllReduceBytes + res.Comm.BroadcastBytes
			predicted := dist.PredictedCommBytes(n, p, res.Iterations, true)
			if measured != predicted {
				t.Errorf("p=%d w=%d: measured %d channel bytes, predicted %d", p, w, measured, predicted)
			}
		}
	}
}
