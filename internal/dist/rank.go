package dist

// The goroutine-rank runtime: p concurrent goroutines, one per rank, each
// owning its rectangular block of the matrix and communicating only
// through the typed channel fabric of collective.go.  Every rank executes
// the same program — the schedule the simulation (run.go, sort.go) walks
// globally — built from the same shared steps: routeChunk/buildBlock/
// filterBlock for kernel 2, sampleChunk/chooseSplitters/destRank for
// kernel 1, and pagerank.RunCustom for the kernel-3 update.  DESIGN.md §5
// specifies the contract; the property tests in rank_test.go pin the
// bit-for-bit result equality and the byte-count identity between the two
// runtimes and the closed form.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/edge"
	"repro/internal/fastio"
	"repro/internal/pagerank"
	"repro/internal/sparse"
	"repro/internal/vfs"
	"repro/internal/xsort"
)

// ExecMode selects how the distributed runtime executes its p ranks.
type ExecMode int

const (
	// ExecSim is the single-threaded simulation: exact metering, no
	// concurrency, results independent of the host (the default).
	ExecSim ExecMode = iota
	// ExecGoroutine runs p concurrent goroutine ranks exchanging real
	// messages over channels; results and byte counts equal ExecSim's
	// bit for bit, and wall clock scales with the host's cores.
	ExecGoroutine
	// ExecSocket runs p ranks as separate OS processes exchanging real
	// messages over unix-domain or TCP sockets (socket.go; DESIGN.md
	// §13).  Results, CommStats and spill records equal the other two
	// modes' bit for bit, and the measured socket payload bytes equal
	// the metered CommStats — the paper's comm model tested against
	// bytes on an actual wire.
	ExecSocket
)

// validExecModes names every mode ParseExecMode accepts, for error
// messages — the single list both unknown-mode errors quote, so the two
// cannot drift.
const validExecModes = "sim, goroutine, socket"

// String implements fmt.Stringer.
func (m ExecMode) String() string {
	switch m {
	case ExecSim:
		return "sim"
	case ExecGoroutine:
		return "goroutine"
	case ExecSocket:
		return "socket"
	default:
		return fmt.Sprintf("mode?(%d)", int(m))
	}
}

// ParseExecMode resolves the command-line spelling of a mode; the empty
// string selects the simulation.
func ParseExecMode(s string) (ExecMode, error) {
	switch s {
	case "", "sim":
		return ExecSim, nil
	case "goroutine", "go":
		return ExecGoroutine, nil
	case "socket", "sock":
		return ExecSocket, nil
	default:
		return 0, fmt.Errorf("dist: unknown execution mode %q (valid modes: %s)", s, validExecModes)
	}
}

// RunMode executes the distributed kernel-2/kernel-3 pipeline in the given
// execution mode.  Both modes produce bit-for-bit identical Rank vectors
// and identical CommStats; ExecGoroutine additionally fills RankSeconds.
//
// Deprecated: use Execute with OpRun.
func RunMode(mode ExecMode, l *edge.List, n, p int, opt pagerank.Options) (*Result, error) {
	return RunCfg(Config{Mode: mode}, l, n, p, opt)
}

// RunCfg executes the distributed kernel-2/kernel-3 pipeline under the
// full runtime configuration: execution mode plus hybrid intra-rank
// workers.  The result — rank vector bits and CommStats alike — is
// invariant in both Mode and Workers; only wall clock changes.
//
// Deprecated: use Execute with OpRun.
func RunCfg(cfg Config, l *edge.List, n, p int, opt pagerank.Options) (*Result, error) {
	out, err := Execute(context.Background(), Spec{
		Config: cfg, Op: OpRun, Edges: l, N: n, Procs: p, PageRank: opt,
	})
	if err != nil {
		return nil, err
	}
	return out.Run, nil
}

// SortMode executes the distributed sample sort in the given mode.
//
// Deprecated: use Execute with OpSort.
func SortMode(mode ExecMode, l *edge.List, p int) (*SortResult, error) {
	return SortCfg(Config{Mode: mode}, l, p)
}

// SortCfg executes the distributed sample sort under the full runtime
// configuration; Workers parallelizes each rank's bucket partitioning.
//
// Deprecated: use Execute with OpSort.
func SortCfg(cfg Config, l *edge.List, p int) (*SortResult, error) {
	out, err := Execute(context.Background(), Spec{
		Config: cfg, Op: OpSort, Edges: l, Procs: p,
	})
	if err != nil {
		return nil, err
	}
	return out.Sort, nil
}

// BuildFilteredMode executes the distributed kernel 2 in the given mode.
//
// Deprecated: use Execute with OpBuildFiltered.
func BuildFilteredMode(mode ExecMode, l *edge.List, n, p int) (*BuildResult, error) {
	out, err := Execute(context.Background(), Spec{
		Config: Config{Mode: mode}, Op: OpBuildFiltered, Edges: l, N: n, Procs: p,
	})
	if err != nil {
		return nil, err
	}
	return out.Build, nil
}

// RunMatrixMode executes the distributed kernel-3 iteration on a built
// matrix in the given mode.
//
// Deprecated: use Execute with OpRunMatrix.
func RunMatrixMode(mode ExecMode, a *sparse.CSR, p int, opt pagerank.Options) (*Result, error) {
	return RunMatrixCfg(Config{Mode: mode}, a, p, opt)
}

// RunMatrixCfg executes the distributed kernel-3 iteration on a built
// matrix under the full runtime configuration.
//
// Deprecated: use Execute with OpRunMatrix.
func RunMatrixCfg(cfg Config, a *sparse.CSR, p int, opt pagerank.Options) (*Result, error) {
	out, err := Execute(context.Background(), Spec{
		Config: cfg, Op: OpRunMatrix, Matrix: a, Procs: p, PageRank: opt,
	})
	if err != nil {
		return nil, err
	}
	return out.Run, nil
}

// runMatrixGoroutine is the concurrent execution of RunMatrix's schedule.
func runMatrixGoroutine(ctx context.Context, cfg Config, a *sparse.CSR, p int, opt pagerank.Options, ck *ckptRun) (*Result, error) {
	if a == nil {
		return nil, fmt.Errorf("dist: RunMatrix of nil matrix")
	}
	if p < 1 {
		return nil, fmt.Errorf("dist: RunMatrix with p = %d, want >= 1", p)
	}
	states := splitMatrix(a, p)
	out, err := spawnRanks(ctx, p, func(c *rankComm) rankOutcome {
		rank, iters, err := iterateRank(ctx, c, states[c.rank], a.N, opt, cfg.workers(), ck)
		return rankOutcome{rank: rank, iters: iters, err: err}
	})
	if err != nil {
		return nil, err
	}
	out.result.NNZ = a.NNZ()
	return out.result, nil
}

// rankOutcome is what one rank's program hands back to the driver.
type rankOutcome struct {
	// st is the rank's built state (kernel-2 programs only).
	st *rankState
	// rank is the final replicated rank vector; the driver reports rank
	// 0's copy (all replicas are byte-identical).
	rank []float64
	// iters is the performed iteration count.
	iters int
	// mass and nnz are the globally reduced kernel-2 scalars (identical
	// on every rank after their all-reduces).
	mass float64
	nnz  int
	// edges is the rank's sorted bucket (sort programs only).
	edges *edge.List
	// runs is the rank's spilled-run count (out-of-core sort program only).
	runs int
	// err is a per-rank failure; the schedule guarantees option errors
	// surface identically on every rank before any collective, so no rank
	// can strand another inside one.
	err error
}

// joined collects the per-rank outcomes plus the summed communication
// record.
type joined struct {
	outcomes []rankOutcome
	result   *Result
}

// errRunAborted is the error a rank reports when it unwound because the
// fabric came down underneath it — a peer failed, or the run's context
// was cancelled.  spawnRanks surfaces the cause (the context's error or
// the originating rank's error) in preference to this sentinel.
var errRunAborted = errors.New("dist: run aborted")

// spawnRanks runs the rank program on p concurrent goroutines over a
// fresh fabric, joins them, and folds the per-rank communication records
// and wall-clock times into a Result skeleton.
//
// Teardown is defer-based and cannot strand a rank: a rank whose program
// returns an error (or panics) trips the fabric's teardown plane on its
// way out, which unwinds every peer blocked inside a collective; a
// cancelled ctx trips the same plane through a watcher goroutine.  Every
// rank goroutine therefore joins — wg.Wait cannot hang — and the watcher
// itself is stopped before spawnRanks returns, so an aborted run leaks
// nothing (rank_test.go counts goroutines to pin this).
func spawnRanks(ctx context.Context, p int, program func(c *rankComm) rankOutcome) (*joined, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	f := newChanFabric(p)
	var stopWatch chan struct{}
	if ctx.Done() != nil {
		stopWatch = make(chan struct{})
		//prlint:allow determinism -- cancellation watcher: joins via stopWatch before spawnRanks returns, never touches results
		go func() {
			select {
			case <-ctx.Done():
				f.abort()
			case <-stopWatch:
			}
		}()
	}
	comms := make([]*rankComm, p)
	outcomes := make([]rankOutcome, p)
	seconds := make([]float64, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		comms[r] = newRankComm(f, r)
		wg.Add(1)
		//prlint:allow determinism -- the rank spawner IS the simulated machine; ranks sync only through the metered fabric and join on wg
		go func(r int) {
			defer wg.Done()
			// Runs after the recover below: a rank that failed for any
			// reason brings the fabric down so no peer waits for it.
			defer func() {
				if outcomes[r].err != nil {
					f.abort()
				}
			}()
			defer func() {
				if e := recover(); e != nil {
					if _, down := e.(fabricDown); down {
						outcomes[r].err = errRunAborted
						return
					}
					// A genuine bug: free the peers, then crash as before.
					f.abort()
					panic(e)
				}
			}()
			//prlint:allow determinism -- wall-clock feeds only the reported per-rank timing, never the kernel results
			start := time.Now()
			outcomes[r] = program(comms[r])
			//prlint:allow determinism -- wall-clock feeds only the reported per-rank timing, never the kernel results
			seconds[r] = time.Since(start).Seconds()
		}(r)
	}
	wg.Wait()
	if stopWatch != nil {
		close(stopWatch)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The originating failure (in rank order) outranks the aborted
	// sentinel of the ranks it unwound.
	var aborted error
	for r := 0; r < p; r++ {
		switch err := outcomes[r].err; {
		case err == nil:
		case errors.Is(err, errRunAborted):
			if aborted == nil {
				aborted = err
			}
		default:
			return nil, err
		}
	}
	if aborted != nil {
		return nil, aborted
	}
	res := &Result{
		Rank:        outcomes[0].rank,
		Iterations:  outcomes[0].iters,
		NNZ:         outcomes[0].nnz,
		RankSeconds: seconds,
	}
	for r := 0; r < p; r++ {
		res.Comm.Add(comms[r].st)
	}
	return &joined{outcomes: outcomes, result: res}, nil
}

// runGoroutine is the concurrent execution of Run's schedule.
func runGoroutine(ctx context.Context, cfg Config, l *edge.List, n, p int, opt pagerank.Options, ck *ckptRun) (*Result, error) {
	if err := validateRun(l, n, p); err != nil {
		return nil, err
	}
	out, err := spawnRanks(ctx, p, func(c *rankComm) rankOutcome {
		st, mass, nnz := buildRank(c, l, n)
		rank, iters, err := iterateRank(ctx, c, st, n, opt, cfg.workers(), ck)
		return rankOutcome{st: st, rank: rank, iters: iters, mass: mass, nnz: nnz, err: err}
	})
	if err != nil {
		return nil, err
	}
	return out.result, nil
}

// buildFilteredGoroutine is the concurrent execution of BuildFiltered's
// schedule; the driver assembles the global matrix from the joined blocks.
func buildFilteredGoroutine(ctx context.Context, l *edge.List, n, p int) (*BuildResult, error) {
	if err := validateRun(l, n, p); err != nil {
		return nil, err
	}
	out, err := spawnRanks(ctx, p, func(c *rankComm) rankOutcome {
		st, mass, nnz := buildRank(c, l, n)
		return rankOutcome{st: st, mass: mass, nnz: nnz}
	})
	if err != nil {
		return nil, err
	}
	states := make([]*rankState, p)
	for r := range states {
		states[r] = out.outcomes[r].st
	}
	return &BuildResult{
		Matrix: assemble(states, n),
		Mass:   out.outcomes[0].mass,
		NNZ:    out.outcomes[0].nnz,
		Comm:   out.result.Comm,
	}, nil
}

// buildRank is one rank's kernel-2 program: route the owned input chunk,
// exchange edges all-to-all, build the block-local counting matrix, and
// apply the global filter through the in-degree all-reduce.  Inputs were
// validated by the driver, so the program cannot fail mid-collective.
func buildRank(c *rankComm, l *edge.List, n int) (*rankState, float64, int) {
	p := c.procs()
	lo, hi := blockBounds(l.Len(), p, c.rank)
	out := make([]*edge.List, p)
	for d := range out {
		out[d] = edge.NewList(0)
	}
	routeChunk(out, l, n, p, lo, hi)
	in := c.exchangeEdges(out)
	local := edge.NewList(0)
	for _, part := range in {
		local.AppendList(part)
	}
	rowLo, rowHi := blockBounds(n, p, c.rank)
	blk, err := buildBlock(local, n, rowLo, rowHi)
	if err != nil {
		// Unreachable after validateRun; a failure here is a routing bug.
		panic(err)
	}
	mass := c.allReduceScalar(blk.sumValues())
	din := blk.inDegrees()
	c.allReduceSum(din)
	st := &rankState{blk: blk}
	var localNNZ int
	st.danglingRows, localNNZ = filterBlock(blk, din)
	nnz := int(c.allReduceScalar(float64(localNNZ)))
	return st, mass, nnz
}

// iterateRank is one rank's kernel-3 program: rank 0 materializes the
// initial vector and broadcasts it, then every rank drives the shared
// pagerank.Engine update on its private replica, with the step hook
// computing the block-local partial product and all-reducing it, and the
// dangling-mass hook all-reducing the owned dangling rows' mass.  Every
// replica follows a byte-identical trajectory — the all-reduce hands all
// ranks the root's rank-ordered sum — so rank 0's result is the global
// result, equal to the simulation's bit for bit.  With workers > 1 the
// local product runs on the rank's persistent hybrid team (spmvOf),
// bit-for-bit invariantly; combined with the engine's preallocated
// vectors and the fabric's pooled buffers, the steady-state iteration
// performs no heap allocation on any rank.
//
// The engine is driven through RunContext, so every rank checks ctx at
// its iteration boundary.  The first rank to observe cancellation
// returns ctx's error; spawnRanks' teardown then brings the fabric down
// under any peer still blocked in that iteration's collective, so the
// whole team unwinds promptly (DESIGN.md §8).  The hybrid team's close
// is deferred and runs on every exit path, unwinding included.
//
// The checkpoint runtime (ck, may be nil) installs the rank's
// post-iteration hook: at every epoch boundary the rank writes its own
// block chunk, agrees with its peers that all chunks landed, and rank 0
// commits the epoch — plus the planned rank failure, if any
// (checkpoint.go documents the protocol and the fault semantics).
func iterateRank(ctx context.Context, c *rankComm, st *rankState, n int, opt pagerank.Options, workers int, ck *ckptRun) ([]float64, int, error) {
	if c.rank != 0 {
		// Progress is a single-observer hook: the replicas step in
		// lockstep, so rank 0 reports for the team.
		opt.Progress = nil
	}
	var r0 []float64
	if c.rank == 0 {
		if opt.InitialRank != nil {
			r0 = opt.InitialRank
		} else {
			r0 = pagerank.InitVector(n, opt.Seed)
		}
	}
	opt.InitialRank = c.broadcastFloats(r0) // the engine copies, not aliases
	spmv, h := spmvOf(st, workers)
	if h != nil {
		defer h.close()
	}
	step := func(out, r []float64) {
		spmv(out, r)
		c.allReduceSum(out)
	}
	dangleMass := func(r []float64) float64 {
		return c.allReduceScalar(danglingMassOf(st, r))
	}
	e, err := pagerank.NewEngine(n, step, dangleMass, opt)
	if err != nil {
		return nil, 0, err
	}
	res, err := e.RunContextAfter(ctx, ck.afterRank(c, st.blk.lo, st.blk.hi))
	if err != nil {
		return nil, 0, err
	}
	return res.Rank, res.Iterations, nil
}

// sortGoroutine is the concurrent execution of Sort's schedule; each rank
// samples, routes and sorts its bucket, and the driver concatenates the
// buckets in rank order (the unmetered "output stays distributed"
// convention the simulation shares).
func sortGoroutine(ctx context.Context, cfg Config, l *edge.List, p int) (*SortResult, error) {
	if l == nil {
		return nil, fmt.Errorf("dist: Sort of nil edge list")
	}
	if p < 1 {
		return nil, fmt.Errorf("dist: Sort with p = %d, want >= 1", p)
	}
	m := l.Len()
	if p == 1 || m == 0 {
		out := l.Clone()
		xsort.RadixByU(out)
		return &SortResult{Sorted: out}, nil
	}
	out, err := spawnRanks(ctx, p, func(c *rankComm) rankOutcome {
		return rankOutcome{edges: sortRank(c, l, cfg.workers())}
	})
	if err != nil {
		return nil, err
	}
	sorted := edge.NewList(m)
	for _, o := range out.outcomes {
		sorted.AppendList(o.edges)
	}
	return &SortResult{Sorted: sorted, Comm: out.result.Comm}, nil
}

// sortExternalGoroutine is the concurrent execution of the out-of-core
// sort's schedule; each rank spills, samples, routes run segments and
// merges its bucket, and the driver concatenates the buckets in rank
// order.  Inputs were validated and defaulted by the Execute dispatcher.
func sortExternalGoroutine(ctx context.Context, l *edge.List, p int, cfg ExtSortConfig, fs vfs.FS) (*ExtSortResult, error) {
	out, err := spawnRanks(ctx, p, func(c *rankComm) rankOutcome {
		bucket, runs, err := sortExternalRank(c, l, fs, cfg.TmpPrefix, cfg.Codec, cfg.RunEdges)
		return rankOutcome{edges: bucket, runs: runs, err: err}
	})
	if err != nil {
		return nil, err
	}
	sorted := edge.NewList(l.Len())
	runsPerRank := make([]int, p)
	for r, o := range out.outcomes {
		sorted.AppendList(o.edges)
		runsPerRank[r] = o.runs
	}
	return &ExtSortResult{Sorted: sorted, Comm: out.result.Comm, RunsPerRank: runsPerRank}, nil
}

// sortExternalRank is one rank's out-of-core sample-sort program: spill
// the owned chunk as bounded sorted runs, agree that every rank's spill
// succeeded (control-plane barrier — a storage failure anywhere aborts all
// ranks before the next collective), run the in-memory sort's sample and
// splitter schedule, split each run at the splitters and exchange the
// segments, then k-way merge the received segments in (source rank, run)
// order.  The rank's own run files are removed before it returns, on every
// path.
func sortExternalRank(c *rankComm, l *edge.List, fs vfs.FS, prefix string, codec fastio.Codec, runEdges int) (bucket *edge.List, runs int, err error) {
	p := c.procs()
	m := l.Len()
	lo, hi := blockBounds(m, p, c.rank)
	names, spillErr := extSpillRuns(fs, prefix, codec, l, c.rank, lo, hi, runEdges)
	defer func() {
		if rmErr := xsort.RemoveRuns(fs, names); rmErr != nil && err == nil {
			bucket, err = nil, rmErr
		}
	}()
	if err := c.agreeError(spillErr); err != nil {
		return nil, len(names), err
	}

	splitters := splitterPhase(c, l, lo, hi)

	out := make([][]*edge.List, p)
	var partErr error
	for _, name := range names {
		parts, perr := extPartitionRun(fs, name, codec, splitters, p)
		if perr != nil {
			partErr = perr
			break
		}
		for d, part := range parts {
			if part.Len() > 0 {
				out[d] = append(out[d], part)
			}
		}
	}
	if err := c.agreeError(partErr); err != nil {
		return nil, len(names), err
	}

	in := c.exchangeSegments(out)
	var ordered []*edge.List
	for _, group := range in {
		ordered = append(ordered, group...)
	}
	bucket = edge.NewList(0)
	xsort.MergeLists(ordered, bucket, false)
	return bucket, len(names), nil
}

// splitterPhase runs one goroutine rank's share of the sort's sampling
// and splitter schedule: sample the owned chunk [lo, hi), gather the
// samples at rank 0, select the splitters there and receive the
// broadcast.  The in-memory and out-of-core sorts share it, so the two
// schedules cannot drift apart (gatherSamples in sort.go is the
// simulated counterpart).
func splitterPhase(c *rankComm, l *edge.List, lo, hi int) []uint64 {
	p := c.procs()
	all := c.gatherKeys(sampleChunk(l, lo, hi))
	var splitters []uint64
	if c.rank == 0 {
		samples := make([]uint64, 0, p*SamplesPerRank)
		for _, keys := range all {
			samples = append(samples, keys...)
		}
		splitters = chooseSplitters(samples, p)
	}
	return c.broadcastKeys(splitters)
}

// sortRank is one rank's sample-sort program: sample the owned chunk,
// gather samples at rank 0, receive the broadcast splitters, exchange
// edges by key range (partitioned by the rank's hybrid workers), and
// stably sort the resulting bucket.
func sortRank(c *rankComm, l *edge.List, workers int) *edge.List {
	p := c.procs()
	m := l.Len()
	lo, hi := blockBounds(m, p, c.rank)
	splitters := splitterPhase(c, l, lo, hi)

	out := partitionChunk(l, lo, hi, splitters, p, workers)
	in := c.exchangeEdges(out)
	bucket := edge.NewList((hi - lo) * 2)
	for _, part := range in {
		bucket.AppendList(part)
	}
	xsort.RadixByU(bucket)
	return bucket
}
