package dist_test

// Tests for the redesigned single entry point: every legacy entrypoint
// must return bit-for-bit the results, CommStats and Spill records of
// the equivalent Execute Spec (the deprecated wrappers delegate, and
// this pins that they keep doing so), and a cancelled context must abort
// mid-kernel-3 in both execution modes promptly and without leaking a
// single goroutine — the fabric teardown-plane contract DESIGN.md §8
// documents.

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/edge"
	"repro/internal/kronecker"
	"repro/internal/pagerank"
	"repro/internal/sparse"
	"repro/internal/vfs"
)

// executeGraph generates the shared small Kronecker input.
func executeGraph(t *testing.T, scale int) (*edge.List, int) {
	t.Helper()
	cfg := kronecker.New(scale, 5)
	l, err := kronecker.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l, int(cfg.N())
}

func sameRank(t *testing.T, what string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: rank lengths %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: rank vectors differ at %d: %v vs %v", what, i, a[i], b[i])
		}
	}
}

func sameMatrix(t *testing.T, what string, a, b *sparse.CSR) {
	t.Helper()
	if a.N != b.N || a.NNZ() != b.NNZ() {
		t.Fatalf("%s: matrix shape differs: N %d/%d nnz %d/%d", what, a.N, b.N, a.NNZ(), b.NNZ())
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			t.Fatalf("%s: RowPtr differs at %d", what, i)
		}
	}
	for i := range a.Col {
		if a.Col[i] != b.Col[i] || a.Val[i] != b.Val[i] {
			t.Fatalf("%s: entry %d differs", what, i)
		}
	}
}

// TestExecuteEqualsLegacyEntrypoints pins the acceptance criterion of
// the API redesign: for every op and both modes, the deprecated
// entrypoints still compile, still run, and return bit-for-bit the
// results and CommStats of the one Execute form.
func TestExecuteEqualsLegacyEntrypoints(t *testing.T) {
	l, n := executeGraph(t, 8)
	opt := pagerank.Options{Seed: 5}
	ctx := context.Background()
	for _, mode := range []dist.ExecMode{dist.ExecSim, dist.ExecGoroutine} {
		for _, p := range []int{1, 3} {
			cfg := dist.Config{Mode: mode}

			legacyRun, err := dist.RunCfg(cfg, l, n, p, opt)
			if err != nil {
				t.Fatal(err)
			}
			out, err := dist.Execute(ctx, dist.Spec{Config: cfg, Op: dist.OpRun, Edges: l, N: n, Procs: p, PageRank: opt})
			if err != nil {
				t.Fatal(err)
			}
			sameRank(t, "OpRun", legacyRun.Rank, out.Run.Rank)
			if legacyRun.Comm != out.Run.Comm || legacyRun.NNZ != out.Run.NNZ {
				t.Fatalf("OpRun (%v, p=%d): comm/nnz diverge: %+v vs %+v", mode, p, legacyRun, out.Run)
			}

			legacySort, err := dist.SortCfg(cfg, l, p)
			if err != nil {
				t.Fatal(err)
			}
			sout, err := dist.Execute(ctx, dist.Spec{Config: cfg, Op: dist.OpSort, Edges: l, Procs: p})
			if err != nil {
				t.Fatal(err)
			}
			if !legacySort.Sorted.Equal(sout.Sort.Sorted) || legacySort.Comm != sout.Sort.Comm {
				t.Fatalf("OpSort (%v, p=%d): output or comm diverges", mode, p)
			}

			legacyBuild, err := dist.BuildFilteredMode(mode, l, n, p)
			if err != nil {
				t.Fatal(err)
			}
			bout, err := dist.Execute(ctx, dist.Spec{Config: dist.Config{Mode: mode}, Op: dist.OpBuildFiltered, Edges: l, N: n, Procs: p})
			if err != nil {
				t.Fatal(err)
			}
			sameMatrix(t, "OpBuildFiltered", legacyBuild.Matrix, bout.Build.Matrix)
			if legacyBuild.Comm != bout.Build.Comm || legacyBuild.Mass != bout.Build.Mass {
				t.Fatalf("OpBuildFiltered (%v, p=%d): comm/mass diverge", mode, p)
			}

			legacyMat, err := dist.RunMatrixCfg(cfg, legacyBuild.Matrix, p, opt)
			if err != nil {
				t.Fatal(err)
			}
			mout, err := dist.Execute(ctx, dist.Spec{Config: cfg, Op: dist.OpRunMatrix, Matrix: legacyBuild.Matrix, Procs: p, PageRank: opt})
			if err != nil {
				t.Fatal(err)
			}
			sameRank(t, "OpRunMatrix", legacyMat.Rank, mout.Run.Rank)
			if legacyMat.Comm != mout.Run.Comm {
				t.Fatalf("OpRunMatrix (%v, p=%d): comm diverges", mode, p)
			}

			legacyExt, err := dist.SortExternalMode(mode, l, p, dist.ExtSortConfig{RunEdges: 64})
			if err != nil {
				t.Fatal(err)
			}
			eout, err := dist.Execute(ctx, dist.Spec{Config: dist.Config{Mode: mode}, Op: dist.OpSortExternal, Edges: l, Procs: p, Ext: dist.ExtSortConfig{RunEdges: 64}})
			if err != nil {
				t.Fatal(err)
			}
			if !legacyExt.Sorted.Equal(eout.ExtSort.Sorted) || legacyExt.Comm != eout.ExtSort.Comm || legacyExt.Spill != eout.ExtSort.Spill {
				t.Fatalf("OpSortExternal (%v, p=%d): output, comm or spill diverges", mode, p)
			}
		}
	}
}

// TestExecuteCancelMidKernel3 pins prompt cancellation: a context
// cancelled three iterations into a 100000-iteration kernel 3 must abort
// the run with context.Canceled in both modes, long before the iteration
// budget could complete.
func TestExecuteCancelMidKernel3(t *testing.T) {
	l, n := executeGraph(t, 8)
	for _, mode := range []dist.ExecMode{dist.ExecSim, dist.ExecGoroutine} {
		ctx, cancel := context.WithCancel(context.Background())
		opt := pagerank.Options{
			Seed:       5,
			Iterations: 100000,
			Progress: func(it int) {
				if it == 3 {
					cancel()
				}
			},
		}
		start := time.Now()
		_, err := dist.Execute(ctx, dist.Spec{
			Config: dist.Config{Mode: mode}, Op: dist.OpRun,
			Edges: l, N: n, Procs: 4, PageRank: opt,
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mode %v: want context.Canceled, got %v", mode, err)
		}
		if d := time.Since(start); d > 30*time.Second {
			t.Fatalf("mode %v: cancellation took %v — not prompt", mode, d)
		}
	}
}

// waitForGoroutines polls until the live goroutine count drops back to
// at most want, failing after the deadline — the goleak-style counting
// check of the teardown contract.
func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC() // give finished goroutines a scheduling chance
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: have %d, want <= %d\n%s",
				runtime.NumGoroutine(), want, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCancelledRunsLeakNoGoroutines runs a batch of goroutine-mode
// executions that are cancelled mid-kernel-3 — with hybrid intra-rank
// teams in play — and checks that every rank goroutine, worker team and
// watcher is gone afterwards.
func TestCancelledRunsLeakNoGoroutines(t *testing.T) {
	l, n := executeGraph(t, 8)
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		opt := pagerank.Options{
			Seed:       5,
			Iterations: 100000,
			Progress: func(it int) {
				if it == 2 {
					cancel()
				}
			},
		}
		_, err := dist.Execute(ctx, dist.Spec{
			Config: dist.Config{Mode: dist.ExecGoroutine, Workers: 2}, Op: dist.OpRun,
			Edges: l, N: n, Procs: 4, PageRank: opt,
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("run %d: want context.Canceled, got %v", i, err)
		}
	}
	waitForGoroutines(t, base+2)
}

// TestFailedRunLeaksNoGoroutines drives the goroutine-mode out-of-core
// sort into a storage failure (the error-mid-schedule path) and checks
// the rank teardown leaves no goroutine behind.
func TestFailedRunLeaksNoGoroutines(t *testing.T) {
	l, _ := executeGraph(t, 8)
	base := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		faulty := vfs.NewFaulty(vfs.NewMem(), 1024) // fail after 1 KiB of I/O
		_, err := dist.Execute(context.Background(), dist.Spec{
			Config: dist.Config{Mode: dist.ExecGoroutine}, Op: dist.OpSortExternal,
			Edges: l, Procs: 4, Ext: dist.ExtSortConfig{FS: faulty, RunEdges: 64},
		})
		if err == nil {
			t.Fatal("faulty FS: want error, got success")
		}
	}
	waitForGoroutines(t, base+2)
}

// TestExecuteRejectsUnknown pins the dispatcher's input contract.
func TestExecuteRejectsUnknown(t *testing.T) {
	l, n := executeGraph(t, 6)
	if _, err := dist.Execute(context.Background(), dist.Spec{Op: dist.Op(99), Edges: l, N: n, Procs: 2}); err == nil {
		t.Fatal("unknown op: want error")
	}
	if _, err := dist.Execute(context.Background(), dist.Spec{Config: dist.Config{Mode: dist.ExecMode(7)}, Op: dist.OpRun, Edges: l, N: n, Procs: 2}); err == nil {
		t.Fatal("unknown mode: want error")
	}
}

// TestExecutePreCancelled pins that an already-cancelled context never
// starts work in either mode.
func TestExecutePreCancelled(t *testing.T) {
	l, n := executeGraph(t, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, mode := range []dist.ExecMode{dist.ExecSim, dist.ExecGoroutine} {
		_, err := dist.Execute(ctx, dist.Spec{
			Config: dist.Config{Mode: mode}, Op: dist.OpRun, Edges: l, N: n, Procs: 2,
			PageRank: pagerank.Options{Seed: 5},
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mode %v: want context.Canceled, got %v", mode, err)
		}
	}
}
