// Package dist is the distributed-memory runtime of the PageRank pipeline
// benchmark: it executes kernels 1-3 over p processor ranks with exact
// communication accounting, reproducing the parallel analysis of the
// paper's §V (distributed sample sort for kernel 1, 1D row-block
// decomposition with a rank-vector all-reduce per iteration for kernel 3).
//
// Every rank owns a contiguous block of rows (vertices), stored
// block-locally as a rectangular CSR (hi-lo+1 row pointers, not n+1), and
// a contiguous chunk of the input edge list.  Data crossing rank
// boundaries is metered by the collective layer; the closed-form model
// PredictedCommBytes reproduces the collective volume exactly, byte for
// byte, which the prreport command asserts.
//
// The same schedule runs in two execution modes (ExecMode):
//
//   - ExecSim (Run, Sort, BuildFiltered, RunMatrix) simulates the p ranks
//     single-threadedly in one address space: deterministic, no copying,
//     only the wire volume is recorded.
//   - ExecGoroutine (RunMode, SortMode, ... with ExecGoroutine) runs p
//     concurrent goroutine ranks that exchange real messages over typed
//     channels, counting the payload bytes actually sent.
//
// Config (RunCfg, RunMatrixCfg, SortCfg) adds the hybrid second level of
// the paper's decomposition: Config.Workers spins that many worker
// goroutines inside each rank for its local kernel-3 block product and
// kernel-1 partitioning, in either mode.  The worker count is a pure
// wall-clock knob — results, CommStats and PredictedCommBytes are
// bit-for-bit invariant in it — and the steady-state iteration performs
// zero heap allocations (pooled collective buffers, persistent worker
// teams, preallocated iteration vectors; DESIGN.md §7).
//
// Because both modes execute the same schedule from the same shared steps
// and wire-cost formulas (DESIGN.md §5 documents the contract), their
// results are bit-for-bit identical and their CommStats are equal — to
// each other and to PredictedCommBytes.  Relative to the serial engines,
// kernel 1's output equals the serial stable radix sort exactly for every
// p, kernel 2's assembled matrix is bit-for-bit the serial kernel-2
// output, and kernel 3 matches the serial engines to ~1e-12 (floating-
// point sums re-associate across rank boundaries, the only deviation).
//
// Kernel 1 additionally has an out-of-core regime (SortExternal,
// SortExternalMode; DESIGN.md §6) for the paper's "edge vectors exceed
// RAM" case: each rank spills bounded sorted runs to a vfs.FS, the runs
// are routed through the same metered all-to-all as sorted segments, and
// per-bucket k-way merges reproduce the serial sort bit for bit for every
// p and every run-buffer size, with the storage round trip metered
// separately in ExtSortResult.Spill.
package dist
