package dist

// sockFabric is the socket implementation of the fabric seam: one
// worker process's view of the full rank mesh.  Each unordered rank
// pair {r, s} shares one connection (dialed by the higher rank during
// the handshake, socket.go/sockworker.go), with both directions
// multiplexed over it; a dedicated reader goroutine per peer decodes
// inbound frames into pooled envelopes and per-source inbox channels of
// capacity linkBuf — so the fabric presents exactly the per-link FIFO,
// buffered, exactly-once contract of the channel fabric, with the OS
// socket buffers only adding slack beyond linkBuf (which, per the
// argument at linkBuf, cannot introduce a deadlock).
//
// Envelope pooling is preserved on both ends: a sender serializes a
// pooled envelope onto the wire and immediately releases it back to its
// own pool; a reader decodes into an envelope from its own pool and
// hands ownership to the receiving rank through the inbox, exactly as a
// channel-fabric receiver takes ownership off the link (DESIGN.md §7).
//
// Byte accounting stays sender-side and unchanged: rankComm meters
// CommStats exactly as over channels, and independently every frame
// write counts measured wire bytes into the shared fabric.Stats — the
// typed payload encodings cost exactly the wire-cost formulas, so the
// measured data-plane bytes equal the metered CommStats identically
// (socket_test.go pins the equality).
//
// Teardown: abort closes the done plane and every mesh connection,
// which unblocks blocked reads and writes with errors; link operations
// then panic fabricDown exactly like the channel fabric's.  A peer
// closing its connections after finishing its schedule is NOT an abort:
// the reader exits silently (every message the peer sent was delivered
// in order before the EOF), and a genuinely premature death is
// surfaced through the coordinator's control plane instead.

import (
	"sync"

	"repro/internal/dist/fabric"
	"repro/internal/edge"
)

type sockFabric struct {
	p, self int
	// peers[s] is the mesh link to rank s (nil at self, and everywhere
	// when p == 1).
	peers []*fabric.Link
	// inbox[s] carries decoded messages from rank s, capacity linkBuf.
	inbox []chan any

	done      chan struct{}
	abortOnce sync.Once
	readers   sync.WaitGroup

	envPool
}

// newSockFabric wraps an established mesh and starts the per-peer
// readers.  peers must have length p with nil at self.
func newSockFabric(self, p int, peers []*fabric.Link) *sockFabric {
	f := &sockFabric{
		p: p, self: self, peers: peers,
		inbox: make([]chan any, p),
		done:  make(chan struct{}),
	}
	for s := range f.inbox {
		f.inbox[s] = make(chan any, linkBuf)
	}
	for s, ln := range peers {
		if ln == nil {
			continue
		}
		f.readers.Add(1)
		//prlint:allow determinism -- per-peer socket reader: feeds only the metered fabric, joins in shutdown before the worker reports
		go f.readLoop(s, ln)
	}
	return f
}

func (f *sockFabric) procs() int { return f.p }

// send serializes m onto dst's mesh link.  Pooled envelopes are
// released back to the local pool the moment their payload is on the
// wire — the ownership handoff of the §7 contract, with the wire in the
// middle.  A write failure means the mesh is down: abort and unwind.
func (f *sockFabric) send(src, dst int, m any) {
	ln := f.peers[dst]
	var err error
	switch v := m.(type) {
	case *vecMsg:
		err = ln.WriteVec(src, dst, v.buf)
		f.putVec(v)
	case *keyMsg:
		err = ln.WriteKeys(src, dst, v.buf)
		f.putKeys(v)
	case *edge.List:
		err = ln.WriteEdges(src, dst, v)
	case []*edge.List:
		err = ln.WriteSegments(src, dst, v)
	case string:
		err = ln.WriteControl(fabric.FrameString, src, dst, []byte(v))
	default:
		panic("dist: sockFabric.send of unknown message type")
	}
	if err != nil {
		f.abort()
		panic(fabricDown{})
	}
}

// recv takes the next decoded message from src's inbox, or unwinds if
// the fabric comes down first.
func (f *sockFabric) recv(src, dst int) any {
	select {
	case m := <-f.inbox[src]:
		return m
	case <-f.done:
		panic(fabricDown{})
	}
}

// abort trips the teardown plane: the done channel unwinds blocked
// inbox receives, and closing the mesh connections unblocks any reader
// or writer stuck inside the kernel.  Idempotent, safe from any
// goroutine.
func (f *sockFabric) abort() {
	f.abortOnce.Do(func() {
		close(f.done)
		for _, ln := range f.peers {
			if ln != nil {
				ln.Close()
			}
		}
	})
}

// shutdown closes the mesh after the rank's schedule completed and
// joins the readers.  Safe after abort (Close is idempotent).
func (f *sockFabric) shutdown() {
	for _, ln := range f.peers {
		if ln != nil {
			ln.Close()
		}
	}
	f.readers.Wait()
}

// release returns a pooled envelope that could not be delivered.
func (f *sockFabric) release(m any) {
	switch v := m.(type) {
	case *vecMsg:
		f.putVec(v)
	case *keyMsg:
		f.putKeys(v)
	}
}

// readLoop is rank src's inbound decoder: frame by frame into pooled
// envelopes, pushed to the src inbox.  A read error after abort — or a
// clean close from a peer that finished its schedule — ends the loop
// silently; a protocol violation (misrouted frame, undecodable payload)
// brings the fabric down, because the schedule guarantees neither.
func (f *sockFabric) readLoop(src int, ln *fabric.Link) {
	defer f.readers.Done()
	for {
		h, payload, err := ln.ReadFrame()
		if err != nil {
			return
		}
		if h.Src != src || h.Dst != f.self {
			f.abort()
			return
		}
		var m any
		switch h.Type {
		case fabric.FrameVec:
			v := f.getVec(int(h.Len / 8))
			if err := fabric.DecodeVec(payload, v.buf); err != nil {
				f.putVec(v)
				f.abort()
				return
			}
			m = v
		case fabric.FrameKeys:
			k := f.getKeys(int(h.Len / 8))
			if err := fabric.DecodeKeys(payload, k.buf); err != nil {
				f.putKeys(k)
				f.abort()
				return
			}
			m = k
		case fabric.FrameEdges:
			l := edge.NewList(int(h.Len / 16))
			if err := fabric.DecodeEdges(payload, l); err != nil {
				f.abort()
				return
			}
			m = l
		case fabric.FrameSegments:
			segs, err := fabric.DecodeSegments(payload)
			if err != nil {
				f.abort()
				return
			}
			m = segs
		case fabric.FrameString:
			m = string(payload)
		default:
			f.abort()
			return
		}
		select {
		case f.inbox[src] <- m:
		case <-f.done:
			f.release(m)
			return
		}
	}
}
