package dist

// Execute is the distributed runtime's single entry point: every program
// the package runs — the kernel-2/3 pipeline, kernel 3 alone, kernel 2
// alone, and the two kernel-1 sorts — is one Op of one Spec, executed in
// either mode under one context.  The form replaces the mode-suffixed
// spread (Run/RunCfg/RunMode/RunMatrix…/Sort…/BuildFiltered…/
// SortExternal…) the API had grown: those names survive as thin
// deprecated wrappers that build the equivalent Spec and delegate here,
// so their results — bits, CommStats, Spill records — are the redesign's
// results by construction.  DESIGN.md §8 tabulates old → new.

import (
	"context"
	"fmt"

	"repro/internal/edge"
	"repro/internal/pagerank"
	"repro/internal/sparse"
)

// Op selects the distributed program a Spec executes.
type Op int

const (
	// OpRun is the kernel-2/kernel-3 pipeline: route and filter the
	// edges, then iterate PageRank (fills Outcome.Run).
	OpRun Op = iota
	// OpRunMatrix is the kernel-3 iteration on an already built,
	// filtered, normalized matrix (fills Outcome.Run).
	OpRunMatrix
	// OpBuildFiltered is the kernel 2 alone: build, filter and assemble
	// the global matrix (fills Outcome.Build).
	OpBuildFiltered
	// OpSort is the in-memory distributed sample sort, kernel 1 (fills
	// Outcome.Sort).
	OpSort
	// OpSortExternal is the out-of-core distributed sample sort, kernel 1
	// beyond RAM (fills Outcome.ExtSort).
	OpSortExternal
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpRun:
		return "run"
	case OpRunMatrix:
		return "run-matrix"
	case OpBuildFiltered:
		return "build-filtered"
	case OpSort:
		return "sort"
	case OpSortExternal:
		return "sort-external"
	default:
		return fmt.Sprintf("op?(%d)", int(o))
	}
}

// Spec is one distributed execution: the runtime configuration (the
// embedded Config's Mode and Workers), the program (Op), its processor
// count and inputs, and the per-program knobs.  The zero Config is the
// single-threaded simulation with serial ranks, as everywhere.
type Spec struct {
	// Config is the runtime configuration: execution mode plus hybrid
	// intra-rank workers.  Results are bit-for-bit invariant in both.
	// Mode applies to every op; Workers parallelizes the kernel-3 block
	// product (OpRun, OpRunMatrix) and the kernel-1 bucket partitioning
	// (OpSort) — OpBuildFiltered and OpSortExternal have no intra-rank
	// worker stage (exactly as their pre-redesign entrypoints, which
	// took no Config) and ignore it.
	Config
	// Op selects the program.
	Op Op
	// Procs is the processor (rank) count p.
	Procs int
	// N is the global vertex count (OpRun and OpBuildFiltered).
	N int
	// Edges is the input edge list (every op except OpRunMatrix).  It is
	// never modified; callers may share one list across concurrent
	// Executes.
	Edges *edge.List
	// Matrix is the built input matrix (OpRunMatrix).
	Matrix *sparse.CSR
	// PageRank carries the kernel-3 options (OpRun and OpRunMatrix).
	PageRank pagerank.Options
	// Ext carries the out-of-core sort's knobs (OpSortExternal).
	Ext ExtSortConfig
	// Checkpoint configures epoch checkpoint/restart of the kernel-3
	// iteration (OpRun and OpRunMatrix; see CheckpointSpec).  The zero
	// value disables it.
	Checkpoint CheckpointSpec
	// Fault, when non-nil, injects a rank failure into the kernel-3
	// iteration (OpRun and OpRunMatrix; see FaultPlan) — the chaos
	// suite's instrument.
	Fault *FaultPlan
	// Socket configures the socket execution mode (ExecSocket only; see
	// SocketSpec).  The zero value is a private unix-domain fabric with
	// self-spawned workers.
	Socket SocketSpec
}

// Outcome is the result of one Execute: exactly one field is non-nil,
// the one matching the Spec's Op.
type Outcome struct {
	// Run is OpRun's and OpRunMatrix's result.
	Run *Result
	// Build is OpBuildFiltered's result.
	Build *BuildResult
	// Sort is OpSort's result.
	Sort *SortResult
	// ExtSort is OpSortExternal's result.
	ExtSort *ExtSortResult
}

// specN resolves the global vertex count of a kernel-3 spec: the
// explicit N for OpRun, the matrix dimension for OpRunMatrix.
func specN(spec Spec) int {
	if spec.Op == OpRunMatrix {
		if spec.Matrix == nil {
			return 0
		}
		return spec.Matrix.N
	}
	return spec.N
}

// Execute runs one distributed program under ctx.  Cancelling the
// context aborts the program at its next cancellation point — between
// kernel-3 iterations, between the sorts' and kernel 2's phases — with
// ctx's error, in both execution modes.  In the goroutine mode the
// fabric's teardown plane guarantees the abort strands no rank: a
// cancelled (or failed) run unwinds every rank goroutine before Execute
// returns (DESIGN.md §8).  A background context adds no overhead and
// changes no result: for every op, Execute under context.Background()
// returns bit-for-bit the bytes, CommStats and Spill records of the
// pre-redesign entrypoints it replaced.
func Execute(ctx context.Context, spec Spec) (*Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	switch spec.Mode {
	case ExecSim, ExecGoroutine, ExecSocket:
	default:
		return nil, fmt.Errorf("dist: unknown execution mode %v (valid modes: %s)", spec.Mode, validExecModes)
	}
	if spec.Op != OpRun && spec.Op != OpRunMatrix {
		if spec.Checkpoint.enabled() {
			return nil, fmt.Errorf("dist: checkpointing applies to the kernel-3 ops, not %v", spec.Op)
		}
		if spec.Fault != nil {
			return nil, fmt.Errorf("dist: fault injection applies to the kernel-3 ops, not %v", spec.Op)
		}
	}
	switch spec.Op {
	case OpRun:
		ck, done, err := prepareCheckpoint(&spec, specN(spec))
		if err != nil {
			return nil, err
		}
		if done != nil {
			return &Outcome{Run: done}, nil
		}
		var res *Result
		switch spec.Mode {
		case ExecSim:
			res, err = runSim(ctx, spec.Config, spec.Edges, spec.N, spec.Procs, spec.PageRank, ck)
		case ExecSocket:
			res, err = runSocket(ctx, spec, ck)
		default:
			res, err = runGoroutine(ctx, spec.Config, spec.Edges, spec.N, spec.Procs, spec.PageRank, ck)
		}
		if err != nil {
			return nil, err
		}
		ck.finish(res)
		return &Outcome{Run: res}, nil
	case OpRunMatrix:
		ck, done, err := prepareCheckpoint(&spec, specN(spec))
		if err != nil {
			return nil, err
		}
		if done != nil {
			if spec.Matrix != nil {
				done.NNZ = spec.Matrix.NNZ()
			}
			return &Outcome{Run: done}, nil
		}
		var res *Result
		switch spec.Mode {
		case ExecSim:
			res, err = runMatrixSim(ctx, spec.Config, spec.Matrix, spec.Procs, spec.PageRank, ck)
		case ExecSocket:
			res, err = runSocket(ctx, spec, ck)
		default:
			res, err = runMatrixGoroutine(ctx, spec.Config, spec.Matrix, spec.Procs, spec.PageRank, ck)
		}
		if err != nil {
			return nil, err
		}
		ck.finish(res)
		return &Outcome{Run: res}, nil
	case OpBuildFiltered:
		var res *BuildResult
		var err error
		switch spec.Mode {
		case ExecSim:
			res, err = buildFilteredSim(ctx, spec.Edges, spec.N, spec.Procs)
		case ExecSocket:
			res, err = buildFilteredSocket(ctx, spec)
		default:
			res, err = buildFilteredGoroutine(ctx, spec.Edges, spec.N, spec.Procs)
		}
		if err != nil {
			return nil, err
		}
		return &Outcome{Build: res}, nil
	case OpSort:
		var res *SortResult
		var err error
		switch spec.Mode {
		case ExecSim:
			res, err = sortSim(ctx, spec.Config, spec.Edges, spec.Procs)
		case ExecSocket:
			res, err = sortSocket(ctx, spec)
		default:
			res, err = sortGoroutine(ctx, spec.Config, spec.Edges, spec.Procs)
		}
		if err != nil {
			return nil, err
		}
		return &Outcome{Sort: res}, nil
	case OpSortExternal:
		res, err := executeSortExternal(ctx, spec)
		if err != nil {
			return nil, err
		}
		return &Outcome{ExtSort: res}, nil
	default:
		return nil, fmt.Errorf("dist: unknown op %v", spec.Op)
	}
}
