package dist

// The socket coordinator: ExecSocket's driver side.  Execute stays the
// single entry point; for the socket mode it delegates here, and this
// file does what spawnRanks does for goroutines — bring up p ranks, hand
// each the shared schedule, join them, fold their outcomes — except the
// ranks are separate OS processes reached over real sockets (DESIGN.md
// §13):
//
//	listen  — open the coordinator's control listener (unix or tcp);
//	spawn   — re-exec this binary p times with the join environment
//	          (sockworker.go's init hook), unless Socket.External asks
//	          for workers started by hand (cmd/prrankd);
//	admit   — accept p joins, assign ranks in join order, reject
//	          strays by fabric id;
//	welcome — send every worker the full mesh address table, await the
//	          p ready frames proving the worker-to-worker mesh is up;
//	job     — gob one wireJob per rank down the control links;
//	serve   — per worker, relay progress and checkpoint traffic until
//	          its outcome frame (or its death) arrives;
//	join    — reap the children and fold the outcomes exactly like
//	          spawnRanks: context error first, then the originating
//	          failure in rank order, then the aborted sentinel.
//
// Teardown mirrors the goroutine fabric's plane: the first failure —
// a worker death, a failed outcome, a cancelled context — trips a
// once-guarded teardown that closes the listener and every control
// link.  Each surviving worker's control reader turns that into a local
// cancel plus mesh abort, so every process unwinds and every child is
// reaped before Execute returns; the tearing flag keeps the induced
// follow-on errors classified as the aborted sentinel, preserving the
// originating error's precedence.

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
	"repro/internal/dist/fabric"
	"repro/internal/edge"
	"repro/internal/xsort"
)

// DefaultJoinTimeout bounds the socket handshake: listen to all ranks
// ready.  It covers p process spawns plus a p²/2-connection mesh on a
// loaded CI host, while still failing a genuinely missing worker.
const DefaultJoinTimeout = 60 * time.Second

// SocketSpec configures the socket execution mode (Spec.Socket).  The
// zero value is fully usable: a private unix-domain fabric on an
// auto-assigned address, workers self-spawned from the current binary.
type SocketSpec struct {
	// Network is the fabric's address family: "unix" (the default) or
	// "tcp".  Control and mesh connections use the same family.
	Network string
	// Addr is the coordinator's listen address — a socket path for
	// "unix", host:port for "tcp".  Empty picks a private temporary path
	// ("unix") or a loopback port ("tcp"); OnListen reports the result.
	Addr string
	// External suppresses self-spawning: the coordinator listens and
	// waits for p externally started workers (cmd/prrankd) to join.
	// FabricID is then required, since the workers must present it.
	External bool
	// FabricID authenticates joins.  Empty (with External unset) selects
	// a random id, which the spawn environment hands the children.
	FabricID string
	// IOTimeout is the per-frame deadline on every fabric connection:
	// 0 selects fabric.DefaultIOTimeout, negative disables deadlines.
	IOTimeout time.Duration
	// JoinTimeout bounds the whole handshake (listen to all ranks
	// ready); <= 0 selects DefaultJoinTimeout.
	JoinTimeout time.Duration
	// OnListen, when non-nil, observes the resolved listen address
	// before any worker is admitted — how an External caller learns an
	// auto-assigned address to start workers against.
	OnListen func(network, addr string)
}

// newFabricID mints a random fabric id for a self-spawned fabric.
func newFabricID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// sockJoined is the coordinator's equivalent of joined: the per-rank
// outcomes plus the folded communication, timing and wire records.
type sockJoined struct {
	outcomes []*wireOutcome
	comm     CommStats
	seconds  []float64
	wire     WireStats
}

// jobOf flattens a Spec into the wireJob every worker receives; the
// caller strips the per-rank fields (perRankJob) before sending.
func jobOf(spec Spec, ck *ckptRun) *wireJob {
	job := &wireJob{
		Op:             int(spec.Op),
		Procs:          spec.Procs,
		N:              specN(spec),
		Workers:        spec.Config.workers(),
		Opt:            optToWire(spec.PageRank),
		ReportProgress: spec.PageRank.Progress != nil,
		Fault:          spec.Fault,
	}
	if spec.Edges != nil {
		job.EdgesU, job.EdgesV = spec.Edges.U, spec.Edges.V
	}
	if spec.Op == OpRunMatrix {
		job.Matrix = matrixToWire(spec.Matrix)
	}
	if spec.Op == OpSortExternal {
		job.Ext = wireExt{
			RunEdges:  spec.Ext.RunEdges,
			TmpPrefix: spec.Ext.TmpPrefix,
			CodecName: spec.Ext.Codec.Name(),
		}
	}
	if ck != nil {
		job.Ckpt = wireCkpt{
			On:      ck.spec.enabled(),
			Every:   ck.spec.Every,
			N:       ck.n,
			Damping: ck.damping,
			Base:    ck.base,
		}
	}
	return job
}

// perRankJob specializes the shared job for one rank: only rank 0
// carries the initial vector and reports progress (iterateRank
// broadcasts the vector and single-observes the hook, exactly as in the
// other modes).
func perRankJob(job *wireJob, rank int) *wireJob {
	if rank == 0 {
		return job
	}
	j := *job
	j.Opt.InitialRank = nil
	j.ReportProgress = false
	return &j
}

// socketOutcomes runs one job on a fresh socket fabric of spec.Procs
// worker processes and joins them.  ck (may be nil) supplies the
// coordinator-side checkpoint storage the workers' relay frames land on.
func socketOutcomes(ctx context.Context, spec Spec, ck *ckptRun, job *wireJob) (*sockJoined, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p := spec.Procs
	sk := spec.Socket
	network := sk.Network
	if network == "" {
		network = "unix"
	}
	fabricID := sk.FabricID
	if fabricID == "" {
		if sk.External {
			return nil, fmt.Errorf("dist: external socket fabric requires Socket.FabricID")
		}
		var err error
		if fabricID, err = newFabricID(); err != nil {
			return nil, err
		}
	}
	addr := sk.Addr
	if addr == "" {
		switch network {
		case "unix":
			dir, err := os.MkdirTemp("", "prfabric")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			addr = filepath.Join(dir, "coord.sock")
		case "tcp":
			addr = "127.0.0.1:0"
		default:
			return nil, fmt.Errorf("dist: unknown fabric network %q (want unix or tcp)", network)
		}
	}
	ln, err := fabric.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	addr = ln.Addr().String()
	if sk.OnListen != nil {
		sk.OnListen(network, addr)
	}

	// Self-spawn: p copies of this very binary, flipped into worker mode
	// by the join environment (sockworker.go's init hook).  Stderr is
	// inherited so a worker's crash is visible.  The children are reaped
	// before this function returns, on every path.
	var cmds []*exec.Cmd
	defer func() { reapWorkers(cmds) }()
	if !sk.External {
		exe, err := os.Executable()
		if err != nil {
			return nil, err
		}
		env := append(os.Environ(),
			envJoin+"="+network+"|"+addr,
			envFabricID+"="+fabricID)
		for i := 0; i < p; i++ {
			cmd := exec.Command(exe)
			cmd.Env = env
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return nil, fmt.Errorf("dist: spawning worker %d: %w", i, err)
			}
			cmds = append(cmds, cmd)
		}
	}

	// Admission under the join timer: accept until p workers presented
	// the fabric id, assigning ranks in join order; strays are rejected
	// and the timer converts a missing worker into a clean error.
	joinTimeout := sk.JoinTimeout
	if joinTimeout <= 0 {
		joinTimeout = DefaultJoinTimeout
	}
	var timedOut atomic.Bool
	timer := time.AfterFunc(joinTimeout, func() {
		timedOut.Store(true)
		ln.Close()
	})
	defer timer.Stop()
	joinErr := func(stage string, err error) error {
		if timedOut.Load() {
			return fmt.Errorf("dist: socket fabric %s timed out after %v", stage, joinTimeout)
		}
		return fmt.Errorf("dist: socket fabric %s: %w", stage, err)
	}
	var ctrlStats fabric.Stats
	ctrls := make([]*fabric.Link, 0, p)
	closeCtrls := func() {
		for _, c := range ctrls {
			c.Close()
		}
	}
	meshAddrs := make([]string, 0, p)
	for len(ctrls) < p {
		conn, err := ln.Accept()
		if err != nil {
			closeCtrls()
			if timedOut.Load() {
				return nil, fmt.Errorf("dist: socket fabric join timed out after %v (%d of %d workers joined)", joinTimeout, len(ctrls), p)
			}
			return nil, joinErr("accept", err)
		}
		c := fabric.NewLink(conn, sk.IOTimeout, &ctrlStats)
		h, payload, err := c.ReadFrame()
		if err != nil || h.Type != fabric.FrameJoin {
			c.Close()
			continue
		}
		j, err := fabric.ParseJoin(payload)
		if err != nil || j.FabricID != fabricID || j.MeshNetwork != network {
			_ = c.WriteControl(fabric.FrameReject, 0, 0, []byte("dist: join rejected: wrong fabric id or network"))
			c.Close()
			continue
		}
		ctrls = append(ctrls, c)
		meshAddrs = append(meshAddrs, j.MeshAddr)
	}

	// Welcome each rank with the full address table, then await the p
	// ready frames proving the worker mesh is complete.
	for r, c := range ctrls {
		err := c.WriteControl(fabric.FrameWelcome, 0, r, fabric.AppendWelcome(nil, fabric.Welcome{
			Rank: r, Procs: p, MeshNetwork: network, MeshAddrs: meshAddrs,
		}))
		if err != nil {
			closeCtrls()
			return nil, joinErr("welcome", err)
		}
	}
	for r, c := range ctrls {
		h, _, err := c.ReadFrame()
		if err != nil || h.Type != fabric.FrameReady {
			closeCtrls()
			if err == nil {
				err = fmt.Errorf("unexpected %v frame from rank %d in place of ready", h.Type, r)
			}
			return nil, joinErr("mesh", err)
		}
	}
	timer.Stop()

	// Ship the jobs; the run is on.
	for r, c := range ctrls {
		buf, err := encodeGob(perRankJob(job, r))
		if err != nil {
			closeCtrls()
			return nil, err
		}
		if err := c.WriteControl(fabric.FrameJob, 0, r, buf); err != nil {
			closeCtrls()
			return nil, joinErr("job", err)
		}
	}

	// The teardown plane: first failure closes the listener and every
	// control link; tearing keeps the induced errors classified as the
	// aborted sentinel so the originating error keeps its precedence.
	var tearing atomic.Bool
	var teardownOnce sync.Once
	teardown := func() {
		teardownOnce.Do(func() {
			tearing.Store(true)
			ln.Close()
			closeCtrls()
		})
	}
	stopWatch := make(chan struct{})
	//prlint:allow determinism -- cancellation watcher: joins via stopWatch before socketOutcomes returns, never touches results
	go func() {
		select {
		case <-ctx.Done():
			teardown()
		case <-stopWatch:
		}
	}()

	outs := make([]*wireOutcome, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r, c := range ctrls {
		wg.Add(1)
		//prlint:allow determinism -- per-worker control server: relays storage and progress, joins on wg before results are read
		go func(r int, c *fabric.Link) {
			defer wg.Done()
			out, err := serveWorker(spec, ck, r, c, &tearing)
			outs[r], errs[r] = out, err
			if err != nil || out.ErrKind != errKindNone {
				teardown()
			}
		}(r, c)
	}
	wg.Wait()
	close(stopWatch)
	teardownOnce.Do(func() {}) // clean finish: nothing tripped the plane
	closeCtrls()
	reapWorkers(cmds)
	cmds = nil

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Fold exactly like spawnRanks: the originating failure (in rank
	// order) outranks the aborted sentinel of the ranks it unwound.
	var aborted error
	for r := 0; r < p; r++ {
		err := errs[r]
		if err == nil && outs[r] != nil {
			err = outs[r].outcomeErr()
		}
		switch {
		case err == nil:
		case errors.Is(err, errRunAborted):
			if aborted == nil {
				aborted = err
			}
		default:
			return nil, err
		}
	}
	if aborted != nil {
		return nil, aborted
	}
	j := &sockJoined{outcomes: outs, seconds: make([]float64, p)}
	for r, o := range outs {
		j.comm.Add(o.Comm)
		j.seconds[r] = o.Seconds
		j.wire.Add(o.Wire)
	}
	return j, nil
}

// serveWorker is one worker's control server: it relays progress and
// checkpoint frames until the worker's outcome (or death) ends the
// stream.  Checkpoint chunks and commits land on the coordinator's
// storage through the same ckpt calls the goroutine ranks make, and the
// acks carry the write errors back into the workers' agreeError
// barriers — so the epoch protocol, torn-epoch semantics included, is
// the goroutine mode's verbatim.
func serveWorker(spec Spec, ck *ckptRun, rank int, c *fabric.Link, tearing *atomic.Bool) (*wireOutcome, error) {
	ack := func(msg string) error {
		return c.WriteControl(fabric.FrameCkptAck, 0, rank, []byte(msg))
	}
	for {
		h, payload, err := c.ReadFrame()
		if err != nil {
			if tearing.Load() {
				return nil, errRunAborted
			}
			return nil, fmt.Errorf("dist: rank %d worker died: %v", rank, err)
		}
		switch h.Type {
		case fabric.FrameProgress:
			if spec.PageRank.Progress != nil && len(payload) == 8 {
				spec.PageRank.Progress(int(binary.LittleEndian.Uint64(payload)))
			}
		case fabric.FrameCkptChunk:
			msg := ""
			if ck == nil || !ck.spec.enabled() {
				msg = "dist: checkpoint relay without coordinator storage"
			} else if chunk, derr := ckpt.Decode(bytes.NewReader(payload)); derr != nil {
				msg = derr.Error()
			} else if werr := ckpt.WriteChunk(ck.spec.FS, ck.spec.Prefix, chunk); werr != nil {
				msg = werr.Error()
			}
			if err := ack(msg); err != nil {
				return nil, fmt.Errorf("dist: rank %d checkpoint ack: %v", rank, err)
			}
		case fabric.FrameCkptCommit:
			msg := ""
			if ck == nil || !ck.spec.enabled() || len(payload) != 8 {
				msg = "dist: checkpoint relay without coordinator storage"
			} else {
				g := int64(binary.LittleEndian.Uint64(payload))
				if werr := ckpt.WriteCommit(ck.spec.FS, ck.spec.Prefix, g, ck.n, ck.procs, ck.damping); werr != nil {
					msg = werr.Error()
				} else {
					ck.noteCommitted(g)
				}
			}
			if err := ack(msg); err != nil {
				return nil, fmt.Errorf("dist: rank %d checkpoint ack: %v", rank, err)
			}
		case fabric.FrameOutcome:
			out := new(wireOutcome)
			if err := decodeGob(payload, out); err != nil {
				return nil, fmt.Errorf("dist: rank %d outcome: %v", rank, err)
			}
			if out.Rank != rank {
				return nil, fmt.Errorf("dist: rank %d reported outcome for rank %d", rank, out.Rank)
			}
			return out, nil
		default:
			return nil, fmt.Errorf("dist: rank %d sent unexpected %v frame", rank, h.Type)
		}
	}
}

// reapWorkers waits for self-spawned workers, killing any that outlives
// the teardown grace period (a worker that neither finished nor noticed
// its closed control link is wedged).  Exit statuses are deliberately
// ignored: failures travel through outcomes and control-link errors.
func reapWorkers(cmds []*exec.Cmd) {
	for _, cmd := range cmds {
		if cmd == nil || cmd.Process == nil {
			continue
		}
		kill := time.AfterFunc(10*time.Second, func() { _ = cmd.Process.Kill() })
		_ = cmd.Wait()
		kill.Stop()
	}
}

// runSocket executes OpRun and OpRunMatrix on a socket fabric.
func runSocket(ctx context.Context, spec Spec, ck *ckptRun) (*Result, error) {
	if spec.Op == OpRunMatrix {
		if spec.Matrix == nil {
			return nil, fmt.Errorf("dist: RunMatrix of nil matrix")
		}
		if spec.Procs < 1 {
			return nil, fmt.Errorf("dist: RunMatrix with p = %d, want >= 1", spec.Procs)
		}
	} else if err := validateRun(spec.Edges, spec.N, spec.Procs); err != nil {
		return nil, err
	}
	j, err := socketOutcomes(ctx, spec, ck, jobOf(spec, ck))
	if err != nil {
		return nil, err
	}
	return &Result{
		Rank:        j.outcomes[0].RankVec,
		NNZ:         j.outcomes[0].NNZ,
		Comm:        j.comm,
		Iterations:  j.outcomes[0].Iters,
		RankSeconds: j.seconds,
		Wire:        &j.wire,
	}, nil
}

// buildFilteredSocket executes OpBuildFiltered on a socket fabric; the
// coordinator assembles the global matrix from the shipped blocks.
func buildFilteredSocket(ctx context.Context, spec Spec) (*BuildResult, error) {
	if err := validateRun(spec.Edges, spec.N, spec.Procs); err != nil {
		return nil, err
	}
	j, err := socketOutcomes(ctx, spec, nil, jobOf(spec, nil))
	if err != nil {
		return nil, err
	}
	states := make([]*rankState, spec.Procs)
	for r, o := range j.outcomes {
		if o.Block == nil {
			return nil, fmt.Errorf("dist: rank %d outcome carries no block", r)
		}
		states[r] = o.Block.state()
	}
	return &BuildResult{
		Matrix: assemble(states, spec.N),
		Mass:   j.outcomes[0].Mass,
		NNZ:    j.outcomes[0].NNZ,
		Comm:   j.comm,
		Wire:   &j.wire,
	}, nil
}

// sortSocket executes OpSort on a socket fabric, with the same
// no-communication shortcut the goroutine mode takes for p = 1 and
// empty inputs.
func sortSocket(ctx context.Context, spec Spec) (*SortResult, error) {
	l, p := spec.Edges, spec.Procs
	if l == nil {
		return nil, fmt.Errorf("dist: Sort of nil edge list")
	}
	if p < 1 {
		return nil, fmt.Errorf("dist: Sort with p = %d, want >= 1", p)
	}
	m := l.Len()
	if p == 1 || m == 0 {
		out := l.Clone()
		xsort.RadixByU(out)
		return &SortResult{Sorted: out}, nil
	}
	j, err := socketOutcomes(ctx, spec, nil, jobOf(spec, nil))
	if err != nil {
		return nil, err
	}
	sorted := edge.NewList(m)
	for _, o := range j.outcomes {
		sorted.AppendList(edgesOf(o.EdgesU, o.EdgesV))
	}
	return &SortResult{Sorted: sorted, Comm: j.comm, Wire: &j.wire}, nil
}

// sortExternalSocket executes OpSortExternal on a socket fabric.  Each
// worker spills to its own private in-memory store (run files are
// rank-private temporaries, gone before the rank returns), so the
// coordinator-side Ext.FS is unused in this mode and Spill sums the
// per-rank metered records — equal to the other modes' shared-meter
// totals, because the per-rank run traffic is disjoint.
func sortExternalSocket(ctx context.Context, spec Spec) (*ExtSortResult, error) {
	j, err := socketOutcomes(ctx, spec, nil, jobOf(spec, nil))
	if err != nil {
		return nil, err
	}
	p := spec.Procs
	sorted := edge.NewList(spec.Edges.Len())
	runsPerRank := make([]int, p)
	res := &ExtSortResult{RunsPerRank: runsPerRank, Wire: &j.wire}
	for r, o := range j.outcomes {
		sorted.AppendList(edgesOf(o.EdgesU, o.EdgesV))
		runsPerRank[r] = o.Runs
		res.Spill.BytesRead += o.Spill.BytesRead
		res.Spill.BytesWritten += o.Spill.BytesWritten
		res.Spill.Opens += o.Spill.Opens
		res.Spill.Creates += o.Spill.Creates
	}
	res.Sorted = sorted
	res.Comm = j.comm
	return res, nil
}
