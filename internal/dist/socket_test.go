package dist_test

// Property suite for the socket execution mode (DESIGN.md §13): p ranks
// as separate OS processes over unix-domain (and TCP loopback) sockets
// must be observationally identical to the simulation and the goroutine
// fabric — rank bits, CommStats, spill records — while the measured
// socket payload bytes equal the metered CommStats, checkpoint/restart
// works across the process boundary (genuine worker death included),
// and an aborted run leaks neither goroutines nor file descriptors.
//
// Every socket Execute in this file self-spawns its workers by
// re-execing this very test binary: the dist package's init hook turns
// a process carrying the join environment into a rank worker before the
// test driver starts.

import (
	"context"
	"errors"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/pagerank"
	"repro/internal/vfs"
)

// socketSpec is a Spec with the socket mode selected and self-spawned
// unix-domain workers — SocketSpec's zero value.
func socketSpec(op dist.Op, p int) dist.Spec {
	return dist.Spec{Config: dist.Config{Mode: dist.ExecSocket}, Op: op, Procs: p}
}

// commTotal is a CommStats' wire-byte total: the quantity the measured
// socket data plane must reproduce.
func commTotal(st dist.CommStats) uint64 {
	return st.AllToAllBytes + st.AllReduceBytes + st.BroadcastBytes
}

// checkWire pins the metering identity on a finished socket run: the
// bytes measured on the wire (write side, summed over workers) equal
// the metered CommStats exactly.
func checkWire(t *testing.T, what string, wire *dist.WireStats, st dist.CommStats) {
	t.Helper()
	if wire == nil {
		t.Fatalf("%s: socket run reported no wire stats", what)
	}
	if wire.DataBytes != commTotal(st) {
		t.Fatalf("%s: measured %d wire data bytes, metered %d", what, wire.DataBytes, commTotal(st))
	}
	if commTotal(st) > 0 && wire.Frames == 0 {
		t.Fatalf("%s: %d metered bytes but zero frames on the wire", what, commTotal(st))
	}
}

// TestSocketRunMatchesOtherModes is the tentpole property for kernel
// 2+3: for every p the socket pipeline equals the simulation and the
// goroutine fabric bit for bit — ranks, CommStats, iteration and NNZ
// counts — and the measured socket bytes equal the metered bytes and
// the closed form.
func TestSocketRunMatchesOtherModes(t *testing.T) {
	l, n := executeGraph(t, 6)
	opt := pagerank.Options{Seed: 3, Iterations: 8, Dangling: true}
	for _, p := range procCounts {
		var ref [2]*dist.Result
		for i, mode := range []dist.ExecMode{dist.ExecSim, dist.ExecGoroutine} {
			out, err := dist.Execute(context.Background(), dist.Spec{
				Config: dist.Config{Mode: mode}, Op: dist.OpRun,
				Edges: l, N: n, Procs: p, PageRank: opt,
			})
			if err != nil {
				t.Fatalf("p=%d mode=%v: %v", p, mode, err)
			}
			ref[i] = out.Run
		}
		spec := socketSpec(dist.OpRun, p)
		spec.Edges, spec.N, spec.PageRank = l, n, opt
		out, err := dist.Execute(context.Background(), spec)
		if err != nil {
			t.Fatalf("p=%d socket: %v", p, err)
		}
		res := out.Run
		for i, mode := range []string{"sim", "goroutine"} {
			sameRank(t, "socket vs "+mode, ref[i].Rank, res.Rank)
			if res.Comm != ref[i].Comm {
				t.Fatalf("p=%d: socket CommStats %+v != %s %+v", p, res.Comm, mode, ref[i].Comm)
			}
			if res.Iterations != ref[i].Iterations || res.NNZ != ref[i].NNZ {
				t.Fatalf("p=%d: socket iters/nnz %d/%d != %s %d/%d",
					p, res.Iterations, res.NNZ, mode, ref[i].Iterations, ref[i].NNZ)
			}
		}
		checkWire(t, "run", res.Wire, res.Comm)
		// The wire bytes minus the data-dependent kernel-2 edge routing
		// are exactly the §V closed form — PredictedCommBytes measured on
		// an actual network.
		collectives := res.Wire.DataBytes - res.Comm.AllToAllBytes
		if want := dist.PredictedCommBytes(n, p, res.Iterations, true); collectives != want {
			t.Fatalf("p=%d: %d collective wire bytes, closed form predicts %d", p, collectives, want)
		}
		if p > 1 && len(res.RankSeconds) != p {
			t.Fatalf("p=%d: RankSeconds %v", p, res.RankSeconds)
		}
	}
}

// TestSocketSortMatchesOtherModes pins kernel 1: sorted bits and
// CommStats equal across all three modes for every p, measured bytes
// equal metered bytes.
func TestSocketSortMatchesOtherModes(t *testing.T) {
	l, _ := executeGraph(t, 6)
	for _, p := range procCounts {
		want, err := dist.Execute(context.Background(), dist.Spec{
			Op: dist.OpSort, Edges: l, Procs: p,
		})
		if err != nil {
			t.Fatalf("p=%d sim: %v", p, err)
		}
		spec := socketSpec(dist.OpSort, p)
		spec.Edges = l
		out, err := dist.Execute(context.Background(), spec)
		if err != nil {
			t.Fatalf("p=%d socket: %v", p, err)
		}
		if !out.Sort.Sorted.Equal(want.Sort.Sorted) {
			t.Fatalf("p=%d: socket sort differs from the simulation", p)
		}
		if out.Sort.Comm != want.Sort.Comm {
			t.Fatalf("p=%d: socket sort CommStats %+v != sim %+v", p, out.Sort.Comm, want.Sort.Comm)
		}
		if p > 1 {
			checkWire(t, "sort", out.Sort.Wire, out.Sort.Comm)
		}
	}
}

// TestSocketBuildFilteredMatchesOtherModes pins kernel 2 alone: the
// assembled global matrix, mass, NNZ and CommStats equal the other
// modes' bit for bit.
func TestSocketBuildFilteredMatchesOtherModes(t *testing.T) {
	l, n := executeGraph(t, 6)
	for _, p := range procCounts {
		want, err := dist.Execute(context.Background(), dist.Spec{
			Op: dist.OpBuildFiltered, Edges: l, N: n, Procs: p,
		})
		if err != nil {
			t.Fatalf("p=%d sim: %v", p, err)
		}
		spec := socketSpec(dist.OpBuildFiltered, p)
		spec.Edges, spec.N = l, n
		out, err := dist.Execute(context.Background(), spec)
		if err != nil {
			t.Fatalf("p=%d socket: %v", p, err)
		}
		sameMatrix(t, "socket build", want.Build.Matrix, out.Build.Matrix)
		if out.Build.Mass != want.Build.Mass || out.Build.NNZ != want.Build.NNZ {
			t.Fatalf("p=%d: socket mass/nnz %v/%d != sim %v/%d",
				p, out.Build.Mass, out.Build.NNZ, want.Build.Mass, want.Build.NNZ)
		}
		if out.Build.Comm != want.Build.Comm {
			t.Fatalf("p=%d: socket build CommStats %+v != sim %+v", p, out.Build.Comm, want.Build.Comm)
		}
		checkWire(t, "build", out.Build.Wire, out.Build.Comm)
	}
}

// TestSocketSortExternalMatchesOtherModes pins the out-of-core kernel 1:
// sorted bits, CommStats, per-rank run counts and summed spill traffic
// equal the other modes', even though each socket worker spills to its
// own private store.
func TestSocketSortExternalMatchesOtherModes(t *testing.T) {
	l, _ := executeGraph(t, 6)
	ext := dist.ExtSortConfig{RunEdges: 64}
	for _, p := range []int{1, 3, 5} {
		want, err := dist.Execute(context.Background(), dist.Spec{
			Op: dist.OpSortExternal, Edges: l, Procs: p, Ext: ext,
		})
		if err != nil {
			t.Fatalf("p=%d sim: %v", p, err)
		}
		spec := socketSpec(dist.OpSortExternal, p)
		spec.Edges, spec.Ext = l, ext
		out, err := dist.Execute(context.Background(), spec)
		if err != nil {
			t.Fatalf("p=%d socket: %v", p, err)
		}
		if !out.ExtSort.Sorted.Equal(want.ExtSort.Sorted) {
			t.Fatalf("p=%d: socket external sort differs from the simulation", p)
		}
		if out.ExtSort.Comm != want.ExtSort.Comm {
			t.Fatalf("p=%d: CommStats %+v != sim %+v", p, out.ExtSort.Comm, want.ExtSort.Comm)
		}
		for r := 0; r < p; r++ {
			if out.ExtSort.RunsPerRank[r] != want.ExtSort.RunsPerRank[r] {
				t.Fatalf("p=%d rank %d: %d runs, sim %d", p, r, out.ExtSort.RunsPerRank[r], want.ExtSort.RunsPerRank[r])
			}
		}
		if out.ExtSort.Spill != want.ExtSort.Spill {
			t.Fatalf("p=%d: socket spill %+v != sim %+v", p, out.ExtSort.Spill, want.ExtSort.Spill)
		}
		if out.ExtSort.SpillCodec != want.ExtSort.SpillCodec {
			t.Fatalf("p=%d: spill codec %q != %q", p, out.ExtSort.SpillCodec, want.ExtSort.SpillCodec)
		}
		checkWire(t, "ext sort", out.ExtSort.Wire, out.ExtSort.Comm)
	}
}

// TestSocketTCPLoopback smokes the TCP address family end to end: the
// same run over 127.0.0.1 must equal the unix-domain (and therefore
// every other) execution exactly.
func TestSocketTCPLoopback(t *testing.T) {
	l, n := executeGraph(t, 6)
	opt := pagerank.Options{Seed: 3, Iterations: 5}
	want, err := dist.Execute(context.Background(), dist.Spec{
		Op: dist.OpRun, Edges: l, N: n, Procs: 3, PageRank: opt,
	})
	if err != nil {
		t.Fatal(err)
	}
	var listened string
	spec := socketSpec(dist.OpRun, 3)
	spec.Edges, spec.N, spec.PageRank = l, n, opt
	spec.Socket = dist.SocketSpec{
		Network:  "tcp",
		OnListen: func(network, addr string) { listened = network + "://" + addr },
	}
	out, err := dist.Execute(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	sameRank(t, "tcp socket run", want.Run.Rank, out.Run.Rank)
	if out.Run.Comm != want.Run.Comm {
		t.Fatalf("tcp CommStats %+v != sim %+v", out.Run.Comm, want.Run.Comm)
	}
	checkWire(t, "tcp run", out.Run.Wire, out.Run.Comm)
	if !strings.HasPrefix(listened, "tcp://127.0.0.1:") {
		t.Fatalf("OnListen reported %q, want a tcp loopback address", listened)
	}
}

// TestSocketCheckpointResume drives the §10 kill-and-resume property
// over the socket transport: the workers' chunk and commit writes are
// relayed to the coordinator's storage, a fault at an epoch leaves a
// resumable state, and the resumed run's final ranks are bit-for-bit
// the uninterrupted run's.  The torn-epoch case (DuringCheckpoint) must
// resume from the previous epoch.
func TestSocketCheckpointResume(t *testing.T) {
	l, n := executeGraph(t, 6)
	for _, p := range []int{1, 2, 5} {
		baseline, err := dist.Execute(context.Background(), dist.Spec{
			Op: dist.OpRun, Edges: l, N: n, Procs: p,
			PageRank: pagerank.Options{Seed: 5, Iterations: 10},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, torn := range []bool{false, true} {
			fs := vfs.NewMem()
			spec := socketSpec(dist.OpRun, p)
			spec.Edges, spec.N = l, n
			spec.PageRank = pagerank.Options{Seed: 5, Iterations: 10}
			spec.Checkpoint = dist.CheckpointSpec{FS: fs, Every: 3, Resume: true}
			spec.Fault = &dist.FaultPlan{KillRank: p - 1, AtIteration: 6, DuringCheckpoint: torn}
			_, err := dist.Execute(context.Background(), spec)
			if !errors.Is(err, dist.ErrFaultInjected) {
				t.Fatalf("p=%d torn=%v: kill err = %v", p, torn, err)
			}

			resumed := socketSpec(dist.OpRun, p)
			resumed.Edges, resumed.N = l, n
			resumed.PageRank = pagerank.Options{Seed: 5, Iterations: 10}
			resumed.Checkpoint = dist.CheckpointSpec{FS: fs, Every: 3, Resume: true}
			out, err := dist.Execute(context.Background(), resumed)
			if err != nil {
				t.Fatalf("p=%d torn=%v: resume: %v", p, torn, err)
			}
			res := out.Run
			sameRank(t, "socket kill-and-resume", baseline.Run.Rank, res.Rank)
			st := res.Checkpoint
			wantFrom := int64(6)
			if torn {
				wantFrom = 3 // epoch 6's commit never landed; the loader must skip it
			}
			if st == nil || !st.Resumed || st.ResumedFrom != wantFrom {
				t.Fatalf("p=%d torn=%v: stats %+v, want resume from %d", p, torn, st, wantFrom)
			}
			measured := res.Comm.AllReduceBytes + res.Comm.BroadcastBytes
			if want := dist.PredictedCommBytes(n, p, 10-int(wantFrom), false); measured != want {
				t.Fatalf("p=%d torn=%v: resumed segment %d bytes, predicted %d", p, torn, measured, want)
			}
		}
	}
}

// TestSocketHardFaultWorkerDeath kills a worker process for real
// (os.Exit at the fault boundary) and checks the coordinator surfaces
// the death, tears the fabric down without leaking goroutines, and that
// the epochs committed before the death support a bit-for-bit resume.
func TestSocketHardFaultWorkerDeath(t *testing.T) {
	l, n := executeGraph(t, 6)
	const p = 3
	baseline, err := dist.Execute(context.Background(), dist.Spec{
		Op: dist.OpRun, Edges: l, N: n, Procs: p,
		PageRank: pagerank.Options{Seed: 5, Iterations: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := waitForBaseline(t)
	fs := vfs.NewMem()
	spec := socketSpec(dist.OpRun, p)
	spec.Edges, spec.N = l, n
	spec.PageRank = pagerank.Options{Seed: 5, Iterations: 10}
	spec.Checkpoint = dist.CheckpointSpec{FS: fs, Every: 3, Resume: true}
	spec.Fault = &dist.FaultPlan{KillRank: 1, AtIteration: 6, Hard: true}
	_, err = dist.Execute(context.Background(), spec)
	if err == nil || !strings.Contains(err.Error(), "worker died") {
		t.Fatalf("hard fault err = %v, want a worker-death error", err)
	}
	waitForGoroutines(t, before)

	resumed := socketSpec(dist.OpRun, p)
	resumed.Edges, resumed.N = l, n
	resumed.PageRank = pagerank.Options{Seed: 5, Iterations: 10}
	resumed.Checkpoint = dist.CheckpointSpec{FS: fs, Every: 3, Resume: true}
	out, err := dist.Execute(context.Background(), resumed)
	if err != nil {
		t.Fatalf("resume after hard death: %v", err)
	}
	sameRank(t, "resume after hard death", baseline.Run.Rank, out.Run.Rank)
	if st := out.Run.Checkpoint; st == nil || st.ResumedFrom != 6 {
		t.Fatalf("resume stats %+v, want resume from epoch 6", st)
	}
}

// TestSocketHardFaultRejectedOffSocket pins that Hard fault plans are
// rejected in the modes that have no process to kill.
func TestSocketHardFaultRejectedOffSocket(t *testing.T) {
	l, n := executeGraph(t, 6)
	for _, mode := range []dist.ExecMode{dist.ExecSim, dist.ExecGoroutine} {
		_, err := dist.Execute(context.Background(), dist.Spec{
			Config: dist.Config{Mode: mode}, Op: dist.OpRun, Edges: l, N: n, Procs: 2,
			PageRank: pagerank.Options{Seed: 5, Iterations: 10},
			Fault:    &dist.FaultPlan{KillRank: 0, AtIteration: 2, Hard: true},
		})
		if err == nil || !strings.Contains(err.Error(), "socket mode") {
			t.Fatalf("mode=%v: hard fault err = %v, want socket-mode rejection", mode, err)
		}
	}
}

// countFDs counts this process's open file descriptors (linux); skip on
// hosts without /proc.
func countFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd: %v", err)
	}
	return len(ents)
}

// waitForBaseline settles transient goroutines from earlier tests and
// returns the current count as the leak baseline.
func waitForBaseline(t *testing.T) int {
	t.Helper()
	time.Sleep(20 * time.Millisecond)
	return runtime.NumGoroutine()
}

// TestSocketCancelMidRunLeaksNothing cancels socket runs mid-kernel-3
// and checks the coordinator unwinds completely: every worker process
// reaped, every coordinator goroutine joined, every socket and listener
// closed (file-descriptor count restored).
func TestSocketCancelMidRunLeaksNothing(t *testing.T) {
	l, n := executeGraph(t, 6)
	before := waitForBaseline(t)
	fdsBefore := countFDs(t)
	for round := 0; round < 3; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		progressed := make(chan struct{}, 1)
		spec := socketSpec(dist.OpRun, 3)
		spec.Edges, spec.N = l, n
		spec.PageRank = pagerank.Options{Seed: 1, Iterations: 500_000, Progress: func(int) {
			select {
			case progressed <- struct{}{}:
			default:
			}
		}}
		done := make(chan error, 1)
		go func() { _, err := dist.Execute(ctx, spec); done <- err }()
		<-progressed // the run is mid-iteration on live worker processes
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("round %d: cancelled run returned %v", round, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d: cancelled run did not return", round)
		}
	}
	waitForGoroutines(t, before)
	// FD release can trail the goroutine join by a beat; poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := countFDs(t); n <= fdsBefore {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("file descriptors leaked: %d before, %d after", fdsBefore, countFDs(t))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSocketWorkerKilledMidRun kills a worker process externally (no
// cooperation from the fault plane) and checks the coordinator surfaces
// a worker-death error promptly and leaks nothing.
func TestSocketWorkerKilledMidRun(t *testing.T) {
	l, n := executeGraph(t, 6)
	before := waitForBaseline(t)
	spec := socketSpec(dist.OpRun, 3)
	spec.Edges, spec.N = l, n
	// A hard fault IS an uncooperative kill: os.Exit(3) without touching
	// the fabric or the control plane, indistinguishable from a kill -9
	// arriving between two instructions.
	spec.PageRank = pagerank.Options{Seed: 1, Iterations: 1000}
	spec.Fault = &dist.FaultPlan{KillRank: 2, AtIteration: 500, Hard: true}
	start := time.Now()
	_, err := dist.Execute(context.Background(), spec)
	if err == nil || !strings.Contains(err.Error(), "worker died") {
		t.Fatalf("err = %v, want a worker-death error", err)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("worker death took %v to surface", d)
	}
	waitForGoroutines(t, before)
}
