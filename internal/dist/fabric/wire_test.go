package fabric

import (
	"bytes"
	"encoding/binary"
	"math"
	"net"
	"testing"

	"repro/internal/edge"
)

func TestHeaderRoundTrip(t *testing.T) {
	var b [HeaderSize]byte
	want := Header{Type: FrameSegments, Src: 3, Dst: 7, Len: 12345}
	PutHeader(b[:], want)
	got, err := ParseHeader(b[:], 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
}

func TestParseHeaderRejects(t *testing.T) {
	valid := func() []byte {
		var b [HeaderSize]byte
		PutHeader(b[:], Header{Type: FrameVec, Src: 0, Dst: 1, Len: 8})
		return b[:]
	}
	cases := []struct {
		name   string
		mutate func(b []byte)
		maxLen int64
	}{
		{"short", func(b []byte) {}, 0}, // truncated below
		{"magic", func(b []byte) { b[0] = 'X' }, 0},
		{"version", func(b []byte) { binary.LittleEndian.PutUint16(b[4:6], Version+1) }, 0},
		{"type-zero", func(b []byte) { binary.LittleEndian.PutUint16(b[6:8], 0) }, 0},
		{"type-high", func(b []byte) { binary.LittleEndian.PutUint16(b[6:8], 999) }, 0},
		{"oversized", func(b []byte) { binary.LittleEndian.PutUint64(b[16:24], 1<<40) }, 0},
		{"over-custom-limit", func(b []byte) { binary.LittleEndian.PutUint64(b[16:24], 100) }, 64},
	}
	for _, tc := range cases {
		b := valid()
		tc.mutate(b)
		if tc.name == "short" {
			b = b[:HeaderSize-1]
		}
		if _, err := ParseHeader(b, tc.maxLen); err == nil {
			t.Errorf("%s: ParseHeader accepted a corrupt header", tc.name)
		}
	}
}

func TestPayloadRoundTrips(t *testing.T) {
	vec := []float64{0, 1.5, -2.25, math.Inf(1), math.Copysign(0, -1)}
	b := AppendVec(nil, vec)
	if len(b) != 8*len(vec) {
		t.Fatalf("vec payload %d bytes, want %d", len(b), 8*len(vec))
	}
	got := make([]float64, len(vec))
	if err := DecodeVec(b, got); err != nil {
		t.Fatal(err)
	}
	for i := range vec {
		if math.Float64bits(got[i]) != math.Float64bits(vec[i]) {
			t.Fatalf("vec[%d]: got %v, want %v", i, got[i], vec[i])
		}
	}

	keys := []uint64{0, 1, 1 << 63, ^uint64(0)}
	kb := AppendKeys(nil, keys)
	kg := make([]uint64, len(keys))
	if err := DecodeKeys(kb, kg); err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if kg[i] != keys[i] {
			t.Fatalf("keys[%d]: got %d, want %d", i, kg[i], keys[i])
		}
	}

	l := edge.NewList(3)
	l.Append(1, 2)
	l.Append(3, 4)
	l.Append(5, 6)
	eb := AppendEdges(nil, l)
	if len(eb) != 16*l.Len() {
		t.Fatalf("edges payload %d bytes, want %d", len(eb), 16*l.Len())
	}
	eg := edge.NewList(0)
	if err := DecodeEdges(eb, eg); err != nil {
		t.Fatal(err)
	}
	if !l.Equal(eg) {
		t.Fatal("edges round trip mismatch")
	}

	empty := edge.NewList(0)
	segs := []*edge.List{l, empty, eg}
	sb := AppendSegments(nil, segs)
	wantData := uint64(16 * (l.Len() + eg.Len()))
	if uint64(len(sb)) != wantData+SegmentsOverhead(len(segs)) {
		t.Fatalf("segments payload %d bytes, want %d data + %d overhead",
			len(sb), wantData, SegmentsOverhead(len(segs)))
	}
	sg, err := DecodeSegments(sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(sg) != len(segs) {
		t.Fatalf("got %d segments, want %d", len(sg), len(segs))
	}
	for i := range segs {
		if !segs[i].Equal(sg[i]) {
			t.Fatalf("segment %d mismatch", i)
		}
	}
}

func TestDecodeRejectsMalformedPayloads(t *testing.T) {
	if err := DecodeVec(make([]byte, 7), make([]float64, 0)); err == nil {
		t.Error("DecodeVec accepted a ragged payload")
	}
	if err := DecodeKeys(make([]byte, 9), make([]uint64, 1)); err == nil {
		t.Error("DecodeKeys accepted a ragged payload")
	}
	if err := DecodeEdges(make([]byte, 15), edge.NewList(0)); err == nil {
		t.Error("DecodeEdges accepted a ragged payload")
	}
	// Segment count far beyond the payload must be rejected before any
	// allocation sized from it.
	b := binary.LittleEndian.AppendUint32(nil, 1<<30)
	if _, err := DecodeSegments(b); err == nil {
		t.Error("DecodeSegments accepted an absurd segment count")
	}
	// An edge count beyond the remaining bytes.
	b = binary.LittleEndian.AppendUint32(nil, 1)
	b = binary.LittleEndian.AppendUint32(b, 1000)
	if _, err := DecodeSegments(b); err == nil {
		t.Error("DecodeSegments accepted an oversized edge count")
	}
	// Trailing garbage after the last segment.
	b = AppendSegments(nil, []*edge.List{edge.NewList(0)})
	b = append(b, 0xFF)
	if _, err := DecodeSegments(b); err == nil {
		t.Error("DecodeSegments accepted trailing bytes")
	}
}

func TestHandshakeRoundTrips(t *testing.T) {
	j := Join{FabricID: "fab-1", MeshNetwork: "unix", MeshAddr: "/tmp/x.sock"}
	gotJ, err := ParseJoin(AppendJoin(nil, j))
	if err != nil {
		t.Fatal(err)
	}
	if gotJ != j {
		t.Fatalf("join: got %+v, want %+v", gotJ, j)
	}

	w := Welcome{Rank: 2, Procs: 4, MeshNetwork: "tcp",
		MeshAddrs: []string{"a:1", "b:2", "", "d:4"}}
	gotW, err := ParseWelcome(AppendWelcome(nil, w))
	if err != nil {
		t.Fatal(err)
	}
	if gotW.Rank != w.Rank || gotW.Procs != w.Procs || gotW.MeshNetwork != w.MeshNetwork {
		t.Fatalf("welcome: got %+v, want %+v", gotW, w)
	}
	for i := range w.MeshAddrs {
		if gotW.MeshAddrs[i] != w.MeshAddrs[i] {
			t.Fatalf("welcome addr %d: got %q, want %q", i, gotW.MeshAddrs[i], w.MeshAddrs[i])
		}
	}

	h := MeshHello{FabricID: "fab-1", Src: 3, Dst: 1}
	gotH, err := ParseMeshHello(AppendMeshHello(nil, h))
	if err != nil {
		t.Fatal(err)
	}
	if gotH != h {
		t.Fatalf("mesh hello: got %+v, want %+v", gotH, h)
	}
}

func TestHandshakeRejects(t *testing.T) {
	// Rank out of range.
	b := AppendWelcome(nil, Welcome{Rank: 4, Procs: 4, MeshNetwork: "unix", MeshAddrs: make([]string, 4)})
	if _, err := ParseWelcome(b); err == nil {
		t.Error("ParseWelcome accepted rank >= p")
	}
	// Absurd p.
	b = appendU32(appendU32(nil, 0), maxProcs+1)
	if _, err := ParseWelcome(b); err == nil {
		t.Error("ParseWelcome accepted absurd p")
	}
	// Truncations of every message type.
	full := AppendJoin(nil, Join{FabricID: "f", MeshNetwork: "unix", MeshAddr: "a"})
	for cut := 0; cut < len(full); cut++ {
		if _, err := ParseJoin(full[:cut]); err == nil {
			t.Fatalf("ParseJoin accepted a %d-byte truncation", cut)
		}
	}
	fullH := AppendMeshHello(nil, MeshHello{FabricID: "f", Src: 1, Dst: 0})
	for cut := 0; cut < len(fullH); cut++ {
		if _, err := ParseMeshHello(fullH[:cut]); err == nil {
			t.Fatalf("ParseMeshHello accepted a %d-byte truncation", cut)
		}
	}
}

// TestLinkFrameAccounting pins the three accounting planes over a real
// socket pair: data bytes at exactly the wire-cost formulas, control
// bytes for control payloads, headers and segment boundaries as
// overhead — and reads counting nothing.
func TestLinkFrameAccounting(t *testing.T) {
	c1, c2 := net.Pipe()
	var wst, rst Stats
	w := NewLink(c1, -1, &wst) // net.Pipe has no deadline support in use here
	r := NewLink(c2, -1, &rst)
	defer w.Close()
	defer r.Close()

	errc := make(chan error, 1)
	go func() {
		if err := w.WriteVec(0, 1, []float64{1, 2, 3}); err != nil {
			errc <- err
			return
		}
		l := edge.NewList(2)
		l.Append(7, 8)
		l.Append(9, 10)
		if err := w.WriteSegments(0, 1, []*edge.List{l}); err != nil {
			errc <- err
			return
		}
		errc <- w.WriteControl(FrameString, 0, 1, []byte("boom"))
	}()

	h, payload, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != FrameVec || h.Len != 24 {
		t.Fatalf("frame 1: %+v", h)
	}
	got := make([]float64, 3)
	if err := DecodeVec(payload, got); err != nil {
		t.Fatal(err)
	}
	if h, _, err = r.ReadFrame(); err != nil || h.Type != FrameSegments {
		t.Fatalf("frame 2: %+v, %v", h, err)
	}
	if h, payload, err = r.ReadFrame(); err != nil || h.Type != FrameString || string(payload) != "boom" {
		t.Fatalf("frame 3: %+v, %v", h, err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	c := wst.Snapshot()
	wantData := uint64(8*3 + 16*2)
	wantControl := uint64(len("boom"))
	wantOverhead := uint64(3*HeaderSize) + SegmentsOverhead(1)
	if c.DataBytes != wantData || c.ControlBytes != wantControl || c.OverheadBytes != wantOverhead || c.Frames != 3 {
		t.Fatalf("writer counters %+v, want data %d control %d overhead %d frames 3",
			c, wantData, wantControl, wantOverhead)
	}
	if rc := rst.Snapshot(); rc != (Counters{}) {
		t.Fatalf("reader counted %+v, want nothing (write-side accounting only)", rc)
	}
}

// TestLinkRejectsCorruptStream pins that a reader fed garbage fails
// instead of allocating or hanging.
func TestLinkRejectsCorruptStream(t *testing.T) {
	c1, c2 := net.Pipe()
	var st Stats
	r := NewLink(c2, -1, &st)
	defer r.Close()
	go func() {
		defer c1.Close()
		junk := bytes.Repeat([]byte{0xAB}, HeaderSize)
		c1.Write(junk)
	}()
	if _, _, err := r.ReadFrame(); err == nil {
		t.Fatal("ReadFrame accepted a garbage header")
	}
}
