package fabric

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/edge"
)

// FuzzEnvelopeDecode drives the whole frame decode path — header parse
// plus the per-type payload decoder — with arbitrary bytes, the way a
// fabric reader consumes a socket stream.  The decoders must never
// panic, never allocate proportionally to a fabricated length or count
// field, and must round-trip anything they accept bit-for-bit.
func FuzzEnvelopeDecode(f *testing.F) {
	frame := func(t FrameType, payload []byte) []byte {
		b := make([]byte, HeaderSize)
		PutHeader(b, Header{Type: t, Src: 0, Dst: 1, Len: uint64(len(payload))})
		return append(b, payload...)
	}
	l := edge.NewList(2)
	l.Append(3, 4)
	l.Append(5, 6)
	f.Add(frame(FrameVec, AppendVec(nil, []float64{1, -2.5, math.Inf(-1)})))
	f.Add(frame(FrameKeys, AppendKeys(nil, []uint64{7, 1 << 62})))
	f.Add(frame(FrameEdges, AppendEdges(nil, l)))
	f.Add(frame(FrameSegments, AppendSegments(nil, []*edge.List{l, edge.NewList(0)})))
	f.Add(frame(FrameString, []byte("peer rank failed")))
	f.Add(frame(FrameJoin, AppendJoin(nil, Join{FabricID: "f", MeshNetwork: "unix", MeshAddr: "/x"})))
	f.Add(frame(FrameWelcome, AppendWelcome(nil, Welcome{Rank: 0, Procs: 2, MeshNetwork: "unix", MeshAddrs: []string{"", "/y"}})))
	f.Add(frame(FrameMeshHello, AppendMeshHello(nil, MeshHello{FabricID: "f", Src: 1, Dst: 0})))
	// Wrong magic, truncated header, empty input.
	f.Add([]byte("XXFB"))
	f.Add([]byte("PRFB"))
	f.Add([]byte{})
	// Oversized length prefix with no payload behind it.
	huge := make([]byte, HeaderSize)
	PutHeader(huge, Header{Type: FrameVec, Len: 1 << 40})
	f.Add(huge)
	// Fabricated segment count.
	f.Add(frame(FrameSegments, binary.LittleEndian.AppendUint32(nil, 1<<31)))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseHeader(data, 1<<20)
		if err != nil {
			return
		}
		if uint64(len(data))-HeaderSize < h.Len {
			return // truncated payload: the stream reader would block, not decode
		}
		payload := data[HeaderSize : HeaderSize+int(h.Len)]
		switch h.Type {
		case FrameVec:
			if h.Len%8 != 0 {
				if err := DecodeVec(payload, make([]float64, h.Len/8)); err == nil {
					t.Fatal("DecodeVec accepted a ragged payload")
				}
				return
			}
			v := make([]float64, h.Len/8)
			if err := DecodeVec(payload, v); err != nil {
				t.Fatalf("DecodeVec rejected an aligned payload: %v", err)
			}
			back := AppendVec(nil, v)
			if string(back) != string(payload) {
				t.Fatal("vec round trip drifted")
			}
		case FrameKeys:
			if h.Len%8 != 0 {
				return
			}
			k := make([]uint64, h.Len/8)
			if err := DecodeKeys(payload, k); err != nil {
				t.Fatalf("DecodeKeys rejected an aligned payload: %v", err)
			}
			if string(AppendKeys(nil, k)) != string(payload) {
				t.Fatal("keys round trip drifted")
			}
		case FrameEdges:
			el := edge.NewList(0)
			if err := DecodeEdges(payload, el); err != nil {
				if h.Len%16 == 0 {
					t.Fatalf("DecodeEdges rejected an aligned payload: %v", err)
				}
				return
			}
			if string(AppendEdges(nil, el)) != string(payload) {
				t.Fatal("edges round trip drifted")
			}
		case FrameSegments:
			segs, err := DecodeSegments(payload)
			if err != nil {
				return
			}
			if string(AppendSegments(nil, segs)) != string(payload) {
				t.Fatal("segments round trip drifted")
			}
		case FrameJoin:
			j, err := ParseJoin(payload)
			if err != nil {
				return
			}
			if string(AppendJoin(nil, j)) != string(payload) {
				t.Fatal("join round trip drifted")
			}
		case FrameWelcome:
			w, err := ParseWelcome(payload)
			if err != nil {
				return
			}
			if string(AppendWelcome(nil, w)) != string(payload) {
				t.Fatal("welcome round trip drifted")
			}
		case FrameMeshHello:
			mh, err := ParseMeshHello(payload)
			if err != nil {
				return
			}
			if string(AppendMeshHello(nil, mh)) != string(payload) {
				t.Fatal("mesh hello round trip drifted")
			}
		}
	})
}
