package fabric

// Link frames the wire format of wire.go over one net.Conn.  It is the
// ONLY place in the repository that reads or writes a net.Conn — the
// prlint meteredcomm analyzer enforces the confinement — so the byte
// accounting below is complete by construction: every byte that crosses
// a fabric socket is counted exactly once, on the writing side, into
// one of the three Stats planes.

import (
	"bufio"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/edge"
)

// DefaultIOTimeout is the per-frame read/write deadline applied when the
// caller does not choose one: generous against scheduler stalls on a
// loaded CI host, small against a genuinely wedged peer.
const DefaultIOTimeout = 5 * time.Minute

// Counters is a point-in-time snapshot of a Stats set.
type Counters struct {
	// DataBytes are payload bytes of the metered data plane — vector,
	// key and edge payloads, at exactly the wire-cost formulas CommStats
	// meters (8 B/float64, 8 B/key, 16 B/edge).
	DataBytes uint64
	// ControlBytes are payload bytes of the unmetered control plane:
	// error-agreement strings, handshake, job and checkpoint relay.
	ControlBytes uint64
	// OverheadBytes are the framing: headers plus segment boundaries.
	OverheadBytes uint64
	// Frames counts frames written.
	Frames uint64
}

// Add folds o into c.
func (c *Counters) Add(o Counters) {
	c.DataBytes += o.DataBytes
	c.ControlBytes += o.ControlBytes
	c.OverheadBytes += o.OverheadBytes
	c.Frames += o.Frames
}

// Stats is a shared, concurrency-safe byte-accounting sink.  Every Link
// of one logical plane (a worker's mesh links, say) points at one Stats,
// so the plane's totals accumulate across links.  Writes count at the
// sender only; reading a frame counts nothing, which is what keeps a
// conn's bytes from being double-counted by its two ends.
type Stats struct {
	data     atomic.Uint64
	control  atomic.Uint64
	overhead atomic.Uint64
	frames   atomic.Uint64
}

// Snapshot returns the current totals.
func (s *Stats) Snapshot() Counters {
	return Counters{
		DataBytes:     s.data.Load(),
		ControlBytes:  s.control.Load(),
		OverheadBytes: s.overhead.Load(),
		Frames:        s.frames.Load(),
	}
}

// Link is one framed, metered, deadline-guarded fabric connection.
//
// Concurrency contract: any number of goroutines may write (a mutex
// serializes frames), but at most one goroutine reads — each fabric
// connection has a single dedicated reader, and ReadFrame's returned
// payload is only valid until its next call.
type Link struct {
	conn    net.Conn
	br      *bufio.Reader
	timeout time.Duration
	maxLen  int64
	st      *Stats

	wmu  sync.Mutex
	bw   *bufio.Writer
	wbuf []byte // frame scratch (header + payload), under wmu

	rhdr [HeaderSize]byte
	rbuf []byte // payload scratch, single-reader

	closeOnce sync.Once
	closeErr  error
}

// NewLink wraps an established connection.  timeout is the per-frame
// read/write deadline: 0 selects DefaultIOTimeout, negative disables
// deadlines.  st receives the write-side byte accounting (required).
func NewLink(conn net.Conn, timeout time.Duration, st *Stats) *Link {
	if timeout == 0 {
		timeout = DefaultIOTimeout
	}
	return &Link{
		conn:    conn,
		br:      bufio.NewReader(conn),
		bw:      bufio.NewWriter(conn),
		timeout: timeout,
		maxLen:  DefaultMaxFrameBytes,
		st:      st,
	}
}

// Dial connects to a fabric listener and wraps the connection.
func Dial(network, addr string, timeout time.Duration, st *Stats) (*Link, error) {
	d := net.Dialer{}
	if timeout > 0 {
		d.Timeout = timeout
	}
	conn, err := d.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return NewLink(conn, timeout, st), nil
}

// Listen opens a fabric listener ("unix" or "tcp").
func Listen(network, addr string) (net.Listener, error) {
	return net.Listen(network, addr)
}

// Close tears the connection down; idempotent and safe concurrently with
// blocked reads and writes, which it unblocks with an error.
func (l *Link) Close() error {
	l.closeOnce.Do(func() { l.closeErr = l.conn.Close() })
	return l.closeErr
}

// writeFrame frames and flushes one payload already encoded in l.wbuf
// after the header gap, under wmu.  data and control partition the
// payload's accounting; the remainder of the frame is overhead.
func (l *Link) writeFrame(h Header, data, control uint64) error {
	PutHeader(l.wbuf[:HeaderSize], h)
	if l.timeout > 0 {
		if err := l.conn.SetWriteDeadline(time.Now().Add(l.timeout)); err != nil {
			return err
		}
	}
	if _, err := l.bw.Write(l.wbuf); err != nil {
		return err
	}
	if err := l.bw.Flush(); err != nil {
		return err
	}
	l.st.data.Add(data)
	l.st.control.Add(control)
	l.st.overhead.Add(uint64(len(l.wbuf)) - data - control)
	l.st.frames.Add(1)
	return nil
}

// begin resets the frame scratch to an empty payload after the header gap.
func (l *Link) begin() { l.wbuf = append(l.wbuf[:0], make([]byte, HeaderSize)...) }

// WriteVec sends a FrameVec: data plane, 8 bytes per element.
func (l *Link) WriteVec(src, dst int, v []float64) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	l.begin()
	l.wbuf = AppendVec(l.wbuf, v)
	n := uint64(len(l.wbuf) - HeaderSize)
	return l.writeFrame(Header{Type: FrameVec, Src: src, Dst: dst, Len: n}, n, 0)
}

// WriteKeys sends a FrameKeys: data plane, 8 bytes per element.
func (l *Link) WriteKeys(src, dst int, k []uint64) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	l.begin()
	l.wbuf = AppendKeys(l.wbuf, k)
	n := uint64(len(l.wbuf) - HeaderSize)
	return l.writeFrame(Header{Type: FrameKeys, Src: src, Dst: dst, Len: n}, n, 0)
}

// WriteEdges sends a FrameEdges: data plane, 16 bytes per edge.
func (l *Link) WriteEdges(src, dst int, el *edge.List) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	l.begin()
	l.wbuf = AppendEdges(l.wbuf, el)
	n := uint64(len(l.wbuf) - HeaderSize)
	return l.writeFrame(Header{Type: FrameEdges, Src: src, Dst: dst, Len: n}, n, 0)
}

// WriteSegments sends a FrameSegments: the edges are data plane (16 bytes
// each), the segment boundaries overhead — mirroring the metered
// exchange, which charges nothing for segment framing.
func (l *Link) WriteSegments(src, dst int, segs []*edge.List) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	l.begin()
	l.wbuf = AppendSegments(l.wbuf, segs)
	n := uint64(len(l.wbuf) - HeaderSize)
	return l.writeFrame(Header{Type: FrameSegments, Src: src, Dst: dst, Len: n},
		n-SegmentsOverhead(len(segs)), 0)
}

// WriteControl sends a control-plane frame of type t with an opaque
// payload: every payload byte counts as control traffic.
func (l *Link) WriteControl(t FrameType, src, dst int, payload []byte) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	l.begin()
	l.wbuf = append(l.wbuf, payload...)
	n := uint64(len(payload))
	return l.writeFrame(Header{Type: t, Src: src, Dst: dst, Len: n}, 0, n)
}

// ReadFrame reads, validates and returns the next frame.  The payload
// slice is the Link's scratch buffer: it is valid only until the next
// ReadFrame, and the caller must decode or copy before then.
func (l *Link) ReadFrame() (Header, []byte, error) {
	if l.timeout > 0 {
		if err := l.conn.SetReadDeadline(time.Now().Add(l.timeout)); err != nil {
			return Header{}, nil, err
		}
	}
	if _, err := io.ReadFull(l.br, l.rhdr[:]); err != nil {
		return Header{}, nil, err
	}
	h, err := ParseHeader(l.rhdr[:], l.maxLen)
	if err != nil {
		return Header{}, nil, err
	}
	if uint64(cap(l.rbuf)) < h.Len {
		l.rbuf = make([]byte, h.Len)
	}
	l.rbuf = l.rbuf[:h.Len]
	if _, err := io.ReadFull(l.br, l.rbuf); err != nil {
		return Header{}, nil, err
	}
	return h, l.rbuf, nil
}
