// Package fabric is the socket transport of the distributed runtime's
// third execution mode (dist.ExecSocket): a versioned little-endian wire
// format for the pooled rank-fabric messages, and a metered Link that
// frames them over a net.Conn with per-frame deadlines.  DESIGN.md §13
// is the normative statement of the format and the handshake.
//
// The wire format exists to make the paper's communication model
// falsifiable against bytes on a real wire: every data-plane payload
// encodes at exactly the wire-cost formulas the simulation meters
// (8 B/float64, 8 B/key, 16 B/edge), so a Link's write-side DataBytes
// equal the sender's CommStats contribution identically.  Frame headers
// and segment boundaries are accounted separately (OverheadBytes), and
// handshake/job/error traffic separately again (ControlBytes) — the
// model prices the data plane, and the split keeps the comparison exact
// rather than approximate.
//
// Frame layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "PRFB"
//	4       2     wire version (Version)
//	6       2     frame type (FrameType)
//	8       4     source rank
//	12      4     destination rank
//	16      8     payload length in bytes
//	24      —     payload
//
// Decoding is bounds-checked end to end: a hostile or truncated stream
// is rejected with an error before any length-proportional allocation
// (FuzzEnvelopeDecode drives this with arbitrary bytes).
package fabric

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/edge"
)

// Magic opens every frame; a stream that does not start with it is not a
// fabric peer (most likely a stray connection or a corrupted stream).
const Magic = "PRFB"

// Version is the wire-format version this package speaks.  Peers
// exchange it in every frame header; a mismatch anywhere tears the
// connection down (there is no downgrade path — both ends of a fabric
// ship in the same binary in every supported deployment).
const Version = 1

// HeaderSize is the fixed frame-header length in bytes.
const HeaderSize = 24

// DefaultMaxFrameBytes bounds a frame's payload length unless the link
// configures its own limit: 1 GiB, far above any payload the rank
// schedule ships at supported scales, far below a length that could be
// used to allocate a host to death.
const DefaultMaxFrameBytes = 1 << 30

// FrameType identifies a frame's payload encoding and plane.
type FrameType uint16

const (
	// Data plane — the payloads CommStats meters.

	// FrameVec is a []float64 payload (rank-vector replicas, in-degree
	// partials, scalar reductions): 8 bytes per element.
	FrameVec FrameType = 1
	// FrameKeys is a []uint64 payload (sort samples and splitters):
	// 8 bytes per element.
	FrameKeys FrameType = 2
	// FrameEdges is an edge-list payload, interleaved (u, v) pairs:
	// 16 bytes per edge.
	FrameEdges FrameType = 3
	// FrameSegments is a segmented edge-list payload (the out-of-core
	// sort's run segments): a u32 segment count, then per segment a u32
	// edge count followed by its interleaved edges.  Edge bytes are
	// data; the segment framing is overhead, exactly as the metered
	// exchange charges no bytes for segment boundaries.
	FrameSegments FrameType = 4

	// Control plane — unmetered by CommStats (DESIGN.md §5: the model
	// prices the data plane; error agreement, handshake and job
	// distribution are free in the closed form).

	// FrameString is an agreeError control string between ranks.
	FrameString FrameType = 5
	// FrameJoin is a worker's hello to the coordinator: fabric id plus
	// the worker's mesh listen address.
	FrameJoin FrameType = 6
	// FrameWelcome is the coordinator's reply: assigned rank, p, and
	// every worker's mesh address.
	FrameWelcome FrameType = 7
	// FrameMeshHello opens a worker-to-worker mesh connection: fabric
	// id, dialing rank, accepting rank.
	FrameMeshHello FrameType = 8
	// FrameReady signals the worker's mesh is fully connected.
	FrameReady FrameType = 9
	// FrameJob carries the gob-encoded job spec to a worker.
	FrameJob FrameType = 10
	// FrameOutcome carries a worker's gob-encoded result back.
	FrameOutcome FrameType = 11
	// FrameCkptChunk relays one rank's encoded checkpoint chunk to the
	// coordinator's storage.
	FrameCkptChunk FrameType = 12
	// FrameCkptCommit asks the coordinator to write an epoch commit.
	FrameCkptCommit FrameType = 13
	// FrameCkptAck answers a chunk or commit relay with its error
	// string (empty for success).
	FrameCkptAck FrameType = 14
	// FrameProgress streams rank 0's per-iteration progress count.
	FrameProgress FrameType = 15
	// FrameReject aborts a handshake with a reason string.
	FrameReject FrameType = 16
)

// String implements fmt.Stringer.
func (t FrameType) String() string {
	switch t {
	case FrameVec:
		return "vec"
	case FrameKeys:
		return "keys"
	case FrameEdges:
		return "edges"
	case FrameSegments:
		return "segments"
	case FrameString:
		return "string"
	case FrameJoin:
		return "join"
	case FrameWelcome:
		return "welcome"
	case FrameMeshHello:
		return "mesh-hello"
	case FrameReady:
		return "ready"
	case FrameJob:
		return "job"
	case FrameOutcome:
		return "outcome"
	case FrameCkptChunk:
		return "ckpt-chunk"
	case FrameCkptCommit:
		return "ckpt-commit"
	case FrameCkptAck:
		return "ckpt-ack"
	case FrameProgress:
		return "progress"
	case FrameReject:
		return "reject"
	default:
		return fmt.Sprintf("frame?(%d)", uint16(t))
	}
}

// valid reports whether t is a defined frame type.
func (t FrameType) valid() bool { return t >= FrameVec && t <= FrameReject }

// Header is one decoded frame header.
type Header struct {
	Type FrameType
	// Src and Dst are the frame's rank endpoints.  Control frames
	// between a worker and the coordinator carry the worker's rank in
	// both fields.
	Src, Dst int
	// Len is the payload length in bytes.
	Len uint64
}

// PutHeader encodes h into b, which must be at least HeaderSize long.
func PutHeader(b []byte, h Header) {
	copy(b[0:4], Magic)
	binary.LittleEndian.PutUint16(b[4:6], Version)
	binary.LittleEndian.PutUint16(b[6:8], uint16(h.Type))
	binary.LittleEndian.PutUint32(b[8:12], uint32(h.Src))
	binary.LittleEndian.PutUint32(b[12:16], uint32(h.Dst))
	binary.LittleEndian.PutUint64(b[16:24], h.Len)
}

// ParseHeader decodes and validates a frame header against maxLen (<= 0
// selects DefaultMaxFrameBytes).  It rejects a wrong magic, an
// unsupported version, an unknown frame type and an oversized payload
// length — before the caller allocates anything for the payload.
func ParseHeader(b []byte, maxLen int64) (Header, error) {
	if maxLen <= 0 {
		maxLen = DefaultMaxFrameBytes
	}
	if len(b) < HeaderSize {
		return Header{}, fmt.Errorf("fabric: short frame header: %d bytes, want %d", len(b), HeaderSize)
	}
	if string(b[0:4]) != Magic {
		return Header{}, fmt.Errorf("fabric: bad magic %q, want %q", b[0:4], Magic)
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != Version {
		return Header{}, fmt.Errorf("fabric: wire version %d, this build speaks %d", v, Version)
	}
	h := Header{
		Type: FrameType(binary.LittleEndian.Uint16(b[6:8])),
		Src:  int(binary.LittleEndian.Uint32(b[8:12])),
		Dst:  int(binary.LittleEndian.Uint32(b[12:16])),
		Len:  binary.LittleEndian.Uint64(b[16:24]),
	}
	if !h.Type.valid() {
		return Header{}, fmt.Errorf("fabric: unknown frame type %d", uint16(h.Type))
	}
	if h.Len > uint64(maxLen) {
		return Header{}, fmt.Errorf("fabric: frame payload %d bytes exceeds limit %d", h.Len, maxLen)
	}
	return h, nil
}

// AppendVec appends the FrameVec encoding of v: 8 bytes per element.
func AppendVec(b []byte, v []float64) []byte {
	for _, x := range v {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(x))
	}
	return b
}

// DecodeVec decodes a FrameVec payload into dst, which must have length
// len(payload)/8 (the caller sizes it from the header).
func DecodeVec(payload []byte, dst []float64) error {
	if len(payload)%8 != 0 {
		return fmt.Errorf("fabric: vec payload %d bytes, not a multiple of 8", len(payload))
	}
	if len(dst) != len(payload)/8 {
		return fmt.Errorf("fabric: vec payload holds %d elements, caller sized %d", len(payload)/8, len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return nil
}

// AppendKeys appends the FrameKeys encoding of k: 8 bytes per element.
func AppendKeys(b []byte, k []uint64) []byte {
	for _, x := range k {
		b = binary.LittleEndian.AppendUint64(b, x)
	}
	return b
}

// DecodeKeys decodes a FrameKeys payload into dst, which must have
// length len(payload)/8.
func DecodeKeys(payload []byte, dst []uint64) error {
	if len(payload)%8 != 0 {
		return fmt.Errorf("fabric: keys payload %d bytes, not a multiple of 8", len(payload))
	}
	if len(dst) != len(payload)/8 {
		return fmt.Errorf("fabric: keys payload holds %d elements, caller sized %d", len(payload)/8, len(dst))
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(payload[8*i:])
	}
	return nil
}

// AppendEdges appends the FrameEdges encoding of l: interleaved (u, v)
// pairs, 16 bytes per edge.
func AppendEdges(b []byte, l *edge.List) []byte {
	for i := 0; i < l.Len(); i++ {
		b = binary.LittleEndian.AppendUint64(b, l.U[i])
		b = binary.LittleEndian.AppendUint64(b, l.V[i])
	}
	return b
}

// DecodeEdges decodes a FrameEdges payload, appending to l.
func DecodeEdges(payload []byte, l *edge.List) error {
	if len(payload)%16 != 0 {
		return fmt.Errorf("fabric: edges payload %d bytes, not a multiple of 16", len(payload))
	}
	for off := 0; off < len(payload); off += 16 {
		l.Append(binary.LittleEndian.Uint64(payload[off:]), binary.LittleEndian.Uint64(payload[off+8:]))
	}
	return nil
}

// AppendSegments appends the FrameSegments encoding of segs: a u32
// segment count, then per segment a u32 edge count and its edges.
func AppendSegments(b []byte, segs []*edge.List) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(segs)))
	for _, seg := range segs {
		b = binary.LittleEndian.AppendUint32(b, uint32(seg.Len()))
		b = AppendEdges(b, seg)
	}
	return b
}

// DecodeSegments decodes a FrameSegments payload.  Every count is
// validated against the remaining payload before any allocation sized
// from it, so a fabricated count cannot over-allocate.
func DecodeSegments(payload []byte) ([]*edge.List, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("fabric: segments payload %d bytes, want >= 4", len(payload))
	}
	nseg := binary.LittleEndian.Uint32(payload)
	payload = payload[4:]
	// Each segment costs at least its 4-byte count; reject a count the
	// remaining bytes cannot possibly hold before allocating the slice.
	if uint64(nseg)*4 > uint64(len(payload)) {
		return nil, fmt.Errorf("fabric: segment count %d exceeds payload", nseg)
	}
	segs := make([]*edge.List, 0, nseg)
	for s := uint32(0); s < nseg; s++ {
		if len(payload) < 4 {
			return nil, fmt.Errorf("fabric: segment %d: truncated count", s)
		}
		m := binary.LittleEndian.Uint32(payload)
		payload = payload[4:]
		need := uint64(m) * 16
		if need > uint64(len(payload)) {
			return nil, fmt.Errorf("fabric: segment %d: %d edges exceed payload", s, m)
		}
		seg := edge.NewList(int(m))
		if err := DecodeEdges(payload[:need], seg); err != nil {
			return nil, err
		}
		segs = append(segs, seg)
		payload = payload[need:]
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("fabric: %d trailing bytes after last segment", len(payload))
	}
	return segs, nil
}

// SegmentsOverhead is the non-edge byte count of a FrameSegments payload
// holding nseg segments: the framing the metered exchange does not
// charge (DESIGN.md §5).
func SegmentsOverhead(nseg int) uint64 { return 4 + 4*uint64(nseg) }

// appendU32 and takeU32 are the handshake payloads' integer encoding.
func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func takeU32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("fabric: truncated u32")
	}
	return binary.LittleEndian.Uint32(b), b[4:], nil
}

// appendString appends a u32-length-prefixed string (the handshake
// payloads' string encoding).
func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// takeString consumes one length-prefixed string, bounds-checked.
func takeString(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, fmt.Errorf("fabric: truncated string length")
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if uint64(n) > uint64(len(b)) {
		return "", nil, fmt.Errorf("fabric: string length %d exceeds payload", n)
	}
	return string(b[:n]), b[n:], nil
}
