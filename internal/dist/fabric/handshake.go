package fabric

// Handshake payloads: the fixed-layout little-endian messages that bring
// a worker into a fabric (DESIGN.md §13).  They are deliberately not gob
// — version negotiation must fail cleanly against a peer from a
// different build, so everything up to and including the Welcome is
// decodable with nothing but this file and wire.go.  (Job and outcome
// payloads, exchanged only after both ends have proven the same wire
// version, are gob.)
//
// Sequence, with w = worker, c = coordinator, r = assigned rank:
//
//	w→c  FrameJoin     {fabric id, mesh network, mesh address}
//	c→w  FrameWelcome  {rank, p, all p mesh addresses}   (or FrameReject)
//	w→w  FrameMeshHello {fabric id, src, dst}  — rank r dials every
//	     s < r and sends the hello; r accepts p-1-r conns from s > r
//	     and validates theirs.  One conn per unordered rank pair.
//	w→c  FrameReady    — mesh complete
//	c→w  FrameJob      — gob job spec; the run begins
//
// Every frame carries the wire version in its header, so a version
// mismatch fails at the first frame either side reads.

import "fmt"

// maxProcs bounds the rank count a handshake message may claim, keeping
// a corrupt Welcome from sizing an absurd allocation.
const maxProcs = 1 << 16

// Join is a worker's hello to the coordinator.
type Join struct {
	// FabricID must equal the coordinator's; it keeps a stray worker
	// (or a worker from a concurrent fabric on a recycled address) out.
	FabricID string
	// MeshNetwork and MeshAddr name the worker's own mesh listener,
	// which its higher-ranked peers will dial.
	MeshNetwork string
	MeshAddr    string
}

// AppendJoin appends the FrameJoin payload encoding of j.
func AppendJoin(b []byte, j Join) []byte {
	b = appendString(b, j.FabricID)
	b = appendString(b, j.MeshNetwork)
	return appendString(b, j.MeshAddr)
}

// ParseJoin decodes a FrameJoin payload.
func ParseJoin(payload []byte) (Join, error) {
	var j Join
	var err error
	if j.FabricID, payload, err = takeString(payload); err != nil {
		return Join{}, fmt.Errorf("fabric: join: %w", err)
	}
	if j.MeshNetwork, payload, err = takeString(payload); err != nil {
		return Join{}, fmt.Errorf("fabric: join: %w", err)
	}
	if j.MeshAddr, payload, err = takeString(payload); err != nil {
		return Join{}, fmt.Errorf("fabric: join: %w", err)
	}
	if len(payload) != 0 {
		return Join{}, fmt.Errorf("fabric: join: %d trailing bytes", len(payload))
	}
	return j, nil
}

// Welcome is the coordinator's admission reply: the worker's assigned
// rank, the fabric's rank count, and every worker's mesh address (in
// rank order; a rank's own entry included).
type Welcome struct {
	Rank  int
	Procs int
	// MeshNetwork is the address family every mesh address speaks.
	MeshNetwork string
	MeshAddrs   []string
}

// AppendWelcome appends the FrameWelcome payload encoding of w.
func AppendWelcome(b []byte, w Welcome) []byte {
	b = appendU32(b, uint32(w.Rank))
	b = appendU32(b, uint32(w.Procs))
	b = appendString(b, w.MeshNetwork)
	for _, a := range w.MeshAddrs {
		b = appendString(b, a)
	}
	return b
}

// ParseWelcome decodes and validates a FrameWelcome payload.
func ParseWelcome(payload []byte) (Welcome, error) {
	var w Welcome
	var err error
	var rank, procs uint32
	if rank, payload, err = takeU32(payload); err != nil {
		return Welcome{}, fmt.Errorf("fabric: welcome: %w", err)
	}
	if procs, payload, err = takeU32(payload); err != nil {
		return Welcome{}, fmt.Errorf("fabric: welcome: %w", err)
	}
	if procs < 1 || procs > maxProcs {
		return Welcome{}, fmt.Errorf("fabric: welcome: p = %d out of range [1, %d]", procs, maxProcs)
	}
	if rank >= procs {
		return Welcome{}, fmt.Errorf("fabric: welcome: rank %d of %d", rank, procs)
	}
	w.Rank, w.Procs = int(rank), int(procs)
	if w.MeshNetwork, payload, err = takeString(payload); err != nil {
		return Welcome{}, fmt.Errorf("fabric: welcome: %w", err)
	}
	w.MeshAddrs = make([]string, w.Procs)
	for i := range w.MeshAddrs {
		if w.MeshAddrs[i], payload, err = takeString(payload); err != nil {
			return Welcome{}, fmt.Errorf("fabric: welcome: address %d: %w", i, err)
		}
	}
	if len(payload) != 0 {
		return Welcome{}, fmt.Errorf("fabric: welcome: %d trailing bytes", len(payload))
	}
	return w, nil
}

// MeshHello opens one worker-to-worker mesh connection.
type MeshHello struct {
	FabricID string
	// Src is the dialing (higher) rank, Dst the accepting (lower) one.
	Src, Dst int
}

// AppendMeshHello appends the FrameMeshHello payload encoding of h.
func AppendMeshHello(b []byte, h MeshHello) []byte {
	b = appendString(b, h.FabricID)
	b = appendU32(b, uint32(h.Src))
	return appendU32(b, uint32(h.Dst))
}

// ParseMeshHello decodes a FrameMeshHello payload.
func ParseMeshHello(payload []byte) (MeshHello, error) {
	var h MeshHello
	var err error
	if h.FabricID, payload, err = takeString(payload); err != nil {
		return MeshHello{}, fmt.Errorf("fabric: mesh hello: %w", err)
	}
	var src, dst uint32
	if src, payload, err = takeU32(payload); err != nil {
		return MeshHello{}, fmt.Errorf("fabric: mesh hello: %w", err)
	}
	if dst, payload, err = takeU32(payload); err != nil {
		return MeshHello{}, fmt.Errorf("fabric: mesh hello: %w", err)
	}
	if src > maxProcs || dst > maxProcs {
		return MeshHello{}, fmt.Errorf("fabric: mesh hello: ranks %d→%d out of range", src, dst)
	}
	if len(payload) != 0 {
		return MeshHello{}, fmt.Errorf("fabric: mesh hello: %d trailing bytes", len(payload))
	}
	h.Src, h.Dst = int(src), int(dst)
	return h, nil
}
