package dist_test

// Property tests for the goroutine-rank runtime: for every processor
// count the concurrent execution must equal the simulation bit for bit —
// rank vectors, sorted output, assembled matrix AND communication record —
// and therefore equal the closed-form byte model too.  A determinism test
// pins that repeated concurrent runs are identical despite scheduling
// noise.  Run under -race in CI.

import (
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/edge"
	"repro/internal/pagerank"
)

func TestGoroutineSortEqualsSimBitForBit(t *testing.T) {
	inputs := map[string]*edge.List{}
	inputs["kronecker"], _ = kron(t, 7, 5)

	few := edge.NewList(64)
	for i := 0; i < 64; i++ {
		few.Append(uint64(i%2), uint64(i))
	}
	inputs["two-distinct-u"] = few
	inputs["empty"] = edge.NewList(0)

	for name, l := range inputs {
		for _, p := range procCounts {
			sim, err := dist.SortMode(dist.ExecSim, l, p)
			if err != nil {
				t.Fatalf("%s p=%d sim: %v", name, p, err)
			}
			real, err := dist.SortMode(dist.ExecGoroutine, l, p)
			if err != nil {
				t.Fatalf("%s p=%d goroutine: %v", name, p, err)
			}
			if !real.Sorted.Equal(sim.Sorted) {
				t.Errorf("%s p=%d: goroutine sort differs from simulation", name, p)
			}
			if real.Comm != sim.Comm {
				t.Errorf("%s p=%d: goroutine comm %+v, sim %+v", name, p, real.Comm, sim.Comm)
			}
		}
	}
}

func TestGoroutineRunEqualsSimBitForBit(t *testing.T) {
	l, n := kron(t, 8, 9)
	for _, p := range procCounts {
		for _, dangling := range []bool{false, true} {
			opt := pagerank.Options{Seed: 4, Iterations: 7, Dangling: dangling}
			sim, err := dist.RunMode(dist.ExecSim, l, n, p, opt)
			if err != nil {
				t.Fatalf("p=%d sim: %v", p, err)
			}
			real, err := dist.RunMode(dist.ExecGoroutine, l, n, p, opt)
			if err != nil {
				t.Fatalf("p=%d goroutine: %v", p, err)
			}
			if real.NNZ != sim.NNZ || real.Iterations != sim.Iterations {
				t.Errorf("p=%d dangling=%v: NNZ/iters %d/%d, sim %d/%d",
					p, dangling, real.NNZ, real.Iterations, sim.NNZ, sim.Iterations)
			}
			for i := range sim.Rank {
				if real.Rank[i] != sim.Rank[i] {
					t.Fatalf("p=%d dangling=%v: rank[%d] = %v, sim %v — not bit-for-bit",
						p, dangling, i, real.Rank[i], sim.Rank[i])
				}
			}
			if real.Comm != sim.Comm {
				t.Errorf("p=%d dangling=%v: comm %+v, sim %+v", p, dangling, real.Comm, sim.Comm)
			}
			if len(real.RankSeconds) != p {
				t.Errorf("p=%d: RankSeconds has %d entries", p, len(real.RankSeconds))
			}
			if sim.RankSeconds != nil {
				t.Error("simulation must not report per-rank wall clock")
			}
		}
	}
}

func TestGoroutineCommEqualsPredictionExactly(t *testing.T) {
	l, n := kron(t, 7, 3)
	for _, p := range procCounts {
		for _, dangling := range []bool{false, true} {
			opt := pagerank.Options{Seed: 1, Iterations: 5, Dangling: dangling}
			res, err := dist.RunMode(dist.ExecGoroutine, l, n, p, opt)
			if err != nil {
				t.Fatalf("p=%d: %v", p, err)
			}
			measured := res.Comm.AllReduceBytes + res.Comm.BroadcastBytes
			predicted := dist.PredictedCommBytes(n, p, res.Iterations, dangling)
			if measured != predicted {
				t.Errorf("p=%d dangling=%v: measured %d channel bytes, predicted %d",
					p, dangling, measured, predicted)
			}
		}
	}
}

func TestGoroutineRunDeterminism(t *testing.T) {
	// Repeated concurrent runs must produce identical rank vectors and
	// byte counts: the collectives pin the reduction order, so scheduling
	// noise must not be observable.
	l, n := kron(t, 7, 11)
	const p = 5
	opt := pagerank.Options{Seed: 3, Iterations: 6, Dangling: true}
	first, err := dist.RunMode(dist.ExecGoroutine, l, n, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 4; run++ {
		res, err := dist.RunMode(dist.ExecGoroutine, l, n, p, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Comm != first.Comm {
			t.Fatalf("run %d: comm %+v, first %+v", run, res.Comm, first.Comm)
		}
		for i := range first.Rank {
			if res.Rank[i] != first.Rank[i] {
				t.Fatalf("run %d: rank[%d] differs between repeats", run, i)
			}
		}
	}
}

func TestGoroutineBuildFilteredEqualsSim(t *testing.T) {
	l, n := kron(t, 7, 2)
	for _, p := range procCounts {
		sim, err := dist.BuildFilteredMode(dist.ExecSim, l, n, p)
		if err != nil {
			t.Fatalf("p=%d sim: %v", p, err)
		}
		real, err := dist.BuildFilteredMode(dist.ExecGoroutine, l, n, p)
		if err != nil {
			t.Fatalf("p=%d goroutine: %v", p, err)
		}
		if real.Mass != sim.Mass || real.NNZ != sim.NNZ {
			t.Errorf("p=%d: mass/NNZ %v/%d, sim %v/%d", p, real.Mass, real.NNZ, sim.Mass, sim.NNZ)
		}
		if real.Comm != sim.Comm {
			t.Errorf("p=%d: comm %+v, sim %+v", p, real.Comm, sim.Comm)
		}
		if err := real.Matrix.Validate(); err != nil {
			t.Fatalf("p=%d: assembled matrix invalid: %v", p, err)
		}
		for k := range sim.Matrix.Val {
			if real.Matrix.Col[k] != sim.Matrix.Col[k] || real.Matrix.Val[k] != sim.Matrix.Val[k] {
				t.Fatalf("p=%d: assembled matrix entry %d differs", p, k)
			}
		}
	}
}

func TestGoroutineRunMatrixEqualsSim(t *testing.T) {
	l, n := kron(t, 7, 6)
	b, err := dist.BuildFiltered(l, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := pagerank.Options{Seed: 2, Dangling: true, Iterations: 5}
	for _, p := range procCounts {
		sim, err := dist.RunMatrixMode(dist.ExecSim, b.Matrix, p, opt)
		if err != nil {
			t.Fatalf("p=%d sim: %v", p, err)
		}
		real, err := dist.RunMatrixMode(dist.ExecGoroutine, b.Matrix, p, opt)
		if err != nil {
			t.Fatalf("p=%d goroutine: %v", p, err)
		}
		for i := range sim.Rank {
			if real.Rank[i] != sim.Rank[i] {
				t.Fatalf("p=%d: rank[%d] not bit-for-bit", p, i)
			}
		}
		if real.Comm != sim.Comm {
			t.Errorf("p=%d: comm %+v, sim %+v", p, real.Comm, sim.Comm)
		}
		if real.NNZ != b.Matrix.NNZ() {
			t.Errorf("p=%d: NNZ %d, want %d", p, real.NNZ, b.Matrix.NNZ())
		}
	}
}

func TestGoroutineRejectsBadInput(t *testing.T) {
	l, n := kron(t, 5, 1)
	if _, err := dist.RunMode(dist.ExecGoroutine, l, n, 0, pagerank.Options{}); err == nil {
		t.Error("p = 0 accepted")
	}
	if _, err := dist.RunMode(dist.ExecGoroutine, nil, n, 2, pagerank.Options{}); err == nil {
		t.Error("nil list accepted")
	}
	if _, err := dist.RunMode(dist.ExecGoroutine, l, 2, 2, pagerank.Options{}); err == nil {
		t.Error("out-of-range vertices accepted")
	}
	// Invalid options must fail on every rank consistently (no deadlock).
	if _, err := dist.RunMode(dist.ExecGoroutine, l, n, 3, pagerank.Options{Damping: 2}); err == nil {
		t.Error("invalid damping accepted")
	}
	if _, err := dist.RunMode(dist.ExecGoroutine, l, n, 3, pagerank.Options{Teleport: []float64{1}}); err == nil {
		t.Error("short teleport vector accepted")
	}
	if _, err := dist.SortMode(dist.ExecGoroutine, nil, 2); err == nil {
		t.Error("sort of nil list accepted")
	}
	if _, err := dist.RunMatrixMode(dist.ExecGoroutine, nil, 2, pagerank.Options{}); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := dist.RunMode(dist.ExecMode(99), l, n, 2, pagerank.Options{}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestGoroutineCheckpointRestartPath(t *testing.T) {
	// InitialRank is the checkpoint-restart seed; the broadcast must ship
	// it from rank 0 and the result must match the simulation bit for bit.
	l, n := kron(t, 6, 4)
	init := pagerank.InitVector(n, 77)
	opt := pagerank.Options{Seed: 1, Iterations: 3, InitialRank: init}
	sim, err := dist.RunMode(dist.ExecSim, l, n, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	real, err := dist.RunMode(dist.ExecGoroutine, l, n, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sim.Rank {
		if real.Rank[i] != sim.Rank[i] {
			t.Fatalf("rank[%d] not bit-for-bit on restart path", i)
		}
	}
}

func TestParseExecMode(t *testing.T) {
	for s, want := range map[string]dist.ExecMode{
		"": dist.ExecSim, "sim": dist.ExecSim,
		"goroutine": dist.ExecGoroutine, "go": dist.ExecGoroutine,
		"socket": dist.ExecSocket, "sock": dist.ExecSocket,
	} {
		got, err := dist.ParseExecMode(s)
		if err != nil || got != want {
			t.Errorf("ParseExecMode(%q) = %v, %v", s, got, err)
		}
	}
	if dist.ExecSim.String() != "sim" || dist.ExecGoroutine.String() != "goroutine" || dist.ExecSocket.String() != "socket" {
		t.Error("mode strings changed")
	}
}

func TestUnknownExecModeErrors(t *testing.T) {
	// An unknown mode — misspelled on the command line or an out-of-range
	// enum value reaching Execute — must fail with an error that names the
	// offending value and lists every valid mode, so the user can fix the
	// spelling without reading source.
	l, n := kron(t, 5, 1)
	cases := []struct {
		name string
		run  func() error
		want []string // substrings the error must contain
	}{
		{
			name: "parse misspelled string",
			run: func() error {
				_, err := dist.ParseExecMode("mpi")
				return err
			},
			want: []string{`"mpi"`, "sim, goroutine, socket"},
		},
		{
			name: "parse socket typo",
			run: func() error {
				_, err := dist.ParseExecMode("sockets")
				return err
			},
			want: []string{`"sockets"`, "sim, goroutine, socket"},
		},
		{
			name: "run with out-of-range enum",
			run: func() error {
				_, err := dist.RunMode(dist.ExecMode(42), l, n, 2, pagerank.Options{})
				return err
			},
			want: []string{"42", "sim, goroutine, socket"},
		},
		{
			name: "sort with out-of-range enum",
			run: func() error {
				_, err := dist.SortMode(dist.ExecMode(7), l, 2)
				return err
			},
			want: []string{"7", "sim, goroutine, socket"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("unknown execution mode accepted")
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q does not mention %q", err, w)
				}
			}
		})
	}
}
