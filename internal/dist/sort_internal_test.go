package dist

import "testing"

// TestChooseSplittersDegenerate pins the splitter selection: quantiles
// stay frequency-weighted (skewed samples concentrate splitters in their
// hot ranges), but a quantile pick repeating an already-chosen splitter is
// skipped — repeated splitters would funnel nearly all edges into one
// bucket on tiny or duplicate-heavy samples.
func TestChooseSplittersDegenerate(t *testing.T) {
	cases := map[string]struct {
		samples []uint64
		p       int
		want    []uint64
	}{
		"duplicate-heavy": {
			// 16 samples, 4 distinct keys, p = 4: sorted quantile picks
			// land at indices 4, 8, 12 → 3, 7, 7; the repeated 7 is
			// skipped instead of emitted.
			samples: []uint64{7, 7, 7, 7, 7, 7, 1, 1, 1, 1, 3, 3, 3, 9, 9, 9},
			p:       4,
			want:    []uint64{3, 7},
		},
		"skewed-hot-range": {
			// 90% of the sample mass sits on keys 100 and 101: the
			// frequency-weighted quantiles split the hot range instead of
			// spreading evenly over [1, 101].
			samples: []uint64{1, 2, 100, 100, 100, 100, 100, 100, 100, 100, 100, 101, 101, 101, 101, 101},
			p:       4,
			want:    []uint64{100, 101},
		},
		"fewer-distinct-than-p": {
			// Sorted sample [2 2 5 5 5], p = 8: picks at indices 0,1,1,2,
			// 3,3,4 collapse to the two distinct keys.
			samples: []uint64{5, 2, 5, 2, 5},
			p:       8,
			want:    []uint64{2, 5},
		},
		"single-key": {
			samples: []uint64{4, 4, 4, 4},
			p:       5,
			want:    []uint64{4},
		},
		"empty": {
			samples: nil,
			p:       3,
			want:    []uint64{},
		},
		"plenty-distinct": {
			samples: []uint64{9, 0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 11},
			p:       4,
			want:    []uint64{3, 6, 9},
		},
	}
	for name, tc := range cases {
		got := chooseSplitters(append([]uint64(nil), tc.samples...), tc.p)
		if len(got) != len(tc.want) {
			t.Errorf("%s: splitters %v, want %v", name, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: splitters %v, want %v", name, got, tc.want)
				break
			}
		}
		// Never more than p-1, always strictly increasing (distinct).
		if len(got) > tc.p-1 {
			t.Errorf("%s: %d splitters for p = %d", name, len(got), tc.p)
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Errorf("%s: splitters not strictly increasing: %v", name, got)
			}
		}
	}
}
