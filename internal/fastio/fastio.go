// Package fastio implements the edge-file formats of the PageRank pipeline
// benchmark and fast primitives for reading and writing them.
//
// The paper specifies that kernels 0 and 1 exchange edges through files of
// tab-separated numeric strings, one "u\tv\n" record per edge, striped over
// an implementer-chosen number of files on non-volatile storage.  This
// package provides:
//
//   - allocation-free decimal integer formatting and parsing;
//   - four interchangeable codecs: TSV (the paper's format, hand-optimized),
//     NaiveTSV (the same format via strconv/bufio, standing in for the
//     paper's interpreted-language implementations), Binary (16-byte
//     little-endian records, used by the text-vs-binary ablation), and
//     Packed (block-structured varint + delta encoding that exploits the
//     sortedness kernel 1 produces);
//   - batched WriteEdges/ReadEdges paths that move edges in bulk through
//     codecs that support it (BulkEdgeSink/BulkEdgeSource) and fall back
//     to the per-edge interface otherwise;
//   - codec resolution by name (CodecByName) and by on-disk content
//     (Detect, DetectStriped);
//   - striped writing and reading of edge lists across N files of a
//     vfs.FS, plus a streaming reader for out-of-core kernels.
package fastio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/edge"
	"repro/internal/vfs"
)

// DefaultBufSize is the buffer size used by codec readers and writers.
// 256 KiB amortizes syscall and copy overhead at the record sizes involved
// (≈ 15 bytes per edge at benchmark scales).
const DefaultBufSize = 256 << 10

// AppendUint appends the decimal representation of v to dst and returns the
// extended slice.  It is equivalent to strconv.AppendUint(dst, v, 10) but
// specialized and inlined for the hot path of kernel 0.
func AppendUint(dst []byte, v uint64) []byte {
	if v < 10 {
		return append(dst, byte('0'+v))
	}
	var tmp [20]byte
	i := len(tmp)
	for v >= 10 {
		q := v / 10
		i--
		tmp[i] = byte('0' + v - q*10)
		v = q
	}
	i--
	tmp[i] = byte('0' + v)
	return append(dst, tmp[i:]...)
}

// ErrSyntax is returned by ParseUint for malformed input.
var ErrSyntax = errors.New("fastio: invalid unsigned integer")

// ErrRange is returned by ParseUint when the value overflows uint64.
var ErrRange = errors.New("fastio: unsigned integer out of range")

// ParseUint parses b as an unsigned decimal integer.  Unlike
// strconv.ParseUint it operates on []byte without allocation.
func ParseUint(b []byte) (uint64, error) {
	if len(b) == 0 {
		return 0, ErrSyntax
	}
	const cutoff = (1<<64-1)/10 + 1
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, ErrSyntax
		}
		if n >= cutoff {
			return 0, ErrRange
		}
		n = n * 10
		d := uint64(c - '0')
		if n+d < n {
			return 0, ErrRange
		}
		n += d
	}
	return n, nil
}

// ---------------------------------------------------------------------------
// Codec interfaces

// EdgeSink consumes a stream of edges.  Implementations buffer internally;
// callers must Flush before closing the underlying writer.
type EdgeSink interface {
	WriteEdge(u, v uint64) error
	Flush() error
}

// EdgeSource produces a stream of edges, returning io.EOF after the last.
type EdgeSource interface {
	ReadEdge() (u, v uint64, err error)
}

// Codec bundles matching reader and writer constructors for one on-disk
// edge encoding.
type Codec interface {
	// Name identifies the codec in file extensions and reports.
	Name() string
	// NewWriter returns a sink encoding edges onto w.
	NewWriter(w io.Writer) EdgeSink
	// NewReader returns a source decoding edges from r.
	NewReader(r io.Reader) EdgeSource
	// BytesPerEdge estimates the encoded size of one edge with vertex
	// labels below maxVertex, used for file sizing and performance models.
	BytesPerEdge(maxVertex uint64) float64
}

// ---------------------------------------------------------------------------
// TSV codec (optimized)

// TSV is the paper's tab-separated text format with hand-rolled formatting
// and parsing.  This is the codec the optimized (csr) variant uses.
type TSV struct{}

// Name implements Codec.
func (TSV) Name() string { return "tsv" }

// BytesPerEdge implements Codec: two decimal numbers of roughly equal
// average width, a tab and a newline.
func (TSV) BytesPerEdge(maxVertex uint64) float64 {
	return 2*avgDecimalWidth(maxVertex) + 2
}

// avgDecimalWidth approximates the mean decimal width of uniform labels in
// [0, maxVertex).
func avgDecimalWidth(maxVertex uint64) float64 {
	if maxVertex == 0 {
		return 1
	}
	d := len(strconv.FormatUint(maxVertex-1, 10))
	// Most uniform values share the top width; this is close enough for
	// sizing estimates.
	return float64(d)
}

// NewWriter implements Codec.
func (TSV) NewWriter(w io.Writer) EdgeSink { return NewTSVWriter(w, DefaultBufSize) }

// NewReader implements Codec.
func (TSV) NewReader(r io.Reader) EdgeSource { return NewTSVReader(r, DefaultBufSize) }

// TSVWriter encodes edges as "u\tv\n" records with an internal buffer.
type TSVWriter struct {
	w   io.Writer
	buf []byte
	max int
}

// NewTSVWriter returns a TSVWriter with the given buffer size.
func NewTSVWriter(w io.Writer, bufSize int) *TSVWriter {
	if bufSize < 64 {
		bufSize = 64
	}
	return &TSVWriter{w: w, buf: make([]byte, 0, bufSize), max: bufSize}
}

// WriteEdge implements EdgeSink.
func (t *TSVWriter) WriteEdge(u, v uint64) error {
	t.buf = AppendUint(t.buf, u)
	t.buf = append(t.buf, '\t')
	t.buf = AppendUint(t.buf, v)
	t.buf = append(t.buf, '\n')
	if len(t.buf) >= t.max-42 { // 42 = max record size (2×20 digits + 2)
		return t.Flush()
	}
	return nil
}

// Flush implements EdgeSink.
func (t *TSVWriter) Flush() error {
	if len(t.buf) == 0 {
		return nil
	}
	_, err := t.w.Write(t.buf)
	t.buf = t.buf[:0]
	return err
}

// TSVReader decodes "u\tv\n" records.  It tolerates \r\n line endings and
// a missing final newline, and reports the line number in parse errors.
type TSVReader struct {
	r    *bufio.Reader
	line int
}

// NewTSVReader returns a TSVReader with the given buffer size.
func NewTSVReader(r io.Reader, bufSize int) *TSVReader {
	return &TSVReader{r: bufio.NewReaderSize(r, bufSize)}
}

// ReadEdge implements EdgeSource.
func (t *TSVReader) ReadEdge() (uint64, uint64, error) {
	t.line++
	u, err := t.readField('\t')
	if err != nil {
		if err == io.EOF {
			return 0, 0, io.EOF
		}
		return 0, 0, fmt.Errorf("fastio: line %d: %w", t.line, err)
	}
	v, err := t.readField('\n')
	if err != nil && err != io.EOF {
		return 0, 0, fmt.Errorf("fastio: line %d: %w", t.line, err)
	}
	return u, v, nil
}

// readField parses one decimal field terminated by delim.  Returning io.EOF
// with no digits consumed means clean end of stream; io.EOF after digits for
// the final field of a file without trailing newline yields the value and
// a nil error from ReadEdge's second call.
func (t *TSVReader) readField(delim byte) (uint64, error) {
	const cutoff = (1<<64-1)/10 + 1
	var n uint64
	digits := 0
	for {
		c, err := t.r.ReadByte()
		if err == io.EOF {
			if digits == 0 {
				return 0, io.EOF
			}
			return n, io.EOF
		}
		if err != nil {
			return 0, err
		}
		switch {
		case c >= '0' && c <= '9':
			if n >= cutoff {
				return 0, ErrRange
			}
			n = n*10 + uint64(c-'0')
			if n < uint64(c-'0') {
				return 0, ErrRange
			}
			digits++
		case c == delim:
			if digits == 0 {
				return 0, ErrSyntax
			}
			return n, nil
		case c == '\r' && delim == '\n':
			// Tolerate CRLF: the next byte must be the newline.
			nc, err := t.r.ReadByte()
			if err == nil && nc == '\n' && digits > 0 {
				return n, nil
			}
			return 0, ErrSyntax
		default:
			return 0, ErrSyntax
		}
	}
}

// ---------------------------------------------------------------------------
// NaiveTSV codec

// NaiveTSV reads and writes the same text format as TSV but through the
// generic standard-library route: fmt.Fprintf for writing and
// bufio.Scanner plus strconv.ParseUint for reading.  It exists to model the
// paper's interpreted-language implementations, whose string handling
// dominates kernels 0–2, and doubles as a differential-testing oracle for
// the optimized codec.
type NaiveTSV struct{}

// Name implements Codec.
func (NaiveTSV) Name() string { return "naivetsv" }

// BytesPerEdge implements Codec.
func (NaiveTSV) BytesPerEdge(maxVertex uint64) float64 { return TSV{}.BytesPerEdge(maxVertex) }

// NewWriter implements Codec.
func (NaiveTSV) NewWriter(w io.Writer) EdgeSink {
	return &naiveWriter{w: bufio.NewWriterSize(w, DefaultBufSize)}
}

// NewReader implements Codec.
func (NaiveTSV) NewReader(r io.Reader) EdgeSource {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64<<10), 1<<20)
	return &naiveReader{s: s}
}

type naiveWriter struct {
	w *bufio.Writer
}

func (n *naiveWriter) WriteEdge(u, v uint64) error {
	_, err := fmt.Fprintf(n.w, "%d\t%d\n", u, v)
	return err
}

func (n *naiveWriter) Flush() error { return n.w.Flush() }

type naiveReader struct {
	s    *bufio.Scanner
	line int
}

func (n *naiveReader) ReadEdge() (uint64, uint64, error) {
	if !n.s.Scan() {
		if err := n.s.Err(); err != nil {
			return 0, 0, err
		}
		return 0, 0, io.EOF
	}
	n.line++
	text := n.s.Text()
	tab := -1
	for i := 0; i < len(text); i++ {
		if text[i] == '\t' {
			tab = i
			break
		}
	}
	if tab < 0 {
		return 0, 0, fmt.Errorf("fastio: line %d: missing tab", n.line)
	}
	u, err := strconv.ParseUint(text[:tab], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("fastio: line %d: %w", n.line, err)
	}
	v, err := strconv.ParseUint(text[tab+1:], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("fastio: line %d: %w", n.line, err)
	}
	return u, v, nil
}

// ---------------------------------------------------------------------------
// Binary codec

// Binary encodes each edge as two little-endian uint64 words (16 bytes).
// The paper's format is text; this codec exists for the text-vs-binary
// ablation and for the external sorter's intermediate run files, where
// fixed-width records allow exact spill accounting.
type Binary struct{}

// Name implements Codec.
func (Binary) Name() string { return "bin" }

// BytesPerEdge implements Codec.
func (Binary) BytesPerEdge(uint64) float64 { return 16 }

// NewWriter implements Codec.
func (Binary) NewWriter(w io.Writer) EdgeSink {
	return &binWriter{w: w, buf: make([]byte, 0, DefaultBufSize)}
}

// NewReader implements Codec.
func (Binary) NewReader(r io.Reader) EdgeSource {
	return &binReader{r: bufio.NewReaderSize(r, DefaultBufSize)}
}

type binWriter struct {
	w   io.Writer
	buf []byte
}

func (b *binWriter) WriteEdge(u, v uint64) error {
	b.buf = binary.LittleEndian.AppendUint64(b.buf, u)
	b.buf = binary.LittleEndian.AppendUint64(b.buf, v)
	if len(b.buf) >= cap(b.buf)-16 {
		return b.Flush()
	}
	return nil
}

func (b *binWriter) Flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	_, err := b.w.Write(b.buf)
	b.buf = b.buf[:0]
	return err
}

type binReader struct {
	r   *bufio.Reader
	rec [16]byte
	blk []byte // bulk scratch, allocated on first ReadEdges
}

func (b *binReader) ReadEdge() (uint64, uint64, error) {
	if _, err := io.ReadFull(b.r, b.rec[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return 0, 0, fmt.Errorf("fastio: truncated binary edge record: %w", err)
		}
		return 0, 0, err
	}
	return binary.LittleEndian.Uint64(b.rec[0:8]), binary.LittleEndian.Uint64(b.rec[8:16]), nil
}

// Interface conformance checks.
var (
	_ Codec = TSV{}
	_ Codec = NaiveTSV{}
	_ Codec = Binary{}
)

// ---------------------------------------------------------------------------
// Striped files

// StripeName returns the name of stripe i of nfiles for the given prefix,
// e.g. "k0/part-0003.tsv".  The zero-padded index keeps lexicographic and
// numeric order identical so vfs.List order is stripe order.
func StripeName(prefix string, codec Codec, i int) string {
	return fmt.Sprintf("%s-%04d.%s", prefix, i, codec.Name())
}

// WriteStriped writes the edge list across nfiles files named
// StripeName(prefix, codec, 0..nfiles-1), splitting edges into contiguous,
// nearly equal chunks.  nfiles must be at least 1.
func WriteStriped(fs vfs.FS, prefix string, codec Codec, nfiles int, l *edge.List) error {
	if nfiles < 1 {
		return fmt.Errorf("fastio: nfiles = %d, want >= 1", nfiles)
	}
	m := l.Len()
	for i := 0; i < nfiles; i++ {
		lo := i * m / nfiles
		hi := (i + 1) * m / nfiles
		if err := writeOneStripe(fs, StripeName(prefix, codec, i), codec, l, lo, hi); err != nil {
			return err
		}
	}
	return nil
}

func writeOneStripe(fs vfs.FS, name string, codec Codec, l *edge.List, lo, hi int) error {
	w, err := fs.Create(name)
	if err != nil {
		return err
	}
	sink := codec.NewWriter(w)
	if err := WriteEdges(sink, l, lo, hi); err != nil {
		w.Close()
		return err
	}
	if err := sink.Flush(); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// StripeNames returns the existing stripe file names for prefix, in stripe
// order.  It probes consecutive indices until a stripe is missing.
func StripeNames(fs vfs.FS, prefix string, codec Codec) ([]string, error) {
	var names []string
	for i := 0; ; i++ {
		name := StripeName(prefix, codec, i)
		if _, err := fs.Size(name); err != nil {
			break
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("fastio: no stripes found for prefix %q (codec %s)", prefix, codec.Name())
	}
	return names, nil
}

// StripedBytes sums the on-disk sizes of the stripe files for prefix —
// the encoded footprint a format ablation reports next to edges/second.
func StripedBytes(fs vfs.FS, prefix string, codec Codec) (int64, error) {
	names, err := StripeNames(fs, prefix, codec)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, name := range names {
		n, err := fs.Size(name)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// ReadStriped reads all stripes for prefix into a single edge list, in
// stripe order.
func ReadStriped(fs vfs.FS, prefix string, codec Codec) (*edge.List, error) {
	names, err := StripeNames(fs, prefix, codec)
	if err != nil {
		return nil, err
	}
	l := edge.NewList(0)
	for _, name := range names {
		if err := readOneStripe(fs, name, codec, l); err != nil {
			return nil, err
		}
	}
	return l, nil
}

func readOneStripe(fs vfs.FS, name string, codec Codec, l *edge.List) error {
	r, err := fs.Open(name)
	if err != nil {
		return err
	}
	defer r.Close()
	src := codec.NewReader(r)
	for {
		if _, err := ReadEdges(src, l, readChunkEdges); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("fastio: %s: %w", name, err)
		}
	}
}

// StripedSource is an EdgeSource that streams edges from a set of stripe
// files in order, opening each file lazily.  It is the input path of the
// out-of-core kernels, which must not materialize the whole edge list.
type StripedSource struct {
	fs    vfs.FS
	codec Codec
	names []string
	next  int
	cur   io.ReadCloser
	src   EdgeSource
}

// NewStripedSource returns a StripedSource over the stripes of prefix.
func NewStripedSource(fs vfs.FS, prefix string, codec Codec) (*StripedSource, error) {
	names, err := StripeNames(fs, prefix, codec)
	if err != nil {
		return nil, err
	}
	return &StripedSource{fs: fs, codec: codec, names: names}, nil
}

// ReadEdge implements EdgeSource.
func (s *StripedSource) ReadEdge() (uint64, uint64, error) {
	for {
		if s.src == nil {
			if s.next >= len(s.names) {
				return 0, 0, io.EOF
			}
			r, err := s.fs.Open(s.names[s.next])
			if err != nil {
				return 0, 0, err
			}
			s.cur = r
			s.src = s.codec.NewReader(r)
			s.next++
		}
		u, v, err := s.src.ReadEdge()
		if err == io.EOF {
			s.cur.Close()
			s.cur, s.src = nil, nil
			continue
		}
		return u, v, err
	}
}

// Close releases the currently open stripe, if any.
func (s *StripedSource) Close() error {
	if s.cur != nil {
		err := s.cur.Close()
		s.cur, s.src = nil, nil
		return err
	}
	return nil
}

// CountEdges streams src to completion and returns the number of edges.
func CountEdges(src EdgeSource) (int, error) {
	n := 0
	for {
		_, _, err := src.ReadEdge()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
	}
}

// ListSource adapts an in-memory edge.List to the EdgeSource interface.
type ListSource struct {
	l *edge.List
	i int
}

// NewListSource returns an EdgeSource reading from l.
func NewListSource(l *edge.List) *ListSource { return &ListSource{l: l} }

// ReadEdge implements EdgeSource.
func (s *ListSource) ReadEdge() (uint64, uint64, error) {
	if s.i >= s.l.Len() {
		return 0, 0, io.EOF
	}
	u, v := s.l.At(s.i)
	s.i++
	return u, v, nil
}

// ListSink adapts an edge.List to the EdgeSink interface.
type ListSink struct {
	L *edge.List
}

// NewListSink returns an EdgeSink appending to l.
func NewListSink(l *edge.List) *ListSink { return &ListSink{L: l} }

// WriteEdge implements EdgeSink.
func (s *ListSink) WriteEdge(u, v uint64) error {
	s.L.Append(u, v)
	return nil
}

// Flush implements EdgeSink.
func (s *ListSink) Flush() error { return nil }
